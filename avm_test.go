package avm_test

import (
	"testing"

	avm "repro"
)

// counterSrc is a tiny accountable service: it counts requests and replies
// with the running total.
const counterSrc = `
	const NET_RX_STATUS = 0x20;
	const NET_RX_LEN = 0x21;
	const NET_RX_FROM = 0x22;
	const NET_RX_BYTE = 0x23;
	const NET_RX_DONE = 0x24;
	const NET_TX_BYTE = 0x28;
	const NET_TX_COMMIT = 0x29;
	var count = 0;
	interrupt(1) func on_net() { }
	func main() {
		sti();
		while (1) {
			while (in(NET_RX_STATUS) == 0) { wfi(); }
			var n = in(NET_RX_LEN);
			var from = in(NET_RX_FROM);
			out(NET_RX_DONE, 0);
			count = count + 1;
			out(NET_TX_BYTE, count & 0xFF);
			out(NET_TX_COMMIT, from);
		}
	}
`

// counterCheatSrc over-reports the count — the "faulty service" variant.
const counterCheatSrc = `
	const NET_RX_STATUS = 0x20;
	const NET_RX_LEN = 0x21;
	const NET_RX_FROM = 0x22;
	const NET_RX_BYTE = 0x23;
	const NET_RX_DONE = 0x24;
	const NET_TX_BYTE = 0x28;
	const NET_TX_COMMIT = 0x29;
	var count = 0;
	interrupt(1) func on_net() { }
	func main() {
		sti();
		while (1) {
			while (in(NET_RX_STATUS) == 0) { wfi(); }
			var n = in(NET_RX_LEN);
			var from = in(NET_RX_FROM);
			out(NET_RX_DONE, 0);
			count = count + 2;
			out(NET_TX_BYTE, count & 0xFF);
			out(NET_TX_COMMIT, from);
		}
	}
`

const clientSrc = `
	const NET_RX_STATUS = 0x20;
	const NET_RX_LEN = 0x21;
	const NET_RX_BYTE = 0x23;
	const NET_RX_DONE = 0x24;
	const NET_TX_BYTE = 0x28;
	const NET_TX_COMMIT = 0x29;
	const DEBUG = 0x60;
	var replies = 0;
	interrupt(1) func on_net() { }
	func main() {
		sti();
		var sent = 0;
		while (sent < 8) {
			out(NET_TX_BYTE, 'Q');
			out(NET_TX_COMMIT, 0);
			sent = sent + 1;
			while (in(NET_RX_STATUS) == 0) { wfi(); }
			var n = in(NET_RX_LEN);
			out(DEBUG, in(NET_RX_BYTE));
			out(NET_RX_DONE, 0);
			replies = replies + 1;
		}
		halt();
	}
`

func buildDeployment(t *testing.T, serverSrc string) (*avm.Deployment, *avm.Image) {
	t.Helper()
	serverImg, err := avm.Compile("counter", serverSrc, 64*1024)
	if err != nil {
		t.Fatalf("compile server: %v", err)
	}
	clientImg, err := avm.Compile("client", clientSrc, 64*1024)
	if err != nil {
		t.Fatalf("compile client: %v", err)
	}
	d, err := avm.NewDeployment(avm.DeploymentConfig{Mode: avm.ModeAVMMRSA, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.AddNode("bob", serverImg, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := d.AddNode("alice", clientImg, 1); err != nil {
		t.Fatal(err)
	}
	alice, _ := d.Node("alice")
	if !d.RunUntil(func() bool { return alice.Machine.Halted }, 120*avm.VirtualSecond) {
		t.Fatal("client did not finish")
	}
	refImg, err := avm.Compile("counter", counterSrc, 64*1024)
	if err != nil {
		t.Fatal(err)
	}
	return d, refImg
}

func TestPublicAPIHonestAudit(t *testing.T) {
	d, ref := buildDeployment(t, counterSrc)
	res, err := d.Audit("bob", ref)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Passed {
		t.Fatalf("honest service failed audit: %v", res.Fault)
	}
	alice, _ := d.Node("alice")
	if got := alice.Devs.Debug; len(got) != 8 || got[7] != 8 {
		t.Fatalf("client replies = %v, want counts 1..8", got)
	}
}

func TestPublicAPIFaultDetectionAndEvidence(t *testing.T) {
	d, ref := buildDeployment(t, counterCheatSrc)
	res, err := d.Audit("bob", ref)
	if err != nil {
		t.Fatal(err)
	}
	if res.Passed {
		t.Fatal("faulty service passed audit against reference image")
	}
	ev, err := d.BuildEvidence("bob", res)
	if err != nil {
		t.Fatal(err)
	}
	// A third party verifies with its own reference image and keys.
	verdict, err := avm.VerifyEvidence(ev, d.Keys, ref, avm.ModeAVMMRSA)
	if err != nil {
		t.Fatalf("third party rejected evidence: %v", err)
	}
	if verdict.Passed {
		t.Fatal("third party verdict disagrees with auditor")
	}
}

func TestPublicAPIAccuracy(t *testing.T) {
	// Accuracy (§4.7): no valid evidence can exist against a correct
	// machine. Evidence built from an honest run must NOT verify.
	d, ref := buildDeployment(t, counterSrc)
	ev, err := d.BuildEvidence("bob", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := avm.VerifyEvidence(ev, d.Keys, ref, avm.ModeAVMMRSA); err == nil {
		t.Fatal("evidence against an honest machine verified; accuracy violated")
	}
}
