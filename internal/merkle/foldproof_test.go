package merkle

import (
	"math/rand"
	"testing"
)

// randomDirtySet draws a sorted, deduped set of up to maxDirty indices.
func randomDirtySet(rng *rand.Rand, leaves, maxDirty int) []int {
	n := 1 + rng.Intn(maxDirty)
	set := map[int]bool{}
	for len(set) < n {
		set[rng.Intn(leaves)] = true
	}
	out := make([]int, 0, len(set))
	for i := range set {
		out = append(out, i)
	}
	return out
}

func TestFoldVerifyRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, leaves := range []int{1, 2, 3, 7, 8, 64, 100} {
		for trial := 0; trial < 20; trial++ {
			data := make([][]byte, leaves)
			for i := range data {
				data[i] = []byte{byte(i), byte(trial)}
			}
			tr := Seeded(leaves, func(i int) []byte { return data[i] }, 1)
			prev := tr.Root()

			dirty := randomDirtySet(rng, leaves, leaves)
			proof, err := tr.ProveBatch(dirty)
			if err != nil {
				t.Fatalf("ProveBatch: %v", err)
			}
			newData := make([][]byte, len(proof.Indices))
			for i, idx := range proof.Indices {
				data[idx] = []byte{byte(idx), byte(trial), 0xFF}
				newData[i] = data[idx]
			}
			if err := tr.UpdateBatch(dirty, func(i int) []byte { return data[i] }, 1); err != nil {
				t.Fatalf("UpdateBatch: %v", err)
			}
			next := tr.Root()
			if err := FoldVerify(prev, next, proof, newData); err != nil {
				t.Fatalf("leaves=%d trial=%d dirty=%v: FoldVerify: %v", leaves, trial, dirty, err)
			}
		}
	}
}

func TestFoldVerifyDetectsTampering(t *testing.T) {
	leaves := 32
	data := make([][]byte, leaves)
	for i := range data {
		data[i] = []byte{byte(i)}
	}
	tr := Seeded(leaves, func(i int) []byte { return data[i] }, 1)
	prev := tr.Root()
	dirty := []int{3, 4, 17}
	proof, err := tr.ProveBatch(dirty)
	if err != nil {
		t.Fatal(err)
	}
	newData := [][]byte{{0xA1}, {0xA2}, {0xA3}}
	for i, idx := range dirty {
		data[idx] = newData[i]
	}
	if err := tr.UpdateBatch(dirty, func(i int) []byte { return data[i] }, 1); err != nil {
		t.Fatal(err)
	}
	next := tr.Root()
	if err := FoldVerify(prev, next, proof, newData); err != nil {
		t.Fatalf("untampered: %v", err)
	}

	t.Run("page data", func(t *testing.T) {
		bad := [][]byte{{0xA1}, {0xEE}, {0xA3}}
		if err := FoldVerify(prev, next, proof, bad); err == nil {
			t.Fatal("tampered page accepted")
		}
	})
	t.Run("old leaf hash", func(t *testing.T) {
		p := proof
		p.Old = append([]Hash(nil), proof.Old...)
		p.Old[1][0] ^= 1
		if err := FoldVerify(prev, next, p, newData); err == nil {
			t.Fatal("tampered old hash accepted")
		}
	})
	t.Run("sibling", func(t *testing.T) {
		p := proof
		p.Siblings = append([]Hash(nil), proof.Siblings...)
		p.Siblings[0][5] ^= 1
		if err := FoldVerify(prev, next, p, newData); err == nil {
			t.Fatal("tampered sibling accepted")
		}
	})
	t.Run("roots", func(t *testing.T) {
		badPrev := prev
		badPrev[0] ^= 1
		if err := FoldVerify(badPrev, next, proof, newData); err == nil {
			t.Fatal("wrong prev root accepted")
		}
		badNext := next
		badNext[0] ^= 1
		if err := FoldVerify(prev, badNext, proof, newData); err == nil {
			t.Fatal("wrong next root accepted")
		}
	})
	t.Run("truncated siblings", func(t *testing.T) {
		p := proof
		p.Siblings = proof.Siblings[:len(proof.Siblings)-1]
		if err := FoldVerify(prev, next, p, newData); err == nil {
			t.Fatal("truncated proof accepted")
		}
	})
	t.Run("extra sibling", func(t *testing.T) {
		p := proof
		p.Siblings = append(append([]Hash(nil), proof.Siblings...), Hash{})
		if err := FoldVerify(prev, next, p, newData); err == nil {
			t.Fatal("padded proof accepted")
		}
	})
	t.Run("unsorted indices", func(t *testing.T) {
		p := proof
		p.Indices = []int{4, 3, 17}
		if err := FoldVerify(prev, next, p, newData); err == nil {
			t.Fatal("unsorted indices accepted")
		}
	})
	t.Run("length mismatch", func(t *testing.T) {
		if err := FoldVerify(prev, next, proof, newData[:2]); err == nil {
			t.Fatal("short newData accepted")
		}
	})
}

func TestFoldVerifyEmptyDelta(t *testing.T) {
	tr := Seeded(8, func(i int) []byte { return []byte{byte(i)} }, 1)
	proof, err := tr.ProveBatch(nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := FoldVerify(tr.Root(), tr.Root(), proof, nil); err != nil {
		t.Fatalf("empty delta over identical roots: %v", err)
	}
	other := tr.Root()
	other[0] ^= 1
	if err := FoldVerify(tr.Root(), other, proof, nil); err == nil {
		t.Fatal("empty delta across different roots accepted")
	}
}

func TestProveBatchAllLeavesNeedsNoSiblings(t *testing.T) {
	leaves := 16
	tr := Seeded(leaves, func(i int) []byte { return []byte{byte(i)} }, 1)
	all := make([]int, leaves)
	for i := range all {
		all[i] = i
	}
	proof, err := tr.ProveBatch(all)
	if err != nil {
		t.Fatal(err)
	}
	if len(proof.Siblings) != 0 {
		t.Fatalf("full-leaf proof carries %d siblings, want 0", len(proof.Siblings))
	}
}
