package merkle

import (
	"testing"
)

// FuzzUpdateBatch drives random dirty sets through UpdateBatch and checks
// the resulting root against both a sequence of single Updates and a fresh
// Fill over the final leaves. The leaf count deliberately sweeps across the
// padding boundary (non-powers of two), where a path-union bug would first
// show. CI runs this for a few seconds per push (-fuzz=FuzzUpdateBatch).
func FuzzUpdateBatch(f *testing.F) {
	f.Add(uint8(16), []byte{0, 3, 3, 15, 7})
	f.Add(uint8(1), []byte{0})
	f.Add(uint8(7), []byte{6, 0, 6})
	f.Add(uint8(65), []byte{64, 1, 32, 63})
	f.Fuzz(func(t *testing.T, nRaw uint8, picks []byte) {
		n := int(nRaw)%100 + 1
		leaf := func(i int) []byte {
			// Deterministic per-index contents, perturbed once per pick below.
			return []byte{byte(i), byte(i >> 4), byte(n)}
		}
		batched := Seeded(n, leaf, 1)
		sequential := Seeded(n, leaf, 1)

		touched := make(map[int][]byte)
		dirty := make([]int, 0, len(picks))
		for k, p := range picks {
			idx := int(p) % n
			dirty = append(dirty, idx)
			touched[idx] = append(leaf(idx), byte(k))
		}
		data := func(i int) []byte {
			if d, ok := touched[i]; ok {
				return d
			}
			return leaf(i)
		}
		if err := batched.UpdateBatch(dirty, data, 4); err != nil {
			t.Fatalf("UpdateBatch: %v", err)
		}
		for _, idx := range dirty {
			if err := sequential.Update(idx, data(idx)); err != nil {
				t.Fatalf("Update(%d): %v", idx, err)
			}
		}
		if batched.Root() != sequential.Root() {
			t.Fatalf("n=%d dirty=%v: batch root != sequential root", n, dirty)
		}
		if fresh := Seeded(n, data, 2); batched.Root() != fresh.Root() {
			t.Fatalf("n=%d dirty=%v: batch root != fresh Fill root", n, dirty)
		}
	})
}
