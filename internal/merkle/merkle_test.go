package merkle

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRootChangesWithAnyLeaf(t *testing.T) {
	tr := New(16)
	r0 := tr.Root()
	if err := tr.Update(3, []byte("x")); err != nil {
		t.Fatal(err)
	}
	r1 := tr.Root()
	if r0 == r1 {
		t.Fatal("root unchanged after update")
	}
	if err := tr.Update(3, nil); err != nil {
		t.Fatal(err)
	}
	if tr.Root() != r0 {
		t.Fatal("root did not return after undo")
	}
}

func TestProveVerify(t *testing.T) {
	tr := New(10)
	leaves := make([][]byte, 10)
	for i := range leaves {
		leaves[i] = []byte{byte(i), byte(i * 3)}
		if err := tr.Update(i, leaves[i]); err != nil {
			t.Fatal(err)
		}
	}
	root := tr.Root()
	for i := range leaves {
		p, err := tr.Prove(i)
		if err != nil {
			t.Fatal(err)
		}
		if err := VerifyProof(root, p, leaves[i]); err != nil {
			t.Fatalf("leaf %d proof rejected: %v", i, err)
		}
		// Wrong data must fail.
		if VerifyProof(root, p, []byte("bogus")) == nil {
			t.Fatalf("leaf %d accepted wrong data", i)
		}
	}
}

func TestProofDoesNotTransferBetweenLeaves(t *testing.T) {
	tr := New(8)
	same := []byte("identical")
	for i := 0; i < 8; i++ {
		if err := tr.Update(i, same); err != nil {
			t.Fatal(err)
		}
	}
	p0, err := tr.Prove(0)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := tr.Prove(1)
	if err != nil {
		t.Fatal(err)
	}
	// Indexed leaf hashing: a proof for leaf 0 must not verify with leaf
	// 1's index even though contents are identical.
	p0.Index = 1
	if VerifyProof(tr.Root(), p0, same) == nil {
		t.Fatal("proof transferred to another index")
	}
	p0.Index = 0
	if err := VerifyProof(tr.Root(), p0, same); err != nil {
		t.Fatal(err)
	}
	_ = p1
}

func TestBoundsChecking(t *testing.T) {
	tr := New(4)
	if err := tr.Update(-1, nil); err == nil {
		t.Error("negative index accepted")
	}
	if err := tr.Update(4, nil); err == nil {
		t.Error("out-of-range index accepted")
	}
	if _, err := tr.Prove(9); err == nil {
		t.Error("out-of-range proof accepted")
	}
	if New(0).Leaves() != 1 {
		t.Error("zero-leaf tree not clamped")
	}
}

func TestRootOfMatchesIncremental(t *testing.T) {
	leaves := [][]byte{[]byte("a"), []byte("bb"), []byte("ccc"), nil, []byte("e")}
	tr := New(len(leaves))
	for i, l := range leaves {
		if err := tr.Update(i, l); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Root() != RootOf(leaves) {
		t.Fatal("RootOf disagrees with incremental tree")
	}
}

// TestPropertyProofSoundness: random trees, random tampering — a proof
// verifies iff leaf data and index match what the tree committed to.
func TestPropertyProofSoundness(t *testing.T) {
	f := func(seed int64, nRaw uint8, idxRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%60) + 2
		tr := New(n)
		leaves := make([][]byte, n)
		for i := range leaves {
			leaves[i] = make([]byte, rng.Intn(50))
			rng.Read(leaves[i])
			if err := tr.Update(i, leaves[i]); err != nil {
				return false
			}
		}
		idx := int(idxRaw) % n
		p, err := tr.Prove(idx)
		if err != nil {
			return false
		}
		if VerifyProof(tr.Root(), p, leaves[idx]) != nil {
			return false
		}
		tampered := append([]byte(nil), leaves[idx]...)
		tampered = append(tampered, 0xFF)
		return VerifyProof(tr.Root(), p, tampered) != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestNonPowerOfTwoLeafCounts(t *testing.T) {
	for _, n := range []int{1, 3, 5, 7, 9, 100, 127} {
		tr := New(n)
		if tr.Leaves() != n {
			t.Fatalf("Leaves() = %d, want %d", tr.Leaves(), n)
		}
		if err := tr.Update(n-1, []byte("last")); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		p, err := tr.Prove(n - 1)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if err := VerifyProof(tr.Root(), p, []byte("last")); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}
