package merkle

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRootChangesWithAnyLeaf(t *testing.T) {
	tr := New(16)
	r0 := tr.Root()
	if err := tr.Update(3, []byte("x")); err != nil {
		t.Fatal(err)
	}
	r1 := tr.Root()
	if r0 == r1 {
		t.Fatal("root unchanged after update")
	}
	if err := tr.Update(3, nil); err != nil {
		t.Fatal(err)
	}
	if tr.Root() != r0 {
		t.Fatal("root did not return after undo")
	}
}

func TestProveVerify(t *testing.T) {
	tr := New(10)
	leaves := make([][]byte, 10)
	for i := range leaves {
		leaves[i] = []byte{byte(i), byte(i * 3)}
		if err := tr.Update(i, leaves[i]); err != nil {
			t.Fatal(err)
		}
	}
	root := tr.Root()
	for i := range leaves {
		p, err := tr.Prove(i)
		if err != nil {
			t.Fatal(err)
		}
		if err := VerifyProof(root, p, leaves[i]); err != nil {
			t.Fatalf("leaf %d proof rejected: %v", i, err)
		}
		// Wrong data must fail.
		if VerifyProof(root, p, []byte("bogus")) == nil {
			t.Fatalf("leaf %d accepted wrong data", i)
		}
	}
}

func TestProofDoesNotTransferBetweenLeaves(t *testing.T) {
	tr := New(8)
	same := []byte("identical")
	for i := 0; i < 8; i++ {
		if err := tr.Update(i, same); err != nil {
			t.Fatal(err)
		}
	}
	p0, err := tr.Prove(0)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := tr.Prove(1)
	if err != nil {
		t.Fatal(err)
	}
	// Indexed leaf hashing: a proof for leaf 0 must not verify with leaf
	// 1's index even though contents are identical.
	p0.Index = 1
	if VerifyProof(tr.Root(), p0, same) == nil {
		t.Fatal("proof transferred to another index")
	}
	p0.Index = 0
	if err := VerifyProof(tr.Root(), p0, same); err != nil {
		t.Fatal(err)
	}
	_ = p1
}

func TestBoundsChecking(t *testing.T) {
	tr := New(4)
	if err := tr.Update(-1, nil); err == nil {
		t.Error("negative index accepted")
	}
	if err := tr.Update(4, nil); err == nil {
		t.Error("out-of-range index accepted")
	}
	if _, err := tr.Prove(9); err == nil {
		t.Error("out-of-range proof accepted")
	}
	if New(0).Leaves() != 1 {
		t.Error("zero-leaf tree not clamped")
	}
}

func TestRootOfMatchesIncremental(t *testing.T) {
	leaves := [][]byte{[]byte("a"), []byte("bb"), []byte("ccc"), nil, []byte("e")}
	tr := New(len(leaves))
	for i, l := range leaves {
		if err := tr.Update(i, l); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Root() != RootOf(leaves) {
		t.Fatal("RootOf disagrees with incremental tree")
	}
}

// TestPropertyProofSoundness: random trees, random tampering — a proof
// verifies iff leaf data and index match what the tree committed to.
func TestPropertyProofSoundness(t *testing.T) {
	f := func(seed int64, nRaw uint8, idxRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%60) + 2
		tr := New(n)
		leaves := make([][]byte, n)
		for i := range leaves {
			leaves[i] = make([]byte, rng.Intn(50))
			rng.Read(leaves[i])
			if err := tr.Update(i, leaves[i]); err != nil {
				return false
			}
		}
		idx := int(idxRaw) % n
		p, err := tr.Prove(idx)
		if err != nil {
			return false
		}
		if VerifyProof(tr.Root(), p, leaves[idx]) != nil {
			return false
		}
		tampered := append([]byte(nil), leaves[idx]...)
		tampered = append(tampered, 0xFF)
		return VerifyProof(tr.Root(), p, tampered) != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyUpdateBatchEquivalence: for random trees and random dirty
// sets, UpdateBatch must land on exactly the state a sequence of single
// Updates produces, which must equal a fresh Fill over the final leaves —
// including the padding-leaf boundary (leaf counts that are not powers of
// two) and duplicate/unsorted dirty indices.
func TestPropertyUpdateBatchEquivalence(t *testing.T) {
	f := func(seed int64, nRaw uint8, dirtyRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%70) + 1 // exercises 1-leaf trees and non-powers of two
		leaves := make([][]byte, n)
		for i := range leaves {
			leaves[i] = make([]byte, rng.Intn(40))
			rng.Read(leaves[i])
		}
		batched := Seeded(n, func(i int) []byte { return leaves[i] }, 1)
		sequential := Seeded(n, func(i int) []byte { return leaves[i] }, 1)

		nDirty := int(dirtyRaw % 32)
		dirty := make([]int, nDirty)
		for i := range dirty {
			dirty[i] = rng.Intn(n) // unsorted, possibly repeated
			leaves[dirty[i]] = append(leaves[dirty[i]], byte(rng.Intn(256)))
		}
		if err := batched.UpdateBatch(dirty, func(i int) []byte { return leaves[i] }, 4); err != nil {
			return false
		}
		for _, idx := range dirty {
			if err := sequential.Update(idx, leaves[idx]); err != nil {
				return false
			}
		}
		fresh := Seeded(n, func(i int) []byte { return leaves[i] }, 2)
		return batched.Root() == sequential.Root() && batched.Root() == fresh.Root()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestUpdateBatchDuplicateIndicesParallel: heavy duplication across a
// parallel batch must neither race (two workers hashing the same leaf
// slot; caught under -race) nor corrupt the root.
func TestUpdateBatchDuplicateIndicesParallel(t *testing.T) {
	const n = 256
	leaves := make([][]byte, n)
	data := func(i int) []byte { return leaves[i] }
	for i := range leaves {
		leaves[i] = []byte{byte(i)}
	}
	tr := Seeded(n, data, 1)
	dirty := make([]int, 0, 4*n)
	for rep := 0; rep < 4; rep++ {
		for i := 0; i < n; i++ {
			dirty = append(dirty, i)
			leaves[i] = []byte{byte(i), byte(rep)}
		}
	}
	if err := tr.UpdateBatch(dirty, data, 8); err != nil {
		t.Fatal(err)
	}
	if tr.Root() != RootOf(leaves) {
		t.Fatal("duplicated parallel batch root disagrees with RootOf")
	}
}

func TestUpdateBatchRejectsOutOfRange(t *testing.T) {
	tr := New(5)
	before := tr.Root()
	if err := tr.UpdateBatch([]int{1, 5}, func(int) []byte { return []byte("x") }, 1); err == nil {
		t.Fatal("out-of-range batch index accepted")
	}
	if tr.Root() != before {
		t.Fatal("failed batch mutated the tree")
	}
	if err := tr.UpdateBatch(nil, nil, 1); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
}

func TestSeedFromReusesAndReshapes(t *testing.T) {
	var tr Tree
	data := [][]byte{[]byte("a"), []byte("b"), []byte("c")}
	tr.SeedFrom(3, func(i int) []byte { return data[i] }, 1)
	if tr.Root() != RootOf(data) {
		t.Fatal("seeded root disagrees with RootOf")
	}
	// Reshape to a different leaf count, then back.
	tr.SeedFrom(5, func(i int) []byte { return []byte{byte(i)} }, 1)
	if tr.Leaves() != 5 {
		t.Fatalf("Leaves() = %d after reshape, want 5", tr.Leaves())
	}
	tr.SeedFrom(3, func(i int) []byte { return data[i] }, 1)
	if tr.Root() != RootOf(data) {
		t.Fatal("re-seeded root disagrees with RootOf")
	}
}

func TestNonPowerOfTwoLeafCounts(t *testing.T) {
	for _, n := range []int{1, 3, 5, 7, 9, 100, 127} {
		tr := New(n)
		if tr.Leaves() != n {
			t.Fatalf("Leaves() = %d, want %d", tr.Leaves(), n)
		}
		if err := tr.Update(n-1, []byte("last")); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		p, err := tr.Prove(n - 1)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if err := VerifyProof(tr.Root(), p, []byte("last")); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}
