// Package merkle implements the hash tree the AVMM maintains over the AVM's
// state (paper §4.4, "Snapshots"). After each snapshot the monitor records
// the top-level hash in the tamper-evident log; an auditor who downloads a
// snapshot — or only the parts of the state accessed during replay — can
// authenticate what it received against that root.
package merkle

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"runtime"
	"sort"
	"sync"
)

// HashSize is the size in bytes of all hashes used by the tree.
const HashSize = sha256.Size

// Hash is a node or leaf digest.
type Hash [HashSize]byte

// leafPrefix and innerPrefix domain-separate leaf hashes from interior
// hashes so that an interior node can never be presented as a leaf.
const (
	leafPrefix  = 0x00
	innerPrefix = 0x01
)

// hasher wraps a reusable SHA-256 state so bulk tree construction does not
// allocate a fresh digest (and output slice) per node.
type hasher struct{ h hash.Hash }

func (s *hasher) init() {
	if s.h == nil {
		s.h = sha256.New()
	}
}

func (s *hasher) leaf(index int, data []byte, out *Hash) {
	s.init()
	var hdr [9]byte
	hdr[0] = leafPrefix
	binary.BigEndian.PutUint64(hdr[1:], uint64(index))
	s.h.Reset()
	s.h.Write(hdr[:])
	s.h.Write(data)
	s.h.Sum(out[:0])
}

func (s *hasher) inner(left, right *Hash, out *Hash) {
	s.init()
	s.h.Reset()
	s.h.Write([]byte{innerPrefix})
	s.h.Write(left[:])
	s.h.Write(right[:])
	s.h.Sum(out[:0])
}

// HashLeaf digests one leaf (a page of machine state) together with its
// index, so that identical pages at different indices hash differently.
func HashLeaf(index int, data []byte) Hash {
	var s hasher
	var out Hash
	s.leaf(index, data, &out)
	return out
}

func hashInner(left, right Hash) Hash {
	var s hasher
	var out Hash
	s.inner(&left, &right, &out)
	return out
}

// Tree is a fixed-shape binary hash tree over a constant number of leaves.
// The AVMM builds one tree per state region (memory pages, disk blocks) and
// updates leaves incrementally as pages are dirtied.
type Tree struct {
	leaves int
	// nodes stores the complete binary tree in heap order: nodes[1] is the
	// root, nodes[2i] and nodes[2i+1] are children of nodes[i]. Leaf i lives
	// at nodes[base+i] where base is the number of internal slots.
	nodes []Hash
	base  int
	// hs is a reusable digest for the incremental Update path. Fill uses
	// per-worker digests instead; a Tree is not safe for concurrent use.
	hs hasher
	// scratch holds UpdateBatch's working set of node positions so repeated
	// batch updates (one per snapshot entry during replay) do not allocate.
	scratch []int
}

// newShell allocates a tree and hashes only the padding leaves beyond
// nLeaves; the addressable leaves and the interior are left for the caller
// to fill (via Fill, or New's empty-leaf initialization).
func newShell(nLeaves int) *Tree {
	if nLeaves < 1 {
		nLeaves = 1
	}
	base := 1
	for base < nLeaves {
		base *= 2
	}
	t := &Tree{leaves: nLeaves, base: base, nodes: make([]Hash, 2*base)}
	empty := HashLeaf(0, nil)
	for i := nLeaves; i < base; i++ {
		t.nodes[base+i] = empty
	}
	return t
}

// New builds a tree over nLeaves leaves, all initialized to the hash of an
// empty page. nLeaves is rounded up to a power of two internally.
func New(nLeaves int) *Tree {
	t := newShell(nLeaves)
	t.Fill(func(int) []byte { return nil }, 1)
	return t
}

// DefaultWorkers is the fan-out bulk hashing uses when the caller passes
// workers <= 0: every available CPU, capped to keep nested parallel audits
// from oversubscribing the scheduler.
func DefaultWorkers() int {
	w := runtime.GOMAXPROCS(0)
	if w > 16 {
		w = 16
	}
	return w
}

// Fill recomputes every addressable leaf from data (data(i) must return
// leaf i's contents; nil means an empty page) and rebuilds the interior.
// Leaf hashing — the bulk of the work for page-sized leaves — fans out
// over up to workers goroutines; workers <= 0 selects DefaultWorkers().
// The interior fold is serial: it is ~1.5% of the hashed bytes when leaves
// are 4 KiB pages.
func (t *Tree) Fill(data func(i int) []byte, workers int) {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > t.leaves {
		workers = t.leaves
	}
	leaves := t.nodes[t.base : t.base+t.leaves]
	if workers <= 1 {
		t.hs.init()
		for i := range leaves {
			t.hs.leaf(i, data(i), &leaves[i])
		}
	} else {
		var wg sync.WaitGroup
		chunk := (t.leaves + workers - 1) / workers
		for lo := 0; lo < t.leaves; lo += chunk {
			hi := lo + chunk
			if hi > t.leaves {
				hi = t.leaves
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				var s hasher
				for i := lo; i < hi; i++ {
					s.leaf(i, data(i), &leaves[i])
				}
			}(lo, hi)
		}
		wg.Wait()
	}
	t.hs.init()
	for i := t.base - 1; i >= 1; i-- {
		t.hs.inner(&t.nodes[2*i], &t.nodes[2*i+1], &t.nodes[i])
	}
}

// SeedFrom re-seeds the tree over nLeaves leaves from data with one
// parallel Fill. Node storage is reused when nLeaves matches the tree's
// current shape and reallocated otherwise, so a long-lived tree (e.g. a
// replay's live state hasher) can be pointed at a new epoch's materialized
// state in a single call. A zero-value Tree is a valid receiver.
func (t *Tree) SeedFrom(nLeaves int, data func(i int) []byte, workers int) {
	if nLeaves < 1 {
		nLeaves = 1
	}
	if t.nodes == nil || t.leaves != nLeaves {
		*t = *newShell(nLeaves)
	}
	t.Fill(data, workers)
}

// Seeded builds a tree over nLeaves leaves and fills it from data in one
// parallel pass — New followed by Fill, without New's wasted empty-leaf
// build.
func Seeded(nLeaves int, data func(i int) []byte, workers int) *Tree {
	t := newShell(nLeaves)
	t.Fill(data, workers)
	return t
}

// Leaves returns the number of addressable leaves.
func (t *Tree) Leaves() int { return t.leaves }

// Update recomputes the path from leaf index to the root after the leaf's
// data changed. It is O(log n), which is what makes incremental snapshots
// cheap (§4.4).
func (t *Tree) Update(index int, data []byte) error {
	if index < 0 || index >= t.leaves {
		return fmt.Errorf("merkle: leaf index %d out of range [0,%d)", index, t.leaves)
	}
	i := t.base + index
	t.hs.leaf(index, data, &t.nodes[i])
	for i > 1 {
		i /= 2
		t.hs.inner(&t.nodes[2*i], &t.nodes[2*i+1], &t.nodes[i])
	}
	return nil
}

// batchLeavesPerWorker is the minimum number of leaves UpdateBatch hashes
// per goroutine before fanning out; below it the spawn cost dwarfs the
// hashing and the batch runs serially.
const batchLeavesPerWorker = 32

// UpdateBatch recomputes the given leaves from data (data(i) must return
// leaf i's contents, as in Fill) and then rebuilds only the union of their
// root paths, visiting each interior node once no matter how many dirty
// leaves share it. Cost is O(dirty) leaf hashes plus O(dirty · log n)
// interior hashes with shared prefixes deduplicated — the §4.4 incremental
// commitment, generalized from Update's single leaf. Large batches fan the
// leaf hashing out over up to workers goroutines (workers <= 0 selects
// DefaultWorkers()); the path fold is serial, as in Fill. Indices may be
// unsorted and may repeat; an out-of-range index fails the whole batch
// before any leaf is written.
func (t *Tree) UpdateBatch(indices []int, data func(i int) []byte, workers int) error {
	if len(indices) == 0 {
		return nil
	}
	for _, idx := range indices {
		if idx < 0 || idx >= t.leaves {
			return fmt.Errorf("merkle: leaf index %d out of range [0,%d)", idx, t.leaves)
		}
	}
	// Sort and dedupe into the scratch buffer first: the path fold needs
	// sorted positions anyway, and the parallel leaf pass must never hand
	// the same leaf slot to two goroutines (repeated indices would race on
	// the node write even though the bytes agree).
	cur := append(t.scratch[:0], indices...)
	sort.Ints(cur)
	w := 0
	for _, idx := range cur {
		if w > 0 && cur[w-1] == idx {
			continue
		}
		cur[w] = idx
		w++
	}
	cur = cur[:w]

	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if max := len(cur) / batchLeavesPerWorker; workers > max {
		workers = max
	}
	if workers <= 1 {
		t.hs.init()
		for _, idx := range cur {
			t.hs.leaf(idx, data(idx), &t.nodes[t.base+idx])
		}
	} else {
		var wg sync.WaitGroup
		chunk := (len(cur) + workers - 1) / workers
		for lo := 0; lo < len(cur); lo += chunk {
			hi := lo + chunk
			if hi > len(cur) {
				hi = len(cur)
			}
			wg.Add(1)
			go func(part []int) {
				defer wg.Done()
				var s hasher
				for _, idx := range part {
					s.leaf(idx, data(idx), &t.nodes[t.base+idx])
				}
			}(cur[lo:hi])
		}
		wg.Wait()
	}

	// Fold the union of root paths level by level. Positions stay sorted, so
	// each level's parents dedupe with a linear compaction; every interior
	// node on any dirty path is rehashed exactly once.
	for i := range cur {
		cur[i] += t.base
	}
	t.hs.init()
	for cur[0] > 1 {
		w := 0
		for _, pos := range cur {
			p := pos / 2
			if w > 0 && cur[w-1] == p {
				continue
			}
			cur[w] = p
			w++
			t.hs.inner(&t.nodes[2*p], &t.nodes[2*p+1], &t.nodes[p])
		}
		cur = cur[:w]
	}
	t.scratch = cur[:0]
	return nil
}

// Root returns the current top-level hash.
func (t *Tree) Root() Hash { return t.nodes[1] }

// Proof is an inclusion proof: the sibling hashes on the path from a leaf
// to the root. An auditor uses proofs to authenticate partial state
// downloads ("incrementally request the parts of the state that are
// accessed during replay", §4.4).
type Proof struct {
	Index    int
	Siblings []Hash
}

// Prove returns the inclusion proof for leaf index.
func (t *Tree) Prove(index int) (Proof, error) {
	if index < 0 || index >= t.leaves {
		return Proof{}, fmt.Errorf("merkle: leaf index %d out of range [0,%d)", index, t.leaves)
	}
	p := Proof{Index: index}
	for i := t.base + index; i > 1; i /= 2 {
		p.Siblings = append(p.Siblings, t.nodes[i^1])
	}
	return p, nil
}

// ErrProofMismatch reports that a proof does not connect the claimed leaf
// data to the given root.
var ErrProofMismatch = errors.New("merkle: proof does not match root")

// VerifyProof checks that data is the content of leaf proof.Index in a tree
// whose root is root.
func VerifyProof(root Hash, proof Proof, data []byte) error {
	h := HashLeaf(proof.Index, data)
	pos := proof.Index
	for _, sib := range proof.Siblings {
		if pos%2 == 0 {
			h = hashInner(h, sib)
		} else {
			h = hashInner(sib, h)
		}
		pos /= 2
	}
	if h != root {
		return ErrProofMismatch
	}
	return nil
}

// BatchProof proves a batch leaf update against two roots: it carries the
// old hashes of the updated leaves plus the sibling hashes on the union of
// their root paths that are not derivable from the updated leaves
// themselves. FoldVerify folds the old leaf hashes through the siblings to
// recover the pre-update root, and the new leaf contents through the same
// siblings to recover the post-update root — the §4.4 incremental
// commitment made checkable by a third party holding no tree at all.
type BatchProof struct {
	// Leaves is the number of addressable leaves in the proven tree; the
	// fold needs it to reproduce the tree's padded shape.
	Leaves int
	// Indices are the updated leaf indices, sorted and deduplicated.
	Indices []int
	// Old are the pre-update hashes of the updated leaves, parallel to
	// Indices.
	Old []Hash
	// Siblings are the interior/leaf hashes adjacent to the union of root
	// paths, in fold order (level by level from the leaves up), excluding
	// every node derivable from the updated leaves.
	Siblings []Hash
}

// ProveBatch extracts a BatchProof for the given leaf indices from the
// tree's current state. Call it before applying the corresponding
// UpdateBatch: the proof's Old hashes and Siblings are read from the
// pre-update tree, and the siblings are untouched by the update itself, so
// the same proof folds both the old and the new leaf set. Indices may be
// unsorted and may repeat.
func (t *Tree) ProveBatch(indices []int) (BatchProof, error) {
	if len(indices) == 0 {
		return BatchProof{Leaves: t.leaves}, nil
	}
	for _, idx := range indices {
		if idx < 0 || idx >= t.leaves {
			return BatchProof{}, fmt.Errorf("merkle: leaf index %d out of range [0,%d)", idx, t.leaves)
		}
	}
	sorted := append([]int(nil), indices...)
	sort.Ints(sorted)
	w := 0
	for _, idx := range sorted {
		if w > 0 && sorted[w-1] == idx {
			continue
		}
		sorted[w] = idx
		w++
	}
	sorted = sorted[:w]

	p := BatchProof{Leaves: t.leaves, Indices: sorted}
	p.Old = make([]Hash, len(sorted))
	cur := make([]int, len(sorted))
	for i, idx := range sorted {
		p.Old[i] = t.nodes[t.base+idx]
		cur[i] = t.base + idx
	}
	// Walk the union of root paths level by level, exactly as UpdateBatch
	// folds it. A position's sibling is emitted only when it is not itself
	// in the current level's set — siblings inside the set are recomputed by
	// the verifier from the leaves, not supplied.
	for cur[0] > 1 {
		w := 0
		for i := 0; i < len(cur); i++ {
			pos := cur[i]
			if pos%2 == 0 && i+1 < len(cur) && cur[i+1] == pos^1 {
				i++ // sibling pair both in the set: no external sibling
			} else {
				p.Siblings = append(p.Siblings, t.nodes[pos^1])
			}
			par := pos / 2
			if w > 0 && cur[w-1] == par {
				continue
			}
			cur[w] = par
			w++
		}
		cur = cur[:w]
	}
	return p, nil
}

// foldBatch folds a set of leaf hashes (parallel to proof.Indices) through
// proof.Siblings up to a root. It returns ErrProofMismatch when the proof's
// sibling stream is too short or too long for the tree shape.
func foldBatch(proof *BatchProof, leafHash []Hash) (Hash, error) {
	base := 1
	nLeaves := proof.Leaves
	if nLeaves < 1 {
		nLeaves = 1
	}
	for base < nLeaves {
		base *= 2
	}
	pos := make([]int, len(proof.Indices))
	hs := make([]Hash, len(proof.Indices))
	for i, idx := range proof.Indices {
		pos[i] = base + idx
		hs[i] = leafHash[i]
	}
	sib := proof.Siblings
	for pos[0] > 1 {
		w := 0
		for i := 0; i < len(pos); i++ {
			p := pos[i]
			var left, right Hash
			if p%2 == 0 && i+1 < len(pos) && pos[i+1] == p^1 {
				left, right = hs[i], hs[i+1]
				i++
			} else {
				if len(sib) == 0 {
					return Hash{}, ErrProofMismatch
				}
				if p%2 == 0 {
					left, right = hs[i], sib[0]
				} else {
					left, right = sib[0], hs[i]
				}
				sib = sib[1:]
			}
			par := p / 2
			if w > 0 && pos[w-1] == par {
				continue
			}
			pos[w] = par
			hs[w] = hashInner(left, right)
			w++
		}
		pos, hs = pos[:w], hs[:w]
	}
	if len(sib) != 0 {
		return Hash{}, ErrProofMismatch
	}
	return hs[0], nil
}

// FoldVerify checks a proof-carrying batch update: that proof's old leaf
// hashes fold to prevRoot, and that newData — the updated contents of
// proof.Indices, in the same order — folds through the same siblings to
// nextRoot. A verifier holding neither tree nor state authenticates the
// whole transition in O(dirty · log n); any tampering with the shipped
// pages, the proof, or either root yields ErrProofMismatch.
func FoldVerify(prevRoot, nextRoot Hash, proof BatchProof, newData [][]byte) error {
	if len(proof.Indices) != len(proof.Old) || len(proof.Indices) != len(newData) {
		return ErrProofMismatch
	}
	if len(proof.Indices) == 0 {
		if prevRoot != nextRoot || len(proof.Siblings) != 0 {
			return ErrProofMismatch
		}
		return nil
	}
	for i := 1; i < len(proof.Indices); i++ {
		if proof.Indices[i] <= proof.Indices[i-1] {
			return ErrProofMismatch
		}
	}
	if proof.Indices[0] < 0 || proof.Indices[len(proof.Indices)-1] >= proof.Leaves {
		return ErrProofMismatch
	}
	got, err := foldBatch(&proof, proof.Old)
	if err != nil {
		return err
	}
	if got != prevRoot {
		return ErrProofMismatch
	}
	newHashes := make([]Hash, len(newData))
	var s hasher
	for i, idx := range proof.Indices {
		s.leaf(idx, newData[i], &newHashes[i])
	}
	got, err = foldBatch(&proof, newHashes)
	if err != nil {
		return err
	}
	if got != nextRoot {
		return ErrProofMismatch
	}
	return nil
}

// RootOf computes the root over a full set of leaves without building a
// persistent tree. Used by auditors to check a downloaded snapshot against
// the root recorded in the log (§4.5, "Verifying the snapshot").
func RootOf(leaves [][]byte) Hash {
	return RootOfParallel(leaves, 1)
}

// RootOfParallel is RootOf with the leaf hashing fanned out over up to
// workers goroutines (workers <= 0 selects DefaultWorkers()).
func RootOfParallel(leaves [][]byte, workers int) Hash {
	t := newShell(len(leaves))
	t.Fill(func(i int) []byte { return leaves[i] }, workers)
	return t.Root()
}
