// Package merkle implements the hash tree the AVMM maintains over the AVM's
// state (paper §4.4, "Snapshots"). After each snapshot the monitor records
// the top-level hash in the tamper-evident log; an auditor who downloads a
// snapshot — or only the parts of the state accessed during replay — can
// authenticate what it received against that root.
package merkle

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
)

// HashSize is the size in bytes of all hashes used by the tree.
const HashSize = sha256.Size

// Hash is a node or leaf digest.
type Hash [HashSize]byte

// leafPrefix and innerPrefix domain-separate leaf hashes from interior
// hashes so that an interior node can never be presented as a leaf.
const (
	leafPrefix  = 0x00
	innerPrefix = 0x01
)

// HashLeaf digests one leaf (a page of machine state) together with its
// index, so that identical pages at different indices hash differently.
func HashLeaf(index int, data []byte) Hash {
	h := sha256.New()
	var hdr [9]byte
	hdr[0] = leafPrefix
	binary.BigEndian.PutUint64(hdr[1:], uint64(index))
	h.Write(hdr[:])
	h.Write(data)
	var out Hash
	copy(out[:], h.Sum(nil))
	return out
}

func hashInner(left, right Hash) Hash {
	h := sha256.New()
	h.Write([]byte{innerPrefix})
	h.Write(left[:])
	h.Write(right[:])
	var out Hash
	copy(out[:], h.Sum(nil))
	return out
}

// Tree is a fixed-shape binary hash tree over a constant number of leaves.
// The AVMM builds one tree per state region (memory pages, disk blocks) and
// updates leaves incrementally as pages are dirtied.
type Tree struct {
	leaves int
	// nodes stores the complete binary tree in heap order: nodes[1] is the
	// root, nodes[2i] and nodes[2i+1] are children of nodes[i]. Leaf i lives
	// at nodes[base+i] where base is the number of internal slots.
	nodes []Hash
	base  int
}

// New builds a tree over nLeaves leaves, all initialized to the hash of an
// empty page. nLeaves is rounded up to a power of two internally.
func New(nLeaves int) *Tree {
	if nLeaves < 1 {
		nLeaves = 1
	}
	base := 1
	for base < nLeaves {
		base *= 2
	}
	t := &Tree{leaves: nLeaves, base: base, nodes: make([]Hash, 2*base)}
	empty := HashLeaf(0, nil)
	for i := 0; i < base; i++ {
		if i < nLeaves {
			t.nodes[base+i] = HashLeaf(i, nil)
		} else {
			t.nodes[base+i] = empty
		}
	}
	for i := base - 1; i >= 1; i-- {
		t.nodes[i] = hashInner(t.nodes[2*i], t.nodes[2*i+1])
	}
	return t
}

// Leaves returns the number of addressable leaves.
func (t *Tree) Leaves() int { return t.leaves }

// Update recomputes the path from leaf index to the root after the leaf's
// data changed. It is O(log n), which is what makes incremental snapshots
// cheap (§4.4).
func (t *Tree) Update(index int, data []byte) error {
	if index < 0 || index >= t.leaves {
		return fmt.Errorf("merkle: leaf index %d out of range [0,%d)", index, t.leaves)
	}
	i := t.base + index
	t.nodes[i] = HashLeaf(index, data)
	for i > 1 {
		i /= 2
		t.nodes[i] = hashInner(t.nodes[2*i], t.nodes[2*i+1])
	}
	return nil
}

// Root returns the current top-level hash.
func (t *Tree) Root() Hash { return t.nodes[1] }

// Proof is an inclusion proof: the sibling hashes on the path from a leaf
// to the root. An auditor uses proofs to authenticate partial state
// downloads ("incrementally request the parts of the state that are
// accessed during replay", §4.4).
type Proof struct {
	Index    int
	Siblings []Hash
}

// Prove returns the inclusion proof for leaf index.
func (t *Tree) Prove(index int) (Proof, error) {
	if index < 0 || index >= t.leaves {
		return Proof{}, fmt.Errorf("merkle: leaf index %d out of range [0,%d)", index, t.leaves)
	}
	p := Proof{Index: index}
	for i := t.base + index; i > 1; i /= 2 {
		p.Siblings = append(p.Siblings, t.nodes[i^1])
	}
	return p, nil
}

// ErrProofMismatch reports that a proof does not connect the claimed leaf
// data to the given root.
var ErrProofMismatch = errors.New("merkle: proof does not match root")

// VerifyProof checks that data is the content of leaf proof.Index in a tree
// whose root is root.
func VerifyProof(root Hash, proof Proof, data []byte) error {
	h := HashLeaf(proof.Index, data)
	pos := proof.Index
	for _, sib := range proof.Siblings {
		if pos%2 == 0 {
			h = hashInner(h, sib)
		} else {
			h = hashInner(sib, h)
		}
		pos /= 2
	}
	if h != root {
		return ErrProofMismatch
	}
	return nil
}

// RootOf computes the root over a full set of leaves without building a
// persistent tree. Used by auditors to check a downloaded snapshot against
// the root recorded in the log (§4.5, "Verifying the snapshot").
func RootOf(leaves [][]byte) Hash {
	t := New(len(leaves))
	for i, leaf := range leaves {
		// Update cannot fail: i is always in range.
		_ = t.Update(i, leaf)
	}
	return t.Root()
}
