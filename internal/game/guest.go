// Package game implements "fragfest", the multiplayer shooter that plays
// the role of Counterstrike in the paper's evaluation (§5, §6): a server
// and up to seven clients compiled from MiniC into VM images, driven by bot
// players, with a catalog of 26 cheats implemented as real modifications of
// the client image. The workload reproduces the shape that matters for the
// AVMM: a frame-rendering loop that reads the clock (optionally busy-
// waiting under a frame cap, §6.5), small frequent packets (~25/s of 50-60
// bytes), and per-player state (ammo, health, position) that cheats
// manipulate.
package game

import (
	"fmt"
	"strings"

	"repro/internal/lang"
	"repro/internal/vm"
)

// MaxPlayers is the protocol-wide player table size; node index equals
// player id (node 0 is the server).
const MaxPlayers = 8

// ports is the prelude mapping device ports into MiniC constants.
const ports = `
const CLOCK_LO = 0x01;
const RNG = 0x03;
const INPUT_STATUS = 0x10;
const INPUT_DATA = 0x11;
const NET_RX_STATUS = 0x20;
const NET_RX_LEN = 0x21;
const NET_RX_FROM = 0x22;
const NET_RX_BYTE = 0x23;
const NET_RX_DONE = 0x24;
const NET_TX_BYTE = 0x28;
const NET_TX_COMMIT = 0x29;
const TIMER_PERIOD = 0x40;
const FRAME_PORT = 0x50;
const DEBUG = 0x60;
`

// clientTemplate is the fragfest client. Template parameters are
// substituted by BuildClient. The marker lines (movement, aim, ammo,
// health, visibility, ...) are the anchors the cheat catalog patches —
// exactly how real cheats patch well-known code sites in a game binary.
const clientTemplate = ports + `
const MY_ID = {{MY_ID}};
const SERVER = 0;
const MAXP = 8;
const SPEED = 3;
const COOLDOWN_TICKS = 3;
const SWITCH_DELAY = 5;
const FOV = 90;
const SMOKE_DENSITY = 4;
const RENDER_WORK = {{RENDER_WORK}};
const FRAME_CAP = {{FRAME_CAP}};
const FRAME_BUDGET = {{FRAME_BUDGET}};

var run = 1;
var tick = 0;
var last_tick = 0;
var x = 0;
var y = 100;
var ammo = 30;
var health = 100;
var score = 0;
var deaths = 0;
var cooldown = 0;
var aim = 0;
var dx = 0;
var dy = 0;
var firing = 0;
var reload_req = 0;
var jump_req = 0;
var duck = 0;
var weapon = 0;
var blind = 0;
var seq = 0;
var acc = 1;
var shots_fired = 0;

var en_x[8];
var en_y[8];
var en_hp[8];
var en_vis[8];

interrupt(0) func on_tick() { tick = tick + 1; }
interrupt(1) func on_net() { }
interrupt(2) func on_key() { }

func send_join() {
	out(NET_TX_BYTE, 'J');
	out(NET_TX_BYTE, MY_ID);
	out(NET_TX_BYTE, MY_ID + 0x40);
	out(NET_TX_COMMIT, SERVER);
}

func send_update(fire, spread) {
	out(NET_TX_BYTE, 'U');
	out(NET_TX_BYTE, MY_ID);
	out(NET_TX_BYTE, seq & 0xFF);
	out(NET_TX_BYTE, x & 0xFF);
	out(NET_TX_BYTE, (x >> 8) & 0xFF);
	out(NET_TX_BYTE, y & 0xFF);
	out(NET_TX_BYTE, (y >> 8) & 0xFF);
	out(NET_TX_BYTE, aim & 0xFF);
	out(NET_TX_BYTE, fire | (duck << 1) | (jump_req << 3));
	out(NET_TX_BYTE, ammo & 0xFF);
	out(NET_TX_BYTE, health & 0xFF);
	out(NET_TX_BYTE, spread & 0xFF);
	out(NET_TX_BYTE, weapon & 0xFF);
	out(NET_TX_BYTE, tick & 0xFF);
	var p = 0;
	while (p < 36) { out(NET_TX_BYTE, 0); p = p + 1; }
	out(NET_TX_COMMIT, SERVER);
	seq = seq + 1;
}

func handle_input(ev) {
	dx = (ev & 3) - 1;
	dy = ((ev >> 2) & 3) - 1;
	aim = (aim + ((ev >> 4) & 0xFF) + 128) & 0xFF;
	firing = (ev >> 12) & 1;
	reload_req = reload_req | ((ev >> 13) & 1);
	jump_req = (ev >> 14) & 1;
	duck = (ev >> 15) & 1;
	var w = (ev >> 16) & 3;
	if (w != weapon) { weapon = w; cooldown = SWITCH_DELAY; }
}

func handle_packet() {
	var n = in(NET_RX_LEN);
	var t = in(NET_RX_BYTE);
	if (t == 'S') {
		var cnt = in(NET_RX_BYTE);
		var i = 0;
		while (i < cnt) {
			var id = in(NET_RX_BYTE);
			var pxl = in(NET_RX_BYTE);
			var pxh = in(NET_RX_BYTE);
			var pyl = in(NET_RX_BYTE);
			var pyh = in(NET_RX_BYTE);
			var hp = in(NET_RX_BYTE);
			var vis = in(NET_RX_BYTE);
			if (id < MAXP) {
				en_x[id] = pxl + (pxh << 8);
				en_y[id] = pyl + (pyh << 8);
				en_hp[id] = hp;
				en_vis[id] = vis;
			}
			i = i + 1;
		}
	}
	if (t == 'H') {
		var dmg = in(NET_RX_BYTE);
		health = health - dmg;
		blind = 12;
		if (health < 1) {
			deaths = deaths + 1;
			health = 100;
			x = MY_ID * 120;
			y = 100;
			ammo = 30;
		}
	}
	if (t == 'K') {
		var killer = in(NET_RX_BYTE);
		var victim = in(NET_RX_BYTE);
		if (killer == MY_ID) { score = score + 1; }
	}
	if (t == 'R') { run = 0; }
	out(NET_RX_DONE, 0);
}

func do_tick() {
	x = x + dx * SPEED;
	y = y + dy * SPEED;
	if (x < 0) { x = 0; }
	if (x > 1023) { x = 1023; }
	if (y < 0) { y = 0; }
	if (y > 1023) { y = 1023; }
	if (jump_req && (tick & 7) == 0) { y = y + 4; }
	var fire = 0;
	var spread = 0;
	if (firing && cooldown == 0 && ammo > 0) {
		ammo = ammo - 1;
		spread = in(RNG) & 7;
		aim = (aim + 7) & 0xFF;
		cooldown = COOLDOWN_TICKS;
		shots_fired = shots_fired + 1;
		fire = 1;
	}
	if (cooldown > 0) { cooldown = cooldown - 1; }
	if (reload_req && ammo == 0) { ammo = 30; reload_req = 0; cooldown = COOLDOWN_TICKS + 4; }
	send_update(fire, spread);
}

func render() {
	var t0 = in(CLOCK_LO);
	var i = 0;
	while (i < RENDER_WORK) { acc = acc * 1103515245 + 12345; i = i + 1; }
	if (blind > 0) {
		blind = blind - 1;
		acc = acc + 255;
	} else {
		i = 0;
		while (i < MAXP) {
			if (en_vis[i] && i != MY_ID) {
				acc = acc + en_x[i] * 31 + en_y[i] + en_hp[i] * FOV;
			}
			i = i + 1;
		}
		i = 0;
		while (i < SMOKE_DENSITY) { acc = acc * 69069 + 1; i = i + 1; }
	}
	var t1 = in(CLOCK_LO);
	acc = acc + (t1 - t0);
	out(FRAME_PORT, acc);
	if (FRAME_CAP) {
		while (in(CLOCK_LO) - t0 < FRAME_BUDGET) { }
	}
}

func main() {
	out(TIMER_PERIOD, 40000);
	sti();
	send_join();
	while (run) {
		while (in(INPUT_STATUS) > 0) { handle_input(in(INPUT_DATA)); }
		while (in(NET_RX_STATUS) > 0) { handle_packet(); }
		if (tick != last_tick) { last_tick = tick; do_tick(); }
		render();
	}
	halt();
}
`

// serverSource is the authoritative game server: it tracks joins, applies
// client updates, resolves hits against the player a shooter is aiming at,
// and broadcasts per-recipient state (with visibility computed server-side,
// which is what makes wallhacks cheating rather than information every
// client legitimately has).
const serverSource = ports + `
const MAXP = 8;
const HIT_RANGE = 600;
const DMG = 34;

var px[8];
var py[8];
var php[8];
var pammo[8];
var pscore[8];
var joined[8];
var tick = 0;
var last_tick = 0;
var shots_seen = 0;
var kills = 0;

interrupt(0) func on_tick() { tick = tick + 1; }
interrupt(1) func on_net() { }

func iabs(v) {
	if (v < 0) { return 0 - v; }
	return v;
}

func do_hit(shooter) {
	var best = 255;
	var bestd = 100000;
	var i = 0;
	while (i < MAXP) {
		if (i != shooter && joined[i]) {
			var d = iabs(px[i] - px[shooter]) + iabs(py[i] - py[shooter]);
			if (d < bestd) { bestd = d; best = i; }
		}
		i = i + 1;
	}
	if (best < MAXP && bestd < HIT_RANGE) {
		out(NET_TX_BYTE, 'H');
		out(NET_TX_BYTE, DMG);
		out(NET_TX_COMMIT, best);
		php[best] = php[best] - DMG;
		if (php[best] < 1) {
			php[best] = 100;
			px[best] = best * 120;
			py[best] = 100;
			pscore[shooter] = pscore[shooter] + 1;
			kills = kills + 1;
			var j = 1;
			while (j < MAXP) {
				if (joined[j]) {
					out(NET_TX_BYTE, 'K');
					out(NET_TX_BYTE, shooter);
					out(NET_TX_BYTE, best);
					out(NET_TX_COMMIT, j);
				}
				j = j + 1;
			}
		}
	}
}

func handle_packet() {
	var n = in(NET_RX_LEN);
	var from = in(NET_RX_FROM);
	var t = in(NET_RX_BYTE);
	if (t == 'J') {
		var id = in(NET_RX_BYTE);
		var name = in(NET_RX_BYTE);
		if (id < MAXP && id == from && joined[id] == 0) {
			joined[id] = 1;
			px[id] = id * 120;
			py[id] = 100;
			php[id] = 100;
			pammo[id] = 30;
		}
	}
	if (t == 'U') {
		var uid = in(NET_RX_BYTE);
		var sq = in(NET_RX_BYTE);
		var ux = in(NET_RX_BYTE) + (in(NET_RX_BYTE) << 8);
		var uy = in(NET_RX_BYTE) + (in(NET_RX_BYTE) << 8);
		var uaim = in(NET_RX_BYTE);
		var flags = in(NET_RX_BYTE);
		var uammo = in(NET_RX_BYTE);
		var uhp = in(NET_RX_BYTE);
		var uspread = in(NET_RX_BYTE);
		var uweap = in(NET_RX_BYTE);
		var utick = in(NET_RX_BYTE);
		if (uid < MAXP && uid == from && joined[uid]) {
			px[uid] = ux;
			py[uid] = uy;
			php[uid] = uhp;
			if (flags & 1) {
				shots_seen = shots_seen + 1;
				do_hit(uid);
			}
		}
	}
	out(NET_RX_DONE, 0);
}

func cnt_joined() {
	var c = 0;
	var i = 0;
	while (i < MAXP) { if (joined[i]) { c = c + 1; } i = i + 1; }
	return c;
}

func bcast_state() {
	var i = 1;
	while (i < MAXP) {
		if (joined[i]) {
			out(NET_TX_BYTE, 'S');
			out(NET_TX_BYTE, cnt_joined());
			var j = 0;
			while (j < MAXP) {
				if (joined[j]) {
					out(NET_TX_BYTE, j);
					out(NET_TX_BYTE, px[j] & 0xFF);
					out(NET_TX_BYTE, (px[j] >> 8) & 0xFF);
					out(NET_TX_BYTE, py[j] & 0xFF);
					out(NET_TX_BYTE, (py[j] >> 8) & 0xFF);
					out(NET_TX_BYTE, php[j] & 0xFF);
					var vis = 0;
					if (iabs(px[j] - px[i]) + iabs(py[j] - py[i]) < 400) { vis = 1; }
					if (j == i) { vis = 1; }
					out(NET_TX_BYTE, vis);
				}
				j = j + 1;
			}
			out(NET_TX_COMMIT, i);
		}
		i = i + 1;
	}
}

func main() {
	out(TIMER_PERIOD, 40000);
	sti();
	while (1) {
		while (in(NET_RX_STATUS) > 0) { handle_packet(); }
		if (tick != last_tick) { last_tick = tick; bcast_state(); }
		wfi();
	}
}
`

// BuildOptions tunes the client build.
type BuildOptions struct {
	// RenderWork is the per-frame rendering loop count; the default is
	// calibrated so a bare-hardware machine renders ~158 fps.
	RenderWork int
	// FrameCap enables the frame-rate cap (busy-wait on the clock, §6.5).
	FrameCap bool
	// FrameBudgetUs is the capped per-frame time (default 13888 µs = 72 fps,
	// the Counterstrike default cap).
	FrameBudgetUs int
	// Cheat, if non-nil, applies a cheat's source transformation.
	Cheat *Cheat
}

// DefaultRenderWork yields ~158 fps on the default game machine speed.
const DefaultRenderWork = 88

// DefaultFrameBudgetUs is the 72 fps default cap.
const DefaultFrameBudgetUs = 13888

// GameNsPerInstr is the virtual CPU speed used for game machines: 2 µs per
// instruction (500 kIPS), which puts realistic frame budgets near the
// paper's frame rates.
const GameNsPerInstr = 2000

// BuildClient compiles the client image for the given player id (== node
// index).
func BuildClient(id int, opts BuildOptions) (*vm.Image, error) {
	if id <= 0 || id >= MaxPlayers {
		return nil, fmt.Errorf("game: player id %d out of range [1,%d)", id, MaxPlayers)
	}
	if opts.RenderWork == 0 {
		opts.RenderWork = DefaultRenderWork
	}
	if opts.FrameBudgetUs == 0 {
		opts.FrameBudgetUs = DefaultFrameBudgetUs
	}
	src := clientTemplate
	src = strings.ReplaceAll(src, "{{MY_ID}}", fmt.Sprint(id))
	src = strings.ReplaceAll(src, "{{RENDER_WORK}}", fmt.Sprint(opts.RenderWork))
	cap := 0
	if opts.FrameCap {
		cap = 1
	}
	src = strings.ReplaceAll(src, "{{FRAME_CAP}}", fmt.Sprint(cap))
	src = strings.ReplaceAll(src, "{{FRAME_BUDGET}}", fmt.Sprint(opts.FrameBudgetUs))
	name := fmt.Sprintf("fragfest-client-%d", id)
	if opts.Cheat != nil {
		var err error
		src, err = opts.Cheat.Apply(src)
		if err != nil {
			return nil, fmt.Errorf("game: applying cheat %q: %w", opts.Cheat.Name, err)
		}
		name += "+" + opts.Cheat.Name
	}
	img, err := lang.Compile(name, src, lang.Options{MemSize: 128 * 1024})
	if err != nil {
		return nil, fmt.Errorf("game: compiling client %d: %w", id, err)
	}
	return img, nil
}

// BuildServer compiles the server image.
func BuildServer() (*vm.Image, error) {
	img, err := lang.Compile("fragfest-server", serverSource, lang.Options{MemSize: 128 * 1024})
	if err != nil {
		return nil, fmt.Errorf("game: compiling server: %w", err)
	}
	return img, nil
}
