package game

import (
	"testing"

	"repro/internal/audit"
	"repro/internal/avmm"
	"repro/internal/tevlog"
)

// TestScenarioDeterminism: two worlds built from the same configuration
// produce bit-identical logs on every machine — the property that makes
// every experiment in this repository reproducible.
func TestScenarioDeterminism(t *testing.T) {
	run := func() []tevlog.Hash {
		s, err := NewScenario(ScenarioConfig{
			Players: 3, Mode: avmm.ModeAVMMNoSig, Seed: 77,
			SnapshotEveryNs: 4_000_000_000,
		})
		if err != nil {
			t.Fatal(err)
		}
		s.Run(10_000_000_000)
		var heads []tevlog.Hash
		for _, mon := range append([]*avmm.Monitor{s.Server}, s.Players...) {
			heads = append(heads, mon.Log.LastHash())
		}
		return heads
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("node %d produced different logs across identical runs", i)
		}
	}
}

// TestSeedChangesExecution: different seeds must actually change the match
// (otherwise the determinism test above would be vacuous).
func TestSeedChangesExecution(t *testing.T) {
	logHead := func(seed uint64) tevlog.Hash {
		s, err := NewScenario(ScenarioConfig{Players: 2, Mode: avmm.ModeAVMMNoSig, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		s.Run(8_000_000_000)
		return s.Player(1).Log.LastHash()
	}
	if logHead(1) == logHead(2) {
		t.Fatal("different seeds produced identical executions")
	}
}

// TestVMwareRecModeIsReplayable: the recording-only configuration (plain
// replay log, no tamper evidence) still supports semantic-only audits —
// what plain deterministic-replay systems like ReVirt provide, and the
// baseline AVMs build on.
func TestVMwareRecModeIsReplayable(t *testing.T) {
	s, err := NewScenario(ScenarioConfig{Players: 2, Mode: avmm.ModeVMwareRec, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(10_000_000_000)
	res, err := s.AuditNode("player1")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Passed {
		t.Fatalf("vmware-rec honest replay failed: %v", res.Fault)
	}
	if res.Replay.SendsMatched == 0 {
		t.Fatal("no outputs matched in replay")
	}
	// But recording-only logs carry no commitments: a modified log is NOT
	// detectable (the gap between replay and accountability).
	entries := s.Player(1).Log.All()
	mid := len(entries) / 2
	entries[mid].Content = append([]byte(nil), entries[mid].Content...)
	if len(entries[mid].Content) > 0 {
		entries[mid].Content[0] ^= 0xFF
	}
	a := &audit.Auditor{
		Keys: s.Keys, RefImage: s.RefImgs["player1"], RNGSeed: s.RNGSeedOf(1),
		TamperEvident: false, VerifySignatures: false,
	}
	res2 := a.AuditFull("player1", 1, entries, nil)
	// The mutation may or may not cause a replay divergence, but no LOG
	// check can fire — that is exactly why AVMs add the hash chain.
	if res2.Fault != nil && res2.Fault.Check == audit.CheckLog {
		t.Fatal("recording-only log reported tamper evidence it cannot have")
	}
}
