package game

import (
	"fmt"

	"repro/internal/audit"
	"repro/internal/avmm"
	"repro/internal/logcomp"
	"repro/internal/netsim"
	"repro/internal/sig"
	"repro/internal/snapshot"
	"repro/internal/tevlog"
	"repro/internal/vm"
)

// ScenarioConfig assembles a fragfest match, modeled on the paper's
// experimental setup (§6.2): one server plus N players on a switched LAN,
// each machine recording under a chosen configuration.
type ScenarioConfig struct {
	// Players is the number of player machines (default 3, like the paper).
	Players int
	// Mode is the evaluation configuration for every machine.
	Mode avmm.Mode
	// Cost is the virtual-time cost model.
	Cost avmm.CostModel
	// Seed drives bots, device RNGs and the network.
	Seed uint64
	// FrameCap enables the client frame-rate cap (§6.5).
	FrameCap bool
	// ClockDelayOpt enables the consecutive-clock-read delay optimization.
	ClockDelayOpt bool
	// SnapshotEveryNs takes periodic snapshots when nonzero.
	SnapshotEveryNs uint64
	// SnapshotMaxDirtyBytes takes a snapshot early once a machine dirties
	// this many bytes since its last one (0 = periodic cadence only).
	SnapshotMaxDirtyBytes uint64
	// SnapshotMaxInstr takes a snapshot early once a machine retires this
	// many instructions since its last one (0 = periodic cadence only).
	SnapshotMaxInstr uint64
	// RenderWork overrides the per-frame render loop length (0 = default).
	RenderWork int
	// NetLatencyNs is the one-way link latency (default 96 µs, switch-like).
	NetLatencyNs uint64
	// NetJitterNs bounds random extra delay.
	NetJitterNs uint64
	// CheatPlayer, if in [1,Players], runs Cheat's modified image.
	CheatPlayer int
	// Cheat is the catalog entry CheatPlayer installs.
	Cheat *Cheat
	// ExternalAimbot, if in [1,Players], gives that player's bot
	// machine-generated perfect-fire inputs WITHOUT modifying the image —
	// the re-engineered external cheat of §5.4 that AVMs cannot detect.
	ExternalAimbot int
	// BotIntervalNs is the cadence of bot input events (default 100 ms).
	BotIntervalNs uint64
	// KeySeed namespaces deterministic RSA keys.
	KeySeed string
	// FakeSignatures substitutes RSA-768-sized keyed digests for real RSA
	// in signing modes: identical wire and log bytes, negligible wall cost.
	// Crypto cost still enters results through the virtual cost model.
	// Performance experiments use this; security tests must not.
	FakeSignatures bool
	// SlowdownPerInstrNs artificially slows every player machine, modeling
	// CPU contention (online audits, §6.11's deliberate slowdown).
	SlowdownPerInstrNs uint64
	// OnAfterBuild, if set, runs after the scenario is assembled and before
	// the first slice — the hook experiments use to attach extra drivers.
	OnAfterBuild func(*Scenario) error
	// AuditDisableFusion disables superinstruction fusion in every auditor
	// this scenario assembles — the interpreter ablation, plumbed from
	// avm-bench's -nofusion flag. Verdicts are unaffected.
	AuditDisableFusion bool
}

// Scenario is a running fragfest match.
type Scenario struct {
	Cfg     ScenarioConfig
	Net     *netsim.Network
	World   *avmm.World
	Server  *avmm.Monitor
	Players []*avmm.Monitor // Players[i] is node i+1
	RefImgs map[sig.NodeID]*vm.Image
	Keys    *sig.KeyStore
	bots    []*botDriver
}

// NewScenario builds the world: compiles images, boots monitors, wires
// bots.
func NewScenario(cfg ScenarioConfig) (*Scenario, error) {
	if cfg.Players == 0 {
		cfg.Players = 3
	}
	if cfg.Players < 1 || cfg.Players >= MaxPlayers {
		return nil, fmt.Errorf("game: %d players out of range [1,%d)", cfg.Players, MaxPlayers-1)
	}
	if cfg.BotIntervalNs == 0 {
		cfg.BotIntervalNs = 100_000_000
	}
	if cfg.NetLatencyNs == 0 {
		cfg.NetLatencyNs = 96_000
	}
	if cfg.KeySeed == "" {
		cfg.KeySeed = "fragfest"
	}
	s := &Scenario{
		Cfg:     cfg,
		Net:     netsim.New(netsim.Config{BaseLatencyNs: cfg.NetLatencyNs, JitterNs: cfg.NetJitterNs, Seed: cfg.Seed + 1}),
		Keys:    sig.NewKeyStore(),
		RefImgs: make(map[sig.NodeID]*vm.Image),
	}
	s.World = avmm.NewWorld(s.Net, s.Keys)

	signer := func(id sig.NodeID) sig.Signer {
		if cfg.Mode.Signs() {
			if cfg.FakeSignatures {
				return sig.SizedSigner{Node: id, Size: sig.PaperSigBytes}
			}
			return sig.MustGenerateRSA(id, sig.DefaultKeyBits, cfg.KeySeed)
		}
		return sig.NullSigner{Node: id}
	}

	serverImg, err := BuildServer()
	if err != nil {
		return nil, err
	}
	s.RefImgs["server"] = serverImg
	s.Server, err = avmm.NewMonitor(avmm.Config{
		Node: "server", Index: 0, Mode: cfg.Mode, Cost: cfg.Cost,
		Signer: signer("server"), Keys: s.Keys, Image: serverImg, Net: s.Net,
		RNGSeed: cfg.Seed + 100, NsPerInstr: GameNsPerInstr,
		SnapshotEveryNs: cfg.SnapshotEveryNs, ClockDelayOpt: cfg.ClockDelayOpt,
		SnapshotMaxDirtyBytes: cfg.SnapshotMaxDirtyBytes, SnapshotMaxInstr: cfg.SnapshotMaxInstr,
	})
	if err != nil {
		return nil, err
	}
	if err := s.World.Add(s.Server); err != nil {
		return nil, err
	}

	for i := 1; i <= cfg.Players; i++ {
		node := sig.NodeID(fmt.Sprintf("player%d", i))
		opts := BuildOptions{RenderWork: cfg.RenderWork, FrameCap: cfg.FrameCap}
		refImg, err := BuildClient(i, opts)
		if err != nil {
			return nil, err
		}
		s.RefImgs[node] = refImg
		runImg := refImg
		if cfg.CheatPlayer == i && cfg.Cheat != nil {
			opts.Cheat = cfg.Cheat
			runImg, err = BuildClient(i, opts)
			if err != nil {
				return nil, err
			}
		}
		mon, err := avmm.NewMonitor(avmm.Config{
			Node: node, Index: i, Mode: cfg.Mode, Cost: cfg.Cost,
			Signer: signer(node), Keys: s.Keys, Image: runImg, Net: s.Net,
			RNGSeed: cfg.Seed + 100 + uint64(i), NsPerInstr: GameNsPerInstr,
			SnapshotEveryNs: cfg.SnapshotEveryNs, ClockDelayOpt: cfg.ClockDelayOpt,
			SnapshotMaxDirtyBytes: cfg.SnapshotMaxDirtyBytes, SnapshotMaxInstr: cfg.SnapshotMaxInstr,
			SlowdownPerInstrNs: cfg.SlowdownPerInstrNs,
		})
		if err != nil {
			return nil, err
		}
		if err := s.World.Add(mon); err != nil {
			return nil, err
		}
		s.Players = append(s.Players, mon)
		bot := &botDriver{
			mon: mon, rng: cfg.Seed*2654435761 + uint64(i)*0x9E3779B9,
			intervalNs: cfg.BotIntervalNs,
			aggressive: cfg.ExternalAimbot == i,
		}
		s.bots = append(s.bots, bot)
		s.World.Drivers = append(s.World.Drivers, bot)
	}
	if cfg.OnAfterBuild != nil {
		if err := cfg.OnAfterBuild(s); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Run advances the match to the given virtual time.
func (s *Scenario) Run(untilNs uint64) { s.World.Run(untilNs) }

// Player returns the monitor for player id (1-based).
func (s *Scenario) Player(id int) *avmm.Monitor { return s.Players[id-1] }

// RNGSeedOf returns the device seed node idx booted with (part of the
// reference configuration an auditor needs).
func (s *Scenario) RNGSeedOf(idx int) uint64 { return s.Cfg.Seed + 100 + uint64(idx) }

// CollectAuths gathers all authenticators other machines hold for node,
// plus the machine's own head commitment — what an auditor assembles in the
// multi-party scenario (§4.6).
func (s *Scenario) CollectAuths(node sig.NodeID) ([]tevlog.Authenticator, error) {
	var auths []tevlog.Authenticator
	all := append([]*avmm.Monitor{s.Server}, s.Players...)
	var target *avmm.Monitor
	for _, mon := range all {
		if mon.Node() == node {
			target = mon
			continue
		}
		auths = append(auths, mon.AuthenticatorsFor(node)...)
	}
	if target == nil {
		return nil, fmt.Errorf("game: unknown node %q", node)
	}
	if target.Log.Len() > 0 {
		head, err := target.Log.LastAuthenticator()
		if err != nil {
			return nil, err
		}
		auths = append(auths, head)
	}
	return auths, nil
}

// auditorFor locates the node's monitor and assembles the auditor and
// authenticator set shared by the serial and parallel audit entry points.
func (s *Scenario) auditorFor(node sig.NodeID) (*avmm.Monitor, []tevlog.Authenticator, *audit.Auditor, error) {
	all := append([]*avmm.Monitor{s.Server}, s.Players...)
	var target *avmm.Monitor
	for _, mon := range all {
		if mon.Node() == node {
			target = mon
		}
	}
	if target == nil {
		return nil, nil, nil, fmt.Errorf("game: unknown node %q", node)
	}
	auths, err := s.CollectAuths(node)
	if err != nil {
		return nil, nil, nil, err
	}
	a := &audit.Auditor{
		Keys: s.Keys, RefImage: s.RefImgs[node], RNGSeed: s.RNGSeedOf(target.Index()),
		TamperEvident: s.Cfg.Mode.TamperEvident(), VerifySignatures: s.Cfg.Mode.Signs(),
		DisableFusion: s.Cfg.AuditDisableFusion,
	}
	return target, auths, a, nil
}

// AuditNode runs a full audit of the given node against its reference
// image.
func (s *Scenario) AuditNode(node sig.NodeID) (*audit.Result, error) {
	target, auths, a, err := s.auditorFor(node)
	if err != nil {
		return nil, err
	}
	return a.AuditFull(node, uint32(target.Index()), target.Log.Entries(), auths), nil
}

// AuditNodeParallel is AuditNode on the epoch-parallel engine: the node's
// log is partitioned at its snapshot entries and the epochs are replayed
// concurrently on up to workers goroutines, with each epoch's starting
// state pulled from the node's snapshot store and verified against the
// root committed in the log. The verdict is identical to AuditNode's.
func (s *Scenario) AuditNodeParallel(node sig.NodeID, workers int) (*audit.Result, error) {
	target, auths, a, err := s.auditorFor(node)
	if err != nil {
		return nil, err
	}
	res, _, err := a.Audit(audit.AuditRequest{
		Node: node, NodeIdx: uint32(target.Index()), Engine: audit.EngineParallel,
		Entries: target.Log.Entries(), Auths: auths,
		Options: audit.EngineOptions{
			Workers:     workers,
			Materialize: func(snapIdx uint32) (*snapshot.Restored, error) { return target.Snaps.Materialize(int(snapIdx)) },
		},
	})
	return res, err
}

// AuditNodeStream is AuditNode on the streaming pipeline: the node's log is
// compressed into the columnar container and audited straight from it —
// decode, chain verification and epoch replay overlapped in bounded memory.
// The verdict is identical to AuditNode's.
func (s *Scenario) AuditNodeStream(node sig.NodeID, workers, window int) (*audit.Result, audit.StreamStats, error) {
	target, auths, a, err := s.auditorFor(node)
	if err != nil {
		return nil, audit.StreamStats{}, err
	}
	compressed := logcomp.CompressEntries(target.Log.Entries())
	res, stats, err := a.Audit(audit.AuditRequest{
		Node: node, NodeIdx: uint32(target.Index()), Engine: audit.EngineStream,
		Compressed: compressed, Auths: auths,
		Options: audit.EngineOptions{
			Workers: workers, Window: window,
			Materialize: func(snapIdx uint32) (*snapshot.Restored, error) { return target.Snaps.Materialize(int(snapIdx)) },
		},
	})
	return res, stats.Stream, err
}

// AuditInputs exposes the raw materials of an audit of node — the target
// monitor, the collected authenticators, and a configured auditor — for
// callers that drive the pipeline in nonstandard ways (streaming-mode
// experiments, CLI tools).
func (s *Scenario) AuditInputs(node sig.NodeID) (*avmm.Monitor, []tevlog.Authenticator, *audit.Auditor, error) {
	return s.auditorFor(node)
}

// AuditNodeDist is AuditNode with the replay stage fanned out over an
// epoch backend — the in-process pool when opts.Backend is nil, simulated
// network workers, or real TCP workers. The node's snapshot store supplies
// epoch starting states (root-verified by the coordinator before
// dispatch); the verdict is byte-identical to AuditNode's.
func (s *Scenario) AuditNodeDist(node sig.NodeID, opts audit.DistOptions) (*audit.Result, audit.DistStats, error) {
	target, auths, a, err := s.auditorFor(node)
	if err != nil {
		return nil, audit.DistStats{}, err
	}
	if opts.Materialize == nil {
		opts.Materialize = func(snapIdx uint32) (*snapshot.Restored, error) {
			return target.Snaps.Materialize(int(snapIdx))
		}
	}
	if opts.DeltaSource == nil {
		opts.DeltaSource = func(k uint32) (*snapshot.Delta, error) {
			return target.Snaps.Delta(int(k))
		}
	}
	res, stats, err := a.Audit(audit.AuditRequest{
		Node: node, NodeIdx: uint32(target.Index()), Engine: audit.EngineDist,
		Entries: target.Log.Entries(), Auths: auths,
		Options: opts.EngineOptions, Backend: opts.Backend,
	})
	return res, stats.Dist, err
}

// botDriver synthesizes player input: a seeded random walk with aim
// wiggle, fire bursts, reloads, occasional jumps and weapon switches. The
// aggressive variant holds fire continuously — the §5.4 external aimbot,
// which produces cheat-like inputs without modifying the image.
type botDriver struct {
	mon        *avmm.Monitor
	rng        uint64
	intervalNs uint64
	nextNs     uint64
	aggressive bool
}

func (b *botDriver) rand() uint32 {
	b.rng ^= b.rng << 13
	b.rng ^= b.rng >> 7
	b.rng ^= b.rng << 17
	return uint32(b.rng)
}

// Tick implements avmm.Driver.
func (b *botDriver) Tick(_ *avmm.World, nowNs uint64) {
	for nowNs >= b.nextNs {
		b.nextNs += b.intervalNs
		r := b.rand()
		dx := r % 3
		dy := (r >> 2) % 3
		aimDelta := (r >> 4) & 0x3F // small wiggle, re-centered by +128 offset
		fire := uint32(0)
		if b.aggressive || (r>>10)&7 < 3 { // ~38% of intervals fire
			fire = 1
		}
		reload := (r >> 13) & 1
		jump := (r >> 14) & 1
		duck := (r >> 15) & 1
		weapon := uint32(0)
		if (r>>16)&0xF == 0 { // occasional switch
			weapon = (r >> 20) & 3
		}
		ev := dx | dy<<2 | (aimDelta+96)<<4 | fire<<12 | reload<<13 | jump<<14 | duck<<15 | weapon<<16
		b.mon.InjectInput(ev)
	}
}
