package game

import (
	"fmt"
	"strings"
)

// Cheat is one entry of the catalog modeled on the paper's 26 downloaded
// Counterstrike cheats (Table 1). Each cheat is a real behavioural
// modification of the client image — source-level patches standing in for
// the binary patches, loadable modules and companion programs real cheats
// use (all of which end up as a modified image inside the AVM, which is
// what replay detects).
type Cheat struct {
	// ID is the catalog index (1-26).
	ID int
	// Name is the conventional cheat name.
	Name string
	// Desc says what the cheat does for the cheater.
	Desc string
	// Class2 marks cheats whose effect is inconsistent with ANY correct
	// execution (unlimited ammo, unlimited health, teleport, speedhack):
	// they are detectable no matter how they are implemented, even by
	// hardware outside the AVM (§5.4). The paper found 4 of 26 in this
	// class.
	Class2 bool
	// Replace lists source rewrites: each pair is (anchor, replacement).
	// Every anchor must occur in the client source exactly as written.
	Replace [][2]string
	// Append is extra source (helper functions) added to the program.
	Append string
}

// Apply performs the cheat's source transformation.
func (c *Cheat) Apply(src string) (string, error) {
	for _, r := range c.Replace {
		if !strings.Contains(src, r[0]) {
			return "", fmt.Errorf("anchor %q not found in client source", r[0])
		}
		src = strings.Replace(src, r[0], r[1], 1)
	}
	return src + c.Append, nil
}

// Source anchors. Keeping them as named constants documents exactly which
// code sites the catalog attacks and keeps the patches in sync with the
// client template.
const (
	anchorAim    = "aim = (aim + ((ev >> 4) & 0xFF) + 128) & 0xFF;"
	anchorFire   = "if (firing && cooldown == 0 && ammo > 0) {"
	anchorAmmo   = "ammo = ammo - 1;"
	anchorDamage = "health = health - dmg;"
	anchorVis    = "if (en_vis[i] && i != MY_ID) {"
	anchorMove   = "x = x + dx * SPEED;"
	anchorSpeed  = "const SPEED = 3;"
	anchorCool   = "const COOLDOWN_TICKS = 3;"
	anchorRecoil = "aim = (aim + 7) & 0xFF;"
	anchorSpread = "spread = in(RNG) & 7;"
	anchorReload = "if (reload_req && ammo == 0) { ammo = 30; reload_req = 0; cooldown = COOLDOWN_TICKS + 4; }"
	anchorJump   = "if (jump_req && (tick & 7) == 0) { y = y + 4; }"
	anchorFOV    = "const FOV = 90;"
	anchorBright = "acc = acc * 1103515245 + 12345;"
	anchorBlind  = "blind = 12;"
	anchorSmoke  = "const SMOKE_DENSITY = 4;"
	anchorChams  = "acc = acc + en_x[i] * 31 + en_y[i] + en_hp[i] * FOV;"
	anchorSwitch = "const SWITCH_DELAY = 5;"
	anchorFlags  = "out(NET_TX_BYTE, fire | (duck << 1) | (jump_req << 3));"
	anchorName   = "out(NET_TX_BYTE, MY_ID + 0x40);"
	anchorTick   = "out(NET_TX_BYTE, tick & 0xFF);"
	anchorFrame  = "out(FRAME_PORT, acc);"
)

// Catalog returns the 26-cheat catalog. The counts mirror Table 1: all 26
// are detectable; the 4 Class2 entries are detectable in any
// implementation.
func Catalog() []*Cheat {
	helperNearest := `
func cheat_nearest() {
	var best = 0;
	var bestd = 100000;
	var i = 0;
	while (i < MAXP) {
		if (i != MY_ID && en_hp[i] > 0) {
			var ddx = en_x[i] - x;
			if (ddx < 0) { ddx = 0 - ddx; }
			var ddy = en_y[i] - y;
			if (ddy < 0) { ddy = 0 - ddy; }
			if (ddx + ddy < bestd) { bestd = ddx + ddy; best = i; }
		}
		i = i + 1;
	}
	return best;
}
`
	return []*Cheat{
		{ID: 1, Name: "aimbot", Desc: "aims exactly at the nearest enemy instead of following player input",
			Replace: [][2]string{{anchorAim, "aim = (en_x[cheat_nearest()] + en_y[cheat_nearest()]) & 0xFF;"}},
			Append:  helperNearest},
		{ID: 2, Name: "triggerbot", Desc: "fires automatically whenever an enemy is close",
			Replace: [][2]string{{anchorFire, "if ((firing || cheat_close()) && cooldown == 0 && ammo > 0) {"}},
			Append: helperNearest + `
func cheat_close() {
	var b = cheat_nearest();
	var ddx = en_x[b] - x;
	if (ddx < 0) { ddx = 0 - ddx; }
	var ddy = en_y[b] - y;
	if (ddy < 0) { ddy = 0 - ddy; }
	if (ddx + ddy < 500) { return 1; }
	return 0;
}
`},
		{ID: 3, Name: "wallhack", Desc: "renders enemies through opaque walls (ignores server visibility)",
			Replace: [][2]string{{anchorVis, "if (i != MY_ID) {"}}},
		{ID: 4, Name: "esp-overlay", Desc: "overlays enemy health and position on the HUD",
			Replace: [][2]string{{anchorFrame, "var e = 0;\n\twhile (e < MAXP) { acc = acc + en_hp[e] * 13 + en_x[e]; e = e + 1; }\n\tout(FRAME_PORT, acc);"}}},
		{ID: 5, Name: "radar", Desc: "draws a minimap of all player positions",
			Replace: [][2]string{{anchorFrame, "var rr = 0;\n\twhile (rr < MAXP) { acc = acc ^ (en_x[rr] << 4) ^ en_y[rr]; rr = rr + 1; }\n\tout(FRAME_PORT, acc);"}}},
		{ID: 6, Name: "unlimited-ammo", Desc: "never decrements ammunition", Class2: true,
			Replace: [][2]string{{anchorAmmo, "ammo = ammo + 0;"}}},
		{ID: 7, Name: "unlimited-health", Desc: "ignores damage notifications from the server", Class2: true,
			Replace: [][2]string{{anchorDamage, "health = health - (dmg & 0);"}}},
		{ID: 8, Name: "teleport", Desc: "jumps across the map while firing", Class2: true,
			Replace: [][2]string{{anchorMove, "x = x + dx * SPEED;\n\tif (firing) { x = x + 80; }"}}},
		{ID: 9, Name: "speedhack", Desc: "moves at triple speed", Class2: true,
			Replace: [][2]string{{anchorSpeed, "const SPEED = 9;"}}},
		{ID: 10, Name: "rapid-fire", Desc: "removes the fire-rate cooldown",
			Replace: [][2]string{{anchorCool, "const COOLDOWN_TICKS = 0;"}}},
		{ID: 11, Name: "norecoil", Desc: "suppresses recoil after each shot",
			Replace: [][2]string{{anchorRecoil, "aim = aim & 0xFF;"}}},
		{ID: 12, Name: "nospread", Desc: "removes random bullet spread",
			Replace: [][2]string{{anchorSpread, "spread = 0;"}}},
		{ID: 13, Name: "autoreload", Desc: "reloads instantly without the reload key",
			Replace: [][2]string{{anchorReload, "if (ammo == 0) { ammo = 30; reload_req = 0; }"}}},
		{ID: 14, Name: "bunnyhop", Desc: "perfectly timed automatic jumping",
			Replace: [][2]string{{anchorJump, "if ((tick & 1) == 0) { y = y + 4; }"}}},
		{ID: 15, Name: "spinbot", Desc: "spins the view to dodge headshots",
			Replace: [][2]string{{anchorAim, "aim = (aim + 64) & 0xFF;"}}},
		{ID: 16, Name: "fov-hack", Desc: "widens the field of view beyond the allowed maximum",
			Replace: [][2]string{{anchorFOV, "const FOV = 180;"}}},
		{ID: 17, Name: "fullbright", Desc: "disables darkness in the renderer",
			Replace: [][2]string{{anchorBright, "acc = acc * 1103515245 + 99999;"}}},
		{ID: 18, Name: "noflash", Desc: "ignores blinding after being hit",
			Replace: [][2]string{{anchorBlind, "blind = 0;"}}},
		{ID: 19, Name: "nosmoke", Desc: "sees through smoke effects",
			Replace: [][2]string{{anchorSmoke, "const SMOKE_DENSITY = 0;"}}},
		{ID: 20, Name: "chams", Desc: "renders enemies in bright solid colors",
			Replace: [][2]string{{anchorChams, "acc = acc + en_x[i] * 37 + en_y[i] * 5 + en_hp[i] * FOV;"}}},
		{ID: 21, Name: "knife-range", Desc: "claims extended melee range in update packets",
			Replace: [][2]string{{anchorFlags, "out(NET_TX_BYTE, fire | (duck << 1) | 4 | (jump_req << 3));"}}},
		{ID: 22, Name: "fastswitch", Desc: "removes the weapon-switch delay",
			Replace: [][2]string{{anchorSwitch, "const SWITCH_DELAY = 0;"}}},
		{ID: 23, Name: "ghost", Desc: "renders from other players' viewpoints",
			Replace: [][2]string{{anchorFrame, "acc = acc + en_x[(tick & 7)] + en_y[(tick & 7)];\n\tout(FRAME_PORT, acc);"}}},
		{ID: 24, Name: "autoduck", Desc: "automatically crouches while firing",
			Replace: [][2]string{{anchorFlags, "out(NET_TX_BYTE, fire | ((duck | fire) << 1) | (jump_req << 3));"}}},
		{ID: 25, Name: "namestealer", Desc: "impersonates another player's name on join",
			Replace: [][2]string{{anchorName, "out(NET_TX_BYTE, MY_ID + 0x41);"}}},
		{ID: 26, Name: "lag-exploit", Desc: "backdates timestamps in update packets",
			Replace: [][2]string{{anchorTick, "out(NET_TX_BYTE, (tick - 5) & 0xFF);"}}},
	}
}

// CatalogByName returns the named cheat.
func CatalogByName(name string) (*Cheat, error) {
	for _, c := range Catalog() {
		if c.Name == name {
			return c, nil
		}
	}
	return nil, fmt.Errorf("game: no cheat named %q", name)
}
