package game

import (
	"testing"

	"repro/internal/avmm"
	"repro/internal/sig"
)

func TestCatalogHas26DistinctWorkingCheats(t *testing.T) {
	cheats := Catalog()
	if len(cheats) != 26 {
		t.Fatalf("catalog has %d cheats, want 26 (Table 1)", len(cheats))
	}
	ref, err := BuildClient(1, BuildOptions{})
	if err != nil {
		t.Fatalf("reference client: %v", err)
	}
	refHash := ref.Hash()
	seen := make(map[[32]byte]string)
	class2 := 0
	for _, c := range cheats {
		img, err := BuildClient(1, BuildOptions{Cheat: c})
		if err != nil {
			t.Fatalf("cheat %q does not apply: %v", c.Name, err)
		}
		h := img.Hash()
		if h == refHash {
			t.Errorf("cheat %q produced an image identical to the reference", c.Name)
		}
		if prev, dup := seen[h]; dup {
			t.Errorf("cheats %q and %q produce identical images", c.Name, prev)
		}
		seen[h] = c.Name
		if c.Class2 {
			class2++
		}
	}
	if class2 != 4 {
		t.Errorf("catalog marks %d cheats as class 2, want 4 (Table 1)", class2)
	}
}

// runShortMatch plays a short match and returns the scenario.
func runShortMatch(t *testing.T, cfg ScenarioConfig, durationNs uint64) *Scenario {
	t.Helper()
	s, err := NewScenario(cfg)
	if err != nil {
		t.Fatalf("scenario: %v", err)
	}
	s.Run(durationNs)
	for _, mon := range append([]*avmm.Monitor{s.Server}, s.Players...) {
		if mon.Machine.FaultInfo != nil {
			t.Fatalf("guest %s faulted: %v", mon.Node(), mon.Machine.FaultInfo)
		}
	}
	return s
}

func TestMatchProducesGameplay(t *testing.T) {
	s := runShortMatch(t, ScenarioConfig{Mode: avmm.ModeAVMMNoSig, Seed: 42}, 20_000_000_000)
	for i := 1; i <= 3; i++ {
		p := s.Player(i)
		if p.Devs.Frames == 0 {
			t.Errorf("player %d rendered no frames", i)
		}
		if p.Log.Len() == 0 {
			t.Errorf("player %d has an empty log", i)
		}
	}
	// The server must have seen shots: its shots_seen counter is global
	// state we can read from the console? Simpler: traffic flowed.
	if s.Net.NodeStats(1).FramesSent == 0 {
		t.Error("player 1 sent no network frames")
	}
	if s.Net.NodeStats(0).FramesSent == 0 {
		t.Error("server sent no network frames")
	}
}

func TestHonestPlayersPassAudit(t *testing.T) {
	s := runShortMatch(t, ScenarioConfig{Mode: avmm.ModeAVMMNoSig, Seed: 7}, 15_000_000_000)
	for _, node := range []sig.NodeID{"player1", "player2", "player3", "server"} {
		res, err := s.AuditNode(node)
		if err != nil {
			t.Fatalf("audit %s: %v", node, err)
		}
		if !res.Passed {
			t.Errorf("honest %s failed audit: %v", node, res.Fault)
		}
	}
}

func TestCheaterFailsAuditHonestPass(t *testing.T) {
	cheat, err := CatalogByName("unlimited-ammo")
	if err != nil {
		t.Fatal(err)
	}
	s := runShortMatch(t, ScenarioConfig{
		Mode: avmm.ModeAVMMNoSig, Seed: 7, CheatPlayer: 2, Cheat: cheat,
	}, 15_000_000_000)

	res, err := s.AuditNode("player2")
	if err != nil {
		t.Fatal(err)
	}
	if res.Passed {
		t.Fatal("cheating player2 passed audit")
	}
	for _, node := range []sig.NodeID{"player1", "player3"} {
		res, err := s.AuditNode(node)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Passed {
			t.Errorf("honest %s failed audit: %v", node, res.Fault)
		}
	}
}

func TestExternalAimbotEvadesDetection(t *testing.T) {
	// The re-engineered cheat of §5.4: inputs are forged OUTSIDE the AVM
	// (our bot holds fire permanently), the image is unmodified. The audit
	// must PASS — this is the documented limitation that motivates trusted
	// input hardware (§7.2).
	s := runShortMatch(t, ScenarioConfig{
		Mode: avmm.ModeAVMMNoSig, Seed: 7, ExternalAimbot: 2,
	}, 15_000_000_000)
	res, err := s.AuditNode("player2")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Passed {
		t.Fatalf("external aimbot was detected (%v); AVMs should not detect input-level cheats", res.Fault)
	}
}

func TestFrameCapBusyWaitFloodsClockReads(t *testing.T) {
	uncapped := runShortMatch(t, ScenarioConfig{Mode: avmm.ModeAVMMNoSig, Seed: 3}, 5_000_000_000)
	capped := runShortMatch(t, ScenarioConfig{Mode: avmm.ModeAVMMNoSig, Seed: 3, FrameCap: true}, 5_000_000_000)
	u := uncapped.Player(1).Devs.ClockReads()
	c := capped.Player(1).Devs.ClockReads()
	if c < u*3 {
		t.Errorf("frame cap produced %d clock reads vs %d uncapped; expected a large blowup (§6.5)", c, u)
	}
	// And the clock-delay optimization recovers it.
	opt := runShortMatch(t, ScenarioConfig{Mode: avmm.ModeAVMMNoSig, Seed: 3, FrameCap: true, ClockDelayOpt: true}, 5_000_000_000)
	o := opt.Player(1).Devs.ClockReads()
	if o*2 > c {
		t.Errorf("clock-delay optimization left %d clock reads vs %d without; expected at least 2x reduction", o, c)
	}
}

func TestSnapshotsDetectDormantImagePatch(t *testing.T) {
	// A cheat image whose modified code never runs is still caught by
	// snapshot-root comparison: the code pages differ from the reference.
	cheat, err := CatalogByName("noflash") // inactive until the player is hit
	if err != nil {
		t.Fatal(err)
	}
	s := runShortMatch(t, ScenarioConfig{
		Mode: avmm.ModeAVMMNoSig, Seed: 21, CheatPlayer: 1, Cheat: cheat,
		SnapshotEveryNs: 2_000_000_000,
	}, 6_000_000_000)
	res, err := s.AuditNode("player1")
	if err != nil {
		t.Fatal(err)
	}
	if res.Passed {
		t.Fatal("cheating player1 passed audit despite snapshots")
	}
}

func TestAllCheatsDetected(t *testing.T) {
	// Table 1: every cheat in the catalog is detected when installed. Run
	// each in a short 2-player match with snapshots enabled.
	if testing.Short() {
		t.Skip("runs 26 matches; skipped in -short")
	}
	for _, cheat := range Catalog() {
		cheat := cheat
		t.Run(cheat.Name, func(t *testing.T) {
			s := runShortMatch(t, ScenarioConfig{
				Players: 2, Mode: avmm.ModeAVMMNoSig, Seed: 99,
				CheatPlayer: 1, Cheat: cheat, SnapshotEveryNs: 2_000_000_000,
			}, 8_000_000_000)
			res, err := s.AuditNode("player1")
			if err != nil {
				t.Fatal(err)
			}
			if res.Passed {
				t.Fatalf("cheat %q was not detected", cheat.Name)
			}
			res2, err := s.AuditNode("player2")
			if err != nil {
				t.Fatal(err)
			}
			if !res2.Passed {
				t.Errorf("honest player2 failed audit during %q match: %v", cheat.Name, res2.Fault)
			}
		})
	}
}

func TestAuditIsDeterministic(t *testing.T) {
	s := runShortMatch(t, ScenarioConfig{Players: 2, Mode: avmm.ModeAVMMNoSig, Seed: 5}, 8_000_000_000)
	r1, err := s.AuditNode("player1")
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.AuditNode("player1")
	if err != nil {
		t.Fatal(err)
	}
	if r1.Passed != r2.Passed || r1.Replay != r2.Replay {
		t.Errorf("two audits of the same log disagree: %+v vs %+v", r1.Replay, r2.Replay)
	}
}

func BenchmarkRecordGameSecond(b *testing.B) {
	// Wall cost of recording one virtual second of a 3-player match.
	for i := 0; i < b.N; i++ {
		s, err := NewScenario(ScenarioConfig{Mode: avmm.ModeAVMMNoSig, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		s.Run(1_000_000_000)
	}
}
