package wire

// This file defines the wire formats of the distributed audit fan-out: the
// session frame a coordinator sends a replay worker once per connection
// (the reference configuration — image, node, RNG seed), the epoch job
// frames that follow (verified start root, materialized start state, entry
// run), and the verdict frames a worker sends back. Workers are completely
// scenario-agnostic: everything a replay needs travels in these frames, so
// `avm-audit -serve` holds no recording, no keys and no guest sources.
//
// The codec reuses the package's primitive writer/reader; like the rest of
// the wire package, every Parse* rejects trailing bytes and truncations
// with precise errors.

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/tevlog"
	"repro/internal/vm"
)

// DistFrameKind tags the frames of the coordinator↔worker protocol. Each
// frame travels length-prefixed on the transport; the kind is the first
// byte of the frame body.
type DistFrameKind uint8

// Distributed-audit protocol frames.
const (
	// DistFrameSession opens a connection: the coordinator ships the
	// reference configuration the worker replays under.
	DistFrameSession DistFrameKind = 1 + iota
	// DistFrameSessionOK acknowledges a session (empty body).
	DistFrameSessionOK
	// DistFrameJob carries one epoch replay job.
	DistFrameJob
	// DistFrameVerdict carries one epoch's replay outcome.
	DistFrameVerdict
	// DistFrameError carries a worker-side protocol error (string body).
	DistFrameError

	// The frames below extend the protocol for the long-running coordinator
	// service: one connection multiplexes many audit sessions (each log being
	// audited registers a session once; its reference image ships once per
	// worker), carries pipelined jobs tagged with their session, and stays
	// under heartbeat surveillance. A worker that is draining refuses new
	// jobs explicitly instead of dying mid-epoch.

	// DistFrameMuxSession registers a session on a multiplexed connection:
	// uvarint session id, then the AuditSession body.
	DistFrameMuxSession
	// DistFrameMuxSessionOK acknowledges a multiplexed session: uvarint
	// session id.
	DistFrameMuxSessionOK
	// DistFrameMuxJob carries one epoch job on a multiplexed connection:
	// uvarint session id, then the AuditJob body.
	DistFrameMuxJob
	// DistFrameMuxVerdict carries one epoch verdict back: uvarint session
	// id, then the AuditVerdict body. (session id, epoch index) is the
	// verdict's unique key.
	DistFrameMuxVerdict
	// DistFramePing probes worker liveness: uvarint sequence number.
	DistFramePing
	// DistFramePong answers a ping, echoing its sequence number.
	DistFramePong
	// DistFrameDrain tells the coordinator this worker is draining: the job
	// that prompted it was refused and must be re-dispatched elsewhere, and
	// no further jobs will be accepted on this connection.
	DistFrameDrain
)

// AppendMuxID prefixes a multiplexed frame body with its session id.
func AppendMuxID(id uint64, body []byte) []byte {
	return append(binary.AppendUvarint(make([]byte, 0, len(body)+binary.MaxVarintLen64), id), body...)
}

// SplitMuxID strips the session id prefix from a multiplexed frame body.
func SplitMuxID(b []byte) (uint64, []byte, error) {
	id, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, errors.New("wire: truncated mux session id")
	}
	return id, b[n:], nil
}

// AuditSession is the per-audit reference configuration a worker needs to
// replay epochs: the trusted reference image (the coordinator is the
// auditor; workers are its helpers and hold no independent trust), the
// audited node's identity and the reference RNG seed.
type AuditSession struct {
	Node             string
	RNGSeed          uint64
	DisablePredecode bool
	DisableFusion    bool

	// Reference image, field for field (vm.Image).
	ImageName string
	Code      []byte
	TextSize  uint32
	Entry     uint32
	Vectors   []uint32
	MemSize   uint64
	Disk      []byte
}

// SessionFromImage builds the session frame contents from a reference
// image and audit parameters.
func SessionFromImage(node string, img *vm.Image, rngSeed uint64, disablePredecode, disableFusion bool) *AuditSession {
	s := &AuditSession{
		Node: node, RNGSeed: rngSeed, DisablePredecode: disablePredecode, DisableFusion: disableFusion,
		ImageName: img.Name, Code: img.Code, TextSize: uint32(img.TextSize),
		Entry: img.Entry, MemSize: uint64(img.MemSize), Disk: img.Disk,
	}
	s.Vectors = make([]uint32, len(img.Vectors))
	copy(s.Vectors, img.Vectors[:])
	return s
}

// Image reassembles the reference image.
func (s *AuditSession) Image() (*vm.Image, error) {
	img := &vm.Image{
		Name: s.ImageName, Code: s.Code, TextSize: int(s.TextSize),
		Entry: s.Entry, MemSize: int(s.MemSize), Disk: s.Disk,
	}
	if len(s.Vectors) != len(img.Vectors) {
		return nil, fmt.Errorf("wire: session carries %d interrupt vectors, machine has %d",
			len(s.Vectors), len(img.Vectors))
	}
	copy(img.Vectors[:], s.Vectors)
	return img, nil
}

func boolByte(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// Marshal serializes the session.
func (s *AuditSession) Marshal() []byte {
	w := &writer{}
	w.str(s.Node)
	w.uvarint(s.RNGSeed)
	w.uvarint(boolByte(s.DisablePredecode))
	w.uvarint(boolByte(s.DisableFusion))
	w.str(s.ImageName)
	w.bytes(s.Code)
	w.uvarint(uint64(s.TextSize))
	w.uvarint(uint64(s.Entry))
	w.uvarint(uint64(len(s.Vectors)))
	for _, v := range s.Vectors {
		w.uvarint(uint64(v))
	}
	w.uvarint(s.MemSize)
	w.bytes(s.Disk)
	return w.b
}

// ParseAuditSession decodes a session frame body.
func ParseAuditSession(b []byte) (*AuditSession, error) {
	r := &reader{b: b}
	s := &AuditSession{Node: r.str(), RNGSeed: r.uvarint(), DisablePredecode: r.uvarint() != 0, DisableFusion: r.uvarint() != 0}
	s.ImageName = r.str()
	s.Code = r.bytes()
	s.TextSize = uint32(r.uvarint())
	s.Entry = uint32(r.uvarint())
	n := r.uvarint()
	if r.err == nil && n > uint64(len(r.b)) {
		r.err = fmt.Errorf("wire: session claims %d vectors, %d bytes remain", n, len(r.b))
	}
	if r.err == nil {
		s.Vectors = make([]uint32, n)
		for i := range s.Vectors {
			s.Vectors[i] = uint32(r.uvarint())
		}
	}
	s.MemSize = r.uvarint()
	s.Disk = r.bytes()
	if err := r.done(); err != nil {
		return nil, fmt.Errorf("parsing audit session: %w", err)
	}
	return s, nil
}

// AuditJob is one wire-shipped epoch replay job: a self-contained unit an
// untrusted worker can replay with nothing but the session's reference
// configuration. Non-boot jobs carry the materialized start state; the
// coordinator has already verified it against StartRoot (the root the
// audited log committed at the epoch's starting snapshot), and the worker
// re-verifies while seeding its live tree — the check is free there.
type AuditJob struct {
	Index     uint64
	Boot      bool
	StartSnap uint32
	StartSeq  uint64
	StartRoot [32]byte

	// Materialized start state (empty for boot jobs, which replay from the
	// session's reference image).
	Mem        []byte
	Machine    []byte
	Device     []byte
	AuthDevice []byte

	// Entries is the epoch's entry run. Chain hashes are not shipped: chain
	// verification is the coordinator's job, and replay never reads them.
	Entries []tevlog.Entry
}

// Marshal serializes the job.
func (j *AuditJob) Marshal() []byte {
	w := &writer{}
	w.uvarint(j.Index)
	w.uvarint(boolByte(j.Boot))
	w.uvarint(uint64(j.StartSnap))
	w.uvarint(j.StartSeq)
	w.hash(j.StartRoot)
	w.bytes(j.Mem)
	w.bytes(j.Machine)
	w.bytes(j.Device)
	w.bytes(j.AuthDevice)
	w.uvarint(uint64(len(j.Entries)))
	for i := range j.Entries {
		w.b = j.Entries[i].Marshal(w.b)
	}
	return w.b
}

// ParseAuditJob decodes a job frame body.
func ParseAuditJob(b []byte) (*AuditJob, error) {
	r := &reader{b: b}
	j := &AuditJob{Index: r.uvarint(), Boot: r.uvarint() != 0}
	j.StartSnap = uint32(r.uvarint())
	j.StartSeq = r.uvarint()
	j.StartRoot = r.hash()
	j.Mem = r.bytes()
	j.Machine = r.bytes()
	j.Device = r.bytes()
	j.AuthDevice = r.bytes()
	n := r.uvarint()
	if r.err != nil {
		return nil, fmt.Errorf("parsing audit job: %w", r.err)
	}
	if n > uint64(len(r.b)) {
		return nil, fmt.Errorf("parsing audit job: claims %d entries, %d bytes remain", n, len(r.b))
	}
	j.Entries = make([]tevlog.Entry, 0, n)
	for i := uint64(0); i < n; i++ {
		e, rest, err := tevlog.UnmarshalEntry(r.b)
		if err != nil {
			return nil, fmt.Errorf("parsing audit job entry %d: %w", i, err)
		}
		r.b = rest
		j.Entries = append(j.Entries, e)
	}
	if err := r.done(); err != nil {
		return nil, fmt.Errorf("parsing audit job: %w", err)
	}
	return j, nil
}

// AuditVerdict is one epoch's replay outcome on the wire: the replay stats
// and, when the epoch faulted, the full fault report — enough for the
// coordinator's merge to be byte-identical to an in-process audit.
type AuditVerdict struct {
	Index uint64

	Instructions      uint64
	EntriesConsumed   uint64
	SendsMatched      uint64
	NondetsConsumed   uint64
	EventsInjected    uint64
	SnapshotsVerified uint64

	HasFault      bool
	FaultNode     string
	FaultCheck    string
	FaultDetail   string
	FaultEntrySeq uint64
	FaultLandmark vm.Landmark
}

// Marshal serializes the verdict.
func (v *AuditVerdict) Marshal() []byte {
	w := &writer{}
	w.uvarint(v.Index)
	w.uvarint(v.Instructions)
	w.uvarint(v.EntriesConsumed)
	w.uvarint(v.SendsMatched)
	w.uvarint(v.NondetsConsumed)
	w.uvarint(v.EventsInjected)
	w.uvarint(v.SnapshotsVerified)
	w.uvarint(boolByte(v.HasFault))
	if v.HasFault {
		w.str(v.FaultNode)
		w.str(v.FaultCheck)
		w.str(v.FaultDetail)
		w.uvarint(v.FaultEntrySeq)
		w.landmark(v.FaultLandmark)
	}
	return w.b
}

// ParseAuditVerdict decodes a verdict frame body.
func ParseAuditVerdict(b []byte) (*AuditVerdict, error) {
	r := &reader{b: b}
	v := &AuditVerdict{
		Index:             r.uvarint(),
		Instructions:      r.uvarint(),
		EntriesConsumed:   r.uvarint(),
		SendsMatched:      r.uvarint(),
		NondetsConsumed:   r.uvarint(),
		EventsInjected:    r.uvarint(),
		SnapshotsVerified: r.uvarint(),
	}
	v.HasFault = r.uvarint() != 0
	if v.HasFault {
		v.FaultNode = r.str()
		v.FaultCheck = r.str()
		v.FaultDetail = r.str()
		v.FaultEntrySeq = r.uvarint()
		v.FaultLandmark = r.landmark()
	}
	if err := r.done(); err != nil {
		return nil, fmt.Errorf("parsing audit verdict: %w", err)
	}
	return v, nil
}

// MaxDistFrame bounds one protocol frame (a job carrying a full
// materialized state plus an epoch of entries dominates; 1 GiB is far
// beyond any machine this VM models and keeps a corrupt length prefix from
// allocating unboundedly).
const MaxDistFrame = 1 << 30

// ErrFrameTooLarge reports a length prefix beyond MaxDistFrame.
var ErrFrameTooLarge = errors.New("wire: distributed-audit frame exceeds MaxDistFrame")
