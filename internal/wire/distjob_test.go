package wire

import (
	"reflect"
	"testing"

	"repro/internal/tevlog"
	"repro/internal/vm"
)

func testSession() *AuditSession {
	img := &vm.Image{
		Name: "ref-img", Code: []byte{1, 2, 3, 4, 5}, TextSize: 4,
		Entry: 0x1000, MemSize: 1 << 18, Disk: []byte("disk contents"),
	}
	img.Vectors[0] = 0x2000
	img.Vectors[3] = 0x2400
	return SessionFromImage("player1", img, 0xDEADBEEF, true, true)
}

func TestAuditSessionRoundTrip(t *testing.T) {
	s := testSession()
	got, err := ParseAuditSession(s.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, got) {
		t.Fatalf("session round trip:\n got %+v\nwant %+v", got, s)
	}
	img, err := got.Image()
	if err != nil {
		t.Fatal(err)
	}
	if img.Hash() != mustImage(t, s).Hash() {
		t.Fatal("reassembled image hash differs")
	}
}

func mustImage(t *testing.T, s *AuditSession) *vm.Image {
	t.Helper()
	img, err := s.Image()
	if err != nil {
		t.Fatal(err)
	}
	return img
}

func TestAuditJobRoundTrip(t *testing.T) {
	job := &AuditJob{
		Index: 7, StartSnap: 3, StartSeq: 991,
		Mem: make([]byte, 8192), Machine: []byte{9, 8, 7},
		Device: []byte("dev"), AuthDevice: []byte("authdev"),
		Entries: []tevlog.Entry{
			{Seq: 1, Type: tevlog.TypeSend, Content: []byte("hello")},
			{Seq: 2, Type: tevlog.TypeNondet, Content: nil},
			{Seq: 3, Type: tevlog.TypeSnapshot, Content: []byte{0xFF, 0x00}},
		},
	}
	for i := range job.StartRoot {
		job.StartRoot[i] = byte(i)
	}
	for i := range job.Mem {
		job.Mem[i] = byte(i * 31)
	}
	got, err := ParseAuditJob(job.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	// The codec does not ship chain hashes or distinguish nil from empty
	// content; normalize before comparing.
	if len(job.Entries[1].Content) == 0 {
		job.Entries[1].Content = []byte{}
	}
	if len(got.Entries[1].Content) == 0 {
		got.Entries[1].Content = []byte{}
	}
	if !reflect.DeepEqual(job, got) {
		t.Fatalf("job round trip:\n got %+v\nwant %+v", got, job)
	}
}

func TestAuditVerdictRoundTrip(t *testing.T) {
	for _, v := range []*AuditVerdict{
		{Index: 0, Instructions: 123456, EntriesConsumed: 77, SendsMatched: 3,
			NondetsConsumed: 40, EventsInjected: 9, SnapshotsVerified: 2},
		{Index: 5, Instructions: 1, HasFault: true, FaultNode: "player2",
			FaultCheck: "snapshot", FaultDetail: "state root ab does not match",
			FaultEntrySeq: 4242, FaultLandmark: vm.Landmark{ICount: 99, Branches: 7, PC: 0x30}},
	} {
		got, err := ParseAuditVerdict(v.Marshal())
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(v, got) {
			t.Fatalf("verdict round trip:\n got %+v\nwant %+v", got, v)
		}
	}
}

func TestMuxIDRoundTrip(t *testing.T) {
	for _, id := range []uint64{0, 1, 127, 128, 1 << 20, 1<<64 - 1} {
		body := []byte("payload")
		framed := AppendMuxID(id, body)
		gotID, gotBody, err := SplitMuxID(framed)
		if err != nil {
			t.Fatalf("id %d: %v", id, err)
		}
		if gotID != id || string(gotBody) != string(body) {
			t.Fatalf("mux round trip: got (%d, %q), want (%d, %q)", gotID, gotBody, id, body)
		}
	}
	if _, _, err := SplitMuxID(nil); err == nil {
		t.Fatal("empty mux body accepted")
	}
	if _, _, err := SplitMuxID([]byte{0x80}); err == nil {
		t.Fatal("truncated uvarint accepted")
	}
}

// TestDistCodecTruncation: every strict prefix of a valid encoding must be
// rejected, never crash, and never round-trip as something else.
func TestDistCodecTruncation(t *testing.T) {
	session := testSession().Marshal()
	job := (&AuditJob{Index: 1, Boot: true,
		Entries: []tevlog.Entry{{Seq: 1, Type: tevlog.TypeSend, Content: []byte("x")}}}).Marshal()
	verdict := (&AuditVerdict{Index: 2, HasFault: true, FaultDetail: "d"}).Marshal()

	for name, tc := range map[string]struct {
		buf   []byte
		parse func([]byte) error
	}{
		"session": {session, func(b []byte) error { _, err := ParseAuditSession(b); return err }},
		"job":     {job, func(b []byte) error { _, err := ParseAuditJob(b); return err }},
		"verdict": {verdict, func(b []byte) error { _, err := ParseAuditVerdict(b); return err }},
	} {
		if err := tc.parse(tc.buf); err != nil {
			t.Fatalf("%s: valid encoding rejected: %v", name, err)
		}
		for cut := 0; cut < len(tc.buf); cut++ {
			if err := tc.parse(tc.buf[:cut]); err == nil {
				t.Errorf("%s: truncation at %d/%d accepted", name, cut, len(tc.buf))
			}
		}
		if err := tc.parse(append(append([]byte(nil), tc.buf...), 0)); err == nil {
			t.Errorf("%s: trailing byte accepted", name)
		}
	}
}
