package wire

// Worker-initiated registration frames. A push-configured fleet
// (AddWorker) is the wrong shape for autoscaled deployments, where workers
// appear and disappear without an operator editing a flag. Instead the
// coordinator exposes a registration listener and each worker dials in
// with a Hello announcing the address its job listener serves on and what
// it can do; the coordinator answers with a Welcome and, when it accepts,
// dials the announced address through the existing AddWorker path. The
// registration connection then stays open doing nothing: the worker
// watches it, and a read error (coordinator crash or restart) triggers a
// redial-with-backoff and a fresh Hello — which the coordinator's
// AddWorker dedupe turns into a reattach, not a duplicate worker.

import "fmt"

// Registration protocol frames, extending the DistFrame* set.
const (
	// DistFrameHello is a worker's self-registration: a RegistrationHello
	// body announcing its job-listener address and capabilities.
	DistFrameHello DistFrameKind = DistFrameMuxNeedState + 1 + iota
	// DistFrameWelcome answers a Hello with a RegistrationWelcome body:
	// accepted (the coordinator will dial the announced address) or
	// rejected with a reason.
	DistFrameWelcome
)

// RegistrationVersion is the registration protocol version this build
// speaks. A coordinator rejects Hellos from other versions rather than
// guessing at field semantics.
const RegistrationVersion = 1

// Worker capability bits carried in RegistrationHello.Capabilities.
const (
	// CapDeltaJobs: the worker understands delta-shipped epoch jobs
	// (DistFrameMuxDeltaJob / DistFrameNeedState).
	CapDeltaJobs uint64 = 1 << iota
)

// RegistrationHello is a worker's self-registration announcement.
type RegistrationHello struct {
	// Version is the registration protocol version the worker speaks.
	Version uint64
	// Addr is the address the worker's job listener serves on. An
	// unspecified or empty host ("", "0.0.0.0", "[::]") is resolved by the
	// coordinator against the connection's remote address.
	Addr string
	// Capabilities is the Cap* bit set.
	Capabilities uint64
}

// Marshal serializes the hello.
func (h *RegistrationHello) Marshal() []byte {
	w := &writer{}
	w.uvarint(h.Version)
	w.str(h.Addr)
	w.uvarint(h.Capabilities)
	return w.b
}

// ParseRegistrationHello decodes a hello frame body.
func ParseRegistrationHello(b []byte) (*RegistrationHello, error) {
	r := &reader{b: b}
	h := &RegistrationHello{Version: r.uvarint(), Addr: r.str(), Capabilities: r.uvarint()}
	if err := r.done(); err != nil {
		return nil, fmt.Errorf("parsing registration hello: %w", err)
	}
	return h, nil
}

// RegistrationWelcome is the coordinator's answer to a Hello.
type RegistrationWelcome struct {
	// Version is the registration protocol version the coordinator speaks.
	Version uint64
	// Accepted reports whether the worker joined the fleet.
	Accepted bool
	// Reason explains a rejection ("" when accepted).
	Reason string
}

// Marshal serializes the welcome.
func (m *RegistrationWelcome) Marshal() []byte {
	w := &writer{}
	w.uvarint(m.Version)
	w.uvarint(boolByte(m.Accepted))
	w.str(m.Reason)
	return w.b
}

// ParseRegistrationWelcome decodes a welcome frame body.
func ParseRegistrationWelcome(b []byte) (*RegistrationWelcome, error) {
	r := &reader{b: b}
	m := &RegistrationWelcome{Version: r.uvarint(), Accepted: r.uvarint() != 0, Reason: r.str()}
	if err := r.done(); err != nil {
		return nil, fmt.Errorf("parsing registration welcome: %w", err)
	}
	return m, nil
}
