package wire

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/tevlog"
	"repro/internal/vm"
)

func TestSendRoundTrip(t *testing.T) {
	c := &SendContent{MsgID: 42, Dest: 3, Payload: []byte("payload")}
	got, err := ParseSend(c.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(c, got) {
		t.Fatalf("%+v != %+v", got, c)
	}
}

func TestRecvRoundTrip(t *testing.T) {
	c := &RecvContent{
		MsgID: 7, SrcNode: "alice", SrcIdx: 2, Payload: []byte("m"),
		SenderSeq: 9, SenderSig: []byte("sig"),
	}
	c.SenderPrev[0] = 0xAB
	got, err := ParseRecv(c.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(c, got) {
		t.Fatalf("%+v != %+v", got, c)
	}
}

func TestAckRoundTrip(t *testing.T) {
	c := &AckContent{MsgID: 3, PeerNode: "bob", PeerSeq: 11, PeerSig: []byte("s")}
	c.PeerHash[31] = 0xCD
	got, err := ParseAck(c.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(c, got) {
		t.Fatalf("%+v != %+v", got, c)
	}
}

func TestNondetRoundTrip(t *testing.T) {
	c := &NondetContent{Port: vm.PortClockLo, Value: 1 << 40}
	got, err := ParseNondet(c.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if *got != *c {
		t.Fatalf("%+v != %+v", got, c)
	}
}

func TestEventRoundTrips(t *testing.T) {
	lm := vm.Landmark{ICount: 1000, Branches: 50, PC: 0x1234}
	events := []*EventContent{
		{Kind: EventIRQ, Landmark: lm, IRQ: 3},
		{Kind: EventInjectPacket, Landmark: lm, RecvSeq: 8, SrcIdx: 2, Payload: []byte("pkt")},
		{Kind: EventInjectInput, Landmark: lm, Input: 0xBEEF},
		{Kind: EventSnapshot, Landmark: lm, SnapIdx: 4, Root: [32]byte{1, 2, 3}},
	}
	for _, ev := range events {
		got, err := ParseEvent(ev.Marshal())
		if err != nil {
			t.Fatalf("kind %d: %v", ev.Kind, err)
		}
		if !reflect.DeepEqual(ev, got) {
			t.Fatalf("kind %d: %+v != %+v", ev.Kind, got, ev)
		}
	}
}

func TestParseEventRejectsUnknownKind(t *testing.T) {
	bad := &EventContent{Kind: EventKind(99)}
	if _, err := ParseEvent(bad.Marshal()); err == nil {
		t.Fatal("unknown event kind parsed")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	f := &Frame{
		Kind: FrameData, FromNode: "alice", MsgID: 5, Payload: []byte("hello"),
		AuthSeq: 5, AuthSig: []byte("authsig"), BodySig: []byte("bodysig"),
	}
	f.AuthHash[0] = 1
	f.PrevHash[1] = 2
	got, err := ParseFrame(f.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(f, got) {
		t.Fatalf("%+v != %+v", got, f)
	}
	a := got.Authenticator()
	if a.Node != "alice" || a.Seq != 5 || a.Hash != f.AuthHash || !bytes.Equal(a.Sig, f.AuthSig) {
		t.Fatalf("authenticator = %+v", a)
	}
}

func TestTruncationRejected(t *testing.T) {
	c := &RecvContent{MsgID: 7, SrcNode: "alice", Payload: []byte("abcdef"), SenderSig: []byte("s")}
	raw := c.Marshal()
	for cut := 0; cut < len(raw); cut += 3 {
		if _, err := ParseRecv(raw[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	f := &Frame{Kind: FrameAck, FromNode: "x"}
	raw = f.Marshal()
	for cut := 0; cut < len(raw); cut += 5 {
		if _, err := ParseFrame(raw[:cut]); err == nil {
			t.Fatalf("frame truncation at %d accepted", cut)
		}
	}
}

func TestTrailingBytesRejected(t *testing.T) {
	c := &SendContent{MsgID: 1, Payload: []byte("x")}
	raw := append(c.Marshal(), 0xFF)
	if _, err := ParseSend(raw); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

// TestPropertyFrameRoundTrip fuzzes frame fields through marshal/parse.
func TestPropertyFrameRoundTrip(t *testing.T) {
	f := func(kind uint8, node string, msgID uint64, payload []byte, seq uint64, sig []byte) bool {
		in := &Frame{
			Kind: FrameKind(kind), FromNode: node, MsgID: msgID,
			Payload: payload, AuthSeq: seq, AuthSig: sig,
		}
		out, err := ParseFrame(in.Marshal())
		if err != nil {
			return false
		}
		// nil and empty slices are equivalent on the wire.
		if len(in.Payload) == 0 {
			in.Payload = out.Payload
		}
		if len(in.AuthSig) == 0 {
			in.AuthSig = out.AuthSig
		}
		if len(out.BodySig) == 0 {
			out.BodySig = in.BodySig
		}
		return reflect.DeepEqual(in, out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestRecvContentBindsToChain verifies the reconstruction the auditor
// performs: a RECV entry's embedded sender commitment reproduces the exact
// chain hash of the sender's SEND entry.
func TestRecvContentBindsToChain(t *testing.T) {
	payload := []byte("the message")
	send := &SendContent{MsgID: 4, Dest: 1, Payload: payload}
	var prev tevlog.Hash
	prev[3] = 9
	h := tevlog.ChainHash(prev, 4, tevlog.TypeSend, tevlog.HashContent(send.Marshal()))

	rc := &RecvContent{MsgID: 4, SrcNode: "bob", Payload: payload, SenderSeq: 4, SenderPrev: prev}
	rebuilt := &SendContent{MsgID: rc.MsgID, Dest: 1, Payload: rc.Payload}
	h2 := tevlog.ChainHash(rc.SenderPrev, rc.SenderSeq, tevlog.TypeSend, tevlog.HashContent(rebuilt.Marshal()))
	if h != h2 {
		t.Fatal("auditor reconstruction does not reproduce sender chain hash")
	}
}
