package wire

import (
	"bytes"
	"reflect"
	"testing"
)

func testHello() *RegistrationHello {
	return &RegistrationHello{Version: RegistrationVersion, Addr: "10.1.2.3:9100", Capabilities: CapDeltaJobs}
}

func testWelcome() *RegistrationWelcome {
	return &RegistrationWelcome{Version: RegistrationVersion, Accepted: false, Reason: "version 9 not supported"}
}

func TestRegistrationHelloRoundTrip(t *testing.T) {
	h := testHello()
	got, err := ParseRegistrationHello(h.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(h, got) {
		t.Fatalf("hello round trip:\n got %+v\nwant %+v", got, h)
	}
	// An empty announced address is legal on the wire (the coordinator
	// resolves it); the codec must not conflate it with absence.
	h2 := &RegistrationHello{Version: 1, Addr: "", Capabilities: 0}
	got2, err := ParseRegistrationHello(h2.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(h2, got2) {
		t.Fatalf("empty-addr hello round trip:\n got %+v\nwant %+v", got2, h2)
	}
}

func TestRegistrationWelcomeRoundTrip(t *testing.T) {
	for _, m := range []*RegistrationWelcome{
		testWelcome(),
		{Version: RegistrationVersion, Accepted: true, Reason: ""},
	} {
		got, err := ParseRegistrationWelcome(m.Marshal())
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(m, got) {
			t.Fatalf("welcome round trip:\n got %+v\nwant %+v", got, m)
		}
	}
}

func TestRegistrationTruncation(t *testing.T) {
	hello := testHello().Marshal()
	for cut := 0; cut < len(hello); cut++ {
		if _, err := ParseRegistrationHello(hello[:cut]); err == nil {
			t.Errorf("hello truncation at %d/%d accepted", cut, len(hello))
		}
	}
	if _, err := ParseRegistrationHello(append(append([]byte(nil), hello...), 0)); err == nil {
		t.Error("hello trailing byte accepted")
	}
	welcome := testWelcome().Marshal()
	for cut := 0; cut < len(welcome); cut++ {
		if _, err := ParseRegistrationWelcome(welcome[:cut]); err == nil {
			t.Errorf("welcome truncation at %d/%d accepted", cut, len(welcome))
		}
	}
	if _, err := ParseRegistrationWelcome(append(append([]byte(nil), welcome...), 0)); err == nil {
		t.Error("welcome trailing byte accepted")
	}
}

// TestRegistrationFrameKindsPinned pins the frame numbering: these values
// are the cross-version wire contract a mixed fleet depends on, so a
// reordering of the DistFrame* chain must fail loudly here.
func TestRegistrationFrameKindsPinned(t *testing.T) {
	if DistFrameHello != 17 || DistFrameWelcome != 18 {
		t.Fatalf("registration frame kinds moved: Hello=%d Welcome=%d, want 17 and 18", DistFrameHello, DistFrameWelcome)
	}
}

// TestRegistrationHelloEncodingPinned pins the byte-level encoding of a
// known hello so a codec change that silently alters the wire format (and
// would strand old workers mid-upgrade) is caught.
func TestRegistrationHelloEncodingPinned(t *testing.T) {
	h := &RegistrationHello{Version: 1, Addr: "a:1", Capabilities: 1}
	want := []byte{0x01, 0x03, 'a', ':', '1', 0x01}
	if got := h.Marshal(); !bytes.Equal(got, want) {
		t.Fatalf("hello encoding changed:\n got %x\nwant %x", got, want)
	}
}

func FuzzParseRegistrationHello(f *testing.F) {
	f.Add(testHello().Marshal())
	f.Add([]byte{})
	f.Add([]byte{0x01})
	f.Fuzz(func(t *testing.T, b []byte) {
		h, err := ParseRegistrationHello(b)
		if err != nil {
			return
		}
		// The reader accepts non-minimal uvarint encodings, so re-marshal
		// canonicalizes; require semantic re-parse equality instead.
		got, err := ParseRegistrationHello(h.Marshal())
		if err != nil || !reflect.DeepEqual(h, got) {
			t.Fatalf("hello re-parse differs: %+v vs %+v (err %v)", h, got, err)
		}
	})
}

func FuzzParseRegistrationWelcome(f *testing.F) {
	f.Add(testWelcome().Marshal())
	f.Add([]byte{})
	f.Add([]byte{0x01})
	f.Fuzz(func(t *testing.T, b []byte) {
		m, err := ParseRegistrationWelcome(b)
		if err != nil {
			return
		}
		// Accepted is carried as a uvarint where any nonzero means true, so
		// re-marshal canonicalizes; compare semantic equality instead.
		got, err := ParseRegistrationWelcome(m.Marshal())
		if err != nil || !reflect.DeepEqual(m, got) {
			t.Fatalf("welcome re-parse differs: %+v vs %+v (err %v)", m, got, err)
		}
	})
}
