// Package wire defines the serialized formats shared by the recording
// monitor (internal/avmm) and the auditor (internal/audit): the contents of
// tamper-evident log entries, and the network frames the commitment
// protocol exchanges (§4.3: signed messages, acknowledgments carrying
// authenticators, challenges).
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/sig"
	"repro/internal/tevlog"
	"repro/internal/vm"
)

// --- primitive codec ---

type writer struct{ b []byte }

func (w *writer) uvarint(v uint64) { w.b = binary.AppendUvarint(w.b, v) }
func (w *writer) bytes(p []byte)   { w.uvarint(uint64(len(p))); w.b = append(w.b, p...) }
func (w *writer) str(s string)     { w.bytes([]byte(s)) }
func (w *writer) hash(h [32]byte)  { w.b = append(w.b, h[:]...) }
func (w *writer) landmark(l vm.Landmark) {
	w.uvarint(l.ICount)
	w.uvarint(l.Branches)
	w.uvarint(uint64(l.PC))
}

type reader struct {
	b   []byte
	err error
}

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		r.err = errors.New("wire: truncated varint")
		return 0
	}
	r.b = r.b[n:]
	return v
}

func (r *reader) bytes() []byte {
	n := r.uvarint()
	if r.err != nil {
		return nil
	}
	if uint64(len(r.b)) < n {
		r.err = fmt.Errorf("wire: truncated bytes: want %d, have %d", n, len(r.b))
		return nil
	}
	out := make([]byte, n)
	copy(out, r.b[:n])
	r.b = r.b[n:]
	return out
}

func (r *reader) str() string { return string(r.bytes()) }

func (r *reader) hash() [32]byte {
	var h [32]byte
	if r.err != nil {
		return h
	}
	if len(r.b) < 32 {
		r.err = errors.New("wire: truncated hash")
		return h
	}
	copy(h[:], r.b[:32])
	r.b = r.b[32:]
	return h
}

func (r *reader) landmark() vm.Landmark {
	return vm.Landmark{ICount: r.uvarint(), Branches: r.uvarint(), PC: uint32(r.uvarint())}
}

func (r *reader) done() error {
	if r.err != nil {
		return r.err
	}
	if len(r.b) != 0 {
		return fmt.Errorf("wire: %d trailing bytes", len(r.b))
	}
	return nil
}

// --- log entry contents ---

// SendContent is the content of a SEND entry: the monitor's record of an
// outgoing message.
type SendContent struct {
	MsgID   uint64 // sender-local message id (equals the entry's seq)
	Dest    uint32 // destination node index
	Payload []byte
}

// Marshal serializes the content.
func (c *SendContent) Marshal() []byte {
	w := &writer{}
	w.uvarint(c.MsgID)
	w.uvarint(uint64(c.Dest))
	w.bytes(c.Payload)
	return w.b
}

// ParseSend decodes a SEND entry content.
func ParseSend(b []byte) (*SendContent, error) {
	r := &reader{b: b}
	c := &SendContent{MsgID: r.uvarint(), Dest: uint32(r.uvarint()), Payload: r.bytes()}
	if err := r.done(); err != nil {
		return nil, fmt.Errorf("parsing SEND: %w", err)
	}
	return c, nil
}

// RecvContent is the content of a RECV entry: an incoming message together
// with the sender's authenticator, logged so the signature can be verified
// during an audit (§4.3) and stripped before the message reaches the AVM.
// SenderSeq and SenderPrev let the auditor recompute the sender's chain
// hash for SEND(m) and check SenderSig without any other context.
type RecvContent struct {
	MsgID      uint64 // sender-assigned message id
	SrcNode    string // sender principal
	SrcIdx     uint32 // sender node index as seen by the NIC
	Payload    []byte
	SenderSeq  uint64   // sender's SEND entry sequence number
	SenderPrev [32]byte // sender's chain hash before the SEND entry
	SenderSig  []byte   // sender's authenticator signature
}

// Marshal serializes the content.
func (c *RecvContent) Marshal() []byte {
	w := &writer{}
	w.uvarint(c.MsgID)
	w.str(c.SrcNode)
	w.uvarint(uint64(c.SrcIdx))
	w.bytes(c.Payload)
	w.uvarint(c.SenderSeq)
	w.hash(c.SenderPrev)
	w.bytes(c.SenderSig)
	return w.b
}

// ParseRecv decodes a RECV entry content.
func ParseRecv(b []byte) (*RecvContent, error) {
	r := &reader{b: b}
	c := &RecvContent{
		MsgID: r.uvarint(), SrcNode: r.str(), SrcIdx: uint32(r.uvarint()),
		Payload: r.bytes(),
	}
	c.SenderSeq = r.uvarint()
	c.SenderPrev = r.hash()
	c.SenderSig = r.bytes()
	if err := r.done(); err != nil {
		return nil, fmt.Errorf("parsing RECV: %w", err)
	}
	return c, nil
}

// AckContent is the content of an ACK entry: the peer acknowledged one of
// our messages, committing to a RECV entry in its own log.
type AckContent struct {
	MsgID    uint64 // our SEND MsgID being acknowledged
	PeerNode string
	PeerSeq  uint64   // peer log entry seq committed by the ack
	PeerHash [32]byte // peer chain hash
	PeerSig  []byte
}

// Marshal serializes the content.
func (c *AckContent) Marshal() []byte {
	w := &writer{}
	w.uvarint(c.MsgID)
	w.str(c.PeerNode)
	w.uvarint(c.PeerSeq)
	w.hash(c.PeerHash)
	w.bytes(c.PeerSig)
	return w.b
}

// ParseAck decodes an ACK entry content.
func ParseAck(b []byte) (*AckContent, error) {
	r := &reader{b: b}
	c := &AckContent{MsgID: r.uvarint(), PeerNode: r.str(), PeerSeq: r.uvarint()}
	c.PeerHash = r.hash()
	c.PeerSig = r.bytes()
	if err := r.done(); err != nil {
		return nil, fmt.Errorf("parsing ACK: %w", err)
	}
	return c, nil
}

// NondetContent is the content of a NONDET entry: the value a synchronous
// nondeterministic port read returned (clock reads, chiefly). These are the
// analogue of the paper's TimeTracker entries, which dominate the log
// (§6.4).
type NondetContent struct {
	Port  uint32
	Value uint64
}

// Marshal serializes the content.
func (c *NondetContent) Marshal() []byte {
	w := &writer{}
	w.uvarint(uint64(c.Port))
	w.uvarint(c.Value)
	return w.b
}

// ParseNondet decodes a NONDET entry content.
func ParseNondet(b []byte) (*NondetContent, error) {
	r := &reader{b: b}
	c := &NondetContent{Port: uint32(r.uvarint()), Value: r.uvarint()}
	if err := r.done(); err != nil {
		return nil, fmt.Errorf("parsing NONDET: %w", err)
	}
	return c, nil
}

// EventKind distinguishes the asynchronous events recorded with landmarks.
type EventKind uint8

// Asynchronous event kinds.
const (
	// EventIRQ: an interrupt was delivered to the guest at the landmark.
	EventIRQ EventKind = 1 + iota
	// EventInjectPacket: a network payload was placed in the NIC receive
	// queue at the landmark. RecvSeq cross-references the RECV entry whose
	// payload was injected, so an auditor can detect messages dropped or
	// altered between receipt and injection (§4.4, "Detecting
	// inconsistencies").
	EventInjectPacket
	// EventInjectInput: a local input event (keyboard) was queued.
	EventInjectInput
	// EventSnapshot: a state snapshot was taken at the landmark; Root is
	// the authenticated state digest.
	EventSnapshot
)

// EventContent is the content of an IRQ or SNAPSHOT-class entry: an
// asynchronous occurrence pinned to an exact execution landmark so replay
// can re-inject it at the same point.
type EventContent struct {
	Kind     EventKind
	Landmark vm.Landmark
	IRQ      uint32 // EventIRQ
	RecvSeq  uint64 // EventInjectPacket: seq of the RECV entry injected
	SrcIdx   uint32 // EventInjectPacket: NIC-visible source index
	Payload  []byte // EventInjectPacket payload
	Input    uint32 // EventInjectInput value
	SnapIdx  uint32 // EventSnapshot index
	Root     [32]byte
}

// Marshal serializes the content.
func (c *EventContent) Marshal() []byte {
	w := &writer{}
	w.uvarint(uint64(c.Kind))
	w.landmark(c.Landmark)
	switch c.Kind {
	case EventIRQ:
		w.uvarint(uint64(c.IRQ))
	case EventInjectPacket:
		w.uvarint(c.RecvSeq)
		w.uvarint(uint64(c.SrcIdx))
		w.bytes(c.Payload)
	case EventInjectInput:
		w.uvarint(uint64(c.Input))
	case EventSnapshot:
		w.uvarint(uint64(c.SnapIdx))
		w.hash(c.Root)
	}
	return w.b
}

// ParseEvent decodes an event content.
func ParseEvent(b []byte) (*EventContent, error) {
	r := &reader{b: b}
	c := &EventContent{Kind: EventKind(r.uvarint())}
	c.Landmark = r.landmark()
	switch c.Kind {
	case EventIRQ:
		c.IRQ = uint32(r.uvarint())
	case EventInjectPacket:
		c.RecvSeq = r.uvarint()
		c.SrcIdx = uint32(r.uvarint())
		c.Payload = r.bytes()
	case EventInjectInput:
		c.Input = uint32(r.uvarint())
	case EventSnapshot:
		c.SnapIdx = uint32(r.uvarint())
		c.Root = r.hash()
	default:
		return nil, fmt.Errorf("wire: unknown event kind %d", c.Kind)
	}
	if err := r.done(); err != nil {
		return nil, fmt.Errorf("parsing event: %w", err)
	}
	return c, nil
}

// --- network frames ---

// FrameKind tags protocol frames.
type FrameKind uint8

// Protocol frame kinds.
const (
	// FrameData carries an application payload plus the sender's
	// authenticator and signature.
	FrameData FrameKind = 1 + iota
	// FrameAck acknowledges a FrameData, carrying the receiver's
	// authenticator for its RECV entry.
	FrameAck
	// FrameChallenge asks an unresponsive node to prove liveness by
	// answering for a given message id (§4.6).
	FrameChallenge
	// FrameChallengeResp answers a challenge.
	FrameChallengeResp
)

// Overhead constants for IP-level accounting (§6.7): the bare game uses
// UDP; the AVMM encapsulates packets in a TCP connection.
const (
	UDPIPOverhead = 28 // IPv4 + UDP headers
	TCPIPOverhead = 40 // IPv4 + TCP headers
)

// Frame is a protocol-level datagram.
type Frame struct {
	Kind     FrameKind
	FromNode string
	MsgID    uint64
	Payload  []byte

	// Authenticator for the sender's log entry corresponding to this frame
	// (SEND entry for data, RECV entry for acks), plus the previous chain
	// hash so the recipient can recompute h_i and confirm the entry matches
	// the message (§4.3).
	AuthSeq  uint64
	AuthHash [32]byte
	PrevHash [32]byte
	AuthSig  []byte

	// BodySig is the sender's signature over the payload itself, verified
	// during audits of the receiver's log.
	BodySig []byte
}

// Marshal serializes the frame.
func (f *Frame) Marshal() []byte {
	w := &writer{}
	w.uvarint(uint64(f.Kind))
	w.str(f.FromNode)
	w.uvarint(f.MsgID)
	w.bytes(f.Payload)
	w.uvarint(f.AuthSeq)
	w.hash(f.AuthHash)
	w.hash(f.PrevHash)
	w.bytes(f.AuthSig)
	w.bytes(f.BodySig)
	return w.b
}

// ParseFrame decodes a frame.
func ParseFrame(b []byte) (*Frame, error) {
	r := &reader{b: b}
	f := &Frame{Kind: FrameKind(r.uvarint()), FromNode: r.str(), MsgID: r.uvarint()}
	f.Payload = r.bytes()
	f.AuthSeq = r.uvarint()
	f.AuthHash = r.hash()
	f.PrevHash = r.hash()
	f.AuthSig = r.bytes()
	f.BodySig = r.bytes()
	if err := r.done(); err != nil {
		return nil, fmt.Errorf("parsing frame: %w", err)
	}
	return f, nil
}

// Authenticator converts the frame's embedded commitment into a tevlog
// authenticator.
func (f *Frame) Authenticator() tevlog.Authenticator {
	return tevlog.Authenticator{
		Node: sig.NodeID(f.FromNode), Seq: f.AuthSeq, Hash: f.AuthHash, Sig: f.AuthSig,
	}
}
