package wire

// Journal records for the coordinator's write-ahead epoch journal
// (internal/audit journal.go). The journal is a sequence of these records,
// each framed on disk by the journal itself (length + checksum); this file
// defines only the record bodies, in the package's usual codec so the
// format is pinned by the same round-trip/truncation/fuzz discipline as
// the network frames.
//
// A run is identified by RunKey — a digest the coordinator derives
// deterministically from the audited node and the epoch partition — so a
// restarted process that re-derives the same jobs from the same recording
// computes the same key and can match durable verdicts to re-enqueued
// epochs.

import "fmt"

// JournalRecordKind tags journal records.
type JournalRecordKind uint8

// Journal record kinds.
const (
	// JournalRunEnqueued: an audit run entered the queue. Carries the
	// audited node and the run's epoch count, which resume validates
	// before trusting any stored verdict.
	JournalRunEnqueued JournalRecordKind = 1 + iota
	// JournalVerdictEmitted: one epoch's verdict reached the router.
	// Carries the epoch index and the AuditVerdict encoding — everything
	// the deterministic merge reads, so a replayed verdict reproduces the
	// uninterrupted run's Result byte for byte.
	JournalVerdictEmitted
	// JournalRunCompleted: the run settled cleanly. A completed run is a
	// tombstone: its verdicts are never resumed, and compaction drops its
	// records.
	JournalRunCompleted
)

// JournalRecord is one journal record body.
type JournalRecord struct {
	Kind   JournalRecordKind
	RunKey [32]byte
	// Node is the audited node (JournalRunEnqueued; diagnostics).
	Node string
	// Epochs is the run's total epoch count (JournalRunEnqueued).
	Epochs uint64
	// Index is the epoch index (JournalVerdictEmitted).
	Index uint64
	// Verdict is the epoch's AuditVerdict encoding (JournalVerdictEmitted).
	Verdict []byte
}

// Marshal serializes the record.
func (rec *JournalRecord) Marshal() []byte {
	w := &writer{}
	w.uvarint(uint64(rec.Kind))
	w.hash(rec.RunKey)
	switch rec.Kind {
	case JournalRunEnqueued:
		w.str(rec.Node)
		w.uvarint(rec.Epochs)
	case JournalVerdictEmitted:
		w.uvarint(rec.Index)
		w.bytes(rec.Verdict)
	case JournalRunCompleted:
	}
	return w.b
}

// ParseJournalRecord decodes a journal record body.
func ParseJournalRecord(b []byte) (*JournalRecord, error) {
	r := &reader{b: b}
	rec := &JournalRecord{Kind: JournalRecordKind(r.uvarint())}
	rec.RunKey = r.hash()
	switch rec.Kind {
	case JournalRunEnqueued:
		rec.Node = r.str()
		rec.Epochs = r.uvarint()
	case JournalVerdictEmitted:
		rec.Index = r.uvarint()
		rec.Verdict = r.bytes()
	case JournalRunCompleted:
	default:
		if r.err == nil {
			return nil, fmt.Errorf("wire: unknown journal record kind %d", rec.Kind)
		}
	}
	if err := r.done(); err != nil {
		return nil, fmt.Errorf("parsing journal record: %w", err)
	}
	return rec, nil
}
