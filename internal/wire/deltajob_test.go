package wire

import (
	"reflect"
	"testing"

	"repro/internal/snapshot"
	"repro/internal/tevlog"
	"repro/internal/vm"
)

func testDeltaJob() *AuditDeltaJob {
	step := DeltaStep{
		FromIndex:   2,
		ProofLeaves: 64,
		PageIndices: []uint32{1, 5, 9},
		PageData:    [][]byte{{0xA}, {0xB, 0xB}, {0xC, 0xC, 0xC}},
		OldHashes:   make([][32]byte, 3),
		Siblings:    make([][32]byte, 4),
		Machine:     []byte("machine"),
		Device:      []byte("dev"),
		AuthDevice:  []byte("authdev"),

		Instructions: 123456,
	}
	for i := range step.OldHashes {
		step.OldHashes[i][0] = byte(i + 1)
	}
	for i := range step.Siblings {
		step.Siblings[i][1] = byte(i + 1)
	}
	step.FromRoot[2] = 1
	step.ToRoot[2] = 2
	step.FromMemRoot[2] = 3
	step.ToMemRoot[2] = 4
	j := &AuditDeltaJob{
		Index: 7, StartSnap: 3, StartSeq: 991,
		BaseSnap: 2,
		Steps:    []DeltaStep{step},
		Entries: []tevlog.Entry{
			{Seq: 1, Type: tevlog.TypeSend, Content: []byte("hello")},
			{Seq: 2, Type: tevlog.TypeSnapshot, Content: []byte{0xFF}},
		},
	}
	for i := range j.StartRoot {
		j.StartRoot[i] = byte(i)
	}
	j.BaseRoot[5] = 0x55
	return j
}

func TestAuditDeltaJobRoundTrip(t *testing.T) {
	j := testDeltaJob()
	got, err := ParseAuditDeltaJob(j.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(j, got) {
		t.Fatalf("delta job round trip:\n got %+v\nwant %+v", got, j)
	}
}

func TestDeltaStepConversionRoundTrip(t *testing.T) {
	want := testDeltaJob().Steps[0]
	d, err := want.Delta()
	if err != nil {
		t.Fatal(err)
	}
	if d.Cost.DirtyBytes != 1+2+3 {
		t.Fatalf("reassembled dirty bytes = %d, want 6", d.Cost.DirtyBytes)
	}
	if d.Cost.Instructions != want.Instructions {
		t.Fatalf("reassembled instructions = %d, want %d", d.Cost.Instructions, want.Instructions)
	}
	back := DeltaStepFromDelta(d)
	if !reflect.DeepEqual(want, back) {
		t.Fatalf("delta step conversion round trip:\n got %+v\nwant %+v", back, want)
	}
}

func TestDeltaStepMismatchedLengths(t *testing.T) {
	s := testDeltaJob().Steps[0]
	s.OldHashes = s.OldHashes[:2]
	if _, err := s.Delta(); err == nil {
		t.Fatal("mismatched old-hash count accepted")
	}
	s = testDeltaJob().Steps[0]
	s.PageData = s.PageData[:1]
	if _, err := s.Delta(); err == nil {
		t.Fatal("mismatched page-data count accepted")
	}
}

// snapshotStoreForTest records two snapshots of a small machine and
// returns the store plus the materialized base state.
func snapshotStoreForTest(t *testing.T) (*snapshot.Store, *snapshot.Restored) {
	t.Helper()
	m := vm.NewMachine(8*vm.PageSize, nil)
	st := snapshot.NewStore(len(m.Mem))
	if _, err := st.Take(m, []byte("dev0"), []byte("auth0")); err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{1, 4} {
		if err := m.Store32(uint32(p*vm.PageSize+8), 0xCAFE); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := st.Take(m, []byte("dev1"), []byte("auth1")); err != nil {
		t.Fatal(err)
	}
	base, err := st.Materialize(0)
	if err != nil {
		t.Fatal(err)
	}
	return st, base
}

func TestDeltaStepFromDeltaMatchesStore(t *testing.T) {
	// A delta straight from a snapshot store must survive the wire and
	// still verify against its base.
	st, base := snapshotStoreForTest(t)
	d, err := st.Delta(1)
	if err != nil {
		t.Fatal(err)
	}
	j := &AuditDeltaJob{Steps: []DeltaStep{DeltaStepFromDelta(d)}}
	got, err := ParseAuditDeltaJob(j.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	d2, err := got.Steps[0].Delta()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := snapshot.ApplyDelta(base, d2); err != nil {
		t.Fatalf("wire-round-tripped delta rejected: %v", err)
	}
}

func TestNeedStateRoundTrip(t *testing.T) {
	for _, idx := range []uint64{0, 1, 127, 128, 1 << 40} {
		got, err := ParseNeedState(MarshalNeedState(idx))
		if err != nil {
			t.Fatalf("index %d: %v", idx, err)
		}
		if got != idx {
			t.Fatalf("need-state round trip: got %d, want %d", got, idx)
		}
	}
	if _, err := ParseNeedState(nil); err == nil {
		t.Fatal("empty need-state body accepted")
	}
	if _, err := ParseNeedState([]byte{0x80}); err == nil {
		t.Fatal("truncated need-state body accepted")
	}
	if _, err := ParseNeedState(append(MarshalNeedState(3), 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

func TestDeltaJobTruncation(t *testing.T) {
	buf := testDeltaJob().Marshal()
	if _, err := ParseAuditDeltaJob(buf); err != nil {
		t.Fatalf("valid encoding rejected: %v", err)
	}
	for cut := 0; cut < len(buf); cut++ {
		if _, err := ParseAuditDeltaJob(buf[:cut]); err == nil {
			t.Errorf("truncation at %d/%d accepted", cut, len(buf))
		}
	}
	if _, err := ParseAuditDeltaJob(append(append([]byte(nil), buf...), 0)); err == nil {
		t.Error("trailing byte accepted")
	}
}

func FuzzParseAuditDeltaJob(f *testing.F) {
	f.Add(testDeltaJob().Marshal())
	f.Add([]byte{})
	f.Add([]byte{0x01})
	f.Fuzz(func(t *testing.T, b []byte) {
		j, err := ParseAuditDeltaJob(b)
		if err != nil {
			return
		}
		// A successful parse must re-marshal to the exact input bytes: the
		// codec is canonical, so fuzz inputs cannot smuggle alternate
		// encodings of the same job.
		if got := j.Marshal(); !reflect.DeepEqual(got, b) {
			t.Fatalf("re-marshal differs:\n got %x\nwant %x", got, b)
		}
	})
}
