package wire

// Delta-shipped epoch jobs. After the first full-state job on a
// connection, subsequent jobs for the same audit can ship as a chain of
// proof-carrying snapshot deltas relative to a state the worker already
// verified and cached: each step carries the epoch's dirty pages plus the
// Merkle fold proof connecting the previous memory root to the next one,
// so a stateless worker reconstructs and verifies its start state in
// O(dirty · log n) wire bytes instead of O(state). A worker that lost the
// base (cache eviction, reconnect) answers with a NeedState frame and the
// coordinator falls back to the full-state AuditJob frame.

import (
	"encoding/binary"
	"fmt"

	"repro/internal/merkle"
	"repro/internal/snapshot"
	"repro/internal/tevlog"
)

// Delta-dispatch protocol frames, extending the DistFrame* set.
const (
	// DistFrameDeltaJob carries one delta-shipped epoch job on a legacy
	// (single-audit) connection.
	DistFrameDeltaJob DistFrameKind = DistFrameDrain + 1 + iota
	// DistFrameMuxDeltaJob carries one delta-shipped epoch job on a
	// multiplexed connection: uvarint session id, then the AuditDeltaJob
	// body.
	DistFrameMuxDeltaJob
	// DistFrameNeedState reports that the worker does not hold the delta
	// job's base state: uvarint job index. The coordinator re-ships the
	// epoch as a full-state job.
	DistFrameNeedState
	// DistFrameMuxNeedState is DistFrameNeedState on a multiplexed
	// connection: uvarint session id, then uvarint job index.
	DistFrameMuxNeedState
)

// DeltaStep is one snapshot transition in a delta job's chain, mirroring
// snapshot.Delta field for field. PageIndices double as the fold proof's
// leaf indices (a delta's dirty set and its proof's updated-leaf set are
// the same by construction), so they travel once.
type DeltaStep struct {
	FromIndex   uint32
	FromRoot    [32]byte
	ToRoot      [32]byte
	FromMemRoot [32]byte
	ToMemRoot   [32]byte

	ProofLeaves uint32
	PageIndices []uint32
	PageData    [][]byte
	OldHashes   [][32]byte
	Siblings    [][32]byte

	Machine    []byte
	Device     []byte
	AuthDevice []byte

	Instructions uint64
}

// DeltaStepFromDelta converts a snapshot delta to its wire form.
func DeltaStepFromDelta(d *snapshot.Delta) DeltaStep {
	s := DeltaStep{
		FromIndex:   uint32(d.FromIndex),
		FromRoot:    d.FromRoot,
		ToRoot:      d.ToRoot,
		FromMemRoot: d.FromMemRoot,
		ToMemRoot:   d.ToMemRoot,
		ProofLeaves: uint32(d.Proof.Leaves),
		Machine:     d.Machine,
		Device:      d.Device,
		AuthDevice:  d.AuthDevice,

		Instructions: d.Cost.Instructions,
	}
	s.PageIndices = make([]uint32, len(d.Pages))
	s.PageData = make([][]byte, len(d.Pages))
	for i, p := range d.Pages {
		s.PageIndices[i] = uint32(p.Index)
		s.PageData[i] = p.Data
	}
	s.OldHashes = make([][32]byte, len(d.Proof.Old))
	for i, h := range d.Proof.Old {
		s.OldHashes[i] = h
	}
	s.Siblings = make([][32]byte, len(d.Proof.Siblings))
	for i, h := range d.Proof.Siblings {
		s.Siblings[i] = h
	}
	return s
}

// Delta reassembles the snapshot delta this step carries.
func (s *DeltaStep) Delta() (*snapshot.Delta, error) {
	if len(s.PageData) != len(s.PageIndices) || len(s.OldHashes) != len(s.PageIndices) {
		return nil, fmt.Errorf("wire: delta step carries %d pages, %d datas, %d old hashes",
			len(s.PageIndices), len(s.PageData), len(s.OldHashes))
	}
	d := &snapshot.Delta{
		FromIndex:   int(s.FromIndex),
		FromRoot:    s.FromRoot,
		ToRoot:      s.ToRoot,
		FromMemRoot: s.FromMemRoot,
		ToMemRoot:   s.ToMemRoot,
		Machine:     s.Machine,
		Device:      s.Device,
		AuthDevice:  s.AuthDevice,
	}
	d.Cost.Instructions = s.Instructions
	d.Pages = make([]snapshot.DeltaPage, len(s.PageIndices))
	d.Proof.Leaves = int(s.ProofLeaves)
	d.Proof.Indices = make([]int, len(s.PageIndices))
	d.Proof.Old = make([]merkle.Hash, len(s.OldHashes))
	for i := range s.PageIndices {
		d.Pages[i] = snapshot.DeltaPage{Index: int(s.PageIndices[i]), Data: s.PageData[i]}
		d.Proof.Indices[i] = int(s.PageIndices[i])
		d.Proof.Old[i] = s.OldHashes[i]
		d.Cost.DirtyBytes += len(s.PageData[i])
	}
	d.Proof.Siblings = make([]merkle.Hash, len(s.Siblings))
	for i, h := range s.Siblings {
		d.Proof.Siblings[i] = h
	}
	return d, nil
}

// AuditDeltaJob is a delta-shipped epoch job: everything AuditJob carries
// except the materialized start state, which the worker reconstructs by
// folding Steps (covering snapshots BaseSnap+1 … StartSnap, in order) onto
// its cached, previously-verified state at BaseSnap with root BaseRoot.
// The final folded root must equal StartRoot — the root the audited log
// committed — so a coordinator that ships a doctored chain is caught
// before any replay work is spent.
type AuditDeltaJob struct {
	Index     uint64
	StartSnap uint32
	StartSeq  uint64
	StartRoot [32]byte

	// BaseSnap/BaseRoot identify the cached state the chain starts from.
	BaseSnap uint32
	BaseRoot [32]byte

	// Steps are the transitions BaseSnap→BaseSnap+1, …, StartSnap-1→StartSnap.
	Steps []DeltaStep

	// Entries is the epoch's entry run, exactly as in AuditJob.
	Entries []tevlog.Entry
}

// Marshal serializes the delta job.
func (j *AuditDeltaJob) Marshal() []byte {
	w := &writer{}
	w.uvarint(j.Index)
	w.uvarint(uint64(j.StartSnap))
	w.uvarint(j.StartSeq)
	w.hash(j.StartRoot)
	w.uvarint(uint64(j.BaseSnap))
	w.hash(j.BaseRoot)
	w.uvarint(uint64(len(j.Steps)))
	for i := range j.Steps {
		s := &j.Steps[i]
		w.uvarint(uint64(s.FromIndex))
		w.hash(s.FromRoot)
		w.hash(s.ToRoot)
		w.hash(s.FromMemRoot)
		w.hash(s.ToMemRoot)
		w.uvarint(uint64(s.ProofLeaves))
		w.uvarint(uint64(len(s.PageIndices)))
		for k, idx := range s.PageIndices {
			w.uvarint(uint64(idx))
			w.bytes(s.PageData[k])
			w.hash(s.OldHashes[k])
		}
		w.uvarint(uint64(len(s.Siblings)))
		for _, h := range s.Siblings {
			w.hash(h)
		}
		w.bytes(s.Machine)
		w.bytes(s.Device)
		w.bytes(s.AuthDevice)
		w.uvarint(s.Instructions)
	}
	w.uvarint(uint64(len(j.Entries)))
	for i := range j.Entries {
		w.b = j.Entries[i].Marshal(w.b)
	}
	return w.b
}

// ParseAuditDeltaJob decodes a delta job frame body.
func ParseAuditDeltaJob(b []byte) (*AuditDeltaJob, error) {
	r := &reader{b: b}
	j := &AuditDeltaJob{Index: r.uvarint()}
	j.StartSnap = uint32(r.uvarint())
	j.StartSeq = r.uvarint()
	j.StartRoot = r.hash()
	j.BaseSnap = uint32(r.uvarint())
	j.BaseRoot = r.hash()
	nsteps := r.uvarint()
	if r.err != nil {
		return nil, fmt.Errorf("parsing audit delta job: %w", r.err)
	}
	if nsteps > uint64(len(r.b)) {
		return nil, fmt.Errorf("parsing audit delta job: claims %d steps, %d bytes remain", nsteps, len(r.b))
	}
	j.Steps = make([]DeltaStep, 0, nsteps)
	for i := uint64(0); i < nsteps; i++ {
		var s DeltaStep
		s.FromIndex = uint32(r.uvarint())
		s.FromRoot = r.hash()
		s.ToRoot = r.hash()
		s.FromMemRoot = r.hash()
		s.ToMemRoot = r.hash()
		s.ProofLeaves = uint32(r.uvarint())
		npages := r.uvarint()
		if r.err != nil {
			return nil, fmt.Errorf("parsing audit delta job step %d: %w", i, r.err)
		}
		if npages > uint64(len(r.b)) {
			return nil, fmt.Errorf("parsing audit delta job step %d: claims %d pages, %d bytes remain", i, npages, len(r.b))
		}
		s.PageIndices = make([]uint32, npages)
		s.PageData = make([][]byte, npages)
		s.OldHashes = make([][32]byte, npages)
		for k := uint64(0); k < npages; k++ {
			s.PageIndices[k] = uint32(r.uvarint())
			s.PageData[k] = r.bytes()
			s.OldHashes[k] = r.hash()
		}
		nsib := r.uvarint()
		if r.err != nil {
			return nil, fmt.Errorf("parsing audit delta job step %d: %w", i, r.err)
		}
		if nsib > uint64(len(r.b)) {
			return nil, fmt.Errorf("parsing audit delta job step %d: claims %d siblings, %d bytes remain", i, nsib, len(r.b))
		}
		s.Siblings = make([][32]byte, nsib)
		for k := uint64(0); k < nsib; k++ {
			s.Siblings[k] = r.hash()
		}
		s.Machine = r.bytes()
		s.Device = r.bytes()
		s.AuthDevice = r.bytes()
		s.Instructions = r.uvarint()
		if r.err != nil {
			return nil, fmt.Errorf("parsing audit delta job step %d: %w", i, r.err)
		}
		j.Steps = append(j.Steps, s)
	}
	n := r.uvarint()
	if r.err != nil {
		return nil, fmt.Errorf("parsing audit delta job: %w", r.err)
	}
	if n > uint64(len(r.b)) {
		return nil, fmt.Errorf("parsing audit delta job: claims %d entries, %d bytes remain", n, len(r.b))
	}
	j.Entries = make([]tevlog.Entry, 0, n)
	for i := uint64(0); i < n; i++ {
		e, rest, err := tevlog.UnmarshalEntry(r.b)
		if err != nil {
			return nil, fmt.Errorf("parsing audit delta job entry %d: %w", i, err)
		}
		r.b = rest
		j.Entries = append(j.Entries, e)
	}
	if err := r.done(); err != nil {
		return nil, fmt.Errorf("parsing audit delta job: %w", err)
	}
	return j, nil
}

// MarshalNeedState builds the body of a NeedState frame: the index of the
// delta job whose base state the worker does not hold.
func MarshalNeedState(index uint64) []byte {
	return binary.AppendUvarint(nil, index)
}

// ParseNeedState decodes a NeedState frame body.
func ParseNeedState(b []byte) (uint64, error) {
	index, n := binary.Uvarint(b)
	if n <= 0 || n != len(b) {
		return 0, fmt.Errorf("parsing need-state frame: malformed index")
	}
	return index, nil
}
