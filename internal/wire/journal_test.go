package wire

import (
	"reflect"
	"testing"
)

func testJournalRecords() []*JournalRecord {
	var key [32]byte
	for i := range key {
		key[i] = byte(i)
	}
	return []*JournalRecord{
		{Kind: JournalRunEnqueued, RunKey: key, Node: "player1", Epochs: 3},
		{Kind: JournalVerdictEmitted, RunKey: key, Index: 2, Verdict: []byte("verdict-bytes")},
		{Kind: JournalRunCompleted, RunKey: key},
	}
}

func TestJournalRecordRoundTrip(t *testing.T) {
	for _, rec := range testJournalRecords() {
		got, err := ParseJournalRecord(rec.Marshal())
		if err != nil {
			t.Fatalf("kind %d: %v", rec.Kind, err)
		}
		if !reflect.DeepEqual(rec, got) {
			t.Fatalf("journal record round trip (kind %d):\n got %+v\nwant %+v", rec.Kind, got, rec)
		}
	}
}

func TestJournalRecordUnknownKind(t *testing.T) {
	rec := testJournalRecords()[2]
	buf := rec.Marshal()
	buf[0] = 0x7F // unknown kind
	if _, err := ParseJournalRecord(buf); err == nil {
		t.Fatal("unknown journal record kind accepted")
	}
	if _, err := ParseJournalRecord([]byte{0}); err == nil {
		t.Fatal("kind 0 accepted")
	}
}

func TestJournalRecordTruncation(t *testing.T) {
	for _, rec := range testJournalRecords() {
		buf := rec.Marshal()
		for cut := 0; cut < len(buf); cut++ {
			if _, err := ParseJournalRecord(buf[:cut]); err == nil {
				t.Errorf("kind %d: truncation at %d/%d accepted", rec.Kind, cut, len(buf))
			}
		}
		if _, err := ParseJournalRecord(append(append([]byte(nil), buf...), 0)); err == nil {
			t.Errorf("kind %d: trailing byte accepted", rec.Kind)
		}
	}
}

func FuzzParseJournalRecord(f *testing.F) {
	for _, rec := range testJournalRecords() {
		f.Add(rec.Marshal())
	}
	f.Add([]byte{})
	f.Add([]byte{0x01})
	f.Fuzz(func(t *testing.T, b []byte) {
		rec, err := ParseJournalRecord(b)
		if err != nil {
			return
		}
		// The reader accepts non-minimal uvarint encodings, so re-marshal
		// canonicalizes; require semantic re-parse equality: the journal
		// must mean the same record after a rewrite cycle (compaction).
		got, err := ParseJournalRecord(rec.Marshal())
		if err != nil || !reflect.DeepEqual(rec, got) {
			t.Fatalf("journal record re-parse differs: %+v vs %+v (err %v)", rec, got, err)
		}
	})
}
