package sig

import (
	"testing"
	"testing/quick"
)

func TestRSASignVerify(t *testing.T) {
	s := MustGenerateRSA("alice", DefaultKeyBits, "test")
	msg := []byte("the quick brown fox")
	signature := s.Sign(msg)
	if len(signature) != s.SigLen() {
		t.Fatalf("signature length %d != SigLen %d", len(signature), s.SigLen())
	}
	v := s.Public()
	if !v.Verify(msg, signature) {
		t.Fatal("genuine signature rejected")
	}
	if v.Verify([]byte("other message"), signature) {
		t.Fatal("signature accepted for wrong message")
	}
	signature[0] ^= 0xFF
	if v.Verify(msg, signature) {
		t.Fatal("corrupted signature accepted")
	}
}

func TestKeyGenerationDistinctness(t *testing.T) {
	// crypto/rsa injects extra randomness, so identical seeds need not
	// reproduce identical keys; what matters is that distinct principals
	// and seeds never collide.
	a := MustGenerateRSA("alice", DefaultKeyBits, "seed1")
	b := MustGenerateRSA("alice", DefaultKeyBits, "seed2")
	c := MustGenerateRSA("bob", DefaultKeyBits, "seed1")
	if string(a.Public().Marshal()) == string(b.Public().Marshal()) {
		t.Fatal("different seeds produced same key")
	}
	if string(a.Public().Marshal()) == string(c.Public().Marshal()) {
		t.Fatal("different ids produced same key")
	}
}

func TestGenerateRSARejectsTinyKeys(t *testing.T) {
	if _, err := GenerateRSA("x", 128, "s"); err == nil {
		t.Fatal("128-bit key accepted")
	}
}

func TestCrossPrincipalRejection(t *testing.T) {
	alice := MustGenerateRSA("alice", DefaultKeyBits, "t")
	bob := MustGenerateRSA("bob", DefaultKeyBits, "t")
	msg := []byte("hello")
	if bob.Public().Verify(msg, alice.Sign(msg)) {
		t.Fatal("bob's verifier accepted alice's signature")
	}
}

func TestVerifierMarshalRoundTrip(t *testing.T) {
	s := MustGenerateRSA("alice", DefaultKeyBits, "t")
	der := s.Public().Marshal()
	v, err := ParseRSAVerifier("alice", der)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("round trip")
	if !v.Verify(msg, s.Sign(msg)) {
		t.Fatal("parsed verifier rejects genuine signature")
	}
	if _, err := ParseRSAVerifier("alice", []byte("junk")); err == nil {
		t.Fatal("junk key parsed")
	}
}

func TestNullSigner(t *testing.T) {
	n := NullSigner{Node: "x"}
	if n.SigLen() != 0 || n.Sign([]byte("m")) != nil {
		t.Fatal("null signer produced bytes")
	}
	if !n.Public().Verify([]byte("anything"), nil) {
		t.Fatal("null verifier rejected")
	}
}

func TestSizedSigner(t *testing.T) {
	s := SizedSigner{Node: "x", Size: 96}
	msg := []byte("m")
	signature := s.Sign(msg)
	if len(signature) != 96 || s.SigLen() != 96 {
		t.Fatalf("size = %d, want 96", len(signature))
	}
	if !s.Public().Verify(msg, signature) {
		t.Fatal("sized signature rejected")
	}
	if s.Public().Verify([]byte("other"), signature) {
		t.Fatal("sized signature accepted for wrong message")
	}
	if s.Public().Verify(msg, signature[:95]) {
		t.Fatal("short signature accepted")
	}
	other := SizedSigner{Node: "y", Size: 96}
	if other.Public().Verify(msg, signature) {
		t.Fatal("sized signature transferred between principals")
	}
}

func TestKeyStore(t *testing.T) {
	ks := NewKeyStore()
	alice := MustGenerateRSA("alice", DefaultKeyBits, "t")
	bob := MustGenerateRSA("bob", DefaultKeyBits, "t")
	ks.Add(alice.Public())
	ks.Add(bob.Public())
	msg := []byte("m")
	if !ks.Verify("alice", msg, alice.Sign(msg)) {
		t.Fatal("keystore rejected genuine signature")
	}
	if ks.Verify("bob", msg, alice.Sign(msg)) {
		t.Fatal("keystore verified wrong principal")
	}
	if ks.Verify("carol", msg, alice.Sign(msg)) {
		t.Fatal("unknown principal verified (fake identities must fail)")
	}
	ids := ks.IDs()
	if len(ids) != 2 || ids[0] != "alice" || ids[1] != "bob" {
		t.Fatalf("IDs = %v", ids)
	}
	if _, ok := ks.Lookup("alice"); !ok {
		t.Fatal("lookup failed")
	}
}

func TestCertificates(t *testing.T) {
	ca := MustGenerateRSA("admin", DefaultKeyBits, "ca")
	node := MustGenerateRSA("m1", DefaultKeyBits, "ca")
	cert := Issue(ca, node.Public())
	v, err := VerifyCertificate(ca.Public(), cert)
	if err != nil {
		t.Fatalf("genuine certificate rejected: %v", err)
	}
	msg := []byte("m")
	if !v.Verify(msg, node.Sign(msg)) {
		t.Fatal("certified key does not verify node signatures")
	}
	// Tampered subject.
	bad := cert
	bad.Subject = "mallory"
	if _, err := VerifyCertificate(ca.Public(), bad); err == nil {
		t.Fatal("certificate with altered subject accepted")
	}
	// Wrong issuer.
	other := MustGenerateRSA("other-ca", DefaultKeyBits, "ca")
	if _, err := VerifyCertificate(other.Public(), cert); err == nil {
		t.Fatal("certificate accepted under wrong authority")
	}
	// Corrupted signature.
	bad2 := cert
	bad2.Sig = append([]byte(nil), cert.Sig...)
	bad2.Sig[0] ^= 1
	if _, err := VerifyCertificate(ca.Public(), bad2); err == nil {
		t.Fatal("certificate with corrupted signature accepted")
	}
}

// TestPropertySignVerify: signatures verify for the signed message only.
func TestPropertySignVerify(t *testing.T) {
	s := MustGenerateRSA("p", DefaultKeyBits, "prop")
	v := s.Public()
	f := func(msg []byte, tweak byte) bool {
		signature := s.Sign(msg)
		if !v.Verify(msg, signature) {
			return false
		}
		altered := append(append([]byte(nil), msg...), tweak)
		return !v.Verify(altered, signature)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestDetReaderIsDeterministicStream(t *testing.T) {
	r1 := newDetReader("s")
	r2 := newDetReader("s")
	a := make([]byte, 100)
	b := make([]byte, 100)
	if _, err := r1.Read(a); err != nil {
		t.Fatal(err)
	}
	if _, err := r2.Read(b); err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("det reader not deterministic")
	}
	r3 := newDetReader("other")
	c := make([]byte, 100)
	if _, err := r3.Read(c); err != nil {
		t.Fatal(err)
	}
	if string(a) == string(c) {
		t.Fatal("different seeds produced same stream")
	}
}
