// Package sig provides the signing and identity primitives the AVMM relies
// on (paper §4.1, assumption 3): each party holds a certified keypair, and
// neither signatures nor certificates can be forged.
//
// The paper's prototype uses 768-bit RSA keys; modern crypto/rsa rejects
// keys that small, so real keypairs here are 1024-bit (DefaultKeyBits)
// while wire-size accounting for the paper's figures uses PaperSigBytes.
// A NullSigner implements the avmm-nosig evaluation configuration, in
// which the tamper-evident machinery runs but no cryptographic signatures
// are produced.
//
// Key generation draws from a seeded stream for reproducibility of the
// surrounding experiments; the protocols never rely on regenerating a key —
// verifiers travel through the KeyStore and certificates.
package sig

import (
	"crypto"
	"crypto/rsa"
	"crypto/sha256"
	"crypto/x509"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"
)

// PaperKeyBits is the RSA modulus size the paper's prototype used (§6.2).
// Modern crypto/rsa refuses to generate keys this small, so real keypairs
// use DefaultKeyBits instead; wire-size accounting for the paper's figures
// goes through PaperSigBytes (via SizedSigner), not through real keys.
const PaperKeyBits = 768

// PaperSigBytes is the on-the-wire size of a paper-scale RSA-768 signature.
// Experiments that reproduce the paper's log-growth and traffic figures
// size their (fake) signatures to this constant.
const PaperSigBytes = PaperKeyBits / 8

// DefaultKeyBits is the RSA modulus size used for real keypairs. The
// paper's 768-bit keys are below the minimum crypto/rsa accepts on modern
// Go, so cryptographic tests and deployments use 1024-bit keys; the
// paper's 768-bit wire sizes are preserved separately via PaperSigBytes.
const DefaultKeyBits = 1024

// NodeID names a principal: a machine or a user.
type NodeID string

// Signer produces signatures under a principal's private key.
type Signer interface {
	// ID returns the principal this signer signs for.
	ID() NodeID
	// Sign returns a signature over msg.
	Sign(msg []byte) []byte
	// SigLen returns the length in bytes of signatures produced by Sign.
	// It is used for network-overhead accounting.
	SigLen() int
	// Public returns the verifier for this signer's public key.
	Public() Verifier
}

// Verifier checks signatures produced by a principal.
type Verifier interface {
	// ID returns the principal whose signatures this verifier checks.
	ID() NodeID
	// Verify reports whether signature is a valid signature over msg.
	Verify(msg, signature []byte) bool
	// Marshal returns a serialized form of the public key.
	Marshal() []byte
}

// detReader is a deterministic stream of pseudo-random bytes derived from a
// seed with SHA-256 in counter mode. It lets key generation be reproducible.
type detReader struct {
	seed    [32]byte
	counter uint64
	buf     []byte
}

func newDetReader(seed string) *detReader {
	return &detReader{seed: sha256.Sum256([]byte(seed))}
}

func (r *detReader) Read(p []byte) (int, error) {
	n := 0
	for n < len(p) {
		if len(r.buf) == 0 {
			var block [40]byte
			copy(block[:32], r.seed[:])
			binary.BigEndian.PutUint64(block[32:], r.counter)
			r.counter++
			sum := sha256.Sum256(block[:])
			r.buf = sum[:]
		}
		c := copy(p[n:], r.buf)
		r.buf = r.buf[c:]
		n += c
	}
	return n, nil
}

// RSASigner signs with an RSA private key using PKCS#1 v1.5 over SHA-256.
type RSASigner struct {
	id   NodeID
	key  *rsa.PrivateKey
	bits int
}

// GenerateRSA generates an RSA keypair for id from a seeded random stream.
// Note that crypto/rsa deliberately injects extra randomness during key
// generation, so the same seed is NOT guaranteed to reproduce the same key;
// the protocols in this repository never rely on regenerating a key — all
// verifiers are distributed explicitly through the KeyStore or via
// certificates.
func GenerateRSA(id NodeID, bits int, seed string) (*RSASigner, error) {
	if bits < 1024 {
		return nil, fmt.Errorf("sig: key size %d too small (crypto/rsa requires at least 1024 bits; use SizedSigner for paper-scale wire accounting)", bits)
	}
	key, err := rsa.GenerateKey(newDetReader(seed+"/"+string(id)), bits)
	if err != nil {
		return nil, fmt.Errorf("sig: generating %d-bit key for %q: %w", bits, id, err)
	}
	return &RSASigner{id: id, key: key, bits: bits}, nil
}

// MustGenerateRSA is GenerateRSA but panics on error; key generation with
// valid parameters cannot fail.
func MustGenerateRSA(id NodeID, bits int, seed string) *RSASigner {
	s, err := GenerateRSA(id, bits, seed)
	if err != nil {
		panic(err)
	}
	return s
}

// ID returns the principal this signer signs for.
func (s *RSASigner) ID() NodeID { return s.id }

// Sign returns an RSA PKCS#1 v1.5 signature over the SHA-256 digest of msg.
func (s *RSASigner) Sign(msg []byte) []byte {
	digest := sha256.Sum256(msg)
	signature, err := rsa.SignPKCS1v15(nil, s.key, crypto.SHA256, digest[:])
	if err != nil {
		// Signing with a valid key and digest cannot fail.
		panic(fmt.Sprintf("sig: RSA signing failed: %v", err))
	}
	return signature
}

// SigLen returns the modulus size in bytes.
func (s *RSASigner) SigLen() int { return (s.bits + 7) / 8 }

// Public returns the verifier for this signer's public key.
func (s *RSASigner) Public() Verifier {
	return &RSAVerifier{id: s.id, key: &s.key.PublicKey}
}

// RSAVerifier verifies RSA PKCS#1 v1.5 / SHA-256 signatures.
type RSAVerifier struct {
	id  NodeID
	key *rsa.PublicKey
}

// ID returns the principal whose signatures this verifier checks.
func (v *RSAVerifier) ID() NodeID { return v.id }

// Verify reports whether signature is valid over msg.
func (v *RSAVerifier) Verify(msg, signature []byte) bool {
	digest := sha256.Sum256(msg)
	return rsa.VerifyPKCS1v15(v.key, crypto.SHA256, digest[:], signature) == nil
}

// Marshal returns the PKCS#1 DER encoding of the public key.
func (v *RSAVerifier) Marshal() []byte {
	return x509.MarshalPKCS1PublicKey(v.key)
}

// ParseRSAVerifier reconstructs a verifier from Marshal output.
func ParseRSAVerifier(id NodeID, der []byte) (*RSAVerifier, error) {
	key, err := x509.ParsePKCS1PublicKey(der)
	if err != nil {
		return nil, fmt.Errorf("sig: parsing public key for %q: %w", id, err)
	}
	return &RSAVerifier{id: id, key: key}, nil
}

// NullSigner implements the avmm-nosig configuration: it emits empty
// signatures that always verify. It provides no security and exists only to
// isolate the cost of cryptography in the evaluation (§6.2).
type NullSigner struct{ Node NodeID }

// ID returns the principal this signer signs for.
func (n NullSigner) ID() NodeID { return n.Node }

// Sign returns an empty signature.
func (n NullSigner) Sign([]byte) []byte { return nil }

// SigLen returns 0: null signatures occupy no space.
func (n NullSigner) SigLen() int { return 0 }

// Public returns a verifier that accepts any signature.
func (n NullSigner) Public() Verifier { return nullVerifier{node: n.Node} }

type nullVerifier struct{ node NodeID }

func (v nullVerifier) ID() NodeID            { return v.node }
func (nullVerifier) Verify(_, _ []byte) bool { return true }
func (nullVerifier) Marshal() []byte         { return nil }

// SizedSigner produces deterministic keyed-digest "signatures" of a fixed
// size. It exists for performance experiments: it occupies exactly as many
// bytes on the wire and in the log as a real signature of the configured
// size (RSA-768 = 96 bytes), while its generation cost is negligible — the
// crypto cost enters those experiments through the virtual-time cost model
// instead. It provides integrity but NO unforgeability and must never be
// used where the adversary model matters; security-sensitive tests use
// RSASigner.
type SizedSigner struct {
	Node NodeID
	Size int
}

// ID returns the principal this signer signs for.
func (s SizedSigner) ID() NodeID { return s.Node }

// Sign returns a Size-byte keyed digest of msg.
func (s SizedSigner) Sign(msg []byte) []byte {
	out := make([]byte, 0, s.Size)
	var counter [8]byte
	for len(out) < s.Size {
		h := sha256.New()
		h.Write([]byte("sized-sig/"))
		h.Write([]byte(s.Node))
		h.Write(counter[:])
		h.Write(msg)
		out = h.Sum(out)
		counter[7]++
	}
	return out[:s.Size]
}

// SigLen returns the configured signature size.
func (s SizedSigner) SigLen() int { return s.Size }

// Public returns the verifier, which recomputes the digest.
func (s SizedSigner) Public() Verifier { return sizedVerifier{s} }

type sizedVerifier struct{ s SizedSigner }

func (v sizedVerifier) ID() NodeID { return v.s.Node }
func (v sizedVerifier) Verify(msg, signature []byte) bool {
	want := v.s.Sign(msg)
	if len(signature) != len(want) {
		return false
	}
	for i := range want {
		if want[i] != signature[i] {
			return false
		}
	}
	return true
}
func (v sizedVerifier) Marshal() []byte { return []byte("sized:" + string(v.s.Node)) }

// KeyStore maps principals to their verifiers. An auditor needs the public
// keys of the audited machine and of every user who communicated with it
// (§4.5, "Verifying the execution").
type KeyStore struct {
	mu   sync.RWMutex
	keys map[NodeID]Verifier
}

// NewKeyStore returns an empty key store.
func NewKeyStore() *KeyStore {
	return &KeyStore{keys: make(map[NodeID]Verifier)}
}

// Add registers a verifier, replacing any previous entry for the same ID.
func (ks *KeyStore) Add(v Verifier) {
	ks.mu.Lock()
	defer ks.mu.Unlock()
	ks.keys[v.ID()] = v
}

// Lookup returns the verifier for id.
func (ks *KeyStore) Lookup(id NodeID) (Verifier, bool) {
	ks.mu.RLock()
	defer ks.mu.RUnlock()
	v, ok := ks.keys[id]
	return v, ok
}

// Verify checks a signature attributed to id. Unknown principals never
// verify: a faulty machine must not be able to introduce fake identities
// (§4.1, assumption 3).
func (ks *KeyStore) Verify(id NodeID, msg, signature []byte) bool {
	v, ok := ks.Lookup(id)
	return ok && v.Verify(msg, signature)
}

// IDs returns all registered principals in sorted order.
func (ks *KeyStore) IDs() []NodeID {
	ks.mu.RLock()
	defer ks.mu.RUnlock()
	ids := make([]NodeID, 0, len(ks.keys))
	for id := range ks.keys {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Certificate binds a principal to a public key under an authority's
// signature, satisfying assumption 3 of §4.1 ("a keypair that is signed by
// the administrator").
type Certificate struct {
	Subject NodeID
	Key     []byte // marshaled public key
	Issuer  NodeID
	Sig     []byte
}

// certBody returns the byte string a certificate signature covers.
func certBody(subject NodeID, key []byte) []byte {
	body := make([]byte, 0, 8+len(subject)+len(key))
	body = append(body, "avmcert:"...)
	body = appendLenPrefixed(body, []byte(subject))
	body = appendLenPrefixed(body, key)
	return body
}

func appendLenPrefixed(dst, b []byte) []byte {
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], uint32(len(b)))
	dst = append(dst, lenBuf[:]...)
	return append(dst, b...)
}

// Issue creates a certificate for subject's public key signed by the
// authority ca.
func Issue(ca Signer, subject Verifier) Certificate {
	key := subject.Marshal()
	return Certificate{
		Subject: subject.ID(),
		Key:     key,
		Issuer:  ca.ID(),
		Sig:     ca.Sign(certBody(subject.ID(), key)),
	}
}

// ErrBadCertificate reports a certificate whose signature does not verify
// under the given authority.
var ErrBadCertificate = errors.New("sig: certificate signature invalid")

// VerifyCertificate checks cert under the authority's verifier and, on
// success, returns the subject's verifier.
func VerifyCertificate(ca Verifier, cert Certificate) (*RSAVerifier, error) {
	if cert.Issuer != ca.ID() {
		return nil, fmt.Errorf("sig: certificate issuer %q is not authority %q", cert.Issuer, ca.ID())
	}
	if !ca.Verify(certBody(cert.Subject, cert.Key), cert.Sig) {
		return nil, ErrBadCertificate
	}
	return ParseRSAVerifier(cert.Subject, cert.Key)
}
