package vm

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

// Port assignments for the standard device set. Ports marked nondet return
// values that are not a function of the machine's own state and must be
// logged by a recording monitor; all other ports are deterministic and —
// like the paper's virtual hard-disk reads (§4.4) — need not be recorded
// because replay reconstructs them.
const (
	// PortConsole (out) writes one byte to the console.
	PortConsole uint32 = 0x00
	// PortClockLo / PortClockHi (in, nondet) read the 64-bit virtual clock
	// in microseconds. Reading Lo latches Hi.
	PortClockLo uint32 = 0x01
	PortClockHi uint32 = 0x02
	// PortRng (in, nondet) returns a pseudo-random word.
	PortRng uint32 = 0x03

	// PortInputStatus (in, nondet) returns the number of queued input
	// events; PortInputData (in, nondet) pops and returns the next one.
	PortInputStatus uint32 = 0x10
	PortInputData   uint32 = 0x11

	// Network receive ports (in, nondet). Status returns the number of
	// queued packets; Len returns the head packet's length and resets the
	// read cursor; From returns the head packet's source; Byte returns
	// successive payload bytes; Done (out) pops the head packet.
	PortNetRxStatus uint32 = 0x20
	PortNetRxLen    uint32 = 0x21
	PortNetRxFrom   uint32 = 0x22
	PortNetRxByte   uint32 = 0x23
	PortNetRxDone   uint32 = 0x24
	// Network transmit ports (out). Byte appends to the outgoing buffer;
	// Commit sends the buffer to the given destination.
	PortNetTxByte   uint32 = 0x28
	PortNetTxCommit uint32 = 0x29

	// Disk ports. Seek (out) positions the head at a byte offset; Read (in,
	// deterministic) returns successive bytes; Write (out) stores
	// successive bytes.
	PortDiskSeek  uint32 = 0x30
	PortDiskRead  uint32 = 0x31
	PortDiskWrite uint32 = 0x32

	// PortTimerPeriod (out) sets the periodic timer interval in virtual
	// microseconds; 0 disables the timer.
	PortTimerPeriod uint32 = 0x40

	// PortFrame (out) signals that the guest finished rendering a frame;
	// the value is ignored. Used as the performance metric (§6.10).
	PortFrame uint32 = 0x50
	// PortDebug (out) appends a word to a host-visible trace, for tests.
	PortDebug uint32 = 0x60
)

// IRQ line assignments.
const (
	IRQTimer = 0
	IRQNet   = 1
	IRQInput = 2
)

// IsNondetPort reports whether IN reads from the port are nondeterministic
// inputs that a recording monitor must log.
func IsNondetPort(port uint32) bool {
	switch port {
	case PortClockLo, PortClockHi, PortRng,
		PortInputStatus, PortInputData,
		PortNetRxStatus, PortNetRxLen, PortNetRxFrom, PortNetRxByte:
		return true
	}
	return false
}

// Packet is a network packet as seen by the guest NIC. Only the source and
// payload are guest-visible (PortNetRxFrom / PortNetRxByte); the
// destination is implicit — it is this machine — and deliberately not part
// of device state, so that recorded and replayed state hash identically.
type Packet struct {
	From uint32 // source node index
	Data []byte
}

// DeviceSet implements the standard device complement behind the I/O bus:
// console, clock, RNG, input queue, NIC, disk, timer, display. It is a
// plain IOBus and can drive a machine directly (the bare-hardware
// configuration); the recording monitor wraps it to interpose on
// nondeterministic ports.
type DeviceSet struct {
	// Console accumulates console output.
	Console bytes.Buffer

	// rng is a deterministic xorshift64 state. The guest still cannot
	// predict it, so reads are classified nondeterministic and logged.
	rng uint64

	// input is the pending input-event queue (keyboard/mouse words pushed
	// by the host driver).
	input []uint32

	// rxQueue holds received packets; rxCursor indexes into the head
	// packet's payload.
	rxQueue  []Packet
	rxCursor int

	// txBuf accumulates outgoing bytes until commit.
	txBuf []byte
	// SendFunc, if set, is invoked on NET_TX_COMMIT with the destination
	// and payload. The scenario host wires this to the network.
	SendFunc func(dest uint32, payload []byte)

	// Disk is the virtual disk contents; diskPos the current head offset.
	// Reads are deterministic (the disk image is part of the reference
	// state), so they are never logged.
	Disk    []byte
	diskPos uint32

	// TimerPeriodUs is the timer interval; 0 disables it. NextTimerNs is
	// the virtual deadline of the next tick, maintained by the host loop.
	TimerPeriodUs uint32
	NextTimerNs   uint64

	// Frames counts PortFrame writes.
	Frames uint64
	// Debug accumulates PortDebug writes for tests.
	Debug []uint32

	// clockReads counts clock-port reads, for the §6.5 experiments.
	clockReads uint64
}

// NewDeviceSet returns a device set with the RNG seeded from seed.
func NewDeviceSet(seed uint64) *DeviceSet {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &DeviceSet{rng: seed}
}

// PushInput queues an input event for the guest.
func (d *DeviceSet) PushInput(event uint32) { d.input = append(d.input, event) }

// InputPending returns the number of queued input events.
func (d *DeviceSet) InputPending() int { return len(d.input) }

// PushPacket queues an incoming network packet.
func (d *DeviceSet) PushPacket(p Packet) { d.rxQueue = append(d.rxQueue, p) }

// RxPending returns the number of queued packets.
func (d *DeviceSet) RxPending() int { return len(d.rxQueue) }

// ClockReads returns the number of clock-port reads so far.
func (d *DeviceSet) ClockReads() uint64 { return d.clockReads }

// In implements IOBus.
func (d *DeviceSet) In(m *Machine, port uint32) uint32 {
	switch port {
	case PortClockLo:
		d.clockReads++
		return uint32(m.VTimeNs() / 1000)
	case PortClockHi:
		return uint32((m.VTimeNs() / 1000) >> 32)
	case PortRng:
		d.rng ^= d.rng << 13
		d.rng ^= d.rng >> 7
		d.rng ^= d.rng << 17
		return uint32(d.rng)
	case PortInputStatus:
		return uint32(len(d.input))
	case PortInputData:
		if len(d.input) == 0 {
			return 0
		}
		v := d.input[0]
		d.input = d.input[1:]
		return v
	case PortNetRxStatus:
		return uint32(len(d.rxQueue))
	case PortNetRxLen:
		if len(d.rxQueue) == 0 {
			return 0
		}
		d.rxCursor = 0
		return uint32(len(d.rxQueue[0].Data))
	case PortNetRxFrom:
		if len(d.rxQueue) == 0 {
			return 0
		}
		return d.rxQueue[0].From
	case PortNetRxByte:
		if len(d.rxQueue) == 0 || d.rxCursor >= len(d.rxQueue[0].Data) {
			return 0
		}
		v := uint32(d.rxQueue[0].Data[d.rxCursor])
		d.rxCursor++
		return v
	case PortDiskRead:
		if int(d.diskPos) >= len(d.Disk) {
			return 0
		}
		v := uint32(d.Disk[d.diskPos])
		d.diskPos++
		return v
	default:
		return 0
	}
}

// Out implements IOBus.
func (d *DeviceSet) Out(m *Machine, port uint32, val uint32) {
	switch port {
	case PortConsole:
		d.Console.WriteByte(byte(val))
	case PortNetRxDone:
		if len(d.rxQueue) > 0 {
			d.rxQueue = d.rxQueue[1:]
			d.rxCursor = 0
		}
	case PortNetTxByte:
		d.txBuf = append(d.txBuf, byte(val))
	case PortNetTxCommit:
		payload := make([]byte, len(d.txBuf))
		copy(payload, d.txBuf)
		d.txBuf = d.txBuf[:0]
		if d.SendFunc != nil {
			d.SendFunc(val, payload)
		}
	case PortDiskSeek:
		d.diskPos = val
	case PortDiskWrite:
		if int(d.diskPos) < len(d.Disk) {
			d.Disk[d.diskPos] = byte(val)
			d.diskPos++
		}
	case PortTimerPeriod:
		d.TimerPeriodUs = val
		if val != 0 {
			d.NextTimerNs = m.VTimeNs() + uint64(val)*1000
		}
	case PortFrame:
		d.Frames++
	case PortDebug:
		d.Debug = append(d.Debug, val)
	}
}

// TickTimer raises the timer IRQ if the virtual clock passed the deadline.
// The recording host calls it after every slice; during replay, interrupts
// come from the log instead.
func (d *DeviceSet) TickTimer(m *Machine) {
	if d.TimerPeriodUs == 0 {
		return
	}
	if m.VTimeNs() >= d.NextTimerNs {
		d.NextTimerNs += uint64(d.TimerPeriodUs) * 1000
		m.RaiseIRQ(IRQTimer)
	}
}

// Snapshot serializes the full device state (queues, cursors, disk, timer,
// counters) so that a machine snapshot fully determines future behaviour.
func (d *DeviceSet) Snapshot() []byte { return d.snapshot(true) }

// AuthSnapshot serializes the guest-visible, replay-deterministic portion
// of the device state: host-timing fields (the next timer deadline, the
// clock-read counter) are zeroed because they depend on the virtual-time
// cost model and legitimately differ between recording and replay.
// Authenticated snapshot roots are computed over this form.
func (d *DeviceSet) AuthSnapshot() []byte { return d.snapshot(false) }

func (d *DeviceSet) snapshot(includeHost bool) []byte {
	var b []byte
	b = binary.AppendUvarint(b, d.rng)
	b = binary.AppendUvarint(b, uint64(len(d.input)))
	for _, v := range d.input {
		b = binary.AppendUvarint(b, uint64(v))
	}
	b = binary.AppendUvarint(b, uint64(len(d.rxQueue)))
	for _, p := range d.rxQueue {
		b = binary.AppendUvarint(b, uint64(p.From))
		b = binary.AppendUvarint(b, uint64(len(p.Data)))
		b = append(b, p.Data...)
	}
	b = binary.AppendUvarint(b, uint64(d.rxCursor))
	b = binary.AppendUvarint(b, uint64(len(d.txBuf)))
	b = append(b, d.txBuf...)
	b = binary.AppendUvarint(b, uint64(len(d.Disk)))
	b = append(b, d.Disk...)
	b = binary.AppendUvarint(b, uint64(d.diskPos))
	b = binary.AppendUvarint(b, uint64(d.TimerPeriodUs))
	if includeHost {
		b = binary.AppendUvarint(b, d.NextTimerNs)
	} else {
		b = binary.AppendUvarint(b, 0)
	}
	b = binary.AppendUvarint(b, d.Frames)
	if includeHost {
		b = binary.AppendUvarint(b, d.clockReads)
	} else {
		b = binary.AppendUvarint(b, 0)
	}
	return b
}

// RestoreSnapshot reverses Snapshot. Console, Debug and SendFunc are
// host-side observers and are not part of guest-visible state.
func (d *DeviceSet) RestoreSnapshot(b []byte) error {
	r := snapReader{b: b}
	d.rng = r.uvarint()
	n := r.uvarint()
	d.input = make([]uint32, 0, n)
	for i := uint64(0); i < n; i++ {
		d.input = append(d.input, uint32(r.uvarint()))
	}
	n = r.uvarint()
	d.rxQueue = make([]Packet, 0, n)
	for i := uint64(0); i < n; i++ {
		p := Packet{From: uint32(r.uvarint())}
		p.Data = r.bytes(r.uvarint())
		d.rxQueue = append(d.rxQueue, p)
	}
	d.rxCursor = int(r.uvarint())
	d.txBuf = r.bytes(r.uvarint())
	d.Disk = r.bytes(r.uvarint())
	d.diskPos = uint32(r.uvarint())
	d.TimerPeriodUs = uint32(r.uvarint())
	d.NextTimerNs = r.uvarint()
	d.Frames = r.uvarint()
	d.clockReads = r.uvarint()
	if r.err != nil {
		return fmt.Errorf("vm: restoring device snapshot: %w", r.err)
	}
	return nil
}

type snapReader struct {
	b   []byte
	err error
}

func (r *snapReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		r.err = fmt.Errorf("truncated varint")
		return 0
	}
	r.b = r.b[n:]
	return v
}

func (r *snapReader) bytes(n uint64) []byte {
	if r.err != nil {
		return nil
	}
	if uint64(len(r.b)) < n {
		r.err = fmt.Errorf("truncated bytes: want %d, have %d", n, len(r.b))
		return nil
	}
	out := make([]byte, n)
	copy(out, r.b[:n])
	r.b = r.b[n:]
	return out
}
