package vm

import (
	"encoding/binary"
	"fmt"
)

// This file implements the interpreter's fast path: a per-page predecoded
// instruction cache and the sprint loop that executes from it. Step decodes
// 8 bytes on every retired instruction and pays a branch for every optional
// host feature (access tracking, the inject gate, the stop request); the
// sprint decodes each code page once, keeps the decoded instructions until
// the page is written, and hoists the feature branches out of the loop
// entirely — RunUntil selects the careful Step loop whenever one of those
// features is active. Both paths retire bit-identical machine state; the
// differential tests in predecode_test.go pin the equivalence instruction
// by instruction.

const (
	// pageShift is log2(PageSize).
	pageShift = 12
	// instrShift is log2(InstrSize).
	instrShift = 3
	// instrsPerPage is the number of aligned instruction slots per page.
	instrsPerPage = PageSize / InstrSize
)

// pageCode caches one page's instruction stream, decoded at the
// InstrSize-aligned slots (a misaligned PC falls back to Step, which
// decodes straight from memory).
type pageCode struct {
	// stamp is the page write generation the decode is valid for: the entry
	// is stale as soon as pageGen[p] != stamp. predecodePage guarantees that
	// every store landing on the page after the decode moves pageGen[p] off
	// the stamp, so self-modifying code — guest stores, host pokes, cheat
	// patches — re-decodes before the next instruction executes from it.
	stamp  uint64
	instrs *[instrsPerPage]Instr
}

// predecodePage (re)decodes page p into the cache and stamps the entry
// against the page's current write generation.
func (m *Machine) predecodePage(p uint32) {
	cp := &m.code[p]
	if cp.instrs == nil {
		cp.instrs = new([instrsPerPage]Instr)
	}
	mem := m.Mem[int(p)<<pageShift : (int(p)+1)<<pageShift]
	for i := range cp.instrs {
		cp.instrs[i] = Decode(mem[i*InstrSize:])
	}
	// A store stamps its page with the current generation, so if this page
	// already carries the current generation, a write after this decode
	// would be indistinguishable from the write before it. Advancing the
	// generation restores the invariant that any later store moves
	// pageGen[p] off the recorded stamp. Floors handed out by DirtyEpoch
	// stay valid: generations only grow, and no page is stamped here.
	if m.pageGen[p] == m.gen {
		m.gen++
	}
	cp.stamp = m.pageGen[p]
}

// sprint executes instructions from the predecode cache until the retired
// count reaches bound, the machine halts, waits or faults, or a bus handler
// requests a stop. Preconditions (enforced by RunUntil): no access
// tracking, no InjectGate, predecode not disabled.
//
// The execution position (PC, ICount, Branches) lives in locals for the
// duration of the sprint and is flushed back to the machine at every exit
// and around every call that observes or mutates it: interrupt delivery,
// bus handlers (which read the virtual clock and landmarks), the careful
// Step fallback, and fault construction. Bus handlers never write the
// position, so the locals stay authoritative across In/Out.
//
// The instruction semantics below are a transcript of Machine.Step and must
// stay in sync with it; predecode_test.go diffs the two paths.
func (m *Machine) sprint(bound uint64) {
	if m.Halted || m.Waiting {
		return
	}
	if m.code == nil {
		m.code = make([]pageCode, m.numPages)
	}
	var (
		instrs  *[instrsPerPage]Instr
		curPage = uint32(1) << 31 // sentinel above any reachable page index
	)
	memLen := uint32(len(m.Mem))
	pageGen := m.pageGen
	pc, icount, branches := m.PC, m.ICount, m.Branches
	// intGate caches IntEnabled && pending != 0 so the hot loop pays one
	// predictable branch instead of two field loads per instruction. Within
	// a sprint, pending can only change inside RaiseIRQ — reachable through
	// a bus handler or delivery itself — and IntEnabled only through
	// cli/sti/iret or delivery, so the gate is recomputed exactly at those
	// points (and after the Step fallback, which can do anything).
	intGate := m.IntEnabled && m.pending != 0
	for icount < bound {
		// Interrupt delivery at the instruction boundary, exactly as in
		// Step. The sprint only runs without an InjectGate, so the pending
		// mask and the interrupt flag alone decide.
		if intGate {
			m.PC, m.ICount, m.Branches = pc, icount, branches
			m.deliverIRQ(m.lowestIRQ())
			pc, branches = m.PC, m.Branches // delivery rewrites PC and counts a branch
			if m.Halted {
				return
			}
			intGate = m.IntEnabled && m.pending != 0
			curPage = uint32(1) << 31 // delivery pushed to the stack; revalidate
		}
		if pc&(InstrSize-1) != 0 || pc >= memLen {
			// Misaligned or out-of-range fetch: let Step resolve it (decode
			// across slot boundaries, or the fetch fault), then resume
			// sprinting.
			m.PC, m.ICount, m.Branches = pc, icount, branches
			if !m.Step() {
				return
			}
			if m.StopReq {
				m.StopReq = false
				return
			}
			pc, icount, branches = m.PC, m.ICount, m.Branches
			intGate = m.IntEnabled && m.pending != 0
			curPage = uint32(1) << 31 // the careful instruction can do anything
			continue
		}
		// The stamp is checked only when (re-)entering a page: while the
		// sprint stays on one page, every path that can write guest memory —
		// the store-class cases below, interrupt delivery, the Step fallback,
		// bus handlers — drops curPage to the sentinel when it touches (or
		// could touch) the executing page, forcing this revalidation.
		if page := pc >> pageShift; page != curPage {
			cp := &m.code[page]
			if cp.instrs == nil || cp.stamp != pageGen[page] {
				m.predecodePage(page)
			}
			curPage, instrs = page, cp.instrs
		}
		ins := instrs[(pc&(PageSize-1))>>instrShift]
		nextPC := pc + InstrSize
		branched := false

		switch ins.Op {
		case OpNop:
		case OpHlt:
			m.Halted = true
			goto noRetire
		case OpMovi:
			m.Regs[ins.Ra&15] = ins.Imm
		case OpMov:
			m.Regs[ins.Ra&15] = m.Regs[ins.Rb&15]
		case OpAdd:
			m.Regs[ins.Ra&15] = m.Regs[ins.Rb&15] + m.Regs[ins.Rc&15]
		case OpSub:
			m.Regs[ins.Ra&15] = m.Regs[ins.Rb&15] - m.Regs[ins.Rc&15]
		case OpMul:
			m.Regs[ins.Ra&15] = m.Regs[ins.Rb&15] * m.Regs[ins.Rc&15]
		case OpDivu:
			if m.Regs[ins.Rc&15] == 0 {
				m.sprintFault(pc, icount, FaultDivByZero, "divu")
				goto noRetire
			} else {
				m.Regs[ins.Ra&15] = m.Regs[ins.Rb&15] / m.Regs[ins.Rc&15]
			}
		case OpModu:
			if m.Regs[ins.Rc&15] == 0 {
				m.sprintFault(pc, icount, FaultDivByZero, "modu")
				goto noRetire
			} else {
				m.Regs[ins.Ra&15] = m.Regs[ins.Rb&15] % m.Regs[ins.Rc&15]
			}
		case OpAnd:
			m.Regs[ins.Ra&15] = m.Regs[ins.Rb&15] & m.Regs[ins.Rc&15]
		case OpOr:
			m.Regs[ins.Ra&15] = m.Regs[ins.Rb&15] | m.Regs[ins.Rc&15]
		case OpXor:
			m.Regs[ins.Ra&15] = m.Regs[ins.Rb&15] ^ m.Regs[ins.Rc&15]
		case OpShl:
			m.Regs[ins.Ra&15] = m.Regs[ins.Rb&15] << (m.Regs[ins.Rc&15] & 31)
		case OpShr:
			m.Regs[ins.Ra&15] = m.Regs[ins.Rb&15] >> (m.Regs[ins.Rc&15] & 31)
		case OpAddi:
			m.Regs[ins.Ra&15] = m.Regs[ins.Rb&15] + ins.Imm
		case OpEq:
			m.Regs[ins.Ra&15] = boolToWord(m.Regs[ins.Rb&15] == m.Regs[ins.Rc&15])
		case OpLtu:
			m.Regs[ins.Ra&15] = boolToWord(m.Regs[ins.Rb&15] < m.Regs[ins.Rc&15])
		case OpLts:
			m.Regs[ins.Ra&15] = boolToWord(int32(m.Regs[ins.Rb&15]) < int32(m.Regs[ins.Rc&15]))
		case OpNot:
			m.Regs[ins.Ra&15] = boolToWord(m.Regs[ins.Rb&15] == 0)
		// The memory and stack cases below inline the fast path of the
		// load32/store32/loadByte/storeByte/push/pop helpers: same bounds
		// checks, same dirty stamping, same fault details, minus the call
		// (the helpers' fault paths keep them above the inlining budget) and
		// minus the access-tracking branches, which are off in the sprint.
		case OpLoad:
			if addr := m.Regs[ins.Rb&15] + ins.Imm; addr <= memLen-4 {
				m.Regs[ins.Ra&15] = binary.LittleEndian.Uint32(m.Mem[addr:])
			} else {
				m.Regs[ins.Ra&15] = 0 // the helper's zero return is assigned even on fault
				m.sprintFault(pc, icount, FaultMemOutOfRange, fmt.Sprintf("load32 at 0x%x", addr))
				goto noRetire
			}
		case OpStore:
			if addr := m.Regs[ins.Ra&15] + ins.Imm; addr <= memLen-4 {
				binary.LittleEndian.PutUint32(m.Mem[addr:], m.Regs[ins.Rb&15])
				pageGen[addr>>pageShift] = m.gen
				if addr&(PageSize-1) > PageSize-4 {
					pageGen[addr>>pageShift+1] = m.gen
				}
				if addr>>pageShift == curPage || (addr+3)>>pageShift == curPage {
					curPage = uint32(1) << 31 // self-modifying store: re-decode
				}
			} else {
				m.sprintFault(pc, icount, FaultMemOutOfRange, fmt.Sprintf("store32 at 0x%x", addr))
				goto noRetire
			}
		case OpLoadb:
			if addr := m.Regs[ins.Rb&15] + ins.Imm; addr < memLen {
				m.Regs[ins.Ra&15] = uint32(m.Mem[addr])
			} else {
				m.Regs[ins.Ra&15] = 0 // the helper's zero return is assigned even on fault
				m.sprintFault(pc, icount, FaultMemOutOfRange, fmt.Sprintf("loadb at 0x%x", addr))
				goto noRetire
			}
		case OpStoreb:
			if addr := m.Regs[ins.Ra&15] + ins.Imm; addr < memLen {
				m.Mem[addr] = byte(m.Regs[ins.Rb&15])
				pageGen[addr>>pageShift] = m.gen
				if addr>>pageShift == curPage {
					curPage = uint32(1) << 31 // self-modifying store: re-decode
				}
			} else {
				m.sprintFault(pc, icount, FaultMemOutOfRange, fmt.Sprintf("storeb at 0x%x", addr))
				goto noRetire
			}
		case OpJmp:
			nextPC = ins.Imm
			branched = true
		case OpJz:
			if m.Regs[ins.Ra&15] == 0 {
				nextPC = ins.Imm
				branched = true
			}
		case OpJnz:
			if m.Regs[ins.Ra&15] != 0 {
				nextPC = ins.Imm
				branched = true
			}
		case OpCall:
			sp := m.Regs[RegSP] - 4
			m.Regs[RegSP] = sp
			if sp <= memLen-4 {
				binary.LittleEndian.PutUint32(m.Mem[sp:], nextPC)
				pageGen[sp>>pageShift] = m.gen
				if sp&(PageSize-1) > PageSize-4 { // misaligned SP can straddle pages
					pageGen[sp>>pageShift+1] = m.gen
				}
				if sp>>pageShift == curPage || (sp+3)>>pageShift == curPage {
					curPage = uint32(1) << 31 // stack overlaps the executing page
				}
			} else {
				m.sprintFault(pc, icount, FaultMemOutOfRange, fmt.Sprintf("store32 at 0x%x", sp))
				goto noRetire
			}
			nextPC = ins.Imm
			branched = true
		case OpRet:
			if sp := m.Regs[RegSP]; sp <= memLen-4 {
				nextPC = binary.LittleEndian.Uint32(m.Mem[sp:])
			} else {
				m.Regs[RegSP] += 4 // the pop helper increments SP even on a faulting load
				m.sprintFault(pc, icount, FaultMemOutOfRange, fmt.Sprintf("load32 at 0x%x", sp))
				goto noRetire
			}
			m.Regs[RegSP] += 4
			branched = true
		case OpPush:
			// Step evaluates the operand before push() decrements SP, so
			// `push sp` stores the pre-decrement value.
			val := m.Regs[ins.Ra&15]
			sp := m.Regs[RegSP] - 4
			m.Regs[RegSP] = sp
			if sp <= memLen-4 {
				binary.LittleEndian.PutUint32(m.Mem[sp:], val)
				pageGen[sp>>pageShift] = m.gen
				if sp&(PageSize-1) > PageSize-4 { // misaligned SP can straddle pages
					pageGen[sp>>pageShift+1] = m.gen
				}
				if sp>>pageShift == curPage || (sp+3)>>pageShift == curPage {
					curPage = uint32(1) << 31 // stack overlaps the executing page
				}
			} else {
				m.sprintFault(pc, icount, FaultMemOutOfRange, fmt.Sprintf("store32 at 0x%x", sp))
				goto noRetire
			}
		case OpPop:
			// Step's pop() increments SP before the destination register is
			// assigned, so `pop sp` ends with the loaded value, not value+4.
			if sp := m.Regs[RegSP]; sp <= memLen-4 {
				m.Regs[RegSP] = sp + 4
				m.Regs[ins.Ra&15] = binary.LittleEndian.Uint32(m.Mem[sp:])
			} else {
				m.Regs[RegSP] = sp + 4 // SP advances even on a faulting load
				m.Regs[ins.Ra&15] = 0  // and the helper's zero return is still assigned
				m.sprintFault(pc, icount, FaultMemOutOfRange, fmt.Sprintf("load32 at 0x%x", sp))
				goto noRetire
			}
		case OpIn:
			if m.Bus == nil {
				m.sprintFault(pc, icount, FaultBadPort, fmt.Sprintf("in port 0x%x with no bus", ins.Imm))
				goto noRetire
			}
			m.PC, m.ICount, m.Branches = pc, icount, branches
			m.Regs[ins.Ra&15] = m.Bus.In(m, ins.Imm)
			if m.Halted {
				goto noRetire // the handler paused or faulted the machine
			}
			if m.StopReq {
				goto stopRetire
			}
			intGate = m.IntEnabled && m.pending != 0
			curPage = uint32(1) << 31 // a handler may have written memory
		case OpOut:
			if m.Bus == nil {
				m.sprintFault(pc, icount, FaultBadPort, fmt.Sprintf("out port 0x%x with no bus", ins.Imm))
				goto noRetire
			}
			m.PC, m.ICount, m.Branches = pc, icount, branches
			m.Bus.Out(m, ins.Imm, m.Regs[ins.Ra&15])
			if m.Halted {
				goto noRetire // the handler paused or faulted the machine
			}
			if m.StopReq {
				goto stopRetire
			}
			intGate = m.IntEnabled && m.pending != 0
			curPage = uint32(1) << 31 // a handler may have written memory
		case OpCli:
			m.IntEnabled = false
			intGate = false
		case OpSti:
			m.IntEnabled = true
			intGate = m.pending != 0
		case OpIret:
			if sp := m.Regs[RegSP]; sp <= memLen-4 {
				nextPC = binary.LittleEndian.Uint32(m.Mem[sp:])
			} else {
				// As in Step: the faulting pop still advances SP and IRET
				// still re-enables interrupts before the halt is noticed.
				m.Regs[RegSP] += 4
				m.IntEnabled = true
				m.sprintFault(pc, icount, FaultMemOutOfRange, fmt.Sprintf("load32 at 0x%x", sp))
				goto noRetire
			}
			m.Regs[RegSP] += 4
			m.IntEnabled = true
			intGate = m.pending != 0
			branched = true
		case OpWfi:
			if m.pending == 0 {
				m.Waiting = true
				goto wfiRetire
			}
		default:
			m.sprintFault(pc, icount, FaultBadOpcode, fmt.Sprintf("opcode %d", ins.Op))
			goto noRetire
		}

		pc = nextPC
		icount++
		if branched {
			branches++
		}
		continue

		// The exits below are reachable only by goto from exceptional paths
		// inside the switch, keeping the common retire path free of flag
		// checks: within a sprint, Halted/Waiting/StopReq can only become
		// true in the cases that jump here.

	stopRetire:
		// A bus handler requested a stop: the in-flight instruction retires
		// first, exactly as in Run's per-Step check. In/Out never branch.
		m.StopReq = false
		m.PC, m.ICount, m.Branches = nextPC, icount+1, branches
		return

	wfiRetire:
		// WFI retires, then the machine idles awaiting an interrupt.
		m.PC, m.ICount, m.Branches = nextPC, icount+1, branches
		return

	noRetire:
		// Fault, HLT, or a bus pause: the instruction does not retire, so
		// the position stays at it — as Step leaves it.
		m.PC, m.ICount, m.Branches = pc, icount, branches
		return
	}
	m.PC, m.ICount, m.Branches = pc, icount, branches
}

// sprintFault records a fault at the given execution position (the sprint
// keeps the position in locals, so Machine.fault's reads of PC/ICount
// would see stale fields) and halts the machine. The common sprint exit
// flushes the position back to the machine.
func (m *Machine) sprintFault(pc uint32, icount uint64, code FaultCode, detail string) {
	m.Halted = true
	m.FaultInfo = &Fault{Code: code, PC: pc, ICount: icount, Detail: detail}
}
