package vm

import (
	"encoding/binary"
	"fmt"
)

// This file implements the interpreter's fast path: a per-page predecoded
// instruction cache and the sprint loop that executes from it. Step decodes
// 8 bytes on every retired instruction and pays a branch for every optional
// host feature (access tracking, the inject gate, the stop request); the
// sprint decodes each code page once, keeps the decoded instructions until
// the page is written, and hoists the feature branches out of the loop
// entirely — RunUntil selects the careful Step loop whenever one of those
// features is active. Both paths retire bit-identical machine state; the
// differential tests in predecode_test.go pin the equivalence instruction
// by instruction.

const (
	// pageShift is log2(PageSize).
	pageShift = 12
	// instrShift is log2(InstrSize).
	instrShift = 3
	// instrsPerPage is the number of aligned instruction slots per page.
	instrsPerPage = PageSize / InstrSize
)

// cachedInstr is one predecoded slot. For a plain instruction, Op holds
// the instruction's Opcode and Ra/Rb/Rc/Imm its operands, exactly as
// Decode produced them. For a fused superinstruction, Op holds a fused id
// (>= fusedBase, above anything a guest byte can decode to), Sub1/Sub2 the
// two constituent opcodes, and Ra2/Rb2/Rc2/Imm2 the second constituent's
// operands. The slot after a fused slot always keeps its original decode,
// so a control transfer (or IRQ return) landing in the middle of a pair
// executes the original instruction — fusion rewrites only first slots.
type cachedInstr struct {
	Op            uint16
	Ra, Rb, Rc    uint8
	Sub1, Sub2    uint8
	Ra2, Rb2, Rc2 uint8
	Imm           uint32
	Imm2          uint32
}

// pageCode caches one page's instruction stream, decoded at the
// InstrSize-aligned slots (a misaligned PC falls back to Step, which
// decodes straight from memory).
type pageCode struct {
	// stamp is the page write generation the decode is valid for: the entry
	// is stale as soon as pageGen[p] != stamp. predecodePage guarantees that
	// every store landing on the page after the decode moves pageGen[p] off
	// the stamp, so self-modifying code — guest stores, host pokes, cheat
	// patches — re-decodes before the next instruction executes from it.
	stamp uint64
	// fused records whether the fusion pass ran on this decode, so a
	// machine whose DisableFusion flag changed re-predecodes on the next
	// page entry instead of executing a stale fusion state.
	fused  bool
	instrs *[instrsPerPage]cachedInstr
}

// predecodePage (re)decodes page p into the cache, runs the fusion pass
// (unless disabled), and stamps the entry against the page's current write
// generation. seedSlot is the slot the sprint is about to execute from; the
// fusion pass treats it as a known entry point (a fusion barrier), along
// with every in-page branch target.
func (m *Machine) predecodePage(p uint32, seedSlot int) {
	cp := &m.code[p]
	if cp.instrs == nil {
		cp.instrs = new([instrsPerPage]cachedInstr)
	}
	mem := m.Mem[int(p)<<pageShift : (int(p)+1)<<pageShift]
	for i := range cp.instrs {
		in := Decode(mem[i*InstrSize:])
		cp.instrs[i] = cachedInstr{Op: uint16(in.Op), Ra: in.Ra, Rb: in.Rb, Rc: in.Rc, Imm: in.Imm}
	}
	cp.fused = !m.DisableFusion
	if cp.fused {
		fusePage(p, cp.instrs, seedSlot)
	}
	// A store stamps its page with the current generation, so if this page
	// already carries the current generation, a write after this decode
	// would be indistinguishable from the write before it. Advancing the
	// generation restores the invariant that any later store moves
	// pageGen[p] off the recorded stamp. Floors handed out by DirtyEpoch
	// stay valid: generations only grow, and no page is stamped here.
	if m.pageGen[p] == m.gen {
		m.gen++
	}
	cp.stamp = m.pageGen[p]
}

// fusePage rewrites recognized adjacent instruction pairs in a freshly
// decoded page into fused superinstructions. Fusion barriers keep every
// pair entirely inside a sprint's straight-line view of the code:
//
//   - page edges: a pair never spans pages (slot 511 cannot start one);
//   - branch targets: the targets of the page's own jmp/jz/jnz/call
//     instructions, plus the seed slot the sprint enters at, never become
//     the second half of a pair, so statically visible control transfers
//     always land on a slot that starts an instruction;
//   - and, at run time, landmark/budget stops and self-modifying stores
//     are handled by the sprint itself (Step tail fallback, first-half
//     bail-out) — see the fused handlers.
//
// Targets that are not computable from this page (call returns, iret,
// cross-page jumps into it) are covered by slot preservation: the second
// slot of every pair keeps its original decode, so landing there executes
// the original instruction.
func fusePage(p uint32, instrs *[instrsPerPage]cachedInstr, seedSlot int) {
	var barrier [instrsPerPage]bool
	if seedSlot >= 0 && seedSlot < instrsPerPage {
		barrier[seedSlot] = true
	}
	for i := range instrs {
		switch Opcode(instrs[i].Op) {
		case OpJmp, OpJz, OpJnz, OpCall:
			if t := instrs[i].Imm; t&(InstrSize-1) == 0 && t>>pageShift == p {
				barrier[(t&(PageSize-1))>>instrShift] = true
			}
		}
	}
	for i := 0; i+1 < instrsPerPage; {
		if barrier[i+1] {
			i++
			continue
		}
		a, b := &instrs[i], &instrs[i+1]
		f := fusePair(Opcode(a.Op), Opcode(b.Op))
		if f == 0 {
			i++
			continue
		}
		a.Sub1, a.Sub2 = uint8(a.Op), uint8(b.Op)
		a.Op = f
		a.Ra2, a.Rb2, a.Rc2, a.Imm2 = b.Ra, b.Rb, b.Rc, b.Imm
		i += 2
	}
	// Second pass: fuse recognized pair-of-pair sequences into quads. Only
	// the first pair's Op is rewritten — its operand fields already hold
	// both of its constituents, and the second pair's slot keeps its pair id
	// and operands for the quad handler to read (and for any control
	// transfer that lands on it). No barrier checks are needed beyond what
	// the pair pass enforced: a branch target at i+2 still finds a valid
	// pair there, and quads may overlap (the pair at i+2 can itself head a
	// quad) because quad rewriting never touches operand fields.
	for i := 0; i+3 < instrsPerPage; i++ {
		if q := fuseQuad(instrs[i].Op, instrs[i+2].Op); q != 0 {
			instrs[i].Op = q
			i++ // instrs[i+1] holds a plain second-constituent decode
		}
	}
}

// sprint executes instructions from the predecode cache until the retired
// count reaches bound, the machine halts, waits or faults, or a bus handler
// requests a stop. Preconditions (enforced by RunUntil): no access
// tracking, no InjectGate, predecode not disabled.
//
// The execution position (PC, ICount, Branches) lives in locals for the
// duration of the sprint and is flushed back to the machine at every exit
// and around every call that observes or mutates it: interrupt delivery,
// bus handlers (which read the virtual clock and landmarks), the careful
// Step fallback, and fault construction. Bus handlers never write the
// position, so the locals stay authoritative across In/Out.
//
// The instruction semantics below are a transcript of Machine.Step and must
// stay in sync with it; predecode_test.go diffs the two paths.
func (m *Machine) sprint(bound uint64) {
	if m.Halted || m.Waiting {
		return
	}
	if m.code == nil {
		m.code = make([]pageCode, m.numPages)
	}
	var (
		instrs  *[instrsPerPage]cachedInstr
		curPage = uint32(1) << 31 // sentinel above any reachable page index
	)
	memLen := uint32(len(m.Mem))
	pageGen := m.pageGen
	pc, icount, branches := m.PC, m.ICount, m.Branches
	// intGate caches IntEnabled && pending != 0 so the hot loop pays one
	// predictable branch instead of two field loads per instruction. Within
	// a sprint, pending can only change inside RaiseIRQ — reachable through
	// a bus handler or delivery itself — and IntEnabled only through
	// cli/sti/iret or delivery, so the gate is recomputed exactly at those
	// points (and after the Step fallback, which can do anything).
	intGate := m.IntEnabled && m.pending != 0
	for icount < bound {
		// Interrupt delivery at the instruction boundary, exactly as in
		// Step. The sprint only runs without an InjectGate, so the pending
		// mask and the interrupt flag alone decide.
		if intGate {
			m.PC, m.ICount, m.Branches = pc, icount, branches
			m.deliverIRQ(m.lowestIRQ())
			pc, branches = m.PC, m.Branches // delivery rewrites PC and counts a branch
			if m.Halted {
				return
			}
			intGate = m.IntEnabled && m.pending != 0
			curPage = uint32(1) << 31 // delivery pushed to the stack; revalidate
		}
		if pc&(InstrSize-1) != 0 || pc >= memLen {
			// Misaligned or out-of-range fetch: let Step resolve it (decode
			// across slot boundaries, or the fetch fault), then resume
			// sprinting.
			m.PC, m.ICount, m.Branches = pc, icount, branches
			if !m.Step() {
				return
			}
			if m.StopReq {
				m.StopReq = false
				return
			}
			pc, icount, branches = m.PC, m.ICount, m.Branches
			intGate = m.IntEnabled && m.pending != 0
			curPage = uint32(1) << 31 // the careful instruction can do anything
			continue
		}
		// The stamp is checked only when (re-)entering a page: while the
		// sprint stays on one page, every path that can write guest memory —
		// the store-class cases below, interrupt delivery, the Step fallback,
		// bus handlers — drops curPage to the sentinel when it touches (or
		// could touch) the executing page, forcing this revalidation.
		if page := pc >> pageShift; page != curPage {
			cp := &m.code[page]
			// fused == DisableFusion means the cached fusion state
			// disagrees with the flag (fused while disabled, or plain
			// while enabled): re-predecode under the current setting.
			if cp.instrs == nil || cp.stamp != pageGen[page] || cp.fused == m.DisableFusion {
				m.predecodePage(page, int((pc&(PageSize-1))>>instrShift))
			}
			curPage, instrs = page, cp.instrs
		}
		ins := &instrs[(pc&(PageSize-1))>>instrShift]

		// Quad superinstructions: two back-to-back fused pairs, one
		// dispatch. Each handler is the concatenation of its two pair
		// handlers; the second pair's operands are read from its own slot
		// (ins2), which still holds the pair decode. The loop-top interrupt
		// check runs once per quad, which matches Step exactly for the same
		// reason it does for pairs: no fusable constituent can change the
		// pending mask or the interrupt flag. Faults and self-modifying
		// stores in constituent k retire the k preceding instructions first
		// (position advances by k), exactly as Step would have; a partial
		// retire that completed the first pair counts it in FusedPairs.
		if ins.Op >= quadBase {
			if bound-icount < 4 {
				// Landmark or budget stop inside the quad's span: fall back
				// to Step, which decodes the original bytes one instruction
				// at a time until the bound.
				m.PC, m.ICount, m.Branches = pc, icount, branches
				if !m.Step() {
					return
				}
				if m.StopReq {
					m.StopReq = false
					return
				}
				pc, icount, branches = m.PC, m.ICount, m.Branches
				intGate = m.IntEnabled && m.pending != 0
				curPage = uint32(1) << 31 // the careful instruction can do anything
				continue
			}
			ins2 := &instrs[((pc&(PageSize-1))>>instrShift)+2]
			switch ins.Op {
			case fusedQLoadPushMoviMov: // load ; push ; movi ; mov
				if addr := m.Regs[ins.Rb&15] + ins.Imm; addr <= memLen-4 {
					m.Regs[ins.Ra&15] = binary.LittleEndian.Uint32(m.Mem[addr:])
				} else {
					m.Regs[ins.Ra&15] = 0 // the helper's zero return is assigned even on fault
					m.sprintFault(pc, icount, FaultMemOutOfRange, fmt.Sprintf("load32 at 0x%x", addr))
					m.PC, m.ICount, m.Branches = pc, icount, branches
					return
				}
				val := m.Regs[ins.Ra2&15]
				sp := m.Regs[RegSP] - 4
				m.Regs[RegSP] = sp
				if sp <= memLen-4 {
					binary.LittleEndian.PutUint32(m.Mem[sp:], val)
					pageGen[sp>>pageShift] = m.gen
					if sp&(PageSize-1) > PageSize-4 {
						pageGen[sp>>pageShift+1] = m.gen
					}
					if sp>>pageShift == curPage || (sp+3)>>pageShift == curPage {
						// Self-modifying push: the first pair retired; the
						// second pair re-executes from a fresh decode.
						curPage = uint32(1) << 31
						m.FusedPairs++
						pc += 2 * InstrSize
						icount += 2
						continue
					}
				} else {
					m.sprintFault(pc+InstrSize, icount+1, FaultMemOutOfRange, fmt.Sprintf("store32 at 0x%x", sp))
					m.PC, m.ICount, m.Branches = pc+InstrSize, icount+1, branches
					return
				}
				m.Regs[ins2.Ra&15] = ins2.Imm
				m.Regs[ins2.Ra2&15] = m.Regs[ins2.Rb2&15]

			case fusedQPushMoviMovPop: // push ; movi ; mov ; pop
				val := m.Regs[ins.Ra&15]
				sp := m.Regs[RegSP] - 4
				m.Regs[RegSP] = sp
				if sp <= memLen-4 {
					binary.LittleEndian.PutUint32(m.Mem[sp:], val)
					pageGen[sp>>pageShift] = m.gen
					if sp&(PageSize-1) > PageSize-4 {
						pageGen[sp>>pageShift+1] = m.gen
					}
					if sp>>pageShift == curPage || (sp+3)>>pageShift == curPage {
						curPage = uint32(1) << 31 // self-modifying push: retire it alone
						pc += InstrSize
						icount++
						continue
					}
				} else {
					m.sprintFault(pc, icount, FaultMemOutOfRange, fmt.Sprintf("store32 at 0x%x", sp))
					m.PC, m.ICount, m.Branches = pc, icount, branches
					return
				}
				m.Regs[ins.Ra2&15] = ins.Imm2
				m.Regs[ins2.Ra&15] = m.Regs[ins2.Rb&15]
				if sp2 := m.Regs[RegSP]; sp2 <= memLen-4 {
					m.Regs[RegSP] = sp2 + 4
					m.Regs[ins2.Ra2&15] = binary.LittleEndian.Uint32(m.Mem[sp2:])
				} else {
					m.Regs[RegSP] = sp2 + 4 // SP advances even on a faulting load
					m.Regs[ins2.Ra2&15] = 0
					m.sprintFault(pc+3*InstrSize, icount+3, FaultMemOutOfRange, fmt.Sprintf("load32 at 0x%x", sp2))
					m.PC, m.ICount, m.Branches = pc+3*InstrSize, icount+3, branches
					return
				}

			case fusedQMoviMovPopLts: // movi ; mov ; pop ; lts
				m.Regs[ins.Ra&15] = ins.Imm
				m.Regs[ins.Ra2&15] = m.Regs[ins.Rb2&15]
				if sp := m.Regs[RegSP]; sp <= memLen-4 {
					m.Regs[RegSP] = sp + 4
					m.Regs[ins2.Ra&15] = binary.LittleEndian.Uint32(m.Mem[sp:])
				} else {
					m.Regs[RegSP] = sp + 4
					m.Regs[ins2.Ra&15] = 0
					m.sprintFault(pc+2*InstrSize, icount+2, FaultMemOutOfRange, fmt.Sprintf("load32 at 0x%x", sp))
					m.PC, m.ICount, m.Branches = pc+2*InstrSize, icount+2, branches
					return
				}
				m.Regs[ins2.Ra2&15] = boolToWord(int32(m.Regs[ins2.Rb2&15]) < int32(m.Regs[ins2.Rc2&15]))

			case fusedQMoviMovPopAdd: // movi ; mov ; pop ; add
				m.Regs[ins.Ra&15] = ins.Imm
				m.Regs[ins.Ra2&15] = m.Regs[ins.Rb2&15]
				if sp := m.Regs[RegSP]; sp <= memLen-4 {
					m.Regs[RegSP] = sp + 4
					m.Regs[ins2.Ra&15] = binary.LittleEndian.Uint32(m.Mem[sp:])
				} else {
					m.Regs[RegSP] = sp + 4
					m.Regs[ins2.Ra&15] = 0
					m.sprintFault(pc+2*InstrSize, icount+2, FaultMemOutOfRange, fmt.Sprintf("load32 at 0x%x", sp))
					m.PC, m.ICount, m.Branches = pc+2*InstrSize, icount+2, branches
					return
				}
				m.Regs[ins2.Ra2&15] = m.Regs[ins2.Rb2&15] + m.Regs[ins2.Rc2&15]

			case fusedQMoviMovPopMul: // movi ; mov ; pop ; mul
				m.Regs[ins.Ra&15] = ins.Imm
				m.Regs[ins.Ra2&15] = m.Regs[ins.Rb2&15]
				if sp := m.Regs[RegSP]; sp <= memLen-4 {
					m.Regs[RegSP] = sp + 4
					m.Regs[ins2.Ra&15] = binary.LittleEndian.Uint32(m.Mem[sp:])
				} else {
					m.Regs[RegSP] = sp + 4
					m.Regs[ins2.Ra&15] = 0
					m.sprintFault(pc+2*InstrSize, icount+2, FaultMemOutOfRange, fmt.Sprintf("load32 at 0x%x", sp))
					m.PC, m.ICount, m.Branches = pc+2*InstrSize, icount+2, branches
					return
				}
				m.Regs[ins2.Ra2&15] = m.Regs[ins2.Rb2&15] * m.Regs[ins2.Rc2&15]

			case fusedQMovPopAddStore: // mov ; pop ; add ; store
				m.Regs[ins.Ra&15] = m.Regs[ins.Rb&15]
				if sp := m.Regs[RegSP]; sp <= memLen-4 {
					m.Regs[RegSP] = sp + 4
					m.Regs[ins.Ra2&15] = binary.LittleEndian.Uint32(m.Mem[sp:])
				} else {
					m.Regs[RegSP] = sp + 4
					m.Regs[ins.Ra2&15] = 0
					m.sprintFault(pc+InstrSize, icount+1, FaultMemOutOfRange, fmt.Sprintf("load32 at 0x%x", sp))
					m.PC, m.ICount, m.Branches = pc+InstrSize, icount+1, branches
					return
				}
				m.Regs[ins2.Ra&15] = m.Regs[ins2.Rb&15] + m.Regs[ins2.Rc&15]
				if addr := m.Regs[ins2.Ra2&15] + ins2.Imm2; addr <= memLen-4 {
					binary.LittleEndian.PutUint32(m.Mem[addr:], m.Regs[ins2.Rb2&15])
					pageGen[addr>>pageShift] = m.gen
					if addr&(PageSize-1) > PageSize-4 {
						pageGen[addr>>pageShift+1] = m.gen
					}
					if addr>>pageShift == curPage || (addr+3)>>pageShift == curPage {
						curPage = uint32(1) << 31 // all four retired; re-decode next
					}
				} else {
					m.sprintFault(pc+3*InstrSize, icount+3, FaultMemOutOfRange, fmt.Sprintf("store32 at 0x%x", addr))
					m.PC, m.ICount, m.Branches = pc+3*InstrSize, icount+3, branches
					return
				}

			case fusedQPopAddStoreJmp: // pop ; add ; store ; jmp
				if sp := m.Regs[RegSP]; sp <= memLen-4 {
					m.Regs[RegSP] = sp + 4
					m.Regs[ins.Ra&15] = binary.LittleEndian.Uint32(m.Mem[sp:])
				} else {
					m.Regs[RegSP] = sp + 4
					m.Regs[ins.Ra&15] = 0
					m.sprintFault(pc, icount, FaultMemOutOfRange, fmt.Sprintf("load32 at 0x%x", sp))
					m.PC, m.ICount, m.Branches = pc, icount, branches
					return
				}
				m.Regs[ins.Ra2&15] = m.Regs[ins.Rb2&15] + m.Regs[ins.Rc2&15]
				if addr := m.Regs[ins2.Ra&15] + ins2.Imm; addr <= memLen-4 {
					binary.LittleEndian.PutUint32(m.Mem[addr:], m.Regs[ins2.Rb&15])
					pageGen[addr>>pageShift] = m.gen
					if addr&(PageSize-1) > PageSize-4 {
						pageGen[addr>>pageShift+1] = m.gen
					}
					if addr>>pageShift == curPage || (addr+3)>>pageShift == curPage {
						// Self-modifying store: the first pair and the store
						// retired; the jump re-executes from a fresh decode.
						curPage = uint32(1) << 31
						m.FusedPairs++
						pc += 3 * InstrSize
						icount += 3
						continue
					}
				} else {
					m.sprintFault(pc+2*InstrSize, icount+2, FaultMemOutOfRange, fmt.Sprintf("store32 at 0x%x", addr))
					m.PC, m.ICount, m.Branches = pc+2*InstrSize, icount+2, branches
					return
				}
				m.FusedPairs += 2
				m.FusedQuads++
				pc = ins2.Imm2
				icount += 4
				branches++
				continue

			case fusedQPopMulPushMovi: // pop ; mul ; push ; movi
				if sp := m.Regs[RegSP]; sp <= memLen-4 {
					m.Regs[RegSP] = sp + 4
					m.Regs[ins.Ra&15] = binary.LittleEndian.Uint32(m.Mem[sp:])
				} else {
					m.Regs[RegSP] = sp + 4
					m.Regs[ins.Ra&15] = 0
					m.sprintFault(pc, icount, FaultMemOutOfRange, fmt.Sprintf("load32 at 0x%x", sp))
					m.PC, m.ICount, m.Branches = pc, icount, branches
					return
				}
				m.Regs[ins.Ra2&15] = m.Regs[ins.Rb2&15] * m.Regs[ins.Rc2&15]
				val := m.Regs[ins2.Ra&15]
				sp := m.Regs[RegSP] - 4
				m.Regs[RegSP] = sp
				if sp <= memLen-4 {
					binary.LittleEndian.PutUint32(m.Mem[sp:], val)
					pageGen[sp>>pageShift] = m.gen
					if sp&(PageSize-1) > PageSize-4 {
						pageGen[sp>>pageShift+1] = m.gen
					}
					if sp>>pageShift == curPage || (sp+3)>>pageShift == curPage {
						// Self-modifying push: the first pair and the push
						// retired; the movi re-executes from a fresh decode.
						curPage = uint32(1) << 31
						m.FusedPairs++
						pc += 3 * InstrSize
						icount += 3
						continue
					}
				} else {
					m.sprintFault(pc+2*InstrSize, icount+2, FaultMemOutOfRange, fmt.Sprintf("store32 at 0x%x", sp))
					m.PC, m.ICount, m.Branches = pc+2*InstrSize, icount+2, branches
					return
				}
				m.Regs[ins2.Ra2&15] = ins2.Imm2

			case fusedQAddStoreLoadPush: // add ; store ; load ; push
				m.Regs[ins.Ra&15] = m.Regs[ins.Rb&15] + m.Regs[ins.Rc&15]
				if addr := m.Regs[ins.Ra2&15] + ins.Imm2; addr <= memLen-4 {
					binary.LittleEndian.PutUint32(m.Mem[addr:], m.Regs[ins.Rb2&15])
					pageGen[addr>>pageShift] = m.gen
					if addr&(PageSize-1) > PageSize-4 {
						pageGen[addr>>pageShift+1] = m.gen
					}
					if addr>>pageShift == curPage || (addr+3)>>pageShift == curPage {
						// Self-modifying store: the first pair retired; the
						// second pair re-executes from a fresh decode.
						curPage = uint32(1) << 31
						m.FusedPairs++
						pc += 2 * InstrSize
						icount += 2
						continue
					}
				} else {
					m.sprintFault(pc+InstrSize, icount+1, FaultMemOutOfRange, fmt.Sprintf("store32 at 0x%x", addr))
					m.PC, m.ICount, m.Branches = pc+InstrSize, icount+1, branches
					return
				}
				if addr := m.Regs[ins2.Rb&15] + ins2.Imm; addr <= memLen-4 {
					m.Regs[ins2.Ra&15] = binary.LittleEndian.Uint32(m.Mem[addr:])
				} else {
					m.Regs[ins2.Ra&15] = 0
					m.sprintFault(pc+2*InstrSize, icount+2, FaultMemOutOfRange, fmt.Sprintf("load32 at 0x%x", addr))
					m.PC, m.ICount, m.Branches = pc+2*InstrSize, icount+2, branches
					return
				}
				val := m.Regs[ins2.Ra2&15]
				sp := m.Regs[RegSP] - 4
				m.Regs[RegSP] = sp
				if sp <= memLen-4 {
					binary.LittleEndian.PutUint32(m.Mem[sp:], val)
					pageGen[sp>>pageShift] = m.gen
					if sp&(PageSize-1) > PageSize-4 {
						pageGen[sp>>pageShift+1] = m.gen
					}
					if sp>>pageShift == curPage || (sp+3)>>pageShift == curPage {
						curPage = uint32(1) << 31 // all four retired; re-decode next
					}
				} else {
					m.sprintFault(pc+3*InstrSize, icount+3, FaultMemOutOfRange, fmt.Sprintf("store32 at 0x%x", sp))
					m.PC, m.ICount, m.Branches = pc+3*InstrSize, icount+3, branches
					return
				}

			default:
				// A quad id without a handler cannot be emitted by fuseQuad;
				// treat it like a mid-pair landing and let Step execute the
				// original first constituent from memory.
				m.PC, m.ICount, m.Branches = pc, icount, branches
				if !m.Step() {
					return
				}
				if m.StopReq {
					m.StopReq = false
					return
				}
				pc, icount, branches = m.PC, m.ICount, m.Branches
				intGate = m.IntEnabled && m.pending != 0
				curPage = uint32(1) << 31
				continue
			}
			m.FusedPairs += 2
			m.FusedQuads++
			pc += 4 * InstrSize
			icount += 4
			continue
		}

		// Fused superinstructions: two constituents, one dispatch. Every
		// handler is a transcript of its two Step cases executed back to
		// back; the loop-top interrupt check still runs once per pair, which
		// matches the unfused sprint exactly because nothing a fused
		// constituent can do (no bus ops, no cli/sti/iret) changes the
		// pending mask or the interrupt flag mid-pair. Faults in the second
		// constituent retire the first (pc and icount advance by one
		// instruction) before the fault is recorded, exactly as Step would
		// have left the machine.
		if ins.Op >= fusedBase {
			if bound-icount < 2 {
				// The sprint must land mid-pair (landmark or budget stop):
				// fall back to Step for the tail. Guest memory always holds
				// the original bytes — fusion rewrites only the decode
				// cache — so Step executes the first constituent alone.
				m.PC, m.ICount, m.Branches = pc, icount, branches
				if !m.Step() {
					return
				}
				if m.StopReq {
					m.StopReq = false
					return
				}
				pc, icount, branches = m.PC, m.ICount, m.Branches
				intGate = m.IntEnabled && m.pending != 0
				curPage = uint32(1) << 31 // the careful instruction can do anything
				continue
			}
			switch ins.Op {
			case fusedGeneric:
				// Any legal pair without a specialized handler: two inline
				// sub-switches over the constituent opcodes. Still one loop
				// iteration — one bound check, one interrupt gate, one page
				// check — for two retired instructions.
				switch Opcode(ins.Sub1) {
				case OpMovi:
					m.Regs[ins.Ra&15] = ins.Imm
				case OpMov:
					m.Regs[ins.Ra&15] = m.Regs[ins.Rb&15]
				case OpAdd:
					m.Regs[ins.Ra&15] = m.Regs[ins.Rb&15] + m.Regs[ins.Rc&15]
				case OpSub:
					m.Regs[ins.Ra&15] = m.Regs[ins.Rb&15] - m.Regs[ins.Rc&15]
				case OpMul:
					m.Regs[ins.Ra&15] = m.Regs[ins.Rb&15] * m.Regs[ins.Rc&15]
				case OpAnd:
					m.Regs[ins.Ra&15] = m.Regs[ins.Rb&15] & m.Regs[ins.Rc&15]
				case OpOr:
					m.Regs[ins.Ra&15] = m.Regs[ins.Rb&15] | m.Regs[ins.Rc&15]
				case OpXor:
					m.Regs[ins.Ra&15] = m.Regs[ins.Rb&15] ^ m.Regs[ins.Rc&15]
				case OpShl:
					m.Regs[ins.Ra&15] = m.Regs[ins.Rb&15] << (m.Regs[ins.Rc&15] & 31)
				case OpShr:
					m.Regs[ins.Ra&15] = m.Regs[ins.Rb&15] >> (m.Regs[ins.Rc&15] & 31)
				case OpAddi:
					m.Regs[ins.Ra&15] = m.Regs[ins.Rb&15] + ins.Imm
				case OpEq:
					m.Regs[ins.Ra&15] = boolToWord(m.Regs[ins.Rb&15] == m.Regs[ins.Rc&15])
				case OpLtu:
					m.Regs[ins.Ra&15] = boolToWord(m.Regs[ins.Rb&15] < m.Regs[ins.Rc&15])
				case OpLts:
					m.Regs[ins.Ra&15] = boolToWord(int32(m.Regs[ins.Rb&15]) < int32(m.Regs[ins.Rc&15]))
				case OpNot:
					m.Regs[ins.Ra&15] = boolToWord(m.Regs[ins.Rb&15] == 0)
				case OpLoad:
					if addr := m.Regs[ins.Rb&15] + ins.Imm; addr <= memLen-4 {
						m.Regs[ins.Ra&15] = binary.LittleEndian.Uint32(m.Mem[addr:])
					} else {
						m.Regs[ins.Ra&15] = 0 // the helper's zero return is assigned even on fault
						m.sprintFault(pc, icount, FaultMemOutOfRange, fmt.Sprintf("load32 at 0x%x", addr))
						m.PC, m.ICount, m.Branches = pc, icount, branches
						return
					}
				case OpLoadb:
					if addr := m.Regs[ins.Rb&15] + ins.Imm; addr < memLen {
						m.Regs[ins.Ra&15] = uint32(m.Mem[addr])
					} else {
						m.Regs[ins.Ra&15] = 0
						m.sprintFault(pc, icount, FaultMemOutOfRange, fmt.Sprintf("loadb at 0x%x", addr))
						m.PC, m.ICount, m.Branches = pc, icount, branches
						return
					}
				case OpPop:
					if sp := m.Regs[RegSP]; sp <= memLen-4 {
						m.Regs[RegSP] = sp + 4
						m.Regs[ins.Ra&15] = binary.LittleEndian.Uint32(m.Mem[sp:])
					} else {
						m.Regs[RegSP] = sp + 4 // SP advances even on a faulting load
						m.Regs[ins.Ra&15] = 0
						m.sprintFault(pc, icount, FaultMemOutOfRange, fmt.Sprintf("load32 at 0x%x", sp))
						m.PC, m.ICount, m.Branches = pc, icount, branches
						return
					}
				case OpPush:
					val := m.Regs[ins.Ra&15]
					sp := m.Regs[RegSP] - 4
					m.Regs[RegSP] = sp
					if sp <= memLen-4 {
						binary.LittleEndian.PutUint32(m.Mem[sp:], val)
						pageGen[sp>>pageShift] = m.gen
						if sp&(PageSize-1) > PageSize-4 {
							pageGen[sp>>pageShift+1] = m.gen
						}
						if sp>>pageShift == curPage || (sp+3)>>pageShift == curPage {
							curPage = uint32(1) << 31 // self-modifying push: bail out
							pc += InstrSize
							icount++
							continue
						}
					} else {
						m.sprintFault(pc, icount, FaultMemOutOfRange, fmt.Sprintf("store32 at 0x%x", sp))
						m.PC, m.ICount, m.Branches = pc, icount, branches
						return
					}
				case OpStore:
					if addr := m.Regs[ins.Ra&15] + ins.Imm; addr <= memLen-4 {
						binary.LittleEndian.PutUint32(m.Mem[addr:], m.Regs[ins.Rb&15])
						pageGen[addr>>pageShift] = m.gen
						if addr&(PageSize-1) > PageSize-4 {
							pageGen[addr>>pageShift+1] = m.gen
						}
						if addr>>pageShift == curPage || (addr+3)>>pageShift == curPage {
							curPage = uint32(1) << 31 // self-modifying store: bail out
							pc += InstrSize
							icount++
							continue
						}
					} else {
						m.sprintFault(pc, icount, FaultMemOutOfRange, fmt.Sprintf("store32 at 0x%x", addr))
						m.PC, m.ICount, m.Branches = pc, icount, branches
						return
					}
				case OpStoreb:
					if addr := m.Regs[ins.Ra&15] + ins.Imm; addr < memLen {
						m.Mem[addr] = byte(m.Regs[ins.Rb&15])
						pageGen[addr>>pageShift] = m.gen
						if addr>>pageShift == curPage {
							curPage = uint32(1) << 31 // self-modifying store: bail out
							pc += InstrSize
							icount++
							continue
						}
					} else {
						m.sprintFault(pc, icount, FaultMemOutOfRange, fmt.Sprintf("storeb at 0x%x", addr))
						m.PC, m.ICount, m.Branches = pc, icount, branches
						return
					}
				}
				switch Opcode(ins.Sub2) {
				case OpMovi:
					m.Regs[ins.Ra2&15] = ins.Imm2
				case OpMov:
					m.Regs[ins.Ra2&15] = m.Regs[ins.Rb2&15]
				case OpAdd:
					m.Regs[ins.Ra2&15] = m.Regs[ins.Rb2&15] + m.Regs[ins.Rc2&15]
				case OpSub:
					m.Regs[ins.Ra2&15] = m.Regs[ins.Rb2&15] - m.Regs[ins.Rc2&15]
				case OpMul:
					m.Regs[ins.Ra2&15] = m.Regs[ins.Rb2&15] * m.Regs[ins.Rc2&15]
				case OpAnd:
					m.Regs[ins.Ra2&15] = m.Regs[ins.Rb2&15] & m.Regs[ins.Rc2&15]
				case OpOr:
					m.Regs[ins.Ra2&15] = m.Regs[ins.Rb2&15] | m.Regs[ins.Rc2&15]
				case OpXor:
					m.Regs[ins.Ra2&15] = m.Regs[ins.Rb2&15] ^ m.Regs[ins.Rc2&15]
				case OpShl:
					m.Regs[ins.Ra2&15] = m.Regs[ins.Rb2&15] << (m.Regs[ins.Rc2&15] & 31)
				case OpShr:
					m.Regs[ins.Ra2&15] = m.Regs[ins.Rb2&15] >> (m.Regs[ins.Rc2&15] & 31)
				case OpAddi:
					m.Regs[ins.Ra2&15] = m.Regs[ins.Rb2&15] + ins.Imm2
				case OpEq:
					m.Regs[ins.Ra2&15] = boolToWord(m.Regs[ins.Rb2&15] == m.Regs[ins.Rc2&15])
				case OpLtu:
					m.Regs[ins.Ra2&15] = boolToWord(m.Regs[ins.Rb2&15] < m.Regs[ins.Rc2&15])
				case OpLts:
					m.Regs[ins.Ra2&15] = boolToWord(int32(m.Regs[ins.Rb2&15]) < int32(m.Regs[ins.Rc2&15]))
				case OpNot:
					m.Regs[ins.Ra2&15] = boolToWord(m.Regs[ins.Rb2&15] == 0)
				case OpLoad:
					if addr := m.Regs[ins.Rb2&15] + ins.Imm2; addr <= memLen-4 {
						m.Regs[ins.Ra2&15] = binary.LittleEndian.Uint32(m.Mem[addr:])
					} else {
						m.Regs[ins.Ra2&15] = 0
						m.sprintFault(pc+InstrSize, icount+1, FaultMemOutOfRange, fmt.Sprintf("load32 at 0x%x", addr))
						m.PC, m.ICount, m.Branches = pc+InstrSize, icount+1, branches
						return
					}
				case OpLoadb:
					if addr := m.Regs[ins.Rb2&15] + ins.Imm2; addr < memLen {
						m.Regs[ins.Ra2&15] = uint32(m.Mem[addr])
					} else {
						m.Regs[ins.Ra2&15] = 0
						m.sprintFault(pc+InstrSize, icount+1, FaultMemOutOfRange, fmt.Sprintf("loadb at 0x%x", addr))
						m.PC, m.ICount, m.Branches = pc+InstrSize, icount+1, branches
						return
					}
				case OpPop:
					if sp := m.Regs[RegSP]; sp <= memLen-4 {
						m.Regs[RegSP] = sp + 4
						m.Regs[ins.Ra2&15] = binary.LittleEndian.Uint32(m.Mem[sp:])
					} else {
						m.Regs[RegSP] = sp + 4
						m.Regs[ins.Ra2&15] = 0
						m.sprintFault(pc+InstrSize, icount+1, FaultMemOutOfRange, fmt.Sprintf("load32 at 0x%x", sp))
						m.PC, m.ICount, m.Branches = pc+InstrSize, icount+1, branches
						return
					}
				case OpPush:
					val := m.Regs[ins.Ra2&15]
					sp := m.Regs[RegSP] - 4
					m.Regs[RegSP] = sp
					if sp <= memLen-4 {
						binary.LittleEndian.PutUint32(m.Mem[sp:], val)
						pageGen[sp>>pageShift] = m.gen
						if sp&(PageSize-1) > PageSize-4 {
							pageGen[sp>>pageShift+1] = m.gen
						}
						if sp>>pageShift == curPage || (sp+3)>>pageShift == curPage {
							curPage = uint32(1) << 31 // both halves retired; re-decode next
						}
					} else {
						m.sprintFault(pc+InstrSize, icount+1, FaultMemOutOfRange, fmt.Sprintf("store32 at 0x%x", sp))
						m.PC, m.ICount, m.Branches = pc+InstrSize, icount+1, branches
						return
					}
				case OpStore:
					if addr := m.Regs[ins.Ra2&15] + ins.Imm2; addr <= memLen-4 {
						binary.LittleEndian.PutUint32(m.Mem[addr:], m.Regs[ins.Rb2&15])
						pageGen[addr>>pageShift] = m.gen
						if addr&(PageSize-1) > PageSize-4 {
							pageGen[addr>>pageShift+1] = m.gen
						}
						if addr>>pageShift == curPage || (addr+3)>>pageShift == curPage {
							curPage = uint32(1) << 31 // both halves retired; re-decode next
						}
					} else {
						m.sprintFault(pc+InstrSize, icount+1, FaultMemOutOfRange, fmt.Sprintf("store32 at 0x%x", addr))
						m.PC, m.ICount, m.Branches = pc+InstrSize, icount+1, branches
						return
					}
				case OpStoreb:
					if addr := m.Regs[ins.Ra2&15] + ins.Imm2; addr < memLen {
						m.Mem[addr] = byte(m.Regs[ins.Rb2&15])
						pageGen[addr>>pageShift] = m.gen
						if addr>>pageShift == curPage {
							curPage = uint32(1) << 31 // both halves retired; re-decode next
						}
					} else {
						m.sprintFault(pc+InstrSize, icount+1, FaultMemOutOfRange, fmt.Sprintf("storeb at 0x%x", addr))
						m.PC, m.ICount, m.Branches = pc+InstrSize, icount+1, branches
						return
					}
				case OpJmp:
					m.FusedPairs++
					pc = ins.Imm2
					icount += 2
					branches++
					continue
				case OpJz:
					if m.Regs[ins.Ra2&15] == 0 {
						m.FusedPairs++
						pc = ins.Imm2
						icount += 2
						branches++
						continue
					}
				case OpJnz:
					if m.Regs[ins.Ra2&15] != 0 {
						m.FusedPairs++
						pc = ins.Imm2
						icount += 2
						branches++
						continue
					}
				}

			case fusedMoviMov: // movi ra, imm ; mov ra2, rb2
				m.Regs[ins.Ra&15] = ins.Imm
				m.Regs[ins.Ra2&15] = m.Regs[ins.Rb2&15]

			case fusedMovPop: // mov ra, rb ; pop ra2
				m.Regs[ins.Ra&15] = m.Regs[ins.Rb&15]
				if sp := m.Regs[RegSP]; sp <= memLen-4 {
					m.Regs[RegSP] = sp + 4
					m.Regs[ins.Ra2&15] = binary.LittleEndian.Uint32(m.Mem[sp:])
				} else {
					m.Regs[RegSP] = sp + 4 // SP advances even on a faulting load
					m.Regs[ins.Ra2&15] = 0 // and the helper's zero return is still assigned
					m.sprintFault(pc+InstrSize, icount+1, FaultMemOutOfRange, fmt.Sprintf("load32 at 0x%x", sp))
					m.PC, m.ICount, m.Branches = pc+InstrSize, icount+1, branches
					return
				}

			case fusedPushMovi: // push ra ; movi ra2, imm2
				val := m.Regs[ins.Ra&15]
				sp := m.Regs[RegSP] - 4
				m.Regs[RegSP] = sp
				if sp <= memLen-4 {
					binary.LittleEndian.PutUint32(m.Mem[sp:], val)
					pageGen[sp>>pageShift] = m.gen
					if sp&(PageSize-1) > PageSize-4 {
						pageGen[sp>>pageShift+1] = m.gen
					}
					if sp>>pageShift == curPage || (sp+3)>>pageShift == curPage {
						// The push overwrote the executing page — possibly
						// the pair's own second slot. Retire the push alone;
						// the second constituent re-executes from a fresh
						// decode (its slot keeps the original instruction).
						curPage = uint32(1) << 31
						pc += InstrSize
						icount++
						continue
					}
				} else {
					m.sprintFault(pc, icount, FaultMemOutOfRange, fmt.Sprintf("store32 at 0x%x", sp))
					m.PC, m.ICount, m.Branches = pc, icount, branches
					return
				}
				m.Regs[ins.Ra2&15] = ins.Imm2

			case fusedPushLoad: // push ra ; load ra2, [rb2+imm2]
				val := m.Regs[ins.Ra&15]
				sp := m.Regs[RegSP] - 4
				m.Regs[RegSP] = sp
				if sp <= memLen-4 {
					binary.LittleEndian.PutUint32(m.Mem[sp:], val)
					pageGen[sp>>pageShift] = m.gen
					if sp&(PageSize-1) > PageSize-4 {
						pageGen[sp>>pageShift+1] = m.gen
					}
					if sp>>pageShift == curPage || (sp+3)>>pageShift == curPage {
						curPage = uint32(1) << 31 // self-modifying push: bail out
						pc += InstrSize
						icount++
						continue
					}
				} else {
					m.sprintFault(pc, icount, FaultMemOutOfRange, fmt.Sprintf("store32 at 0x%x", sp))
					m.PC, m.ICount, m.Branches = pc, icount, branches
					return
				}
				if addr := m.Regs[ins.Rb2&15] + ins.Imm2; addr <= memLen-4 {
					m.Regs[ins.Ra2&15] = binary.LittleEndian.Uint32(m.Mem[addr:])
				} else {
					m.Regs[ins.Ra2&15] = 0
					m.sprintFault(pc+InstrSize, icount+1, FaultMemOutOfRange, fmt.Sprintf("load32 at 0x%x", addr))
					m.PC, m.ICount, m.Branches = pc+InstrSize, icount+1, branches
					return
				}

			case fusedLoadPush: // load ra, [rb+imm] ; push ra2
				if addr := m.Regs[ins.Rb&15] + ins.Imm; addr <= memLen-4 {
					m.Regs[ins.Ra&15] = binary.LittleEndian.Uint32(m.Mem[addr:])
				} else {
					m.Regs[ins.Ra&15] = 0 // the helper's zero return is assigned even on fault
					m.sprintFault(pc, icount, FaultMemOutOfRange, fmt.Sprintf("load32 at 0x%x", addr))
					m.PC, m.ICount, m.Branches = pc, icount, branches
					return
				}
				val := m.Regs[ins.Ra2&15]
				sp := m.Regs[RegSP] - 4
				m.Regs[RegSP] = sp
				if sp <= memLen-4 {
					binary.LittleEndian.PutUint32(m.Mem[sp:], val)
					pageGen[sp>>pageShift] = m.gen
					if sp&(PageSize-1) > PageSize-4 {
						pageGen[sp>>pageShift+1] = m.gen
					}
					if sp>>pageShift == curPage || (sp+3)>>pageShift == curPage {
						curPage = uint32(1) << 31 // both halves retired; re-decode next
					}
				} else {
					m.sprintFault(pc+InstrSize, icount+1, FaultMemOutOfRange, fmt.Sprintf("store32 at 0x%x", sp))
					m.PC, m.ICount, m.Branches = pc+InstrSize, icount+1, branches
					return
				}

			case fusedMulPush: // mul ra, rb, rc ; push ra2
				m.Regs[ins.Ra&15] = m.Regs[ins.Rb&15] * m.Regs[ins.Rc&15]
				val := m.Regs[ins.Ra2&15]
				sp := m.Regs[RegSP] - 4
				m.Regs[RegSP] = sp
				if sp <= memLen-4 {
					binary.LittleEndian.PutUint32(m.Mem[sp:], val)
					pageGen[sp>>pageShift] = m.gen
					if sp&(PageSize-1) > PageSize-4 {
						pageGen[sp>>pageShift+1] = m.gen
					}
					if sp>>pageShift == curPage || (sp+3)>>pageShift == curPage {
						curPage = uint32(1) << 31 // both halves retired; re-decode next
					}
				} else {
					m.sprintFault(pc+InstrSize, icount+1, FaultMemOutOfRange, fmt.Sprintf("store32 at 0x%x", sp))
					m.PC, m.ICount, m.Branches = pc+InstrSize, icount+1, branches
					return
				}

			case fusedPopAdd: // pop ra ; add ra2, rb2, rc2
				if sp := m.Regs[RegSP]; sp <= memLen-4 {
					m.Regs[RegSP] = sp + 4
					m.Regs[ins.Ra&15] = binary.LittleEndian.Uint32(m.Mem[sp:])
				} else {
					m.Regs[RegSP] = sp + 4
					m.Regs[ins.Ra&15] = 0
					m.sprintFault(pc, icount, FaultMemOutOfRange, fmt.Sprintf("load32 at 0x%x", sp))
					m.PC, m.ICount, m.Branches = pc, icount, branches
					return
				}
				m.Regs[ins.Ra2&15] = m.Regs[ins.Rb2&15] + m.Regs[ins.Rc2&15]

			case fusedPopMul: // pop ra ; mul ra2, rb2, rc2
				if sp := m.Regs[RegSP]; sp <= memLen-4 {
					m.Regs[RegSP] = sp + 4
					m.Regs[ins.Ra&15] = binary.LittleEndian.Uint32(m.Mem[sp:])
				} else {
					m.Regs[RegSP] = sp + 4
					m.Regs[ins.Ra&15] = 0
					m.sprintFault(pc, icount, FaultMemOutOfRange, fmt.Sprintf("load32 at 0x%x", sp))
					m.PC, m.ICount, m.Branches = pc, icount, branches
					return
				}
				m.Regs[ins.Ra2&15] = m.Regs[ins.Rb2&15] * m.Regs[ins.Rc2&15]

			case fusedPopLts: // pop ra ; lts ra2, rb2, rc2
				if sp := m.Regs[RegSP]; sp <= memLen-4 {
					m.Regs[RegSP] = sp + 4
					m.Regs[ins.Ra&15] = binary.LittleEndian.Uint32(m.Mem[sp:])
				} else {
					m.Regs[RegSP] = sp + 4
					m.Regs[ins.Ra&15] = 0
					m.sprintFault(pc, icount, FaultMemOutOfRange, fmt.Sprintf("load32 at 0x%x", sp))
					m.PC, m.ICount, m.Branches = pc, icount, branches
					return
				}
				m.Regs[ins.Ra2&15] = boolToWord(int32(m.Regs[ins.Rb2&15]) < int32(m.Regs[ins.Rc2&15]))

			case fusedPopStore: // pop ra ; store [ra2+imm2], rb2
				if sp := m.Regs[RegSP]; sp <= memLen-4 {
					m.Regs[RegSP] = sp + 4
					m.Regs[ins.Ra&15] = binary.LittleEndian.Uint32(m.Mem[sp:])
				} else {
					m.Regs[RegSP] = sp + 4
					m.Regs[ins.Ra&15] = 0
					m.sprintFault(pc, icount, FaultMemOutOfRange, fmt.Sprintf("load32 at 0x%x", sp))
					m.PC, m.ICount, m.Branches = pc, icount, branches
					return
				}
				if addr := m.Regs[ins.Ra2&15] + ins.Imm2; addr <= memLen-4 {
					binary.LittleEndian.PutUint32(m.Mem[addr:], m.Regs[ins.Rb2&15])
					pageGen[addr>>pageShift] = m.gen
					if addr&(PageSize-1) > PageSize-4 {
						pageGen[addr>>pageShift+1] = m.gen
					}
					if addr>>pageShift == curPage || (addr+3)>>pageShift == curPage {
						curPage = uint32(1) << 31 // both halves retired; re-decode next
					}
				} else {
					m.sprintFault(pc+InstrSize, icount+1, FaultMemOutOfRange, fmt.Sprintf("store32 at 0x%x", addr))
					m.PC, m.ICount, m.Branches = pc+InstrSize, icount+1, branches
					return
				}

			case fusedAddStore: // add ra, rb, rc ; store [ra2+imm2], rb2
				m.Regs[ins.Ra&15] = m.Regs[ins.Rb&15] + m.Regs[ins.Rc&15]
				if addr := m.Regs[ins.Ra2&15] + ins.Imm2; addr <= memLen-4 {
					binary.LittleEndian.PutUint32(m.Mem[addr:], m.Regs[ins.Rb2&15])
					pageGen[addr>>pageShift] = m.gen
					if addr&(PageSize-1) > PageSize-4 {
						pageGen[addr>>pageShift+1] = m.gen
					}
					if addr>>pageShift == curPage || (addr+3)>>pageShift == curPage {
						curPage = uint32(1) << 31 // both halves retired; re-decode next
					}
				} else {
					m.sprintFault(pc+InstrSize, icount+1, FaultMemOutOfRange, fmt.Sprintf("store32 at 0x%x", addr))
					m.PC, m.ICount, m.Branches = pc+InstrSize, icount+1, branches
					return
				}

			case fusedLoadStore: // load ra, [rb+imm] ; store [ra2+imm2], rb2
				if addr := m.Regs[ins.Rb&15] + ins.Imm; addr <= memLen-4 {
					m.Regs[ins.Ra&15] = binary.LittleEndian.Uint32(m.Mem[addr:])
				} else {
					m.Regs[ins.Ra&15] = 0
					m.sprintFault(pc, icount, FaultMemOutOfRange, fmt.Sprintf("load32 at 0x%x", addr))
					m.PC, m.ICount, m.Branches = pc, icount, branches
					return
				}
				if addr := m.Regs[ins.Ra2&15] + ins.Imm2; addr <= memLen-4 {
					binary.LittleEndian.PutUint32(m.Mem[addr:], m.Regs[ins.Rb2&15])
					pageGen[addr>>pageShift] = m.gen
					if addr&(PageSize-1) > PageSize-4 {
						pageGen[addr>>pageShift+1] = m.gen
					}
					if addr>>pageShift == curPage || (addr+3)>>pageShift == curPage {
						curPage = uint32(1) << 31 // both halves retired; re-decode next
					}
				} else {
					m.sprintFault(pc+InstrSize, icount+1, FaultMemOutOfRange, fmt.Sprintf("store32 at 0x%x", addr))
					m.PC, m.ICount, m.Branches = pc+InstrSize, icount+1, branches
					return
				}

			case fusedStoreLoad: // store [ra+imm], rb ; load ra2, [rb2+imm2]
				if addr := m.Regs[ins.Ra&15] + ins.Imm; addr <= memLen-4 {
					binary.LittleEndian.PutUint32(m.Mem[addr:], m.Regs[ins.Rb&15])
					pageGen[addr>>pageShift] = m.gen
					if addr&(PageSize-1) > PageSize-4 {
						pageGen[addr>>pageShift+1] = m.gen
					}
					if addr>>pageShift == curPage || (addr+3)>>pageShift == curPage {
						// Self-modifying store: retire it alone and re-decode
						// before the second constituent runs.
						curPage = uint32(1) << 31
						pc += InstrSize
						icount++
						continue
					}
				} else {
					m.sprintFault(pc, icount, FaultMemOutOfRange, fmt.Sprintf("store32 at 0x%x", addr))
					m.PC, m.ICount, m.Branches = pc, icount, branches
					return
				}
				if addr := m.Regs[ins.Rb2&15] + ins.Imm2; addr <= memLen-4 {
					m.Regs[ins.Ra2&15] = binary.LittleEndian.Uint32(m.Mem[addr:])
				} else {
					m.Regs[ins.Ra2&15] = 0
					m.sprintFault(pc+InstrSize, icount+1, FaultMemOutOfRange, fmt.Sprintf("load32 at 0x%x", addr))
					m.PC, m.ICount, m.Branches = pc+InstrSize, icount+1, branches
					return
				}

			case fusedStoreJmp: // store [ra+imm], rb ; jmp imm2
				if addr := m.Regs[ins.Ra&15] + ins.Imm; addr <= memLen-4 {
					binary.LittleEndian.PutUint32(m.Mem[addr:], m.Regs[ins.Rb&15])
					pageGen[addr>>pageShift] = m.gen
					if addr&(PageSize-1) > PageSize-4 {
						pageGen[addr>>pageShift+1] = m.gen
					}
					if addr>>pageShift == curPage || (addr+3)>>pageShift == curPage {
						curPage = uint32(1) << 31 // self-modifying store: bail out
						pc += InstrSize
						icount++
						continue
					}
				} else {
					m.sprintFault(pc, icount, FaultMemOutOfRange, fmt.Sprintf("store32 at 0x%x", addr))
					m.PC, m.ICount, m.Branches = pc, icount, branches
					return
				}
				m.FusedPairs++
				pc = ins.Imm2
				icount += 2
				branches++
				continue

			case fusedLtsJz: // lts ra, rb, rc ; jz ra2, imm2
				m.Regs[ins.Ra&15] = boolToWord(int32(m.Regs[ins.Rb&15]) < int32(m.Regs[ins.Rc&15]))
				if m.Regs[ins.Ra2&15] == 0 {
					m.FusedPairs++
					pc = ins.Imm2
					icount += 2
					branches++
					continue
				}

			default:
				// A fused id without a handler cannot be emitted by
				// fusePair; treat it like a mid-pair landing and let Step
				// execute the original first constituent from memory.
				m.PC, m.ICount, m.Branches = pc, icount, branches
				if !m.Step() {
					return
				}
				if m.StopReq {
					m.StopReq = false
					return
				}
				pc, icount, branches = m.PC, m.ICount, m.Branches
				intGate = m.IntEnabled && m.pending != 0
				curPage = uint32(1) << 31
				continue
			}
			m.FusedPairs++
			pc += 2 * InstrSize
			icount += 2
			continue
		}

		nextPC := pc + InstrSize
		branched := false

		switch Opcode(ins.Op) {
		case OpNop:
		case OpHlt:
			m.Halted = true
			goto noRetire
		case OpMovi:
			m.Regs[ins.Ra&15] = ins.Imm
		case OpMov:
			m.Regs[ins.Ra&15] = m.Regs[ins.Rb&15]
		case OpAdd:
			m.Regs[ins.Ra&15] = m.Regs[ins.Rb&15] + m.Regs[ins.Rc&15]
		case OpSub:
			m.Regs[ins.Ra&15] = m.Regs[ins.Rb&15] - m.Regs[ins.Rc&15]
		case OpMul:
			m.Regs[ins.Ra&15] = m.Regs[ins.Rb&15] * m.Regs[ins.Rc&15]
		case OpDivu:
			if m.Regs[ins.Rc&15] == 0 {
				m.sprintFault(pc, icount, FaultDivByZero, "divu")
				goto noRetire
			} else {
				m.Regs[ins.Ra&15] = m.Regs[ins.Rb&15] / m.Regs[ins.Rc&15]
			}
		case OpModu:
			if m.Regs[ins.Rc&15] == 0 {
				m.sprintFault(pc, icount, FaultDivByZero, "modu")
				goto noRetire
			} else {
				m.Regs[ins.Ra&15] = m.Regs[ins.Rb&15] % m.Regs[ins.Rc&15]
			}
		case OpAnd:
			m.Regs[ins.Ra&15] = m.Regs[ins.Rb&15] & m.Regs[ins.Rc&15]
		case OpOr:
			m.Regs[ins.Ra&15] = m.Regs[ins.Rb&15] | m.Regs[ins.Rc&15]
		case OpXor:
			m.Regs[ins.Ra&15] = m.Regs[ins.Rb&15] ^ m.Regs[ins.Rc&15]
		case OpShl:
			m.Regs[ins.Ra&15] = m.Regs[ins.Rb&15] << (m.Regs[ins.Rc&15] & 31)
		case OpShr:
			m.Regs[ins.Ra&15] = m.Regs[ins.Rb&15] >> (m.Regs[ins.Rc&15] & 31)
		case OpAddi:
			m.Regs[ins.Ra&15] = m.Regs[ins.Rb&15] + ins.Imm
		case OpEq:
			m.Regs[ins.Ra&15] = boolToWord(m.Regs[ins.Rb&15] == m.Regs[ins.Rc&15])
		case OpLtu:
			m.Regs[ins.Ra&15] = boolToWord(m.Regs[ins.Rb&15] < m.Regs[ins.Rc&15])
		case OpLts:
			m.Regs[ins.Ra&15] = boolToWord(int32(m.Regs[ins.Rb&15]) < int32(m.Regs[ins.Rc&15]))
		case OpNot:
			m.Regs[ins.Ra&15] = boolToWord(m.Regs[ins.Rb&15] == 0)
		// The memory and stack cases below inline the fast path of the
		// load32/store32/loadByte/storeByte/push/pop helpers: same bounds
		// checks, same dirty stamping, same fault details, minus the call
		// (the helpers' fault paths keep them above the inlining budget) and
		// minus the access-tracking branches, which are off in the sprint.
		case OpLoad:
			if addr := m.Regs[ins.Rb&15] + ins.Imm; addr <= memLen-4 {
				m.Regs[ins.Ra&15] = binary.LittleEndian.Uint32(m.Mem[addr:])
			} else {
				m.Regs[ins.Ra&15] = 0 // the helper's zero return is assigned even on fault
				m.sprintFault(pc, icount, FaultMemOutOfRange, fmt.Sprintf("load32 at 0x%x", addr))
				goto noRetire
			}
		case OpStore:
			if addr := m.Regs[ins.Ra&15] + ins.Imm; addr <= memLen-4 {
				binary.LittleEndian.PutUint32(m.Mem[addr:], m.Regs[ins.Rb&15])
				pageGen[addr>>pageShift] = m.gen
				if addr&(PageSize-1) > PageSize-4 {
					pageGen[addr>>pageShift+1] = m.gen
				}
				if addr>>pageShift == curPage || (addr+3)>>pageShift == curPage {
					curPage = uint32(1) << 31 // self-modifying store: re-decode
				}
			} else {
				m.sprintFault(pc, icount, FaultMemOutOfRange, fmt.Sprintf("store32 at 0x%x", addr))
				goto noRetire
			}
		case OpLoadb:
			if addr := m.Regs[ins.Rb&15] + ins.Imm; addr < memLen {
				m.Regs[ins.Ra&15] = uint32(m.Mem[addr])
			} else {
				m.Regs[ins.Ra&15] = 0 // the helper's zero return is assigned even on fault
				m.sprintFault(pc, icount, FaultMemOutOfRange, fmt.Sprintf("loadb at 0x%x", addr))
				goto noRetire
			}
		case OpStoreb:
			if addr := m.Regs[ins.Ra&15] + ins.Imm; addr < memLen {
				m.Mem[addr] = byte(m.Regs[ins.Rb&15])
				pageGen[addr>>pageShift] = m.gen
				if addr>>pageShift == curPage {
					curPage = uint32(1) << 31 // self-modifying store: re-decode
				}
			} else {
				m.sprintFault(pc, icount, FaultMemOutOfRange, fmt.Sprintf("storeb at 0x%x", addr))
				goto noRetire
			}
		case OpJmp:
			nextPC = ins.Imm
			branched = true
		case OpJz:
			if m.Regs[ins.Ra&15] == 0 {
				nextPC = ins.Imm
				branched = true
			}
		case OpJnz:
			if m.Regs[ins.Ra&15] != 0 {
				nextPC = ins.Imm
				branched = true
			}
		case OpCall:
			sp := m.Regs[RegSP] - 4
			m.Regs[RegSP] = sp
			if sp <= memLen-4 {
				binary.LittleEndian.PutUint32(m.Mem[sp:], nextPC)
				pageGen[sp>>pageShift] = m.gen
				if sp&(PageSize-1) > PageSize-4 { // misaligned SP can straddle pages
					pageGen[sp>>pageShift+1] = m.gen
				}
				if sp>>pageShift == curPage || (sp+3)>>pageShift == curPage {
					curPage = uint32(1) << 31 // stack overlaps the executing page
				}
			} else {
				m.sprintFault(pc, icount, FaultMemOutOfRange, fmt.Sprintf("store32 at 0x%x", sp))
				goto noRetire
			}
			nextPC = ins.Imm
			branched = true
		case OpRet:
			if sp := m.Regs[RegSP]; sp <= memLen-4 {
				nextPC = binary.LittleEndian.Uint32(m.Mem[sp:])
			} else {
				m.Regs[RegSP] += 4 // the pop helper increments SP even on a faulting load
				m.sprintFault(pc, icount, FaultMemOutOfRange, fmt.Sprintf("load32 at 0x%x", sp))
				goto noRetire
			}
			m.Regs[RegSP] += 4
			branched = true
		case OpPush:
			// Step evaluates the operand before push() decrements SP, so
			// `push sp` stores the pre-decrement value.
			val := m.Regs[ins.Ra&15]
			sp := m.Regs[RegSP] - 4
			m.Regs[RegSP] = sp
			if sp <= memLen-4 {
				binary.LittleEndian.PutUint32(m.Mem[sp:], val)
				pageGen[sp>>pageShift] = m.gen
				if sp&(PageSize-1) > PageSize-4 { // misaligned SP can straddle pages
					pageGen[sp>>pageShift+1] = m.gen
				}
				if sp>>pageShift == curPage || (sp+3)>>pageShift == curPage {
					curPage = uint32(1) << 31 // stack overlaps the executing page
				}
			} else {
				m.sprintFault(pc, icount, FaultMemOutOfRange, fmt.Sprintf("store32 at 0x%x", sp))
				goto noRetire
			}
		case OpPop:
			// Step's pop() increments SP before the destination register is
			// assigned, so `pop sp` ends with the loaded value, not value+4.
			if sp := m.Regs[RegSP]; sp <= memLen-4 {
				m.Regs[RegSP] = sp + 4
				m.Regs[ins.Ra&15] = binary.LittleEndian.Uint32(m.Mem[sp:])
			} else {
				m.Regs[RegSP] = sp + 4 // SP advances even on a faulting load
				m.Regs[ins.Ra&15] = 0  // and the helper's zero return is still assigned
				m.sprintFault(pc, icount, FaultMemOutOfRange, fmt.Sprintf("load32 at 0x%x", sp))
				goto noRetire
			}
		case OpIn:
			if m.Bus == nil {
				m.sprintFault(pc, icount, FaultBadPort, fmt.Sprintf("in port 0x%x with no bus", ins.Imm))
				goto noRetire
			}
			m.PC, m.ICount, m.Branches = pc, icount, branches
			m.Regs[ins.Ra&15] = m.Bus.In(m, ins.Imm)
			if m.Halted {
				goto noRetire // the handler paused or faulted the machine
			}
			if m.StopReq {
				goto stopRetire
			}
			intGate = m.IntEnabled && m.pending != 0
			curPage = uint32(1) << 31 // a handler may have written memory
		case OpOut:
			if m.Bus == nil {
				m.sprintFault(pc, icount, FaultBadPort, fmt.Sprintf("out port 0x%x with no bus", ins.Imm))
				goto noRetire
			}
			m.PC, m.ICount, m.Branches = pc, icount, branches
			m.Bus.Out(m, ins.Imm, m.Regs[ins.Ra&15])
			if m.Halted {
				goto noRetire // the handler paused or faulted the machine
			}
			if m.StopReq {
				goto stopRetire
			}
			intGate = m.IntEnabled && m.pending != 0
			curPage = uint32(1) << 31 // a handler may have written memory
		case OpCli:
			m.IntEnabled = false
			intGate = false
		case OpSti:
			m.IntEnabled = true
			intGate = m.pending != 0
		case OpIret:
			if sp := m.Regs[RegSP]; sp <= memLen-4 {
				nextPC = binary.LittleEndian.Uint32(m.Mem[sp:])
			} else {
				// As in Step: the faulting pop still advances SP and IRET
				// still re-enables interrupts before the halt is noticed.
				m.Regs[RegSP] += 4
				m.IntEnabled = true
				m.sprintFault(pc, icount, FaultMemOutOfRange, fmt.Sprintf("load32 at 0x%x", sp))
				goto noRetire
			}
			m.Regs[RegSP] += 4
			m.IntEnabled = true
			intGate = m.pending != 0
			branched = true
		case OpWfi:
			if m.pending == 0 {
				m.Waiting = true
				goto wfiRetire
			}
		default:
			m.sprintFault(pc, icount, FaultBadOpcode, fmt.Sprintf("opcode %d", ins.Op))
			goto noRetire
		}

		pc = nextPC
		icount++
		if branched {
			branches++
		}
		continue

		// The exits below are reachable only by goto from exceptional paths
		// inside the switch, keeping the common retire path free of flag
		// checks: within a sprint, Halted/Waiting/StopReq can only become
		// true in the cases that jump here.

	stopRetire:
		// A bus handler requested a stop: the in-flight instruction retires
		// first, exactly as in Run's per-Step check. In/Out never branch.
		m.StopReq = false
		m.PC, m.ICount, m.Branches = nextPC, icount+1, branches
		return

	wfiRetire:
		// WFI retires, then the machine idles awaiting an interrupt.
		m.PC, m.ICount, m.Branches = nextPC, icount+1, branches
		return

	noRetire:
		// Fault, HLT, or a bus pause: the instruction does not retire, so
		// the position stays at it — as Step leaves it.
		m.PC, m.ICount, m.Branches = pc, icount, branches
		return
	}
	m.PC, m.ICount, m.Branches = pc, icount, branches
}

// sprintFault records a fault at the given execution position (the sprint
// keeps the position in locals, so Machine.fault's reads of PC/ICount
// would see stale fields) and halts the machine. The common sprint exit
// flushes the position back to the machine.
func (m *Machine) sprintFault(pc uint32, icount uint64, code FaultCode, detail string) {
	m.Halted = true
	m.FaultInfo = &Fault{Code: code, PC: pc, ICount: icount, Detail: detail}
}
