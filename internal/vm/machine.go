package vm

import (
	"encoding/binary"
	"fmt"
)

// PageSize is the granularity of dirty tracking and of the Merkle tree over
// machine state. 4 KiB, like the pages the paper's incremental snapshots
// operate on.
const PageSize = 4096

// Memory layout constants.
const (
	// VectorBase is the base address of the interrupt vector table: 16
	// 32-bit handler addresses.
	VectorBase = 0x0080
	// NumIRQs is the number of interrupt lines.
	NumIRQs = 16
	// CodeBase is the address at which images are loaded.
	CodeBase = 0x1000
)

// FaultCode classifies machine faults. Faults are deterministic: a given
// image with given inputs always faults at the same instruction, so replay
// reproduces them exactly.
type FaultCode uint8

// Machine fault codes.
const (
	FaultNone FaultCode = iota
	FaultBadOpcode
	FaultMemOutOfRange
	FaultDivByZero
	FaultBadPort
)

var faultNames = [...]string{
	FaultNone: "none", FaultBadOpcode: "bad opcode",
	FaultMemOutOfRange: "memory access out of range",
	FaultDivByZero:     "division by zero", FaultBadPort: "bad I/O port",
}

func (c FaultCode) String() string {
	if int(c) < len(faultNames) {
		return faultNames[c]
	}
	return fmt.Sprintf("FaultCode(%d)", uint8(c))
}

// Fault describes a machine fault.
type Fault struct {
	Code   FaultCode
	PC     uint32
	ICount uint64
	Detail string
}

func (f *Fault) Error() string {
	return fmt.Sprintf("vm: fault %v at pc=0x%x icount=%d: %s", f.Code, f.PC, f.ICount, f.Detail)
}

// Landmark identifies a precise point in an execution: the retired
// instruction count, the branch count, and the instruction pointer. Wall
// clock time cannot pinpoint instruction timing (§4.4); this triple can,
// and is what the AVMM records for every asynchronous event so it can be
// re-injected at the exact same point during replay.
type Landmark struct {
	ICount   uint64
	Branches uint64
	PC       uint32
}

func (l Landmark) String() string {
	return fmt.Sprintf("icount=%d branches=%d pc=0x%x", l.ICount, l.Branches, l.PC)
}

// IOBus is the machine's connection to its devices. The AVMM interposes on
// this interface: in record mode it forwards to real devices and logs
// nondeterministic values; in replay mode it feeds logged values back.
type IOBus interface {
	// In handles an IN instruction and returns the port's value.
	In(m *Machine, port uint32) uint32
	// Out handles an OUT instruction.
	Out(m *Machine, port uint32, val uint32)
}

// Machine is the deterministic virtual machine.
type Machine struct {
	Regs [NumRegs]uint32
	PC   uint32
	Mem  []byte

	// ICount is the number of retired instructions; Branches counts taken
	// control transfers. Together with PC they form landmarks.
	ICount   uint64
	Branches uint64

	// IntEnabled gates interrupt delivery; interrupts are disabled on
	// delivery and re-enabled by IRET (or STI).
	IntEnabled bool
	// Waiting is set while the machine executes WFI and no IRQ is pending.
	Waiting bool
	// Halted is set by HLT or by a fault.
	Halted bool
	// StopReq asks Run to return at the next instruction boundary. Bus
	// handlers set it when the host must regain control at an exact
	// execution point (e.g. a replaying auditor stopping at the instruction
	// that consumed the last available log entry, so the replica never runs
	// ahead of the log). The in-flight instruction retires normally; Run
	// clears the flag when it honors it. Not part of the machine state:
	// snapshots neither save nor restore it.
	StopReq bool
	// FaultInfo is non-nil after a fault.
	FaultInfo *Fault

	// Bus connects the machine to its devices.
	Bus IOBus

	// NsPerInstr converts instruction counts to virtual nanoseconds. The
	// default models a 100k instructions-per-second machine, scaling the
	// paper's multi-hour workloads to laptop-runnable instruction budgets.
	NsPerInstr uint64
	// ExtraNs is additional virtual time charged by the host (monitor
	// overhead from the cost model, idle-time advancement during WFI).
	ExtraNs uint64

	// pending is the bitmask of raised-but-undelivered IRQs.
	pending uint32

	// OnIRQDelivered, if set, is invoked at the moment an interrupt is
	// delivered, with the landmark at which delivery happened. The recording
	// monitor uses it to log the event.
	OnIRQDelivered func(irq int, lm Landmark)

	// InjectGate, if set, takes over interrupt scheduling: devices' raised
	// IRQs are ignored and the gate is consulted before each instruction.
	// The replaying auditor uses it to re-inject logged interrupts at their
	// recorded landmarks.
	InjectGate func(m *Machine) (irq int, ok bool)

	// pageGen records, per page, the write generation of the page's most
	// recent store. Generations split dirty tracking between independent
	// consumers: the recording monitor (DirtyPages/ClearDirty, which drive
	// incremental snapshots) and a replaying auditor's live state tree
	// (DirtyEpoch/DirtyPagesSince, folded at each snapshot entry) each hold
	// their own generation floor, so one clearing its view never perturbs
	// the other.
	pageGen []uint64
	// gen is the current write generation; every store stamps its page with
	// it. It advances only when a consumer takes a floor (DirtyEpoch), so
	// the invariant is: pageGen[p] > floor iff page p was written after that
	// floor was taken.
	gen uint64
	// recFloor is the recorder-facing floor behind DirtyPages/ClearDirty.
	recFloor uint64
	numPages int

	// accessed tracks pages touched (fetch, load or store) when
	// trackAccess is enabled — the basis of partial-state audits (§4.4:
	// "incrementally request the parts of the state that are accessed
	// during replay") and evidence minimization (§7.3).
	accessed    []bool
	trackAccess bool

	// DisablePredecode forces Step-by-Step execution in Run/RunUntil,
	// bypassing the predecoded sprint loop. The interpreter benchmarks and
	// the audit predecode ablation flip it; retired machine state is
	// bit-identical either way.
	DisablePredecode bool
	// DisableFusion keeps the predecoded sprint loop but skips the
	// superinstruction fusion pass, so every cached slot retires exactly
	// one instruction per dispatch. The fusion ablation benchmarks and the
	// fused-vs-unfused differential tests flip it; retired machine state
	// is bit-identical either way. The sprint revalidates a cached page
	// whose fusion state disagrees with the flag, so toggling it mid-run
	// is safe.
	DisableFusion bool
	// FusedPairs counts retired superinstruction pairs (a quad counts as
	// two). It is a host-side dispatch counter, not machine state:
	// snapshots ignore it, and it is excluded from replay-stat verdict
	// comparisons (chunk boundaries land mid-pair differently across
	// engines). dispatches/instruction =
	// (ICount - FusedPairs - FusedQuads) / ICount.
	FusedPairs uint64
	// FusedQuads counts retired quad superinstructions — two back-to-back
	// fused pairs dispatched as one. Host-side, like FusedPairs.
	FusedQuads uint64
	// code is the per-page predecode cache behind the sprint loop,
	// allocated lazily on the first sprint and invalidated through the page
	// write generations (see predecode.go).
	code []pageCode
}

// DefaultNsPerInstr models a 100 kIPS virtual machine (10 µs per
// instruction), chosen so that realistic game frame budgets (a few hundred
// instructions per frame) land near the paper's ~150 fps.
const DefaultNsPerInstr = 10_000

// NewMachine returns a machine with memSize bytes of zeroed memory (rounded
// up to a whole number of pages), interrupts disabled and SP at the top of
// memory.
func NewMachine(memSize int, bus IOBus) *Machine {
	if memSize < PageSize {
		memSize = PageSize
	}
	pages := (memSize + PageSize - 1) / PageSize
	m := &Machine{
		Mem:        make([]byte, pages*PageSize),
		Bus:        bus,
		NsPerInstr: DefaultNsPerInstr,
		pageGen:    make([]uint64, pages),
		gen:        1,
		numPages:   pages,
	}
	m.Regs[RegSP] = uint32(pages * PageSize)
	return m
}

// VTimeNs returns the machine's virtual clock in nanoseconds.
func (m *Machine) VTimeNs() uint64 { return m.ICount*m.NsPerInstr + m.ExtraNs }

// ChargeNs advances the virtual clock by d nanoseconds without executing
// instructions. The recording monitor charges its own overhead this way;
// the host also uses it to skip idle (WFI) periods.
func (m *Machine) ChargeNs(d uint64) { m.ExtraNs += d }

// Landmark returns the machine's current execution landmark.
func (m *Machine) Landmark() Landmark {
	return Landmark{ICount: m.ICount, Branches: m.Branches, PC: m.PC}
}

// RaiseIRQ asserts interrupt line irq. The interrupt is delivered at the
// next instruction boundary at which interrupts are enabled. Raising any
// IRQ wakes a machine waiting in WFI, even if the interrupt itself stays
// masked until STI.
func (m *Machine) RaiseIRQ(irq int) {
	if irq < 0 || irq >= NumIRQs {
		panic(fmt.Sprintf("vm: IRQ %d out of range", irq))
	}
	m.pending |= 1 << uint(irq)
	m.Waiting = false
}

// PendingIRQs returns the bitmask of raised-but-undelivered interrupts.
func (m *Machine) PendingIRQs() uint32 { return m.pending }

// deliverIRQ performs the delivery mechanics: push the resume PC, disable
// interrupts, jump to the vector. Delivery counts as a branch.
func (m *Machine) deliverIRQ(irq int) {
	lm := m.Landmark()
	m.pending &^= 1 << uint(irq)
	vector := m.load32(VectorBase + uint32(irq)*4)
	if m.Halted {
		return // vector table read faulted
	}
	m.push(m.PC)
	if m.Halted {
		return
	}
	m.IntEnabled = false
	m.PC = vector
	m.Branches++
	if m.OnIRQDelivered != nil {
		m.OnIRQDelivered(irq, lm)
	}
}

// lowestIRQ returns the lowest-numbered pending IRQ.
func (m *Machine) lowestIRQ() int {
	for i := 0; i < NumIRQs; i++ {
		if m.pending&(1<<uint(i)) != 0 {
			return i
		}
	}
	return -1
}

// Step executes one instruction (delivering at most one interrupt first).
// It returns false when the machine is halted or waiting for an interrupt.
func (m *Machine) Step() bool {
	if m.Halted || m.Waiting {
		return false
	}
	// Interrupt delivery at the instruction boundary. Under an InjectGate
	// (replay), the gate alone decides when interrupts fire, so that they
	// land at exactly the recorded landmarks.
	if m.InjectGate != nil {
		if irq, ok := m.InjectGate(m); ok {
			m.deliverIRQ(irq)
			if m.Halted {
				return false
			}
		}
	} else if m.IntEnabled && m.pending != 0 {
		m.deliverIRQ(m.lowestIRQ())
		if m.Halted {
			return false
		}
	}

	if int(m.PC)+InstrSize > len(m.Mem) {
		m.fault(FaultMemOutOfRange, fmt.Sprintf("instruction fetch at 0x%x", m.PC))
		return false
	}
	if m.trackAccess {
		m.accessed[m.PC/PageSize] = true
		m.accessed[(m.PC+InstrSize-1)/PageSize] = true
	}
	ins := Decode(m.Mem[m.PC:])
	nextPC := m.PC + InstrSize
	branched := false

	switch ins.Op {
	case OpNop:
	case OpHlt:
		m.Halted = true
	case OpMovi:
		m.Regs[ins.Ra&15] = ins.Imm
	case OpMov:
		m.Regs[ins.Ra&15] = m.Regs[ins.Rb&15]
	case OpAdd:
		m.Regs[ins.Ra&15] = m.Regs[ins.Rb&15] + m.Regs[ins.Rc&15]
	case OpSub:
		m.Regs[ins.Ra&15] = m.Regs[ins.Rb&15] - m.Regs[ins.Rc&15]
	case OpMul:
		m.Regs[ins.Ra&15] = m.Regs[ins.Rb&15] * m.Regs[ins.Rc&15]
	case OpDivu:
		if m.Regs[ins.Rc&15] == 0 {
			m.fault(FaultDivByZero, "divu")
		} else {
			m.Regs[ins.Ra&15] = m.Regs[ins.Rb&15] / m.Regs[ins.Rc&15]
		}
	case OpModu:
		if m.Regs[ins.Rc&15] == 0 {
			m.fault(FaultDivByZero, "modu")
		} else {
			m.Regs[ins.Ra&15] = m.Regs[ins.Rb&15] % m.Regs[ins.Rc&15]
		}
	case OpAnd:
		m.Regs[ins.Ra&15] = m.Regs[ins.Rb&15] & m.Regs[ins.Rc&15]
	case OpOr:
		m.Regs[ins.Ra&15] = m.Regs[ins.Rb&15] | m.Regs[ins.Rc&15]
	case OpXor:
		m.Regs[ins.Ra&15] = m.Regs[ins.Rb&15] ^ m.Regs[ins.Rc&15]
	case OpShl:
		m.Regs[ins.Ra&15] = m.Regs[ins.Rb&15] << (m.Regs[ins.Rc&15] & 31)
	case OpShr:
		m.Regs[ins.Ra&15] = m.Regs[ins.Rb&15] >> (m.Regs[ins.Rc&15] & 31)
	case OpAddi:
		m.Regs[ins.Ra&15] = m.Regs[ins.Rb&15] + ins.Imm
	case OpEq:
		m.Regs[ins.Ra&15] = boolToWord(m.Regs[ins.Rb&15] == m.Regs[ins.Rc&15])
	case OpLtu:
		m.Regs[ins.Ra&15] = boolToWord(m.Regs[ins.Rb&15] < m.Regs[ins.Rc&15])
	case OpLts:
		m.Regs[ins.Ra&15] = boolToWord(int32(m.Regs[ins.Rb&15]) < int32(m.Regs[ins.Rc&15]))
	case OpNot:
		m.Regs[ins.Ra&15] = boolToWord(m.Regs[ins.Rb&15] == 0)
	case OpLoad:
		m.Regs[ins.Ra&15] = m.load32(m.Regs[ins.Rb&15] + ins.Imm)
	case OpStore:
		m.store32(m.Regs[ins.Ra&15]+ins.Imm, m.Regs[ins.Rb&15])
	case OpLoadb:
		m.Regs[ins.Ra&15] = uint32(m.loadByte(m.Regs[ins.Rb&15] + ins.Imm))
	case OpStoreb:
		m.storeByte(m.Regs[ins.Ra&15]+ins.Imm, byte(m.Regs[ins.Rb&15]))
	case OpJmp:
		nextPC = ins.Imm
		branched = true
	case OpJz:
		if m.Regs[ins.Ra&15] == 0 {
			nextPC = ins.Imm
			branched = true
		}
	case OpJnz:
		if m.Regs[ins.Ra&15] != 0 {
			nextPC = ins.Imm
			branched = true
		}
	case OpCall:
		m.push(nextPC)
		nextPC = ins.Imm
		branched = true
	case OpRet:
		nextPC = m.pop()
		branched = true
	case OpPush:
		m.push(m.Regs[ins.Ra&15])
	case OpPop:
		m.Regs[ins.Ra&15] = m.pop()
	case OpIn:
		if m.Bus == nil {
			m.fault(FaultBadPort, fmt.Sprintf("in port 0x%x with no bus", ins.Imm))
		} else {
			m.Regs[ins.Ra&15] = m.Bus.In(m, ins.Imm)
		}
	case OpOut:
		if m.Bus == nil {
			m.fault(FaultBadPort, fmt.Sprintf("out port 0x%x with no bus", ins.Imm))
		} else {
			m.Bus.Out(m, ins.Imm, m.Regs[ins.Ra&15])
		}
	case OpCli:
		m.IntEnabled = false
	case OpSti:
		m.IntEnabled = true
	case OpIret:
		nextPC = m.pop()
		m.IntEnabled = true
		branched = true
	case OpWfi:
		// Only actually idle if nothing is pending; a pending IRQ makes WFI
		// a no-op so the wakeup cannot be lost.
		if m.pending == 0 {
			m.Waiting = true
		}
	default:
		m.fault(FaultBadOpcode, fmt.Sprintf("opcode %d", ins.Op))
	}

	if m.Halted {
		return false
	}
	m.PC = nextPC
	m.ICount++
	if branched {
		m.Branches++
	}
	return !m.Waiting
}

// Run executes up to maxInstr instructions, stopping early if the machine
// halts or begins waiting for an interrupt. It returns the number of
// instructions retired.
func (m *Machine) Run(maxInstr uint64) uint64 {
	bound := m.ICount + maxInstr
	if bound < m.ICount { // saturate on overflow
		bound = ^uint64(0)
	}
	return m.RunUntil(bound)
}

// RunUntil executes instructions until the retired-instruction count
// reaches bound, stopping early if the machine halts, faults, begins
// waiting for an interrupt, or a bus handler requests a stop. It returns
// the number of instructions retired.
//
// When no per-instruction host feature is active — access tracking, an
// InjectGate, the predecode ablation — execution runs on the predecoded
// sprint loop (predecode.go): instructions come from the per-page
// predecode cache, invalidated through the page write generations so
// self-modifying code re-decodes before its next fetch, and the hot loop
// carries none of Step's per-instruction feature branches. The careful and
// sprint paths retire bit-identical state; landing exactly on bound is
// what lets a replaying auditor sprint the gap to the next recorded
// landmark and an AVMM sprint between device interactions.
func (m *Machine) RunUntil(bound uint64) uint64 {
	start := m.ICount
	// A StopReq raised before the call (rather than by a bus handler inside
	// it) is honored after one instruction, as Run's per-Step check always
	// did; the sprint only polls the flag at bus instructions, so route the
	// preset case through the careful loop.
	if m.DisablePredecode || m.trackAccess || m.InjectGate != nil || m.StopReq {
		for m.ICount < bound {
			if !m.Step() {
				break
			}
			if m.StopReq {
				m.StopReq = false
				break
			}
		}
		return m.ICount - start
	}
	m.sprint(bound)
	return m.ICount - start
}

func boolToWord(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

func (m *Machine) fault(code FaultCode, detail string) {
	m.Halted = true
	m.FaultInfo = &Fault{Code: code, PC: m.PC, ICount: m.ICount, Detail: detail}
}

// --- memory access ---

func (m *Machine) load32(addr uint32) uint32 {
	if int(addr)+4 > len(m.Mem) || int(addr) < 0 {
		m.fault(FaultMemOutOfRange, fmt.Sprintf("load32 at 0x%x", addr))
		return 0
	}
	if m.trackAccess {
		m.accessed[addr/PageSize] = true
		m.accessed[(addr+3)/PageSize] = true
	}
	return binary.LittleEndian.Uint32(m.Mem[addr:])
}

func (m *Machine) store32(addr uint32, val uint32) {
	if int(addr)+4 > len(m.Mem) {
		m.fault(FaultMemOutOfRange, fmt.Sprintf("store32 at 0x%x", addr))
		return
	}
	binary.LittleEndian.PutUint32(m.Mem[addr:], val)
	m.pageGen[addr/PageSize] = m.gen
	if (addr%PageSize)+4 > PageSize {
		m.pageGen[addr/PageSize+1] = m.gen
	}
	if m.trackAccess {
		m.accessed[addr/PageSize] = true
		m.accessed[(addr+3)/PageSize] = true
	}
}

func (m *Machine) loadByte(addr uint32) byte {
	if int(addr) >= len(m.Mem) {
		m.fault(FaultMemOutOfRange, fmt.Sprintf("loadb at 0x%x", addr))
		return 0
	}
	if m.trackAccess {
		m.accessed[addr/PageSize] = true
	}
	return m.Mem[addr]
}

func (m *Machine) storeByte(addr uint32, val byte) {
	if int(addr) >= len(m.Mem) {
		m.fault(FaultMemOutOfRange, fmt.Sprintf("storeb at 0x%x", addr))
		return
	}
	m.Mem[addr] = val
	m.pageGen[addr/PageSize] = m.gen
	if m.trackAccess {
		m.accessed[addr/PageSize] = true
	}
}

func (m *Machine) push(val uint32) {
	m.Regs[RegSP] -= 4
	m.store32(m.Regs[RegSP], val)
}

func (m *Machine) pop() uint32 {
	v := m.load32(m.Regs[RegSP])
	m.Regs[RegSP] += 4
	return v
}

// Load32 reads a 32-bit word for host-side inspection (tests, device DMA).
// Unlike guest loads it returns an error instead of faulting the machine.
func (m *Machine) Load32(addr uint32) (uint32, error) {
	if int(addr)+4 > len(m.Mem) {
		return 0, fmt.Errorf("vm: host load32 at 0x%x out of range", addr)
	}
	return binary.LittleEndian.Uint32(m.Mem[addr:]), nil
}

// Store32 writes a 32-bit word from the host side, with dirty tracking.
func (m *Machine) Store32(addr uint32, val uint32) error {
	if int(addr)+4 > len(m.Mem) {
		return fmt.Errorf("vm: host store32 at 0x%x out of range", addr)
	}
	binary.LittleEndian.PutUint32(m.Mem[addr:], val)
	m.pageGen[addr/PageSize] = m.gen
	if (addr%PageSize)+4 > PageSize {
		m.pageGen[addr/PageSize+1] = m.gen
	}
	return nil
}

// WriteBytes copies b into memory at addr from the host side, with dirty
// tracking. Used by image loading and binary patching (cheats).
func (m *Machine) WriteBytes(addr uint32, b []byte) error {
	if int(addr)+len(b) > len(m.Mem) {
		return fmt.Errorf("vm: host write of %d bytes at 0x%x out of range", len(b), addr)
	}
	if len(b) == 0 {
		return nil // addr+len(b)-1 below would wrap and dirty every page
	}
	copy(m.Mem[addr:], b)
	for p := addr / PageSize; p <= (addr+uint32(len(b))-1)/PageSize && int(p) < m.numPages; p++ {
		m.pageGen[p] = m.gen
	}
	return nil
}

// NumPages returns the number of memory pages.
func (m *Machine) NumPages() int { return m.numPages }

// Page returns page p's bytes (aliased, not copied).
func (m *Machine) Page(p int) []byte { return m.Mem[p*PageSize : (p+1)*PageSize] }

// DirtyPages returns the indices of pages written since the last
// ClearDirty, in ascending order. This is the recorder-facing view, the
// one incremental snapshots capture.
func (m *Machine) DirtyPages() []int {
	return m.DirtyPagesSince(m.recFloor)
}

// ClearDirty resets the recorder-facing dirty tracking, typically right
// after a snapshot. The auditor-facing view (DirtyEpoch floors) is
// unaffected.
func (m *Machine) ClearDirty() {
	m.recFloor = m.DirtyEpoch()
}

// MarkAllDirty flags every page for every consumer, used after a restore.
func (m *Machine) MarkAllDirty() {
	for p := range m.pageGen {
		m.pageGen[p] = m.gen
	}
}

// DirtyEpoch returns a floor for DirtyPagesSince and advances the write
// generation, so pages written after the call are distinguishable from
// those written before it. A replaying auditor takes a floor each time it
// folds the dirty set into its live state tree; the recorder's
// DirtyPages/ClearDirty hold a floor of their own, so neither consumer's
// clearing perturbs the other.
func (m *Machine) DirtyEpoch() uint64 {
	g := m.gen
	m.gen++
	return g
}

// DirtyPagesSince returns, in ascending order, the indices of pages
// written after the given floor was taken with DirtyEpoch.
func (m *Machine) DirtyPagesSince(floor uint64) []int {
	var out []int
	for p, g := range m.pageGen {
		if g > floor {
			out = append(out, p)
		}
	}
	return out
}

// TrackAccess enables (or disables) page-access tracking for loads, stores
// and instruction fetches.
func (m *Machine) TrackAccess(on bool) {
	m.trackAccess = on
	if on && m.accessed == nil {
		m.accessed = make([]bool, m.numPages)
	}
}

// AccessedPages returns the indices of pages touched since tracking was
// enabled (or last cleared), in ascending order.
func (m *Machine) AccessedPages() []int {
	var out []int
	for p, a := range m.accessed {
		if a {
			out = append(out, p)
		}
	}
	return out
}

// ClearAccessed resets access tracking.
func (m *Machine) ClearAccessed() {
	for p := range m.accessed {
		m.accessed[p] = false
	}
}
