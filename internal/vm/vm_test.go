package vm

import (
	"testing"
)

// asm assembles instructions into a code blob.
func asm(ins ...Instr) []byte {
	var code []byte
	for _, i := range ins {
		code = i.Encode(code)
	}
	return code
}

// bootCode loads code at CodeBase on a fresh machine.
func bootCode(t *testing.T, code []byte, bus IOBus) *Machine {
	t.Helper()
	img := &Image{Name: "t", Code: code, Entry: CodeBase, MemSize: 64 * 1024}
	var devs *DeviceSet
	if ds, ok := bus.(*DeviceSet); ok {
		devs = ds
	}
	m, err := img.Boot(devs)
	if err != nil {
		t.Fatalf("boot: %v", err)
	}
	if devs == nil {
		m.Bus = bus
	}
	return m
}

func TestArithmeticOpcodes(t *testing.T) {
	cases := []struct {
		op   Opcode
		a, b uint32
		want uint32
	}{
		{OpAdd, 7, 5, 12},
		{OpSub, 7, 5, 2},
		{OpSub, 5, 7, 0xFFFFFFFE},
		{OpMul, 6, 7, 42},
		{OpDivu, 42, 5, 8},
		{OpModu, 42, 5, 2},
		{OpAnd, 0xF0F0, 0xFF00, 0xF000},
		{OpOr, 0xF0F0, 0x0F0F, 0xFFFF},
		{OpXor, 0xFF, 0x0F, 0xF0},
		{OpShl, 1, 10, 1024},
		{OpShl, 1, 42, 1024}, // shift counts mask to 5 bits
		{OpShr, 1024, 10, 1},
		{OpEq, 5, 5, 1},
		{OpEq, 5, 6, 0},
		{OpLtu, 5, 6, 1},
		{OpLtu, 0xFFFFFFFF, 1, 0}, // unsigned
		{OpLts, 0xFFFFFFFF, 1, 1}, // signed: -1 < 1
		{OpLts, 1, 0xFFFFFFFF, 0},
	}
	for _, c := range cases {
		m := bootCode(t, asm(
			Instr{Op: OpMovi, Ra: 1, Imm: c.a},
			Instr{Op: OpMovi, Ra: 2, Imm: c.b},
			Instr{Op: c.op, Ra: 0, Rb: 1, Rc: 2},
			Instr{Op: OpHlt},
		), nil)
		m.Run(100)
		if m.FaultInfo != nil {
			t.Fatalf("%v(%d,%d): fault %v", c.op, c.a, c.b, m.FaultInfo)
		}
		if m.Regs[0] != c.want {
			t.Errorf("%v(%d,%d) = %d, want %d", c.op, c.a, c.b, m.Regs[0], c.want)
		}
	}
}

func TestNotAndMovAndAddi(t *testing.T) {
	m := bootCode(t, asm(
		Instr{Op: OpMovi, Ra: 1, Imm: 7},
		Instr{Op: OpMov, Ra: 2, Rb: 1},
		Instr{Op: OpAddi, Ra: 3, Rb: 2, Imm: 0xFFFFFFFF}, // -1
		Instr{Op: OpNot, Ra: 4, Rb: 3},
		Instr{Op: OpMovi, Ra: 5, Imm: 0},
		Instr{Op: OpNot, Ra: 5, Rb: 5},
		Instr{Op: OpHlt},
	), nil)
	m.Run(100)
	if m.Regs[2] != 7 || m.Regs[3] != 6 || m.Regs[4] != 0 || m.Regs[5] != 1 {
		t.Fatalf("regs = %v", m.Regs[:6])
	}
}

func TestLoadStoreAndBytes(t *testing.T) {
	m := bootCode(t, asm(
		Instr{Op: OpMovi, Ra: 1, Imm: 0x8000},
		Instr{Op: OpMovi, Ra: 2, Imm: 0xDEADBEEF},
		Instr{Op: OpStore, Ra: 1, Rb: 2, Imm: 4},
		Instr{Op: OpLoad, Ra: 3, Rb: 1, Imm: 4},
		Instr{Op: OpLoadb, Ra: 4, Rb: 1, Imm: 4}, // low byte, little endian
		Instr{Op: OpMovi, Ra: 5, Imm: 0x41},
		Instr{Op: OpStoreb, Ra: 1, Rb: 5, Imm: 100},
		Instr{Op: OpLoadb, Ra: 6, Rb: 1, Imm: 100},
		Instr{Op: OpHlt},
	), nil)
	m.Run(100)
	if m.Regs[3] != 0xDEADBEEF || m.Regs[4] != 0xEF || m.Regs[6] != 0x41 {
		t.Fatalf("regs = %x", m.Regs[:8])
	}
}

func TestBranchesAndBranchCounter(t *testing.T) {
	// Loop 5 times; count taken branches.
	loop := uint32(CodeBase + 2*InstrSize)
	m := bootCode(t, asm(
		Instr{Op: OpMovi, Ra: 0, Imm: 0},        // counter
		Instr{Op: OpMovi, Ra: 1, Imm: 5},        // limit
		Instr{Op: OpAddi, Ra: 0, Rb: 0, Imm: 1}, // loop:
		Instr{Op: OpLtu, Ra: 2, Rb: 0, Rc: 1},
		Instr{Op: OpJnz, Ra: 2, Imm: loop},
		Instr{Op: OpHlt},
	), nil)
	m.Run(1000)
	if m.Regs[0] != 5 {
		t.Fatalf("counter = %d, want 5", m.Regs[0])
	}
	if m.Branches != 4 { // taken 4 times, falls through the 5th
		t.Fatalf("branches = %d, want 4", m.Branches)
	}
}

func TestCallRetPushPop(t *testing.T) {
	// main: push 11, call f, halt. f: pop into r1 via stack discipline.
	fAddr := uint32(CodeBase + 4*InstrSize)
	m := bootCode(t, asm(
		Instr{Op: OpMovi, Ra: 1, Imm: 11},
		Instr{Op: OpPush, Ra: 1},
		Instr{Op: OpCall, Imm: fAddr},
		Instr{Op: OpHlt},
		// f:
		Instr{Op: OpLoad, Ra: 2, Rb: RegSP, Imm: 4}, // arg above return address
		Instr{Op: OpAddi, Ra: 2, Rb: 2, Imm: 100},
		Instr{Op: OpRet},
	), nil)
	m.Run(100)
	if m.Regs[2] != 111 {
		t.Fatalf("r2 = %d, want 111", m.Regs[2])
	}
	if !m.Halted {
		t.Fatal("machine did not halt")
	}
}

func TestFaults(t *testing.T) {
	cases := []struct {
		name string
		code []byte
		want FaultCode
	}{
		{"div by zero", asm(
			Instr{Op: OpMovi, Ra: 1, Imm: 5},
			Instr{Op: OpMovi, Ra: 2, Imm: 0},
			Instr{Op: OpDivu, Ra: 0, Rb: 1, Rc: 2},
		), FaultDivByZero},
		{"mod by zero", asm(
			Instr{Op: OpMovi, Ra: 1, Imm: 5},
			Instr{Op: OpMovi, Ra: 2, Imm: 0},
			Instr{Op: OpModu, Ra: 0, Rb: 1, Rc: 2},
		), FaultDivByZero},
		{"load out of range", asm(
			Instr{Op: OpMovi, Ra: 1, Imm: 0xFFFFFF0},
			Instr{Op: OpLoad, Ra: 0, Rb: 1},
		), FaultMemOutOfRange},
		{"store out of range", asm(
			Instr{Op: OpMovi, Ra: 1, Imm: 0xFFFFFF0},
			Instr{Op: OpStore, Ra: 1, Rb: 0},
		), FaultMemOutOfRange},
		{"bad opcode", asm(Instr{Op: Opcode(200)}), FaultBadOpcode},
		{"jump out of range", asm(Instr{Op: OpJmp, Imm: 0xFFFFFFF0}), FaultMemOutOfRange},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			m := bootCode(t, c.code, nil)
			m.Run(100)
			if m.FaultInfo == nil {
				t.Fatal("no fault")
			}
			if m.FaultInfo.Code != c.want {
				t.Fatalf("fault = %v, want %v", m.FaultInfo.Code, c.want)
			}
			if !m.Halted {
				t.Fatal("faulted machine not halted")
			}
		})
	}
}

func TestInterruptDeliveryAndIret(t *testing.T) {
	handler := uint32(CodeBase + 6*InstrSize)
	img := &Image{
		Name: "irq", Entry: CodeBase, MemSize: 64 * 1024,
		Code: asm(
			Instr{Op: OpSti},
			Instr{Op: OpMovi, Ra: 1, Imm: 1}, // loop body
			Instr{Op: OpJnz, Ra: 1, Imm: CodeBase + 1*InstrSize},
			Instr{Op: OpHlt},
			Instr{Op: OpNop},
			Instr{Op: OpNop},
			// handler: set r5 and halt
			Instr{Op: OpMovi, Ra: 5, Imm: 42},
			Instr{Op: OpHlt},
		),
	}
	img.Vectors[3] = handler
	m, err := img.Boot(nil)
	if err != nil {
		t.Fatal(err)
	}
	var deliveredAt Landmark
	m.OnIRQDelivered = func(irq int, lm Landmark) {
		if irq != 3 {
			t.Errorf("delivered irq %d, want 3", irq)
		}
		deliveredAt = lm
	}
	m.Run(10)
	m.RaiseIRQ(3)
	m.Run(100)
	if m.Regs[5] != 42 {
		t.Fatal("handler did not run")
	}
	if deliveredAt.ICount == 0 {
		t.Fatal("no delivery landmark")
	}
	// The resume PC was pushed on the stack.
	resume, err := m.Load32(m.Regs[RegSP])
	if err != nil {
		t.Fatal(err)
	}
	if resume < CodeBase || resume > CodeBase+4*InstrSize {
		t.Fatalf("pushed resume pc 0x%x outside loop", resume)
	}
}

func TestInterruptMaskedUntilSti(t *testing.T) {
	handler := uint32(CodeBase + 8*InstrSize)
	img := &Image{
		Name: "masked", Entry: CodeBase, MemSize: 64 * 1024,
		Code: asm(
			Instr{Op: OpMovi, Ra: 1, Imm: 1},
			Instr{Op: OpMovi, Ra: 2, Imm: 2},
			Instr{Op: OpMovi, Ra: 3, Imm: 3},
			Instr{Op: OpSti},
			Instr{Op: OpNop},
			Instr{Op: OpHlt},
			Instr{Op: OpNop},
			Instr{Op: OpNop},
			// handler:
			Instr{Op: OpMovi, Ra: 5, Imm: 99},
			Instr{Op: OpIret},
		),
	}
	img.Vectors[0] = handler
	m, err := img.Boot(nil)
	if err != nil {
		t.Fatal(err)
	}
	m.RaiseIRQ(0) // raised before STI: must stay pending
	m.Step()
	m.Step()
	if m.Regs[5] == 99 {
		t.Fatal("interrupt delivered while masked")
	}
	m.Run(100)
	if m.Regs[5] != 99 {
		t.Fatal("interrupt never delivered after STI")
	}
	if !m.IntEnabled {
		t.Fatal("IRET did not re-enable interrupts")
	}
	if !m.Halted {
		t.Fatal("did not resume and halt")
	}
}

func TestWfiWakeSemantics(t *testing.T) {
	m := bootCode(t, asm(
		Instr{Op: OpWfi},
		Instr{Op: OpMovi, Ra: 1, Imm: 7},
		Instr{Op: OpHlt},
	), nil)
	m.Run(10)
	if !m.Waiting {
		t.Fatal("not waiting after WFI")
	}
	icount := m.ICount
	m.Run(10)
	if m.ICount != icount {
		t.Fatal("instructions retired while waiting")
	}
	m.RaiseIRQ(2) // masked IRQ still wakes WFI
	if m.Waiting {
		t.Fatal("RaiseIRQ did not clear Waiting")
	}
	m.Run(10)
	if m.Regs[1] != 7 || !m.Halted {
		t.Fatal("did not resume after wake")
	}
}

func TestWfiWithPendingIsNoop(t *testing.T) {
	m := bootCode(t, asm(
		Instr{Op: OpWfi},
		Instr{Op: OpHlt},
	), nil)
	m.RaiseIRQ(1)
	m.Run(10)
	if m.Waiting {
		t.Fatal("WFI slept despite pending IRQ; wakeup lost")
	}
	if !m.Halted {
		t.Fatal("did not continue past WFI")
	}
}

func TestDirtyPageTracking(t *testing.T) {
	m := bootCode(t, asm(
		Instr{Op: OpMovi, Ra: 1, Imm: 3 * PageSize},
		Instr{Op: OpMovi, Ra: 2, Imm: 9},
		Instr{Op: OpStore, Ra: 1, Rb: 2},
		Instr{Op: OpHlt},
	), nil)
	m.ClearDirty()
	m.Run(100)
	dirty := m.DirtyPages()
	// Page 3 (the store) and the stack page are candidates; the store page
	// must be present.
	found := false
	for _, p := range dirty {
		if p == 3 {
			found = true
		}
	}
	if !found {
		t.Fatalf("page 3 not dirty after store; dirty=%v", dirty)
	}
	m.ClearDirty()
	if len(m.DirtyPages()) != 0 {
		t.Fatal("ClearDirty left pages dirty")
	}
}

func TestStoreStraddlingPageBoundaryDirtiesBoth(t *testing.T) {
	m := NewMachine(4*PageSize, nil)
	m.ClearDirty()
	if err := m.Store32(uint32(PageSize-2), 0xAABBCCDD); err != nil {
		t.Fatal(err)
	}
	dirty := m.DirtyPages()
	if len(dirty) != 2 || dirty[0] != 0 || dirty[1] != 1 {
		t.Fatalf("dirty = %v, want [0 1]", dirty)
	}
}

// TestDirtyGenerationsSplitConsumers: the recorder's ClearDirty and an
// auditor's DirtyEpoch floors must track the same writes independently —
// clearing one view never clears the other.
func TestDirtyGenerationsSplitConsumers(t *testing.T) {
	m := NewMachine(8*PageSize, nil)
	m.ClearDirty()
	floor := m.DirtyEpoch()

	if err := m.Store32(2*PageSize, 1); err != nil {
		t.Fatal(err)
	}
	// The recorder snapshots and clears; the auditor's view must survive.
	if d := m.DirtyPages(); len(d) != 1 || d[0] != 2 {
		t.Fatalf("recorder dirty = %v, want [2]", d)
	}
	m.ClearDirty()
	if d := m.DirtyPagesSince(floor); len(d) != 1 || d[0] != 2 {
		t.Fatalf("auditor dirty = %v after recorder clear, want [2]", d)
	}

	// The auditor folds and takes a new floor; the recorder's view must
	// survive, and only post-floor writes show up for the auditor.
	if err := m.Store32(5*PageSize, 1); err != nil {
		t.Fatal(err)
	}
	floor = m.DirtyEpoch()
	if err := m.Store32(6*PageSize, 1); err != nil {
		t.Fatal(err)
	}
	if d := m.DirtyPagesSince(floor); len(d) != 1 || d[0] != 6 {
		t.Fatalf("auditor dirty = %v, want [6]", d)
	}
	if d := m.DirtyPages(); len(d) != 2 || d[0] != 5 || d[1] != 6 {
		t.Fatalf("recorder dirty = %v, want [5 6]", d)
	}

	// MarkAllDirty flags every page for both consumers.
	m.ClearDirty()
	floor = m.DirtyEpoch()
	m.MarkAllDirty()
	if d := m.DirtyPages(); len(d) != m.NumPages() {
		t.Fatalf("recorder sees %d pages after MarkAllDirty, want %d", len(d), m.NumPages())
	}
	if d := m.DirtyPagesSince(floor); len(d) != m.NumPages() {
		t.Fatalf("auditor sees %d pages after MarkAllDirty, want %d", len(d), m.NumPages())
	}
}

func TestStateCaptureRestoreRoundTrip(t *testing.T) {
	devs := NewDeviceSet(7)
	m := bootCode(t, asm(
		Instr{Op: OpMovi, Ra: 1, Imm: 0x1234},
		Instr{Op: OpPush, Ra: 1},
		Instr{Op: OpSti},
		Instr{Op: OpHlt},
	), devs)
	m.Run(10)
	st := m.CaptureState()
	m2 := NewMachine(len(m.Mem), devs)
	if err := m2.RestoreState(st); err != nil {
		t.Fatal(err)
	}
	if m2.Regs != m.Regs || m2.PC != m.PC || m2.ICount != m.ICount ||
		m2.Branches != m.Branches || m2.IntEnabled != m.IntEnabled {
		t.Fatal("restored core state differs")
	}
	for i := range m.Mem {
		if m.Mem[i] != m2.Mem[i] {
			t.Fatalf("memory differs at %d", i)
		}
	}
}

func TestRegisterBlobRoundTrip(t *testing.T) {
	m := NewMachine(PageSize, nil)
	m.Regs[3] = 77
	m.PC = 0x1234
	m.ICount = 999
	m.Branches = 55
	m.IntEnabled = true
	m.RaiseIRQ(4)
	blob := m.CaptureStateRegisters()
	m2 := NewMachine(PageSize, nil)
	if err := m2.RestoreRegisters(blob); err != nil {
		t.Fatal(err)
	}
	if m2.Regs[3] != 77 || m2.PC != 0x1234 || m2.ICount != 999 ||
		m2.Branches != 55 || !m2.IntEnabled || m2.PendingIRQs() != 1<<4 {
		t.Fatal("register blob round trip failed")
	}
	if err := m2.RestoreRegisters(blob[:10]); err == nil {
		t.Fatal("truncated blob accepted")
	}
}

func TestImageHashSensitivity(t *testing.T) {
	base := &Image{Name: "x", Code: asm(Instr{Op: OpHlt}), Entry: CodeBase, MemSize: 4096}
	h := base.Hash()
	mutants := []*Image{
		{Name: "y", Code: base.Code, Entry: CodeBase, MemSize: 4096},
		{Name: "x", Code: asm(Instr{Op: OpNop}), Entry: CodeBase, MemSize: 4096},
		{Name: "x", Code: base.Code, Entry: CodeBase + 8, MemSize: 4096},
		{Name: "x", Code: base.Code, Entry: CodeBase, MemSize: 8192},
		{Name: "x", Code: base.Code, Entry: CodeBase, MemSize: 4096, Disk: []byte{1}},
	}
	for i, mu := range mutants {
		if mu.Hash() == h {
			t.Errorf("mutant %d has same hash as base", i)
		}
	}
	v := base.Clone()
	v.Vectors[2] = 0x2000
	if v.Hash() == h {
		t.Error("vector change not reflected in hash")
	}
}

func TestImageCodeTooLarge(t *testing.T) {
	img := &Image{Name: "big", Code: make([]byte, 8192), Entry: CodeBase, MemSize: 8192}
	if _, err := img.Boot(nil); err == nil {
		t.Fatal("oversized image booted")
	}
}

func TestDecodeEncodeRoundTrip(t *testing.T) {
	ins := Instr{Op: OpAddi, Ra: 3, Rb: 14, Rc: 9, Imm: 0xDEADBEEF}
	got := Decode(ins.Encode(nil))
	if got != ins {
		t.Fatalf("round trip: %+v != %+v", got, ins)
	}
}

func TestDisassembler(t *testing.T) {
	cases := map[string]Instr{
		"movi r1, 5":       {Op: OpMovi, Ra: 1, Imm: 5},
		"add r0, r1, r2":   {Op: OpAdd, Ra: 0, Rb: 1, Rc: 2},
		"load r3, [r4+8]":  {Op: OpLoad, Ra: 3, Rb: 4, Imm: 8},
		"jmp 0x1000":       {Op: OpJmp, Imm: 0x1000},
		"in r2, port 0x20": {Op: OpIn, Ra: 2, Imm: 0x20},
		"hlt":              {Op: OpHlt},
	}
	for want, ins := range cases {
		if got := ins.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}
