package vm

import (
	"bytes"
	"fmt"
	"testing"
)

// cloneForDiff boots two machines from the same image and device seed: one
// on the predecoded sprint path, one forced onto the careful Step path.
func cloneForDiff(t *testing.T, code []byte, vectors [NumIRQs]uint32) (fast, slow *Machine) {
	t.Helper()
	img := &Image{Name: "diff", Code: code, Entry: CodeBase, MemSize: 64 * 1024, Vectors: vectors}
	boot := func() *Machine {
		m, err := img.Boot(NewDeviceSet(42))
		if err != nil {
			t.Fatalf("boot: %v", err)
		}
		return m
	}
	fast, slow = boot(), boot()
	slow.DisablePredecode = true
	return fast, slow
}

// diffState fails the test on the first field where the two machines
// disagree.
func diffState(t *testing.T, label string, fast, slow *Machine) {
	t.Helper()
	if fast.Regs != slow.Regs {
		t.Fatalf("%s: regs diverge: sprint %v, step %v", label, fast.Regs, slow.Regs)
	}
	if fast.PC != slow.PC || fast.ICount != slow.ICount || fast.Branches != slow.Branches {
		t.Fatalf("%s: position diverges: sprint pc=0x%x ic=%d br=%d, step pc=0x%x ic=%d br=%d",
			label, fast.PC, fast.ICount, fast.Branches, slow.PC, slow.ICount, slow.Branches)
	}
	if fast.Halted != slow.Halted || fast.Waiting != slow.Waiting || fast.IntEnabled != slow.IntEnabled {
		t.Fatalf("%s: flags diverge: sprint halt=%v wait=%v int=%v, step halt=%v wait=%v int=%v",
			label, fast.Halted, fast.Waiting, fast.IntEnabled, slow.Halted, slow.Waiting, slow.IntEnabled)
	}
	if fast.PendingIRQs() != slow.PendingIRQs() {
		t.Fatalf("%s: pending IRQs diverge: sprint %x, step %x", label, fast.PendingIRQs(), slow.PendingIRQs())
	}
	if !bytes.Equal(fast.Mem, slow.Mem) {
		for i := range fast.Mem {
			if fast.Mem[i] != slow.Mem[i] {
				t.Fatalf("%s: memory diverges at 0x%x: sprint %02x, step %02x", label, i, fast.Mem[i], slow.Mem[i])
			}
		}
	}
	ff, sf := fast.FaultInfo, slow.FaultInfo
	switch {
	case (ff == nil) != (sf == nil):
		t.Fatalf("%s: fault diverges: sprint %v, step %v", label, ff, sf)
	case ff != nil && *ff != *sf:
		t.Fatalf("%s: fault diverges: sprint %+v, step %+v", label, *ff, *sf)
	}
}

// TestSprintMatchesStepRandomPrograms throws randomized instruction soup —
// including wild jumps, faulting memory accesses, interrupt flag churn and
// stores that land in the code page — at both interpreter paths and
// requires bit-identical machine state after every chunk. IRQs are raised
// at scripted boundaries so delivery goes through both paths too.
func TestSprintMatchesStepRandomPrograms(t *testing.T) {
	const (
		progInstrs = 480 // fills most of the first code page
		chunks     = 200
		chunkLen   = 97 // deliberately not a multiple of anything
	)
	rng := uint64(0x9E3779B97F4A7C15)
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	for trial := 0; trial < 24; trial++ {
		prog := make([]Instr, progInstrs)
		for i := range prog {
			r := next()
			op := Opcode(r % uint64(opCount))
			if op == OpHlt && r&0xF0 != 0 {
				op = OpAddi // halting every few instructions proves nothing
			}
			ins := Instr{Op: op, Ra: uint8(next() % 16), Rb: uint8(next() % 16), Rc: uint8(next() % 16)}
			switch next() % 4 {
			case 0: // valid aligned code address (jump/call targets)
				ins.Imm = CodeBase + uint32(next()%progInstrs)*InstrSize
			case 1: // valid data address
				ins.Imm = 32*1024 + uint32(next()%8192)
			case 2: // small immediate (also a port number for in/out)
				ins.Imm = uint32(next() % 97)
			default: // hostile: wild address / misaligning offset
				ins.Imm = uint32(next())
			}
			prog[i] = ins
		}
		var code []byte
		for _, ins := range prog {
			code = ins.Encode(code)
		}
		var vectors [NumIRQs]uint32
		vectors[IRQTimer] = CodeBase
		vectors[IRQInput] = CodeBase + 16*InstrSize
		fast, slow := cloneForDiff(t, code, vectors)
		// Seed registers so loads/stores have somewhere interesting to go.
		for r := 0; r < NumRegs-1; r++ {
			v := uint32(next())
			fast.Regs[r], slow.Regs[r] = v, v
		}
		// Zero a few base registers so store [rX+imm] with a code-address
		// immediate lands in the executing page — the self-modifying path
		// both interpreters must agree on.
		for _, r := range []int{0, 5, 9} {
			fast.Regs[r], slow.Regs[r] = 0, 0
		}
		for c := 0; c < chunks; c++ {
			if c%7 == 3 {
				fast.RaiseIRQ(IRQTimer)
				slow.RaiseIRQ(IRQTimer)
			}
			if c%11 == 5 {
				fast.RaiseIRQ(IRQInput)
				slow.RaiseIRQ(IRQInput)
			}
			nf := fast.Run(chunkLen)
			ns := slow.Run(chunkLen)
			if nf != ns {
				t.Fatalf("trial %d chunk %d: sprint retired %d, step retired %d", trial, c, nf, ns)
			}
			diffState(t, fmt.Sprintf("trial %d chunk %d", trial, c), fast, slow)
			if fast.Halted || (fast.Waiting && fast.PendingIRQs() == 0 && c%7 != 2) {
				break
			}
		}
	}
}

// TestSprintSelfModifyingCode runs a guest that repeatedly patches the
// immediate of one of its own instructions — through the interpreter's
// store path, in the page it is executing from — and checks the sprint
// path both matches Step exactly and observes every patched value: a stale
// predecode would keep executing the original immediate.
func TestSprintSelfModifyingCode(t *testing.T) {
	// r1: loop counter. The patch site is instruction 2 (movi r3, 0); each
	// iteration stores the counter into its immediate word, so the value
	// r3 carries — accumulated into r5 — proves the re-decode happened.
	patchSite := uint32(CodeBase + 2*InstrSize)
	code := asm(
		Instr{Op: OpMovi, Ra: 1, Imm: 0},                     // 0: counter = 0
		Instr{Op: OpMovi, Ra: 5, Imm: 0},                     // 1: acc = 0
		Instr{Op: OpMovi, Ra: 3, Imm: 0},                     // 2: PATCH SITE: r3 = imm
		Instr{Op: OpAdd, Ra: 5, Rb: 5, Rc: 3},                // 3: acc += r3
		Instr{Op: OpMovi, Ra: 6, Imm: patchSite + 4},         // 4: address of the imm word
		Instr{Op: OpAddi, Ra: 7, Rb: 1, Imm: 1},              // 5: r7 = counter + 1
		Instr{Op: OpStore, Ra: 6, Rb: 7},                     // 6: mem32[patchSite+4] = r7
		Instr{Op: OpAddi, Ra: 1, Rb: 1, Imm: 1},              // 7: counter++
		Instr{Op: OpMovi, Ra: 8, Imm: 10},                    // 8
		Instr{Op: OpLtu, Ra: 9, Rb: 1, Rc: 8},                // 9: counter < 10 ?
		Instr{Op: OpJnz, Ra: 9, Imm: CodeBase + 2*InstrSize}, // 10: loop to patch site
		Instr{Op: OpHlt},                                     // 11
	)
	fast, slow := cloneForDiff(t, code, [NumIRQs]uint32{})
	fast.Run(10_000)
	slow.Run(10_000)
	diffState(t, "self-modifying", fast, slow)
	if !fast.Halted || fast.FaultInfo != nil {
		t.Fatalf("guest did not halt cleanly: halted=%v fault=%v", fast.Halted, fast.FaultInfo)
	}
	// Iteration i executes the patch site with imm = i (patched by the
	// previous iteration), so acc = 0+1+...+9.
	if want := uint32(45); fast.Regs[5] != want {
		t.Fatalf("acc = %d, want %d; the predecode cache served stale code", fast.Regs[5], want)
	}
}

// TestSprintStackPointerAliasing pins the operand-order corner cases where
// the stack op's register IS the stack pointer: `push sp` stores the
// pre-decrement SP (Step evaluates the operand before push() mutates it)
// and `pop sp` ends with the loaded value, not value+4 (Step's destination
// assignment overwrites pop()'s increment). Both paths must agree, on the
// happy path and on the faulting-pop path.
func TestSprintStackPointerAliasing(t *testing.T) {
	progs := map[string][]Instr{
		"push-sp": {
			{Op: OpPush, Ra: RegSP},
			{Op: OpPop, Ra: 1},
			{Op: OpHlt},
		},
		"pop-sp": {
			{Op: OpMovi, Ra: 2, Imm: 40_000},
			{Op: OpPush, Ra: 2},
			{Op: OpPop, Ra: RegSP}, // SP becomes the loaded value
			{Op: OpPush, Ra: 2},    // lands at 40_000-4 if semantics match
			{Op: OpHlt},
		},
		"pop-sp-fault": {
			{Op: OpMovi, Ra: RegSP, Imm: 0xFFFFFFF0}, // out-of-range stack
			{Op: OpPop, Ra: RegSP},                   // faulting load, aliased dest
			{Op: OpHlt},
		},
	}
	for name, prog := range progs {
		fast, slow := cloneForDiff(t, asm(prog...), [NumIRQs]uint32{})
		fast.Run(100)
		slow.Run(100)
		diffState(t, name, fast, slow)
	}
}

// TestPredecodeInvalidationHostWrite checks that host-side patching between
// runs (how cheats and snapshot restores mutate memory) invalidates the
// predecode cache.
func TestPredecodeInvalidationHostWrite(t *testing.T) {
	code := asm(
		Instr{Op: OpMovi, Ra: 1, Imm: 7}, // 0: patched below
		Instr{Op: OpJmp, Imm: CodeBase},  // 1: spin
	)
	m := bootCode(t, code, nil)
	m.Run(100) // populates the predecode cache
	if m.Regs[1] != 7 {
		t.Fatalf("r1 = %d before patch, want 7", m.Regs[1])
	}
	patched := Instr{Op: OpMovi, Ra: 1, Imm: 99}.Encode(nil)
	if err := m.WriteBytes(CodeBase, patched); err != nil {
		t.Fatal(err)
	}
	m.Run(100)
	if m.Regs[1] != 99 {
		t.Fatalf("r1 = %d after patch, want 99; host write did not invalidate the predecode cache", m.Regs[1])
	}
}

// TestRunUntilLandsOnBound checks the sprint stops at exactly the requested
// retired-instruction count — the property landmark-bounded replay relies
// on.
func TestRunUntilLandsOnBound(t *testing.T) {
	code := asm(
		Instr{Op: OpAddi, Ra: 1, Rb: 1, Imm: 1},
		Instr{Op: OpAddi, Ra: 2, Rb: 2, Imm: 3},
		Instr{Op: OpJmp, Imm: CodeBase},
	)
	m := bootCode(t, code, nil)
	for _, bound := range []uint64{1, 2, 3, 5, 100, 101, 4096, 4097} {
		ran := m.RunUntil(bound)
		if m.ICount != bound {
			t.Fatalf("RunUntil(%d): icount = %d", bound, m.ICount)
		}
		if ran != bound-(m.ICount-ran) && m.ICount-ran > bound {
			t.Fatalf("RunUntil(%d): retired %d from %d", bound, ran, m.ICount-ran)
		}
	}
	// A bound at or below the current count runs nothing.
	if ran := m.RunUntil(10); ran != 0 {
		t.Fatalf("RunUntil(past bound) retired %d instructions", ran)
	}
}
