package vm

import (
	"bytes"
	"fmt"
	"testing"
)

// cloneForDiff boots two machines from the same image and device seed: one
// on the predecoded sprint path, one forced onto the careful Step path.
func cloneForDiff(t *testing.T, code []byte, vectors [NumIRQs]uint32) (fast, slow *Machine) {
	t.Helper()
	img := &Image{Name: "diff", Code: code, Entry: CodeBase, MemSize: 64 * 1024, Vectors: vectors}
	boot := func() *Machine {
		m, err := img.Boot(NewDeviceSet(42))
		if err != nil {
			t.Fatalf("boot: %v", err)
		}
		return m
	}
	fast, slow = boot(), boot()
	slow.DisablePredecode = true
	return fast, slow
}

// diffState fails the test on the first field where the two machines
// disagree.
func diffState(t *testing.T, label string, fast, slow *Machine) {
	t.Helper()
	if fast.Regs != slow.Regs {
		t.Fatalf("%s: regs diverge: sprint %v, step %v", label, fast.Regs, slow.Regs)
	}
	if fast.PC != slow.PC || fast.ICount != slow.ICount || fast.Branches != slow.Branches {
		t.Fatalf("%s: position diverges: sprint pc=0x%x ic=%d br=%d, step pc=0x%x ic=%d br=%d",
			label, fast.PC, fast.ICount, fast.Branches, slow.PC, slow.ICount, slow.Branches)
	}
	if fast.Halted != slow.Halted || fast.Waiting != slow.Waiting || fast.IntEnabled != slow.IntEnabled {
		t.Fatalf("%s: flags diverge: sprint halt=%v wait=%v int=%v, step halt=%v wait=%v int=%v",
			label, fast.Halted, fast.Waiting, fast.IntEnabled, slow.Halted, slow.Waiting, slow.IntEnabled)
	}
	if fast.PendingIRQs() != slow.PendingIRQs() {
		t.Fatalf("%s: pending IRQs diverge: sprint %x, step %x", label, fast.PendingIRQs(), slow.PendingIRQs())
	}
	if !bytes.Equal(fast.Mem, slow.Mem) {
		for i := range fast.Mem {
			if fast.Mem[i] != slow.Mem[i] {
				t.Fatalf("%s: memory diverges at 0x%x: sprint %02x, step %02x", label, i, fast.Mem[i], slow.Mem[i])
			}
		}
	}
	ff, sf := fast.FaultInfo, slow.FaultInfo
	switch {
	case (ff == nil) != (sf == nil):
		t.Fatalf("%s: fault diverges: sprint %v, step %v", label, ff, sf)
	case ff != nil && *ff != *sf:
		t.Fatalf("%s: fault diverges: sprint %+v, step %+v", label, *ff, *sf)
	}
}

// TestSprintMatchesStepRandomPrograms throws randomized instruction soup —
// including wild jumps, faulting memory accesses, interrupt flag churn and
// stores that land in the code page — at both interpreter paths and
// requires bit-identical machine state after every chunk. IRQs are raised
// at scripted boundaries so delivery goes through both paths too.
func TestSprintMatchesStepRandomPrograms(t *testing.T) {
	const (
		progInstrs = 480 // fills most of the first code page
		chunks     = 200
		chunkLen   = 97 // deliberately not a multiple of anything
	)
	rng := uint64(0x9E3779B97F4A7C15)
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	for trial := 0; trial < 24; trial++ {
		prog := make([]Instr, progInstrs)
		for i := range prog {
			r := next()
			op := Opcode(r % uint64(opCount))
			if op == OpHlt && r&0xF0 != 0 {
				op = OpAddi // halting every few instructions proves nothing
			}
			ins := Instr{Op: op, Ra: uint8(next() % 16), Rb: uint8(next() % 16), Rc: uint8(next() % 16)}
			switch next() % 4 {
			case 0: // valid aligned code address (jump/call targets)
				ins.Imm = CodeBase + uint32(next()%progInstrs)*InstrSize
			case 1: // valid data address
				ins.Imm = 32*1024 + uint32(next()%8192)
			case 2: // small immediate (also a port number for in/out)
				ins.Imm = uint32(next() % 97)
			default: // hostile: wild address / misaligning offset
				ins.Imm = uint32(next())
			}
			prog[i] = ins
		}
		var code []byte
		for _, ins := range prog {
			code = ins.Encode(code)
		}
		var vectors [NumIRQs]uint32
		vectors[IRQTimer] = CodeBase
		vectors[IRQInput] = CodeBase + 16*InstrSize
		fast, slow := cloneForDiff(t, code, vectors)
		// Seed registers so loads/stores have somewhere interesting to go.
		for r := 0; r < NumRegs-1; r++ {
			v := uint32(next())
			fast.Regs[r], slow.Regs[r] = v, v
		}
		// Zero a few base registers so store [rX+imm] with a code-address
		// immediate lands in the executing page — the self-modifying path
		// both interpreters must agree on.
		for _, r := range []int{0, 5, 9} {
			fast.Regs[r], slow.Regs[r] = 0, 0
		}
		for c := 0; c < chunks; c++ {
			if c%7 == 3 {
				fast.RaiseIRQ(IRQTimer)
				slow.RaiseIRQ(IRQTimer)
			}
			if c%11 == 5 {
				fast.RaiseIRQ(IRQInput)
				slow.RaiseIRQ(IRQInput)
			}
			nf := fast.Run(chunkLen)
			ns := slow.Run(chunkLen)
			if nf != ns {
				t.Fatalf("trial %d chunk %d: sprint retired %d, step retired %d", trial, c, nf, ns)
			}
			diffState(t, fmt.Sprintf("trial %d chunk %d", trial, c), fast, slow)
			if fast.Halted || (fast.Waiting && fast.PendingIRQs() == 0 && c%7 != 2) {
				break
			}
		}
	}
}

// TestSprintSelfModifyingCode runs a guest that repeatedly patches the
// immediate of one of its own instructions — through the interpreter's
// store path, in the page it is executing from — and checks the sprint
// path both matches Step exactly and observes every patched value: a stale
// predecode would keep executing the original immediate.
func TestSprintSelfModifyingCode(t *testing.T) {
	// r1: loop counter. The patch site is instruction 2 (movi r3, 0); each
	// iteration stores the counter into its immediate word, so the value
	// r3 carries — accumulated into r5 — proves the re-decode happened.
	patchSite := uint32(CodeBase + 2*InstrSize)
	code := asm(
		Instr{Op: OpMovi, Ra: 1, Imm: 0},                     // 0: counter = 0
		Instr{Op: OpMovi, Ra: 5, Imm: 0},                     // 1: acc = 0
		Instr{Op: OpMovi, Ra: 3, Imm: 0},                     // 2: PATCH SITE: r3 = imm
		Instr{Op: OpAdd, Ra: 5, Rb: 5, Rc: 3},                // 3: acc += r3
		Instr{Op: OpMovi, Ra: 6, Imm: patchSite + 4},         // 4: address of the imm word
		Instr{Op: OpAddi, Ra: 7, Rb: 1, Imm: 1},              // 5: r7 = counter + 1
		Instr{Op: OpStore, Ra: 6, Rb: 7},                     // 6: mem32[patchSite+4] = r7
		Instr{Op: OpAddi, Ra: 1, Rb: 1, Imm: 1},              // 7: counter++
		Instr{Op: OpMovi, Ra: 8, Imm: 10},                    // 8
		Instr{Op: OpLtu, Ra: 9, Rb: 1, Rc: 8},                // 9: counter < 10 ?
		Instr{Op: OpJnz, Ra: 9, Imm: CodeBase + 2*InstrSize}, // 10: loop to patch site
		Instr{Op: OpHlt},                                     // 11
	)
	fast, slow := cloneForDiff(t, code, [NumIRQs]uint32{})
	fast.Run(10_000)
	slow.Run(10_000)
	diffState(t, "self-modifying", fast, slow)
	if !fast.Halted || fast.FaultInfo != nil {
		t.Fatalf("guest did not halt cleanly: halted=%v fault=%v", fast.Halted, fast.FaultInfo)
	}
	// Iteration i executes the patch site with imm = i (patched by the
	// previous iteration), so acc = 0+1+...+9.
	if want := uint32(45); fast.Regs[5] != want {
		t.Fatalf("acc = %d, want %d; the predecode cache served stale code", fast.Regs[5], want)
	}
}

// TestSprintStackPointerAliasing pins the operand-order corner cases where
// the stack op's register IS the stack pointer: `push sp` stores the
// pre-decrement SP (Step evaluates the operand before push() mutates it)
// and `pop sp` ends with the loaded value, not value+4 (Step's destination
// assignment overwrites pop()'s increment). Both paths must agree, on the
// happy path and on the faulting-pop path.
func TestSprintStackPointerAliasing(t *testing.T) {
	progs := map[string][]Instr{
		"push-sp": {
			{Op: OpPush, Ra: RegSP},
			{Op: OpPop, Ra: 1},
			{Op: OpHlt},
		},
		"pop-sp": {
			{Op: OpMovi, Ra: 2, Imm: 40_000},
			{Op: OpPush, Ra: 2},
			{Op: OpPop, Ra: RegSP}, // SP becomes the loaded value
			{Op: OpPush, Ra: 2},    // lands at 40_000-4 if semantics match
			{Op: OpHlt},
		},
		"pop-sp-fault": {
			{Op: OpMovi, Ra: RegSP, Imm: 0xFFFFFFF0}, // out-of-range stack
			{Op: OpPop, Ra: RegSP},                   // faulting load, aliased dest
			{Op: OpHlt},
		},
	}
	for name, prog := range progs {
		fast, slow := cloneForDiff(t, asm(prog...), [NumIRQs]uint32{})
		fast.Run(100)
		slow.Run(100)
		diffState(t, name, fast, slow)
	}
}

// TestPredecodeInvalidationHostWrite checks that host-side patching between
// runs (how cheats and snapshot restores mutate memory) invalidates the
// predecode cache.
func TestPredecodeInvalidationHostWrite(t *testing.T) {
	code := asm(
		Instr{Op: OpMovi, Ra: 1, Imm: 7}, // 0: patched below
		Instr{Op: OpJmp, Imm: CodeBase},  // 1: spin
	)
	m := bootCode(t, code, nil)
	m.Run(100) // populates the predecode cache
	if m.Regs[1] != 7 {
		t.Fatalf("r1 = %d before patch, want 7", m.Regs[1])
	}
	patched := Instr{Op: OpMovi, Ra: 1, Imm: 99}.Encode(nil)
	if err := m.WriteBytes(CodeBase, patched); err != nil {
		t.Fatal(err)
	}
	m.Run(100)
	if m.Regs[1] != 99 {
		t.Fatalf("r1 = %d after patch, want 99; host write did not invalidate the predecode cache", m.Regs[1])
	}
}

// TestRunUntilLandsOnBound checks the sprint stops at exactly the requested
// retired-instruction count — the property landmark-bounded replay relies
// on.
func TestRunUntilLandsOnBound(t *testing.T) {
	code := asm(
		Instr{Op: OpAddi, Ra: 1, Rb: 1, Imm: 1},
		Instr{Op: OpAddi, Ra: 2, Rb: 2, Imm: 3},
		Instr{Op: OpJmp, Imm: CodeBase},
	)
	m := bootCode(t, code, nil)
	for _, bound := range []uint64{1, 2, 3, 5, 100, 101, 4096, 4097} {
		ran := m.RunUntil(bound)
		if m.ICount != bound {
			t.Fatalf("RunUntil(%d): icount = %d", bound, m.ICount)
		}
		if ran != bound-(m.ICount-ran) && m.ICount-ran > bound {
			t.Fatalf("RunUntil(%d): retired %d from %d", bound, ran, m.ICount-ran)
		}
	}
	// A bound at or below the current count runs nothing.
	if ran := m.RunUntil(10); ran != 0 {
		t.Fatalf("RunUntil(past bound) retired %d instructions", ran)
	}
}

// cloneForDiff3 boots three machines from the same image: one on the fused
// sprint path, one on the predecode-only sprint (fusion disabled), one on
// the careful Step path — the three interpreter configurations that must
// retire bit-identical state.
func cloneForDiff3(t *testing.T, code []byte, vectors [NumIRQs]uint32) (fused, unfused, step *Machine) {
	t.Helper()
	img := &Image{Name: "diff3", Code: code, Entry: CodeBase, MemSize: 64 * 1024, Vectors: vectors}
	boot := func() *Machine {
		m, err := img.Boot(NewDeviceSet(42))
		if err != nil {
			t.Fatalf("boot: %v", err)
		}
		return m
	}
	fused, unfused, step = boot(), boot(), boot()
	unfused.DisableFusion = true
	step.DisablePredecode = true
	return fused, unfused, step
}

// TestFusionMatchesUnfusedRandomPrograms throws the same randomized
// instruction soup as TestSprintMatchesStepRandomPrograms — wild jumps,
// faulting accesses, interrupt churn, stores into the executing code page —
// at the fused sprint, the predecode-only sprint, and Step, and requires
// bit-identical state after every chunk. Chunk lengths stay >= 2 so the
// fused handlers actually run (a 1-instruction budget always falls back to
// the Step tail).
func TestFusionMatchesUnfusedRandomPrograms(t *testing.T) {
	const (
		progInstrs = 480
		chunks     = 160
		chunkLen   = 61
	)
	rng := uint64(0xA076_1D64_78BD_642F)
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	for trial := 0; trial < 16; trial++ {
		prog := make([]Instr, progInstrs)
		for i := range prog {
			r := next()
			op := Opcode(r % uint64(opCount))
			if op == OpHlt && r&0xF0 != 0 {
				op = OpAddi
			}
			ins := Instr{Op: op, Ra: uint8(next() % 16), Rb: uint8(next() % 16), Rc: uint8(next() % 16)}
			switch next() % 4 {
			case 0:
				ins.Imm = CodeBase + uint32(next()%progInstrs)*InstrSize
			case 1:
				ins.Imm = 32*1024 + uint32(next()%8192)
			case 2:
				ins.Imm = uint32(next() % 97)
			default:
				ins.Imm = uint32(next())
			}
			prog[i] = ins
		}
		var vectors [NumIRQs]uint32
		vectors[IRQTimer] = CodeBase
		vectors[IRQInput] = CodeBase + 16*InstrSize
		fused, unfused, step := cloneForDiff3(t, asm(prog...), vectors)
		for r := 0; r < NumRegs-1; r++ {
			v := uint32(next())
			fused.Regs[r], unfused.Regs[r], step.Regs[r] = v, v, v
		}
		for _, r := range []int{0, 5, 9} {
			fused.Regs[r], unfused.Regs[r], step.Regs[r] = 0, 0, 0
		}
		for c := 0; c < chunks; c++ {
			if c%7 == 3 {
				fused.RaiseIRQ(IRQTimer)
				unfused.RaiseIRQ(IRQTimer)
				step.RaiseIRQ(IRQTimer)
			}
			if c%11 == 5 {
				fused.RaiseIRQ(IRQInput)
				unfused.RaiseIRQ(IRQInput)
				step.RaiseIRQ(IRQInput)
			}
			nf, nu, ns := fused.Run(chunkLen), unfused.Run(chunkLen), step.Run(chunkLen)
			if nf != ns || nu != ns {
				t.Fatalf("trial %d chunk %d: fused retired %d, unfused %d, step %d", trial, c, nf, nu, ns)
			}
			diffState(t, fmt.Sprintf("trial %d chunk %d fused-vs-step", trial, c), fused, step)
			diffState(t, fmt.Sprintf("trial %d chunk %d unfused-vs-step", trial, c), unfused, step)
			if fused.Halted || (fused.Waiting && fused.PendingIRQs() == 0 && c%7 != 2) {
				break
			}
		}
		if unfused.FusedPairs != 0 {
			t.Fatalf("trial %d: DisableFusion machine retired %d fused pairs", trial, unfused.FusedPairs)
		}
	}
}

// TestFusionPageBoundaryNoFuse pins the page-edge barrier: a fusable pair
// whose first half sits in a page's last slot must not fuse (the second
// half lives in another page and can be invalidated independently), while
// the identical pair wholly inside one page does.
func TestFusionPageBoundaryNoFuse(t *testing.T) {
	prog := make([]Instr, instrsPerPage+2)
	for i := range prog {
		prog[i] = Instr{Op: OpNop} // not fusable in either position
	}
	prog[instrsPerPage-1] = Instr{Op: OpMovi, Ra: 1, Imm: 5} // last slot of page 0
	prog[instrsPerPage] = Instr{Op: OpMovi, Ra: 2, Imm: 7}   // first slot of page 1
	prog[instrsPerPage+1] = Instr{Op: OpHlt}
	img := &Image{Name: "edge", Code: asm(prog...), Entry: CodeBase, MemSize: 64 * 1024}
	m, err := img.Boot(nil)
	if err != nil {
		t.Fatalf("boot: %v", err)
	}
	m.Run(uint64(len(prog)) + 10)
	if !m.Halted || m.FaultInfo != nil {
		t.Fatalf("guest did not halt cleanly: halted=%v fault=%v", m.Halted, m.FaultInfo)
	}
	if m.Regs[1] != 5 || m.Regs[2] != 7 {
		t.Fatalf("r1=%d r2=%d, want 5 and 7", m.Regs[1], m.Regs[2])
	}
	if m.FusedPairs != 0 {
		t.Fatalf("pair straddling the page edge fused (%d pairs retired)", m.FusedPairs)
	}
	// Control: the same movi/movi pair wholly inside one page does fuse.
	ctl := bootCode(t, asm(
		Instr{Op: OpNop},
		Instr{Op: OpMovi, Ra: 1, Imm: 5},
		Instr{Op: OpMovi, Ra: 2, Imm: 7},
		Instr{Op: OpHlt},
	), nil)
	ctl.Run(10)
	if ctl.FusedPairs == 0 {
		t.Fatal("in-page movi/movi pair did not fuse; the ablation above proves nothing")
	}
	if ctl.Regs[1] != 5 || ctl.Regs[2] != 7 {
		t.Fatalf("control: r1=%d r2=%d, want 5 and 7", ctl.Regs[1], ctl.Regs[2])
	}
}

// TestFusionBranchTargetBarrier pins the branch-target barrier: when an
// in-page jmp targets the would-be second half of a pair, the pair must not
// fuse, and the jump must land on the original instruction.
func TestFusionBranchTargetBarrier(t *testing.T) {
	// slot 0 jumps over the pair; slot 4 jumps back into its second half.
	code := asm(
		Instr{Op: OpJmp, Imm: CodeBase + 4*InstrSize}, // 0: -> slot 4
		Instr{Op: OpMovi, Ra: 1, Imm: 11},             // 1: never executes
		Instr{Op: OpMovi, Ra: 2, Imm: 22},             // 2: jump target (second half of would-be pair 1+2)
		Instr{Op: OpHlt},                              // 3
		Instr{Op: OpJmp, Imm: CodeBase + 2*InstrSize}, // 4: -> slot 2
	)
	fast, slow := cloneForDiff(t, code, [NumIRQs]uint32{})
	fast.Run(100)
	slow.Run(100)
	diffState(t, "branch-target barrier", fast, slow)
	if !fast.Halted || fast.Regs[1] != 0 || fast.Regs[2] != 22 {
		t.Fatalf("halted=%v r1=%d r2=%d, want true 0 22", fast.Halted, fast.Regs[1], fast.Regs[2])
	}
	if fast.FusedPairs != 0 {
		t.Fatalf("pair with a branch-targeted second half fused (%d pairs retired)", fast.FusedPairs)
	}
}

// TestFusionCrossPageJumpIntoPairSecondSlot covers the barrier fusePage
// cannot see: a jump from another page landing on the second half of a
// fused pair. Slot preservation (only first halves are rewritten) must make
// the landing execute the original instruction.
func TestFusionCrossPageJumpIntoPairSecondSlot(t *testing.T) {
	prog := make([]Instr, instrsPerPage+1)
	for i := range prog {
		prog[i] = Instr{Op: OpNop}
	}
	prog[0] = Instr{Op: OpJmp, Imm: CodeBase + uint32(instrsPerPage)*InstrSize} // -> page 1 slot 0
	prog[1] = Instr{Op: OpMovi, Ra: 1, Imm: 11}                                 // first half of fused pair
	prog[2] = Instr{Op: OpMovi, Ra: 2, Imm: 22}                                 // second half; cross-page jump target
	prog[3] = Instr{Op: OpHlt}
	prog[instrsPerPage] = Instr{Op: OpJmp, Imm: CodeBase + 2*InstrSize} // page 1: -> page 0 slot 2
	fast, slow := cloneForDiff(t, asm(prog...), [NumIRQs]uint32{})
	fast.Run(100)
	slow.Run(100)
	diffState(t, "cross-page jump into pair", fast, slow)
	if !fast.Halted || fast.Regs[1] != 0 || fast.Regs[2] != 22 {
		t.Fatalf("halted=%v r1=%d r2=%d, want true 0 22", fast.Halted, fast.Regs[1], fast.Regs[2])
	}
}

// TestFusionIRQReturnsIntoPairSecondSlot pins the other mid-pair entry: a
// budget stop lands the PC on the second half of a fused pair (the Step
// tail retires the first half alone), an IRQ is delivered there, and the
// handler's iret returns into the middle of the pair. All three
// configurations must retire identical state throughout.
func TestFusionIRQReturnsIntoPairSecondSlot(t *testing.T) {
	handler := uint32(CodeBase + 16*InstrSize)
	prog := make([]Instr, 20)
	for i := range prog {
		prog[i] = Instr{Op: OpNop}
	}
	prog[0] = Instr{Op: OpMovi, Ra: 1, Imm: 1} // fused pair: slots 0+1
	prog[1] = Instr{Op: OpMovi, Ra: 2, Imm: 2}
	prog[2] = Instr{Op: OpMovi, Ra: 3, Imm: 3} // fused pair: slots 2+3
	prog[3] = Instr{Op: OpMovi, Ra: 4, Imm: 4}
	prog[4] = Instr{Op: OpHlt}
	prog[16] = Instr{Op: OpAddi, Ra: 6, Rb: 6, Imm: 1} // handler
	prog[17] = Instr{Op: OpIret}
	var vectors [NumIRQs]uint32
	vectors[IRQTimer] = handler
	fused, unfused, step := cloneForDiff3(t, asm(prog...), vectors)
	machines := []*Machine{fused, unfused, step}
	// Retire exactly one instruction: the fused machine must stop with its
	// PC on the second half of the slots 0+1 pair. Interrupts are disabled
	// at boot; enable delivery without spending an instruction on sti.
	for _, m := range machines {
		m.IntEnabled = true
		m.Run(1)
	}
	diffState(t, "mid-pair stop fused-vs-step", fused, step)
	diffState(t, "mid-pair stop unfused-vs-step", unfused, step)
	if fused.PC != CodeBase+InstrSize {
		t.Fatalf("after Run(1): pc=0x%x, want 0x%x (second half of the pair)", fused.PC, CodeBase+InstrSize)
	}
	// Deliver an IRQ there: the return address is mid-pair, so iret lands
	// on the preserved second half.
	for _, m := range machines {
		m.RaiseIRQ(IRQTimer)
		m.Run(100)
	}
	diffState(t, "iret into pair fused-vs-step", fused, step)
	diffState(t, "iret into pair unfused-vs-step", unfused, step)
	if !fused.Halted || fused.FaultInfo != nil {
		t.Fatalf("guest did not halt cleanly: halted=%v fault=%v", fused.Halted, fused.FaultInfo)
	}
	for r, want := range map[int]uint32{1: 1, 2: 2, 3: 3, 4: 4, 6: 1} {
		if fused.Regs[r] != want {
			t.Fatalf("r%d=%d, want %d", r, fused.Regs[r], want)
		}
	}
}

// quadSeq builds the four-instruction body of one quad superinstruction,
// plus the setup that makes it executable (stack pointer, seed data).
type quadSeq struct {
	name  string
	setup []Instr // runs before the sequence; must not branch
	body  [4]Instr
}

func quadSeqs() []quadSeq {
	sp := Instr{Op: OpMovi, Ra: RegSP, Imm: 48 * 1024}
	seed := Instr{Op: OpPush, Ra: 6} // stack data for the pop-leading quads
	return []quadSeq{
		{"load.push.movi.mov", []Instr{sp}, [4]Instr{
			{Op: OpLoad, Ra: 1, Rb: 0, Imm: 40 * 1024},
			{Op: OpPush, Ra: 2},
			{Op: OpMovi, Ra: 3, Imm: 7},
			{Op: OpMov, Ra: 4, Rb: 3},
		}},
		{"push.movi.mov.pop", []Instr{sp}, [4]Instr{
			{Op: OpPush, Ra: 1},
			{Op: OpMovi, Ra: 2, Imm: 9},
			{Op: OpMov, Ra: 3, Rb: 2},
			{Op: OpPop, Ra: 4},
		}},
		{"movi.mov.pop.lts", []Instr{sp, seed}, [4]Instr{
			{Op: OpMovi, Ra: 1, Imm: 3},
			{Op: OpMov, Ra: 2, Rb: 1},
			{Op: OpPop, Ra: 3},
			{Op: OpLts, Ra: 4, Rb: 2, Rc: 3},
		}},
		{"movi.mov.pop.add", []Instr{sp, seed}, [4]Instr{
			{Op: OpMovi, Ra: 1, Imm: 3},
			{Op: OpMov, Ra: 2, Rb: 1},
			{Op: OpPop, Ra: 3},
			{Op: OpAdd, Ra: 4, Rb: 2, Rc: 3},
		}},
		{"movi.mov.pop.mul", []Instr{sp, seed}, [4]Instr{
			{Op: OpMovi, Ra: 1, Imm: 3},
			{Op: OpMov, Ra: 2, Rb: 1},
			{Op: OpPop, Ra: 3},
			{Op: OpMul, Ra: 4, Rb: 2, Rc: 3},
		}},
		{"mov.pop.add.store", []Instr{sp, seed}, [4]Instr{
			{Op: OpMov, Ra: 1, Rb: 6},
			{Op: OpPop, Ra: 2},
			{Op: OpAdd, Ra: 3, Rb: 1, Rc: 2},
			{Op: OpStore, Ra: 0, Rb: 3, Imm: 40 * 1024},
		}},
		{"pop.add.store.jmp", []Instr{sp, seed}, [4]Instr{
			{Op: OpPop, Ra: 1},
			{Op: OpAdd, Ra: 2, Rb: 1, Rc: 1},
			{Op: OpStore, Ra: 0, Rb: 2, Imm: 40 * 1024},
			{Op: OpJmp}, // Imm patched to the halt slot by the test
		}},
		{"pop.mul.push.movi", []Instr{sp, seed}, [4]Instr{
			{Op: OpPop, Ra: 1},
			{Op: OpMul, Ra: 2, Rb: 1, Rc: 1},
			{Op: OpPush, Ra: 2},
			{Op: OpMovi, Ra: 3, Imm: 5},
		}},
		{"add.store.load.push", []Instr{sp}, [4]Instr{
			{Op: OpAdd, Ra: 1, Rb: 2, Rc: 3},
			{Op: OpStore, Ra: 0, Rb: 1, Imm: 40 * 1024},
			{Op: OpLoad, Ra: 4, Rb: 0, Imm: 40 * 1024},
			{Op: OpPush, Ra: 4},
		}},
	}
}

// TestQuadFusionDifferential pins every quad handler against Step and the
// fusion-off sprint: each quad sequence runs under chunk budgets from 1 up
// (so landmark/budget stops land on every constituent boundary, exercising
// the Step tail fallback) and the three paths must retire bit-identical
// state. A full-budget run must actually dispatch the quad.
func TestQuadFusionDifferential(t *testing.T) {
	for _, q := range quadSeqs() {
		// setup... nop [quad body] hlt — the nop is not fusable in either
		// position, so the greedy pair scan always reaches the body
		// phase-aligned regardless of how the setup paired up.
		prog := append([]Instr{}, q.setup...)
		prog = append(prog, Instr{Op: OpNop})
		bodyAt := len(prog)
		prog = append(prog, q.body[:]...)
		haltAt := len(prog)
		prog = append(prog, Instr{Op: OpHlt})
		if prog[bodyAt+3].Op == OpJmp {
			prog[bodyAt+3].Imm = CodeBase + uint32(haltAt)*InstrSize
		}
		for _, chunk := range []uint64{1, 2, 3, 4, 5, 64} {
			fused, unfused, step := cloneForDiff3(t, asm(prog...), [NumIRQs]uint32{})
			for r := 1; r < NumRegs-1; r++ {
				v := uint32(r * 1000003)
				fused.Regs[r], unfused.Regs[r], step.Regs[r] = v, v, v
			}
			for !step.Halted {
				nf, nu, ns := fused.Run(chunk), unfused.Run(chunk), step.Run(chunk)
				if nf != ns || nu != ns {
					t.Fatalf("%s chunk %d: fused retired %d, unfused %d, step %d", q.name, chunk, nf, nu, ns)
				}
				diffState(t, fmt.Sprintf("%s chunk %d fused-vs-step", q.name, chunk), fused, step)
				diffState(t, fmt.Sprintf("%s chunk %d unfused-vs-step", q.name, chunk), unfused, step)
				if step.Halted {
					break
				}
				if ns == 0 {
					t.Fatalf("%s chunk %d: no progress", q.name, chunk)
				}
			}
			if chunk == 64 {
				if fused.FusedQuads == 0 {
					t.Errorf("%s: full-budget run dispatched no quad", q.name)
				}
				if unfused.FusedQuads != 0 || unfused.FusedPairs != 0 {
					t.Errorf("%s: DisableFusion machine retired fused ops", q.name)
				}
			}
		}
	}
}

// TestQuadFusionBranchIntoSecondPair pins slot preservation under quads: a
// branch landing on the quad's second pair (slot i+2, which keeps its pair
// id and operands) must execute that pair alone, bit-identically to Step.
func TestQuadFusionBranchIntoSecondPair(t *testing.T) {
	prog := []Instr{
		{Op: OpMovi, Ra: RegSP, Imm: 48 * 1024},         // slot 0
		{Op: OpMovi, Ra: 0, Imm: 0},                     // slot 1
		{Op: OpMovi, Ra: 7, Imm: 2},                     // slot 2: loop counter
		{Op: OpNop},                                     // slot 3: phase barrier
		{Op: OpLoad, Ra: 1, Rb: 0, Imm: 40 * 1024},      // slot 4: quad head
		{Op: OpPush, Ra: 2},                             // slot 5
		{Op: OpMovi, Ra: 3, Imm: 7},                     // slot 6: second pair
		{Op: OpMov, Ra: 4, Rb: 3},                       // slot 7
		{Op: OpAddi, Ra: 7, Rb: 7, Imm: 0xFFFFFFFF},     // slot 8: r7--
		{Op: OpJnz, Ra: 7, Imm: CodeBase + 6*InstrSize}, // slot 9: land on slot 6
		{Op: OpHlt}, // slot 10
	}
	for _, chunk := range []uint64{1, 2, 3, 4, 5, 64} {
		fused, unfused, step := cloneForDiff3(t, asm(prog...), [NumIRQs]uint32{})
		for !step.Halted {
			nf, nu, ns := fused.Run(chunk), unfused.Run(chunk), step.Run(chunk)
			if nf != ns || nu != ns {
				t.Fatalf("chunk %d: fused retired %d, unfused %d, step %d", chunk, nf, nu, ns)
			}
			diffState(t, fmt.Sprintf("chunk %d fused-vs-step", chunk), fused, step)
			diffState(t, fmt.Sprintf("chunk %d unfused-vs-step", chunk), unfused, step)
			if step.Halted {
				break
			}
			if ns == 0 {
				t.Fatalf("chunk %d: no progress", chunk)
			}
		}
		if chunk == 64 && fused.FusedQuads == 0 {
			t.Error("full-budget run dispatched no quad")
		}
	}
}
