package vm

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
)

// Image is a bootable machine image: code, entry point, interrupt vectors,
// memory size and initial disk contents. Auditing requires that the auditor
// hold a reference copy of the image the machine is expected to run (§4.1,
// assumption 4); comparing Image hashes is how "same software" is defined.
type Image struct {
	// Name identifies the image for humans.
	Name string
	// Code is loaded at CodeBase. It includes both instructions and
	// initialized data emitted by the compiler.
	Code []byte
	// TextSize is the length of the instruction portion of Code; the data
	// section follows. Zero means unknown (treat all of Code as text).
	// Metadata only — not part of the image hash, since it is derivable.
	TextSize int
	// Entry is the initial program counter.
	Entry uint32
	// Vectors maps IRQ numbers to handler addresses; zero means unset.
	Vectors [NumIRQs]uint32
	// MemSize is the machine memory size in bytes.
	MemSize int
	// Disk is the initial virtual disk contents.
	Disk []byte
}

// Hash returns the image's identity digest. Two machines run "the same
// software" iff their image hashes match.
func (img *Image) Hash() [sha256.Size]byte {
	h := sha256.New()
	var lenBuf [8]byte
	writeBlob := func(b []byte) {
		binary.BigEndian.PutUint64(lenBuf[:], uint64(len(b)))
		h.Write(lenBuf[:])
		h.Write(b)
	}
	writeBlob([]byte(img.Name))
	writeBlob(img.Code)
	binary.BigEndian.PutUint64(lenBuf[:], uint64(img.Entry))
	h.Write(lenBuf[:])
	for _, v := range img.Vectors {
		binary.BigEndian.PutUint64(lenBuf[:], uint64(v))
		h.Write(lenBuf[:])
	}
	binary.BigEndian.PutUint64(lenBuf[:], uint64(img.MemSize))
	h.Write(lenBuf[:])
	writeBlob(img.Disk)
	var out [sha256.Size]byte
	copy(out[:], h.Sum(nil))
	return out
}

// Clone returns a deep copy, used when deriving cheat images by patching.
func (img *Image) Clone() *Image {
	out := *img
	out.Code = append([]byte(nil), img.Code...)
	out.Disk = append([]byte(nil), img.Disk...)
	return &out
}

// Boot creates a machine, loads the image, installs the interrupt vectors,
// and points PC at the entry. The device set's disk is initialized from the
// image.
func (img *Image) Boot(devs *DeviceSet) (*Machine, error) {
	memSize := img.MemSize
	if memSize == 0 {
		memSize = 256 * 1024
	}
	if int(CodeBase)+len(img.Code) > memSize {
		return nil, fmt.Errorf("vm: image %q code (%d bytes) does not fit in %d bytes of memory",
			img.Name, len(img.Code), memSize)
	}
	m := NewMachine(memSize, devs)
	if err := m.WriteBytes(CodeBase, img.Code); err != nil {
		return nil, fmt.Errorf("vm: loading image %q: %w", img.Name, err)
	}
	for irq, addr := range img.Vectors {
		if addr != 0 {
			if err := m.Store32(VectorBase+uint32(irq)*4, addr); err != nil {
				return nil, fmt.Errorf("vm: installing vector %d: %w", irq, err)
			}
		}
	}
	m.PC = img.Entry
	if devs != nil {
		devs.Disk = append([]byte(nil), img.Disk...)
	}
	m.ClearDirty()
	return m, nil
}

// State is a complete capture of the machine core, sufficient (together
// with a DeviceSet snapshot) to resume execution with identical behaviour.
type State struct {
	Regs       [NumRegs]uint32
	PC         uint32
	ICount     uint64
	Branches   uint64
	IntEnabled bool
	Waiting    bool
	Halted     bool
	ExtraNs    uint64
	Pending    uint32
	Mem        []byte
}

// CaptureState copies the machine core state.
func (m *Machine) CaptureState() *State {
	s := &State{
		Regs: m.Regs, PC: m.PC, ICount: m.ICount, Branches: m.Branches,
		IntEnabled: m.IntEnabled, Waiting: m.Waiting, Halted: m.Halted,
		ExtraNs: m.ExtraNs, Pending: m.pending,
		Mem: make([]byte, len(m.Mem)),
	}
	copy(s.Mem, m.Mem)
	return s
}

// CaptureStateRegisters serializes the non-memory core state without
// copying memory; used by snapshotting, where memory travels page-wise.
func (m *Machine) CaptureStateRegisters() []byte {
	s := &State{
		Regs: m.Regs, PC: m.PC, ICount: m.ICount, Branches: m.Branches,
		IntEnabled: m.IntEnabled, Waiting: m.Waiting, Halted: m.Halted,
		ExtraNs: m.ExtraNs, Pending: m.pending,
	}
	return s.MarshalRegisters()
}

// RestoreRegisters applies a register blob (from CaptureStateRegisters)
// without touching memory.
func (m *Machine) RestoreRegisters(blob []byte) error {
	var s State
	if err := s.UnmarshalRegisters(blob); err != nil {
		return err
	}
	m.Regs = s.Regs
	m.PC = s.PC
	m.ICount = s.ICount
	m.Branches = s.Branches
	m.IntEnabled = s.IntEnabled
	m.Waiting = s.Waiting
	m.Halted = s.Halted
	m.ExtraNs = s.ExtraNs
	m.pending = s.Pending
	m.FaultInfo = nil
	return nil
}

// RestoreState overwrites the machine core with s. All pages are marked
// dirty since their contents may have changed wholesale.
func (m *Machine) RestoreState(s *State) error {
	if len(s.Mem) != len(m.Mem) {
		return fmt.Errorf("vm: state memory size %d does not match machine %d", len(s.Mem), len(m.Mem))
	}
	m.Regs = s.Regs
	m.PC = s.PC
	m.ICount = s.ICount
	m.Branches = s.Branches
	m.IntEnabled = s.IntEnabled
	m.Waiting = s.Waiting
	m.Halted = s.Halted
	m.ExtraNs = s.ExtraNs
	m.pending = s.Pending
	copy(m.Mem, s.Mem)
	m.FaultInfo = nil
	m.MarkAllDirty()
	return nil
}

// MarshalRegisters serializes the non-memory machine core state.
//
// ExtraNs is deliberately excluded: it is host bookkeeping (monitor
// overhead charged to the virtual clock), not guest-visible state, and it
// differs between recording and replay. Including it would make honest
// replays fail snapshot-root comparison.
func (s *State) MarshalRegisters() []byte {
	var b []byte
	for _, r := range s.Regs {
		b = binary.BigEndian.AppendUint32(b, r)
	}
	b = binary.BigEndian.AppendUint32(b, s.PC)
	b = binary.BigEndian.AppendUint64(b, s.ICount)
	b = binary.BigEndian.AppendUint64(b, s.Branches)
	var flags byte
	if s.IntEnabled {
		flags |= 1
	}
	if s.Waiting {
		flags |= 2
	}
	if s.Halted {
		flags |= 4
	}
	b = append(b, flags)
	b = binary.BigEndian.AppendUint32(b, s.Pending)
	return b
}

// UnmarshalRegisters reverses MarshalRegisters, leaving Mem and ExtraNs
// untouched.
func (s *State) UnmarshalRegisters(b []byte) error {
	const want = NumRegs*4 + 4 + 8 + 8 + 1 + 4
	if len(b) != want {
		return fmt.Errorf("vm: register blob is %d bytes, want %d", len(b), want)
	}
	for i := range s.Regs {
		s.Regs[i] = binary.BigEndian.Uint32(b[i*4:])
	}
	off := NumRegs * 4
	s.PC = binary.BigEndian.Uint32(b[off:])
	s.ICount = binary.BigEndian.Uint64(b[off+4:])
	s.Branches = binary.BigEndian.Uint64(b[off+12:])
	flags := b[off+20]
	s.IntEnabled = flags&1 != 0
	s.Waiting = flags&2 != 0
	s.Halted = flags&4 != 0
	s.Pending = binary.BigEndian.Uint32(b[off+21:])
	return nil
}
