package vm

import (
	"bytes"
	"fmt"
	"testing"
)

// FuzzDecode shakes the instruction codec: Decode must accept any 8 bytes
// without panicking (the interpreter decodes whatever memory the PC lands
// on, and the predecode cache decodes entire pages of arbitrary bytes), and
// Encode∘Decode must be the identity on the wire — the predecode cache is
// only sound if the decoded form loses nothing the interpreter reads.
func FuzzDecode(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})
	f.Add(Instr{Op: OpAddi, Ra: 3, Rb: 4, Imm: 0xDEADBEEF}.Encode(nil))
	f.Add(Instr{Op: OpJnz, Ra: 15, Imm: CodeBase}.Encode(nil))
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, b []byte) {
		if len(b) < InstrSize {
			t.Skip("Decode's contract requires InstrSize bytes")
		}
		ins := Decode(b)
		wire := ins.Encode(nil)
		if !bytes.Equal(wire, b[:InstrSize]) {
			t.Fatalf("Encode(Decode(%x)) = %x", b[:InstrSize], wire)
		}
		if again := Decode(wire); again != ins {
			t.Fatalf("Decode(Encode(%+v)) = %+v", ins, again)
		}
		_ = ins.String() // disassembly of arbitrary bytes must not panic
	})
}

// FuzzFusion throws arbitrary code bytes at the fusion pass: predecoding a
// page of hostile bytes (including bytes that happen to decode to fusable
// opcodes with wild operands) must never panic, and the fused sprint must
// retire bit-identical state to the careful Step path however the bytes
// decode — fusion is a pure dispatch optimization, invisible to semantics.
func FuzzFusion(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})
	f.Add(asm(
		Instr{Op: OpMovi, Ra: 1, Imm: 7},
		Instr{Op: OpMov, Ra: 2, Rb: 1},
		Instr{Op: OpPush, Ra: 2},
		Instr{Op: OpPop, Ra: 3},
		Instr{Op: OpLts, Ra: 4, Rb: 3, Rc: 1},
		Instr{Op: OpJz, Ra: 4, Imm: CodeBase},
	))
	f.Add(asm( // store into the executing page, then keep going
		Instr{Op: OpMovi, Ra: 1, Imm: CodeBase + 3*InstrSize},
		Instr{Op: OpStore, Ra: 1, Rb: 2},
		Instr{Op: OpAddi, Ra: 2, Rb: 2, Imm: 1},
		Instr{Op: OpHlt},
	))
	f.Add(asm( // quad superinstruction: load.push + movi.mov back to back
		Instr{Op: OpMovi, Ra: RegSP, Imm: 48 * 1024},
		Instr{Op: OpNop},
		Instr{Op: OpLoad, Ra: 1, Rb: 0, Imm: 40 * 1024},
		Instr{Op: OpPush, Ra: 2},
		Instr{Op: OpMovi, Ra: 3, Imm: 7},
		Instr{Op: OpMov, Ra: 4, Rb: 3},
		Instr{Op: OpHlt},
	))
	f.Add(asm( // quad ending in a jump: pop.add + store.jmp
		Instr{Op: OpMovi, Ra: RegSP, Imm: 48 * 1024},
		Instr{Op: OpPush, Ra: 6},
		Instr{Op: OpPop, Ra: 1},
		Instr{Op: OpAdd, Ra: 2, Rb: 1, Rc: 1},
		Instr{Op: OpStore, Ra: 0, Rb: 2, Imm: 40 * 1024},
		Instr{Op: OpJmp, Imm: CodeBase + 6*InstrSize},
		Instr{Op: OpHlt},
	))
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
	f.Fuzz(func(t *testing.T, b []byte) {
		if len(b) == 0 {
			t.Skip("empty images do not boot")
		}
		if len(b) > PageSize {
			b = b[:PageSize]
		}
		img := &Image{Name: "fuzz", Code: b, Entry: CodeBase, MemSize: 64 * 1024}
		bootOne := func(disablePredecode bool) *Machine {
			m, err := img.Boot(NewDeviceSet(7))
			if err != nil {
				t.Skipf("boot: %v", err)
			}
			m.DisablePredecode = disablePredecode
			// Aim a few base registers at the code page so decoded stores
			// can self-modify, and others at data.
			m.Regs[0], m.Regs[5], m.Regs[9] = 0, 0, 0
			m.Regs[1], m.Regs[2] = CodeBase, 32*1024
			return m
		}
		fast, slow := bootOne(false), bootOne(true)
		for c := 0; c < 6; c++ {
			// Odd chunk lengths >= 2 exercise both the fused handlers and
			// the mid-pair budget stop.
			nf, ns := fast.Run(37), slow.Run(37)
			if nf != ns {
				t.Fatalf("chunk %d: fused sprint retired %d, step retired %d", c, nf, ns)
			}
			diffState(t, fmt.Sprintf("chunk %d", c), fast, slow)
			if fast.Halted || fast.Waiting {
				break
			}
		}
	})
}
