package vm

import (
	"bytes"
	"testing"
)

// FuzzDecode shakes the instruction codec: Decode must accept any 8 bytes
// without panicking (the interpreter decodes whatever memory the PC lands
// on, and the predecode cache decodes entire pages of arbitrary bytes), and
// Encode∘Decode must be the identity on the wire — the predecode cache is
// only sound if the decoded form loses nothing the interpreter reads.
func FuzzDecode(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})
	f.Add(Instr{Op: OpAddi, Ra: 3, Rb: 4, Imm: 0xDEADBEEF}.Encode(nil))
	f.Add(Instr{Op: OpJnz, Ra: 15, Imm: CodeBase}.Encode(nil))
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, b []byte) {
		if len(b) < InstrSize {
			t.Skip("Decode's contract requires InstrSize bytes")
		}
		ins := Decode(b)
		wire := ins.Encode(nil)
		if !bytes.Equal(wire, b[:InstrSize]) {
			t.Fatalf("Encode(Decode(%x)) = %x", b[:InstrSize], wire)
		}
		if again := Decode(wire); again != ins {
			t.Fatalf("Decode(Encode(%+v)) = %+v", ins, again)
		}
		_ = ins.String() // disassembly of arbitrary bytes must not panic
	})
}
