// Package vm implements the deterministic virtual machine that plays the
// role of the paper's virtualized commodity PC (§4.4). The machine's
// execution is a pure function of its initial state and the values returned
// by nondeterministic device ports; asynchronous events (interrupts) are
// pinned to exact execution landmarks — a retired-instruction counter,
// branch counter, and instruction pointer — mirroring how the paper's AVMM
// records the precise timing of asynchronous inputs so they can be
// re-injected at the exact same point during replay.
package vm

import "fmt"

// Opcode identifies an instruction. Instructions are fixed-width: one
// opcode byte, three register operand bytes, and a 32-bit little-endian
// immediate — 8 bytes total.
type Opcode uint8

// The instruction set. A small RISC-style ISA: enough to compile real guest
// programs (game clients, database servers) while keeping the interpreter —
// and therefore replay — exactly deterministic.
const (
	OpNop    Opcode = iota
	OpHlt           // halt the machine
	OpMovi          // ra = imm
	OpMov           // ra = rb
	OpAdd           // ra = rb + rc
	OpSub           // ra = rb - rc
	OpMul           // ra = rb * rc
	OpDivu          // ra = rb / rc (unsigned; rc==0 faults)
	OpModu          // ra = rb % rc (unsigned; rc==0 faults)
	OpAnd           // ra = rb & rc
	OpOr            // ra = rb | rc
	OpXor           // ra = rb ^ rc
	OpShl           // ra = rb << (rc & 31)
	OpShr           // ra = rb >> (rc & 31) (logical)
	OpAddi          // ra = rb + imm
	OpEq            // ra = (rb == rc) ? 1 : 0
	OpLtu           // ra = (rb < rc) ? 1 : 0, unsigned
	OpLts           // ra = (rb < rc) ? 1 : 0, signed
	OpNot           // ra = (rb == 0) ? 1 : 0
	OpLoad          // ra = mem32[rb + imm]
	OpStore         // mem32[ra + imm] = rb
	OpLoadb         // ra = mem8[rb + imm]
	OpStoreb        // mem8[ra + imm] = rb (low byte)
	OpJmp           // pc = imm
	OpJz            // if ra == 0: pc = imm
	OpJnz           // if ra != 0: pc = imm
	OpCall          // push pc+8; pc = imm
	OpRet           // pc = pop
	OpPush          // sp -= 4; mem32[sp] = ra
	OpPop           // ra = mem32[sp]; sp += 4
	OpIn            // ra = bus.In(imm)
	OpOut           // bus.Out(imm, ra)
	OpCli           // disable interrupts
	OpSti           // enable interrupts
	OpIret          // pc = pop; enable interrupts
	OpWfi           // wait for interrupt (idle until an IRQ is raised)
	opCount
)

var opNames = [...]string{
	OpNop: "nop", OpHlt: "hlt", OpMovi: "movi", OpMov: "mov",
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpDivu: "divu", OpModu: "modu",
	OpAnd: "and", OpOr: "or", OpXor: "xor", OpShl: "shl", OpShr: "shr",
	OpAddi: "addi", OpEq: "eq", OpLtu: "ltu", OpLts: "lts", OpNot: "not",
	OpLoad: "load", OpStore: "store", OpLoadb: "loadb", OpStoreb: "storeb",
	OpJmp: "jmp", OpJz: "jz", OpJnz: "jnz", OpCall: "call", OpRet: "ret",
	OpPush: "push", OpPop: "pop", OpIn: "in", OpOut: "out",
	OpCli: "cli", OpSti: "sti", OpIret: "iret", OpWfi: "wfi",
}

// String returns the mnemonic for the opcode.
func (op Opcode) String() string {
	if int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return fmt.Sprintf("op%d", uint8(op))
}

// InstrSize is the fixed encoding size of every instruction.
const InstrSize = 4 + 4

// Instr is a decoded instruction.
type Instr struct {
	Op         Opcode
	Ra, Rb, Rc uint8
	Imm        uint32
}

// Encode appends the 8-byte encoding of the instruction to dst.
func (i Instr) Encode(dst []byte) []byte {
	return append(dst,
		byte(i.Op), i.Ra, i.Rb, i.Rc,
		byte(i.Imm), byte(i.Imm>>8), byte(i.Imm>>16), byte(i.Imm>>24))
}

// Decode reads an instruction from b, which must hold at least InstrSize
// bytes.
func Decode(b []byte) Instr {
	return Instr{
		Op: Opcode(b[0]), Ra: b[1], Rb: b[2], Rc: b[3],
		Imm: uint32(b[4]) | uint32(b[5])<<8 | uint32(b[6])<<16 | uint32(b[7])<<24,
	}
}

// String disassembles the instruction.
func (i Instr) String() string {
	switch i.Op {
	case OpNop, OpHlt, OpRet, OpCli, OpSti, OpIret, OpWfi:
		return i.Op.String()
	case OpMovi:
		return fmt.Sprintf("%s r%d, %d", i.Op, i.Ra, int32(i.Imm))
	case OpMov, OpNot:
		return fmt.Sprintf("%s r%d, r%d", i.Op, i.Ra, i.Rb)
	case OpAddi:
		return fmt.Sprintf("%s r%d, r%d, %d", i.Op, i.Ra, i.Rb, int32(i.Imm))
	case OpLoad, OpLoadb:
		return fmt.Sprintf("%s r%d, [r%d+%d]", i.Op, i.Ra, i.Rb, int32(i.Imm))
	case OpStore, OpStoreb:
		return fmt.Sprintf("%s [r%d+%d], r%d", i.Op, i.Ra, int32(i.Imm), i.Rb)
	case OpJmp, OpCall:
		return fmt.Sprintf("%s 0x%x", i.Op, i.Imm)
	case OpJz, OpJnz:
		return fmt.Sprintf("%s r%d, 0x%x", i.Op, i.Ra, i.Imm)
	case OpPush, OpPop:
		return fmt.Sprintf("%s r%d", i.Op, i.Ra)
	case OpIn:
		return fmt.Sprintf("in r%d, port 0x%x", i.Ra, i.Imm)
	case OpOut:
		return fmt.Sprintf("out port 0x%x, r%d", i.Imm, i.Ra)
	default:
		return fmt.Sprintf("%s r%d, r%d, r%d", i.Op, i.Ra, i.Rb, i.Rc)
	}
}

// Register conventions used by the compiler in internal/lang. The machine
// itself treats all 16 registers uniformly except that PUSH/POP/CALL/RET
// use SP.
const (
	NumRegs = 16
	// RegFP is the frame pointer by convention.
	RegFP = 14
	// RegSP is the stack pointer used by push/pop/call/ret.
	RegSP = 15
)

// --- superinstruction fused-op table ------------------------------------
//
// The predecoder fuses recognized adjacent instruction pairs — the idioms
// the internal/lang code generator emits for every expression and
// assignment — into single cached superinstructions with their own sprint
// handlers (predecode.go), halving dispatch overhead on the fused pairs.
// Fused ids live at fusedBase and above, outside the uint8 opcode space,
// so no guest byte sequence can ever decode to one: Decode yields plain
// opcodes only, and Step never sees a fused id. The guest-visible ISA is
// unchanged — fusion is purely a property of the predecode cache.

// fusedBase is the first fused-op id; everything below it in a cached
// slot's Op field is a plain Opcode.
const fusedBase = 256

// The fused-op ids. The specialized forms are the dynamically hottest
// exact pairs in lang-compiled guests (measured on the recorded game
// workload — push/expr/pop idioms, movi+ALU, compare-and-branch,
// load-op-store) and get straight-line handlers with no sub-dispatch.
// fusedGeneric covers every other legal pair: its handler executes the
// two constituents through a pair of inline sub-switches on the cached
// Sub1/Sub2 opcodes, which still saves the per-instruction loop overhead
// (bound check, interrupt gate, page check, fetch, retire bookkeeping).
const (
	fusedGeneric   = fusedBase + iota // any fusable ; any fusable
	fusedMoviMov                      // movi ; mov
	fusedMovPop                       // mov ; pop
	fusedPushMovi                     // push ; movi
	fusedLoadPush                     // load ; push
	fusedPushLoad                     // push ; load
	fusedPopAdd                       // pop ; add
	fusedPopMul                       // pop ; mul
	fusedPopLts                       // pop ; lts
	fusedPopStore                     // pop ; store
	fusedAddStore                     // add ; store
	fusedLoadStore                    // load ; store
	fusedMulPush                      // mul ; push
	fusedLtsJz                        // lts ; jz
	fusedStoreJmp                     // store ; jmp
	fusedStoreLoad                    // store ; load
	fusedEnd
)

var fusedNames = [fusedEnd - fusedBase]string{
	fusedGeneric - fusedBase:   "generic",
	fusedMoviMov - fusedBase:   "movi.mov",
	fusedMovPop - fusedBase:    "mov.pop",
	fusedPushMovi - fusedBase:  "push.movi",
	fusedLoadPush - fusedBase:  "load.push",
	fusedPushLoad - fusedBase:  "push.load",
	fusedPopAdd - fusedBase:    "pop.add",
	fusedPopMul - fusedBase:    "pop.mul",
	fusedPopLts - fusedBase:    "pop.lts",
	fusedPopStore - fusedBase:  "pop.store",
	fusedAddStore - fusedBase:  "add.store",
	fusedLoadStore - fusedBase: "load.store",
	fusedMulPush - fusedBase:   "mul.push",
	fusedLtsJz - fusedBase:     "lts.jz",
	fusedStoreJmp - fusedBase:  "store.jmp",
	fusedStoreLoad - fusedBase: "store.load",
}

// fusedName names a fused (pair or quad) id for diagnostics.
func fusedName(op uint16) string {
	if op >= fusedBase && op < fusedEnd {
		return fusedNames[op-fusedBase]
	}
	if op >= quadBase && op < quadEnd {
		return quadNames[op-quadBase]
	}
	return fmt.Sprintf("fused%d", op)
}

// aluClass marks the fault-free register-only opcodes: no memory access,
// no control transfer, no bus, no interrupt flags — an aluClass
// constituent can execute inside a fused pair with no side exit. Divu and
// Modu are excluded (they fault), as is everything that touches memory or
// control flow.
var aluClass = [opCount]bool{
	OpMovi: true, OpMov: true, OpAdd: true, OpSub: true, OpMul: true,
	OpAnd: true, OpOr: true, OpXor: true, OpShl: true, OpShr: true,
	OpAddi: true, OpEq: true, OpLtu: true, OpLts: true, OpNot: true,
}

// fuseFirst marks opcodes legal as a pair's first constituent: the ALU
// class plus the memory ops whose fused handlers carry exact Step fault
// semantics and — for the stores and pushes, which can overwrite the
// executing page — the retire-first-half bail-out. Bus ops, interrupt-flag
// ops, wfi, hlt, call/ret, the faulting dividers, and all branches are
// excluded: a taken branch makes the second slot dead, and the rest either
// leave the sprint or change interrupt state mid-pair.
var fuseFirst = [opCount]bool{
	OpMovi: true, OpMov: true, OpAdd: true, OpSub: true, OpMul: true,
	OpAnd: true, OpOr: true, OpXor: true, OpShl: true, OpShr: true,
	OpAddi: true, OpEq: true, OpLtu: true, OpLts: true, OpNot: true,
	OpLoad: true, OpLoadb: true, OpStore: true, OpStoreb: true,
	OpPush: true, OpPop: true,
}

// fuseSecond marks opcodes legal as a pair's second constituent: the
// first-position set plus the direct branches (their targets are encoded
// in the instruction, so the fused handler can retire the pair and jump).
var fuseSecond = [opCount]bool{
	OpMovi: true, OpMov: true, OpAdd: true, OpSub: true, OpMul: true,
	OpAnd: true, OpOr: true, OpXor: true, OpShl: true, OpShr: true,
	OpAddi: true, OpEq: true, OpLtu: true, OpLts: true, OpNot: true,
	OpLoad: true, OpLoadb: true, OpStore: true, OpStoreb: true,
	OpPush: true, OpPop: true,
	OpJmp: true, OpJz: true, OpJnz: true,
}

// fusePair classifies an adjacent opcode pair, returning the fused id to
// rewrite the first slot with, or 0 when the pair must not fuse. The
// whitelist is deliberately conservative: bus ops (in/out), interrupt-flag
// ops (cli/sti/iret), wfi, hlt, call/ret, and the faulting dividers never
// fuse in either position, and branches fuse only as the second
// constituent. Stores and pushes may fuse as the first constituent: their
// handlers bail out (retiring the first half alone) when the write lands
// on the executing page, so a pair can never execute a stale second slot.
func fusePair(a, b Opcode) uint16 {
	if a >= opCount || b >= opCount {
		return 0
	}
	// Specialized hot pairs first: the fuse-time choice is what lets their
	// handlers skip the Sub1/Sub2 sub-dispatch entirely.
	switch {
	case a == OpMovi && b == OpMov:
		return fusedMoviMov
	case a == OpMov && b == OpPop:
		return fusedMovPop
	case a == OpPush && b == OpMovi:
		return fusedPushMovi
	case a == OpLoad && b == OpPush:
		return fusedLoadPush
	case a == OpPush && b == OpLoad:
		return fusedPushLoad
	case a == OpPop && b == OpStore:
		return fusedPopStore
	case a == OpLoad && b == OpStore:
		return fusedLoadStore
	case a == OpPop && b == OpAdd:
		return fusedPopAdd
	case a == OpPop && b == OpMul:
		return fusedPopMul
	case a == OpPop && b == OpLts:
		return fusedPopLts
	case a == OpAdd && b == OpStore:
		return fusedAddStore
	case a == OpMul && b == OpPush:
		return fusedMulPush
	case a == OpLts && b == OpJz:
		return fusedLtsJz
	case a == OpStore && b == OpJmp:
		return fusedStoreJmp
	case a == OpStore && b == OpLoad:
		return fusedStoreLoad
	}
	if fuseFirst[a] && fuseSecond[b] {
		return fusedGeneric
	}
	return 0
}

// --- quad superinstructions ---------------------------------------------
//
// Pair fusion leaves the hottest lang idioms dominated by back-to-back
// specialized pairs: the push/expr/pop calling convention means a load.push
// is almost always followed by a movi.mov, a movi.mov by a pop.ALU, and so
// on. A second fuse pass recognizes those pair-of-pair sequences (measured
// on the recorded game workload; the table below covers ~3/4 of all
// dynamically retired pairs) and rewrites the FIRST pair's slot to a quad
// id: four constituents, one dispatch. The second pair's slot keeps its
// pair id and operands, so a control transfer landing on it executes the
// pair normally, and the quad handler reads the second pair's operands
// straight from that slot — no cache growth, no extra barriers. Only
// non-branching pairs are legal as a quad's first half (a taken branch
// would make the second pair dead); the second half may end in a direct
// jump, which the handler takes after retiring all four constituents.

// quadBase is the first quad id; ids in [fusedBase, quadBase) are pairs.
const quadBase = 512

const (
	fusedQLoadPushMoviMov  = quadBase + iota // load ; push ; movi ; mov
	fusedQPushMoviMovPop                     // push ; movi ; mov ; pop
	fusedQMoviMovPopLts                      // movi ; mov ; pop ; lts
	fusedQMoviMovPopAdd                      // movi ; mov ; pop ; add
	fusedQMoviMovPopMul                      // movi ; mov ; pop ; mul
	fusedQMovPopAddStore                     // mov ; pop ; add ; store
	fusedQPopAddStoreJmp                     // pop ; add ; store ; jmp
	fusedQPopMulPushMovi                     // pop ; mul ; push ; movi
	fusedQAddStoreLoadPush                   // add ; store ; load ; push
	quadEnd
)

var quadNames = [quadEnd - quadBase]string{
	fusedQLoadPushMoviMov - quadBase:  "load.push.movi.mov",
	fusedQPushMoviMovPop - quadBase:   "push.movi.mov.pop",
	fusedQMoviMovPopLts - quadBase:    "movi.mov.pop.lts",
	fusedQMoviMovPopAdd - quadBase:    "movi.mov.pop.add",
	fusedQMoviMovPopMul - quadBase:    "movi.mov.pop.mul",
	fusedQMovPopAddStore - quadBase:   "mov.pop.add.store",
	fusedQPopAddStoreJmp - quadBase:   "pop.add.store.jmp",
	fusedQPopMulPushMovi - quadBase:   "pop.mul.push.movi",
	fusedQAddStoreLoadPush - quadBase: "add.store.load.push",
}

// fuseQuad classifies two adjacent fused pairs (the pair at slot i and the
// pair at slot i+2), returning the quad id to rewrite slot i with, or 0
// when the sequence has no quad form. The first pair must not be able to
// branch — every first-half pair below ends in a plain register or memory
// op — so the second pair always executes when the first does.
func fuseQuad(a, b uint16) uint16 {
	switch {
	case a == fusedLoadPush && b == fusedMoviMov:
		return fusedQLoadPushMoviMov
	case a == fusedPushMovi && b == fusedMovPop:
		return fusedQPushMoviMovPop
	case a == fusedMoviMov && b == fusedPopLts:
		return fusedQMoviMovPopLts
	case a == fusedMoviMov && b == fusedPopAdd:
		return fusedQMoviMovPopAdd
	case a == fusedMoviMov && b == fusedPopMul:
		return fusedQMoviMovPopMul
	case a == fusedMovPop && b == fusedAddStore:
		return fusedQMovPopAddStore
	case a == fusedPopAdd && b == fusedStoreJmp:
		return fusedQPopAddStoreJmp
	case a == fusedPopMul && b == fusedPushMovi:
		return fusedQPopMulPushMovi
	case a == fusedAddStore && b == fusedLoadPush:
		return fusedQAddStoreLoadPush
	}
	return 0
}
