// Package vm implements the deterministic virtual machine that plays the
// role of the paper's virtualized commodity PC (§4.4). The machine's
// execution is a pure function of its initial state and the values returned
// by nondeterministic device ports; asynchronous events (interrupts) are
// pinned to exact execution landmarks — a retired-instruction counter,
// branch counter, and instruction pointer — mirroring how the paper's AVMM
// records the precise timing of asynchronous inputs so they can be
// re-injected at the exact same point during replay.
package vm

import "fmt"

// Opcode identifies an instruction. Instructions are fixed-width: one
// opcode byte, three register operand bytes, and a 32-bit little-endian
// immediate — 8 bytes total.
type Opcode uint8

// The instruction set. A small RISC-style ISA: enough to compile real guest
// programs (game clients, database servers) while keeping the interpreter —
// and therefore replay — exactly deterministic.
const (
	OpNop    Opcode = iota
	OpHlt           // halt the machine
	OpMovi          // ra = imm
	OpMov           // ra = rb
	OpAdd           // ra = rb + rc
	OpSub           // ra = rb - rc
	OpMul           // ra = rb * rc
	OpDivu          // ra = rb / rc (unsigned; rc==0 faults)
	OpModu          // ra = rb % rc (unsigned; rc==0 faults)
	OpAnd           // ra = rb & rc
	OpOr            // ra = rb | rc
	OpXor           // ra = rb ^ rc
	OpShl           // ra = rb << (rc & 31)
	OpShr           // ra = rb >> (rc & 31) (logical)
	OpAddi          // ra = rb + imm
	OpEq            // ra = (rb == rc) ? 1 : 0
	OpLtu           // ra = (rb < rc) ? 1 : 0, unsigned
	OpLts           // ra = (rb < rc) ? 1 : 0, signed
	OpNot           // ra = (rb == 0) ? 1 : 0
	OpLoad          // ra = mem32[rb + imm]
	OpStore         // mem32[ra + imm] = rb
	OpLoadb         // ra = mem8[rb + imm]
	OpStoreb        // mem8[ra + imm] = rb (low byte)
	OpJmp           // pc = imm
	OpJz            // if ra == 0: pc = imm
	OpJnz           // if ra != 0: pc = imm
	OpCall          // push pc+8; pc = imm
	OpRet           // pc = pop
	OpPush          // sp -= 4; mem32[sp] = ra
	OpPop           // ra = mem32[sp]; sp += 4
	OpIn            // ra = bus.In(imm)
	OpOut           // bus.Out(imm, ra)
	OpCli           // disable interrupts
	OpSti           // enable interrupts
	OpIret          // pc = pop; enable interrupts
	OpWfi           // wait for interrupt (idle until an IRQ is raised)
	opCount
)

var opNames = [...]string{
	OpNop: "nop", OpHlt: "hlt", OpMovi: "movi", OpMov: "mov",
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpDivu: "divu", OpModu: "modu",
	OpAnd: "and", OpOr: "or", OpXor: "xor", OpShl: "shl", OpShr: "shr",
	OpAddi: "addi", OpEq: "eq", OpLtu: "ltu", OpLts: "lts", OpNot: "not",
	OpLoad: "load", OpStore: "store", OpLoadb: "loadb", OpStoreb: "storeb",
	OpJmp: "jmp", OpJz: "jz", OpJnz: "jnz", OpCall: "call", OpRet: "ret",
	OpPush: "push", OpPop: "pop", OpIn: "in", OpOut: "out",
	OpCli: "cli", OpSti: "sti", OpIret: "iret", OpWfi: "wfi",
}

// String returns the mnemonic for the opcode.
func (op Opcode) String() string {
	if int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return fmt.Sprintf("op%d", uint8(op))
}

// InstrSize is the fixed encoding size of every instruction.
const InstrSize = 4 + 4

// Instr is a decoded instruction.
type Instr struct {
	Op         Opcode
	Ra, Rb, Rc uint8
	Imm        uint32
}

// Encode appends the 8-byte encoding of the instruction to dst.
func (i Instr) Encode(dst []byte) []byte {
	return append(dst,
		byte(i.Op), i.Ra, i.Rb, i.Rc,
		byte(i.Imm), byte(i.Imm>>8), byte(i.Imm>>16), byte(i.Imm>>24))
}

// Decode reads an instruction from b, which must hold at least InstrSize
// bytes.
func Decode(b []byte) Instr {
	return Instr{
		Op: Opcode(b[0]), Ra: b[1], Rb: b[2], Rc: b[3],
		Imm: uint32(b[4]) | uint32(b[5])<<8 | uint32(b[6])<<16 | uint32(b[7])<<24,
	}
}

// String disassembles the instruction.
func (i Instr) String() string {
	switch i.Op {
	case OpNop, OpHlt, OpRet, OpCli, OpSti, OpIret, OpWfi:
		return i.Op.String()
	case OpMovi:
		return fmt.Sprintf("%s r%d, %d", i.Op, i.Ra, int32(i.Imm))
	case OpMov, OpNot:
		return fmt.Sprintf("%s r%d, r%d", i.Op, i.Ra, i.Rb)
	case OpAddi:
		return fmt.Sprintf("%s r%d, r%d, %d", i.Op, i.Ra, i.Rb, int32(i.Imm))
	case OpLoad, OpLoadb:
		return fmt.Sprintf("%s r%d, [r%d+%d]", i.Op, i.Ra, i.Rb, int32(i.Imm))
	case OpStore, OpStoreb:
		return fmt.Sprintf("%s [r%d+%d], r%d", i.Op, i.Ra, int32(i.Imm), i.Rb)
	case OpJmp, OpCall:
		return fmt.Sprintf("%s 0x%x", i.Op, i.Imm)
	case OpJz, OpJnz:
		return fmt.Sprintf("%s r%d, 0x%x", i.Op, i.Ra, i.Imm)
	case OpPush, OpPop:
		return fmt.Sprintf("%s r%d", i.Op, i.Ra)
	case OpIn:
		return fmt.Sprintf("in r%d, port 0x%x", i.Ra, i.Imm)
	case OpOut:
		return fmt.Sprintf("out port 0x%x, r%d", i.Imm, i.Ra)
	default:
		return fmt.Sprintf("%s r%d, r%d, r%d", i.Op, i.Ra, i.Rb, i.Rc)
	}
}

// Register conventions used by the compiler in internal/lang. The machine
// itself treats all 16 registers uniformly except that PUSH/POP/CALL/RET
// use SP.
const (
	NumRegs = 16
	// RegFP is the frame pointer by convention.
	RegFP = 14
	// RegSP is the stack pointer used by push/pop/call/ret.
	RegSP = 15
)
