package vm

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// genProgram builds a random but safe program: arithmetic over registers,
// bounded stores into a scratch page, bounded loops, and a final HLT. All
// control flow targets are valid instruction boundaries, so the only
// possible fault is a memory access, which itself is deterministic.
func genProgram(rng *rand.Rand, n int) []byte {
	var ins []Instr
	for i := 0; i < n; i++ {
		switch rng.Intn(8) {
		case 0:
			ins = append(ins, Instr{Op: OpMovi, Ra: uint8(rng.Intn(8)), Imm: rng.Uint32() % 1024})
		case 1:
			ins = append(ins, Instr{Op: OpAdd, Ra: uint8(rng.Intn(8)), Rb: uint8(rng.Intn(8)), Rc: uint8(rng.Intn(8))})
		case 2:
			ins = append(ins, Instr{Op: OpMul, Ra: uint8(rng.Intn(8)), Rb: uint8(rng.Intn(8)), Rc: uint8(rng.Intn(8))})
		case 3:
			ins = append(ins, Instr{Op: OpXor, Ra: uint8(rng.Intn(8)), Rb: uint8(rng.Intn(8)), Rc: uint8(rng.Intn(8))})
		case 4:
			// Bounded store into the scratch page at 0x8000.
			ins = append(ins,
				Instr{Op: OpMovi, Ra: 9, Imm: 0x8000 + (rng.Uint32()%1000)*4},
				Instr{Op: OpStore, Ra: 9, Rb: uint8(rng.Intn(8))})
		case 5:
			ins = append(ins,
				Instr{Op: OpMovi, Ra: 9, Imm: 0x8000 + (rng.Uint32()%1000)*4},
				Instr{Op: OpLoad, Ra: uint8(rng.Intn(8)), Rb: 9})
		case 6:
			// Short forward skip.
			target := uint32(CodeBase) + uint32(len(ins)+2)*InstrSize
			ins = append(ins, Instr{Op: OpJz, Ra: uint8(rng.Intn(8)), Imm: target})
		case 7:
			ins = append(ins, Instr{Op: OpLtu, Ra: uint8(rng.Intn(8)), Rb: uint8(rng.Intn(8)), Rc: uint8(rng.Intn(8))})
		}
	}
	ins = append(ins, Instr{Op: OpHlt})
	var code []byte
	for _, i := range ins {
		code = i.Encode(code)
	}
	return code
}

// TestPropertyExecutionDeterminism: the core invariant the whole paper
// stands on — running the same image twice yields bit-identical machines.
func TestPropertyExecutionDeterminism(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		code := genProgram(rng, 60)
		img := &Image{Name: "p", Code: code, Entry: CodeBase, MemSize: 64 * 1024}
		run := func() *Machine {
			m, err := img.Boot(nil)
			if err != nil {
				t.Fatal(err)
			}
			m.Run(10_000)
			return m
		}
		m1, m2 := run(), run()
		if m1.ICount != m2.ICount || m1.Branches != m2.Branches ||
			m1.PC != m2.PC || m1.Regs != m2.Regs || m1.Halted != m2.Halted {
			return false
		}
		for i := range m1.Mem {
			if m1.Mem[i] != m2.Mem[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyInterruptLandmarkReplay: raising an interrupt at a recorded
// instruction-count landmark reproduces the identical final state —
// the mechanism replay relies on for asynchronous events (§4.4).
func TestPropertyInterruptLandmarkReplay(t *testing.T) {
	f := func(seed int64, raiseAtRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		code := genProgram(rng, 40)
		handler := uint32(CodeBase) + uint32(len(code))
		// Handler: bump r7, IRET.
		code = Instr{Op: OpAddi, Ra: 7, Rb: 7, Imm: 1}.Encode(code)
		code = Instr{Op: OpIret}.Encode(code)
		// Prepend STI by patching entry? Instead enable interrupts via the
		// machine after boot.
		img := &Image{Name: "p", Code: code, Entry: CodeBase, MemSize: 64 * 1024}
		img.Vectors[1] = handler

		run := func(raiseAt uint64) (*Machine, Landmark) {
			m, err := img.Boot(nil)
			if err != nil {
				t.Fatal(err)
			}
			m.IntEnabled = true
			var lm Landmark
			m.OnIRQDelivered = func(_ int, l Landmark) { lm = l }
			for !m.Halted && m.ICount < raiseAt {
				m.Step()
			}
			if !m.Halted {
				m.RaiseIRQ(1)
			}
			m.Run(10_000)
			return m, lm
		}
		raiseAt := uint64(raiseAtRaw % 200)
		m1, lm1 := run(raiseAt)
		m2, lm2 := run(raiseAt)
		if lm1 != lm2 {
			return false
		}
		if m1.ICount != m2.ICount || m1.Regs != m2.Regs || m1.Branches != m2.Branches {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyStateRestoreResumesIdentically: snapshot/restore mid-run and
// continue — final state must match an uninterrupted run (the basis of
// spot checking, §3.5).
func TestPropertyStateRestoreResumesIdentically(t *testing.T) {
	f := func(seed int64, cutRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		code := genProgram(rng, 50)
		img := &Image{Name: "p", Code: code, Entry: CodeBase, MemSize: 64 * 1024}
		cut := uint64(cutRaw % 150)

		// Uninterrupted run.
		m1, err := img.Boot(nil)
		if err != nil {
			t.Fatal(err)
		}
		m1.Run(10_000)

		// Run to the cut, capture, restore into a fresh machine, resume.
		m2, err := img.Boot(nil)
		if err != nil {
			t.Fatal(err)
		}
		m2.Run(cut)
		st := m2.CaptureState()
		m3 := NewMachine(len(m2.Mem), nil)
		if err := m3.RestoreState(st); err != nil {
			t.Fatal(err)
		}
		// Resume with the remaining budget so long-running programs stop at
		// the same instruction count as the uninterrupted machine.
		m3.Run(10_000 - m2.ICount)

		if m1.ICount != m3.ICount || m1.Regs != m3.Regs || m1.PC != m3.PC {
			return false
		}
		for i := range m1.Mem {
			if m1.Mem[i] != m3.Mem[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestDeviceSnapshotRoundTrip(t *testing.T) {
	d := NewDeviceSet(3)
	d.PushInput(7)
	d.PushInput(9)
	d.PushPacket(Packet{From: 2, Data: []byte("hello")})
	d.Disk = []byte{1, 2, 3, 4}
	d.TimerPeriodUs = 1000
	d.Frames = 42
	m := NewMachine(PageSize, d)
	d.Out(m, PortNetTxByte, 'x') // pending tx buffer
	d.Out(m, PortDiskSeek, 2)
	blob := d.Snapshot()

	d2 := NewDeviceSet(0)
	if err := d2.RestoreSnapshot(blob); err != nil {
		t.Fatal(err)
	}
	if d2.InputPending() != 2 || d2.RxPending() != 1 || d2.TimerPeriodUs != 1000 || d2.Frames != 42 {
		t.Fatalf("restored device state differs: %+v", d2)
	}
	if string(d2.Disk) != string(d.Disk) {
		t.Fatal("disk differs")
	}
	// Both must produce identical reads afterwards.
	for _, port := range []uint32{PortRng, PortInputData, PortNetRxLen, PortNetRxByte, PortDiskRead} {
		if a, b := d.In(m, port), d2.In(m, port); a != b {
			t.Fatalf("port 0x%x differs after restore: %d vs %d", port, a, b)
		}
	}
	if err := d2.RestoreSnapshot(blob[:3]); err == nil {
		t.Fatal("truncated device snapshot accepted")
	}
}

func TestAuthSnapshotExcludesHostTiming(t *testing.T) {
	d := NewDeviceSet(3)
	m := NewMachine(PageSize, d)
	d.Out(m, PortTimerPeriod, 500)
	d.In(m, PortClockLo)
	a1 := d.AuthSnapshot()
	d.NextTimerNs = 999_999
	d.In(m, PortClockLo) // bump clockReads
	a2 := d.AuthSnapshot()
	if string(a1) != string(a2) {
		t.Fatal("AuthSnapshot depends on host-timing fields")
	}
	if string(d.Snapshot()) == string(a2) {
		t.Fatal("full snapshot should include host-timing fields")
	}
}

func TestDeviceNetRxFlow(t *testing.T) {
	d := NewDeviceSet(1)
	m := NewMachine(PageSize, d)
	d.PushPacket(Packet{From: 3, Data: []byte{10, 20, 30}})
	d.PushPacket(Packet{From: 4, Data: []byte{40}})
	if got := d.In(m, PortNetRxStatus); got != 2 {
		t.Fatalf("status = %d", got)
	}
	if got := d.In(m, PortNetRxLen); got != 3 {
		t.Fatalf("len = %d", got)
	}
	if got := d.In(m, PortNetRxFrom); got != 3 {
		t.Fatalf("from = %d", got)
	}
	if a, b, c := d.In(m, PortNetRxByte), d.In(m, PortNetRxByte), d.In(m, PortNetRxByte); a != 10 || b != 20 || c != 30 {
		t.Fatalf("bytes = %d %d %d", a, b, c)
	}
	if got := d.In(m, PortNetRxByte); got != 0 {
		t.Fatalf("read past end = %d, want 0", got)
	}
	d.Out(m, PortNetRxDone, 0)
	if got := d.In(m, PortNetRxLen); got != 1 {
		t.Fatalf("second packet len = %d", got)
	}
}

func TestDeviceTxCommit(t *testing.T) {
	d := NewDeviceSet(1)
	m := NewMachine(PageSize, d)
	var sentTo uint32
	var sent []byte
	d.SendFunc = func(dest uint32, payload []byte) {
		sentTo = dest
		sent = payload
	}
	d.Out(m, PortNetTxByte, 'h')
	d.Out(m, PortNetTxByte, 'i')
	d.Out(m, PortNetTxCommit, 5)
	if sentTo != 5 || string(sent) != "hi" {
		t.Fatalf("sent %q to %d", sent, sentTo)
	}
	// Buffer resets after commit.
	d.Out(m, PortNetTxByte, '!')
	d.Out(m, PortNetTxCommit, 6)
	if string(sent) != "!" {
		t.Fatalf("second send = %q", sent)
	}
}

func TestDiskReadWrite(t *testing.T) {
	d := NewDeviceSet(1)
	d.Disk = make([]byte, 16)
	m := NewMachine(PageSize, d)
	d.Out(m, PortDiskSeek, 4)
	d.Out(m, PortDiskWrite, 0xAA)
	d.Out(m, PortDiskWrite, 0xBB)
	d.Out(m, PortDiskSeek, 4)
	if a, b := d.In(m, PortDiskRead), d.In(m, PortDiskRead); a != 0xAA || b != 0xBB {
		t.Fatalf("disk read %x %x", a, b)
	}
	// Reads past the end return zero, writes are dropped.
	d.Out(m, PortDiskSeek, 100)
	d.Out(m, PortDiskWrite, 1)
	if got := d.In(m, PortDiskRead); got != 0 {
		t.Fatalf("oob read = %d", got)
	}
}

func TestNondetPortClassification(t *testing.T) {
	nondet := []uint32{PortClockLo, PortClockHi, PortRng, PortInputStatus,
		PortInputData, PortNetRxStatus, PortNetRxLen, PortNetRxFrom, PortNetRxByte}
	det := []uint32{PortConsole, PortNetRxDone, PortNetTxByte, PortNetTxCommit,
		PortDiskSeek, PortDiskRead, PortDiskWrite, PortTimerPeriod, PortFrame, PortDebug}
	for _, p := range nondet {
		if !IsNondetPort(p) {
			t.Errorf("port 0x%x should be nondeterministic", p)
		}
	}
	for _, p := range det {
		if IsNondetPort(p) {
			t.Errorf("port 0x%x should be deterministic", p)
		}
	}
}
