package lang

// The AST. All values are 32-bit words; there is no type structure beyond
// scalar vs array.

type program struct {
	consts  []*constDecl
	globals []*varDecl
	funcs   []*funcDecl
}

type constDecl struct {
	name string
	expr expr
	line int
}

type varDecl struct {
	name     string
	arrayLen expr // nil for scalars; const expression for arrays
	init     expr // nil or const expression (globals) / any expression (locals)
	line     int
}

type funcDecl struct {
	name   string
	params []string
	body   []stmt
	irq    int // -1 for ordinary functions; IRQ number for interrupt handlers
	line   int
}

// Statements.
type stmt interface{ stmtNode() }

type assignStmt struct {
	name  string
	index expr // nil for scalar assignment
	value expr
	line  int
}

type localDecl struct {
	decl *varDecl
}

type ifStmt struct {
	cond        expr
	then, else_ []stmt
	line        int
}

type whileStmt struct {
	cond expr
	body []stmt
	line int
}

type returnStmt struct {
	value expr // may be nil
	line  int
}

type breakStmt struct{ line int }

type continueStmt struct{ line int }

type exprStmt struct {
	e    expr
	line int
}

func (*assignStmt) stmtNode()   {}
func (*localDecl) stmtNode()    {}
func (*ifStmt) stmtNode()       {}
func (*whileStmt) stmtNode()    {}
func (*returnStmt) stmtNode()   {}
func (*breakStmt) stmtNode()    {}
func (*continueStmt) stmtNode() {}
func (*exprStmt) stmtNode()     {}

// Expressions.
type expr interface{ exprNode() }

type numExpr struct {
	val  uint32
	line int
}

type identExpr struct {
	name string
	line int
}

type indexExpr struct {
	name  string
	index expr
	line  int
}

type callExpr struct {
	name string
	args []expr
	line int
}

type strExpr struct {
	val  string
	line int
}

type unaryExpr struct {
	op   string // "-", "!", "~"
	x    expr
	line int
}

type binExpr struct {
	op   string
	x, y expr
	line int
}

func (*numExpr) exprNode()   {}
func (*identExpr) exprNode() {}
func (*indexExpr) exprNode() {}
func (*callExpr) exprNode()  {}
func (*strExpr) exprNode()   {}
func (*unaryExpr) exprNode() {}
func (*binExpr) exprNode()   {}

func exprLine(e expr) int {
	switch v := e.(type) {
	case *numExpr:
		return v.line
	case *identExpr:
		return v.line
	case *indexExpr:
		return v.line
	case *callExpr:
		return v.line
	case *strExpr:
		return v.line
	case *unaryExpr:
		return v.line
	case *binExpr:
		return v.line
	}
	return 0
}
