package lang

import (
	"testing"

	"repro/internal/vm"
)

func TestDataSectionIsPageAligned(t *testing.T) {
	img, err := Compile("align", `
		var g = 7;
		func main() { g = g + 1; }
	`, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if img.TextSize == 0 || img.TextSize >= len(img.Code) {
		t.Fatalf("TextSize = %d of %d", img.TextSize, len(img.Code))
	}
	dataBase := int(vm.CodeBase) + len(img.Code) - 4 // g's address (single word)
	if dataBase%vm.PageSize != 0 {
		t.Fatalf("data section base 0x%x not page aligned", dataBase)
	}
}

func TestNestedControlFlow(t *testing.T) {
	_, devs := runGuest(t, `
		func main() {
			var total = 0;
			var i = 0;
			while (i < 4) {
				var j = 0;
				while (j < 4) {
					if (i == j) {
						if (i % 2 == 0) { total = total + 100; }
						else { total = total + 10; }
					} else {
						total = total + 1;
					}
					j = j + 1;
				}
				i = i + 1;
			}
			out(0x60, total);  // 2*100 + 2*10 + 12*1 = 232
		}
	`, 1e6)
	if len(devs.Debug) != 1 || devs.Debug[0] != 232 {
		t.Fatalf("debug = %v, want [232]", devs.Debug)
	}
}

func TestDeepRecursionUsesStackCorrectly(t *testing.T) {
	_, devs := runGuest(t, `
		func sum(n) {
			if (n == 0) { return 0; }
			return n + sum(n - 1);
		}
		func main() { out(0x60, sum(200)); }
	`, 1e6)
	if len(devs.Debug) != 1 || devs.Debug[0] != 20100 {
		t.Fatalf("sum(200) = %v, want 20100", devs.Debug)
	}
}

func TestMultipleParametersEvaluationOrder(t *testing.T) {
	_, devs := runGuest(t, `
		var trace = 0;
		func mark(v) { trace = trace * 10 + v; return v; }
		func three(a, b, c) { return a * 100 + b * 10 + c; }
		func main() {
			out(0x60, three(mark(1), mark(2), mark(3)));
			out(0x60, trace);
		}
	`, 1e6)
	if len(devs.Debug) != 2 || devs.Debug[0] != 123 || devs.Debug[1] != 123 {
		t.Fatalf("debug = %v, want [123 123] (left-to-right evaluation)", devs.Debug)
	}
}

func TestInterruptHandlerPreservesScratchRegisters(t *testing.T) {
	// A handler that does heavy register work must not corrupt the
	// interrupted computation.
	src := `
		var ticks = 0;
		interrupt(0) func noisy() {
			var a = 111;
			var b = 222;
			var c = a * b + 333;
			ticks = ticks + (c & 1);
		}
		func main() {
			sti();
			var total = 0;
			var i = 0;
			while (i < 2000) {
				total = total + i * 3 + 1;
				i = i + 1;
			}
			out(0x60, total);
		}
	`
	img, err := Compile("scratch", src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Run once without interrupts for the reference answer.
	devs1 := vm.NewDeviceSet(1)
	m1, err := img.Boot(devs1)
	if err != nil {
		t.Fatal(err)
	}
	m1.Run(1e6)
	want := devs1.Debug[0]

	// Run again with the timer hammering every 150 instructions.
	devs2 := vm.NewDeviceSet(1)
	m2, err := img.Boot(devs2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000 && !m2.Halted; i++ {
		m2.Run(150)
		m2.RaiseIRQ(0)
	}
	m2.Run(1e6)
	if m2.FaultInfo != nil {
		t.Fatalf("fault under interrupt load: %v", m2.FaultInfo)
	}
	if got := devs2.Debug[0]; got != want {
		t.Fatalf("interrupts corrupted computation: %d != %d", got, want)
	}
}

func TestShadowingParamRejected(t *testing.T) {
	_, err := Compile("t", `func f(a) { var a = 1; } func main() { f(0); }`, Options{})
	if err == nil {
		t.Fatal("parameter shadowing accepted")
	}
}

func TestCallInterruptHandlerRejected(t *testing.T) {
	_, err := Compile("t", `
		interrupt(0) func h() { }
		func main() { h(); }
	`, Options{})
	if err == nil {
		t.Fatal("direct call of interrupt handler accepted")
	}
}

func TestCharLiteralsAndEscapes(t *testing.T) {
	_, devs := runGuest(t, `
		func main() {
			out(0x60, 'A');
			out(0x60, '\n');
			out(0x60, '\\');
			out(0x60, '\'');
			out(0x60, '\0');
		}
	`, 1e5)
	want := []uint32{65, 10, 92, 39, 0}
	for i, w := range want {
		if devs.Debug[i] != w {
			t.Errorf("char %d = %d, want %d", i, devs.Debug[i], w)
		}
	}
}

func TestHexLiteralsAndOperatorPrecedence(t *testing.T) {
	_, devs := runGuest(t, `
		func main() {
			out(0x60, 0xFF + 1);
			out(0x60, 2 + 3 * 4 - 1);        // 13
			out(0x60, 1 << 2 + 1);           // shift binds tighter than? precedence: + tighter than <<: 1<<3 = 8
			out(0x60, (7 & 3) | (4 ^ 1));    // 3 | 5 = 7
			out(0x60, 10 > 3 == 1);          // (10>3)==1 = 1
		}
	`, 1e5)
	want := []uint32{256, 13, 8, 7, 1}
	for i, w := range want {
		if devs.Debug[i] != w {
			t.Errorf("expr %d = %d, want %d", i, devs.Debug[i], w)
		}
	}
}

func TestEmptyFunctionAndVoidReturn(t *testing.T) {
	_, devs := runGuest(t, `
		func nothing() { }
		func early(v) {
			if (v > 5) { return 1; }
			return;
		}
		func main() {
			nothing();
			out(0x60, early(10));
			out(0x60, early(1));
		}
	`, 1e5)
	if devs.Debug[0] != 1 || devs.Debug[1] != 0 {
		t.Fatalf("debug = %v", devs.Debug)
	}
}

func TestWhileOverUnsignedBoundary(t *testing.T) {
	// Signed comparison semantics: a loop counting down past zero must
	// terminate via the signed < test.
	_, devs := runGuest(t, `
		func main() {
			var i = 3;
			var n = 0;
			while (i >= 0) { n = n + 1; i = i - 1; }
			out(0x60, n);
		}
	`, 1e5)
	if devs.Debug[0] != 4 {
		t.Fatalf("iterations = %d, want 4", devs.Debug[0])
	}
}
