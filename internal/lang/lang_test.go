package lang

import (
	"strings"
	"testing"

	"repro/internal/vm"
)

// runGuest compiles src, boots it with a fresh device set, runs up to
// maxInstr instructions, and returns the machine and devices.
func runGuest(t *testing.T, src string, maxInstr uint64) (*vm.Machine, *vm.DeviceSet) {
	t.Helper()
	img, err := Compile("test", src, Options{})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	devs := vm.NewDeviceSet(1)
	m, err := img.Boot(devs)
	if err != nil {
		t.Fatalf("boot: %v", err)
	}
	m.Run(maxInstr)
	if m.FaultInfo != nil {
		t.Fatalf("guest faulted: %v", m.FaultInfo)
	}
	return m, devs
}

func TestArithmetic(t *testing.T) {
	_, devs := runGuest(t, `
		func main() {
			debugout(2 + 3 * 4);          // 14
			debugout(10 - 3);             // 7
			debugout(100 / 7);            // 14
			debugout(100 % 7);            // 2
			debugout(1 << 10);            // 1024
			debugout(0xFF00 >> 8);        // 0xFF
			debugout(0xF0 & 0x3C);        // 0x30
			debugout(0xF0 | 0x0F);        // 0xFF
			debugout(0xFF ^ 0x0F);        // 0xF0
			debugout(-5 + 6);             // 1
			debugout(~0);                 // 0xFFFFFFFF
		}
		func debugout(v) { out(0x60, v); }
	`, 1e6)
	want := []uint32{14, 7, 14, 2, 1024, 0xFF, 0x30, 0xFF, 0xF0, 1, 0xFFFFFFFF}
	if len(devs.Debug) != len(want) {
		t.Fatalf("debug trace = %v, want %v", devs.Debug, want)
	}
	for i, w := range want {
		if devs.Debug[i] != w {
			t.Errorf("debug[%d] = %d, want %d", i, devs.Debug[i], w)
		}
	}
}

func TestComparisonsAndLogic(t *testing.T) {
	_, devs := runGuest(t, `
		func main() {
			out(0x60, 3 < 5);
			out(0x60, 5 < 3);
			out(0x60, -1 < 1);      // signed comparison
			out(0x60, 3 <= 3);
			out(0x60, 4 > 3);
			out(0x60, 3 >= 4);
			out(0x60, 3 == 3);
			out(0x60, 3 != 3);
			out(0x60, 1 && 2);
			out(0x60, 0 && crash());
			out(0x60, 1 || crash());
			out(0x60, 0 || 0);
			out(0x60, !5);
			out(0x60, !0);
		}
		func crash() { out(0x60, 999); return 1; }
	`, 1e6)
	want := []uint32{1, 0, 1, 1, 1, 0, 1, 0, 1, 0, 1, 0, 0, 1}
	if len(devs.Debug) != len(want) {
		t.Fatalf("debug trace = %v, want %v", devs.Debug, want)
	}
	for i, w := range want {
		if devs.Debug[i] != w {
			t.Errorf("debug[%d] = %d, want %d", i, devs.Debug[i], w)
		}
	}
}

func TestFunctionsAndRecursion(t *testing.T) {
	_, devs := runGuest(t, `
		func fib(n) {
			if (n < 2) { return n; }
			return fib(n - 1) + fib(n - 2);
		}
		func main() {
			out(0x60, fib(15));
		}
	`, 1e7)
	if len(devs.Debug) != 1 || devs.Debug[0] != 610 {
		t.Fatalf("fib(15) via debug port = %v, want [610]", devs.Debug)
	}
}

func TestGlobalsAndArrays(t *testing.T) {
	_, devs := runGuest(t, `
		var counter = 7;
		var table[10];
		func main() {
			var i = 0;
			while (i < 10) {
				table[i] = i * i;
				i = i + 1;
			}
			counter = counter + table[9];
			out(0x60, counter);   // 7 + 81
			out(0x60, table[3]);  // 9
		}
	`, 1e6)
	if len(devs.Debug) != 2 || devs.Debug[0] != 88 || devs.Debug[1] != 9 {
		t.Fatalf("debug trace = %v, want [88 9]", devs.Debug)
	}
}

func TestWhileBreakContinue(t *testing.T) {
	_, devs := runGuest(t, `
		func main() {
			var i = 0;
			var sum = 0;
			while (1) {
				i = i + 1;
				if (i > 10) { break; }
				if (i % 2 == 0) { continue; }
				sum = sum + i;   // 1+3+5+7+9
			}
			out(0x60, sum);
		}
	`, 1e6)
	if len(devs.Debug) != 1 || devs.Debug[0] != 25 {
		t.Fatalf("debug trace = %v, want [25]", devs.Debug)
	}
}

func TestPrintAndPrintnum(t *testing.T) {
	_, devs := runGuest(t, `
		func main() {
			print("value=");
			printnum(1234);
			print("\n");
			printnum(0);
		}
	`, 1e6)
	got := devs.Console.String()
	if got != "value=1234\n0" {
		t.Fatalf("console = %q, want %q", got, "value=1234\n0")
	}
}

func TestConstFolding(t *testing.T) {
	_, devs := runGuest(t, `
		const A = 10;
		const B = A * 4 + 2;
		var g = B;
		func main() { out(0x60, g + A); }
	`, 1e6)
	if len(devs.Debug) != 1 || devs.Debug[0] != 52 {
		t.Fatalf("debug trace = %v, want [52]", devs.Debug)
	}
}

func TestInterruptHandler(t *testing.T) {
	src := `
		var ticks;
		interrupt(0) func on_timer() {
			ticks = ticks + 1;
		}
		func main() {
			sti();
			while (ticks < 3) { }
			out(0x60, ticks);
		}
	`
	img, err := Compile("irqtest", src, Options{})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	devs := vm.NewDeviceSet(1)
	m, err := img.Boot(devs)
	if err != nil {
		t.Fatalf("boot: %v", err)
	}
	// Drive the machine manually, raising the timer IRQ every 200
	// instructions.
	for i := 0; i < 100; i++ {
		m.Run(200)
		if m.Halted {
			break
		}
		m.RaiseIRQ(vm.IRQTimer)
	}
	if m.FaultInfo != nil {
		t.Fatalf("guest faulted: %v", m.FaultInfo)
	}
	if len(devs.Debug) != 1 || devs.Debug[0] != 3 {
		t.Fatalf("debug trace = %v, want [3]", devs.Debug)
	}
}

func TestMemrdMemwrAddrof(t *testing.T) {
	_, devs := runGuest(t, `
		var buf[4];
		func main() {
			var p = addrof(buf);
			memwr(p, 0xAABBCCDD);
			buf[1] = 7;
			out(0x60, buf[0]);
			out(0x60, memrd(p + 4));
		}
	`, 1e6)
	if len(devs.Debug) != 2 || devs.Debug[0] != 0xAABBCCDD || devs.Debug[1] != 7 {
		t.Fatalf("debug trace = %v", devs.Debug)
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"no main", `func f() {}`, "no main"},
		{"undefined", `func main() { x = 1; }`, "cannot assign"},
		{"undefined call", `func main() { f(); }`, "undefined function"},
		{"arity", `func f(a) {} func main() { f(); }`, "takes 1 arguments"},
		{"dup global", `var a; var a; func main() {}`, "duplicate"},
		{"break outside", `func main() { break; }`, "break outside loop"},
		{"bad string", `func main() { var s = "x"; }`, "string literals"},
		{"array init", `var a[3] = 5; func main() {}`, "initializer"},
		{"local array", `func main() { var a[3]; }`, "file scope"},
		{"irq range", `interrupt(99) func h() {} func main() {}`, "out of range"},
		{"nonconst port", `func main() { var p = 1; in(p); }`, "not a constant"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Compile("t", c.src, Options{})
			if err == nil {
				t.Fatalf("compile succeeded, want error containing %q", c.want)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error = %v, want it to contain %q", err, c.want)
			}
		})
	}
}

func TestDeterministicCompilation(t *testing.T) {
	src := `
		var a[10];
		func main() { var i = 0; while (i < 10) { a[i] = i; i = i + 1; } print("done"); }
	`
	img1, err := Compile("d", src, Options{})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	img2, err := Compile("d", src, Options{})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if img1.Hash() != img2.Hash() {
		t.Fatal("same source compiled to different images")
	}
}
