// Package lang implements MiniC, a small C-like language compiled to
// internal/vm images. Guest programs (the game client and server, the
// database server, the benchmark clients) are written in MiniC; cheats are
// derived by transforming their source or patching their compiled images,
// exactly as real cheats patch a game binary.
//
// The language is deliberately tiny: one data type (32-bit words), global
// scalars and arrays, functions, interrupt handlers, and intrinsics for
// port I/O. That is enough to express real interactive programs while
// keeping compilation — and therefore the reproduction — self-contained.
package lang

import (
	"fmt"
	"strconv"
	"strings"
)

// tokKind classifies tokens.
type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	tokPunct // operators and delimiters
)

type token struct {
	kind tokKind
	text string
	num  uint32 // value for tokNumber
	line int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	case tokNumber:
		return fmt.Sprintf("number %d", t.num)
	case tokString:
		return fmt.Sprintf("string %q", t.text)
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

// CompileError is a source-level error with a line number.
type CompileError struct {
	Name string
	Line int
	Msg  string
}

func (e *CompileError) Error() string {
	return fmt.Sprintf("%s:%d: %s", e.Name, e.Line, e.Msg)
}

type lexer struct {
	name string
	src  string
	pos  int
	line int
	toks []token
}

// punctuation tokens, longest first so that ">>" wins over ">".
var puncts = []string{
	"<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
	"+", "-", "*", "/", "%", "&", "|", "^", "~", "!", "<", ">", "=",
	"(", ")", "{", "}", "[", "]", ",", ";",
}

func lex(name, src string) ([]token, error) {
	l := &lexer{name: name, src: src, line: 1}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.toks = append(l.toks, token{kind: tokEOF, line: l.line})
			return l.toks, nil
		}
		c := l.src[l.pos]
		switch {
		case isIdentStart(c):
			start := l.pos
			for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
				l.pos++
			}
			l.toks = append(l.toks, token{kind: tokIdent, text: l.src[start:l.pos], line: l.line})
		case c >= '0' && c <= '9':
			if err := l.lexNumber(); err != nil {
				return nil, err
			}
		case c == '\'':
			if err := l.lexChar(); err != nil {
				return nil, err
			}
		case c == '"':
			if err := l.lexString(); err != nil {
				return nil, err
			}
		default:
			if !l.lexPunct() {
				return nil, &CompileError{Name: name, Line: l.line, Msg: fmt.Sprintf("unexpected character %q", c)}
			}
		}
	}
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		default:
			return
		}
	}
}

func (l *lexer) lexNumber() error {
	start := l.pos
	base := 10
	if strings.HasPrefix(l.src[l.pos:], "0x") || strings.HasPrefix(l.src[l.pos:], "0X") {
		base = 16
		l.pos += 2
	}
	for l.pos < len(l.src) && (isHexDigit(l.src[l.pos])) {
		l.pos++
	}
	text := l.src[start:l.pos]
	digits := text
	if base == 16 {
		digits = text[2:]
	}
	v, err := strconv.ParseUint(digits, base, 64)
	if err != nil || v > 0xFFFFFFFF {
		return &CompileError{Name: l.name, Line: l.line, Msg: fmt.Sprintf("bad number %q", text)}
	}
	l.toks = append(l.toks, token{kind: tokNumber, text: text, num: uint32(v), line: l.line})
	return nil
}

func (l *lexer) lexChar() error {
	// 'c' or '\n' style character literal → number token.
	if l.pos+2 >= len(l.src) {
		return &CompileError{Name: l.name, Line: l.line, Msg: "unterminated character literal"}
	}
	l.pos++ // opening quote
	var v byte
	if l.src[l.pos] == '\\' {
		l.pos++
		switch l.src[l.pos] {
		case 'n':
			v = '\n'
		case 't':
			v = '\t'
		case '\\':
			v = '\\'
		case '\'':
			v = '\''
		case '0':
			v = 0
		default:
			return &CompileError{Name: l.name, Line: l.line, Msg: fmt.Sprintf("bad escape \\%c", l.src[l.pos])}
		}
	} else {
		v = l.src[l.pos]
	}
	l.pos++
	if l.pos >= len(l.src) || l.src[l.pos] != '\'' {
		return &CompileError{Name: l.name, Line: l.line, Msg: "unterminated character literal"}
	}
	l.pos++
	l.toks = append(l.toks, token{kind: tokNumber, num: uint32(v), text: string(v), line: l.line})
	return nil
}

func (l *lexer) lexString() error {
	l.pos++ // opening quote
	var sb strings.Builder
	for {
		if l.pos >= len(l.src) {
			return &CompileError{Name: l.name, Line: l.line, Msg: "unterminated string literal"}
		}
		c := l.src[l.pos]
		if c == '"' {
			l.pos++
			break
		}
		if c == '\n' {
			return &CompileError{Name: l.name, Line: l.line, Msg: "newline in string literal"}
		}
		if c == '\\' {
			l.pos++
			if l.pos >= len(l.src) {
				return &CompileError{Name: l.name, Line: l.line, Msg: "unterminated escape"}
			}
			switch l.src[l.pos] {
			case 'n':
				sb.WriteByte('\n')
			case 't':
				sb.WriteByte('\t')
			case '"':
				sb.WriteByte('"')
			case '\\':
				sb.WriteByte('\\')
			default:
				return &CompileError{Name: l.name, Line: l.line, Msg: fmt.Sprintf("bad escape \\%c", l.src[l.pos])}
			}
			l.pos++
			continue
		}
		sb.WriteByte(c)
		l.pos++
	}
	l.toks = append(l.toks, token{kind: tokString, text: sb.String(), line: l.line})
	return nil
}

func (l *lexer) lexPunct() bool {
	for _, p := range puncts {
		if strings.HasPrefix(l.src[l.pos:], p) {
			l.toks = append(l.toks, token{kind: tokPunct, text: p, line: l.line})
			l.pos += len(p)
			return true
		}
	}
	return false
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool { return isIdentStart(c) || (c >= '0' && c <= '9') }

func isHexDigit(c byte) bool {
	return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}
