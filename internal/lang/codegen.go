package lang

import (
	"fmt"

	"repro/internal/vm"
)

// Register allocation contract: expression results land in R0; R1-R3 are
// scratch; R11 is kept zero for absolute addressing of globals; R14 is the
// frame pointer and R15 the stack pointer. Interrupt handlers save R0-R5
// and FP, so R11 survives interrupts by construction.
const (
	r0  = 0
	r1  = 1
	r2  = 2
	r3  = 3
	r4  = 4
	rz  = 11 // always zero
	rfp = vm.RegFP
	rsp = vm.RegSP
)

type immKind uint8

const (
	immConst immKind = iota
	immLabel         // code label → absolute address
	immData          // data-section offset → absolute address
)

type asmIns struct {
	op         vm.Opcode
	ra, rb, rc uint8
	imm        uint32
	kind       immKind
	label      string
}

type symKind uint8

const (
	symConst symKind = iota
	symGlobal
	symArray
	symFunc
)

type symbol struct {
	kind     symKind
	value    uint32 // const value, or data-section offset for globals/arrays
	arrayLen uint32
	fn       *funcDecl
}

type codegen struct {
	name    string
	prog    *program
	syms    map[string]*symbol
	ins     []asmIns
	labels  map[string]int // label → instruction index
	data    []byte
	dataIni map[uint32]uint32 // data offset → initial word value
	strOffs map[string]uint32

	// per-function state
	fn            *funcDecl
	locals        map[string]int32 // name → FP-relative offset
	params        map[string]int32
	breakLbls     []string
	contLbls      []string
	epilogue      string
	labelSeq      int
	nextLocalSlot int32

	needPrints   bool
	needPrintnum bool
}

// Options configures compilation.
type Options struct {
	// MemSize is the machine memory size for the image (default 256 KiB).
	MemSize int
	// Disk is the initial virtual disk contents.
	Disk []byte
}

// Compile translates MiniC source into a bootable image.
func Compile(name, src string, opts Options) (*vm.Image, error) {
	prog, err := parse(name, src)
	if err != nil {
		return nil, err
	}
	g := &codegen{
		name:    name,
		prog:    prog,
		syms:    make(map[string]*symbol),
		labels:  make(map[string]int),
		dataIni: make(map[uint32]uint32),
		strOffs: make(map[string]uint32),
	}
	img, err := g.run(opts)
	if err != nil {
		return nil, err
	}
	img.Name = name
	return img, nil
}

func (g *codegen) errf(line int, format string, args ...interface{}) error {
	return &CompileError{Name: g.name, Line: line, Msg: fmt.Sprintf(format, args...)}
}

func (g *codegen) run(opts Options) (*vm.Image, error) {
	// Pass 1: constants.
	for _, c := range g.prog.consts {
		if _, dup := g.syms[c.name]; dup {
			return nil, g.errf(c.line, "duplicate declaration of %q", c.name)
		}
		v, err := g.evalConst(c.expr)
		if err != nil {
			return nil, err
		}
		g.syms[c.name] = &symbol{kind: symConst, value: v}
	}
	// Pass 2: global layout.
	var dataOff uint32
	for _, v := range g.prog.globals {
		if _, dup := g.syms[v.name]; dup {
			return nil, g.errf(v.line, "duplicate declaration of %q", v.name)
		}
		s := &symbol{value: dataOff}
		if v.arrayLen != nil {
			n, err := g.evalConst(v.arrayLen)
			if err != nil {
				return nil, err
			}
			if n == 0 || n > 1<<20 {
				return nil, g.errf(v.line, "array %q has unreasonable length %d", v.name, n)
			}
			s.kind = symArray
			s.arrayLen = n
			dataOff += 4 * n
		} else {
			s.kind = symGlobal
			dataOff += 4
			if v.init != nil {
				val, err := g.evalConst(v.init)
				if err != nil {
					return nil, err
				}
				g.dataIni[s.value] = val
			}
		}
		g.syms[v.name] = s
	}
	g.data = make([]byte, dataOff)
	for off, val := range g.dataIni {
		putWord(g.data, off, val)
	}
	// Pass 3: function symbols.
	var mainFn *funcDecl
	for _, f := range g.prog.funcs {
		if _, dup := g.syms[f.name]; dup {
			return nil, g.errf(f.line, "duplicate declaration of %q", f.name)
		}
		g.syms[f.name] = &symbol{kind: symFunc, fn: f}
		if f.name == "main" {
			mainFn = f
		}
		if f.irq >= vm.NumIRQs {
			return nil, g.errf(f.line, "IRQ %d out of range [0,%d)", f.irq, vm.NumIRQs)
		}
	}
	if mainFn == nil {
		return nil, &CompileError{Name: g.name, Line: 1, Msg: "no main function"}
	}
	if len(mainFn.params) != 0 {
		return nil, g.errf(mainFn.line, "main takes no parameters")
	}

	// Entry stub: zero R11, call main, halt.
	g.emit(vm.OpMovi, rz, 0, 0, 0)
	g.emitLabelRef(vm.OpCall, 0, "f_main")
	g.emit(vm.OpHlt, 0, 0, 0, 0)

	// Function bodies.
	for _, f := range g.prog.funcs {
		if err := g.genFunc(f); err != nil {
			return nil, err
		}
	}
	if g.needPrints {
		g.genPrintsRuntime()
	}
	if g.needPrintnum {
		g.genPrintnumRuntime()
	}

	// Resolve labels and data references, encode. The data section is
	// aligned to the next page boundary so that text and data never share a
	// page — the separation replay-time write analysis (W^X) relies on.
	codeSize := uint32(len(g.ins) * vm.InstrSize)
	pad := (vm.PageSize - int(vm.CodeBase+codeSize)%vm.PageSize) % vm.PageSize
	dataBase := vm.CodeBase + codeSize + uint32(pad)
	code := make([]byte, 0, int(codeSize)+pad+len(g.data))
	for i := range g.ins {
		a := &g.ins[i]
		imm := a.imm
		switch a.kind {
		case immLabel:
			idx, ok := g.labels[a.label]
			if !ok {
				return nil, fmt.Errorf("lang: internal error: undefined label %q", a.label)
			}
			imm = vm.CodeBase + uint32(idx)*vm.InstrSize
		case immData:
			imm = dataBase + a.imm
		}
		code = vm.Instr{Op: a.op, Ra: a.ra, Rb: a.rb, Rc: a.rc, Imm: imm}.Encode(code)
	}
	code = append(code, make([]byte, pad)...)
	code = append(code, g.data...)

	img := &vm.Image{
		Code:     code,
		TextSize: int(codeSize),
		Entry:    vm.CodeBase,
		MemSize:  opts.MemSize,
		Disk:     opts.Disk,
	}
	for _, f := range g.prog.funcs {
		if f.irq >= 0 {
			idx := g.labels["f_"+f.name]
			img.Vectors[f.irq] = vm.CodeBase + uint32(idx)*vm.InstrSize
		}
	}
	return img, nil
}

func putWord(b []byte, off uint32, v uint32) {
	b[off] = byte(v)
	b[off+1] = byte(v >> 8)
	b[off+2] = byte(v >> 16)
	b[off+3] = byte(v >> 24)
}

// --- emission helpers ---

func (g *codegen) emit(op vm.Opcode, ra, rb, rc uint8, imm uint32) {
	g.ins = append(g.ins, asmIns{op: op, ra: ra, rb: rb, rc: rc, imm: imm})
}

func (g *codegen) emitLabelRef(op vm.Opcode, ra uint8, label string) {
	g.ins = append(g.ins, asmIns{op: op, ra: ra, kind: immLabel, label: label})
}

func (g *codegen) emitDataRef(op vm.Opcode, ra, rb uint8, off uint32) {
	g.ins = append(g.ins, asmIns{op: op, ra: ra, rb: rb, kind: immData, imm: off})
}

func (g *codegen) placeLabel(label string) { g.labels[label] = len(g.ins) }

func (g *codegen) newLabel(hint string) string {
	g.labelSeq++
	return fmt.Sprintf("L%d_%s", g.labelSeq, hint)
}

// --- constant evaluation ---

func (g *codegen) evalConst(e expr) (uint32, error) {
	switch v := e.(type) {
	case *numExpr:
		return v.val, nil
	case *identExpr:
		s, ok := g.syms[v.name]
		if !ok || s.kind != symConst {
			return 0, g.errf(v.line, "%q is not a constant", v.name)
		}
		return s.value, nil
	case *unaryExpr:
		x, err := g.evalConst(v.x)
		if err != nil {
			return 0, err
		}
		switch v.op {
		case "-":
			return -x, nil
		case "!":
			if x == 0 {
				return 1, nil
			}
			return 0, nil
		case "~":
			return ^x, nil
		}
	case *binExpr:
		x, err := g.evalConst(v.x)
		if err != nil {
			return 0, err
		}
		y, err := g.evalConst(v.y)
		if err != nil {
			return 0, err
		}
		switch v.op {
		case "+":
			return x + y, nil
		case "-":
			return x - y, nil
		case "*":
			return x * y, nil
		case "/":
			if y == 0 {
				return 0, g.errf(v.line, "constant division by zero")
			}
			return x / y, nil
		case "%":
			if y == 0 {
				return 0, g.errf(v.line, "constant modulo by zero")
			}
			return x % y, nil
		case "&":
			return x & y, nil
		case "|":
			return x | y, nil
		case "^":
			return x ^ y, nil
		case "<<":
			return x << (y & 31), nil
		case ">>":
			return x >> (y & 31), nil
		case "==":
			return b2w(x == y), nil
		case "!=":
			return b2w(x != y), nil
		case "<":
			return b2w(int32(x) < int32(y)), nil
		case "<=":
			return b2w(int32(x) <= int32(y)), nil
		case ">":
			return b2w(int32(x) > int32(y)), nil
		case ">=":
			return b2w(int32(x) >= int32(y)), nil
		case "&&":
			return b2w(x != 0 && y != 0), nil
		case "||":
			return b2w(x != 0 || y != 0), nil
		}
	}
	return 0, g.errf(exprLine(e), "expression is not constant")
}

func b2w(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

// --- function generation ---

func countLocals(stmts []stmt) int {
	n := 0
	for _, s := range stmts {
		switch v := s.(type) {
		case *localDecl:
			n++
		case *ifStmt:
			n += countLocals(v.then) + countLocals(v.else_)
		case *whileStmt:
			n += countLocals(v.body)
		}
	}
	return n
}

func (g *codegen) genFunc(f *funcDecl) error {
	g.fn = f
	g.locals = make(map[string]int32)
	g.params = make(map[string]int32)
	g.epilogue = g.newLabel("epi_" + f.name)
	nargs := len(f.params)
	for i, p := range f.params {
		if _, dup := g.params[p]; dup {
			return g.errf(f.line, "duplicate parameter %q", p)
		}
		g.params[p] = int32(8 + 4*(nargs-1-i))
	}

	g.placeLabel("f_" + f.name)
	isIRQ := f.irq >= 0
	if isIRQ {
		// Interrupt prologue: save the scratch set the compiler may clobber.
		for r := uint8(0); r <= r4+1; r++ {
			g.emit(vm.OpPush, r, 0, 0, 0)
		}
	}
	g.emit(vm.OpPush, rfp, 0, 0, 0)
	g.emit(vm.OpMov, rfp, rsp, 0, 0)
	nlocals := countLocals(f.body)
	if nlocals > 0 {
		g.emit(vm.OpAddi, rsp, rsp, 0, uint32(-(4 * int32(nlocals))))
	}

	g.nextLocalSlot = 0
	if err := g.genBlock(f.body); err != nil {
		return err
	}

	// Fall-through return with R0 = 0.
	g.emit(vm.OpMovi, r0, 0, 0, 0)
	g.placeLabel(g.epilogue)
	g.emit(vm.OpMov, rsp, rfp, 0, 0)
	g.emit(vm.OpPop, rfp, 0, 0, 0)
	if isIRQ {
		for r := int(r4 + 1); r >= 0; r-- {
			g.emit(vm.OpPop, uint8(r), 0, 0, 0)
		}
		g.emit(vm.OpIret, 0, 0, 0, 0)
	} else {
		g.emit(vm.OpRet, 0, 0, 0, 0)
	}
	return nil
}

func (g *codegen) genBlock(stmts []stmt) error {
	for _, s := range stmts {
		if err := g.genStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (g *codegen) genStmt(s stmt) error {
	switch v := s.(type) {
	case *localDecl:
		d := v.decl
		if _, dup := g.locals[d.name]; dup {
			return g.errf(d.line, "duplicate local %q", d.name)
		}
		if _, dup := g.params[d.name]; dup {
			return g.errf(d.line, "local %q shadows parameter", d.name)
		}
		g.nextLocalSlot++
		off := int32(-4 * g.nextLocalSlot)
		g.locals[d.name] = off
		if d.init != nil {
			if err := g.genExpr(d.init); err != nil {
				return err
			}
		} else {
			g.emit(vm.OpMovi, r0, 0, 0, 0)
		}
		g.emit(vm.OpStore, rfp, r0, 0, uint32(off))
		return nil
	case *assignStmt:
		return g.genAssign(v)
	case *ifStmt:
		elseLbl := g.newLabel("else")
		endLbl := g.newLabel("endif")
		if err := g.genExpr(v.cond); err != nil {
			return err
		}
		g.emitLabelRef(vm.OpJz, r0, elseLbl)
		if err := g.genBlock(v.then); err != nil {
			return err
		}
		g.emitLabelRef(vm.OpJmp, 0, endLbl)
		g.placeLabel(elseLbl)
		if err := g.genBlock(v.else_); err != nil {
			return err
		}
		g.placeLabel(endLbl)
		return nil
	case *whileStmt:
		topLbl := g.newLabel("while")
		endLbl := g.newLabel("endwhile")
		g.breakLbls = append(g.breakLbls, endLbl)
		g.contLbls = append(g.contLbls, topLbl)
		g.placeLabel(topLbl)
		if err := g.genExpr(v.cond); err != nil {
			return err
		}
		g.emitLabelRef(vm.OpJz, r0, endLbl)
		if err := g.genBlock(v.body); err != nil {
			return err
		}
		g.emitLabelRef(vm.OpJmp, 0, topLbl)
		g.placeLabel(endLbl)
		g.breakLbls = g.breakLbls[:len(g.breakLbls)-1]
		g.contLbls = g.contLbls[:len(g.contLbls)-1]
		return nil
	case *returnStmt:
		if v.value != nil {
			if err := g.genExpr(v.value); err != nil {
				return err
			}
		} else {
			g.emit(vm.OpMovi, r0, 0, 0, 0)
		}
		g.emitLabelRef(vm.OpJmp, 0, g.epilogue)
		return nil
	case *breakStmt:
		if len(g.breakLbls) == 0 {
			return g.errf(v.line, "break outside loop")
		}
		g.emitLabelRef(vm.OpJmp, 0, g.breakLbls[len(g.breakLbls)-1])
		return nil
	case *continueStmt:
		if len(g.contLbls) == 0 {
			return g.errf(v.line, "continue outside loop")
		}
		g.emitLabelRef(vm.OpJmp, 0, g.contLbls[len(g.contLbls)-1])
		return nil
	case *exprStmt:
		return g.genExpr(v.e)
	}
	return fmt.Errorf("lang: internal error: unknown statement %T", s)
}

func (g *codegen) genAssign(a *assignStmt) error {
	if a.index == nil {
		if off, ok := g.locals[a.name]; ok {
			if err := g.genExpr(a.value); err != nil {
				return err
			}
			g.emit(vm.OpStore, rfp, r0, 0, uint32(off))
			return nil
		}
		if off, ok := g.params[a.name]; ok {
			if err := g.genExpr(a.value); err != nil {
				return err
			}
			g.emit(vm.OpStore, rfp, r0, 0, uint32(off))
			return nil
		}
		s, ok := g.syms[a.name]
		if !ok || s.kind != symGlobal {
			return g.errf(a.line, "cannot assign to %q", a.name)
		}
		if err := g.genExpr(a.value); err != nil {
			return err
		}
		g.emitDataRef(vm.OpStore, rz, r0, s.value)
		return nil
	}
	s, ok := g.syms[a.name]
	if !ok || s.kind != symArray {
		return g.errf(a.line, "%q is not an array", a.name)
	}
	if err := g.genExpr(a.index); err != nil {
		return err
	}
	g.emit(vm.OpPush, r0, 0, 0, 0)
	if err := g.genExpr(a.value); err != nil {
		return err
	}
	g.emit(vm.OpPop, r1, 0, 0, 0)
	g.emit(vm.OpMovi, r2, 0, 0, 2)
	g.emit(vm.OpShl, r1, r1, r2, 0)
	g.emitDataRef(vm.OpStore, r1, r0, s.value)
	return nil
}

func (g *codegen) genExpr(e expr) error {
	switch v := e.(type) {
	case *numExpr:
		g.emit(vm.OpMovi, r0, 0, 0, v.val)
		return nil
	case *strExpr:
		return g.errf(v.line, "string literals are only allowed as the argument of print")
	case *identExpr:
		if off, ok := g.locals[v.name]; ok {
			g.emit(vm.OpLoad, r0, rfp, 0, uint32(off))
			return nil
		}
		if off, ok := g.params[v.name]; ok {
			g.emit(vm.OpLoad, r0, rfp, 0, uint32(off))
			return nil
		}
		s, ok := g.syms[v.name]
		if !ok {
			return g.errf(v.line, "undefined identifier %q", v.name)
		}
		switch s.kind {
		case symConst:
			g.emit(vm.OpMovi, r0, 0, 0, s.value)
		case symGlobal:
			g.emitDataRef(vm.OpLoad, r0, rz, s.value)
		default:
			return g.errf(v.line, "%q cannot be used as a value", v.name)
		}
		return nil
	case *indexExpr:
		s, ok := g.syms[v.name]
		if !ok || s.kind != symArray {
			return g.errf(v.line, "%q is not an array", v.name)
		}
		if err := g.genExpr(v.index); err != nil {
			return err
		}
		g.emit(vm.OpMovi, r1, 0, 0, 2)
		g.emit(vm.OpShl, r0, r0, r1, 0)
		g.emitDataRef(vm.OpLoad, r0, r0, s.value)
		return nil
	case *unaryExpr:
		if err := g.genExpr(v.x); err != nil {
			return err
		}
		switch v.op {
		case "-":
			g.emit(vm.OpMovi, r1, 0, 0, 0)
			g.emit(vm.OpSub, r0, r1, r0, 0)
		case "!":
			g.emit(vm.OpNot, r0, r0, 0, 0)
		case "~":
			g.emit(vm.OpMovi, r1, 0, 0, 0xFFFFFFFF)
			g.emit(vm.OpXor, r0, r0, r1, 0)
		}
		return nil
	case *binExpr:
		return g.genBinExpr(v)
	case *callExpr:
		return g.genCall(v)
	}
	return fmt.Errorf("lang: internal error: unknown expression %T", e)
}

func (g *codegen) genBinExpr(v *binExpr) error {
	// Short-circuit logical operators.
	if v.op == "&&" || v.op == "||" {
		shortLbl := g.newLabel("short")
		endLbl := g.newLabel("endlogic")
		if err := g.genExpr(v.x); err != nil {
			return err
		}
		if v.op == "&&" {
			g.emitLabelRef(vm.OpJz, r0, shortLbl)
		} else {
			g.emitLabelRef(vm.OpJnz, r0, shortLbl)
		}
		if err := g.genExpr(v.y); err != nil {
			return err
		}
		g.emit(vm.OpNot, r0, r0, 0, 0)
		g.emit(vm.OpNot, r0, r0, 0, 0)
		g.emitLabelRef(vm.OpJmp, 0, endLbl)
		g.placeLabel(shortLbl)
		if v.op == "&&" {
			g.emit(vm.OpMovi, r0, 0, 0, 0)
		} else {
			g.emit(vm.OpMovi, r0, 0, 0, 1)
		}
		g.placeLabel(endLbl)
		return nil
	}

	if err := g.genExpr(v.x); err != nil {
		return err
	}
	g.emit(vm.OpPush, r0, 0, 0, 0)
	if err := g.genExpr(v.y); err != nil {
		return err
	}
	g.emit(vm.OpMov, r1, r0, 0, 0)
	g.emit(vm.OpPop, r0, 0, 0, 0)
	switch v.op {
	case "+":
		g.emit(vm.OpAdd, r0, r0, r1, 0)
	case "-":
		g.emit(vm.OpSub, r0, r0, r1, 0)
	case "*":
		g.emit(vm.OpMul, r0, r0, r1, 0)
	case "/":
		g.emit(vm.OpDivu, r0, r0, r1, 0)
	case "%":
		g.emit(vm.OpModu, r0, r0, r1, 0)
	case "&":
		g.emit(vm.OpAnd, r0, r0, r1, 0)
	case "|":
		g.emit(vm.OpOr, r0, r0, r1, 0)
	case "^":
		g.emit(vm.OpXor, r0, r0, r1, 0)
	case "<<":
		g.emit(vm.OpShl, r0, r0, r1, 0)
	case ">>":
		g.emit(vm.OpShr, r0, r0, r1, 0)
	case "==":
		g.emit(vm.OpEq, r0, r0, r1, 0)
	case "!=":
		g.emit(vm.OpEq, r0, r0, r1, 0)
		g.emit(vm.OpNot, r0, r0, 0, 0)
	case "<":
		g.emit(vm.OpLts, r0, r0, r1, 0)
	case ">":
		g.emit(vm.OpLts, r0, r1, r0, 0)
	case "<=":
		g.emit(vm.OpLts, r0, r1, r0, 0)
		g.emit(vm.OpNot, r0, r0, 0, 0)
	case ">=":
		g.emit(vm.OpLts, r0, r0, r1, 0)
		g.emit(vm.OpNot, r0, r0, 0, 0)
	default:
		return g.errf(v.line, "unsupported operator %q", v.op)
	}
	return nil
}

func (g *codegen) genCall(c *callExpr) error {
	switch c.name {
	case "in":
		port, err := g.constArg(c, 0, 1)
		if err != nil {
			return err
		}
		g.emit(vm.OpIn, r0, 0, 0, port)
		return nil
	case "out":
		if len(c.args) != 2 {
			return g.errf(c.line, "out takes (port, value)")
		}
		port, err := g.evalConst(c.args[0])
		if err != nil {
			return err
		}
		if err := g.genExpr(c.args[1]); err != nil {
			return err
		}
		g.emit(vm.OpOut, r0, 0, 0, port)
		return nil
	case "halt":
		if err := g.checkArity(c, 0); err != nil {
			return err
		}
		g.emit(vm.OpHlt, 0, 0, 0, 0)
		return nil
	case "cli":
		if err := g.checkArity(c, 0); err != nil {
			return err
		}
		g.emit(vm.OpCli, 0, 0, 0, 0)
		return nil
	case "sti":
		if err := g.checkArity(c, 0); err != nil {
			return err
		}
		g.emit(vm.OpSti, 0, 0, 0, 0)
		return nil
	case "wfi":
		if err := g.checkArity(c, 0); err != nil {
			return err
		}
		g.emit(vm.OpWfi, 0, 0, 0, 0)
		return nil
	case "memrd":
		if err := g.checkArity(c, 1); err != nil {
			return err
		}
		if err := g.genExpr(c.args[0]); err != nil {
			return err
		}
		g.emit(vm.OpLoad, r0, r0, 0, 0)
		return nil
	case "memwr":
		if err := g.checkArity(c, 2); err != nil {
			return err
		}
		if err := g.genExpr(c.args[0]); err != nil {
			return err
		}
		g.emit(vm.OpPush, r0, 0, 0, 0)
		if err := g.genExpr(c.args[1]); err != nil {
			return err
		}
		g.emit(vm.OpPop, r1, 0, 0, 0)
		g.emit(vm.OpStore, r1, r0, 0, 0)
		return nil
	case "addrof":
		// addrof(arrayName) returns the absolute address of a global array,
		// allowing guests to build message buffers.
		if len(c.args) != 1 {
			return g.errf(c.line, "addrof takes one array name")
		}
		id, ok := c.args[0].(*identExpr)
		if !ok {
			return g.errf(c.line, "addrof takes an array name")
		}
		s, ok := g.syms[id.name]
		if !ok || (s.kind != symArray && s.kind != symGlobal) {
			return g.errf(c.line, "%q is not a global or array", id.name)
		}
		g.emitDataRef(vm.OpMovi, r0, 0, s.value)
		return nil
	case "print":
		if len(c.args) != 1 {
			return g.errf(c.line, "print takes one string literal")
		}
		s, ok := c.args[0].(*strExpr)
		if !ok {
			return g.errf(c.line, "print takes a string literal; use printnum for values")
		}
		off, ok := g.strOffs[s.val]
		if !ok {
			off = uint32(len(g.data))
			g.data = append(g.data, s.val...)
			g.strOffs[s.val] = off
		}
		g.needPrints = true
		g.emitDataRef(vm.OpMovi, r0, 0, off)
		g.emit(vm.OpPush, r0, 0, 0, 0)
		g.emit(vm.OpMovi, r0, 0, 0, uint32(len(s.val)))
		g.emit(vm.OpPush, r0, 0, 0, 0)
		g.emitLabelRef(vm.OpCall, 0, "f___prints")
		g.emit(vm.OpAddi, rsp, rsp, 0, 8)
		return nil
	case "printnum":
		if err := g.checkArity(c, 1); err != nil {
			return err
		}
		if err := g.genExpr(c.args[0]); err != nil {
			return err
		}
		g.needPrintnum = true
		g.emit(vm.OpPush, r0, 0, 0, 0)
		g.emitLabelRef(vm.OpCall, 0, "f___printnum")
		g.emit(vm.OpAddi, rsp, rsp, 0, 4)
		return nil
	}

	s, ok := g.syms[c.name]
	if !ok || s.kind != symFunc {
		return g.errf(c.line, "call to undefined function %q", c.name)
	}
	if s.fn.irq >= 0 {
		return g.errf(c.line, "interrupt handler %q cannot be called directly", c.name)
	}
	if len(c.args) != len(s.fn.params) {
		return g.errf(c.line, "%q takes %d arguments, got %d", c.name, len(s.fn.params), len(c.args))
	}
	for _, arg := range c.args {
		if err := g.genExpr(arg); err != nil {
			return err
		}
		g.emit(vm.OpPush, r0, 0, 0, 0)
	}
	g.emitLabelRef(vm.OpCall, 0, "f_"+c.name)
	if n := len(c.args); n > 0 {
		g.emit(vm.OpAddi, rsp, rsp, 0, uint32(4*n))
	}
	return nil
}

func (g *codegen) checkArity(c *callExpr, n int) error {
	if len(c.args) != n {
		return g.errf(c.line, "%s takes %d arguments, got %d", c.name, n, len(c.args))
	}
	return nil
}

// constArg evaluates argument i of c as a constant, checking total arity.
func (g *codegen) constArg(c *callExpr, i, arity int) (uint32, error) {
	if len(c.args) != arity {
		return 0, g.errf(c.line, "%s takes %d arguments, got %d", c.name, arity, len(c.args))
	}
	return g.evalConst(c.args[i])
}

// --- runtime helpers emitted on demand ---

// genPrintsRuntime emits __prints(addr, len): writes len bytes starting at
// addr to the console port.
func (g *codegen) genPrintsRuntime() {
	g.placeLabel("f___prints")
	g.emit(vm.OpPush, rfp, 0, 0, 0)
	g.emit(vm.OpMov, rfp, rsp, 0, 0)
	// addr at FP+12, len at FP+8 (pushed left to right).
	g.emit(vm.OpLoad, r2, rfp, 0, 12)
	g.emit(vm.OpLoad, r3, rfp, 0, 8)
	loop := g.newLabel("prints_loop")
	end := g.newLabel("prints_end")
	g.placeLabel(loop)
	g.emitLabelRef(vm.OpJz, r3, end)
	g.emit(vm.OpLoadb, r0, r2, 0, 0)
	g.emit(vm.OpOut, r0, 0, 0, vm.PortConsole)
	g.emit(vm.OpAddi, r2, r2, 0, 1)
	g.emit(vm.OpAddi, r3, r3, 0, 0xFFFFFFFF)
	g.emitLabelRef(vm.OpJmp, 0, loop)
	g.placeLabel(end)
	g.emit(vm.OpMov, rsp, rfp, 0, 0)
	g.emit(vm.OpPop, rfp, 0, 0, 0)
	g.emit(vm.OpRet, 0, 0, 0, 0)
}

// genPrintnumRuntime emits __printnum(v): writes v in decimal to the
// console port.
func (g *codegen) genPrintnumRuntime() {
	g.placeLabel("f___printnum")
	g.emit(vm.OpPush, rfp, 0, 0, 0)
	g.emit(vm.OpMov, rfp, rsp, 0, 0)
	g.emit(vm.OpLoad, r2, rfp, 0, 8) // v
	g.emit(vm.OpMovi, r3, 0, 0, 10)
	g.emit(vm.OpMovi, r4, 0, 0, 0) // digit count
	push := g.newLabel("pn_push")
	popp := g.newLabel("pn_pop")
	g.placeLabel(push)
	g.emit(vm.OpModu, r0, r2, r3, 0)
	g.emit(vm.OpAddi, r0, r0, 0, '0')
	g.emit(vm.OpPush, r0, 0, 0, 0)
	g.emit(vm.OpAddi, r4, r4, 0, 1)
	g.emit(vm.OpDivu, r2, r2, r3, 0)
	g.emitLabelRef(vm.OpJnz, r2, push)
	g.placeLabel(popp)
	g.emit(vm.OpPop, r0, 0, 0, 0)
	g.emit(vm.OpOut, r0, 0, 0, vm.PortConsole)
	g.emit(vm.OpAddi, r4, r4, 0, 0xFFFFFFFF)
	g.emitLabelRef(vm.OpJnz, r4, popp)
	g.emit(vm.OpMov, rsp, rfp, 0, 0)
	g.emit(vm.OpPop, rfp, 0, 0, 0)
	g.emit(vm.OpRet, 0, 0, 0, 0)
}
