package lang

import "fmt"

type parser struct {
	name string
	toks []token
	pos  int
}

func parse(name, src string) (*program, error) {
	toks, err := lex(name, src)
	if err != nil {
		return nil, err
	}
	p := &parser{name: name, toks: toks}
	prog := &program{}
	for !p.at(tokEOF, "") {
		switch {
		case p.at(tokIdent, "const"):
			d, err := p.constDecl()
			if err != nil {
				return nil, err
			}
			prog.consts = append(prog.consts, d)
		case p.at(tokIdent, "var"):
			d, err := p.varDecl()
			if err != nil {
				return nil, err
			}
			prog.globals = append(prog.globals, d)
		case p.at(tokIdent, "func") || p.at(tokIdent, "interrupt"):
			f, err := p.funcDecl()
			if err != nil {
				return nil, err
			}
			prog.funcs = append(prog.funcs, f)
		default:
			return nil, p.errorf("expected declaration, found %v", p.peek())
		}
	}
	return prog, nil
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) line() int   { return p.peek().line }

func (p *parser) at(kind tokKind, text string) bool {
	t := p.peek()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) accept(kind tokKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind tokKind, text string) (token, error) {
	if p.at(kind, text) {
		return p.next(), nil
	}
	want := text
	if want == "" {
		want = map[tokKind]string{tokIdent: "identifier", tokNumber: "number", tokString: "string"}[kind]
	}
	return token{}, p.errorf("expected %s, found %v", want, p.peek())
}

func (p *parser) errorf(format string, args ...interface{}) error {
	return &CompileError{Name: p.name, Line: p.line(), Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) constDecl() (*constDecl, error) {
	line := p.line()
	p.next() // const
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, "="); err != nil {
		return nil, err
	}
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, ";"); err != nil {
		return nil, err
	}
	return &constDecl{name: name.text, expr: e, line: line}, nil
}

func (p *parser) varDecl() (*varDecl, error) {
	line := p.line()
	p.next() // var
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	d := &varDecl{name: name.text, line: line}
	if p.accept(tokPunct, "[") {
		d.arrayLen, err = p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, "]"); err != nil {
			return nil, err
		}
	}
	if p.accept(tokPunct, "=") {
		d.init, err = p.expr()
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(tokPunct, ";"); err != nil {
		return nil, err
	}
	if d.arrayLen != nil && d.init != nil {
		return nil, &CompileError{Name: p.name, Line: line, Msg: "array declarations cannot have initializers"}
	}
	return d, nil
}

func (p *parser) funcDecl() (*funcDecl, error) {
	line := p.line()
	irq := -1
	if p.accept(tokIdent, "interrupt") {
		if _, err := p.expect(tokPunct, "("); err != nil {
			return nil, err
		}
		num, err := p.expect(tokNumber, "")
		if err != nil {
			return nil, err
		}
		irq = int(num.num)
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(tokIdent, "func"); err != nil {
		return nil, err
	}
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	f := &funcDecl{name: name.text, irq: irq, line: line}
	if !p.at(tokPunct, ")") {
		for {
			param, err := p.expect(tokIdent, "")
			if err != nil {
				return nil, err
			}
			f.params = append(f.params, param.text)
			if !p.accept(tokPunct, ",") {
				break
			}
		}
	}
	if _, err := p.expect(tokPunct, ")"); err != nil {
		return nil, err
	}
	if irq >= 0 && len(f.params) > 0 {
		return nil, &CompileError{Name: p.name, Line: line, Msg: "interrupt handlers take no parameters"}
	}
	f.body, err = p.block()
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (p *parser) block() ([]stmt, error) {
	if _, err := p.expect(tokPunct, "{"); err != nil {
		return nil, err
	}
	var stmts []stmt
	for !p.at(tokPunct, "}") {
		if p.at(tokEOF, "") {
			return nil, p.errorf("unexpected end of input in block")
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
	}
	p.next() // }
	return stmts, nil
}

func (p *parser) stmt() (stmt, error) {
	line := p.line()
	switch {
	case p.at(tokIdent, "var"):
		d, err := p.varDecl()
		if err != nil {
			return nil, err
		}
		if d.arrayLen != nil {
			return nil, &CompileError{Name: p.name, Line: d.line, Msg: "local arrays are not supported; declare arrays at file scope"}
		}
		return &localDecl{decl: d}, nil
	case p.at(tokIdent, "if"):
		return p.ifStmt()
	case p.at(tokIdent, "while"):
		p.next()
		if _, err := p.expect(tokPunct, "("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return &whileStmt{cond: cond, body: body, line: line}, nil
	case p.at(tokIdent, "return"):
		p.next()
		s := &returnStmt{line: line}
		if !p.at(tokPunct, ";") {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			s.value = e
		}
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		return s, nil
	case p.at(tokIdent, "break"):
		p.next()
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		return &breakStmt{line: line}, nil
	case p.at(tokIdent, "continue"):
		p.next()
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		return &continueStmt{line: line}, nil
	}

	// Assignment or expression statement. Disambiguate by looking ahead:
	// IDENT "=" ... or IDENT "[" ... "]" "=" ... are assignments.
	if p.at(tokIdent, "") {
		save := p.pos
		name := p.next()
		if p.accept(tokPunct, "=") {
			value, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokPunct, ";"); err != nil {
				return nil, err
			}
			return &assignStmt{name: name.text, value: value, line: line}, nil
		}
		if p.accept(tokPunct, "[") {
			index, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokPunct, "]"); err != nil {
				return nil, err
			}
			if p.accept(tokPunct, "=") {
				value, err := p.expr()
				if err != nil {
					return nil, err
				}
				if _, err := p.expect(tokPunct, ";"); err != nil {
					return nil, err
				}
				return &assignStmt{name: name.text, index: index, value: value, line: line}, nil
			}
		}
		p.pos = save
	}
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, ";"); err != nil {
		return nil, err
	}
	return &exprStmt{e: e, line: line}, nil
}

func (p *parser) ifStmt() (stmt, error) {
	line := p.line()
	p.next() // if
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, ")"); err != nil {
		return nil, err
	}
	then, err := p.block()
	if err != nil {
		return nil, err
	}
	s := &ifStmt{cond: cond, then: then, line: line}
	if p.accept(tokIdent, "else") {
		if p.at(tokIdent, "if") {
			elif, err := p.ifStmt()
			if err != nil {
				return nil, err
			}
			s.else_ = []stmt{elif}
		} else {
			s.else_, err = p.block()
			if err != nil {
				return nil, err
			}
		}
	}
	return s, nil
}

// Operator precedence, loosest first.
var precLevels = [][]string{
	{"||"},
	{"&&"},
	{"|"},
	{"^"},
	{"&"},
	{"==", "!="},
	{"<", "<=", ">", ">="},
	{"<<", ">>"},
	{"+", "-"},
	{"*", "/", "%"},
}

func (p *parser) expr() (expr, error) { return p.binExpr(0) }

func (p *parser) binExpr(level int) (expr, error) {
	if level >= len(precLevels) {
		return p.unaryExpr()
	}
	x, err := p.binExpr(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		matched := false
		for _, op := range precLevels[level] {
			if p.at(tokPunct, op) {
				line := p.line()
				p.next()
				y, err := p.binExpr(level + 1)
				if err != nil {
					return nil, err
				}
				x = &binExpr{op: op, x: x, y: y, line: line}
				matched = true
				break
			}
		}
		if !matched {
			return x, nil
		}
	}
}

func (p *parser) unaryExpr() (expr, error) {
	line := p.line()
	for _, op := range []string{"-", "!", "~"} {
		if p.at(tokPunct, op) {
			p.next()
			x, err := p.unaryExpr()
			if err != nil {
				return nil, err
			}
			return &unaryExpr{op: op, x: x, line: line}, nil
		}
	}
	return p.primary()
}

func (p *parser) primary() (expr, error) {
	t := p.peek()
	switch {
	case t.kind == tokNumber:
		p.next()
		return &numExpr{val: t.num, line: t.line}, nil
	case t.kind == tokString:
		p.next()
		return &strExpr{val: t.text, line: t.line}, nil
	case t.kind == tokIdent:
		p.next()
		if p.accept(tokPunct, "(") {
			call := &callExpr{name: t.text, line: t.line}
			if !p.at(tokPunct, ")") {
				for {
					arg, err := p.expr()
					if err != nil {
						return nil, err
					}
					call.args = append(call.args, arg)
					if !p.accept(tokPunct, ",") {
						break
					}
				}
			}
			if _, err := p.expect(tokPunct, ")"); err != nil {
				return nil, err
			}
			return call, nil
		}
		if p.accept(tokPunct, "[") {
			index, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokPunct, "]"); err != nil {
				return nil, err
			}
			return &indexExpr{name: t.text, index: index, line: t.line}, nil
		}
		return &identExpr{name: t.text, line: t.line}, nil
	case t.kind == tokPunct && t.text == "(":
		p.next()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		return e, nil
	}
	return nil, p.errorf("expected expression, found %v", t)
}
