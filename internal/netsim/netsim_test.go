package netsim

import (
	"testing"
	"testing/quick"
)

func collect(n *Network) *[]Frame {
	var got []Frame
	n.Deliver = func(f Frame) { got = append(got, f) }
	return &got
}

func TestDeliveryAfterLatency(t *testing.T) {
	n := New(Config{BaseLatencyNs: 1000})
	got := collect(n)
	n.Send(0, 0, 1, []byte("a"), 0)
	n.AdvanceTo(999)
	if len(*got) != 0 {
		t.Fatal("delivered before latency elapsed")
	}
	n.AdvanceTo(1000)
	if len(*got) != 1 || (*got)[0].From != 0 || (*got)[0].To != 1 {
		t.Fatalf("got %v", *got)
	}
}

func TestFIFOOrderingSameLink(t *testing.T) {
	n := New(Config{BaseLatencyNs: 100})
	got := collect(n)
	for i := 0; i < 10; i++ {
		n.Send(uint64(i), 0, 1, []byte{byte(i)}, 0)
	}
	n.AdvanceTo(10_000)
	if len(*got) != 10 {
		t.Fatalf("delivered %d frames", len(*got))
	}
	for i, f := range *got {
		if f.Data[0] != byte(i) {
			t.Fatalf("frame %d out of order", i)
		}
	}
}

func TestSimultaneousDeliveriesAreDeterministic(t *testing.T) {
	run := func() []byte {
		n := New(Config{BaseLatencyNs: 100, Seed: 5})
		got := collect(n)
		n.Send(0, 2, 1, []byte{'x'}, 0)
		n.Send(0, 3, 1, []byte{'y'}, 0)
		n.Send(0, 4, 1, []byte{'z'}, 0)
		n.AdvanceTo(200)
		var order []byte
		for _, f := range *got {
			order = append(order, f.Data[0])
		}
		return order
	}
	a, b := run(), run()
	if string(a) != string(b) {
		t.Fatalf("nondeterministic delivery order: %q vs %q", a, b)
	}
	if len(a) != 3 {
		t.Fatalf("delivered %d", len(a))
	}
}

func TestByteAccounting(t *testing.T) {
	n := New(Config{})
	got := collect(n)
	n.Send(0, 0, 1, []byte("abc"), 0)  // defaults to len(data)
	n.Send(0, 0, 1, []byte("abc"), 43) // explicit wire size
	n.AdvanceTo(1)
	st := n.NodeStats(0)
	if st.FramesSent != 2 || st.BytesSent != 3+43 {
		t.Fatalf("stats = %+v", st)
	}
	if len(*got) != 2 {
		t.Fatal("frames lost without loss configured")
	}
}

func TestLossIsDeterministicAndCounted(t *testing.T) {
	run := func() (int, int) {
		n := New(Config{BaseLatencyNs: 10, LossRate: 0x4000, Seed: 9}) // 25%
		got := collect(n)
		for i := 0; i < 400; i++ {
			n.Send(uint64(i), 0, 1, []byte{1}, 0)
		}
		n.AdvanceTo(100_000)
		return len(*got), n.NodeStats(0).FramesLost
	}
	d1, l1 := run()
	d2, l2 := run()
	if d1 != d2 || l1 != l2 {
		t.Fatal("loss pattern not deterministic")
	}
	if l1 == 0 || d1 == 0 {
		t.Fatalf("delivered=%d lost=%d; expected a mix", d1, l1)
	}
	if d1+l1 != 400 {
		t.Fatalf("delivered+lost = %d, want 400", d1+l1)
	}
	if l1 < 50 || l1 > 150 {
		t.Fatalf("lost %d of 400 at 25%% rate", l1)
	}
}

func TestJitterBounded(t *testing.T) {
	n := New(Config{BaseLatencyNs: 1000, JitterNs: 500, Seed: 3})
	var times []uint64
	n.Deliver = func(f Frame) { times = append(times, n.Now()) }
	for i := 0; i < 100; i++ {
		n.Send(0, 0, 1, []byte{1}, 0)
	}
	n.AdvanceTo(10_000)
	if len(times) != 100 {
		t.Fatalf("delivered %d", len(times))
	}
	spread := false
	for _, at := range times {
		if at < 1000 || at >= 1500 {
			t.Fatalf("delivery at %d outside [1000,1500)", at)
		}
		if at != 1000 {
			spread = true
		}
	}
	if !spread {
		t.Fatal("no jitter observed")
	}
}

func TestNextDeliveryAndPending(t *testing.T) {
	n := New(Config{BaseLatencyNs: 50})
	n.Deliver = func(Frame) {}
	if _, ok := n.NextDelivery(); ok {
		t.Fatal("empty network has a next delivery")
	}
	n.Send(10, 0, 1, []byte{1}, 0)
	at, ok := n.NextDelivery()
	if !ok || at != 60 {
		t.Fatalf("next delivery = %d, %v", at, ok)
	}
	if n.Pending() != 1 {
		t.Fatal("pending != 1")
	}
	n.AdvanceTo(100)
	if n.Pending() != 0 {
		t.Fatal("pending after delivery")
	}
}

func TestClockNeverGoesBackwards(t *testing.T) {
	n := New(Config{BaseLatencyNs: 100})
	n.Deliver = func(Frame) {}
	n.AdvanceTo(1000)
	n.Send(0, 0, 1, []byte{1}, 0) // sentAt before now is clamped
	n.AdvanceTo(2000)
	if n.Now() != 2000 {
		t.Fatalf("now = %d", n.Now())
	}
}

// TestPropertyAllFramesDeliveredInTimeOrder: with no loss, every frame is
// delivered exactly once and delivery times never decrease.
func TestPropertyAllFramesDeliveredInTimeOrder(t *testing.T) {
	f := func(sends []uint16) bool {
		if len(sends) > 200 {
			sends = sends[:200]
		}
		n := New(Config{BaseLatencyNs: 100, JitterNs: 50, Seed: 7})
		count := 0
		last := uint64(0)
		n.Deliver = func(Frame) {
			if n.Now() < last {
				t.Fatal("time went backwards")
			}
			last = n.Now()
			count++
		}
		for _, s := range sends {
			n.Send(uint64(s), 0, 1, []byte{1}, 0)
		}
		n.AdvanceTo(1 << 30)
		return count == len(sends)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
