// Package netsim provides the simulated network substrate: virtual-time
// message delivery with configurable latency, jitter and loss, and per-byte
// traffic accounting. It stands in for the paper's testbed LAN (three
// machines on a 1 Gbps switch, §6.2); only ordering, latency and byte
// counts matter to the protocol above it.
package netsim

import (
	"container/heap"
	"fmt"
)

// Frame is an opaque datagram between nodes. WireBytes is the IP-level size
// used for traffic accounting (payload plus whatever headers the sender's
// protocol layer charges), so measurements like §6.7 count what the paper
// counted.
type Frame struct {
	From, To  int
	Data      []byte
	WireBytes int
}

type event struct {
	at    uint64 // delivery time, virtual ns
	seq   uint64 // tiebreaker for determinism
	frame Frame
}

type eventQueue []event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

// Config sets the link characteristics.
type Config struct {
	// BaseLatencyNs is the one-way propagation delay. The paper's testbed
	// measures 192 µs bare-hardware RTT, i.e. roughly 96 µs each way.
	BaseLatencyNs uint64
	// JitterNs bounds the deterministic pseudo-random extra delay.
	JitterNs uint64
	// LossRate is the packet drop probability in 1/65536 units (0 = no
	// loss). Losses are deterministic given the seed.
	LossRate uint32
	// Seed drives the jitter/loss PRNG.
	Seed uint64
}

// Stats accumulates traffic accounting per node.
type Stats struct {
	FramesSent int
	BytesSent  int // IP-level bytes including protocol overhead
	FramesLost int
}

// Network is a deterministic virtual-time network connecting numbered
// nodes.
type Network struct {
	cfg   Config
	now   uint64
	queue eventQueue
	seq   uint64
	rng   uint64
	stats map[int]*Stats
	// Deliver is invoked for each frame when it arrives. Set by the world
	// before advancing time.
	Deliver func(f Frame)
	// Filter, when set, is consulted at delivery time; returning false
	// drops the frame (counted against the sender as lost). It models
	// deterministic partitions and adversarial links on top of the
	// probabilistic LossRate — a filter that consults Now() can cut a node
	// off for a virtual-time span and then heal.
	Filter func(f Frame) bool
}

// New returns an empty network.
func New(cfg Config) *Network {
	seed := cfg.Seed
	if seed == 0 {
		seed = 0x853c49e6748fea9b
	}
	return &Network{cfg: cfg, rng: seed, stats: make(map[int]*Stats)}
}

// Now returns the network's virtual clock.
func (n *Network) Now() uint64 { return n.now }

func (n *Network) rand() uint32 {
	n.rng ^= n.rng << 13
	n.rng ^= n.rng >> 7
	n.rng ^= n.rng << 17
	return uint32(n.rng)
}

// NodeStats returns (allocating if needed) the accounting record for node.
func (n *Network) NodeStats(node int) *Stats {
	s := n.stats[node]
	if s == nil {
		s = &Stats{}
		n.stats[node] = s
	}
	return s
}

// Send enqueues a frame from the sender at virtual time sentAt. wireBytes
// is the IP-level frame size for accounting; if 0, len(data) is used.
func (n *Network) Send(sentAt uint64, from, to int, data []byte, wireBytes int) {
	if wireBytes == 0 {
		wireBytes = len(data)
	}
	st := n.NodeStats(from)
	st.FramesSent++
	st.BytesSent += wireBytes
	if n.cfg.LossRate > 0 && n.rand()&0xFFFF < n.cfg.LossRate {
		st.FramesLost++
		return
	}
	delay := n.cfg.BaseLatencyNs
	if n.cfg.JitterNs > 0 {
		delay += uint64(n.rand()) % n.cfg.JitterNs
	}
	if sentAt < n.now {
		sentAt = n.now
	}
	n.seq++
	heap.Push(&n.queue, event{at: sentAt + delay, seq: n.seq, frame: Frame{
		From: from, To: to, Data: data, WireBytes: wireBytes,
	}})
}

// AdvanceTo moves the virtual clock to t, delivering every frame due at or
// before t in deterministic order.
func (n *Network) AdvanceTo(t uint64) {
	for len(n.queue) > 0 && n.queue[0].at <= t {
		e := heap.Pop(&n.queue).(event)
		n.now = e.at
		if n.Filter != nil && !n.Filter(e.frame) {
			n.NodeStats(e.frame.From).FramesLost++
			continue
		}
		if n.Deliver == nil {
			panic("netsim: AdvanceTo with no Deliver callback")
		}
		n.Deliver(e.frame)
	}
	if t > n.now {
		n.now = t
	}
}

// Pending returns the number of in-flight frames.
func (n *Network) Pending() int { return len(n.queue) }

// NextDelivery returns the virtual time of the earliest in-flight frame,
// or false if none.
func (n *Network) NextDelivery() (uint64, bool) {
	if len(n.queue) == 0 {
		return 0, false
	}
	return n.queue[0].at, true
}

// String summarizes traffic for debugging.
func (n *Network) String() string {
	return fmt.Sprintf("netsim{now=%dns inflight=%d}", n.now, len(n.queue))
}
