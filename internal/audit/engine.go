package audit

// The unified audit entry point. Historically each engine grew its own
// function — AuditFull, AuditFullParallel, AuditStream, AuditFullDist,
// AuditChunk — with a private options struct duplicating the same knobs.
// Audit collapses them behind one request type: pick an Engine, set the
// shared EngineOptions once, and get the same byte-identical verdict every
// engine guarantees. The old functions remain as thin deprecated wrappers.

import (
	"fmt"

	"repro/internal/logcomp"
	"repro/internal/sig"
	"repro/internal/snapshot"
	"repro/internal/tevlog"
)

// Engine selects the replay engine an Audit request runs on. Every engine
// produces byte-identical verdicts; they differ in memory footprint,
// parallelism and where the replay work happens.
type Engine string

const (
	// EngineSerial is the single-replica from-boot replay.
	EngineSerial Engine = "serial"
	// EngineParallel partitions the log at snapshot boundaries and replays
	// epochs concurrently in-process.
	EngineParallel Engine = "parallel"
	// EngineStream decodes, chain-verifies and replays straight from the
	// compressed log container in bounded memory (set Compressed).
	EngineStream Engine = "stream"
	// EngineDist distributes epoch replay over an EpochBackend (set
	// Backend; nil selects the in-process pool).
	EngineDist Engine = "dist"
	// EngineChunk spot-checks a single chunk starting from an
	// authenticated snapshot (set Chunk).
	EngineChunk Engine = "chunk"
)

// EngineOptions are the knobs shared by every audit engine. The zero value
// is always valid: serial fallbacks, NumCPU workers, default window, no
// spot rechecks, full-state job shipping.
type EngineOptions struct {
	// Workers bounds replay (and remote-prep) concurrency. <= 0 selects
	// runtime.NumCPU(); 1 forces the serial path on the parallel engine.
	Workers int
	// Window caps resident decoded entries on the stream engine. <= 0
	// selects DefaultStreamWindow.
	Window int
	// SpotRecheckFraction is the fraction of remotely-replayed epochs the
	// coordinator re-replays locally to catch lying workers (0 disables, 1
	// rechecks everything). Selection is deterministic given
	// SpotRecheckSeed. Remote backends only.
	SpotRecheckFraction float64
	// SpotRecheckSeed drives the deterministic spot selection.
	SpotRecheckSeed uint64
	// DisablePredecode forces every replica this audit boots onto the
	// careful Step path instead of the predecoded sprint loop — the
	// predecode ablation. ORed with Auditor.DisablePredecode.
	DisablePredecode bool
	// DisableFusion keeps the sprint loop but skips the superinstruction
	// fusion pass — the fusion ablation. ORed with Auditor.DisableFusion.
	DisableFusion bool
	// DeltaJobs ships dispatched epoch jobs as proof-carrying dirty-page
	// deltas where possible: after the first full state per connection,
	// each job carries only the epoch increments plus Merkle fold proofs,
	// and a worker reconstructs and verifies its start state without
	// holding prior state. Requires DeltaSource; remote backends only
	// (in-process engines never ship state). Verdicts are unaffected.
	DeltaJobs bool
	// Materialize returns the audited machine's full state at a snapshot
	// index, e.g. snapshot.Store.Materialize on the machine's snapshot
	// sequence. The state is not trusted: every consumer verifies it
	// against the root committed in the log before using it. When nil, the
	// log is replayed as a single boot epoch.
	Materialize func(snapIdx uint32) (*snapshot.Restored, error)
	// DeltaSource returns the proof-carrying delta from snapshot k-1 to k,
	// e.g. snapshot.Store.Delta. Required when DeltaJobs is set.
	DeltaSource func(k uint32) (*snapshot.Delta, error)
}

// AuditRequest describes one audit: what to check and how to run it.
type AuditRequest struct {
	// Node is the audited machine; NodeIdx its index in the scenario's
	// signing order.
	Node    sig.NodeID
	NodeIdx uint32

	// Engine selects the replay engine; empty selects EngineSerial (or
	// EngineChunk when Chunk is set).
	Engine Engine
	// Options are the shared engine knobs.
	Options EngineOptions
	// Backend executes epoch jobs on the dist engine. Nil selects the
	// in-process pool.
	Backend EpochBackend

	// Entries and Auths are the decoded log (every engine except stream
	// and chunk).
	Entries []tevlog.Entry
	Auths   []tevlog.Authenticator
	// Compressed is the compressed log container (stream engine).
	Compressed []byte
	// Source streams the log's entries for the stream engine in place of
	// Compressed — e.g. an archive.EntrySource reading epoch segments
	// straight from disk. When both are set, Source wins. A source error
	// mid-stream is reported as a CheckLog fault, exactly like a corrupt
	// container.
	Source logcomp.EntrySource
	// Chunk is the spot-check request (chunk engine).
	Chunk *ChunkRequest
}

// AuditStats reports how the selected engine ran. Engine is always set;
// the engine-specific struct of the engine that ran is filled, the others
// are zero.
type AuditStats struct {
	Engine Engine
	Stream StreamStats
	Dist   DistStats
}

// withEngineOptions returns the auditor honoring opts' auditor-level
// overrides — currently the predecode and fusion ablations, which OR with
// the auditor's own flags. The receiver is never mutated.
func (a *Auditor) withEngineOptions(opts EngineOptions) *Auditor {
	if (opts.DisablePredecode && !a.DisablePredecode) || (opts.DisableFusion && !a.DisableFusion) {
		ab := *a
		ab.DisablePredecode = ab.DisablePredecode || opts.DisablePredecode
		ab.DisableFusion = ab.DisableFusion || opts.DisableFusion
		return &ab
	}
	return a
}

// Audit runs one audit as described by req. The verdict in Result is
// byte-identical across engines. A non-nil error means the audit could not
// be completed (e.g. a distributed transport failure on an epoch the
// verdict needs) — distinct from a fault, which is a completed audit's
// conclusion about the machine.
func (a *Auditor) Audit(req AuditRequest) (*Result, AuditStats, error) {
	engine := req.Engine
	if engine == "" {
		if req.Chunk != nil {
			engine = EngineChunk
		} else {
			engine = EngineSerial
		}
	}
	stats := AuditStats{Engine: engine}
	switch engine {
	case EngineSerial:
		return a.auditSerial(req.Node, req.NodeIdx, req.Entries, req.Auths), stats, nil
	case EngineParallel:
		return a.auditParallel(req.Node, req.NodeIdx, req.Entries, req.Auths, ParallelOptions{EngineOptions: req.Options}), stats, nil
	case EngineStream:
		res, sstats := a.auditStreamFrom(req.Node, req.NodeIdx, req.Compressed, req.Source, req.Auths, StreamOptions{EngineOptions: req.Options})
		stats.Stream = sstats
		return res, stats, nil
	case EngineDist:
		res, dstats, err := a.auditDist(req.Node, req.NodeIdx, req.Entries, req.Auths, DistOptions{EngineOptions: req.Options, Backend: req.Backend})
		stats.Dist = dstats
		return res, stats, err
	case EngineChunk:
		if req.Chunk == nil {
			return nil, stats, fmt.Errorf("audit: chunk engine requires a ChunkRequest")
		}
		return a.auditChunk(*req.Chunk), stats, nil
	default:
		return nil, stats, fmt.Errorf("audit: unknown engine %q", engine)
	}
}

// Deprecated wrappers ------------------------------------------------------
//
// The functions below predate Audit and remain for compatibility; each is
// a thin veneer over the same implementation Audit dispatches to. New code
// should construct an AuditRequest instead.

// AuditFull checks an entire execution from boot on the serial engine.
//
// Deprecated: use Audit with EngineSerial.
func (a *Auditor) AuditFull(node sig.NodeID, nodeIdx uint32, entries []tevlog.Entry, auths []tevlog.Authenticator) *Result {
	return a.auditSerial(node, nodeIdx, entries, auths)
}

// AuditFullParallel checks an entire execution from boot on the
// epoch-parallel engine.
//
// Deprecated: use Audit with EngineParallel.
func (a *Auditor) AuditFullParallel(node sig.NodeID, nodeIdx uint32, entries []tevlog.Entry, auths []tevlog.Authenticator, opts ParallelOptions) *Result {
	return a.auditParallel(node, nodeIdx, entries, auths, opts)
}

// AuditStream checks an entire execution straight from the compressed log
// container on the streaming engine.
//
// Deprecated: use Audit with EngineStream.
func (a *Auditor) AuditStream(node sig.NodeID, nodeIdx uint32, compressed []byte, auths []tevlog.Authenticator, opts StreamOptions) (*Result, StreamStats) {
	return a.auditStream(node, nodeIdx, compressed, auths, opts)
}

// AuditFullDist checks an entire execution with the replay stage
// distributed over an epoch backend.
//
// Deprecated: use Audit with EngineDist.
func (a *Auditor) AuditFullDist(node sig.NodeID, nodeIdx uint32, entries []tevlog.Entry, auths []tevlog.Authenticator, opts DistOptions) (*Result, DistStats, error) {
	return a.auditDist(node, nodeIdx, entries, auths, opts)
}

// AuditChunk spot-checks one chunk starting from an authenticated
// snapshot.
//
// Deprecated: use Audit with EngineChunk.
func (a *Auditor) AuditChunk(req ChunkRequest) *Result {
	return a.auditChunk(req)
}
