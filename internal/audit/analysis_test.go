package audit_test

import (
	"testing"

	"repro/internal/audit"
	"repro/internal/avmm"
	"repro/internal/lang"
	"repro/internal/netsim"
	"repro/internal/sig"
	"repro/internal/vm"
)

// TestReplayAnalysisDetectsSelfModification exercises §7.5: a reference
// image that modifies its own code (modelling a buffer-overflow payload
// install that the image's own bugs permit) passes the audit — the recorded
// machine and the replica do the same thing — but replay-time analysis
// flags the unauthorized software modification.
func TestReplayAnalysisDetectsSelfModification(t *testing.T) {
	// The guest stomps an instruction inside its own (already executed)
	// entry stub, then keeps serving traffic.
	src := `
		const CLOCK_LO = 0x01;
		func main() {
			out(0x60, in(CLOCK_LO));
			memwr(0x1010, 305419896);
			out(0x60, in(CLOCK_LO));
			halt();
		}
	`
	img, err := lang.Compile("selfmod", src, lang.Options{MemSize: 64 * 1024})
	if err != nil {
		t.Fatal(err)
	}
	net := netsim.New(netsim.Config{})
	keys := sig.NewKeyStore()
	w := avmm.NewWorld(net, keys)
	mon, err := avmm.NewMonitor(avmm.Config{
		Node: "m", Index: 0, Mode: avmm.ModeAVMMNoSig,
		Keys: keys, Image: img, Net: net,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Add(mon); err != nil {
		t.Fatal(err)
	}
	w.RunUntil(func() bool { return mon.Machine.Halted }, 5_000_000_000)
	if !mon.Machine.Halted {
		t.Fatal("guest did not finish")
	}

	// The audit passes: the bug is exercised identically during replay —
	// the §4.8 limitation.
	rp, err := audit.NewReplayFromImage("m", img, 0)
	if err != nil {
		t.Fatal(err)
	}
	rp.Feed(mon.Log.All())
	rp.Run()
	if f := rp.Fault(); f != nil {
		t.Fatalf("self-modifying but consistent execution reported as fault: %v", f)
	}

	// Replay-time analysis catches what the fault model cannot.
	mods := audit.AnalyzeCodeModification(rp, img)
	if len(mods) == 0 {
		t.Fatal("code modification not detected by replay analysis")
	}
	found := false
	for _, mod := range mods {
		if mod.Changed && mod.FirstDiff == 0x1010 {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected modification at 0x1010, got %v", mods)
	}
}

// TestReplayAnalysisCleanOnHonestGuest: no false positives from ordinary
// data writes (globals and the stack live outside the text region).
func TestReplayAnalysisCleanOnHonestGuest(t *testing.T) {
	src := `
		const CLOCK_LO = 0x01;
		var table[512];
		func main() {
			var i = 0;
			while (i < 512) { table[i] = i * 3; i = i + 1; }
			out(0x60, in(CLOCK_LO));
			halt();
		}
	`
	img, err := lang.Compile("honest", src, lang.Options{MemSize: 64 * 1024})
	if err != nil {
		t.Fatal(err)
	}
	net := netsim.New(netsim.Config{})
	keys := sig.NewKeyStore()
	w := avmm.NewWorld(net, keys)
	mon, err := avmm.NewMonitor(avmm.Config{
		Node: "m", Index: 0, Mode: avmm.ModeAVMMNoSig,
		Keys: keys, Image: img, Net: net,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Add(mon); err != nil {
		t.Fatal(err)
	}
	w.RunUntil(func() bool { return mon.Machine.Halted }, 5_000_000_000)
	rp, err := audit.NewReplayFromImage("m", img, 0)
	if err != nil {
		t.Fatal(err)
	}
	rp.Feed(mon.Log.All())
	rp.Run()
	if f := rp.Fault(); f != nil {
		t.Fatalf("honest guest diverged: %v", f)
	}
	if mods := audit.AnalyzeCodeModification(rp, img); len(mods) != 0 {
		t.Fatalf("false positive: %v", mods)
	}
	_ = vm.PageSize
}
