package audit

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/lang"
	"repro/internal/sig"
	"repro/internal/snapshot"
	"repro/internal/tevlog"
	"repro/internal/vm"
	"repro/internal/wire"
)

// compileT compiles MiniC or fails the test.
func compileT(t *testing.T, name, src string) *vm.Image {
	t.Helper()
	img, err := lang.Compile(name, src, lang.Options{MemSize: 64 * 1024})
	if err != nil {
		t.Fatal(err)
	}
	return img
}

// synthLog builds a log with the given entries appended under a null
// signer (chain hashes computed, no signatures needed).
func synthLog(entries ...tevlog.Entry) []tevlog.Entry {
	l := tevlog.New(sig.NullSigner{Node: "m"})
	for _, e := range entries {
		l.Append(e.Type, e.Content)
	}
	return l.All()
}

func nondetEntry(port uint32, val uint64) tevlog.Entry {
	return tevlog.Entry{Type: tevlog.TypeNondet,
		Content: (&wire.NondetContent{Port: port, Value: val}).Marshal()}
}

func eventEntry(ev *wire.EventContent) tevlog.Entry {
	typ := tevlog.TypeIRQ
	if ev.Kind == wire.EventSnapshot {
		typ = tevlog.TypeSnapshot
	}
	return tevlog.Entry{Type: typ, Content: ev.Marshal()}
}

func TestReplayConsumesCleanLog(t *testing.T) {
	img := compileT(t, "clock3", `
		const CLOCK_LO = 0x01;
		func main() {
			out(0x60, in(CLOCK_LO));
			out(0x60, in(CLOCK_LO));
			out(0x60, in(CLOCK_LO));
			halt();
		}
	`)
	entries := synthLog(
		nondetEntry(vm.PortClockLo, 100),
		nondetEntry(vm.PortClockLo, 200),
		nondetEntry(vm.PortClockLo, 300),
	)
	rp, err := NewReplayFromImage("m", img, 1)
	if err != nil {
		t.Fatal(err)
	}
	rp.Feed(entries)
	rp.Close()
	rp.Run()
	if f := rp.Fault(); f != nil {
		t.Fatalf("clean log diverged: %v", f)
	}
	if !rp.Done() {
		t.Fatal("not done")
	}
	// The logged values were fed back verbatim.
	if d := rp.Devices().Debug; len(d) != 3 || d[0] != 100 || d[1] != 200 || d[2] != 300 {
		t.Fatalf("debug = %v", d)
	}
}

func TestReplayDetectsWrongPortOrder(t *testing.T) {
	img := compileT(t, "clock1", `
		const CLOCK_LO = 0x01;
		func main() { out(0x60, in(CLOCK_LO)); halt(); }
	`)
	entries := synthLog(nondetEntry(vm.PortClockHi, 0)) // wrong port
	rp, err := NewReplayFromImage("m", img, 1)
	if err != nil {
		t.Fatal(err)
	}
	rp.Feed(entries)
	rp.Run()
	f := rp.Fault()
	if f == nil || !strings.Contains(f.Detail, "port") {
		t.Fatalf("fault = %v", f)
	}
}

func TestReplayDetectsLogPastHalt(t *testing.T) {
	img := compileT(t, "halts", `func main() { halt(); }`)
	entries := synthLog(nondetEntry(vm.PortClockLo, 1))
	rp, err := NewReplayFromImage("m", img, 1)
	if err != nil {
		t.Fatal(err)
	}
	rp.Feed(entries)
	rp.Run()
	if f := rp.Fault(); f == nil || !strings.Contains(f.Detail, "halt") {
		t.Fatalf("fault = %v", f)
	}
}

func TestReplayDetectsForgedLandmarkState(t *testing.T) {
	// The guest runs a known number of instructions then halts. An event
	// entry claims an interrupt was raised at a reachable icount but with a
	// wrong branch count — the forged landmark the full triple catches.
	img := compileT(t, "spin", `
		func main() {
			var i = 0;
			while (i < 100) { i = i + 1; }
			halt();
		}
	`)
	entries := synthLog(eventEntry(&wire.EventContent{
		Kind: wire.EventIRQ, IRQ: 0,
		Landmark: vm.Landmark{ICount: 50, Branches: 9999, PC: 0x1000},
	}))
	rp, err := NewReplayFromImage("m", img, 1)
	if err != nil {
		t.Fatal(err)
	}
	rp.Feed(entries)
	rp.Run()
	if f := rp.Fault(); f == nil || !strings.Contains(f.Detail, "landmark mismatch") {
		t.Fatalf("fault = %v", f)
	}
}

func TestReplayBudgetExhaustion(t *testing.T) {
	// The log claims a clock read that the (divergent) image never
	// performs; the replayer must not spin forever.
	img := compileT(t, "noclock", `
		func main() {
			var i = 0;
			while (1) { i = i + 1; }
		}
	`)
	entries := synthLog(nondetEntry(vm.PortClockLo, 5))
	rp, err := NewReplayFromImage("m", img, 1)
	if err != nil {
		t.Fatal(err)
	}
	rp.Feed(entries)
	rp.Close()
	rp.MaxInstructions = 100_000
	rp.Run()
	if f := rp.Fault(); f == nil || !strings.Contains(f.Detail, "budget") {
		t.Fatalf("fault = %v", f)
	}
}

func TestReplayBudgetPausesUntilClose(t *testing.T) {
	// While the feed is incomplete, budget exhaustion pauses (later entries
	// can only raise the budget); the fault verdict is rendered at Close.
	// This is what keeps streaming and one-shot verdicts identical.
	img := compileT(t, "noclock2", `
		func main() {
			var i = 0;
			while (1) { i = i + 1; }
		}
	`)
	entries := synthLog(nondetEntry(vm.PortClockLo, 5))
	rp, err := NewReplayFromImage("m", img, 1)
	if err != nil {
		t.Fatal(err)
	}
	rp.Feed(entries)
	rp.MaxInstructions = 100_000
	rp.Run()
	if f := rp.Fault(); f != nil {
		t.Fatalf("incomplete feed rendered a budget verdict: %v", f)
	}
	if rp.Pending() == 0 {
		t.Fatal("expected the unreproduced entry to remain pending")
	}
	rp.Close()
	rp.Run()
	if f := rp.Fault(); f == nil || !strings.Contains(f.Detail, "budget") {
		t.Fatalf("fault after Close = %v", f)
	}
}

func TestReplayUnexpectedOutput(t *testing.T) {
	// The image sends, but the log's next replayable entry is a nondet:
	// "outputs that are not in the log".
	img := compileT(t, "sender", `
		const NET_TX_BYTE = 0x28;
		const NET_TX_COMMIT = 0x29;
		const CLOCK_LO = 0x01;
		func main() {
			out(NET_TX_BYTE, 1);
			out(NET_TX_COMMIT, 0);
			out(0x60, in(CLOCK_LO));
			halt();
		}
	`)
	entries := synthLog(
		nondetEntry(vm.PortClockLo, 7), // log claims clock read happens first
		tevlog.Entry{Type: tevlog.TypeSend,
			Content: (&wire.SendContent{MsgID: 2, Dest: 0, Payload: []byte{1}}).Marshal()},
	)
	rp, err := NewReplayFromImage("m", img, 1)
	if err != nil {
		t.Fatal(err)
	}
	rp.Feed(entries)
	rp.Run()
	if f := rp.Fault(); f == nil {
		t.Fatal("divergent output order not detected")
	}
}

func TestReplayPayloadMismatch(t *testing.T) {
	img := compileT(t, "sender", `
		const NET_TX_BYTE = 0x28;
		const NET_TX_COMMIT = 0x29;
		func main() {
			out(NET_TX_BYTE, 1);
			out(NET_TX_COMMIT, 0);
			halt();
		}
	`)
	entries := synthLog(tevlog.Entry{Type: tevlog.TypeSend,
		Content: (&wire.SendContent{MsgID: 1, Dest: 0, Payload: []byte{9}}).Marshal()})
	rp, err := NewReplayFromImage("m", img, 1)
	if err != nil {
		t.Fatal(err)
	}
	rp.Feed(entries)
	rp.Run()
	if f := rp.Fault(); f == nil || !strings.Contains(f.Detail, "mismatch") {
		t.Fatalf("fault = %v", f)
	}
}

func TestIncrementalFeedEqualsOneShot(t *testing.T) {
	img := compileT(t, "clockN", `
		const CLOCK_LO = 0x01;
		func main() {
			var i = 0;
			while (i < 6) { out(0x60, in(CLOCK_LO)); i = i + 1; }
			halt();
		}
	`)
	var entries []tevlog.Entry
	for i := 0; i < 6; i++ {
		entries = append(entries, nondetEntry(vm.PortClockLo, uint64(i*10)))
	}
	entries = synthLog(entries...)

	oneShot, err := NewReplayFromImage("m", img, 1)
	if err != nil {
		t.Fatal(err)
	}
	oneShot.Feed(entries)
	oneShot.Run()

	incr, err := NewReplayFromImage("m", img, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(entries); i += 2 {
		incr.Feed(entries[i : i+2])
		incr.Run()
	}
	if oneShot.Fault() != nil || incr.Fault() != nil {
		t.Fatalf("faults: %v, %v", oneShot.Fault(), incr.Fault())
	}
	if oneShot.Stats.NondetsConsumed != incr.Stats.NondetsConsumed {
		t.Fatal("incremental and one-shot replay disagree")
	}
}

func TestSyntacticFaults(t *testing.T) {
	opts := SyntacticOptions{NodeIdx: 0, Keys: sig.NewKeyStore()}
	cases := []struct {
		name string
		log  []tevlog.Entry
		want string
	}{
		{"malformed send", synthLog(tevlog.Entry{Type: tevlog.TypeSend, Content: []byte{0x80}}), "malformed SEND"},
		{"send id mismatch", synthLog(tevlog.Entry{Type: tevlog.TypeSend,
			Content: (&wire.SendContent{MsgID: 99, Dest: 0}).Marshal()}), "does not match entry sequence"},
		{"ack references non-send", synthLog(
			tevlog.Entry{Type: tevlog.TypeNondet, Content: (&wire.NondetContent{Port: 1}).Marshal()},
			tevlog.Entry{Type: tevlog.TypeAck, Content: (&wire.AckContent{MsgID: 1, PeerNode: "x"}).Marshal()},
		), "non-SEND"},
		{"non-monotonic landmarks", synthLog(
			eventEntry(&wire.EventContent{Kind: wire.EventIRQ, Landmark: vm.Landmark{ICount: 100}}),
			eventEntry(&wire.EventContent{Kind: wire.EventIRQ, Landmark: vm.Landmark{ICount: 50}}),
		), "not monotonic"},
		{"injection without recv", synthLog(
			eventEntry(&wire.EventContent{Kind: wire.EventInjectPacket, RecvSeq: 1, Payload: []byte("x")}),
		), "non-RECV"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, fr := SyntacticCheck("m", c.log, opts)
			if fr == nil {
				t.Fatal("no fault")
			}
			if !strings.Contains(fr.Detail, c.want) {
				t.Fatalf("fault %q does not contain %q", fr.Detail, c.want)
			}
		})
	}
}

func TestSyntacticDetectsAlteredInjection(t *testing.T) {
	rc := &wire.RecvContent{MsgID: 1, SrcNode: "peer", SrcIdx: 1, Payload: []byte("genuine")}
	log := synthLog(
		tevlog.Entry{Type: tevlog.TypeRecv, Content: rc.Marshal()},
		eventEntry(&wire.EventContent{
			Kind: wire.EventInjectPacket, RecvSeq: 1, SrcIdx: 1, Payload: []byte("altered"),
		}),
	)
	_, fr := SyntacticCheck("m", log, SyntacticOptions{Keys: sig.NewKeyStore()})
	if fr == nil || !strings.Contains(fr.Detail, "differs") {
		t.Fatalf("fault = %v", fr)
	}
}

func TestSyntacticDetectsDroppedInjection(t *testing.T) {
	rc := &wire.RecvContent{MsgID: 1, SrcNode: "peer", SrcIdx: 1, Payload: []byte("m1")}
	rc2 := &wire.RecvContent{MsgID: 2, SrcNode: "peer", SrcIdx: 1, Payload: []byte("m2")}
	log := synthLog(
		tevlog.Entry{Type: tevlog.TypeRecv, Content: rc.Marshal()},
		tevlog.Entry{Type: tevlog.TypeRecv, Content: rc2.Marshal()},
		// Only the second message is injected: the first was dropped.
		eventEntry(&wire.EventContent{
			Kind: wire.EventInjectPacket, RecvSeq: 2, SrcIdx: 1, Payload: []byte("m2"),
		}),
	)
	_, fr := SyntacticCheck("m", log, SyntacticOptions{Keys: sig.NewKeyStore()})
	if fr == nil || !strings.Contains(fr.Detail, "never injected") {
		t.Fatalf("fault = %v", fr)
	}
}

func TestSyntacticToleratesInFlightTail(t *testing.T) {
	rc := &wire.RecvContent{MsgID: 1, SrcNode: "peer", SrcIdx: 1, Payload: []byte("m1")}
	log := synthLog(tevlog.Entry{Type: tevlog.TypeRecv, Content: rc.Marshal()})
	stats, fr := SyntacticCheck("m", log, SyntacticOptions{Keys: sig.NewKeyStore()})
	if fr != nil {
		t.Fatalf("in-flight tail message faulted: %v", fr)
	}
	if stats.InFlightRecvs != 1 {
		t.Fatalf("InFlightRecvs = %d", stats.InFlightRecvs)
	}
}

func TestSyntacticDoubleInjection(t *testing.T) {
	rc := &wire.RecvContent{MsgID: 1, SrcNode: "peer", SrcIdx: 1, Payload: []byte("m")}
	inj := eventEntry(&wire.EventContent{
		Kind: wire.EventInjectPacket, RecvSeq: 1, SrcIdx: 1, Payload: []byte("m"),
	})
	log := synthLog(tevlog.Entry{Type: tevlog.TypeRecv, Content: rc.Marshal()}, inj, inj)
	_, fr := SyntacticCheck("m", log, SyntacticOptions{Keys: sig.NewKeyStore()})
	if fr == nil || !strings.Contains(fr.Detail, "twice") {
		t.Fatalf("fault = %v", fr)
	}
}

func TestNonResponseEvidence(t *testing.T) {
	signer := sig.MustGenerateRSA("m", sig.DefaultKeyBits, "nr")
	keys := sig.NewKeyStore()
	keys.Add(signer.Public())
	l := tevlog.New(signer)
	l.Append(tevlog.TypeSend, []byte("x"))
	auth, err := l.LastAuthenticator()
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyNonResponse(&NonResponseEvidence{Accused: "m", Auth: auth}, keys); err != nil {
		t.Fatalf("genuine non-response evidence rejected: %v", err)
	}
	if err := VerifyNonResponse(&NonResponseEvidence{Accused: "other", Auth: auth}, keys); err == nil {
		t.Fatal("mismatched accusation accepted")
	}
	bad := auth
	bad.Sig = append([]byte(nil), auth.Sig...)
	bad.Sig[0] ^= 1
	if err := VerifyNonResponse(&NonResponseEvidence{Accused: "m", Auth: bad}, keys); err == nil {
		t.Fatal("forged non-response evidence accepted")
	}
}

func TestFindSnapshots(t *testing.T) {
	log := synthLog(
		nondetEntry(vm.PortClockLo, 1),
		eventEntry(&wire.EventContent{Kind: wire.EventSnapshot, SnapIdx: 0, Landmark: vm.Landmark{ICount: 5}}),
		nondetEntry(vm.PortClockLo, 2),
		eventEntry(&wire.EventContent{Kind: wire.EventSnapshot, SnapIdx: 1, Landmark: vm.Landmark{ICount: 10}}),
	)
	points, err := FindSnapshots(log)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 || points[0].SnapIdx != 0 || points[1].SnapIdx != 1 {
		t.Fatalf("points = %+v", points)
	}
	if points[0].EntryIndex != 1 || points[1].EntryIndex != 3 {
		t.Fatalf("entry indices = %d, %d", points[0].EntryIndex, points[1].EntryIndex)
	}
}

// stubMaterialize satisfies partition's "a state source exists" check; the
// partition itself never materializes anything.
func stubMaterialize(uint32) (*snapshot.Restored, error) {
	return nil, errNoState
}

var errNoState = errors.New("no state")

func TestPartitionEpochCosts(t *testing.T) {
	a := &Auditor{}
	log := synthLog(
		nondetEntry(vm.PortClockLo, 1),
		eventEntry(&wire.EventContent{Kind: wire.EventSnapshot, SnapIdx: 0, Landmark: vm.Landmark{ICount: 40}}),
		nondetEntry(vm.PortClockLo, 2),
		eventEntry(&wire.EventContent{Kind: wire.EventSnapshot, SnapIdx: 1, Landmark: vm.Landmark{ICount: 100}}),
		nondetEntry(vm.PortClockLo, 3),
		nondetEntry(vm.PortClockLo, 4),
	)
	jobs := a.partition(log, ParallelOptions{EngineOptions: EngineOptions{Materialize: stubMaterialize}})
	if len(jobs) != 3 {
		t.Fatalf("jobs = %d, want 3", len(jobs))
	}
	if jobs[0].Cost != 40 || jobs[1].Cost != 60 {
		t.Fatalf("epoch costs = %d, %d, want 40, 60", jobs[0].Cost, jobs[1].Cost)
	}
	// The tail has no closing snapshot; its cost is estimated from the
	// log-wide rate so far: 100 instructions / 4 entries * 2 tail entries.
	if jobs[2].Cost != 50 {
		t.Fatalf("tail cost = %d, want 50", jobs[2].Cost)
	}
}

// costJobs builds epoch jobs carrying only the costs, the one field
// costBlocks reads besides position.
func costJobs(costs ...uint64) []*EpochJob {
	jobs := make([]*EpochJob, len(costs))
	for i, c := range costs {
		jobs[i] = &EpochJob{Index: i, Cost: c}
	}
	return jobs
}

// checkContiguousCover fails unless the blocks are in-order contiguous
// runs that together cover every job exactly once — the invariant the
// delta-chain connection cache depends on.
func checkContiguousCover(t *testing.T, blocks [][]int, n int) {
	t.Helper()
	next := 0
	for w, b := range blocks {
		for _, pos := range b {
			if pos != next {
				t.Fatalf("worker %d holds job %d, want %d (blocks %v)", w, pos, next, blocks)
			}
			next++
		}
	}
	if next != n {
		t.Fatalf("blocks cover %d of %d jobs: %v", next, n, blocks)
	}
}

// TestCoordinatorCostWeightedBlocks is the skewed-epoch dispatch check:
// one epoch ten times hotter than its neighbours must not drag half the
// log onto one worker the way an equal-count split does.
func TestCoordinatorCostWeightedBlocks(t *testing.T) {
	jobs := costJobs(100, 100, 100, 600, 100, 100)
	blocks := costBlocks(jobs, 3)
	checkContiguousCover(t, blocks, len(jobs))

	blockCost := func(b []int) uint64 {
		var sum uint64
		for _, pos := range b {
			sum += jobs[pos].Cost
		}
		return sum
	}
	// The equal-count split [0 1][2 3][4 5] puts 700 of 1100 instructions
	// on the middle worker. The weighted split must do strictly better,
	// which for this skew means the hot epoch rides alone.
	var max uint64
	for _, b := range blocks {
		if c := blockCost(b); c > max {
			max = c
		}
	}
	if max >= 700 {
		t.Fatalf("hottest block carries %d of 1100 instructions, no better than the equal-count split (blocks %v)", max, blocks)
	}
	for _, b := range blocks {
		if len(b) == 1 && b[0] == 3 {
			return
		}
	}
	t.Fatalf("hot epoch 3 shares a block: %v", blocks)
}

func TestCoordinatorCostBlocksZeroFallback(t *testing.T) {
	// Logs recorded before landmark counts were shipped have unknown
	// (zero) costs; the split must degrade to the old equal-count layout.
	jobs := costJobs(0, 0, 0, 0, 0, 0, 0)
	blocks := costBlocks(jobs, 3)
	checkContiguousCover(t, blocks, len(jobs))
	want := [][]int{{0, 1}, {2, 3}, {4, 5, 6}}
	for w := range want {
		if len(blocks[w]) != len(want[w]) {
			t.Fatalf("blocks = %v, want %v", blocks, want)
		}
	}
}

func TestCoordinatorCostBlocksMoreWorkersThanJobs(t *testing.T) {
	// total < workers exercises the boundary arithmetic at tiny scales;
	// every job must still land somewhere, each on its own worker.
	jobs := costJobs(1, 1)
	blocks := costBlocks(jobs, 5)
	checkContiguousCover(t, blocks, len(jobs))
	nonEmpty := 0
	for _, b := range blocks {
		if len(b) > 0 {
			nonEmpty++
		}
	}
	if nonEmpty != 2 {
		t.Fatalf("2 jobs spread over %d workers: %v", nonEmpty, blocks)
	}
}
