package audit

import (
	"sync"

	"repro/internal/archive"
	"repro/internal/sig"
	"repro/internal/snapshot"
	"repro/internal/tevlog"
)

// ArchiveSource adapts a disk archive to SegmentSource: spot-check
// policies pick segments from the archived snapshot boundaries (no entry
// is decoded to enumerate them), and each chunk streams exactly its
// k-epoch window from disk — seek to a snapshot point, read k segments —
// so an auditor spot-checks a log it could never materialize. Every read
// is verified: segment payloads against the manifest hashes, the window's
// re-derived chain against the archived linkage, and the starting state
// against the log-committed root (by the chunk engine itself).
type ArchiveSource struct {
	// Arc is the open archive; Node/NodeIdx the audited machine.
	Arc     *archive.Archive
	Node    sig.NodeID
	NodeIdx uint32
	// Auths are the authenticators covering the log (archives store logs
	// and snapshots; authenticators travel with the recording).
	Auths []tevlog.Authenticator

	once   sync.Once
	points []SnapshotPoint
	incs   snapshot.IncrementSource
	iniErr error

	// states memoizes materialized starting states per snapshot index,
	// mirroring MonitorSource: overlapping policies and repeated passes
	// share one fold. A Restored is never mutated by audits.
	mu     sync.Mutex
	states map[int]*snapshot.Restored
}

// init resolves the archive metadata once: snapshot points from the
// manifest boundaries and the increment source for materialization.
func (s *ArchiveSource) init() error {
	s.once.Do(func() {
		bounds, err := s.Arc.Boundaries(string(s.Node))
		if err != nil {
			s.iniErr = err
			return
		}
		s.points = make([]SnapshotPoint, len(bounds))
		for i, b := range bounds {
			s.points[i] = SnapshotPoint{
				EntryIndex: b.EntryIndex, Seq: b.Seq, SnapIdx: b.SnapIdx,
				Root: b.Root, EntryHash: b.EntryHash, ICount: b.ICount,
			}
		}
		s.incs, s.iniErr = s.Arc.IncrementSource(string(s.Node))
	})
	return s.iniErr
}

// Segments implements SegmentSource.
func (s *ArchiveSource) Segments() ([]SnapshotPoint, error) {
	if err := s.init(); err != nil {
		return nil, err
	}
	return s.points, nil
}

// materialize returns the memoized state at snapshot index k, folding it
// from archived increments on first use.
func (s *ArchiveSource) materialize(k int) (*snapshot.Restored, error) {
	s.mu.Lock()
	st, ok := s.states[k]
	s.mu.Unlock()
	if ok {
		return st, nil
	}
	st, err := snapshot.MaterializeFrom(s.incs, k)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	if s.states == nil {
		s.states = make(map[int]*snapshot.Restored)
	}
	s.states[k] = st
	s.mu.Unlock()
	return st, nil
}

// Chunk implements SegmentSource: the window's entries stream from disk
// (chain-verified against the archived linkage) and the starting state is
// folded from archived increments. The chunk engine then verifies that
// state against the root committed in the log before replaying, so a
// tampered archive faults exactly where a tampered download would.
func (s *ArchiveSource) Chunk(from, k int) (ChunkRequest, error) {
	if err := s.init(); err != nil {
		return ChunkRequest{}, err
	}
	start := s.points[from]
	entries, err := s.Arc.ReadWindow(string(s.Node), from, k)
	if err != nil {
		return ChunkRequest{}, err
	}
	restored, err := s.materialize(int(start.SnapIdx))
	if err != nil {
		return ChunkRequest{}, err
	}
	return ChunkRequest{
		Node: s.Node, NodeIdx: s.NodeIdx,
		Start: restored, StartRoot: start.Root, PrevHash: start.EntryHash,
		Entries: entries,
		Auths:   s.Auths,
	}, nil
}
