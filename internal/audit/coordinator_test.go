package audit_test

import (
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/audit"
	"repro/internal/avmm"
	"repro/internal/game"
)

// Chaos-equivalence suite for the coordinator service: the full cheat
// catalog replays through fleets running every deterministic fault plan —
// crashes, hangs, 10x stragglers, lying verdicts, flapping links, healing
// partitions — and the merged verdict must stay byte-identical to the
// serial engine's with a bounded number of re-dispatches. Plus targeted
// coverage for worker hangs (satellite of the crash tests), mid-audit
// join/leave, graceful drain, and local fallback.

// coordScenario records a short two-player match (snapshots every 1s of
// virtual time, ~3 replay epochs) for coordinator tests; cheaper than
// distScenario so the plan×cheat product stays affordable.
func coordScenario(t *testing.T, cheat string) *game.Scenario {
	t.Helper()
	cfg := game.ScenarioConfig{
		Players: 2, Mode: avmm.ModeAVMMRSA, Cost: avmm.DefaultCostModel(),
		Seed: 2718, SnapshotEveryNs: 1_000_000_000, FakeSignatures: true,
	}
	if cheat != "" {
		c, err := game.CatalogByName(cheat)
		if err != nil {
			t.Fatal(err)
		}
		cfg.CheatPlayer = 1
		cfg.Cheat = c
	}
	s, err := game.NewScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Run(3_000_000_000)
	return s
}

// testCoordinator builds a coordinator with timeouts shrunk for tests:
// job timeout 2s, hedge at 150ms, heartbeat at 100ms.
func testCoordinator(cfg audit.CoordinatorConfig) *audit.Coordinator {
	if cfg.Pipeline == 0 {
		cfg.Pipeline = 2
	}
	if cfg.JobTimeout == 0 {
		cfg.JobTimeout = 2 * time.Second
	}
	if cfg.HedgeAfter == 0 {
		cfg.HedgeAfter = 150 * time.Millisecond
	}
	if cfg.MaxAttempts == 0 {
		cfg.MaxAttempts = 8
	}
	if cfg.RetryBackoff == 0 {
		cfg.RetryBackoff = 5 * time.Millisecond
	}
	if cfg.RetryMaxBackoff == 0 {
		cfg.RetryMaxBackoff = 50 * time.Millisecond
	}
	if cfg.HeartbeatEvery == 0 {
		cfg.HeartbeatEvery = 100 * time.Millisecond
	}
	if cfg.DialTimeout == 0 {
		cfg.DialTimeout = time.Second
	}
	if cfg.RedialBackoff == 0 {
		cfg.RedialBackoff = 5 * time.Millisecond
	}
	if cfg.RedialMaxBackoff == 0 {
		cfg.RedialMaxBackoff = 100 * time.Millisecond
	}
	return audit.NewCoordinator(cfg)
}

// TestCoordinatorChaosEquivalence: the whole cheat catalog, audited
// through a three-worker fleet where two workers run a chaos plan and one
// is honest, for each of the canonical plans. Local fallback is disabled
// so the fleet itself must survive every fault; the lying plan runs with
// full spot recheck, which is the documented requirement for a Byzantine
// fleet. Verdicts must match the serial engine byte for byte and retries
// must stay within the dispatch budget.
func TestCoordinatorChaosEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos equivalence suite in -short mode")
	}
	type recording struct {
		name   string
		s      *game.Scenario
		serial *audit.Result
	}
	names := []string{""}
	for _, c := range game.Catalog() {
		names = append(names, c.Name)
	}
	recs := make([]recording, 0, len(names))
	for _, name := range names {
		s := coordScenario(t, name)
		serial, err := s.AuditNode("player1")
		if err != nil {
			t.Fatalf("serial audit (%s): %v", name, err)
		}
		label := name
		if label == "" {
			label = "clean"
		}
		recs = append(recs, recording{name: label, s: s, serial: serial})
	}

	for _, plan := range audit.ChaosPlans() {
		t.Run(plan.Name, func(t *testing.T) {
			second := *plan
			second.Seed ^= 0xA5A5_A5A5
			fleet, err := audit.StartChaosFleet([]*audit.ChaosPlan{plan, &second, nil})
			if err != nil {
				t.Fatal(err)
			}
			defer fleet.Close()
			coord := testCoordinator(audit.CoordinatorConfig{DisableLocalFallback: true})
			defer coord.Close()
			for _, addr := range fleet.Addrs {
				coord.AddWorker(addr)
			}
			spot := 0.25
			if plan.LieRate > 0 {
				spot = 1 // a lying fleet demands full spot recheck
			}
			for _, rec := range recs {
				res, dstats, err := rec.s.AuditNodeDist("player1", audit.DistOptions{
					Backend: coord.Backend(),
					EngineOptions: audit.EngineOptions{
						SpotRecheckFraction: spot,
						SpotRecheckSeed:     0xBADD,
					},
				})
				if err != nil {
					t.Fatalf("%s/%s: coordinator audit: %v", plan.Name, rec.name, err)
				}
				compareVerdicts(t, plan.Name+"/"+rec.name, rec.serial, res)
				if dstats.Redispatches > 8*dstats.Epochs {
					t.Errorf("%s/%s: %d re-dispatches for %d epochs exceeds the dispatch budget",
						plan.Name, rec.name, dstats.Redispatches, dstats.Epochs)
				}
			}
			stats := coord.Stats()
			if stats.EpochsDone == 0 {
				t.Errorf("%s: fleet replayed no epochs (stats %+v)", plan.Name, stats)
			}
		})
	}
}

// TestCoordinatorJoinLeave: workers join and leave while audits are in
// flight. The fleet starts as one uniformly slow worker; an honest worker
// hot-joins mid-audit and the slow one is removed, with three audits
// running concurrently through the shared queue the whole time. Every
// verdict must match the serial engine.
func TestCoordinatorJoinLeave(t *testing.T) {
	s := coordScenario(t, "aimbot")
	serial, err := s.AuditNode("player1")
	if err != nil {
		t.Fatal(err)
	}
	slowPlan := &audit.ChaosPlan{Name: "all-slow", Seed: 99, SlowRate: 1, SlowCapDelay: 150 * time.Millisecond}
	fleet, err := audit.StartChaosFleet([]*audit.ChaosPlan{slowPlan, nil})
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()
	slowAddr, honestAddr := fleet.Addrs[0], fleet.Addrs[1]

	coord := testCoordinator(audit.CoordinatorConfig{DisableLocalFallback: true})
	defer coord.Close()
	coord.AddWorker(slowAddr)

	const audits = 3
	results := make([]*audit.Result, audits)
	errs := make([]error, audits)
	var wg sync.WaitGroup
	for i := 0; i < audits; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], _, errs[i] = s.AuditNodeDist("player1", audit.DistOptions{
				Backend: coord.Backend(), EngineOptions: audit.EngineOptions{SpotRecheckFraction: 0.25},
			})
		}(i)
	}
	// Let the slow worker pick up the head of the queue, then reshape the
	// fleet under the running audits.
	time.Sleep(100 * time.Millisecond)
	coord.AddWorker(honestAddr)
	time.Sleep(100 * time.Millisecond)
	coord.RemoveWorker(slowAddr)
	wg.Wait()

	for i := 0; i < audits; i++ {
		if errs[i] != nil {
			t.Fatalf("audit %d through elastic fleet: %v", i, errs[i])
		}
		compareVerdicts(t, fmt.Sprintf("join-leave audit %d", i), serial, results[i])
	}
	if got := coord.Stats().WorkersRegistered; got != 1 {
		t.Errorf("workers registered after remove = %d, want 1", got)
	}
}

// startMuxHangingWorker is the hang saboteur for the coordinator
// protocol: it registers sessions and answers every ping — so crash
// detection and heartbeat liveness both see a healthy worker — but
// accepts jobs and never replies. Only the job timeout can catch it.
func startMuxHangingWorker(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				for {
					body, err := readTestFrame(conn)
					if err != nil {
						return
					}
					switch body[0] {
					case 6: // MuxSession: ack so jobs start flowing
						writeTestFrame(conn, 7, body[1:2]) // MuxSessionOK, echo the id
					case 10: // Ping: stay "alive"
						writeTestFrame(conn, 11, body[1:])
					case 8: // MuxJob: swallow it and never answer
					}
				}
			}()
		}
	}()
	return l.Addr().String()
}

// TestCoordinatorWorkerHang: a worker that hangs (accepts jobs, never
// replies, keeps heartbeating) is a different failure from a crash — the
// connection stays perfectly healthy. The job timeout must fire, the
// epoch must re-dispatch to the honest worker, the hung connection must
// be reaped, and nothing may leak: the goroutine count settles back once
// the coordinator closes.
func TestCoordinatorWorkerHang(t *testing.T) {
	// A clean log: every epoch's verdict is needed, so an epoch swallowed
	// by the hung worker cannot hide behind the earliest-fault cutoff.
	s := coordScenario(t, "")
	serial, err := s.AuditNode("player1")
	if err != nil {
		t.Fatal(err)
	}
	baseline := runtime.NumGoroutine()

	hangAddr := startMuxHangingWorker(t)
	fleet, err := audit.StartChaosFleet([]*audit.ChaosPlan{nil})
	if err != nil {
		t.Fatal(err)
	}
	coord := testCoordinator(audit.CoordinatorConfig{
		DisableLocalFallback: true,
		JobTimeout:           500 * time.Millisecond,
		HedgeAfter:           -1, // no hedging: recovery must come from the timeout
	})
	coord.AddWorker(hangAddr)

	done := make(chan struct{})
	var res *audit.Result
	var dstats audit.DistStats
	var auditErr error
	go func() {
		defer close(done)
		res, dstats, auditErr = s.AuditNodeDist("player1", audit.DistOptions{Backend: coord.Backend()})
	}()
	// Let the hung worker soak up the head of the queue, then hot-join the
	// honest worker that must take over.
	time.Sleep(150 * time.Millisecond)
	coord.AddWorker(fleet.Addrs[0])
	<-done
	if auditErr != nil {
		t.Fatalf("audit with hanging worker: %v", auditErr)
	}
	compareVerdicts(t, "worker-hang", serial, res)
	stats := coord.Stats()
	if stats.Retries == 0 {
		t.Errorf("hung worker triggered no job-timeout re-dispatches (stats %+v)", stats)
	}
	if dstats.Redispatches == 0 {
		t.Errorf("dist stats recorded no re-dispatches (%+v)", dstats)
	}

	coord.Close()
	fleet.Close()
	// Goroutine-leak check: hung connections and their read/send loops
	// must all be gone shortly after Close.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline+3 {
			break
		} else if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked after coordinator close: %d > baseline %d\n%s",
				n, baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// startLegacyHangingWorker hangs the PR-5 one-shot protocol: handshake,
// then read jobs forever without answering, connection held open.
func startLegacyHangingWorker(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				if _, err := readTestFrame(conn); err != nil {
					return
				}
				writeTestFrame(conn, 2, nil) // DistFrameSessionOK
				for {
					if _, err := readTestFrame(conn); err != nil {
						return
					}
				}
			}()
		}
	}()
	return l.Addr().String()
}

// TestTCPBackendWorkerHang: the one-shot TCP backend against a hanging
// worker — JobTimeout re-dispatches to the shared fleet and the hung
// connection is abandoned after consecutive timeouts.
func TestTCPBackendWorkerHang(t *testing.T) {
	// Clean log and a two-worker fleet (saboteur + one honest): with three
	// epochs and pull-based dispatch the hanging worker always soaks up at
	// least one job, and no earliest-fault cutoff can skip it.
	s := coordScenario(t, "")
	serial, err := s.AuditNode("player1")
	if err != nil {
		t.Fatal(err)
	}
	honest, err := audit.StartChaosFleet([]*audit.ChaosPlan{nil})
	if err != nil {
		t.Fatal(err)
	}
	defer honest.Close()
	addrs := []string{startLegacyHangingWorker(t), honest.Addrs[0]}
	res, dstats, err := s.AuditNodeDist("player1", audit.DistOptions{
		Backend: &audit.TCPBackend{
			Addrs: addrs, JobTimeout: 500 * time.Millisecond, MaxAttempts: 25,
			RetryBackoff: 5 * time.Millisecond, RetryMaxBackoff: 50 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatalf("tcp audit with hanging worker: %v", err)
	}
	compareVerdicts(t, "tcp-worker-hang", serial, res)
	if dstats.Redispatches == 0 {
		t.Errorf("hanging worker caused no re-dispatches (stats %+v)", dstats)
	}
}

// TestCoordinatorLocalFallback: a coordinator with an empty fleet
// degrades to local replay and still produces the serial verdict.
func TestCoordinatorLocalFallback(t *testing.T) {
	s := coordScenario(t, "aimbot")
	serial, err := s.AuditNode("player1")
	if err != nil {
		t.Fatal(err)
	}
	coord := testCoordinator(audit.CoordinatorConfig{})
	defer coord.Close()
	res, _, err := s.AuditNodeDist("player1", audit.DistOptions{Backend: coord.Backend()})
	if err != nil {
		t.Fatalf("audit with empty fleet: %v", err)
	}
	compareVerdicts(t, "local-fallback", serial, res)
	if got := coord.Stats().LocalFallbackEpochs; got == 0 {
		t.Error("empty fleet replayed no epochs through local fallback")
	}
}

// TestCoordinatorDeadFleetFails: with local fallback disabled and no
// reachable worker, the audit must fail with a transport error (the
// exit-2 path), not hang and not fabricate a verdict.
func TestCoordinatorDeadFleetFails(t *testing.T) {
	s := coordScenario(t, "")
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := l.Addr().String()
	l.Close()
	coord := testCoordinator(audit.CoordinatorConfig{
		DisableLocalFallback: true,
		JobTimeout:           300 * time.Millisecond,
	})
	defer coord.Close()
	coord.AddWorker(dead)
	res, _, err := s.AuditNodeDist("player1", audit.DistOptions{Backend: coord.Backend()})
	if err == nil {
		t.Fatalf("audit against dead fleet returned a verdict: %+v", res)
	}
	if res != nil {
		t.Errorf("transport failure must not carry a Result, got %+v", res)
	}
}

// TestCoordinatorWorkerDrain: a worker draining mid-audit answers with
// DistFrameDrain; its epochs must flow back to the queue and finish via
// local fallback, verdict unchanged.
func TestCoordinatorWorkerDrain(t *testing.T) {
	s := coordScenario(t, "aimbot")
	serial, err := s.AuditNode("player1")
	if err != nil {
		t.Fatal(err)
	}
	slowPlan := &audit.ChaosPlan{Name: "drain-slow", Seed: 7, SlowRate: 1, SlowCapDelay: 150 * time.Millisecond}
	fleet, err := audit.StartChaosFleet([]*audit.ChaosPlan{slowPlan})
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()
	coord := testCoordinator(audit.CoordinatorConfig{})
	defer coord.Close()
	coord.AddWorker(fleet.Addrs[0])

	done := make(chan struct{})
	var res *audit.Result
	var auditErr error
	go func() {
		defer close(done)
		res, _, auditErr = s.AuditNodeDist("player1", audit.DistOptions{Backend: coord.Backend()})
	}()
	time.Sleep(120 * time.Millisecond)
	fleet.Close() // drains the worker mid-audit
	<-done
	if auditErr != nil {
		t.Fatalf("audit across worker drain: %v", auditErr)
	}
	compareVerdicts(t, "worker-drain", serial, res)
}

// tapBackend wraps a backend, rewrites each verdict through tap, and can
// force Run's return error — the late-transport-failure saboteur.
type tapBackend struct {
	inner  audit.EpochBackend
	tap    func(audit.EpochVerdict) audit.EpochVerdict
	runErr error
}

func (b *tapBackend) Remote() bool { return b.inner.Remote() }

func (b *tapBackend) Run(sess audit.Session, jobs []*audit.EpochJob, skip func(int) bool, emit func(audit.EpochVerdict)) error {
	if err := b.inner.Run(sess, jobs, skip, func(v audit.EpochVerdict) { emit(b.tap(v)) }); err != nil {
		return err
	}
	return b.runErr
}

// TestDistLateTransportFailureIgnored: transport failures past the
// earliest-fault cutoff — errored verdicts for later epochs and a backend
// that reports its workers lost after the final needed verdict — must not
// turn a caught cheater into an audit error.
func TestDistLateTransportFailureIgnored(t *testing.T) {
	s := coordScenario(t, "aimbot")
	serial, err := s.AuditNode("player1")
	if err != nil {
		t.Fatal(err)
	}
	if serial.Passed {
		t.Fatal("aimbot match unexpectedly passed the serial audit")
	}
	// Pass 1: learn the fault epoch from an honest run.
	var mu sync.Mutex
	faultEpoch := -1
	probe, _, err := s.AuditNodeDist("player1", audit.DistOptions{
		Backend: &tapBackend{inner: &audit.PoolBackend{Workers: 2}, tap: func(v audit.EpochVerdict) audit.EpochVerdict {
			if v.Fault != nil {
				mu.Lock()
				if faultEpoch < 0 || v.Index < faultEpoch {
					faultEpoch = v.Index
				}
				mu.Unlock()
			}
			return v
		}},
	})
	if err != nil || probe.Passed {
		t.Fatalf("probe audit: err=%v", err)
	}
	if faultEpoch < 0 {
		t.Fatal("probe audit emitted no faulting epoch")
	}
	// Pass 2: every epoch after the fault fails in transport, and Run
	// itself errors after the dust settles.
	res, _, err := s.AuditNodeDist("player1", audit.DistOptions{
		Backend: &tapBackend{
			inner: &audit.PoolBackend{Workers: 2},
			tap: func(v audit.EpochVerdict) audit.EpochVerdict {
				if v.Index > faultEpoch {
					return audit.EpochVerdict{Index: v.Index, Err: errors.New("transport lost after the fault")}
				}
				return v
			},
			runErr: errors.New("backend: workers lost after final verdict"),
		},
	})
	if err != nil {
		t.Fatalf("late transport failure aborted the audit: %v", err)
	}
	compareVerdicts(t, "late-transport-failure", serial, res)
}

// TestTCPBackendRetriesExhausted: a fleet consisting only of a crashing
// worker must fail the audit with ErrRetriesExhausted — surfaced both in
// the audit error and in DistStats.
func TestTCPBackendRetriesExhausted(t *testing.T) {
	s := coordScenario(t, "")
	crashAddr := startCrashingWorker(t)
	res, dstats, err := s.AuditNodeDist("player1", audit.DistOptions{
		Backend: &audit.TCPBackend{
			Addrs: []string{crashAddr}, MaxAttempts: 3, JobTimeout: 5 * time.Second,
			RetryBackoff: time.Millisecond, RetryMaxBackoff: 10 * time.Millisecond,
		},
	})
	if err == nil {
		t.Fatalf("audit with only a crashing worker returned a verdict: %+v", res)
	}
	if !errors.Is(err, audit.ErrRetriesExhausted) {
		t.Errorf("audit error does not wrap ErrRetriesExhausted: %v", err)
	}
	if dstats.RetriesExhausted == 0 {
		t.Errorf("DistStats did not count exhausted epochs (%+v)", dstats)
	}
}
