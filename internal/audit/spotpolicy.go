package audit

import (
	"runtime"
	"sync"

	"repro/internal/sig"
	"repro/internal/snapshot"
	"repro/internal/tevlog"
)

// Spot-check policies (§3.5). Spot checking trades completeness for
// efficiency: a fault is detected only if it manifests in an inspected
// segment. The paper sketches policies — inspect a random sample, always
// inspect high-leverage segments (initialization), or work backwards from
// suspicious results; this file provides the machinery and the policies so
// their detection probability can be measured (see the spot-check
// experiments).

// SegmentSource lets a policy enumerate and audit a machine's segments
// without binding to a particular monitor implementation.
type SegmentSource interface {
	// Segments returns the snapshot points delimiting segments.
	Segments() ([]SnapshotPoint, error)
	// Chunk assembles the audit request for segments [from, from+k).
	Chunk(from, k int) (ChunkRequest, error)
}

// MonitorSource adapts the common case: an auditor talking to a machine
// that exposes its log, snapshots and collected authenticators.
type MonitorSource struct {
	Node    sig.NodeID
	NodeIdx uint32
	Entries []tevlog.Entry
	Auths   []tevlog.Authenticator
	// Materialize returns the machine state at snapshot index k.
	Materialize func(k int) (*snapshot.Restored, error)

	points []SnapshotPoint

	// states memoizes Materialize per snapshot index. Folding a full state
	// out of the increment chain costs O(state) per call, and chunks that
	// share a starting snapshot — overlapping policies, repeated passes over
	// the same source, serial-then-parallel sweeps — would otherwise each
	// pay it from scratch. Audits never mutate a Restored (replicas copy the
	// memory at boot), so sharing one per index is safe under concurrent
	// Chunk calls.
	mu     sync.Mutex
	states map[int]*snapshot.Restored
}

// materialize returns the memoized state for snapshot index k, folding it
// on first use.
func (m *MonitorSource) materialize(k int) (*snapshot.Restored, error) {
	m.mu.Lock()
	st, ok := m.states[k]
	m.mu.Unlock()
	if ok {
		return st, nil
	}
	// Fold outside the lock: concurrent first requests for distinct indices
	// must not serialize. A duplicated fold for the same index only wastes
	// work; both results are identical.
	st, err := m.Materialize(k)
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	if m.states == nil {
		m.states = make(map[int]*snapshot.Restored)
	}
	m.states[k] = st
	m.mu.Unlock()
	return st, nil
}

// Segments implements SegmentSource.
func (m *MonitorSource) Segments() ([]SnapshotPoint, error) {
	if m.points == nil {
		pts, err := FindSnapshots(m.Entries)
		if err != nil {
			return nil, err
		}
		m.points = pts
	}
	return m.points, nil
}

// Chunk implements SegmentSource.
func (m *MonitorSource) Chunk(from, k int) (ChunkRequest, error) {
	pts, err := m.Segments()
	if err != nil {
		return ChunkRequest{}, err
	}
	start := pts[from]
	end := pts[from+k]
	restored, err := m.materialize(int(start.SnapIdx))
	if err != nil {
		return ChunkRequest{}, err
	}
	return ChunkRequest{
		Node: m.Node, NodeIdx: m.NodeIdx,
		Start: restored, StartRoot: start.Root, PrevHash: start.EntryHash,
		Entries: m.Entries[start.EntryIndex+1 : end.EntryIndex+1],
		Auths:   m.Auths,
	}, nil
}

// SpotPolicy selects which segments to inspect out of n available.
type SpotPolicy interface {
	// Pick returns the segment indices to audit, each in [0, n).
	Pick(n int) []int
}

// RandomSample inspects Fraction of segments, chosen by a seeded PRNG
// (deterministic for reproducibility). Fraction is in 1/256 units.
type RandomSample struct {
	Fraction256 int
	Seed        uint64
}

// Pick implements SpotPolicy.
func (p RandomSample) Pick(n int) []int {
	rng := p.Seed
	if rng == 0 {
		rng = 0x9E3779B97F4A7C15
	}
	var out []int
	for i := 0; i < n; i++ {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		if int(rng&0xFF) < p.Fraction256 {
			out = append(out, i)
		}
	}
	return out
}

// RecentFirst inspects the last K segments — the "work backwards from
// suspicious results" policy.
type RecentFirst struct{ K int }

// Pick implements SpotPolicy.
func (p RecentFirst) Pick(n int) []int {
	k := p.K
	if k > n {
		k = n
	}
	out := make([]int, 0, k)
	for i := n - k; i < n; i++ {
		out = append(out, i)
	}
	return out
}

// InitializationPlus always inspects the first segment (where faults have
// the longest-lived effects: initialization, key generation) and samples
// the rest.
type InitializationPlus struct{ Rest SpotPolicy }

// Pick implements SpotPolicy.
func (p InitializationPlus) Pick(n int) []int {
	if n == 0 {
		return nil
	}
	seen := map[int]bool{0: true}
	out := []int{0}
	if p.Rest != nil {
		for _, i := range p.Rest.Pick(n) {
			if !seen[i] {
				seen[i] = true
				out = append(out, i)
			}
		}
	}
	return out
}

// SpotCheckOutcome summarizes a policy run.
type SpotCheckOutcome struct {
	SegmentsTotal   int
	SegmentsChecked int
	FaultFound      bool
	FirstFault      *FaultReport
}

// SpotCheck applies a policy: it audits each selected 1-segment chunk and
// stops at the first fault. Accuracy is unconditional — an honest machine
// passes any subset; completeness holds only if a faulty segment is among
// the inspected ones (§4.7).
func (a *Auditor) SpotCheck(src SegmentSource, policy SpotPolicy) (*SpotCheckOutcome, error) {
	return a.SpotCheckParallel(src, policy, 1)
}

// SpotCheckParallel is SpotCheck with the selected chunks audited
// concurrently on up to workers goroutines (<= 0 selects runtime.NumCPU()).
// Chunks are independent — each starts from its own verified snapshot — so
// the outcome is deterministic and identical to the serial pass: the first
// fault in policy order is reported, and SegmentsChecked counts the chunks
// the serial pass would have inspected before stopping there. The segment
// source must tolerate concurrent Chunk calls (MonitorSource does: audits
// run against a quiesced log and snapshot store).
func (a *Auditor) SpotCheckParallel(src SegmentSource, policy SpotPolicy, workers int) (*SpotCheckOutcome, error) {
	pts, err := src.Segments()
	if err != nil {
		return nil, err
	}
	nSegments := len(pts) - 1
	if nSegments < 0 {
		nSegments = 0
	}
	out := &SpotCheckOutcome{SegmentsTotal: nSegments}
	var picks []int
	for _, idx := range policy.Pick(nSegments) {
		if idx >= 0 && idx < nSegments {
			picks = append(picks, idx)
		}
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(picks) {
		workers = len(picks)
	}
	results := make([]*Result, len(picks))
	errs := make([]error, len(picks))
	cutoff := runPool(len(picks), workers, func(i int) bool {
		req, cerr := src.Chunk(picks[i], 1)
		if cerr != nil {
			errs[i] = cerr
			return true
		}
		results[i] = a.AuditChunk(req)
		return !results[i].Passed
	})
	if cutoff == len(picks) {
		out.SegmentsChecked = len(picks)
		return out, nil
	}
	if errs[cutoff] != nil {
		return nil, errs[cutoff]
	}
	out.SegmentsChecked = cutoff + 1
	out.FaultFound = true
	out.FirstFault = results[cutoff].Fault
	return out, nil
}
