package audit

import (
	"repro/internal/sig"
	"repro/internal/snapshot"
	"repro/internal/tevlog"
)

// Spot-check policies (§3.5). Spot checking trades completeness for
// efficiency: a fault is detected only if it manifests in an inspected
// segment. The paper sketches policies — inspect a random sample, always
// inspect high-leverage segments (initialization), or work backwards from
// suspicious results; this file provides the machinery and the policies so
// their detection probability can be measured (see the spot-check
// experiments).

// SegmentSource lets a policy enumerate and audit a machine's segments
// without binding to a particular monitor implementation.
type SegmentSource interface {
	// Segments returns the snapshot points delimiting segments.
	Segments() ([]SnapshotPoint, error)
	// Chunk assembles the audit request for segments [from, from+k).
	Chunk(from, k int) (ChunkRequest, error)
}

// MonitorSource adapts the common case: an auditor talking to a machine
// that exposes its log, snapshots and collected authenticators.
type MonitorSource struct {
	Node    sig.NodeID
	NodeIdx uint32
	Entries []tevlog.Entry
	Auths   []tevlog.Authenticator
	// Materialize returns the machine state at snapshot index k.
	Materialize func(k int) (*snapshot.Restored, error)

	points []SnapshotPoint
}

// Segments implements SegmentSource.
func (m *MonitorSource) Segments() ([]SnapshotPoint, error) {
	if m.points == nil {
		pts, err := FindSnapshots(m.Entries)
		if err != nil {
			return nil, err
		}
		m.points = pts
	}
	return m.points, nil
}

// Chunk implements SegmentSource.
func (m *MonitorSource) Chunk(from, k int) (ChunkRequest, error) {
	pts, err := m.Segments()
	if err != nil {
		return ChunkRequest{}, err
	}
	start := pts[from]
	end := pts[from+k]
	restored, err := m.Materialize(int(start.SnapIdx))
	if err != nil {
		return ChunkRequest{}, err
	}
	return ChunkRequest{
		Node: m.Node, NodeIdx: m.NodeIdx,
		Start: restored, StartRoot: start.Root, PrevHash: start.EntryHash,
		Entries: m.Entries[start.EntryIndex+1 : end.EntryIndex+1],
		Auths:   m.Auths,
	}, nil
}

// SpotPolicy selects which segments to inspect out of n available.
type SpotPolicy interface {
	// Pick returns the segment indices to audit, each in [0, n).
	Pick(n int) []int
}

// RandomSample inspects Fraction of segments, chosen by a seeded PRNG
// (deterministic for reproducibility). Fraction is in 1/256 units.
type RandomSample struct {
	Fraction256 int
	Seed        uint64
}

// Pick implements SpotPolicy.
func (p RandomSample) Pick(n int) []int {
	rng := p.Seed
	if rng == 0 {
		rng = 0x9E3779B97F4A7C15
	}
	var out []int
	for i := 0; i < n; i++ {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		if int(rng&0xFF) < p.Fraction256 {
			out = append(out, i)
		}
	}
	return out
}

// RecentFirst inspects the last K segments — the "work backwards from
// suspicious results" policy.
type RecentFirst struct{ K int }

// Pick implements SpotPolicy.
func (p RecentFirst) Pick(n int) []int {
	k := p.K
	if k > n {
		k = n
	}
	out := make([]int, 0, k)
	for i := n - k; i < n; i++ {
		out = append(out, i)
	}
	return out
}

// InitializationPlus always inspects the first segment (where faults have
// the longest-lived effects: initialization, key generation) and samples
// the rest.
type InitializationPlus struct{ Rest SpotPolicy }

// Pick implements SpotPolicy.
func (p InitializationPlus) Pick(n int) []int {
	if n == 0 {
		return nil
	}
	seen := map[int]bool{0: true}
	out := []int{0}
	if p.Rest != nil {
		for _, i := range p.Rest.Pick(n) {
			if !seen[i] {
				seen[i] = true
				out = append(out, i)
			}
		}
	}
	return out
}

// SpotCheckOutcome summarizes a policy run.
type SpotCheckOutcome struct {
	SegmentsTotal   int
	SegmentsChecked int
	FaultFound      bool
	FirstFault      *FaultReport
}

// SpotCheck applies a policy: it audits each selected 1-segment chunk and
// stops at the first fault. Accuracy is unconditional — an honest machine
// passes any subset; completeness holds only if a faulty segment is among
// the inspected ones (§4.7).
func (a *Auditor) SpotCheck(src SegmentSource, policy SpotPolicy) (*SpotCheckOutcome, error) {
	pts, err := src.Segments()
	if err != nil {
		return nil, err
	}
	nSegments := len(pts) - 1
	if nSegments < 0 {
		nSegments = 0
	}
	out := &SpotCheckOutcome{SegmentsTotal: nSegments}
	for _, idx := range policy.Pick(nSegments) {
		if idx < 0 || idx >= nSegments {
			continue
		}
		req, err := src.Chunk(idx, 1)
		if err != nil {
			return nil, err
		}
		out.SegmentsChecked++
		res := a.AuditChunk(req)
		if !res.Passed {
			out.FaultFound = true
			out.FirstFault = res.Fault
			return out, nil
		}
	}
	return out, nil
}
