package audit_test

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/audit"
	"repro/internal/game"
	"repro/internal/wire"
)

// Crash-resume suite for the journaled coordinator: kill the coordinator
// once N epoch verdicts are durable, restart it over the same journal
// directory, and require (a) the resumed audit's verdict byte-identical to
// the uninterrupted serial engine's, (b) durable epochs never re-dispatched
// to the fleet, and (c) exactly one run resumed. This is the in-process
// half of the contract; scripts/dist_smoke SIGKILLs the real binary.

// startEpochZeroSilentWorker fronts a real honest replay worker with a
// verdict-filter proxy that swallows every verdict for epoch index 0.
// Epoch 0 precedes any possible fault, so its verdict is always needed —
// withholding it strands the run mid-flight with the later epochs'
// verdicts durable in the journal, however fast the replay is and
// wherever the cheat faults. The deterministic setup for killing a
// coordinator that provably has unfinished work.
func startEpochZeroSilentWorker(t *testing.T) string {
	t.Helper()
	fleet, err := audit.StartChaosFleet([]*audit.ChaosPlan{nil})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fleet.Close)
	l, addr, err := audit.StartVerdictFilterProxy(fleet.Addrs[0], func(v *wire.AuditVerdict) bool {
		return v.Index != 0
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return addr
}

// killCoordinatorAtEpoch runs phase 1 of a crash-resume scenario: an audit
// through a journaled coordinator whose single worker never answers for
// epoch 0, killed as soon as the journal holds crashEpochs durable
// verdicts. It returns with the journal closed, ready for the restarted
// coordinator to adopt.
func killCoordinatorAtEpoch(t *testing.T, s *game.Scenario, dir string, crashEpochs int) {
	t.Helper()
	addr := startEpochZeroSilentWorker(t)
	journal, err := audit.OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer journal.Close()
	coord := testCoordinator(audit.CoordinatorConfig{
		DisableLocalFallback: true,
		Journal:              journal,
		Pipeline:             2,
		HedgeAfter:           -1,
		JobTimeout:           20 * time.Second,
	})
	coord.AddWorker(addr)

	done := make(chan struct{})
	var auditErr error
	go func() {
		defer close(done)
		_, _, auditErr = s.AuditNodeDist("player1", audit.DistOptions{Backend: coord.Backend()})
	}()

	deadline := time.Now().Add(30 * time.Second)
	for {
		_, verdicts, err := audit.InspectJournal(dir)
		if err != nil {
			t.Fatal(err)
		}
		if verdicts >= crashEpochs {
			break
		}
		select {
		case <-done:
			t.Fatalf("audit completed before the kill threshold (%d durable verdicts): %v", crashEpochs, auditErr)
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("journal never reached %d durable verdicts", crashEpochs)
		}
		time.Sleep(time.Millisecond)
	}
	coord.Kill()
	<-done
	if !errors.Is(auditErr, audit.ErrCoordinatorKilled) {
		t.Fatalf("killed coordinator's audit error = %v, want ErrCoordinatorKilled", auditErr)
	}
}

func TestCoordinatorCrashResume(t *testing.T) {
	for _, plan := range audit.CoordinatorKillPlans() {
		t.Run(plan.Name, func(t *testing.T) {
			s := coordScenario(t, "aimbot")
			serial, err := s.AuditNode("player1")
			if err != nil {
				t.Fatal(err)
			}
			dir := t.TempDir()
			killCoordinatorAtEpoch(t, s, dir, plan.CoordCrashEpochs)

			// Phase 2: a fresh coordinator over the same journal with an
			// honest fleet, full spot recheck so the journal's stored
			// verdicts get the lying-worker treatment.
			journal, err := audit.OpenJournal(dir)
			if err != nil {
				t.Fatal(err)
			}
			defer journal.Close()
			fleet, err := audit.StartChaosFleet([]*audit.ChaosPlan{nil})
			if err != nil {
				t.Fatal(err)
			}
			defer fleet.Close()
			coord := testCoordinator(audit.CoordinatorConfig{
				DisableLocalFallback: true, Journal: journal, HedgeAfter: -1,
			})
			defer coord.Close()
			coord.AddWorker(fleet.Addrs[0])

			res, dstats, err := s.AuditNodeDist("player1", audit.DistOptions{
				Backend: coord.Backend(),
				EngineOptions: audit.EngineOptions{
					SpotRecheckFraction: 1, SpotRecheckSeed: 0xBADD,
				},
			})
			if err != nil {
				t.Fatalf("resumed audit: %v", err)
			}
			compareVerdicts(t, plan.Name+"/resumed", serial, res)

			st := coord.Stats()
			if st.RunsResumed != 1 {
				t.Errorf("runs resumed = %d, want 1", st.RunsResumed)
			}
			if st.EpochsSkippedDurable < int64(plan.CoordCrashEpochs) {
				t.Errorf("epochs skipped as durable = %d, want >= %d", st.EpochsSkippedDurable, plan.CoordCrashEpochs)
			}
			if st.JournalBytes == 0 {
				t.Error("journal bytes gauge stayed 0 on a journaled run")
			}
			// Bounded redispatch: the fleet must have served at most the
			// non-durable epochs — a durable verdict re-dispatched to a
			// worker would show up here.
			if served := fleet.JobsServed(); served > int64(dstats.Epochs)-st.EpochsSkippedDurable {
				t.Errorf("fleet served %d jobs, want <= %d total epochs - %d durable",
					served, dstats.Epochs, st.EpochsSkippedDurable)
			}

			// The resumed run settled cleanly, so its tombstone lands and
			// the next open starts empty.
			coord.Close()
			if err := journal.Close(); err != nil {
				t.Fatal(err)
			}
			runs, verdicts, err := audit.InspectJournal(dir)
			if err != nil || runs != 0 || verdicts != 0 {
				t.Errorf("journal after clean resume = (%d runs, %d verdicts, %v), want empty", runs, verdicts, err)
			}
		})
	}
}

// TestCoordinatorCrashResumeCatalog runs the crash/restart cycle over the
// full cheat catalog (plus a clean log): for every recording the resumed
// verdict must match the serial engine byte for byte — the earliest-fault
// cutoff, deterministic merge and journal resume must compose for every
// fault class, not just the easy ones.
func TestCoordinatorCrashResumeCatalog(t *testing.T) {
	if testing.Short() {
		t.Skip("crash-resume catalog suite in -short mode")
	}
	plans := audit.CoordinatorKillPlans()
	names := []string{""}
	for _, c := range game.Catalog() {
		names = append(names, c.Name)
	}
	for i, name := range names {
		plan := plans[i%len(plans)]
		label := name
		if label == "" {
			label = "clean"
		}
		t.Run(fmt.Sprintf("%s/%s", label, plan.Name), func(t *testing.T) {
			s := coordScenario(t, name)
			serial, err := s.AuditNode("player1")
			if err != nil {
				t.Fatal(err)
			}
			dir := t.TempDir()
			killCoordinatorAtEpoch(t, s, dir, plan.CoordCrashEpochs)

			journal, err := audit.OpenJournal(dir)
			if err != nil {
				t.Fatal(err)
			}
			defer journal.Close()
			fleet, err := audit.StartChaosFleet([]*audit.ChaosPlan{nil})
			if err != nil {
				t.Fatal(err)
			}
			defer fleet.Close()
			coord := testCoordinator(audit.CoordinatorConfig{
				DisableLocalFallback: true, Journal: journal, HedgeAfter: -1,
			})
			defer coord.Close()
			coord.AddWorker(fleet.Addrs[0])

			res, _, err := s.AuditNodeDist("player1", audit.DistOptions{
				Backend:       coord.Backend(),
				EngineOptions: audit.EngineOptions{SpotRecheckFraction: 0.25, SpotRecheckSeed: 0xBADD},
			})
			if err != nil {
				t.Fatalf("resumed audit: %v", err)
			}
			compareVerdicts(t, label+"/resumed", serial, res)
			st := coord.Stats()
			if st.RunsResumed != 1 {
				t.Errorf("runs resumed = %d, want 1", st.RunsResumed)
			}
			if st.EpochsSkippedDurable == 0 {
				t.Error("no epochs were skipped as durable on a resumed run")
			}
		})
	}
}
