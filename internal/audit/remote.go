package audit

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/snapshot"
	"repro/internal/wire"
)

// This file is the real-network epoch backend: a length-prefixed TCP
// protocol between an audit coordinator (TCPBackend) and scenario-agnostic
// replay workers (ServeEpochWorker / `avm-audit -serve`). One connection
// carries one session: the coordinator opens with the reference
// configuration (image, node, RNG seed), then streams epoch jobs and reads
// verdicts, tagged by epoch index so late verdicts from a straggler never
// desynchronize the stream.
//
// Failure handling is per epoch: a connection error or crash mid-epoch
// requeues the job for another worker under capped exponential backoff
// with deterministic jitter; a verdict slower than JobTimeout is
// re-dispatched immediately to a different worker while the original stays
// outstanding (a hedge — first verdict wins, duplicates are deduplicated);
// and a worker that times out repeatedly is abandoned. The audit errors
// out only when an epoch exhausts MaxAttempts (ErrRetriesExhausted) or
// every worker is gone.

// frame i/o -----------------------------------------------------------------

// writeDistFrame writes one length-prefixed protocol frame.
func writeDistFrame(w io.Writer, kind wire.DistFrameKind, body []byte) error {
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(1+len(body)))
	hdr[4] = byte(kind)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

// readDistFrame reads one length-prefixed protocol frame.
func readDistFrame(r io.Reader) (wire.DistFrameKind, []byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 {
		return 0, nil, errors.New("audit: empty protocol frame")
	}
	if n > wire.MaxDistFrame {
		return 0, nil, wire.ErrFrameTooLarge
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, nil, err
	}
	return wire.DistFrameKind(body[0]), body[1:], nil
}

// worker side ---------------------------------------------------------------

// ServeEpochWorker accepts coordinator connections on l and replays epoch
// jobs until the listener closes — the one-shot entry point kept for
// callers that never drain. Long-running deployments use an EpochWorker,
// which adds graceful drain and the multiplexed coordinator protocol.
func ServeEpochWorker(l net.Listener) error {
	return (&EpochWorker{}).Serve(l)
}

// EpochWorker is a scenario-agnostic replay worker. It holds no trust:
// everything a replay needs arrives in session and job frames, and the
// coordinator verifies what comes back (root checks before dispatch, spot
// re-replays after). One worker serves two protocols, discriminated by a
// connection's first frame:
//
//   - the PR-5 one-shot protocol (DistFrameSession then synchronous jobs),
//     spoken by TCPBackend;
//   - the multiplexed service protocol (DistFrameMuxSession /
//     DistFrameMuxJob / DistFramePing), spoken by the Coordinator: one
//     connection carries many audit sessions, pipelined jobs replay in
//     arrival order on a per-connection executor, and pings are answered
//     from the read loop even while a replay runs.
//
// Jobs within a connection replay one at a time, so a deployment's
// parallelism is its worker count; pipelining exists to hide the wire
// round-trip, not to multiply CPU.
type EpochWorker struct {
	// Chaos, when non-nil, perturbs this worker per a deterministic fault
	// plan — the fault-injection harness. Nil means honest.
	Chaos *ChaosPlan
	// IdleTimeout reaps multiplexed connections with no traffic (a
	// coordinator that died without closing). <= 0 selects 5m; heartbeats
	// keep healthy connections far below it.
	IdleTimeout time.Duration

	mu        sync.Mutex
	listeners map[net.Listener]struct{}
	conns     map[net.Conn]struct{}
	draining  bool

	inflight sync.WaitGroup // accepted jobs not yet answered
	connSeq  atomic.Int64
	jobSeq   atomic.Int64
}

// Serve accepts coordinator connections until the listener closes. It
// returns nil when the worker was drained, the accept error otherwise.
func (w *EpochWorker) Serve(l net.Listener) error {
	w.mu.Lock()
	if w.listeners == nil {
		w.listeners = make(map[net.Listener]struct{})
		w.conns = make(map[net.Conn]struct{})
	}
	draining := w.draining
	w.listeners[l] = struct{}{}
	w.mu.Unlock()
	if draining {
		l.Close()
		return nil
	}
	for {
		conn, err := l.Accept()
		if err != nil {
			w.mu.Lock()
			delete(w.listeners, l)
			draining := w.draining
			w.mu.Unlock()
			if draining {
				return nil
			}
			return err
		}
		if w.Chaos != nil && !w.Chaos.admitConn(int(w.connSeq.Add(1))) {
			// Partition plan: the link to this worker is down; refuse the
			// connection outright and let the coordinator's redial backoff
			// knock until the partition heals.
			conn.Close()
			continue
		}
		w.mu.Lock()
		if w.draining {
			w.mu.Unlock()
			conn.Close()
			continue
		}
		w.conns[conn] = struct{}{}
		w.mu.Unlock()
		go func() {
			defer func() {
				w.mu.Lock()
				delete(w.conns, conn)
				w.mu.Unlock()
				conn.Close()
			}()
			if err := w.serveConn(conn); err != nil && !errors.Is(err, io.EOF) {
				// Report protocol errors while the connection still works; a
				// broken pipe just ends the session — the coordinator's
				// retry owns recovery.
				_ = writeDistFrame(conn, wire.DistFrameError, []byte(err.Error()))
			}
		}()
	}
}

// Drain gracefully winds the worker down: stop accepting connections,
// refuse new jobs (each refusal is answered with DistFrameDrain so the
// coordinator re-dispatches immediately instead of waiting out a timeout),
// and wait up to timeout for in-flight epochs to finish before closing the
// remaining connections.
func (w *EpochWorker) Drain(timeout time.Duration) {
	w.mu.Lock()
	w.draining = true
	for l := range w.listeners {
		l.Close()
	}
	w.mu.Unlock()

	done := make(chan struct{})
	go func() {
		w.inflight.Wait()
		close(done)
	}()
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	select {
	case <-done:
	case <-time.After(timeout):
	}

	w.mu.Lock()
	for c := range w.conns {
		c.Close()
	}
	w.mu.Unlock()
}

// Draining reports whether Drain has been called.
func (w *EpochWorker) Draining() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.draining
}

// serveConn discriminates the two protocols by the first frame.
func (w *EpochWorker) serveConn(conn net.Conn) error {
	kind, body, err := readDistFrame(conn)
	if err != nil {
		return err
	}
	switch kind {
	case wire.DistFrameSession:
		return w.serveLegacyConn(conn, body)
	case wire.DistFrameMuxSession, wire.DistFramePing:
		return w.serveMuxConn(conn, kind, body)
	}
	return fmt.Errorf("audit: worker expected session frame, got kind %d", kind)
}

// serveLegacyConn runs one PR-5 coordinator session: session frame, then
// synchronous jobs.
func (w *EpochWorker) serveLegacyConn(conn net.Conn, body []byte) error {
	ws, err := wire.ParseAuditSession(body)
	if err != nil {
		return err
	}
	sess, err := sessionFromWire(ws)
	if err != nil {
		return err
	}
	if err := writeDistFrame(conn, wire.DistFrameSessionOK, nil); err != nil {
		return err
	}
	// cache holds this connection's verified start states for delta-job
	// reconstruction; it lives and dies with the connection.
	cache := newStateCache()
	for {
		kind, body, err := readDistFrame(conn)
		if err != nil {
			return err
		}
		if kind != wire.DistFrameJob && kind != wire.DistFrameDeltaJob {
			return fmt.Errorf("audit: worker expected job frame, got kind %d", kind)
		}
		if w.Draining() {
			if err := writeDistFrame(conn, wire.DistFrameDrain, nil); err != nil {
				return err
			}
			continue
		}
		var job *EpochJob
		if kind == wire.DistFrameDeltaJob {
			wj, err := wire.ParseAuditDeltaJob(body)
			if err != nil {
				return err
			}
			resolved, fault, rerr := resolveDeltaJob(sess, wj, cache)
			if errors.Is(rerr, errNeedState) {
				// The base was evicted (or never arrived); ask the
				// coordinator to re-ship the full state.
				if err := writeDistFrame(conn, wire.DistFrameNeedState, wire.MarshalNeedState(wj.Index)); err != nil {
					return err
				}
				continue
			}
			if fault != nil {
				// The delta chain failed fold verification: the coordinator
				// (or whoever doctored the chain) is caught before any
				// replay work, with the same fault a corrupt full state
				// yields.
				v := verdictToWire(int(wj.Index), epochResult{fault: fault}).Marshal()
				if err := writeDistFrame(conn, wire.DistFrameVerdict, v); err != nil {
					return err
				}
				continue
			}
			job = resolved
		} else {
			wj, err := wire.ParseAuditJob(body)
			if err != nil {
				return err
			}
			job = jobFromWire(wj)
			// Remember the shipped start state so later jobs can arrive as
			// delta chains against it. Unverified entry is safe: every use
			// re-verifies against a committed root (resolveDeltaJob checks
			// the fold result, runEpochJob seed-verifies before replay).
			cache.put(job.Start)
		}
		w.inflight.Add(1)
		verdict, reply := w.runJobMaybeChaotic(sess, job, conn, nil, cache)
		w.inflight.Done()
		if !reply {
			continue
		}
		if err := writeDistFrame(conn, wire.DistFrameVerdict, verdict); err != nil {
			return err
		}
	}
}

// muxWork is one pipelined job queued for a connection's executor. Exactly
// one of job / deltaJob is set; delta jobs resolve on the executor
// goroutine, which owns the connection's state cache.
type muxWork struct {
	sessID   uint64
	sess     Session
	job      *EpochJob
	deltaJob *wire.AuditDeltaJob
}

// serveMuxConn runs the multiplexed service protocol: this goroutine is
// the read loop (it answers pings immediately, even mid-replay — liveness
// probes measure the worker, not the current epoch), and a per-connection
// executor goroutine replays queued jobs in arrival order.
func (w *EpochWorker) serveMuxConn(conn net.Conn, firstKind wire.DistFrameKind, firstBody []byte) error {
	var wmu sync.Mutex
	write := func(kind wire.DistFrameKind, body []byte) error {
		wmu.Lock()
		defer wmu.Unlock()
		conn.SetWriteDeadline(time.Now().Add(time.Minute))
		return writeDistFrame(conn, kind, body)
	}

	connDead := make(chan struct{})
	jobs := make(chan muxWork, 64)
	var execWG sync.WaitGroup
	execWG.Add(1)
	go func() {
		defer execWG.Done()
		// cache holds this connection's verified start states for delta-job
		// reconstruction; confined to this executor goroutine.
		cache := newStateCache()
		for wk := range jobs {
			select {
			case <-connDead:
				// The connection died with this job still queued; it will
				// never be answered, so release it instead of replaying.
				w.inflight.Done()
				continue
			default:
			}
			job := wk.job
			if wk.deltaJob != nil {
				resolved, fault, rerr := resolveDeltaJob(wk.sess, wk.deltaJob, cache)
				switch {
				case errors.Is(rerr, errNeedState):
					_ = write(wire.DistFrameMuxNeedState,
						wire.AppendMuxID(wk.sessID, wire.MarshalNeedState(wk.deltaJob.Index)))
					w.inflight.Done()
					continue
				case fault != nil:
					v := verdictToWire(int(wk.deltaJob.Index), epochResult{fault: fault}).Marshal()
					_ = write(wire.DistFrameMuxVerdict, wire.AppendMuxID(wk.sessID, v))
					w.inflight.Done()
					continue
				}
				job = resolved
			} else if job.Start != nil {
				// Full-state job: remember the start so later jobs on this
				// connection can arrive as delta chains against it.
				cache.put(job.Start)
			}
			verdict, reply := w.runJobMaybeChaotic(wk.sess, job, conn, connDead, cache)
			if reply {
				_ = write(wire.DistFrameMuxVerdict, wire.AppendMuxID(wk.sessID, verdict))
			}
			w.inflight.Done()
		}
	}()
	defer func() {
		close(connDead)
		close(jobs)
		execWG.Wait()
	}()

	sessions := make(map[uint64]Session)
	frameSeq := 0
	handle := func(kind wire.DistFrameKind, body []byte) error {
		switch kind {
		case wire.DistFrameMuxSession:
			id, rest, err := wire.SplitMuxID(body)
			if err != nil {
				return err
			}
			ws, err := wire.ParseAuditSession(rest)
			if err != nil {
				return err
			}
			sess, err := sessionFromWire(ws)
			if err != nil {
				return err
			}
			sessions[id] = sess
			return write(wire.DistFrameMuxSessionOK, wire.AppendMuxID(id, nil))
		case wire.DistFrameMuxJob, wire.DistFrameMuxDeltaJob:
			id, rest, err := wire.SplitMuxID(body)
			if err != nil {
				return err
			}
			sess, ok := sessions[id]
			if !ok {
				return fmt.Errorf("audit: mux job for unregistered session %d", id)
			}
			if w.Draining() {
				return write(wire.DistFrameDrain, nil)
			}
			wk := muxWork{sessID: id, sess: sess}
			if kind == wire.DistFrameMuxDeltaJob {
				dj, err := wire.ParseAuditDeltaJob(rest)
				if err != nil {
					return err
				}
				wk.deltaJob = dj
			} else {
				wj, err := wire.ParseAuditJob(rest)
				if err != nil {
					return err
				}
				wk.job = jobFromWire(wj)
			}
			w.inflight.Add(1)
			jobs <- wk
			return nil
		case wire.DistFramePing:
			return write(wire.DistFramePong, body)
		}
		return fmt.Errorf("audit: worker got unexpected mux frame kind %d", kind)
	}

	if err := handle(firstKind, firstBody); err != nil {
		return err
	}
	idle := w.IdleTimeout
	if idle <= 0 {
		idle = 5 * time.Minute
	}
	for {
		conn.SetReadDeadline(time.Now().Add(idle))
		kind, body, err := readDistFrame(conn)
		if err != nil {
			return err
		}
		frameSeq++
		if w.Chaos != nil && !w.Chaos.admitFrame(frameSeq) {
			// Connection-flap plan: the link drops mid-conversation.
			return nil
		}
		if err := handle(kind, body); err != nil {
			return err
		}
	}
}

// runJobMaybeChaotic replays one job, letting the worker's chaos plan
// decide its fate first. It returns the encoded verdict and whether to
// reply at all (a hanging worker never does). The verdict is encoded here
// so a lying plan can corrupt it in one place for both protocols. connDead
// is the mux executor's teardown signal; it is nil on legacy connections,
// where this function runs on the read loop itself and a hang instead
// swallows the connection's remaining traffic until the peer gives up.
func (w *EpochWorker) runJobMaybeChaotic(sess Session, job *EpochJob, conn net.Conn, connDead <-chan struct{}, cache *stateCache) (verdict []byte, reply bool) {
	seq := w.jobSeq.Add(1)
	action := ChaosNone
	if w.Chaos != nil {
		action = w.Chaos.jobAction(seq)
	}
	switch action {
	case ChaosCrash:
		// Die mid-epoch: close the connection without a verdict.
		conn.Close()
		return nil, false
	case ChaosHang:
		// Accept the job and never reply; hold the slot until the
		// connection dies so the goroutine cannot leak past the test.
		if connDead != nil {
			<-connDead
		} else {
			_, _ = io.Copy(io.Discard, conn)
		}
		return nil, false
	}
	start := time.Now()
	r := runEpochJobEx(sess, job, nil, cache != nil)
	if cache != nil {
		// Cache the verified end state (nil for faulted or tail epochs):
		// the next contiguous job on this connection can then arrive as an
		// empty delta chain, shipping no state at all.
		cache.put(r.end)
	}
	if action == ChaosSlow {
		// A 10x-slower worker: the replay took 1x, so sleep out the other
		// 9x (capped) unless the connection dies first.
		delay := 9 * time.Since(start)
		if max := w.Chaos.slowCap(); delay > max {
			delay = max
		}
		if connDead == nil {
			time.Sleep(delay)
		} else {
			select {
			case <-time.After(delay):
			case <-connDead:
				return nil, false
			}
		}
	}
	if action == ChaosLie {
		r = w.Chaos.corrupt(r)
	}
	return verdictToWire(job.Index, r).Marshal(), true
}

// coordinator side ----------------------------------------------------------

// ErrRetriesExhausted reports an epoch that burned through its dispatch
// retry budget without a verdict. It surfaces in DistStats.RetriesExhausted
// and, when the epoch was needed for the merge, in the audit error.
var ErrRetriesExhausted = errors.New("audit: epoch dispatch retry budget exhausted")

// TCPBackend replays epochs on remote workers reached over TCP.
type TCPBackend struct {
	// Addrs are the worker addresses (host:port), one connection each.
	Addrs []string
	// DialTimeout bounds connection setup. <= 0 selects 5s.
	DialTimeout time.Duration
	// JobTimeout is the straggler deadline: an epoch with no verdict after
	// this long is re-dispatched to another worker (the original dispatch
	// stays outstanding; the first verdict wins). <= 0 selects 2m.
	JobTimeout time.Duration
	// MaxAttempts bounds dispatch attempts per epoch across workers.
	// <= 0 selects len(Addrs)+2.
	MaxAttempts int
	// ConsecutiveTimeouts is how many straggler deadlines in a row a
	// connection survives before it is dropped and redialed. <= 0 selects 2.
	ConsecutiveTimeouts int
	// RetryBackoff is the base delay before a failed epoch re-dispatches;
	// each subsequent failure doubles it (with deterministic jitter) up to
	// RetryMaxBackoff. Straggler re-dispatches are exempt — they are hedges,
	// and delaying a hedge defeats it. <= 0 selects 25ms.
	RetryBackoff time.Duration
	// RetryMaxBackoff caps the exponential backoff. <= 0 selects 1s.
	RetryMaxBackoff time.Duration
	// BackoffSeed drives the deterministic backoff jitter.
	BackoffSeed uint64

	// deltaSrc, when set (via the dist router's deltaCapable seam), lets
	// each worker connection ship jobs as proof-carrying delta chains after
	// its first full-state frame.
	deltaSrc func(k uint32) (*snapshot.Delta, error)
}

// withDelta implements deltaCapable: the returned backend ships
// delta-encoded jobs where a connection's tracked base allows it.
func (b *TCPBackend) withDelta(src func(k uint32) (*snapshot.Delta, error)) EpochBackend {
	nb := *b
	nb.deltaSrc = src
	return &nb
}

// backoffDelay computes the capped exponential backoff (with deterministic
// jitter in [1/2, 1) of the exponential step) before attempt n+1 of pos.
func (b *TCPBackend) backoffDelay(pos, attempt int) time.Duration {
	base := b.RetryBackoff
	if base <= 0 {
		base = 25 * time.Millisecond
	}
	ceil := b.RetryMaxBackoff
	if ceil <= 0 {
		ceil = time.Second
	}
	d := base
	for i := 1; i < attempt && d < ceil; i++ {
		d *= 2
	}
	if d > ceil {
		d = ceil
	}
	frac := float64(splitmix64(b.BackoffSeed^uint64(pos)<<20^uint64(attempt))>>11) / float64(1<<53)
	return d/2 + time.Duration(frac*float64(d/2))
}

// Remote implements EpochBackend: jobs ship whole.
func (b *TCPBackend) Remote() bool { return true }

// tcpDispatch is the shared state of one Run.
type tcpDispatch struct {
	jobs []*EpochJob

	// blocks partitions the initial positions into one contiguous range per
	// worker connection, so each connection replays consecutive epochs and a
	// delta-encoded job ships exactly one increment — not the chain of every
	// epoch other connections replayed in between. Workers drain their own
	// block front to back and steal the back half of the fullest remaining
	// block when theirs runs dry (the stolen half stays contiguous, so the
	// thief starts one new chain instead of paying a full state per stolen
	// job). Retries and stragglers flow through pending as before.
	blockMu sync.Mutex
	blocks  [][]int

	pending   chan int // positions awaiting re-dispatch; never closed (exit via done)
	settled   []atomic.Bool
	attempts  []atomic.Int32
	shipped   []atomic.Int64 // job-frame bytes written per position, all attempts
	shipFull  []atomic.Int64 // full-state job-frame bytes per position
	shipDelta []atomic.Int64 // delta-encoded job-frame bytes per position
	deltaSent []atomic.Int32 // delta-encoded dispatches per position
	deltaFall []atomic.Int32 // full re-ships after a worker NeedState
	remaining atomic.Int64
	done      chan struct{}

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	failed map[int]error // position → last error, for epochs out of attempts
	timers []*time.Timer // pending backoff requeues, stopped at shutdown
	closed bool
}

// settle marks a position finished (verdict, skip, or failure); the run
// completes when every position settles. Reports whether this call won.
func (d *tcpDispatch) settle(pos int) bool {
	if !d.settled[pos].CompareAndSwap(false, true) {
		return false
	}
	if d.remaining.Add(-1) == 0 {
		close(d.done)
	}
	return true
}

// fail records a position that exhausted its attempts.
func (d *tcpDispatch) fail(pos int, err error) {
	d.mu.Lock()
	d.failed[pos] = err
	d.mu.Unlock()
	d.settle(pos)
}

// nextBlocked pops the next initial-dispatch position for worker w: the
// front of w's own block, or — when w's block is empty — the back half of
// the fullest remaining block, adopted as w's new block. Returns false only
// when every block is drained.
func (d *tcpDispatch) nextBlocked(w int) (int, bool) {
	d.blockMu.Lock()
	defer d.blockMu.Unlock()
	if w < 0 || w >= len(d.blocks) {
		return 0, false
	}
	if len(d.blocks[w]) == 0 {
		best, bestLen := -1, 0
		for i := range d.blocks {
			if n := len(d.blocks[i]); n > bestLen {
				best, bestLen = i, n
			}
		}
		if best < 0 {
			return 0, false
		}
		cut := bestLen / 2
		d.blocks[w] = append([]int(nil), d.blocks[best][cut:]...)
		d.blocks[best] = d.blocks[best][:cut]
	}
	pos := d.blocks[w][0]
	d.blocks[w] = d.blocks[w][1:]
	return pos, true
}

// flushBlock returns a departing worker's unclaimed block to the shared
// queue so still-live connections pick its positions up; without it a
// worker parked on pending could wait forever for epochs only the dead
// worker's block held.
func (d *tcpDispatch) flushBlock(w int) {
	d.blockMu.Lock()
	var rest []int
	if w >= 0 && w < len(d.blocks) {
		rest, d.blocks[w] = d.blocks[w], nil
	}
	d.blockMu.Unlock()
	for _, pos := range rest {
		d.requeue(pos)
	}
}

// requeue returns a position to the dispatch queue. The queue is sized for
// every position times every attempt plus slack, so the send never blocks.
func (d *tcpDispatch) requeue(pos int) {
	if !d.settled[pos].Load() {
		select {
		case d.pending <- pos:
		default:
			// Queue saturated by duplicate requeues; the position is
			// already waiting, dropping this copy loses nothing.
		}
	}
}

// requeueAfter schedules a requeue once the backoff delay elapses; the
// timer is tracked so shutdown can cancel it.
func (d *tcpDispatch) requeueAfter(pos int, delay time.Duration) {
	if d.settled[pos].Load() {
		return
	}
	if delay <= 0 {
		d.requeue(pos)
		return
	}
	t := time.AfterFunc(delay, func() { d.requeue(pos) })
	d.mu.Lock()
	if d.closed {
		t.Stop()
	} else {
		d.timers = append(d.timers, t)
	}
	d.mu.Unlock()
}

// register tracks a live connection so shutdown can unblock its reads;
// returns false when the run is already over.
func (d *tcpDispatch) register(c net.Conn) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return false
	}
	d.conns[c] = struct{}{}
	return true
}

func (d *tcpDispatch) unregister(c net.Conn) {
	d.mu.Lock()
	delete(d.conns, c)
	d.mu.Unlock()
}

// shutdown closes every live connection, unblocking worker reads, and
// cancels pending backoff timers.
func (d *tcpDispatch) shutdown() {
	d.mu.Lock()
	d.closed = true
	for c := range d.conns {
		c.Close()
	}
	d.conns = map[net.Conn]struct{}{}
	for _, t := range d.timers {
		t.Stop()
	}
	d.timers = nil
	d.mu.Unlock()
}

func (d *tcpDispatch) finished() bool {
	select {
	case <-d.done:
		return true
	default:
		return false
	}
}

// costBlocks slices positions 0..len(jobs)-1 into one contiguous block per
// worker, weighted by each job's estimated replay cost: a worker's block
// covers roughly total/workers instructions, not len(jobs)/workers epochs,
// so a recording whose snapshot cadence produced one hot epoch does not
// serialize the fleet behind it. Blocks stay contiguous to preserve delta
// chain affinity. Jobs with no cost estimate (Cost 0 everywhere) fall back
// to the equal epoch-count split.
func costBlocks(jobs []*EpochJob, workers int) [][]int {
	blocks := make([][]int, workers)
	var total uint64
	for _, j := range jobs {
		total += j.Cost
	}
	if total == 0 {
		for i := range blocks {
			lo, hi := i*len(jobs)/workers, (i+1)*len(jobs)/workers
			for pos := lo; pos < hi; pos++ {
				blocks[i] = append(blocks[i], pos)
			}
		}
		return blocks
	}
	w := 0
	var cum uint64
	for pos, j := range jobs {
		// Assign by the job's cost midpoint: a job spanning a boundary goes
		// to whichever side holds more of it.
		mid := cum + j.Cost/2
		for w+1 < workers && mid >= uint64(w+1)*total/uint64(workers) {
			w++
		}
		blocks[w] = append(blocks[w], pos)
		cum += j.Cost
	}
	return blocks
}

// Run implements EpochBackend over the worker fleet.
func (b *TCPBackend) Run(sess Session, jobs []*EpochJob, skip func(int) bool, emit func(EpochVerdict)) error {
	if len(b.Addrs) == 0 {
		return errors.New("audit: TCP backend has no worker addresses")
	}
	maxAttempts := b.MaxAttempts
	if maxAttempts <= 0 {
		maxAttempts = len(b.Addrs) + 2
	}
	d := &tcpDispatch{
		jobs:      jobs,
		pending:   make(chan int, len(jobs)*(maxAttempts+2)+len(b.Addrs)),
		settled:   make([]atomic.Bool, len(jobs)),
		attempts:  make([]atomic.Int32, len(jobs)),
		shipped:   make([]atomic.Int64, len(jobs)),
		shipFull:  make([]atomic.Int64, len(jobs)),
		shipDelta: make([]atomic.Int64, len(jobs)),
		deltaSent: make([]atomic.Int32, len(jobs)),
		deltaFall: make([]atomic.Int32, len(jobs)),
		done:      make(chan struct{}),
		conns:     make(map[net.Conn]struct{}),
		failed:    make(map[int]error),
	}
	d.remaining.Store(int64(len(jobs)))
	d.blocks = costBlocks(jobs, len(b.Addrs))

	// Jobs are encoded lazily and cached, so skipped epochs cost nothing
	// and a re-dispatch reuses the first attempt's bytes.
	encoded := make([][]byte, len(jobs))
	var encMu sync.Mutex
	frame := func(pos int) []byte {
		encMu.Lock()
		defer encMu.Unlock()
		if encoded[pos] == nil {
			encoded[pos] = jobToWire(jobs[pos]).Marshal()
		}
		return encoded[pos]
	}

	sessionFrame := sessionToWire(sess).Marshal()
	var wg sync.WaitGroup
	var live atomic.Int64
	allDead := make(chan struct{})
	live.Store(int64(len(b.Addrs)))
	for i, addr := range b.Addrs {
		wg.Add(1)
		go func(i int, addr string) {
			defer wg.Done()
			b.runWorker(i, addr, sessionFrame, d, frame, skip, emit)
			if live.Add(-1) == 0 {
				close(allDead)
			}
		}(i, addr)
	}

	var runErr error
	select {
	case <-d.done:
	case <-allDead:
		if d.remaining.Load() > 0 {
			runErr = fmt.Errorf("audit: all %d TCP workers unreachable with %d epochs unresolved",
				len(b.Addrs), d.remaining.Load())
		}
	}
	d.shutdown()
	wg.Wait()

	// Report per-epoch failures as errored verdicts; the router decides
	// whether the final verdict needed them.
	d.mu.Lock()
	for pos, err := range d.failed {
		emit(EpochVerdict{Index: jobs[pos].Index, Err: err,
			Attempts: int(d.attempts[pos].Load()), Worker: "(exhausted)"})
	}
	d.mu.Unlock()
	return runErr
}

// runWorker drives one worker connection until the run completes or the
// worker is abandoned. Returning requeues nothing by itself — any position
// this worker held was requeued on its error path — so the job flows to
// the surviving workers.
func (b *TCPBackend) runWorker(widx int, addr string, sessionFrame []byte, d *tcpDispatch, frame func(int) []byte, skip func(int) bool, emit func(EpochVerdict)) {
	dialTimeout := b.DialTimeout
	if dialTimeout <= 0 {
		dialTimeout = 5 * time.Second
	}
	jobTimeout := b.JobTimeout
	if jobTimeout <= 0 {
		jobTimeout = 2 * time.Minute
	}
	maxConsecutiveTimeouts := b.ConsecutiveTimeouts
	if maxConsecutiveTimeouts <= 0 {
		maxConsecutiveTimeouts = 2
	}

	posByIndex := make(map[int]int, len(d.jobs))
	for pos, j := range d.jobs {
		posByIndex[j.Index] = pos
	}

	// tracker models what snapshot state the worker on the current
	// connection holds; a reconnect resets it (the worker's state cache is
	// per-connection).
	tracker := &deltaTracker{src: b.deltaSrc}

	defer d.flushBlock(widx)

	var conn net.Conn
	closeConn := func() {
		if conn != nil {
			d.unregister(conn)
			conn.Close()
			conn = nil
		}
	}
	defer closeConn()
	connect := func() bool {
		tracker.invalidate()
		closeConn()
		if d.finished() {
			return false
		}
		c, err := net.DialTimeout("tcp", addr, dialTimeout)
		if err != nil {
			return false
		}
		// Register before the first write: once the conn is registered,
		// shutdown() can always unblock this goroutine's I/O, so a worker
		// that stalls mid-handshake cannot outlive the run.
		if !d.register(c) {
			c.Close()
			return false
		}
		c.SetWriteDeadline(time.Now().Add(dialTimeout))
		if err := writeDistFrame(c, wire.DistFrameSession, sessionFrame); err != nil {
			d.unregister(c)
			c.Close()
			return false
		}
		c.SetReadDeadline(time.Now().Add(dialTimeout))
		kind, _, err := readDistFrame(c)
		if err != nil || kind != wire.DistFrameSessionOK {
			d.unregister(c)
			c.Close()
			return false
		}
		conn = c
		return true
	}
	if !connect() {
		return
	}

	// deliver hands a verdict frame to the router, deduplicating via the
	// settled flags so a straggler's late verdict and its re-dispatch twin
	// emit exactly once. Returns the settled position, or -1 on a frame
	// this run cannot place. Shipped bytes are read from the per-position
	// tally, so a late verdict drained while awaiting another job is
	// charged its own epoch's frames (every attempt's), not the current
	// job's.
	deliver := func(body []byte) int {
		v, err := wire.ParseAuditVerdict(body)
		if err != nil {
			return -1
		}
		pos, ok := posByIndex[int(v.Index)]
		if !ok {
			return -1
		}
		// A fault-free verdict proves this connection's worker replayed
		// through the epoch's terminal snapshot and cached the verified end
		// state; advance the tracked base so the next contiguous job ships
		// stateless.
		if !v.HasFault {
			tracker.noteEnd(d.jobs[pos])
		}
		if d.settle(pos) {
			r := verdictFromWire(v)
			emit(EpochVerdict{
				Index: int(v.Index), Stats: r.stats, Fault: r.fault,
				Worker: addr, Attempts: int(d.attempts[pos].Load()),
				WireBytes:      int(d.shipped[pos].Load()) + len(body),
				WireBytesFull:  int(d.shipFull[pos].Load()),
				WireBytesDelta: int(d.shipDelta[pos].Load()),
				DeltaShipped:   int(d.deltaSent[pos].Load()),
				DeltaFallbacks: int(d.deltaFall[pos].Load()),
			})
		}
		return pos
	}

	consecutiveTimeouts := 0
	for {
		if d.finished() {
			return
		}
		var pos int
		var ok bool
		if pos, ok = d.nextBlocked(widx); !ok {
			select {
			case <-d.done:
				return
			case pos, ok = <-d.pending:
				if !ok {
					return
				}
			}
		}
		if d.settled[pos].Load() {
			continue
		}
		if skip(d.jobs[pos].Index) {
			d.settle(pos)
			continue
		}
		if n := d.attempts[pos].Add(1); int(n) > maxAttemptsOf(b, len(b.Addrs)) {
			d.fail(pos, fmt.Errorf("audit: epoch %d exhausted %d dispatch attempts: %w",
				d.jobs[pos].Index, maxAttemptsOf(b, len(b.Addrs)), ErrRetriesExhausted))
			continue
		}
		// Prefer a delta-encoded frame when the worker's tracked state
		// allows it; otherwise ship (and record) the cached full frame.
		kind := wire.DistFrameJob
		var body []byte
		if b.deltaSrc != nil {
			if df, derr := tracker.deltaFrame(d.jobs[pos]); derr == nil {
				kind, body = wire.DistFrameDeltaJob, df
			}
		}
		if body == nil {
			body = frame(pos)
		}
		// A write deadline keeps a wedged worker from pinning this epoch
		// forever: job frames carry whole materialized states, so a stalled
		// receiver can block a large write that the read deadline below
		// would never reach.
		conn.SetWriteDeadline(time.Now().Add(jobTimeout))
		if err := writeDistFrame(conn, kind, body); err != nil {
			d.requeueAfter(pos, b.backoffDelay(pos, int(d.attempts[pos].Load())))
			if !connect() {
				return
			}
			continue
		}
		d.shipped[pos].Add(int64(len(body)))
		if kind == wire.DistFrameDeltaJob {
			d.shipDelta[pos].Add(int64(len(body)))
			d.deltaSent[pos].Add(1)
		} else {
			d.shipFull[pos].Add(int64(len(body)))
			tracker.noteFull(d.jobs[pos])
		}
		// Await this job's verdict, tolerating late verdicts for earlier
		// jobs this connection timed out on.
		for {
			conn.SetReadDeadline(time.Now().Add(jobTimeout))
			kind, body, err := readDistFrame(conn)
			if err != nil {
				var ne net.Error
				if errors.As(err, &ne) && ne.Timeout() {
					// Straggler: hand the epoch to another worker and move
					// on; if the verdict still lands here later, the next
					// await drains and delivers it.
					d.requeue(pos)
					consecutiveTimeouts++
					if consecutiveTimeouts >= maxConsecutiveTimeouts {
						if !connect() {
							return
						}
						consecutiveTimeouts = 0
					}
					break
				}
				d.requeueAfter(pos, b.backoffDelay(pos, int(d.attempts[pos].Load())))
				if !connect() {
					return
				}
				break
			}
			if kind == wire.DistFrameNeedState {
				// The worker evicted the delta base: fall back to the full
				// frame for this epoch on the same connection and keep
				// awaiting the verdict.
				if idx, perr := wire.ParseNeedState(body); perr == nil && int(idx) == d.jobs[pos].Index {
					tracker.invalidate()
					full := frame(pos)
					conn.SetWriteDeadline(time.Now().Add(jobTimeout))
					if werr := writeDistFrame(conn, wire.DistFrameJob, full); werr != nil {
						d.requeueAfter(pos, b.backoffDelay(pos, int(d.attempts[pos].Load())))
						if !connect() {
							return
						}
						break
					}
					d.shipped[pos].Add(int64(len(full)))
					d.shipFull[pos].Add(int64(len(full)))
					d.deltaFall[pos].Add(1)
					tracker.noteFull(d.jobs[pos])
					continue
				}
				// A need-state for some other epoch is a protocol violation
				// on this synchronous connection; fall through to requeue.
			}
			if kind != wire.DistFrameVerdict {
				// Worker-side protocol error, drain refusal, or garbage:
				// this connection is not going to produce the verdict.
				d.requeueAfter(pos, b.backoffDelay(pos, int(d.attempts[pos].Load())))
				if !connect() {
					return
				}
				break
			}
			consecutiveTimeouts = 0
			got := deliver(body)
			if got < 0 {
				d.requeueAfter(pos, b.backoffDelay(pos, int(d.attempts[pos].Load())))
				if !connect() {
					return
				}
				break
			}
			if got == pos {
				break
			}
			// A late verdict for an earlier job; keep reading for ours.
		}
	}
}

// maxAttemptsOf resolves the per-epoch attempt bound.
func maxAttemptsOf(b *TCPBackend, workers int) int {
	if b.MaxAttempts > 0 {
		return b.MaxAttempts
	}
	return workers + 2
}
