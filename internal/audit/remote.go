package audit

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/wire"
)

// This file is the real-network epoch backend: a length-prefixed TCP
// protocol between an audit coordinator (TCPBackend) and scenario-agnostic
// replay workers (ServeEpochWorker / `avm-audit -serve`). One connection
// carries one session: the coordinator opens with the reference
// configuration (image, node, RNG seed), then streams epoch jobs and reads
// verdicts, tagged by epoch index so late verdicts from a straggler never
// desynchronize the stream.
//
// Failure handling is per epoch: a connection error or crash mid-epoch
// requeues the job for another worker; a verdict slower than JobTimeout is
// re-dispatched to a different worker while the original stays outstanding
// (first verdict wins, duplicates are deduplicated); and a worker that
// times out repeatedly is abandoned. The audit errors out only when an
// epoch exhausts MaxAttempts or every worker is gone.

// frame i/o -----------------------------------------------------------------

// writeDistFrame writes one length-prefixed protocol frame.
func writeDistFrame(w io.Writer, kind wire.DistFrameKind, body []byte) error {
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(1+len(body)))
	hdr[4] = byte(kind)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

// readDistFrame reads one length-prefixed protocol frame.
func readDistFrame(r io.Reader) (wire.DistFrameKind, []byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 {
		return 0, nil, errors.New("audit: empty protocol frame")
	}
	if n > wire.MaxDistFrame {
		return 0, nil, wire.ErrFrameTooLarge
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, nil, err
	}
	return wire.DistFrameKind(body[0]), body[1:], nil
}

// worker side ---------------------------------------------------------------

// ServeEpochWorker accepts coordinator connections on l and replays epoch
// jobs until the listener closes. The worker is scenario-agnostic and
// holds no trust: everything a replay needs arrives in the session and job
// frames, and the coordinator verifies what comes back (root checks before
// dispatch, spot re-replays after). Each connection is served on its own
// goroutine; jobs within a connection replay one at a time, so a
// deployment's parallelism is its worker count.
func ServeEpochWorker(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		go func() {
			defer conn.Close()
			if err := serveWorkerConn(conn); err != nil && !errors.Is(err, io.EOF) {
				// Report protocol errors while the connection still works; a
				// broken pipe just ends the session — the coordinator's
				// retry owns recovery.
				_ = writeDistFrame(conn, wire.DistFrameError, []byte(err.Error()))
			}
		}()
	}
}

// serveWorkerConn runs one coordinator session: session frame, then jobs.
func serveWorkerConn(conn net.Conn) error {
	kind, body, err := readDistFrame(conn)
	if err != nil {
		return err
	}
	if kind != wire.DistFrameSession {
		return fmt.Errorf("audit: worker expected session frame, got kind %d", kind)
	}
	ws, err := wire.ParseAuditSession(body)
	if err != nil {
		return err
	}
	sess, err := sessionFromWire(ws)
	if err != nil {
		return err
	}
	if err := writeDistFrame(conn, wire.DistFrameSessionOK, nil); err != nil {
		return err
	}
	for {
		kind, body, err := readDistFrame(conn)
		if err != nil {
			return err
		}
		if kind != wire.DistFrameJob {
			return fmt.Errorf("audit: worker expected job frame, got kind %d", kind)
		}
		wj, err := wire.ParseAuditJob(body)
		if err != nil {
			return err
		}
		job := jobFromWire(wj)
		r := runEpochJob(sess, job, nil)
		if err := writeDistFrame(conn, wire.DistFrameVerdict, verdictToWire(job.Index, r).Marshal()); err != nil {
			return err
		}
	}
}

// coordinator side ----------------------------------------------------------

// TCPBackend replays epochs on remote workers reached over TCP.
type TCPBackend struct {
	// Addrs are the worker addresses (host:port), one connection each.
	Addrs []string
	// DialTimeout bounds connection setup. <= 0 selects 5s.
	DialTimeout time.Duration
	// JobTimeout is the straggler deadline: an epoch with no verdict after
	// this long is re-dispatched to another worker (the original dispatch
	// stays outstanding; the first verdict wins). <= 0 selects 2m.
	JobTimeout time.Duration
	// MaxAttempts bounds dispatch attempts per epoch across workers.
	// <= 0 selects len(Addrs)+2.
	MaxAttempts int
	// ConsecutiveTimeouts is how many straggler deadlines in a row a
	// connection survives before it is dropped and redialed. <= 0 selects 2.
	ConsecutiveTimeouts int
}

// Remote implements EpochBackend: jobs ship whole.
func (b *TCPBackend) Remote() bool { return true }

// tcpDispatch is the shared state of one Run.
type tcpDispatch struct {
	jobs []*EpochJob

	pending   chan int // positions awaiting dispatch; never closed (exit via done)
	settled   []atomic.Bool
	attempts  []atomic.Int32
	shipped   []atomic.Int64 // job-frame bytes written per position, all attempts
	remaining atomic.Int64
	done      chan struct{}

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	failed map[int]error // position → last error, for epochs out of attempts
	closed bool
}

// settle marks a position finished (verdict, skip, or failure); the run
// completes when every position settles. Reports whether this call won.
func (d *tcpDispatch) settle(pos int) bool {
	if !d.settled[pos].CompareAndSwap(false, true) {
		return false
	}
	if d.remaining.Add(-1) == 0 {
		close(d.done)
	}
	return true
}

// fail records a position that exhausted its attempts.
func (d *tcpDispatch) fail(pos int, err error) {
	d.mu.Lock()
	d.failed[pos] = err
	d.mu.Unlock()
	d.settle(pos)
}

// requeue returns a position to the dispatch queue. The queue is sized for
// every position times every attempt plus slack, so the send never blocks.
func (d *tcpDispatch) requeue(pos int) {
	if !d.settled[pos].Load() {
		select {
		case d.pending <- pos:
		default:
			// Queue saturated by duplicate requeues; the position is
			// already waiting, dropping this copy loses nothing.
		}
	}
}

// register tracks a live connection so shutdown can unblock its reads;
// returns false when the run is already over.
func (d *tcpDispatch) register(c net.Conn) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return false
	}
	d.conns[c] = struct{}{}
	return true
}

func (d *tcpDispatch) unregister(c net.Conn) {
	d.mu.Lock()
	delete(d.conns, c)
	d.mu.Unlock()
}

// shutdown closes every live connection, unblocking worker reads.
func (d *tcpDispatch) shutdown() {
	d.mu.Lock()
	d.closed = true
	for c := range d.conns {
		c.Close()
	}
	d.conns = map[net.Conn]struct{}{}
	d.mu.Unlock()
}

func (d *tcpDispatch) finished() bool {
	select {
	case <-d.done:
		return true
	default:
		return false
	}
}

// Run implements EpochBackend over the worker fleet.
func (b *TCPBackend) Run(sess Session, jobs []*EpochJob, skip func(int) bool, emit func(EpochVerdict)) error {
	if len(b.Addrs) == 0 {
		return errors.New("audit: TCP backend has no worker addresses")
	}
	maxAttempts := b.MaxAttempts
	if maxAttempts <= 0 {
		maxAttempts = len(b.Addrs) + 2
	}
	d := &tcpDispatch{
		jobs:     jobs,
		pending:  make(chan int, len(jobs)*(maxAttempts+2)+len(b.Addrs)),
		settled:  make([]atomic.Bool, len(jobs)),
		attempts: make([]atomic.Int32, len(jobs)),
		shipped:  make([]atomic.Int64, len(jobs)),
		done:     make(chan struct{}),
		conns:    make(map[net.Conn]struct{}),
		failed:   make(map[int]error),
	}
	d.remaining.Store(int64(len(jobs)))
	for pos := range jobs {
		d.pending <- pos
	}

	// Jobs are encoded lazily and cached, so skipped epochs cost nothing
	// and a re-dispatch reuses the first attempt's bytes.
	encoded := make([][]byte, len(jobs))
	var encMu sync.Mutex
	frame := func(pos int) []byte {
		encMu.Lock()
		defer encMu.Unlock()
		if encoded[pos] == nil {
			encoded[pos] = jobToWire(jobs[pos]).Marshal()
		}
		return encoded[pos]
	}

	sessionFrame := sessionToWire(sess).Marshal()
	var wg sync.WaitGroup
	var live atomic.Int64
	allDead := make(chan struct{})
	live.Store(int64(len(b.Addrs)))
	for _, addr := range b.Addrs {
		wg.Add(1)
		go func(addr string) {
			defer wg.Done()
			b.runWorker(addr, sessionFrame, d, frame, skip, emit)
			if live.Add(-1) == 0 {
				close(allDead)
			}
		}(addr)
	}

	var runErr error
	select {
	case <-d.done:
	case <-allDead:
		if d.remaining.Load() > 0 {
			runErr = fmt.Errorf("audit: all %d TCP workers unreachable with %d epochs unresolved",
				len(b.Addrs), d.remaining.Load())
		}
	}
	d.shutdown()
	wg.Wait()

	// Report per-epoch failures as errored verdicts; the router decides
	// whether the final verdict needed them.
	d.mu.Lock()
	for pos, err := range d.failed {
		emit(EpochVerdict{Index: jobs[pos].Index, Err: err,
			Attempts: int(d.attempts[pos].Load()), Worker: "(exhausted)"})
	}
	d.mu.Unlock()
	return runErr
}

// runWorker drives one worker connection until the run completes or the
// worker is abandoned. Returning requeues nothing by itself — any position
// this worker held was requeued on its error path — so the job flows to
// the surviving workers.
func (b *TCPBackend) runWorker(addr string, sessionFrame []byte, d *tcpDispatch, frame func(int) []byte, skip func(int) bool, emit func(EpochVerdict)) {
	dialTimeout := b.DialTimeout
	if dialTimeout <= 0 {
		dialTimeout = 5 * time.Second
	}
	jobTimeout := b.JobTimeout
	if jobTimeout <= 0 {
		jobTimeout = 2 * time.Minute
	}
	maxConsecutiveTimeouts := b.ConsecutiveTimeouts
	if maxConsecutiveTimeouts <= 0 {
		maxConsecutiveTimeouts = 2
	}

	posByIndex := make(map[int]int, len(d.jobs))
	for pos, j := range d.jobs {
		posByIndex[j.Index] = pos
	}

	var conn net.Conn
	closeConn := func() {
		if conn != nil {
			d.unregister(conn)
			conn.Close()
			conn = nil
		}
	}
	defer closeConn()
	connect := func() bool {
		closeConn()
		if d.finished() {
			return false
		}
		c, err := net.DialTimeout("tcp", addr, dialTimeout)
		if err != nil {
			return false
		}
		// Register before the first write: once the conn is registered,
		// shutdown() can always unblock this goroutine's I/O, so a worker
		// that stalls mid-handshake cannot outlive the run.
		if !d.register(c) {
			c.Close()
			return false
		}
		c.SetWriteDeadline(time.Now().Add(dialTimeout))
		if err := writeDistFrame(c, wire.DistFrameSession, sessionFrame); err != nil {
			d.unregister(c)
			c.Close()
			return false
		}
		c.SetReadDeadline(time.Now().Add(dialTimeout))
		kind, _, err := readDistFrame(c)
		if err != nil || kind != wire.DistFrameSessionOK {
			d.unregister(c)
			c.Close()
			return false
		}
		conn = c
		return true
	}
	if !connect() {
		return
	}

	// deliver hands a verdict frame to the router, deduplicating via the
	// settled flags so a straggler's late verdict and its re-dispatch twin
	// emit exactly once. Returns the settled position, or -1 on a frame
	// this run cannot place. Shipped bytes are read from the per-position
	// tally, so a late verdict drained while awaiting another job is
	// charged its own epoch's frames (every attempt's), not the current
	// job's.
	deliver := func(body []byte) int {
		v, err := wire.ParseAuditVerdict(body)
		if err != nil {
			return -1
		}
		pos, ok := posByIndex[int(v.Index)]
		if !ok {
			return -1
		}
		if d.settle(pos) {
			r := verdictFromWire(v)
			emit(EpochVerdict{
				Index: int(v.Index), Stats: r.stats, Fault: r.fault,
				Worker: addr, Attempts: int(d.attempts[pos].Load()),
				WireBytes: int(d.shipped[pos].Load()) + len(body),
			})
		}
		return pos
	}

	consecutiveTimeouts := 0
	for {
		var pos int
		var ok bool
		select {
		case <-d.done:
			return
		case pos, ok = <-d.pending:
			if !ok {
				return
			}
		}
		if d.settled[pos].Load() {
			continue
		}
		if skip(d.jobs[pos].Index) {
			d.settle(pos)
			continue
		}
		if n := d.attempts[pos].Add(1); int(n) > maxAttemptsOf(b, len(b.Addrs)) {
			d.fail(pos, fmt.Errorf("audit: epoch %d exhausted %d dispatch attempts",
				d.jobs[pos].Index, maxAttemptsOf(b, len(b.Addrs))))
			continue
		}
		job := frame(pos)
		// A write deadline keeps a wedged worker from pinning this epoch
		// forever: job frames carry whole materialized states, so a stalled
		// receiver can block a large write that the read deadline below
		// would never reach.
		conn.SetWriteDeadline(time.Now().Add(jobTimeout))
		if err := writeDistFrame(conn, wire.DistFrameJob, job); err != nil {
			d.requeue(pos)
			if !connect() {
				return
			}
			continue
		}
		d.shipped[pos].Add(int64(len(job)))
		// Await this job's verdict, tolerating late verdicts for earlier
		// jobs this connection timed out on.
		for {
			conn.SetReadDeadline(time.Now().Add(jobTimeout))
			kind, body, err := readDistFrame(conn)
			if err != nil {
				var ne net.Error
				if errors.As(err, &ne) && ne.Timeout() {
					// Straggler: hand the epoch to another worker and move
					// on; if the verdict still lands here later, the next
					// await drains and delivers it.
					d.requeue(pos)
					consecutiveTimeouts++
					if consecutiveTimeouts >= maxConsecutiveTimeouts {
						if !connect() {
							return
						}
						consecutiveTimeouts = 0
					}
					break
				}
				d.requeue(pos)
				if !connect() {
					return
				}
				break
			}
			if kind != wire.DistFrameVerdict {
				// Worker-side protocol error (DistFrameError or garbage):
				// this connection is not going to produce the verdict.
				d.requeue(pos)
				if !connect() {
					return
				}
				break
			}
			consecutiveTimeouts = 0
			got := deliver(body)
			if got < 0 {
				d.requeue(pos)
				if !connect() {
					return
				}
				break
			}
			if got == pos {
				break
			}
			// A late verdict for an earlier job; keep reading for ours.
		}
	}
}

// maxAttemptsOf resolves the per-epoch attempt bound.
func maxAttemptsOf(b *TCPBackend, workers int) int {
	if b.MaxAttempts > 0 {
		return b.MaxAttempts
	}
	return workers + 2
}
