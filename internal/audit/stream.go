package audit

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/logcomp"
	"repro/internal/sig"
	"repro/internal/snapshot"
	"repro/internal/tevlog"
	"repro/internal/wire"
)

// This file implements the streaming audit pipeline: decode ∥ chain-verify
// ∥ replay. The materializing auditor (AuditFull/AuditFullParallel over a
// decompressed slice) pays the whole decode as dead time before the first
// instruction replays, and holds every entry of the log in memory at once.
// AuditStream instead wires logcomp.EntryReader → tevlog.ChainVerifier +
// SyntacticChecker → epoch replay workers as bounded-channel stages: epochs
// are emitted at snapshot entries and handed to workers while later
// segments of the container are still decoding, and the number of decoded
// entries resident across the whole pipeline is capped by a configurable
// window rather than the log length.
//
// The verdict is identical to the materializing auditor's. Stage faults
// are merged with the serial pipeline's precedence — decode, then chain
// (over the whole log), then syntactic, then the earliest faulting epoch's
// replay fault — and each stage runs to completion before a lower-
// precedence fault is allowed to win, exactly as if the stages had run one
// after another over a materialized slice.

// DefaultStreamWindow bounds resident decoded entries when StreamOptions
// leaves Window zero.
const DefaultStreamWindow = 4096

// streamBatch is how many entries a replay worker feeds per Run call when
// its epoch channel has a backlog.
const streamBatch = 64

// StreamOptions configures the streaming full audit. All knobs live in the
// embedded EngineOptions (Workers, Window and Materialize are the ones
// this engine reads).
type StreamOptions struct {
	EngineOptions
}

// StreamStats reports how the pipeline ran.
type StreamStats struct {
	// Entries is the number of entries decoded from the container.
	Entries int
	// Epochs is the number of replay epochs the log was partitioned into.
	Epochs int
	// Window is the resident-entry cap the run used.
	Window int
	// PeakResidentEntries is the high-water mark of decoded entries alive
	// across the pipeline; always <= Window. Entries handed off to a
	// budget-stalled replica (a pathological log whose async-free stretch
	// exceeds the replay budget) leave the window early and are accounted
	// to the replica instead, bounded by one epoch.
	PeakResidentEntries int
}

// entryWindow is a counting semaphore over decoded entries with a
// high-water mark, the mechanism that bounds pipeline memory.
type entryWindow struct {
	mu    sync.Mutex
	cond  *sync.Cond
	used  int
	limit int
	peak  int
}

func newEntryWindow(limit int) *entryWindow {
	w := &entryWindow{limit: limit}
	w.cond = sync.NewCond(&w.mu)
	return w
}

// acquire blocks until a slot is free.
func (w *entryWindow) acquire() {
	w.mu.Lock()
	for w.used >= w.limit {
		w.cond.Wait()
	}
	w.used++
	if w.used > w.peak {
		w.peak = w.used
	}
	w.mu.Unlock()
}

func (w *entryWindow) release(n int) {
	if n == 0 {
		return
	}
	w.mu.Lock()
	w.used -= n
	w.mu.Unlock()
	w.cond.Broadcast()
}

// streamEpoch is one independently replayable log slice in flight.
type streamEpoch struct {
	index int
	boot  bool
	// startSnap/startRoot/startSeq authenticate the starting state of a
	// non-boot epoch, as in the epoch-parallel engine.
	startSnap uint32
	startRoot [32]byte
	startSeq  uint64
	ch        chan tevlog.Entry
}

// streamVerdict accumulates per-stage outcomes for the merge step.
type streamVerdict struct {
	decodeErr error
	chainErr  error
	synStats  SyntacticStats
	synFault  *FaultReport

	mu      sync.Mutex
	results map[int]epochResult
	cutoff  atomic.Int64
}

// record stores one epoch's outcome, lowering the cutoff on fault.
func (v *streamVerdict) record(index int, r epochResult) {
	v.mu.Lock()
	v.results[index] = r
	v.mu.Unlock()
	if r.fault != nil {
		for {
			cur := v.cutoff.Load()
			if int64(index) >= cur || v.cutoff.CompareAndSwap(cur, int64(index)) {
				break
			}
		}
	}
}

// auditStream checks an entire execution from boot, like auditSerial, but
// straight from the compressed log container: entries are decoded, chain-
// verified and replayed concurrently in bounded memory. The verdict —
// pass/fail, fault, and stats — is identical to AuditFull's (and therefore
// AuditFullParallel's) over the decompressed slice; a container that fails
// to decode reports a CheckLog fault carrying the decoder's error. The
// returned StreamStats describe the pipeline run itself.
func (a *Auditor) auditStream(node sig.NodeID, nodeIdx uint32, compressed []byte, auths []tevlog.Authenticator, opts StreamOptions) (*Result, StreamStats) {
	return a.auditStreamFrom(node, nodeIdx, compressed, nil, auths, opts)
}

// auditStreamFrom is auditStream with an optional EntrySource feeding the
// decode stage instead of an in-memory container — the archive-backed
// path, where epoch segments are read, hash-verified and decoded from
// disk one at a time. Source errors land in the same decode-fault slot a
// corrupt container's do, so the merged verdict treats a tampered archive
// exactly like a tampered log.
func (a *Auditor) auditStreamFrom(node sig.NodeID, nodeIdx uint32, compressed []byte, source logcomp.EntrySource, auths []tevlog.Authenticator, opts StreamOptions) (*Result, StreamStats) {
	a = a.withEngineOptions(opts.EngineOptions)
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	window := opts.Window
	if window <= 0 {
		window = DefaultStreamWindow
	}
	win := newEntryWindow(window)
	chanCap := window / 4
	if chanCap < 1 {
		chanCap = 1
	}
	if chanCap > 128 {
		chanCap = 128
	}

	verdict := &streamVerdict{results: make(map[int]epochResult)}
	verdict.cutoff.Store(int64(1) << 62)

	// Stage 1: decode. Entries acquire a window slot before they exist.
	decoded := make(chan tevlog.Entry, chanCap)
	var entryCount atomic.Int64
	go func() {
		defer close(decoded)
		r := source
		if r == nil {
			er, err := logcomp.NewEntryReader(compressed)
			if err != nil {
				verdict.decodeErr = err
				return
			}
			r = er
		}
		defer r.Close()
		for {
			win.acquire()
			e, err := r.Next()
			if err == io.EOF {
				win.release(1)
				return
			}
			if err != nil {
				win.release(1)
				verdict.decodeErr = err
				return
			}
			entryCount.Add(1)
			decoded <- e
		}
	}()

	// Stage 3: replay workers, pulling epochs as the router emits them.
	epochQueue := make(chan *streamEpoch, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ep := range epochQueue {
				if int64(ep.index) > verdict.cutoff.Load() {
					// A lower epoch already faulted; this epoch cannot
					// affect the verdict (same cutoff rule as runPool).
					drainEpoch(ep, win)
					continue
				}
				verdict.record(ep.index, a.runStreamEpoch(node, ep, opts, win))
			}
		}()
	}

	// Stage 2: chain verification, syntactic checking and epoch routing.
	epochs := a.routeStream(node, nodeIdx, decoded, auths, opts, win, epochQueue, verdict)
	close(epochQueue)
	wg.Wait()

	stream := StreamStats{
		Entries: int(entryCount.Load()),
		Epochs:  epochs,
		Window:  window,
	}
	win.mu.Lock()
	stream.PeakResidentEntries = win.peak
	win.mu.Unlock()

	return a.mergeStream(node, verdict, epochs), stream
}

// routeStream consumes decoded entries, feeds the chain verifier and the
// syntactic checker, and slices the stream into epochs at snapshot entries
// (mirroring the epoch-parallel engine's partition rules). It returns the
// number of epochs emitted. A chain fault ends chain verification,
// syntactic checking and routing — in the batch pipeline neither the
// syntactic check nor replay would have run at all — but the stream is
// still drained to the end, because a decode error anywhere outranks the
// chain fault (the batch pipeline fails in DecompressEntries before
// verifying anything).
func (a *Auditor) routeStream(node sig.NodeID, nodeIdx uint32, decoded <-chan tevlog.Entry, auths []tevlog.Authenticator, opts StreamOptions, win *entryWindow, epochQueue chan<- *streamEpoch, verdict *streamVerdict) int {
	var chain *tevlog.ChainVerifier
	if a.TamperEvident {
		chain = tevlog.NewChainVerifier(tevlog.Hash{}, auths, a.Keys)
	}
	syn := NewSyntacticChecker(node, SyntacticOptions{
		NodeIdx: nodeIdx, Keys: a.Keys,
		VerifySignatures: a.TamperEvident && a.VerifySignatures,
		StrictAcks:       a.StrictAcks,
	})

	var current *streamEpoch
	// next describes the epoch the next routed entry belongs to; epochs are
	// created lazily so a log ending exactly at a snapshot emits no empty
	// trailing epoch (the parallel engine's partition does the same).
	next := streamEpoch{boot: true}
	epochs := 0

	emit := func(e tevlog.Entry) {
		if current == nil {
			ep := next
			ep.index = epochs
			ep.ch = make(chan tevlog.Entry, streamBatch)
			epochs++
			current = &ep
			epochQueue <- current
		}
		current.ch <- e
	}

	for e := range decoded {
		if chain != nil && verdict.chainErr == nil {
			if err := chain.Add(&e); err != nil {
				verdict.chainErr = err
			} else {
				e.Hash = chain.Last()
			}
		}
		if verdict.chainErr != nil {
			// The chain fault owns the verdict unless decoding fails later;
			// syntactic checking and replay are moot. Consume and drop.
			if current != nil {
				close(current.ch)
				current = nil
			}
			win.release(1)
			continue
		}
		syn.Add(&e)
		emit(e)
		if e.Type == tevlog.TypeSnapshot && opts.Materialize != nil {
			if ev, err := wire.ParseEvent(e.Content); err == nil {
				// Epoch boundary: the snapshot entry closes the epoch that
				// derives its root; the next epoch starts from its state.
				close(current.ch)
				current = nil
				next = streamEpoch{startSnap: ev.SnapIdx, startRoot: ev.Root, startSeq: e.Seq}
			}
			// An unparseable snapshot entry splits nothing: replay will
			// fault on it inside the current epoch, matching the parallel
			// engine's fallback for malformed snapshot scans.
		}
	}

	if verdict.decodeErr == nil && verdict.chainErr == nil && chain != nil {
		verdict.chainErr = chain.Finish()
	}
	verdict.synStats, verdict.synFault = syn.Finish()

	if epochs == 0 && verdict.decodeErr == nil && verdict.chainErr == nil {
		// Empty log: still run the boot replay, as the batch auditor does.
		emitEmpty := next
		emitEmpty.index = 0
		emitEmpty.ch = make(chan tevlog.Entry)
		epochs++
		current = &emitEmpty
		epochQueue <- current
	}
	if current != nil {
		close(current.ch)
	}
	return epochs
}

// drainEpoch discards an epoch's entries, returning their window slots.
func drainEpoch(ep *streamEpoch, win *entryWindow) {
	for range ep.ch {
		win.release(1)
	}
}

// runStreamEpoch is runEpoch's streaming twin: it verifies and restores the
// epoch's starting state, then feeds the replica from the epoch channel in
// batches, returning window slots as entries are consumed. Faults and stats
// are identical to a one-shot replay of the same slice — the replay stops
// at deterministic points regardless of batching.
func (a *Auditor) runStreamEpoch(node sig.NodeID, ep *streamEpoch, opts StreamOptions, win *entryWindow) epochResult {
	var rp *Replay
	var err error
	if ep.boot {
		rp, err = NewReplayFromImage(node, a.RefImage, a.RNGSeed)
		if err != nil {
			drainEpoch(ep, win)
			return epochResult{fault: &FaultReport{Node: node, Check: CheckSemantic, Detail: err.Error()}}
		}
	} else {
		restored, merr := opts.Materialize(ep.startSnap)
		if merr != nil {
			drainEpoch(ep, win)
			return epochResult{fault: &FaultReport{
				Node: node, Check: CheckSnapshot, EntrySeq: ep.startSeq,
				Detail: fmt.Sprintf("materializing snapshot %d: %v", ep.startSnap, merr),
			}}
		}
		// The machine's state is untrusted: verify it against the root the
		// log committed at this epoch's starting snapshot before replaying.
		// The verification tree becomes the replay's live tree, so snapshot
		// entries inside the epoch verify incrementally.
		lh := &snapshot.LiveStateHasher{}
		if verr := lh.SeedVerify(restored, ep.startRoot); verr != nil {
			drainEpoch(ep, win)
			return epochResult{fault: &FaultReport{
				Node: node, Check: CheckSnapshot, EntrySeq: ep.startSeq, Detail: verr.Error(),
			}}
		}
		rp, err = NewReplayFromSnapshot(node, restored, a.RNGSeed)
		if err != nil {
			drainEpoch(ep, win)
			return epochResult{fault: &FaultReport{Node: node, Check: CheckSemantic, Detail: err.Error()}}
		}
		rp.AdoptStateHasher(lh)
	}
	rp.Machine().DisablePredecode = a.DisablePredecode
	rp.Machine().DisableFusion = a.DisableFusion

	batch := make([]tevlog.Entry, 0, streamBatch)
	fed, released := 0, 0
	flush := func() {
		if len(batch) == 0 {
			return
		}
		fed += len(batch)
		rp.Feed(batch)
		batch = batch[:0]
		rp.Run()
		// A slot frees when its entry is consumed — or handed off to the
		// replica wholesale when the replay is budget-stalled (it paused
		// with entries pending, waiting for a later landmark or Close to
		// raise the budget). Without the handoff, a pathological log with a
		// >budget async-free stretch would pin the window and wedge the
		// pipeline; with it, such entries are accounted to the replica (at
		// worst one epoch's worth) instead of the window.
		target := rp.Consumed()
		if rp.Fault() == nil && rp.Pending() > 0 {
			target = fed
		}
		if target > released {
			win.release(target - released)
			released = target
		}
	}
	for e := range ep.ch {
		if rp.Fault() != nil {
			win.release(1)
			continue
		}
		batch = append(batch, e)
		// Opportunistically batch whatever is already queued, then run. The
		// fill never blocks: a starved channel degrades to entry-at-a-time
		// feeding, so windows smaller than the batch stay deadlock-free.
	fill:
		for len(batch) < streamBatch {
			select {
			case e2, ok := <-ep.ch:
				if !ok {
					break fill
				}
				if rp.Fault() != nil {
					win.release(1)
					continue
				}
				batch = append(batch, e2)
			default:
				break fill
			}
		}
		flush()
	}
	if rp.Fault() == nil {
		flush()
		rp.Close()
		rp.Run()
	}
	win.release(len(batch)) // post-fault leftovers never fed
	if fed > released {
		win.release(fed - released)
	}
	return epochResult{stats: rp.Stats, fault: rp.Fault()}
}

// mergeStream folds the stage outcomes into the batch pipeline's verdict,
// applying its precedence: decode, chain, syntactic, then the earliest
// faulting epoch's replay fault.
func (a *Auditor) mergeStream(node sig.NodeID, verdict *streamVerdict, epochs int) *Result {
	res := &Result{Node: node}
	if verdict.decodeErr != nil {
		res.Fault = &FaultReport{Node: node, Check: CheckLog,
			Detail: "decoding log container: " + verdict.decodeErr.Error()}
		return res
	}
	if a.TamperEvident && verdict.chainErr != nil {
		res.Fault = &FaultReport{Node: node, Check: CheckLog, Detail: verdict.chainErr.Error()}
		return res
	}
	res.Syntactic = verdict.synStats
	if verdict.synFault != nil {
		res.Fault = verdict.synFault
		return res
	}
	var merged ReplayStats
	cutoff := int(verdict.cutoff.Load())
	if cutoff < epochs {
		// Epochs below the cutoff all ran and passed; this fault is the one
		// the serial replay reports, and the summed stats cover exactly the
		// work the serial replay performed before stopping.
		for i := 0; i <= cutoff; i++ {
			addStats(&merged, verdict.results[i].stats)
		}
		res.Replay = merged
		res.Fault = verdict.results[cutoff].fault
		return res
	}
	for i := 0; i < epochs; i++ {
		addStats(&merged, verdict.results[i].stats)
	}
	res.Replay = merged
	res.Passed = true
	return res
}
