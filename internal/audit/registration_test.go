package audit_test

import (
	"net"
	"testing"
	"time"

	"repro/internal/audit"
	"repro/internal/wire"
)

// Worker-initiated registration suite: a register-joined worker must be
// indistinguishable from an AddWorker-configured one (verdict equivalence
// included), re-registration must dedupe into a reattach, wrong protocol
// versions must be rejected with a reason, and a worker must rejoin a
// restarted coordinator on the same registration address by itself.

// startRegistration wires a coordinator's registration listener up and
// returns its address.
func startRegistration(t *testing.T, coord *audit.Coordinator) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = coord.ServeRegistrations(l) }()
	return l.Addr().String()
}

func waitForWorkers(t *testing.T, coord *audit.Coordinator, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for coord.Stats().WorkersRegistered != n {
		if time.Now().After(deadline) {
			t.Fatalf("fleet never reached %d registered workers (stats %+v)", n, coord.Stats())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestWorkerRegistrationEquivalence: a worker that joins via -register
// serves an audit exactly like one configured via AddWorker — byte-
// identical verdicts against the serial engine, no local fallback.
func TestWorkerRegistrationEquivalence(t *testing.T) {
	s := coordScenario(t, "aimbot")
	serial, err := s.AuditNode("player1")
	if err != nil {
		t.Fatal(err)
	}
	fleet, err := audit.StartChaosFleet([]*audit.ChaosPlan{nil})
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()

	coord := testCoordinator(audit.CoordinatorConfig{DisableLocalFallback: true})
	defer coord.Close()
	regAddr := startRegistration(t, coord)

	stop := make(chan struct{})
	defer close(stop)
	go audit.RegisterWorker(regAddr, fleet.Addrs[0], stop, nil)
	waitForWorkers(t, coord, 1)

	res, _, err := s.AuditNodeDist("player1", audit.DistOptions{
		Backend:       coord.Backend(),
		EngineOptions: audit.EngineOptions{SpotRecheckFraction: 0.25},
	})
	if err != nil {
		t.Fatalf("audit through register-joined worker: %v", err)
	}
	compareVerdicts(t, "register-joined", serial, res)
	st := coord.Stats()
	if st.RegistrationsAccepted == 0 {
		t.Errorf("no registrations counted as accepted (stats %+v)", st)
	}
	if st.LocalFallbackEpochs != 0 {
		t.Errorf("register-joined fleet leaked %d epochs to local fallback", st.LocalFallbackEpochs)
	}
}

// TestWorkerRegistrationDedupe: a worker registering twice (its
// registration connection dropped and it redialed) reattaches to its
// existing fleet entry instead of duplicating it.
func TestWorkerRegistrationDedupe(t *testing.T) {
	fleet, err := audit.StartChaosFleet([]*audit.ChaosPlan{nil})
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()
	coord := testCoordinator(audit.CoordinatorConfig{DisableLocalFallback: true})
	defer coord.Close()
	regAddr := startRegistration(t, coord)

	for i := 0; i < 2; i++ {
		stop := make(chan struct{})
		go audit.RegisterWorker(regAddr, fleet.Addrs[0], stop, nil)
		deadline := time.Now().Add(10 * time.Second)
		for coord.Stats().RegistrationsAccepted < int64(i+1) {
			if time.Now().After(deadline) {
				t.Fatalf("registration %d never accepted (stats %+v)", i+1, coord.Stats())
			}
			time.Sleep(2 * time.Millisecond)
		}
		close(stop) // drop the registration connection; the next loop re-registers
	}
	st := coord.Stats()
	if st.WorkersRegistered != 1 {
		t.Errorf("re-registration duplicated the worker: %d registered, want 1", st.WorkersRegistered)
	}
	if st.RegistrationsAccepted != 2 {
		t.Errorf("registrations accepted = %d, want 2", st.RegistrationsAccepted)
	}
}

// TestRegistrationVersionRejected: a Hello speaking a future protocol
// version gets a reasoned rejection, not a guess.
func TestRegistrationVersionRejected(t *testing.T) {
	coord := testCoordinator(audit.CoordinatorConfig{})
	defer coord.Close()
	regAddr := startRegistration(t, coord)

	conn, err := net.Dial("tcp", regAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	hello := wire.RegistrationHello{Version: wire.RegistrationVersion + 7, Addr: "127.0.0.1:9", Capabilities: wire.CapDeltaJobs}
	writeTestFrame(conn, byte(wire.DistFrameHello), hello.Marshal())
	body, err := readTestFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if body[0] != byte(wire.DistFrameWelcome) {
		t.Fatalf("reply frame kind = %d, want Welcome (%d)", body[0], wire.DistFrameWelcome)
	}
	welcome, err := wire.ParseRegistrationWelcome(body[1:])
	if err != nil {
		t.Fatal(err)
	}
	if welcome.Accepted {
		t.Fatal("future-version Hello was accepted")
	}
	if welcome.Reason == "" {
		t.Error("rejection carried no reason")
	}
	st := coord.Stats()
	if st.RegistrationsRejected == 0 {
		t.Errorf("no registrations counted as rejected (stats %+v)", st)
	}
	if st.WorkersRegistered != 0 {
		t.Errorf("rejected worker joined the fleet (stats %+v)", st)
	}
}

// TestRegistrationBadAddrRejected: a Hello announcing an address the
// coordinator could never dial (no concrete port) is rejected.
func TestRegistrationBadAddrRejected(t *testing.T) {
	coord := testCoordinator(audit.CoordinatorConfig{})
	defer coord.Close()
	regAddr := startRegistration(t, coord)

	conn, err := net.Dial("tcp", regAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	hello := wire.RegistrationHello{Version: wire.RegistrationVersion, Addr: "no-port-here"}
	writeTestFrame(conn, byte(wire.DistFrameHello), hello.Marshal())
	body, err := readTestFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	welcome, err := wire.ParseRegistrationWelcome(body[1:])
	if err != nil {
		t.Fatal(err)
	}
	if welcome.Accepted || welcome.Reason == "" {
		t.Fatalf("bad-address Hello: accepted=%v reason=%q, want reasoned rejection", welcome.Accepted, welcome.Reason)
	}
}

// TestWorkerReregistersAfterCoordinatorRestart: the self-assembly loop.
// A worker registered with one coordinator must notice its death (the
// registration connection drops) and re-announce itself to the successor
// listening on the same address, with no operator involvement.
func TestWorkerReregistersAfterCoordinatorRestart(t *testing.T) {
	fleet, err := audit.StartChaosFleet([]*audit.ChaosPlan{nil})
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	regAddr := l.Addr().String()

	coord1 := testCoordinator(audit.CoordinatorConfig{})
	go func() { _ = coord1.ServeRegistrations(l) }()

	stop := make(chan struct{})
	defer close(stop)
	go audit.RegisterWorker(regAddr, fleet.Addrs[0], stop, nil)
	waitForWorkers(t, coord1, 1)

	// The coordinator dies; its registration listener goes with it.
	coord1.Kill()

	// A successor takes over the same registration address. The worker's
	// redial loop must find it without being told anything.
	l2, err := net.Listen("tcp", regAddr)
	if err != nil {
		t.Fatal(err)
	}
	coord2 := testCoordinator(audit.CoordinatorConfig{})
	defer coord2.Close()
	go func() { _ = coord2.ServeRegistrations(l2) }()
	waitForWorkers(t, coord2, 1)
	if got := coord2.Stats().RegistrationsAccepted; got != 1 {
		t.Errorf("successor accepted %d registrations, want 1", got)
	}
}
