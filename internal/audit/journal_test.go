package audit

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func journalKey(b byte) [32]byte {
	var key [32]byte
	for i := range key {
		key[i] = b
	}
	return key
}

func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := journalKey(1)
	j.runEnqueued(key, "player1", 3)
	j.verdictEmitted(key, 1, []byte("verdict-one"))
	j.verdictEmitted(key, 2, []byte("verdict-two"))
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	got := j2.resume(key, 3)
	if len(got) != 2 || !bytes.Equal(got[1], []byte("verdict-one")) || !bytes.Equal(got[2], []byte("verdict-two")) {
		t.Fatalf("resume = %v, want verdicts at 1 and 2", got)
	}
	if j2.resume(key, 4) != nil {
		t.Fatal("resume with a different epoch count must refuse the stored verdicts")
	}
	if j2.resume(journalKey(9), 3) != nil {
		t.Fatal("resume of an unknown key must return nil")
	}
}

func TestJournalCompletedRunIsTombstone(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := journalKey(2)
	j.runEnqueued(key, "player1", 2)
	j.verdictEmitted(key, 0, []byte("v0"))
	j.runCompleted(key)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	runs, verdicts, err := InspectJournal(dir)
	if err != nil || runs != 0 || verdicts != 0 {
		t.Fatalf("InspectJournal after completion = (%d, %d, %v), want (0, 0, nil)", runs, verdicts, err)
	}
	j2, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.resume(key, 2) != nil {
		t.Fatal("a completed run must not resume")
	}
	// Compaction dropped the tombstoned records entirely.
	info, err := os.Stat(filepath.Join(dir, journalFileName))
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() != 0 {
		t.Fatalf("compacted journal holds %d bytes, want 0 (only tombstoned state existed)", info.Size())
	}
}

func TestJournalReEnqueueRestartsRun(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := journalKey(3)
	j.runEnqueued(key, "player1", 2)
	j.verdictEmitted(key, 0, []byte("stale"))
	j.runEnqueued(key, "player1", 2) // the run starts over
	j.verdictEmitted(key, 1, []byte("fresh"))
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	got := j2.resume(key, 2)
	if len(got) != 1 || !bytes.Equal(got[1], []byte("fresh")) {
		t.Fatalf("resume after re-enqueue = %v, want only the fresh verdict", got)
	}
}

// TestJournalTruncationTolerance pins the crash contract: a torn tail (the
// write the process died inside) ends the valid prefix, everything before
// it survives, and the reopened journal appends cleanly after compaction.
func TestJournalTruncationTolerance(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := journalKey(4)
	j.runEnqueued(key, "player1", 3)
	j.verdictEmitted(key, 0, []byte("durable"))
	sizeBefore := j.bytes
	j.verdictEmitted(key, 1, []byte("torn"))
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the last record: chop bytes off the tail, landing mid-frame.
	path := filepath.Join(dir, journalFileName)
	if err := os.Truncate(path, sizeBefore+5); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	got := j2.resume(key, 3)
	if len(got) != 1 || !bytes.Equal(got[0], []byte("durable")) {
		t.Fatalf("resume after torn tail = %v, want only the durable verdict", got)
	}
	// The journal still accepts appends after recovery.
	j2.verdictEmitted(key, 2, []byte("after-recovery"))
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	j3, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	got = j3.resume(key, 3)
	if len(got) != 2 || !bytes.Equal(got[2], []byte("after-recovery")) {
		t.Fatalf("resume after recovered append = %v, want verdicts at 0 and 2", got)
	}
}

// TestJournalCorruptionEndsPrefix flips a byte inside an early record's
// body: the checksum catches it and everything from that record on is
// discarded, even if later frames are intact.
func TestJournalCorruptionEndsPrefix(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := journalKey(5)
	j.runEnqueued(key, "player1", 2)
	firstEnd := j.bytes
	j.verdictEmitted(key, 0, []byte("will-be-corrupted"))
	j.verdictEmitted(key, 1, []byte("intact-but-after"))
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(dir, journalFileName)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[firstEnd+8+4] ^= 0xFF // inside the second record's body
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if got := j2.resume(key, 2); len(got) != 0 {
		t.Fatalf("resume past corruption = %v, want no verdicts (prefix ends at the bad record)", got)
	}
}

func TestJournalCompactionBoundsFile(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	live, dead := journalKey(6), journalKey(7)
	j.runEnqueued(dead, "player1", 1)
	j.verdictEmitted(dead, 0, bytes.Repeat([]byte("x"), 4096))
	j.runCompleted(dead)
	j.runEnqueued(live, "player2", 2)
	j.verdictEmitted(live, 0, []byte("keep"))
	full := j.bytes
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.bytes >= full {
		t.Fatalf("compaction left %d bytes, want fewer than the %d written", j2.bytes, full)
	}
	if got := j2.resume(live, 2); len(got) != 1 || !bytes.Equal(got[0], []byte("keep")) {
		t.Fatalf("live run lost in compaction: resume = %v", got)
	}
	runs, verdicts, err := InspectJournal(dir)
	if err != nil || runs != 1 || verdicts != 1 {
		t.Fatalf("InspectJournal after compaction = (%d, %d, %v), want (1, 1, nil)", runs, verdicts, err)
	}
}

func TestInspectJournalMissingDir(t *testing.T) {
	runs, verdicts, err := InspectJournal(filepath.Join(t.TempDir(), "nope"))
	if err != nil || runs != 0 || verdicts != 0 {
		t.Fatalf("InspectJournal on a missing journal = (%d, %d, %v), want (0, 0, nil)", runs, verdicts, err)
	}
}
