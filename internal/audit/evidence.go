package audit

import (
	"errors"
	"fmt"

	"repro/internal/sig"
	"repro/internal/snapshot"
	"repro/internal/tevlog"
	"repro/internal/vm"
)

// Evidence is the transferable proof of a fault (§4.5): the log segment,
// the authenticators that commit the machine to it, and — for spot checks —
// the starting snapshot. A third party repeats the auditor's checks; all
// steps are deterministic, so it reaches the same verdict without trusting
// either the auditor or the auditee (§3.3 step 5).
type Evidence struct {
	// Accused is the machine the evidence incriminates.
	Accused sig.NodeID
	// AccusedIdx is its network index.
	AccusedIdx uint32
	// Reason summarizes the auditor's finding (informational; verifiers
	// recompute the verdict).
	Reason string
	// Entries is the log segment (from boot, or from Start).
	Entries []tevlog.Entry
	// Auths commit the machine to the segment.
	Auths []tevlog.Authenticator
	// Start, StartRoot and PrevHash describe the starting snapshot for
	// chunk evidence; Start == nil means the segment starts at boot.
	Start     *snapshot.Restored
	StartRoot [32]byte
	PrevHash  tevlog.Hash
	// Partial, when set instead of Start, carries only the pages needed to
	// reproduce the verdict, each with a Merkle proof against StartRoot —
	// the minimized, privacy-preserving form of chunk evidence (§7.3).
	Partial *snapshot.PartialState
	// RNGSeed is the reference device seed.
	RNGSeed uint64
}

// NonResponseEvidence covers the case where a machine refuses to return a
// log segment (§4.5): the most recent authenticator proves entries up to
// its sequence number must exist. A third party can verify the signature
// and repeat the challenge; continued silence keeps the machine suspected.
type NonResponseEvidence struct {
	Accused sig.NodeID
	Auth    tevlog.Authenticator
}

// VerifyNonResponse checks that the authenticator is validly signed, which
// is all that can be established without the machine's cooperation.
func VerifyNonResponse(ev *NonResponseEvidence, keys *sig.KeyStore) error {
	if ev.Auth.Node != ev.Accused {
		return fmt.Errorf("audit: authenticator names %q, evidence accuses %q", ev.Auth.Node, ev.Accused)
	}
	if !ev.Auth.Verify(keys) {
		return errors.New("audit: authenticator signature invalid; evidence is worthless")
	}
	return nil
}

// VerifierConfig is what a third party needs to check evidence: its own
// trusted reference image and key store (never the auditor's).
type VerifierConfig struct {
	Keys             *sig.KeyStore
	RefImage         *vm.Image
	TamperEvident    bool
	VerifySignatures bool
}

// VerifyEvidence re-runs the full audit pipeline over an evidence bundle.
// It returns nil if the evidence indeed demonstrates a fault, and an error
// if the evidence is invalid (the execution it contains is consistent with
// the reference image — i.e. the accusation does not hold).
func VerifyEvidence(ev *Evidence, cfg VerifierConfig) (*Result, error) {
	a := &Auditor{
		Keys: cfg.Keys, RefImage: cfg.RefImage, RNGSeed: ev.RNGSeed,
		TamperEvident: cfg.TamperEvident, VerifySignatures: cfg.VerifySignatures,
	}
	var res *Result
	switch {
	case ev.Partial != nil:
		var err error
		res, err = a.auditPartialChunk(ev)
		if err != nil {
			return nil, err
		}
	case ev.Start != nil:
		res = a.AuditChunk(ChunkRequest{
			Node: ev.Accused, NodeIdx: ev.AccusedIdx,
			Start: ev.Start, StartRoot: ev.StartRoot, PrevHash: ev.PrevHash,
			Entries: ev.Entries, Auths: ev.Auths,
		})
	default:
		res = a.AuditFull(ev.Accused, ev.AccusedIdx, ev.Entries, ev.Auths)
	}
	if res.Passed {
		return res, errors.New("audit: evidence does not demonstrate a fault; execution is consistent with the reference image")
	}
	return res, nil
}
