package audit

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/sig"
	"repro/internal/snapshot"
	"repro/internal/tevlog"
	"repro/internal/wire"
)

// This file is the long-running audit coordinator service: a persistent
// epoch-job queue fed by any number of concurrent audits, drained by an
// elastic fleet of replay workers that may join and leave mid-audit. It
// subsumes the one-shot TCPBackend for deployments where the auditor is a
// service, not a command:
//
//   - one multiplexed connection per worker carries every audit session,
//     so the reference image ships once per (worker, audit) instead of
//     once per run×connection;
//   - up to Pipeline jobs are in flight per connection, hiding the wire
//     round-trip behind replay;
//   - liveness is a heartbeat (ping/pong) with a read deadline, so a dead
//     worker is detected even when no job is outstanding;
//   - a failed or timed-out epoch re-dispatches under capped exponential
//     backoff with deterministic jitter, preferring workers that have not
//     yet tried it (with at least one honest worker in the fleet, every
//     epoch eventually lands on it);
//   - a straggling epoch is hedged: re-dispatched immediately to a second
//     worker while the original stays outstanding, first verdict wins;
//   - when the fleet is empty the queue degrades gracefully to local
//     replay, so an audit never blocks on an absent fleet.
//
// The coordinator is an EpochBackend (Backend()), so the router's
// earliest-fault cutoff, spot rechecks and deterministic merge apply
// unchanged and verdicts stay byte-identical to AuditFull.

// CoordinatorConfig tunes a Coordinator. The zero value selects sane
// service defaults; tests shrink every duration.
type CoordinatorConfig struct {
	// Pipeline is the number of jobs kept in flight per worker connection.
	// <= 0 selects 4.
	Pipeline int
	// JobTimeout is how long a dispatched epoch may go unanswered before it
	// is re-dispatched and the dispatch counted against the connection.
	// <= 0 selects 2m.
	JobTimeout time.Duration
	// HedgeAfter re-dispatches a still-outstanding epoch to a second worker
	// after this long (the hedge; first verdict wins). 0 selects
	// JobTimeout/4; < 0 disables hedging.
	HedgeAfter time.Duration
	// MaxAttempts bounds dispatch attempts per epoch. <= 0 selects 8.
	MaxAttempts int
	// ConsecutiveTimeouts is how many job timeouts in a row a connection
	// survives before it is reaped as hung. <= 0 selects 2.
	ConsecutiveTimeouts int
	// RetryBackoff is the base re-dispatch delay after a failure; each
	// subsequent failure doubles it (with deterministic jitter) up to
	// RetryMaxBackoff. Hedges are exempt. <= 0 selects 50ms.
	RetryBackoff time.Duration
	// RetryMaxBackoff caps the exponential backoff. <= 0 selects 5s.
	RetryMaxBackoff time.Duration
	// BackoffSeed drives the deterministic backoff jitter.
	BackoffSeed uint64
	// HeartbeatEvery is the ping cadence on idle connections. <= 0
	// selects 15s.
	HeartbeatEvery time.Duration
	// HeartbeatMisses is how many silent heartbeat intervals kill a
	// connection. <= 0 selects 3.
	HeartbeatMisses int
	// DialTimeout bounds worker connection setup. <= 0 selects 5s.
	DialTimeout time.Duration
	// RedialBackoff is the base delay before re-dialing a worker whose
	// connection died without traffic, doubling up to RedialMaxBackoff.
	// <= 0 selects 100ms.
	RedialBackoff time.Duration
	// RedialMaxBackoff caps the redial backoff. <= 0 selects 5s.
	RedialMaxBackoff time.Duration
	// DisableLocalFallback turns off local replay when no worker
	// connection is live; queued epochs then fail after JobTimeout of
	// starvation instead (surfacing as an audit error, exit 2).
	DisableLocalFallback bool
	// LocalWorkers bounds concurrent local-fallback replays. <= 0 selects
	// runtime.NumCPU().
	LocalWorkers int
	// Metrics receives the coordinator's operational counters and gauges.
	// Nil allocates a private registry, readable via Metrics().
	Metrics *metrics.Registry
	// Journal, when non-nil, makes the epoch queue crash-safe: runs and
	// verdicts are journaled as they happen, and an enqueued run whose key
	// matches a pending journaled run resumes — durable verdicts re-emit
	// from the journal and only the remaining epochs dispatch. The caller
	// owns the journal's lifetime (Close it after the coordinator).
	Journal *Journal
}

// taskKey identifies one dispatched epoch: (audit run, epoch index).
type taskKey struct {
	run   uint64
	index int
}

// coordTask is one epoch job on the coordinator queue. All mutable fields
// are guarded by Coordinator.mu; once done flips true nothing mutates the
// task again, so the failure/verdict paths may read it unlocked.
type coordTask struct {
	run   *coordRun
	job   *EpochJob
	index int

	encOnce sync.Once
	enc     []byte

	attempts   int
	inflight   int
	queued     bool
	hedged     bool
	done       bool
	eligibleAt time.Time
	enqueuedAt time.Time
	triedOn    map[string]bool
	wireBytes  int
	fullBytes  int // full-state job-frame bytes, all dispatches
	deltaBytes int // delta-encoded job-frame bytes, all dispatches
	deltaSent  int // delta-encoded dispatches
	deltaFalls int // full re-dispatches after a worker NeedState
	failErr    error
}

// frame returns the cached wire encoding of the job, so a re-dispatch
// never re-encodes.
func (t *coordTask) frame() []byte {
	t.encOnce.Do(func() { t.enc = jobToWire(t.job).Marshal() })
	return t.enc
}

// coordRun is one audit's jobs on the shared queue. A task counts toward
// settled only after its emit (if any) returned, so done closes strictly
// after every verdict reached the router.
type coordRun struct {
	id       uint64
	sess     Session
	frame    []byte
	skip     func(int) bool
	emit     func(EpochVerdict)
	deltaSrc func(k uint32) (*snapshot.Delta, error)
	tasks    map[int]*coordTask
	total    int
	// key is the run's stable journal identity; journaled reports whether
	// this run's events are being written ahead.
	key       [32]byte
	journaled bool

	settled atomic.Int64
	done    chan struct{}
	err     error // guarded by Coordinator.mu
}

// finishSettle records n tasks fully finished (verdict emitted, skipped,
// or failed) and completes the run when the last one lands.
func (r *coordRun) finishSettle(n int64) {
	if n > 0 && r.settled.Add(n) == int64(r.total) {
		close(r.done)
	}
}

// coordDispatch is one outstanding job on one worker connection.
type coordDispatch struct {
	task   *coordTask
	sentAt time.Time
}

// coordWorker drives one remote worker: a persistent dial/redial loop, a
// multiplexed connection with pipelined jobs, and heartbeat liveness.
// Connection state is guarded by Coordinator.mu.
type coordWorker struct {
	c    *Coordinator
	addr string
	stop chan struct{}

	conn        net.Conn
	inflight    map[taskKey]*coordDispatch
	sentRuns    map[uint64]struct{}
	timeouts    int
	activeSince time.Time
	busy        time.Duration

	// trackers models, per run, what snapshot state the worker behind the
	// live connection holds for delta-encoded dispatch. Owned by the sender
	// goroutine — never touched under the lock. needReset (guarded by
	// Coordinator.mu) carries NeedState notices from the read loop to the
	// sender, which invalidates the named trackers before its next ship.
	trackers  map[uint64]*deltaTracker
	needReset map[uint64]bool
}

// Coordinator is the long-running audit coordinator service. Create with
// NewCoordinator, point audits at Backend() (or use Audit), grow and
// shrink the fleet with AddWorker/RemoveWorker, and Close when done.
type Coordinator struct {
	cfg CoordinatorConfig
	reg *metrics.Registry

	mu           sync.Mutex
	wake         chan struct{}
	queue        []*coordTask
	runs         map[uint64]*coordRun
	workers      map[string]*coordWorker
	nextRun      uint64
	retiredBusy  time.Duration
	starvedSince time.Time
	closed       bool

	closedCh chan struct{}
	wg       sync.WaitGroup
}

// NewCoordinator starts a coordinator service with an empty fleet.
func NewCoordinator(cfg CoordinatorConfig) *Coordinator {
	if cfg.Pipeline <= 0 {
		cfg.Pipeline = 4
	}
	if cfg.JobTimeout <= 0 {
		cfg.JobTimeout = 2 * time.Minute
	}
	if cfg.HedgeAfter == 0 {
		cfg.HedgeAfter = cfg.JobTimeout / 4
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 8
	}
	if cfg.ConsecutiveTimeouts <= 0 {
		cfg.ConsecutiveTimeouts = 2
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 50 * time.Millisecond
	}
	if cfg.RetryMaxBackoff <= 0 {
		cfg.RetryMaxBackoff = 5 * time.Second
	}
	if cfg.HeartbeatEvery <= 0 {
		cfg.HeartbeatEvery = 15 * time.Second
	}
	if cfg.HeartbeatMisses <= 0 {
		cfg.HeartbeatMisses = 3
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	if cfg.RedialBackoff <= 0 {
		cfg.RedialBackoff = 100 * time.Millisecond
	}
	if cfg.RedialMaxBackoff <= 0 {
		cfg.RedialMaxBackoff = 5 * time.Second
	}
	if cfg.LocalWorkers <= 0 {
		cfg.LocalWorkers = runtime.NumCPU()
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = &metrics.Registry{}
	}
	if cfg.Journal != nil {
		cfg.Journal.attach(reg)
	}
	c := &Coordinator{
		cfg:      cfg,
		reg:      reg,
		wake:     make(chan struct{}),
		runs:     make(map[uint64]*coordRun),
		workers:  make(map[string]*coordWorker),
		closedCh: make(chan struct{}),
	}
	if !cfg.DisableLocalFallback {
		for i := 0; i < cfg.LocalWorkers; i++ {
			c.wg.Add(1)
			go c.localLoop()
		}
	}
	c.wg.Add(1)
	go c.janitor()
	return c
}

// Metrics returns the coordinator's metrics registry.
func (c *Coordinator) Metrics() *metrics.Registry { return c.reg }

// AddWorker registers a worker address and starts driving it. A worker
// may join while audits are in flight; it starts pulling queued epochs as
// soon as its connection is up. Adding an existing address is a no-op.
func (c *Coordinator) AddWorker(addr string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	if _, ok := c.workers[addr]; ok {
		return
	}
	w := &coordWorker{c: c, addr: addr, stop: make(chan struct{})}
	c.workers[addr] = w
	c.reg.Gauge("workers_registered").Add(1)
	c.wg.Add(1)
	go w.loop()
}

// RemoveWorker unregisters a worker. Its outstanding epochs requeue and
// flow to the rest of the fleet; removing an unknown address is a no-op.
func (c *Coordinator) RemoveWorker(addr string) {
	c.mu.Lock()
	if w, ok := c.workers[addr]; ok {
		delete(c.workers, addr)
		c.reg.Gauge("workers_registered").Add(-1)
		close(w.stop)
		w.detachLocked(time.Now())
		c.retiredBusy += w.busy
	}
	c.mu.Unlock()
}

// ErrCoordinatorKilled is the error pending runs fail with when Kill
// simulates a coordinator crash.
var ErrCoordinatorKilled = errors.New("audit: coordinator killed")

// Close shuts the coordinator down: worker loops stop, and every epoch
// still pending fails its run with a coordinator-closed error.
func (c *Coordinator) Close() { c.shutdown(errors.New("audit: coordinator closed")) }

// Kill is Close for the chaos harness: it simulates the coordinator
// process dying mid-audit. Connections drop and pending runs fail with
// ErrCoordinatorKilled, and — critically — no run-completed records are
// journaled, which is exactly the state a restarted coordinator must
// recover from. (A real SIGKILL additionally loses the journal's unsynced
// batch; the dist-smoke harness covers that at the process level.)
func (c *Coordinator) Kill() { c.shutdown(ErrCoordinatorKilled) }

func (c *Coordinator) shutdown(cause error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	close(c.closedCh)
	now := time.Now()
	for _, w := range c.workers {
		close(w.stop)
		w.detachLocked(now)
		c.retiredBusy += w.busy
	}
	c.workers = map[string]*coordWorker{}
	type pendingRun struct {
		run *coordRun
		n   int64
	}
	var pends []pendingRun
	for _, run := range c.runs {
		run.err = cause
		var n int64
		for _, t := range run.tasks {
			if !t.done {
				t.done = true
				t.queued = false
				n++
			}
		}
		if n > 0 {
			pends = append(pends, pendingRun{run, n})
		}
	}
	c.queue = nil
	c.reg.Gauge("queue_depth").Set(0)
	c.broadcastLocked()
	c.mu.Unlock()
	for _, p := range pends {
		p.run.finishSettle(p.n)
	}
	c.wg.Wait()
}

// Backend returns the coordinator as an EpochBackend, for DistOptions.
// Concurrent audits through it interleave on one shared queue and fleet.
func (c *Coordinator) Backend() EpochBackend { return coordinatorBackend{c: c} }

// Audit runs one full audit through the coordinator: opts.Backend is
// replaced, everything else in opts applies unchanged.
func (c *Coordinator) Audit(a *Auditor, node sig.NodeID, nodeIdx uint32, entries []tevlog.Entry, auths []tevlog.Authenticator, opts DistOptions) (*Result, DistStats, error) {
	opts.Backend = c.Backend()
	return a.AuditFullDist(node, nodeIdx, entries, auths, opts)
}

// FleetStats is a point-in-time snapshot of the coordinator's operational
// state, for status lines and benchmark rows.
type FleetStats struct {
	WorkersRegistered   int
	WorkersLive         int
	QueueDepth          int
	EpochsDone          int64
	Retries             int64
	Hedges              int64
	Redials             int64
	HeartbeatTimeouts   int64
	Drains              int64
	LocalFallbackEpochs int64
	RetriesExhausted    int64
	// BusyNs is the cumulative time worker connections had at least one
	// job in flight, summed across the fleet (fleet utilization is
	// BusyNs / (wall × workers)).
	BusyNs int64
	// Journal counters (zero when no journal is configured): runs that
	// resumed from durable state, epochs whose verdicts were skipped as
	// already durable, and the journal file size.
	RunsResumed          int64
	EpochsSkippedDurable int64
	JournalBytes         int64
	// Registration counters (zero when no registration listener runs).
	RegistrationsAccepted int64
	RegistrationsRejected int64
}

// Stats snapshots the coordinator's fleet state.
func (c *Coordinator) Stats() FleetStats {
	now := time.Now()
	c.mu.Lock()
	busy := c.retiredBusy
	live := 0
	for _, w := range c.workers {
		busy += w.busy
		if w.conn != nil {
			live++
			if len(w.inflight) > 0 {
				busy += now.Sub(w.activeSince)
			}
		}
	}
	registered := len(c.workers)
	depth := len(c.queue)
	c.mu.Unlock()
	return FleetStats{
		WorkersRegistered:   registered,
		WorkersLive:         live,
		QueueDepth:          depth,
		EpochsDone:          c.reg.Counter("epochs_done").Value(),
		Retries:             c.reg.Counter("retries").Value(),
		Hedges:              c.reg.Counter("hedges").Value(),
		Redials:             c.reg.Counter("redials").Value(),
		HeartbeatTimeouts:   c.reg.Counter("heartbeat_timeouts").Value(),
		Drains:              c.reg.Counter("drains").Value(),
		LocalFallbackEpochs: c.reg.Counter("local_fallback_epochs").Value(),
		RetriesExhausted:    c.reg.Counter("retries_exhausted").Value(),
		BusyNs:              int64(busy),

		RunsResumed:           c.reg.Value("journal_runs_resumed"),
		EpochsSkippedDurable:  c.reg.Value("journal_epochs_skipped"),
		JournalBytes:          c.reg.Value("journal_bytes"),
		RegistrationsAccepted: c.reg.Value("registrations_accepted"),
		RegistrationsRejected: c.reg.Value("registrations_rejected"),
	}
}

// coordinatorBackend adapts the coordinator to the router's backend seam.
type coordinatorBackend struct {
	c        *Coordinator
	deltaSrc func(k uint32) (*snapshot.Delta, error)
}

// Remote implements EpochBackend: jobs ship whole, starts pre-verified.
func (b coordinatorBackend) Remote() bool { return true }

// withDelta implements deltaCapable: runs enqueued through the returned
// backend ship epochs as proof-carrying delta chains per worker connection.
func (b coordinatorBackend) withDelta(src func(k uint32) (*snapshot.Delta, error)) EpochBackend {
	b.deltaSrc = src
	return b
}

// Run implements EpochBackend by enqueueing the jobs and blocking until
// every one settles.
func (b coordinatorBackend) Run(sess Session, jobs []*EpochJob, skip func(int) bool, emit func(EpochVerdict)) error {
	return b.c.enqueueRun(sess, jobs, skip, emit, b.deltaSrc)
}

// enqueueRun puts one audit's epochs on the shared queue and waits.
func (c *Coordinator) enqueueRun(sess Session, jobs []*EpochJob, skip func(int) bool, emit func(EpochVerdict), deltaSrc func(k uint32) (*snapshot.Delta, error)) error {
	if len(jobs) == 0 {
		return nil
	}
	sessFrame := sessionToWire(sess).Marshal()

	// With a journal, derive the run's stable key and pull any durable
	// verdicts a crashed predecessor left behind. Resumed epochs never
	// touch the queue; their stored verdicts re-emit below.
	j := c.cfg.Journal
	var key [32]byte
	var resumed map[int][]byte
	if j != nil {
		key = runKeyFor(sess, jobs)
		resumed = j.resume(key, len(jobs))
	}

	now := time.Now()
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return errors.New("audit: coordinator is closed")
	}
	c.nextRun++
	run := &coordRun{
		id: c.nextRun, sess: sess, frame: sessFrame, skip: skip, emit: emit,
		deltaSrc: deltaSrc,
		tasks:    make(map[int]*coordTask, len(jobs)), total: len(jobs),
		done:      make(chan struct{}),
		key:       key,
		journaled: j != nil,
	}
	var stored []*wire.AuditVerdict
	for _, job := range jobs {
		t := &coordTask{
			run: run, job: job, index: job.Index,
			eligibleAt: now, enqueuedAt: now, triedOn: make(map[string]bool),
		}
		run.tasks[job.Index] = t
		if enc, ok := resumed[job.Index]; ok {
			if v, perr := wire.ParseAuditVerdict(enc); perr == nil && int(v.Index) == job.Index {
				// Durable in the journal: settle without ever dispatching.
				t.done = true
				stored = append(stored, v)
				continue
			}
		}
		t.queued = true
		c.queue = append(c.queue, t)
	}
	c.runs[run.id] = run
	c.reg.Gauge("queue_depth").Set(int64(len(c.queue)))
	c.broadcastLocked()
	c.mu.Unlock()

	if j != nil {
		if resumed == nil {
			j.runEnqueued(key, string(sess.Node), len(jobs))
		} else {
			c.reg.Counter("journal_runs_resumed").Inc()
		}
	}
	// Re-emit stored verdicts outside the lock: they flow through the
	// router exactly as a worker's verdict would — spot rechecks included,
	// so a tampered journal is caught like a lying worker — and the
	// resumed audit's Result stays byte-identical to an uninterrupted run.
	for _, v := range stored {
		r := verdictFromWire(v)
		c.reg.Counter("journal_epochs_skipped").Inc()
		run.emit(EpochVerdict{Index: int(v.Index), Stats: r.stats, Fault: r.fault, Worker: "journal"})
		run.finishSettle(1)
	}

	<-run.done

	c.mu.Lock()
	delete(c.runs, run.id)
	err := run.err
	c.mu.Unlock()
	if err == nil && j != nil {
		j.runCompleted(key)
	}
	return err
}

// broadcastLocked wakes every goroutine parked on the queue.
func (c *Coordinator) broadcastLocked() {
	close(c.wake)
	c.wake = make(chan struct{})
}

func (c *Coordinator) isClosed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}

func (c *Coordinator) liveConnsLocked() int {
	n := 0
	for _, w := range c.workers {
		if w.conn != nil {
			n++
		}
	}
	return n
}

// backoffDelay is the capped exponential re-dispatch delay with
// deterministic jitter in [1/2, 1) of the exponential step.
func (c *Coordinator) backoffDelay(index, attempt int) time.Duration {
	d := c.cfg.RetryBackoff
	for i := 1; i < attempt && d < c.cfg.RetryMaxBackoff; i++ {
		d *= 2
	}
	if d > c.cfg.RetryMaxBackoff {
		d = c.cfg.RetryMaxBackoff
	}
	frac := float64(splitmix64(c.cfg.BackoffSeed^uint64(index)<<20^uint64(attempt))>>11) / float64(1<<53)
	return d/2 + time.Duration(frac*float64(d/2))
}

// requeueLocked returns a task to the queue after delay. counter names
// the metric charged for the requeue ("" for hedges).
func (c *Coordinator) requeueLocked(t *coordTask, delay time.Duration, counter string) {
	if c.closed || t.done || t.queued {
		return
	}
	t.queued = true
	t.eligibleAt = time.Now().Add(delay)
	c.queue = append(c.queue, t)
	c.reg.Gauge("queue_depth").Set(int64(len(c.queue)))
	if counter != "" {
		c.reg.Counter(counter).Inc()
	}
	c.broadcastLocked()
}

// failTaskLocked marks a task failed; the caller must pass it to
// failTasks once the lock is released so the error verdict emits.
func (c *Coordinator) failTaskLocked(t *coordTask, err error, counter string) *coordTask {
	t.done = true
	t.queued = false
	t.failErr = err
	if counter != "" {
		c.reg.Counter(counter).Inc()
	}
	return t
}

// failTasks emits the error verdicts for tasks failed under the lock.
func (c *Coordinator) failTasks(tasks []*coordTask) {
	for _, t := range tasks {
		t.run.emit(EpochVerdict{
			Index: t.index, Err: t.failErr,
			Worker: "(exhausted)", Attempts: t.attempts, WireBytes: t.wireBytes,
			WireBytesFull: t.fullBytes, WireBytesDelta: t.deltaBytes,
			DeltaShipped: t.deltaSent, DeltaFallbacks: t.deltaFalls,
		})
		t.run.finishSettle(1)
	}
}

func (c *Coordinator) exhaustedErr(t *coordTask) error {
	return fmt.Errorf("audit: epoch %d exhausted %d coordinator dispatch attempts: %w",
		t.index, c.cfg.MaxAttempts, ErrRetriesExhausted)
}

// takeLocked pops the next dispatchable task for worker w (nil for the
// local-fallback pool, which ignores placement history). It settles
// skippable tasks, drops exhausted ones into failed (emit after unlock),
// and reports the earliest future eligibility when nothing is ready.
// Placement prefers workers that have not tried the task: as long as some
// other live worker is untried, the task waits for it, which guarantees
// an epoch eventually reaches an honest worker in any fleet that has one.
func (c *Coordinator) takeLocked(w *coordWorker, now time.Time) (picked *coordTask, nextAt time.Time, failed []*coordTask) {
	out := c.queue[:0]
	for i := 0; i < len(c.queue); i++ {
		t := c.queue[i]
		if t.done || !t.queued {
			continue
		}
		if t.run.skip(t.index) {
			// Past the earliest-fault cutoff: this epoch can no longer
			// affect the merged verdict. Settle it if nothing is in
			// flight; otherwise the outstanding dispatch resolves it.
			t.queued = false
			if t.inflight == 0 {
				t.done = true
				t.run.finishSettle(1)
			}
			continue
		}
		if t.eligibleAt.After(now) {
			if nextAt.IsZero() || t.eligibleAt.Before(nextAt) {
				nextAt = t.eligibleAt
			}
			out = append(out, t)
			continue
		}
		if t.attempts >= c.cfg.MaxAttempts {
			t.queued = false
			if t.inflight == 0 {
				failed = append(failed, c.failTaskLocked(t, c.exhaustedErr(t), "retries_exhausted"))
			}
			continue
		}
		if w != nil && t.triedOn[w.addr] && c.hasUntriedLiveLocked(t, w) {
			out = append(out, t)
			continue
		}
		t.queued = false
		t.attempts++
		if w != nil {
			t.triedOn[w.addr] = true
		}
		picked = t
		out = append(out, c.queue[i+1:]...)
		break
	}
	c.queue = out
	c.reg.Gauge("queue_depth").Set(int64(len(c.queue)))
	return picked, nextAt, failed
}

// hasUntriedLiveLocked reports whether a live worker other than asking
// has not yet tried the task.
func (c *Coordinator) hasUntriedLiveLocked(t *coordTask, asking *coordWorker) bool {
	for addr, w := range c.workers {
		if w == asking || w.conn == nil {
			continue
		}
		if !t.triedOn[addr] {
			return true
		}
	}
	return false
}

// deliverRemote hands a worker's verdict to its run: first verdict wins,
// a hedge's or straggler's duplicate only clears the dispatch slot. The
// emit runs outside the lock — spot rechecks replay locally and must not
// stall the fleet.
func (c *Coordinator) deliverRemote(w *coordWorker, runID uint64, v *wire.AuditVerdict, nbytes int) {
	now := time.Now()
	index := int(v.Index)
	c.mu.Lock()
	key := taskKey{run: runID, index: index}
	if disp, ok := w.inflight[key]; ok {
		w.dropDispatchLocked(key, now)
		disp.task.inflight--
		w.timeouts = 0
		c.broadcastLocked() // a pipeline slot freed
	}
	run := c.runs[runID]
	if run == nil {
		c.mu.Unlock()
		return
	}
	t := run.tasks[index]
	if t == nil || t.done {
		c.mu.Unlock()
		return
	}
	t.done = true
	t.queued = false
	t.wireBytes += nbytes
	ev := EpochVerdict{
		Index: index, Worker: w.addr, Attempts: t.attempts, WireBytes: t.wireBytes,
		WireBytesFull: t.fullBytes, WireBytesDelta: t.deltaBytes,
		DeltaShipped: t.deltaSent, DeltaFallbacks: t.deltaFalls,
	}
	c.reg.Counter("epochs_done").Inc()
	c.mu.Unlock()
	if run.journaled {
		// Write ahead of the emit: once the router sees this verdict it may
		// settle the audit, and a crash after that must find it durable.
		c.cfg.Journal.verdictEmitted(run.key, index, v.Marshal())
	}
	r := verdictFromWire(v)
	ev.Stats = r.stats
	ev.Fault = r.fault
	run.emit(ev)
	run.finishSettle(1)
}

// deltaFallback handles a worker's need-state notice: the worker no longer
// holds the base state a delta-encoded dispatch chained from (its cache
// evicted it, or a restarted worker answered behind the same address). The
// dispatch slot frees, the connection's model of that run's worker state is
// marked for invalidation (the sender goroutine owns the tracker and resets
// it before its next ship), and the epoch requeues with no backoff — the
// invalidated tracker makes the re-dispatch ship the full state.
func (c *Coordinator) deltaFallback(w *coordWorker, runID uint64, index int) {
	now := time.Now()
	c.mu.Lock()
	key := taskKey{run: runID, index: index}
	if disp, ok := w.inflight[key]; ok {
		w.dropDispatchLocked(key, now)
		disp.task.inflight--
		w.timeouts = 0
	}
	if w.needReset == nil {
		w.needReset = make(map[uint64]bool)
	}
	w.needReset[runID] = true
	if run := c.runs[runID]; run != nil {
		if t := run.tasks[index]; t != nil && !t.done {
			t.deltaFalls++
			c.reg.Counter("delta_fallbacks").Inc()
			c.requeueLocked(t, 0, "")
		}
	}
	c.broadcastLocked() // the freed pipeline slot, even when the requeue no-ops
	c.mu.Unlock()
}

// worker connection driving ------------------------------------------------

func (w *coordWorker) stopped() bool {
	select {
	case <-w.stop:
		return true
	default:
		return false
	}
}

// addDispatchLocked and dropDispatchLocked maintain the busy-time
// accounting: a connection is busy while it has at least one job in
// flight.
func (w *coordWorker) addDispatchLocked(key taskKey, disp *coordDispatch, now time.Time) {
	if len(w.inflight) == 0 {
		w.activeSince = now
	}
	w.inflight[key] = disp
}

func (w *coordWorker) dropDispatchLocked(key taskKey, now time.Time) {
	delete(w.inflight, key)
	if len(w.inflight) == 0 {
		w.busy += now.Sub(w.activeSince)
	}
}

// detachLocked drops the live connection: outstanding epochs requeue
// (with backoff — this connection just failed them) and the fleet gauge
// falls. Idempotent; safe when no connection is up.
func (w *coordWorker) detachLocked(now time.Time) {
	if w.conn == nil {
		return
	}
	w.conn.Close()
	w.conn = nil
	c := w.c
	for key, disp := range w.inflight {
		t := disp.task
		w.dropDispatchLocked(key, now)
		t.inflight--
		if !t.done {
			c.requeueLocked(t, c.backoffDelay(t.index, t.attempts), "retries")
		}
	}
	c.reg.Gauge("workers_live").Add(-1)
	c.broadcastLocked()
}

// detachConn is detachLocked if conn is still the live connection.
func (c *Coordinator) detachConn(w *coordWorker, conn net.Conn) {
	c.mu.Lock()
	if w.conn == conn {
		w.detachLocked(time.Now())
	}
	c.mu.Unlock()
}

// scanLocked enforces per-dispatch deadlines on this connection: a job
// past JobTimeout requeues (and counts toward reaping the connection as
// hung); a job past HedgeAfter with no second copy in flight hedges. The
// returned tasks exhausted their budget and must go to failTasks.
func (w *coordWorker) scanLocked(now time.Time) (failed []*coordTask) {
	c := w.c
	for key, disp := range w.inflight {
		t := disp.task
		age := now.Sub(disp.sentAt)
		switch {
		case age >= c.cfg.JobTimeout:
			w.dropDispatchLocked(key, now)
			t.inflight--
			w.timeouts++
			if t.done {
				continue
			}
			if t.attempts >= c.cfg.MaxAttempts && t.inflight == 0 && !t.queued {
				failed = append(failed, c.failTaskLocked(t, c.exhaustedErr(t), "retries_exhausted"))
			} else {
				c.requeueLocked(t, 0, "retries")
			}
		case c.cfg.HedgeAfter > 0 && age >= c.cfg.HedgeAfter && !t.hedged &&
			!t.done && !t.queued && t.inflight == 1 && t.attempts < c.cfg.MaxAttempts:
			t.hedged = true
			c.reg.Counter("hedges").Inc()
			c.requeueLocked(t, 0, "")
		}
	}
	if w.timeouts >= c.cfg.ConsecutiveTimeouts {
		// A connection that keeps accepting jobs and never answers is
		// hung, not slow: reap it so the redial loop replaces it.
		w.detachLocked(now)
	}
	return failed
}

// senderWaitLocked is how long the sender may park: until the next
// eligibility, ping, hedge or timeout deadline.
func (w *coordWorker) senderWaitLocked(now, nextAt, lastPing time.Time) time.Duration {
	c := w.c
	wait := c.cfg.HeartbeatEvery - now.Sub(lastPing)
	if !nextAt.IsZero() {
		if d := nextAt.Sub(now); d < wait {
			wait = d
		}
	}
	for _, disp := range w.inflight {
		deadline := disp.sentAt.Add(c.cfg.JobTimeout)
		if c.cfg.HedgeAfter > 0 && !disp.task.hedged {
			if h := disp.sentAt.Add(c.cfg.HedgeAfter); h.Before(deadline) {
				deadline = h
			}
		}
		if d := deadline.Sub(now); d < wait {
			wait = d
		}
	}
	if wait < time.Millisecond {
		wait = time.Millisecond
	}
	return wait
}

// loop dials the worker forever: immediately again after a connection
// that carried traffic, under capped exponential backoff otherwise (a
// partitioned or dead worker), until the worker is removed or the
// coordinator closes.
func (w *coordWorker) loop() {
	c := w.c
	defer c.wg.Done()
	delay := c.cfg.RedialBackoff
	dials := 0
	for {
		if w.stopped() || c.isClosed() {
			return
		}
		if dials > 0 {
			c.reg.Counter("redials").Inc()
		}
		dials++
		conn, err := net.DialTimeout("tcp", w.addr, c.cfg.DialTimeout)
		if err == nil {
			if w.serveConn(conn) {
				delay = c.cfg.RedialBackoff
				continue
			}
		}
		select {
		case <-w.stop:
			return
		case <-time.After(delay):
		}
		delay *= 2
		if delay > c.cfg.RedialMaxBackoff {
			delay = c.cfg.RedialMaxBackoff
		}
	}
}

// serveConn drives one live connection: this goroutine is the sender
// (jobs, session frames, pings) and deadline enforcer; a reader goroutine
// delivers verdicts and pongs. Returns whether the connection ever
// carried a frame back — the redial loop's backoff signal.
func (w *coordWorker) serveConn(conn net.Conn) bool {
	c := w.c
	c.mu.Lock()
	if c.closed || w.stopped() {
		c.mu.Unlock()
		conn.Close()
		return false
	}
	w.conn = conn
	w.inflight = make(map[taskKey]*coordDispatch)
	w.sentRuns = make(map[uint64]struct{})
	w.trackers = make(map[uint64]*deltaTracker)
	w.needReset = nil
	w.timeouts = 0
	c.reg.Gauge("workers_live").Add(1)
	c.broadcastLocked()
	c.mu.Unlock()

	var traffic atomic.Bool
	readerDone := make(chan struct{})
	go w.readLoop(conn, readerDone, &traffic)

	var pingSeq uint64
	lastPing := time.Now()
send:
	for {
		now := time.Now()
		c.mu.Lock()
		if c.closed || w.stopped() || w.conn != conn {
			c.mu.Unlock()
			break
		}
		failed := w.scanLocked(now)
		if w.conn != conn { // scan reaped this connection as hung
			c.mu.Unlock()
			c.failTasks(failed)
			break
		}
		var t *coordTask
		var nextAt time.Time
		if len(w.inflight) < c.cfg.Pipeline {
			var more []*coordTask
			t, nextAt, more = c.takeLocked(w, now)
			failed = append(failed, more...)
		}
		var sessFrame []byte
		var runID uint64
		if t != nil {
			runID = t.run.id
			if _, ok := w.sentRuns[runID]; !ok {
				w.sentRuns[runID] = struct{}{}
				sessFrame = t.run.frame
			}
			t.inflight++
			w.addDispatchLocked(taskKey{run: runID, index: t.index}, &coordDispatch{task: t, sentAt: now}, now)
		}
		var resetRuns []uint64
		if len(w.needReset) > 0 {
			for id := range w.needReset {
				resetRuns = append(resetRuns, id)
			}
			w.needReset = nil
		}
		wait := w.senderWaitLocked(now, nextAt, lastPing)
		wakeCh := c.wake
		c.mu.Unlock()
		c.failTasks(failed)
		for _, id := range resetRuns {
			w.trackers[id].invalidate()
		}

		if t != nil {
			conn.SetWriteDeadline(time.Now().Add(c.cfg.JobTimeout))
			if sessFrame != nil {
				if writeDistFrame(conn, wire.DistFrameMuxSession, wire.AppendMuxID(runID, sessFrame)) != nil {
					break
				}
			}
			kind := wire.DistFrameMuxJob
			var frame []byte
			if src := t.run.deltaSrc; src != nil {
				tr := w.trackers[runID]
				if tr == nil {
					tr = &deltaTracker{src: src}
					w.trackers[runID] = tr
				}
				if df, derr := tr.deltaFrame(t.job); derr == nil {
					kind, frame = wire.DistFrameMuxDeltaJob, df
				}
			}
			delta := frame != nil
			if frame == nil {
				frame = t.frame()
				w.trackers[runID].noteFull(t.job)
			}
			if writeDistFrame(conn, kind, wire.AppendMuxID(runID, frame)) != nil {
				break
			}
			c.mu.Lock()
			t.wireBytes += len(frame)
			if delta {
				t.deltaBytes += len(frame)
				t.deltaSent++
			} else {
				t.fullBytes += len(frame)
			}
			c.mu.Unlock()
			continue
		}

		if now.Sub(lastPing) >= c.cfg.HeartbeatEvery {
			pingSeq++
			conn.SetWriteDeadline(now.Add(c.cfg.HeartbeatEvery))
			if writeDistFrame(conn, wire.DistFramePing, binary.AppendUvarint(nil, pingSeq)) != nil {
				break
			}
			lastPing = time.Now()
			continue
		}

		timer := time.NewTimer(wait)
		select {
		case <-readerDone:
			timer.Stop()
			break send
		case <-w.stop:
			timer.Stop()
			break send
		case <-wakeCh:
		case <-timer.C:
		}
		timer.Stop()
	}
	c.detachConn(w, conn)
	conn.Close()
	<-readerDone
	return traffic.Load()
}

// readLoop receives verdicts, pongs and drain notices. Any frame resets
// the liveness deadline; a deadline expiry is a missed heartbeat and
// kills the connection.
func (w *coordWorker) readLoop(conn net.Conn, done chan struct{}, traffic *atomic.Bool) {
	defer close(done)
	c := w.c
	idle := c.cfg.HeartbeatEvery*time.Duration(c.cfg.HeartbeatMisses) + c.cfg.HeartbeatEvery/2
	for {
		conn.SetReadDeadline(time.Now().Add(idle))
		kind, body, err := readDistFrame(conn)
		if err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				c.reg.Counter("heartbeat_timeouts").Inc()
			}
			return
		}
		traffic.Store(true)
		switch kind {
		case wire.DistFrameMuxVerdict:
			runID, rest, err := wire.SplitMuxID(body)
			if err != nil {
				return
			}
			v, err := wire.ParseAuditVerdict(rest)
			if err != nil {
				return
			}
			c.deliverRemote(w, runID, v, len(rest))
		case wire.DistFrameMuxNeedState:
			runID, rest, err := wire.SplitMuxID(body)
			if err != nil {
				return
			}
			idx, err := wire.ParseNeedState(rest)
			if err != nil {
				return
			}
			c.deltaFallback(w, runID, int(idx))
		case wire.DistFrameMuxSessionOK, wire.DistFramePong:
			// Liveness was the point; the deadline reset above is the work.
		case wire.DistFrameDrain:
			// The worker is winding down: drop the connection so its
			// outstanding epochs redistribute, and let the redial loop
			// discover whether it comes back.
			c.reg.Counter("drains").Inc()
			return
		default:
			return
		}
	}
}

// local fallback ------------------------------------------------------------

// localLoop replays queued epochs in-process whenever no worker
// connection is live — the graceful-degradation path that keeps an audit
// moving with an empty or fully-partitioned fleet.
func (c *Coordinator) localLoop() {
	defer c.wg.Done()
	for {
		now := time.Now()
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return
		}
		var t *coordTask
		var nextAt time.Time
		var failed []*coordTask
		if c.liveConnsLocked() == 0 {
			t, nextAt, failed = c.takeLocked(nil, now)
			if t != nil {
				t.inflight++
			}
		}
		wakeCh := c.wake
		c.mu.Unlock()
		c.failTasks(failed)
		if t == nil {
			wait := 500 * time.Millisecond
			if !nextAt.IsZero() {
				if d := nextAt.Sub(now); d < wait {
					wait = d
				}
			}
			if wait < time.Millisecond {
				wait = time.Millisecond
			}
			timer := time.NewTimer(wait)
			select {
			case <-wakeCh:
			case <-timer.C:
			}
			timer.Stop()
			continue
		}
		r := runEpochJob(t.run.sess, t.job, nil)
		c.reg.Counter("local_fallback_epochs").Inc()
		c.mu.Lock()
		t.inflight--
		if t.done {
			c.mu.Unlock()
			continue
		}
		t.done = true
		t.queued = false
		ev := EpochVerdict{
			Index: t.index, Stats: r.stats, Fault: r.fault,
			Worker: "local-fallback", Attempts: t.attempts, WireBytes: t.wireBytes,
			WireBytesFull: t.fullBytes, WireBytesDelta: t.deltaBytes,
			DeltaShipped: t.deltaSent, DeltaFallbacks: t.deltaFalls,
		}
		c.reg.Counter("epochs_done").Inc()
		c.mu.Unlock()
		if t.run.journaled {
			c.cfg.Journal.verdictEmitted(t.run.key, t.index, verdictToWire(t.index, r).Marshal())
		}
		t.run.emit(ev)
		t.run.finishSettle(1)
	}
}

// janitor fails queued epochs that nothing can ever dispatch: local
// fallback disabled and no live connection for a full JobTimeout. Without
// it an audit against a dead fleet would block forever instead of
// surfacing a transport error.
func (c *Coordinator) janitor() {
	defer c.wg.Done()
	tick := c.cfg.JobTimeout / 8
	if tick < 10*time.Millisecond {
		tick = 10 * time.Millisecond
	}
	if tick > time.Second {
		tick = time.Second
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	for {
		select {
		case <-c.closedCh:
			return
		case <-ticker.C:
		}
		now := time.Now()
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return
		}
		var failed []*coordTask
		if c.cfg.DisableLocalFallback && c.liveConnsLocked() == 0 {
			if c.starvedSince.IsZero() {
				c.starvedSince = now
			}
			if now.Sub(c.starvedSince) >= c.cfg.JobTimeout {
				out := c.queue[:0]
				for _, t := range c.queue {
					if t.done || !t.queued {
						continue
					}
					if t.inflight == 0 {
						failed = append(failed, c.failTaskLocked(t,
							fmt.Errorf("audit: epoch %d undispatchable: no live workers and local fallback is disabled", t.index), ""))
						continue
					}
					out = append(out, t)
				}
				c.queue = out
				c.reg.Gauge("queue_depth").Set(int64(len(c.queue)))
			}
		} else {
			c.starvedSince = time.Time{}
		}
		c.mu.Unlock()
		c.failTasks(failed)
	}
}
