package audit

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/wire"
)

// This file is the coordinator's write-ahead epoch journal: the crash
// durability behind `avm-audit -coordinate -journal <dir>`. The journal
// records three events — a run entering the queue, an epoch verdict
// reaching the router, a run settling cleanly — each as a wire.JournalRecord
// framed on disk as
//
//	uint32 BE body length | uint32 BE CRC-32 (IEEE) of body | body
//
// appended to a single file (epochs.wal) and fsynced in batches. Replay is
// truncation-tolerant: a short header, short body or checksum mismatch ends
// the valid prefix (a torn tail from the crash being recovered from), and
// opening for writing truncates the file back to that prefix so new records
// never land after garbage. Recovery never trusts the journal for audit
// *inputs* — a restarted coordinator reconstructs its runs from the same
// recording (snapshots + log) it always reads, derives the same epoch
// partition, and therefore the same run key; the journal only tells it
// which of those epochs already have durable verdicts, which are re-emitted
// as stored instead of re-dispatched. Stored verdicts still flow through
// the router's spot recheck, so a journal tampered with between runs is
// caught the same way a lying worker is.

// journalFileName is the single append-only log inside a journal directory.
const journalFileName = "epochs.wal"

// journalRun is the replayed/live state of one run key.
type journalRun struct {
	node      string
	epochs    int
	verdicts  map[int][]byte // epoch index → AuditVerdict encoding
	completed bool
}

// Journal is an append-only, fsync-batched write-ahead journal of epoch
// verdicts, keyed by deterministic run keys. Open with OpenJournal, hand
// it to a Coordinator via CoordinatorConfig.Journal, Close after the
// coordinator. All methods are safe for concurrent use.
type Journal struct {
	// SyncEvery fsyncs after this many appended records. <= 0 selects 16.
	SyncEvery int
	// SyncInterval fsyncs when this long has passed since the last fsync,
	// checked at each append. <= 0 selects 50ms.
	SyncInterval time.Duration

	mu       sync.Mutex
	path     string
	f        *os.File
	bytes    int64
	unsynced int
	lastSync time.Time
	runs     map[[32]byte]*journalRun
	reg      *metrics.Registry // set by the adopting coordinator; may be nil
}

// OpenJournal opens (creating if needed) the journal in dir, replays the
// existing log up to its valid prefix, and compacts completed runs away.
// The returned journal holds every pending run's durable verdicts, ready
// for the coordinator's resume path.
func OpenJournal(dir string) (*Journal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("audit: journal dir: %w", err)
	}
	j := &Journal{path: filepath.Join(dir, journalFileName)}
	raw, err := os.ReadFile(j.path)
	if err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("audit: reading journal: %w", err)
	}
	var prefix int64
	j.runs, prefix = replayJournal(raw)

	// Compact: rewrite only the live runs' records, atomically, so the file
	// stays bounded by pending work and a torn tail never precedes new
	// appends. Skipped when the valid prefix is already exactly the live
	// state (the common clean-start case).
	compacted := marshalJournalRuns(j.runs)
	if int64(len(compacted)) != prefix || prefix != int64(len(raw)) {
		tmp := j.path + ".tmp"
		if err := os.WriteFile(tmp, compacted, 0o644); err != nil {
			return nil, fmt.Errorf("audit: compacting journal: %w", err)
		}
		if err := os.Rename(tmp, j.path); err != nil {
			return nil, fmt.Errorf("audit: compacting journal: %w", err)
		}
	}
	f, err := os.OpenFile(j.path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("audit: opening journal: %w", err)
	}
	j.f = f
	j.bytes = int64(len(compacted))
	j.lastSync = time.Now()
	return j, nil
}

// replayJournal decodes records from the front of raw, stopping at the
// first torn or corrupt record, and folds them into per-run state. It
// returns the state and the byte length of the valid prefix.
func replayJournal(raw []byte) (map[[32]byte]*journalRun, int64) {
	runs := make(map[[32]byte]*journalRun)
	var off int64
	b := raw
	for {
		body, rest, ok := nextJournalFrame(b)
		if !ok {
			break
		}
		rec, err := wire.ParseJournalRecord(body)
		if err != nil {
			// The frame checksummed clean but does not decode: treat it as
			// the end of the usable prefix rather than skipping — records
			// after a malformed one have no trustworthy interpretation.
			break
		}
		switch rec.Kind {
		case wire.JournalRunEnqueued:
			// A re-enqueue of a completed key starts the run over.
			runs[rec.RunKey] = &journalRun{
				node: rec.Node, epochs: int(rec.Epochs),
				verdicts: make(map[int][]byte),
			}
		case wire.JournalVerdictEmitted:
			if run := runs[rec.RunKey]; run != nil && !run.completed {
				run.verdicts[int(rec.Index)] = rec.Verdict
			}
		case wire.JournalRunCompleted:
			if run := runs[rec.RunKey]; run != nil {
				run.completed = true
			}
		}
		off += int64(len(b) - len(rest))
		b = rest
	}
	// Completed runs are tombstones; drop them so resume never sees them
	// and compaction writes only pending work.
	for key, run := range runs {
		if run.completed {
			delete(runs, key)
		}
	}
	return runs, off
}

// nextJournalFrame splits one length+checksum framed record off b.
func nextJournalFrame(b []byte) (body, rest []byte, ok bool) {
	if len(b) < 8 {
		return nil, nil, false
	}
	n := binary.BigEndian.Uint32(b)
	if n == 0 || n > wire.MaxDistFrame || uint64(len(b)-8) < uint64(n) {
		return nil, nil, false
	}
	sum := binary.BigEndian.Uint32(b[4:])
	body = b[8 : 8+n]
	if crc32.ChecksumIEEE(body) != sum {
		return nil, nil, false
	}
	return body, b[8+n:], true
}

// appendJournalFrame frames one record body for disk.
func appendJournalFrame(dst, body []byte) []byte {
	var hdr [8]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(body)))
	binary.BigEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(body))
	return append(append(dst, hdr[:]...), body...)
}

// marshalJournalRuns renders the live runs as a fresh journal image, in a
// deterministic order (keyed bytes) so compaction is reproducible.
func marshalJournalRuns(runs map[[32]byte]*journalRun) []byte {
	keys := make([][32]byte, 0, len(runs))
	for key := range runs {
		keys = append(keys, key)
	}
	for i := 1; i < len(keys); i++ { // insertion sort; journals hold few runs
		for k := i; k > 0 && string(keys[k][:]) < string(keys[k-1][:]); k-- {
			keys[k], keys[k-1] = keys[k-1], keys[k]
		}
	}
	var out []byte
	for _, key := range keys {
		run := runs[key]
		out = appendJournalFrame(out, (&wire.JournalRecord{
			Kind: wire.JournalRunEnqueued, RunKey: key,
			Node: run.node, Epochs: uint64(run.epochs),
		}).Marshal())
		idxs := make([]int, 0, len(run.verdicts))
		for idx := range run.verdicts {
			idxs = append(idxs, idx)
		}
		for i := 1; i < len(idxs); i++ {
			for k := i; k > 0 && idxs[k] < idxs[k-1]; k-- {
				idxs[k], idxs[k-1] = idxs[k-1], idxs[k]
			}
		}
		for _, idx := range idxs {
			out = appendJournalFrame(out, (&wire.JournalRecord{
				Kind: wire.JournalVerdictEmitted, RunKey: key,
				Index: uint64(idx), Verdict: run.verdicts[idx],
			}).Marshal())
		}
	}
	return out
}

// attach points the journal's counters at the adopting coordinator's
// registry and publishes the replayed state.
func (j *Journal) attach(reg *metrics.Registry) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.reg = reg
	reg.Gauge("journal_bytes").Set(j.bytes)
	var durable int64
	for _, run := range j.runs {
		durable += int64(len(run.verdicts))
	}
	reg.Gauge("journal_pending_runs").Set(int64(len(j.runs)))
	reg.Gauge("journal_durable_verdicts").Set(durable)
}

// append writes one record, maintaining the in-memory state, and fsyncs
// when the batch policy says so. Write errors are swallowed after marking
// the journal broken-by-counter: the journal is a durability aid, and a
// full disk must degrade the coordinator to unjournaled operation, not
// fail audits that are otherwise succeeding.
func (j *Journal) append(rec *wire.JournalRecord, force bool) {
	frame := appendJournalFrame(nil, rec.Marshal())
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return
	}
	if _, err := j.f.Write(frame); err != nil {
		if j.reg != nil {
			j.reg.Counter("journal_write_errors").Inc()
		}
		return
	}
	j.bytes += int64(len(frame))
	j.unsynced++
	if j.reg != nil {
		j.reg.Gauge("journal_bytes").Set(j.bytes)
	}
	syncEvery := j.SyncEvery
	if syncEvery <= 0 {
		syncEvery = 16
	}
	syncInterval := j.SyncInterval
	if syncInterval <= 0 {
		syncInterval = 50 * time.Millisecond
	}
	if force || j.unsynced >= syncEvery || time.Since(j.lastSync) >= syncInterval {
		j.syncLocked()
	}
}

func (j *Journal) syncLocked() {
	if j.unsynced == 0 || j.f == nil {
		return
	}
	if err := j.f.Sync(); err == nil {
		j.unsynced = 0
		j.lastSync = time.Now()
		if j.reg != nil {
			j.reg.Counter("journal_fsyncs").Inc()
		}
	}
}

// runEnqueued journals a run entering the queue.
func (j *Journal) runEnqueued(key [32]byte, node string, epochs int) {
	j.mu.Lock()
	j.runs[key] = &journalRun{node: node, epochs: epochs, verdicts: make(map[int][]byte)}
	j.mu.Unlock()
	j.append(&wire.JournalRecord{
		Kind: wire.JournalRunEnqueued, RunKey: key, Node: node, Epochs: uint64(epochs),
	}, false)
}

// verdictEmitted journals one epoch verdict. Called before the verdict is
// handed to the router, so "durable" is never behind "emitted" by more
// than the unflushed batch.
func (j *Journal) verdictEmitted(key [32]byte, index int, verdict []byte) {
	j.mu.Lock()
	if run := j.runs[key]; run != nil {
		run.verdicts[index] = verdict
	}
	j.mu.Unlock()
	j.append(&wire.JournalRecord{
		Kind: wire.JournalVerdictEmitted, RunKey: key, Index: uint64(index), Verdict: verdict,
	}, false)
}

// runCompleted journals (and fsyncs) a run settling cleanly, tombstoning
// its verdicts.
func (j *Journal) runCompleted(key [32]byte) {
	j.mu.Lock()
	delete(j.runs, key)
	j.mu.Unlock()
	j.append(&wire.JournalRecord{Kind: wire.JournalRunCompleted, RunKey: key}, true)
}

// resume returns the durable verdicts of a pending run with this key, or
// nil when the key is unknown, completed, or recorded with a different
// epoch count (a recording that changed under the journal — nothing it
// stored can be trusted for the new partition).
func (j *Journal) resume(key [32]byte, epochs int) map[int][]byte {
	j.mu.Lock()
	defer j.mu.Unlock()
	run := j.runs[key]
	if run == nil || run.epochs != epochs {
		return nil
	}
	out := make(map[int][]byte, len(run.verdicts))
	for idx, v := range run.verdicts {
		out[idx] = v
	}
	return out
}

// Close flushes and closes the journal file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	j.syncLocked()
	err := j.f.Close()
	j.f = nil
	return err
}

// InspectJournal reads a journal directory without opening it for writing
// (no truncation, no compaction): the harness-side peek used by smoke
// tests to decide when enough verdicts are durable to kill the
// coordinator. It returns the pending run and durable verdict counts of
// the valid prefix.
func InspectJournal(dir string) (runs, verdicts int, err error) {
	raw, err := os.ReadFile(filepath.Join(dir, journalFileName))
	if err != nil {
		if os.IsNotExist(err) {
			return 0, 0, nil
		}
		return 0, 0, err
	}
	state, _ := replayJournal(raw)
	for _, run := range state {
		verdicts += len(run.verdicts)
	}
	return len(state), verdicts, nil
}

// runKeyFor derives the stable identity of an audit run: a digest over the
// audited node, the session parameters that shape replay, and the epoch
// partition (index, start identity, entry count per job). A restarted
// coordinator re-deriving jobs from the same recording computes the same
// key; any change to the recording or the partition changes it, which is
// what keeps stale journal state from leaking into a different audit.
func runKeyFor(sess Session, jobs []*EpochJob) [32]byte {
	h := sha256.New()
	var buf [8 * 6]byte
	io.WriteString(h, string(sess.Node))
	binary.BigEndian.PutUint64(buf[:8], sess.RNGSeed)
	binary.BigEndian.PutUint64(buf[8:16], uint64(len(jobs)))
	h.Write(buf[:16])
	for _, job := range jobs {
		binary.BigEndian.PutUint64(buf[:8], uint64(job.Index))
		binary.BigEndian.PutUint64(buf[8:16], boolWord(job.Boot))
		binary.BigEndian.PutUint64(buf[16:24], uint64(job.StartSnap))
		binary.BigEndian.PutUint64(buf[24:32], job.StartSeq)
		binary.BigEndian.PutUint64(buf[32:40], uint64(len(job.Entries)))
		binary.BigEndian.PutUint64(buf[40:48], job.Cost)
		h.Write(buf[:48])
		h.Write(job.StartRoot[:])
	}
	var key [32]byte
	h.Sum(key[:0])
	return key
}

func boolWord(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
