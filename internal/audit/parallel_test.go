package audit_test

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/audit"
	"repro/internal/avmm"
	"repro/internal/game"
	"repro/internal/sig"
	"repro/internal/vm"
)

// Equivalence harness for the epoch-parallel audit engine: whatever the
// serial auditor concludes — pass, or a fault with a specific check and
// entry seq — the parallel engine must conclude at every worker count.

const (
	eqMatchNs = 6_000_000_000
	eqSnapNs  = 2_000_000_000
)

var eqWorkerCounts = []int{1, 2, 8}

// compareVerdicts fails the test when a result diverges from the serial
// auditor's verdict: pass/fail, fault check and entry, and (on passing
// runs) replay and syntactic stats must all match.
func compareVerdicts(t *testing.T, label string, serial, got *audit.Result) {
	t.Helper()
	if got.Passed != serial.Passed {
		t.Errorf("%s: passed=%v, serial passed=%v", label, got.Passed, serial.Passed)
		return
	}
	if serial.Fault != nil {
		if got.Fault == nil {
			t.Errorf("%s: no fault, serial faulted: %v", label, serial.Fault)
			return
		}
		if got.Fault.Check != serial.Fault.Check || got.Fault.EntrySeq != serial.Fault.EntrySeq {
			t.Errorf("%s: fault (%s, seq %d), serial fault (%s, seq %d)",
				label, got.Fault.Check, got.Fault.EntrySeq,
				serial.Fault.Check, serial.Fault.EntrySeq)
		}
	}
	if serial.Passed && got.Replay != serial.Replay {
		t.Errorf("%s: replay stats %+v, serial %+v", label, got.Replay, serial.Replay)
	}
	if got.Syntactic != serial.Syntactic {
		t.Errorf("%s: syntactic stats %+v, serial %+v", label, got.Syntactic, serial.Syntactic)
	}
}

// auditBothWays runs the serial, epoch-parallel and streaming audits of
// node and fails the test on any verdict divergence. It returns the serial
// result.
func auditBothWays(t *testing.T, s *game.Scenario, node string, label string) *audit.Result {
	t.Helper()
	serial, err := s.AuditNode(sig.NodeID(node))
	if err != nil {
		t.Fatalf("%s: serial audit: %v", label, err)
	}
	for _, workers := range eqWorkerCounts {
		par, err := s.AuditNodeParallel(sig.NodeID(node), workers)
		if err != nil {
			t.Fatalf("%s: parallel audit (%d workers): %v", label, workers, err)
		}
		compareVerdicts(t, fmt.Sprintf("%s: %d workers", label, workers), serial, par)

		stream, sstats, err := s.AuditNodeStream(sig.NodeID(node), workers, 0)
		if err != nil {
			t.Fatalf("%s: stream audit (%d workers): %v", label, workers, err)
		}
		compareVerdicts(t, fmt.Sprintf("%s: stream %d workers", label, workers), serial, stream)
		if sstats.PeakResidentEntries > sstats.Window {
			t.Errorf("%s: stream %d workers: %d resident entries exceed window %d",
				label, workers, sstats.PeakResidentEntries, sstats.Window)
		}
	}
	// The distributed backends must reach the same verdict as well: the
	// in-process pool behind the router seam, a lossy simulated network,
	// and real loopback TCP workers.
	distBothWays(t, s, node, label, serial)
	return serial
}

func TestParallelAuditEquivalenceClean(t *testing.T) {
	s, err := game.NewScenario(game.ScenarioConfig{
		Players: 2, Mode: avmm.ModeAVMMRSA, Cost: avmm.DefaultCostModel(),
		Seed: 7, SnapshotEveryNs: eqSnapNs, FakeSignatures: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(2 * eqMatchNs)
	for _, node := range []string{"player1", "player2"} {
		res := auditBothWays(t, s, node, "clean/"+node)
		if !res.Passed {
			t.Fatalf("clean run: serial audit of %s failed: %v", node, res.Fault)
		}
		if res.Replay.SnapshotsVerified == 0 {
			t.Fatalf("clean run of %s verified no snapshots; epochs were not exercised", node)
		}
	}
}

// TestAuditEquivalenceStaleCorruptedPage: a machine that corrupts a page of
// its own state which the guest never touches again commits snapshot roots
// over the corrupted contents, while the replica — whose incremental live
// tree keeps that page's hash from its verified seed and never refreshes it
// (the page is never re-dirtied) — derives the honest root. The audit must
// flag the first snapshot committed after the corruption, identically on
// the serial, epoch-parallel and streaming engines. This is the scenario a
// buggy incremental verifier would miss: the corruption lives entirely in
// leaves outside every dirty set the replay ever folds.
func TestAuditEquivalenceStaleCorruptedPage(t *testing.T) {
	cfg := game.ScenarioConfig{
		Players: 2, Mode: avmm.ModeAVMMRSA, Cost: avmm.DefaultCostModel(),
		Seed: 99, SnapshotEveryNs: eqSnapNs, FakeSignatures: true,
	}
	const pokeNs = eqMatchNs
	const endNs = 2 * eqMatchNs

	// Dry run: find a page of player1's machine that nothing — no guest
	// fetch, load or store, no host write — touches after the poke point.
	// Corrupting such a page cannot perturb execution (so the dry run's
	// touched set holds for the corrupted run too) and it stays stale for
	// the rest of the match.
	dry, err := game.NewScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dry.Run(pokeNs)
	mach := dry.Player(1).Machine
	mach.TrackAccess(true)
	floor := mach.DirtyEpoch()
	dry.Run(endNs)
	touched := make(map[int]bool)
	for _, p := range mach.AccessedPages() {
		touched[p] = true
	}
	for _, p := range mach.DirtyPagesSince(floor) {
		touched[p] = true
	}
	stale := -1
	for p := 0; p < mach.NumPages(); p++ {
		if !touched[p] {
			stale = p
			break
		}
	}
	if stale < 0 {
		t.Fatal("every page is touched after the poke point; no stale page to corrupt")
	}

	// Real run: flip a byte of that page mid-match through the host write
	// path, so the monitor's own dirty tracking folds the corrupted page
	// into its next snapshot root — exactly what a machine tampering with
	// cold state looks like to an auditor.
	s, err := game.NewScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Run(pokeNs)
	target := s.Player(1)
	snapsBefore := target.Snaps.Count()
	addr := uint32(stale)*vm.PageSize + 17
	if err := target.Machine.WriteBytes(addr, []byte{target.Machine.Mem[addr] ^ 0xA5}); err != nil {
		t.Fatal(err)
	}
	s.Run(endNs)
	if target.Snaps.Count() <= snapsBefore {
		t.Fatal("no snapshot committed after the corruption; the scenario proves nothing")
	}
	// Staleness proof: the corrupted page enters exactly one increment (the
	// first snapshot after the poke) and is never re-captured.
	for k := snapsBefore + 1; k < target.Snaps.Count(); k++ {
		sn, err := target.Snaps.Snapshot(k)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := sn.MemPages[stale]; ok {
			t.Fatalf("page %d re-captured at snapshot %d; it is not stale", stale, k)
		}
	}

	serial := auditBothWays(t, s, "player1", "stale-corrupt/player1")
	if serial.Passed {
		t.Fatal("corrupted stale page escaped the audit")
	}
	if serial.Fault.Check != audit.CheckSnapshot {
		t.Fatalf("fault check = %v, want %v (detail: %s)", serial.Fault.Check, audit.CheckSnapshot, serial.Fault.Detail)
	}
	if !strings.Contains(serial.Fault.Detail, "committed snapshot root") {
		t.Fatalf("fault is not a replayed-root mismatch: %s", serial.Fault.Detail)
	}
	honest := auditBothWays(t, s, "player2", "stale-corrupt/player2")
	if !honest.Passed {
		t.Errorf("honest player failed audit: %v", honest.Fault)
	}
}

func TestParallelAuditEquivalenceCheats(t *testing.T) {
	if testing.Short() {
		t.Skip("26 matches; skipped in -short")
	}
	for _, cheat := range game.Catalog() {
		cheat := cheat
		t.Run(cheat.Name, func(t *testing.T) {
			s, err := game.NewScenario(game.ScenarioConfig{
				Players: 2, Mode: avmm.ModeAVMMRSA, Cost: avmm.DefaultCostModel(),
				Seed: 2024, CheatPlayer: 1, Cheat: cheat,
				SnapshotEveryNs: eqMatchNs / 3, FakeSignatures: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			s.Run(eqMatchNs)
			auditBothWays(t, s, "player1", "cheater/"+cheat.Name)
			honest := auditBothWays(t, s, "player2", "honest/"+cheat.Name)
			if !honest.Passed {
				t.Errorf("honest player failed audit during %q match: %v", cheat.Name, honest.Fault)
			}
		})
	}
}
