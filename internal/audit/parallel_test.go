package audit_test

import (
	"fmt"
	"testing"

	"repro/internal/audit"
	"repro/internal/avmm"
	"repro/internal/game"
	"repro/internal/sig"
)

// Equivalence harness for the epoch-parallel audit engine: whatever the
// serial auditor concludes — pass, or a fault with a specific check and
// entry seq — the parallel engine must conclude at every worker count.

const (
	eqMatchNs = 6_000_000_000
	eqSnapNs  = 2_000_000_000
)

var eqWorkerCounts = []int{1, 2, 8}

// compareVerdicts fails the test when a result diverges from the serial
// auditor's verdict: pass/fail, fault check and entry, and (on passing
// runs) replay and syntactic stats must all match.
func compareVerdicts(t *testing.T, label string, serial, got *audit.Result) {
	t.Helper()
	if got.Passed != serial.Passed {
		t.Errorf("%s: passed=%v, serial passed=%v", label, got.Passed, serial.Passed)
		return
	}
	if serial.Fault != nil {
		if got.Fault == nil {
			t.Errorf("%s: no fault, serial faulted: %v", label, serial.Fault)
			return
		}
		if got.Fault.Check != serial.Fault.Check || got.Fault.EntrySeq != serial.Fault.EntrySeq {
			t.Errorf("%s: fault (%s, seq %d), serial fault (%s, seq %d)",
				label, got.Fault.Check, got.Fault.EntrySeq,
				serial.Fault.Check, serial.Fault.EntrySeq)
		}
	}
	if serial.Passed && got.Replay != serial.Replay {
		t.Errorf("%s: replay stats %+v, serial %+v", label, got.Replay, serial.Replay)
	}
	if got.Syntactic != serial.Syntactic {
		t.Errorf("%s: syntactic stats %+v, serial %+v", label, got.Syntactic, serial.Syntactic)
	}
}

// auditBothWays runs the serial, epoch-parallel and streaming audits of
// node and fails the test on any verdict divergence. It returns the serial
// result.
func auditBothWays(t *testing.T, s *game.Scenario, node string, label string) *audit.Result {
	t.Helper()
	serial, err := s.AuditNode(sig.NodeID(node))
	if err != nil {
		t.Fatalf("%s: serial audit: %v", label, err)
	}
	for _, workers := range eqWorkerCounts {
		par, err := s.AuditNodeParallel(sig.NodeID(node), workers)
		if err != nil {
			t.Fatalf("%s: parallel audit (%d workers): %v", label, workers, err)
		}
		compareVerdicts(t, fmt.Sprintf("%s: %d workers", label, workers), serial, par)

		stream, sstats, err := s.AuditNodeStream(sig.NodeID(node), workers, 0)
		if err != nil {
			t.Fatalf("%s: stream audit (%d workers): %v", label, workers, err)
		}
		compareVerdicts(t, fmt.Sprintf("%s: stream %d workers", label, workers), serial, stream)
		if sstats.PeakResidentEntries > sstats.Window {
			t.Errorf("%s: stream %d workers: %d resident entries exceed window %d",
				label, workers, sstats.PeakResidentEntries, sstats.Window)
		}
	}
	return serial
}

func TestParallelAuditEquivalenceClean(t *testing.T) {
	s, err := game.NewScenario(game.ScenarioConfig{
		Players: 2, Mode: avmm.ModeAVMMRSA, Cost: avmm.DefaultCostModel(),
		Seed: 7, SnapshotEveryNs: eqSnapNs, FakeSignatures: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(2 * eqMatchNs)
	for _, node := range []string{"player1", "player2"} {
		res := auditBothWays(t, s, node, "clean/"+node)
		if !res.Passed {
			t.Fatalf("clean run: serial audit of %s failed: %v", node, res.Fault)
		}
		if res.Replay.SnapshotsVerified == 0 {
			t.Fatalf("clean run of %s verified no snapshots; epochs were not exercised", node)
		}
	}
}

func TestParallelAuditEquivalenceCheats(t *testing.T) {
	if testing.Short() {
		t.Skip("26 matches; skipped in -short")
	}
	for _, cheat := range game.Catalog() {
		cheat := cheat
		t.Run(cheat.Name, func(t *testing.T) {
			s, err := game.NewScenario(game.ScenarioConfig{
				Players: 2, Mode: avmm.ModeAVMMRSA, Cost: avmm.DefaultCostModel(),
				Seed: 2024, CheatPlayer: 1, Cheat: cheat,
				SnapshotEveryNs: eqMatchNs / 3, FakeSignatures: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			s.Run(eqMatchNs)
			auditBothWays(t, s, "player1", "cheater/"+cheat.Name)
			honest := auditBothWays(t, s, "player2", "honest/"+cheat.Name)
			if !honest.Passed {
				t.Errorf("honest player failed audit during %q match: %v", cheat.Name, honest.Fault)
			}
		})
	}
}
