package audit_test

import (
	"testing"

	"repro/internal/audit"
	"repro/internal/avmm"
	"repro/internal/game"
	"repro/internal/sig"
)

// Equivalence harness for the epoch-parallel audit engine: whatever the
// serial auditor concludes — pass, or a fault with a specific check and
// entry seq — the parallel engine must conclude at every worker count.

const (
	eqMatchNs = 6_000_000_000
	eqSnapNs  = 2_000_000_000
)

var eqWorkerCounts = []int{1, 2, 8}

// auditBothWays runs the serial and parallel audits of node and fails the
// test on any verdict divergence. It returns the serial result.
func auditBothWays(t *testing.T, s *game.Scenario, node string, label string) *audit.Result {
	t.Helper()
	serial, err := s.AuditNode(sig.NodeID(node))
	if err != nil {
		t.Fatalf("%s: serial audit: %v", label, err)
	}
	for _, workers := range eqWorkerCounts {
		par, err := s.AuditNodeParallel(sig.NodeID(node), workers)
		if err != nil {
			t.Fatalf("%s: parallel audit (%d workers): %v", label, workers, err)
		}
		if par.Passed != serial.Passed {
			t.Errorf("%s: %d workers: passed=%v, serial passed=%v",
				label, workers, par.Passed, serial.Passed)
			continue
		}
		if serial.Fault != nil {
			if par.Fault == nil {
				t.Errorf("%s: %d workers: no fault, serial faulted: %v", label, workers, serial.Fault)
				continue
			}
			if par.Fault.Check != serial.Fault.Check || par.Fault.EntrySeq != serial.Fault.EntrySeq {
				t.Errorf("%s: %d workers: fault (%s, seq %d), serial fault (%s, seq %d)",
					label, workers, par.Fault.Check, par.Fault.EntrySeq,
					serial.Fault.Check, serial.Fault.EntrySeq)
			}
		}
		if serial.Passed && par.Replay != serial.Replay {
			t.Errorf("%s: %d workers: replay stats %+v, serial %+v",
				label, workers, par.Replay, serial.Replay)
		}
		if par.Syntactic != serial.Syntactic {
			t.Errorf("%s: %d workers: syntactic stats %+v, serial %+v",
				label, workers, par.Syntactic, serial.Syntactic)
		}
	}
	return serial
}

func TestParallelAuditEquivalenceClean(t *testing.T) {
	s, err := game.NewScenario(game.ScenarioConfig{
		Players: 2, Mode: avmm.ModeAVMMRSA, Cost: avmm.DefaultCostModel(),
		Seed: 7, SnapshotEveryNs: eqSnapNs, FakeSignatures: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(2 * eqMatchNs)
	for _, node := range []string{"player1", "player2"} {
		res := auditBothWays(t, s, node, "clean/"+node)
		if !res.Passed {
			t.Fatalf("clean run: serial audit of %s failed: %v", node, res.Fault)
		}
		if res.Replay.SnapshotsVerified == 0 {
			t.Fatalf("clean run of %s verified no snapshots; epochs were not exercised", node)
		}
	}
}

func TestParallelAuditEquivalenceCheats(t *testing.T) {
	if testing.Short() {
		t.Skip("26 matches; skipped in -short")
	}
	for _, cheat := range game.Catalog() {
		cheat := cheat
		t.Run(cheat.Name, func(t *testing.T) {
			s, err := game.NewScenario(game.ScenarioConfig{
				Players: 2, Mode: avmm.ModeAVMMRSA, Cost: avmm.DefaultCostModel(),
				Seed: 2024, CheatPlayer: 1, Cheat: cheat,
				SnapshotEveryNs: eqMatchNs / 3, FakeSignatures: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			s.Run(eqMatchNs)
			auditBothWays(t, s, "player1", "cheater/"+cheat.Name)
			honest := auditBothWays(t, s, "player2", "honest/"+cheat.Name)
			if !honest.Passed {
				t.Errorf("honest player failed audit during %q match: %v", cheat.Name, honest.Fault)
			}
		})
	}
}
