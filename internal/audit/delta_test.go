package audit_test

import (
	"strings"
	"testing"
	"time"

	"repro/internal/audit"
	"repro/internal/avmm"
	"repro/internal/game"
	"repro/internal/logcomp"
	"repro/internal/netsim"
	"repro/internal/snapshot"
	"repro/internal/tevlog"
)

// Delta-shipped job dispatch: after the first full state per (connection,
// run), epoch jobs carry only dirty-page increments plus Merkle fold
// proofs. These tests pin the three promises of that design: verdicts stay
// byte-identical to the serial engine on every backend, shipped bytes
// actually shrink, and a lying coordinator — one that doctors a delta — is
// caught at fold-verify time on the worker, before any replay.

// deltaOn is the engine-options fragment every delta-enabled dist audit in
// this file shares.
func deltaOn() audit.EngineOptions {
	return audit.EngineOptions{DeltaJobs: true}
}

// deltaScenario records a match with snapshots dense enough that every
// worker in a three-worker fleet sees several consecutive epochs — the
// regime where delta shipping actually engages.
func deltaScenario(t *testing.T, cheat string) *game.Scenario {
	t.Helper()
	cfg := game.ScenarioConfig{
		Players: 2, Mode: avmm.ModeAVMMRSA, Cost: avmm.DefaultCostModel(),
		Seed: 4242, SnapshotEveryNs: 500_000_000, FakeSignatures: true,
	}
	if cheat != "" {
		c, err := game.CatalogByName(cheat)
		if err != nil {
			t.Fatal(err)
		}
		cfg.CheatPlayer = 1
		cfg.Cheat = c
	}
	s, err := game.NewScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Run(6_000_000_000)
	return s
}

// TestDistDeltaJobsEquivalence: with delta jobs on, the TCP, netsim and
// coordinator backends must match the serial verdict byte for byte, for a
// clean log and for a cheater; on the clean run some jobs must actually
// ship delta-encoded and the byte split must be visible in the stats.
func TestDistDeltaJobsEquivalence(t *testing.T) {
	for _, tc := range []struct {
		name  string
		cheat string
	}{{"clean", ""}, {"cheater", "aimbot"}} {
		t.Run(tc.name, func(t *testing.T) {
			s := deltaScenario(t, tc.cheat)
			serial, err := s.AuditNode("player1")
			if err != nil {
				t.Fatal(err)
			}

			tcp, dstats, err := s.AuditNodeDist("player1", audit.DistOptions{
				Backend:       &audit.TCPBackend{Addrs: sharedFleet(t), JobTimeout: 30 * time.Second},
				EngineOptions: deltaOn(),
			})
			if err != nil {
				t.Fatalf("tcp delta audit: %v", err)
			}
			compareVerdicts(t, "delta tcp "+tc.name, serial, tcp)
			if tc.cheat == "" {
				if dstats.DeltaJobsShipped == 0 {
					t.Errorf("tcp: no jobs shipped delta-encoded (stats %+v)", dstats)
				}
				if dstats.WireBytesDelta == 0 || dstats.WireBytesFull == 0 {
					t.Errorf("tcp: byte split not reported: full=%d delta=%d",
						dstats.WireBytesFull, dstats.WireBytesDelta)
				}
				fullJobs := dstats.Dispatched - dstats.DeltaJobsShipped
				if fullJobs > 0 && dstats.DeltaJobsShipped > 0 {
					avgFull := dstats.WireBytesFull / fullJobs
					avgDelta := dstats.WireBytesDelta / dstats.DeltaJobsShipped
					if avgDelta >= avgFull {
						t.Errorf("tcp: average delta job (%d B) is not smaller than average full job (%d B)",
							avgDelta, avgFull)
					}
				}
			}

			// Lossy simulated network: verdict equivalence under drops and
			// reordering, with the NeedState fallback live (a retransmit can
			// land on a worker that never saw the base).
			sim, _, err := s.AuditNodeDist("player1", audit.DistOptions{
				Backend:       &audit.NetsimBackend{Net: lossyNet(77), Workers: 3, MaxAttempts: 10},
				EngineOptions: deltaOn(),
			})
			if err != nil {
				t.Fatalf("netsim delta audit: %v", err)
			}
			compareVerdicts(t, "delta netsim "+tc.name, serial, sim)

			// Clean simulated network: the rotation is deterministic, so
			// delta shipping must be observable.
			quiet, qstats, err := s.AuditNodeDist("player1", audit.DistOptions{
				Backend: &audit.NetsimBackend{
					Net:     netsim.New(netsim.Config{BaseLatencyNs: 96_000, Seed: 7}),
					Workers: 3,
				},
				EngineOptions: deltaOn(),
			})
			if err != nil {
				t.Fatalf("quiet netsim delta audit: %v", err)
			}
			compareVerdicts(t, "delta netsim quiet "+tc.name, serial, quiet)
			if tc.cheat == "" && qstats.DeltaJobsShipped == 0 {
				t.Errorf("quiet netsim: no jobs shipped delta-encoded (stats %+v)", qstats)
			}

			coord := testCoordinator(audit.CoordinatorConfig{DisableLocalFallback: true})
			defer coord.Close()
			for _, addr := range sharedFleet(t) {
				coord.AddWorker(addr)
			}
			cres, cstats, err := s.AuditNodeDist("player1", audit.DistOptions{
				Backend:       coord.Backend(),
				EngineOptions: deltaOn(),
			})
			if err != nil {
				t.Fatalf("coordinator delta audit: %v", err)
			}
			compareVerdicts(t, "delta coordinator "+tc.name, serial, cres)
			if tc.cheat == "" && cstats.DeltaJobsShipped == 0 {
				t.Errorf("coordinator: no jobs shipped delta-encoded (stats %+v)", cstats)
			}
		})
	}
}

// corruptDeltaSource wraps a monitor's snapshot store with a delta source
// that flips one byte of one dirty page of delta k — the lying coordinator.
// The returned source never mutates the store's own structures.
func corruptDeltaSource(target *avmm.Monitor, k uint32) func(uint32) (*snapshot.Delta, error) {
	return func(q uint32) (*snapshot.Delta, error) {
		d, err := target.Snaps.Delta(int(q))
		if err != nil {
			return nil, err
		}
		if q != k || len(d.Pages) == 0 {
			return d, nil
		}
		doctored := *d
		doctored.Pages = append([]snapshot.DeltaPage(nil), d.Pages...)
		pg := doctored.Pages[0]
		pg.Data = append([]byte(nil), pg.Data...)
		pg.Data[0] ^= 0xFF
		doctored.Pages[0] = pg
		return &doctored, nil
	}
}

// TestDistTamperedDeltaCaught: the coordinator ships a doctored delta (page
// data that no longer matches the fold proof). A single-worker fleet makes
// the chain deterministic: the worker must reject the chain at fold-verify
// time — before replay — and the audit must surface the same snapshot-check
// fault class a corrupt full state produces, even though the underlying log
// is honest and the serial engine passes.
//
// The TCPBackend is deliberately absent: its dispatcher learns each epoch's
// verified end state from the verdict, so a contiguous single-connection run
// ships only empty chains and the doctored step is never requested. Delta
// steps flow on TCP only after work stealing or retries, which are timing-
// dependent; the deterministic tamper coverage therefore lives on the
// netsim and coordinator dispatchers, which advance their base only when
// they ship state and so always chain through the doctored delta.
func TestDistTamperedDeltaCaught(t *testing.T) {
	s := distScenario(t, "")
	target, auths, a, err := s.AuditInputs("player1")
	if err != nil {
		t.Fatal(err)
	}
	serial := a.AuditFull("player1", uint32(target.Index()), target.Log.Entries(), auths)
	if !serial.Passed {
		t.Fatalf("serial audit of the honest log failed: %v", serial.Fault)
	}
	if target.Snaps.Count() < 3 {
		t.Fatalf("need 3 snapshots for a delta chain, have %d", target.Snaps.Count())
	}
	materialize := func(snapIdx uint32) (*snapshot.Restored, error) {
		return target.Snaps.Materialize(int(snapIdx))
	}
	corrupt := corruptDeltaSource(target, 2)

	backends := []struct {
		name    string
		backend audit.EpochBackend
	}{
		{"netsim", &audit.NetsimBackend{
			Net:     netsim.New(netsim.Config{BaseLatencyNs: 96_000, Seed: 9}),
			Workers: 1,
		}},
	}
	coord := testCoordinator(audit.CoordinatorConfig{DisableLocalFallback: true})
	defer coord.Close()
	coord.AddWorker(sharedFleet(t)[0])
	backends = append(backends, struct {
		name    string
		backend audit.EpochBackend
	}{"coordinator", coord.Backend()})

	for _, b := range backends {
		res, astats, err := a.Audit(audit.AuditRequest{
			Node: "player1", NodeIdx: uint32(target.Index()), Engine: audit.EngineDist,
			Entries: target.Log.Entries(), Auths: auths, Backend: b.backend,
			Options: audit.EngineOptions{
				DeltaJobs: true, Materialize: materialize, DeltaSource: corrupt,
			},
		})
		dstats := astats.Dist
		if err != nil {
			t.Fatalf("%s: tampered-delta audit: %v", b.name, err)
		}
		if res.Passed {
			t.Fatalf("%s: doctored delta chain escaped fold verification", b.name)
		}
		if res.Fault.Check != audit.CheckSnapshot {
			t.Errorf("%s: fault check = %s, want %s (detail: %s)",
				b.name, res.Fault.Check, audit.CheckSnapshot, res.Fault.Detail)
		}
		if !strings.Contains(res.Fault.Detail, "delta step") {
			t.Errorf("%s: fault did not come from the fold verifier: %s", b.name, res.Fault.Detail)
		}
		if dstats.DeltaJobsShipped == 0 {
			t.Errorf("%s: the doctored delta was never shipped (stats %+v)", b.name, dstats)
		}
	}
}

// TestAdaptiveSnapshotCadence: the recorder's dirty-volume and
// instruction-budget thresholds must produce extra snapshots (bounding
// delta size and epoch replay time by construction), and a log recorded
// under them must still audit cleanly — serial and delta-dist alike.
func TestAdaptiveSnapshotCadence(t *testing.T) {
	record := func(cfg game.ScenarioConfig) *game.Scenario {
		cfg.Players = 2
		cfg.Mode = avmm.ModeAVMMRSA
		cfg.Cost = avmm.DefaultCostModel()
		cfg.Seed = 515
		cfg.FakeSignatures = true
		cfg.SnapshotEveryNs = 3_000_000_000
		s, err := game.NewScenario(cfg)
		if err != nil {
			t.Fatal(err)
		}
		s.Run(6_000_000_000)
		return s
	}

	base := record(game.ScenarioConfig{})
	baseSnaps := base.Player(1).Snaps.Count()
	if base.Player(1).AdaptiveSnapshots != 0 {
		t.Fatalf("baseline recorded %d adaptive snapshots with thresholds off",
			base.Player(1).AdaptiveSnapshots)
	}

	for _, tc := range []struct {
		name string
		cfg  game.ScenarioConfig
	}{
		{"instr-budget", game.ScenarioConfig{SnapshotMaxInstr: 150_000}},
		{"dirty-volume", game.ScenarioConfig{SnapshotMaxDirtyBytes: 8 * 1024}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := record(tc.cfg)
			mon := s.Player(1)
			if mon.AdaptiveSnapshots == 0 {
				t.Fatalf("threshold never fired (snapshots %d, baseline %d)",
					mon.Snaps.Count(), baseSnaps)
			}
			if mon.Snaps.Count() <= baseSnaps {
				t.Errorf("adaptive cadence took %d snapshots, baseline %d", mon.Snaps.Count(), baseSnaps)
			}
			serial, err := s.AuditNode("player1")
			if err != nil {
				t.Fatal(err)
			}
			if !serial.Passed {
				t.Fatalf("honest adaptive-cadence log failed audit: %v", serial.Fault)
			}
			res, dstats, err := s.AuditNodeDist("player1", audit.DistOptions{
				Backend:       &audit.TCPBackend{Addrs: sharedFleet(t), JobTimeout: 30 * time.Second},
				EngineOptions: deltaOn(),
			})
			if err != nil {
				t.Fatal(err)
			}
			compareVerdicts(t, "adaptive "+tc.name, serial, res)
			if dstats.DeltaJobsShipped == 0 {
				t.Errorf("no delta jobs over the denser snapshot sequence (stats %+v)", dstats)
			}
		})
	}
}

// TestAuditEngineEquivalenceCatalog is the unified-API equivalence suite:
// for every cheat in the Table 1 catalog, every Engine value reaches the
// serial engine's verdict — parallel and stream byte-identically on the
// full log, dist byte-identically on all four backends with delta jobs on,
// and chunk passing a spot-check of the honest player's first full chunk.
func TestAuditEngineEquivalenceCatalog(t *testing.T) {
	if testing.Short() {
		t.Skip("26 matches; skipped in -short")
	}
	coord := testCoordinator(audit.CoordinatorConfig{})
	defer coord.Close()
	for _, addr := range sharedFleet(t) {
		coord.AddWorker(addr)
	}
	for _, cheat := range game.Catalog() {
		cheat := cheat
		t.Run(cheat.Name, func(t *testing.T) {
			s := distScenario(t, cheat.Name)
			serial, err := s.AuditNode("player1")
			if err != nil {
				t.Fatal(err)
			}
			target, auths, a, err := s.AuditInputs("player1")
			if err != nil {
				t.Fatal(err)
			}
			entries := target.Log.Entries()
			materialize := func(snapIdx uint32) (*snapshot.Restored, error) {
				return target.Snaps.Materialize(int(snapIdx))
			}
			deltaSrc := func(k uint32) (*snapshot.Delta, error) {
				return target.Snaps.Delta(int(k))
			}
			run := func(label string, req audit.AuditRequest) {
				t.Helper()
				req.Node = "player1"
				req.NodeIdx = uint32(target.Index())
				req.Auths = auths
				res, _, err := a.Audit(req)
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				compareVerdicts(t, label+"/"+cheat.Name, serial, res)
			}

			run("engine-parallel", audit.AuditRequest{
				Engine: audit.EngineParallel, Entries: entries,
				Options: audit.EngineOptions{Workers: 4, Materialize: materialize},
			})
			run("engine-stream", audit.AuditRequest{
				Engine: audit.EngineStream, Compressed: logcomp.CompressEntries(entries),
				Options: audit.EngineOptions{Workers: 4, Materialize: materialize},
			})
			deltaOpts := audit.EngineOptions{
				DeltaJobs: true, Materialize: materialize, DeltaSource: deltaSrc,
			}
			run("engine-dist-pool", audit.AuditRequest{
				Engine: audit.EngineDist, Entries: entries, Options: deltaOpts,
			})
			run("engine-dist-tcp", audit.AuditRequest{
				Engine: audit.EngineDist, Entries: entries, Options: deltaOpts,
				Backend: &audit.TCPBackend{Addrs: sharedFleet(t), JobTimeout: 30 * time.Second},
			})
			run("engine-dist-netsim", audit.AuditRequest{
				Engine: audit.EngineDist, Entries: entries, Options: deltaOpts,
				Backend: &audit.NetsimBackend{Net: lossyNet(31), Workers: 3, MaxAttempts: 10},
			})
			run("engine-dist-coordinator", audit.AuditRequest{
				Engine: audit.EngineDist, Entries: entries, Options: deltaOpts,
				Backend: coord.Backend(),
			})

			// Chunk engine: spot-check the honest player's first full chunk
			// through the same unified entry point.
			honest, hauths, ha, err := s.AuditInputs("player2")
			if err != nil {
				t.Fatal(err)
			}
			hentries := honest.Log.All()
			points, err := audit.FindSnapshots(hentries)
			if err != nil {
				t.Fatal(err)
			}
			if len(points) >= 2 {
				start, end := points[0], points[1]
				restored, err := honest.Snaps.Materialize(int(start.SnapIdx))
				if err != nil {
					t.Fatal(err)
				}
				// The chunk ends at a snapshot entry, covered by the
				// machine's self-signed snapshot authenticator (§4.5).
				chunkAuths := append(append([]tevlog.Authenticator(nil), hauths...),
					honest.SnapshotAuths()...)
				cres, _, err := ha.Audit(audit.AuditRequest{
					Engine: audit.EngineChunk,
					Chunk: &audit.ChunkRequest{
						Node: "player2", NodeIdx: uint32(honest.Index()),
						Start: restored, StartRoot: start.Root, PrevHash: start.EntryHash,
						Entries: hentries[start.EntryIndex+1 : end.EntryIndex+1],
						Auths:   chunkAuths,
					},
				})
				if err != nil {
					t.Fatalf("engine-chunk: %v", err)
				}
				if !cres.Passed {
					t.Errorf("engine-chunk/%s: honest chunk failed: %v", cheat.Name, cres.Fault)
				}
			}
		})
	}
}
