package audit

import (
	"net"
	"testing"
	"time"

	"repro/internal/metrics"
)

// White-box coverage for the coordinator's dispatch primitives: the
// capped, deterministically jittered retry backoff, and takeLocked's
// prefer-untried-live-worker placement — the property that guarantees an
// epoch eventually reaches an honest worker in any fleet that has one.

func backoffTestCoordinator() *Coordinator {
	return &Coordinator{
		cfg: CoordinatorConfig{
			RetryBackoff:    10 * time.Millisecond,
			RetryMaxBackoff: 80 * time.Millisecond,
			MaxAttempts:     8,
			BackoffSeed:     42,
		},
		reg:     &metrics.Registry{},
		runs:    make(map[uint64]*coordRun),
		workers: make(map[string]*coordWorker),
	}
}

func TestBackoffDelayEnvelope(t *testing.T) {
	c := backoffTestCoordinator()
	// The exponential step for attempt a is base·2^(a-1), capped; the
	// jittered delay must land in [step/2, step).
	for attempt := 1; attempt <= 10; attempt++ {
		step := 10 * time.Millisecond << (attempt - 1)
		if step > c.cfg.RetryMaxBackoff {
			step = c.cfg.RetryMaxBackoff
		}
		for index := 0; index < 16; index++ {
			d := c.backoffDelay(index, attempt)
			if d < step/2 || d >= step {
				t.Fatalf("backoffDelay(%d, %d) = %v, want in [%v, %v)", index, attempt, d, step/2, step)
			}
		}
	}
}

func TestBackoffDelayCap(t *testing.T) {
	c := backoffTestCoordinator()
	for attempt := 4; attempt <= 40; attempt++ {
		if d := c.backoffDelay(3, attempt); d >= c.cfg.RetryMaxBackoff {
			t.Fatalf("backoffDelay(3, %d) = %v breaches the %v cap", attempt, d, c.cfg.RetryMaxBackoff)
		}
	}
}

func TestBackoffDelayDeterministicJitter(t *testing.T) {
	c := backoffTestCoordinator()
	// Same seed, index and attempt → same delay, always.
	for index := 0; index < 8; index++ {
		for attempt := 1; attempt <= 4; attempt++ {
			if a, b := c.backoffDelay(index, attempt), c.backoffDelay(index, attempt); a != b {
				t.Fatalf("backoffDelay(%d, %d) not deterministic: %v vs %v", index, attempt, a, b)
			}
		}
	}
	// And the jitter does spread across indices: all-equal delays would
	// mean synchronized retry stampedes.
	seen := make(map[time.Duration]bool)
	for index := 0; index < 32; index++ {
		seen[c.backoffDelay(index, 3)] = true
	}
	if len(seen) < 2 {
		t.Fatalf("jitter collapsed: 32 indices produced %d distinct delays", len(seen))
	}
}

// takeTestWorker registers a live (or dead) worker on the test
// coordinator; a net.Pipe stands in for a real connection.
func takeTestWorker(t *testing.T, c *Coordinator, addr string, live bool) *coordWorker {
	t.Helper()
	w := &coordWorker{c: c, addr: addr, stop: make(chan struct{}),
		inflight: make(map[taskKey]*coordDispatch), sentRuns: make(map[uint64]struct{})}
	if live {
		a, b := net.Pipe()
		t.Cleanup(func() { a.Close(); b.Close() })
		w.conn = a
	}
	c.workers[addr] = w
	return w
}

func takeTestTask(run *coordRun, index int, tried ...string) *coordTask {
	t := &coordTask{run: run, index: index, queued: true, triedOn: make(map[string]bool)}
	for _, addr := range tried {
		t.triedOn[addr] = true
	}
	return t
}

func TestTakeLockedPrefersUntriedLiveWorker(t *testing.T) {
	c := backoffTestCoordinator()
	w1 := takeTestWorker(t, c, "w1", true)
	w2 := takeTestWorker(t, c, "w2", true)
	run := &coordRun{skip: func(int) bool { return false }, total: 100, done: make(chan struct{})}

	task := takeTestTask(run, 0, "w1")
	c.queue = []*coordTask{task}
	now := time.Now()

	c.mu.Lock()
	picked, _, failed := c.takeLocked(w1, now)
	c.mu.Unlock()
	if picked != nil || len(failed) != 0 {
		t.Fatalf("w1 (already tried) got the task while untried live w2 exists: picked=%v", picked)
	}
	if !task.queued {
		t.Fatal("deferred task must stay queued for the untried worker")
	}

	c.mu.Lock()
	picked, _, _ = c.takeLocked(w2, now)
	c.mu.Unlock()
	if picked != task {
		t.Fatalf("untried live w2 did not get the task: picked=%v", picked)
	}
	if !task.triedOn["w2"] || task.attempts != 1 {
		t.Fatalf("placement bookkeeping off: triedOn=%v attempts=%d", task.triedOn, task.attempts)
	}
	_ = w2
}

func TestTakeLockedRetriesOnTriedWorkerWhenAlone(t *testing.T) {
	c := backoffTestCoordinator()
	w1 := takeTestWorker(t, c, "w1", true)
	takeTestWorker(t, c, "w2", false) // registered but dead: not "live untried"
	run := &coordRun{skip: func(int) bool { return false }, total: 100, done: make(chan struct{})}

	task := takeTestTask(run, 0, "w1")
	c.queue = []*coordTask{task}

	c.mu.Lock()
	picked, _, _ := c.takeLocked(w1, time.Now())
	c.mu.Unlock()
	if picked != task {
		t.Fatal("with no live untried alternative, the tried worker must retry the task")
	}
}

func TestTakeLockedLocalPoolIgnoresPlacement(t *testing.T) {
	c := backoffTestCoordinator()
	takeTestWorker(t, c, "w1", true)
	run := &coordRun{skip: func(int) bool { return false }, total: 100, done: make(chan struct{})}

	task := takeTestTask(run, 0, "w1")
	c.queue = []*coordTask{task}

	// The local-fallback pool (w == nil) has no placement history to
	// respect: it may pick up any eligible task.
	c.mu.Lock()
	picked, _, _ := c.takeLocked(nil, time.Now())
	c.mu.Unlock()
	if picked != task {
		t.Fatal("local pool must take the task regardless of triedOn")
	}
	if task.triedOn["local"] || len(task.triedOn) != 1 {
		t.Fatalf("local pickup must not record remote placement: triedOn=%v", task.triedOn)
	}
}

func TestTakeLockedHonorsEligibleAt(t *testing.T) {
	c := backoffTestCoordinator()
	w1 := takeTestWorker(t, c, "w1", true)
	run := &coordRun{skip: func(int) bool { return false }, total: 100, done: make(chan struct{})}

	now := time.Now()
	task := takeTestTask(run, 0)
	task.eligibleAt = now.Add(time.Minute)
	c.queue = []*coordTask{task}

	c.mu.Lock()
	picked, nextAt, _ := c.takeLocked(w1, now)
	c.mu.Unlock()
	if picked != nil {
		t.Fatal("backoff-delayed task dispatched before its eligibility")
	}
	if !nextAt.Equal(task.eligibleAt) {
		t.Fatalf("nextAt = %v, want the deferred task's eligibleAt %v", nextAt, task.eligibleAt)
	}
}
