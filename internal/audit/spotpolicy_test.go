package audit_test

import (
	"testing"

	"repro/internal/audit"
	"repro/internal/avmm"
	"repro/internal/dbapp"
	"repro/internal/snapshot"
)

func sourceFor(t *testing.T, s *dbapp.Scenario) *audit.MonitorSource {
	t.Helper()
	auths, err := s.ServerAuths()
	if err != nil {
		t.Fatal(err)
	}
	return &audit.MonitorSource{
		Node: "db-server", NodeIdx: 0,
		Entries: s.Server.Log.All(), Auths: auths,
		Materialize: func(k int) (*snapshot.Restored, error) {
			return s.Server.Snaps.Materialize(k)
		},
	}
}

func TestSpotPolicyHonestMachinePassesAnySubset(t *testing.T) {
	s, err := dbapp.NewScenario(dbapp.ScenarioConfig{
		Mode: avmm.ModeAVMMNoSig, Seed: 13, SnapshotEveryNs: 4_000_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(24_000_000_000)
	src := sourceFor(t, s)
	a := s.Auditor()
	for _, policy := range []audit.SpotPolicy{
		audit.RandomSample{Fraction256: 128, Seed: 3},
		audit.RecentFirst{K: 2},
		audit.InitializationPlus{Rest: audit.RandomSample{Fraction256: 64, Seed: 9}},
	} {
		out, err := a.SpotCheck(src, policy)
		if err != nil {
			t.Fatal(err)
		}
		if out.FaultFound {
			t.Fatalf("honest machine failed spot check (%T): %v", policy, out.FirstFault)
		}
		if out.SegmentsChecked == 0 {
			t.Fatalf("policy %T inspected nothing", policy)
		}
	}
}

func TestSpotPolicyDetectionDependsOnCoverage(t *testing.T) {
	// A fault that manifests in exactly one segment (the §3.5 trade-off):
	// the mid-run code patch lands in segment 1 of ~4. A policy that
	// includes that segment finds the fault; one that misses it does not.
	s, points := corruptServerMidRun(t)
	if len(points) < 3 {
		t.Fatal("need segments")
	}
	src := sourceFor(t, s)
	a := s.Auditor()

	// Full coverage always detects.
	out, err := a.SpotCheck(src, audit.RandomSample{Fraction256: 256, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !out.FaultFound {
		t.Fatal("full-coverage spot check missed the fault")
	}

	// Inspecting only the most recent segment misses it: the patch's state
	// became the committed baseline of later segments — exactly the
	// §3.5 caveat about undetected long-term state changes.
	out, err = a.SpotCheck(src, audit.RecentFirst{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if out.FaultFound {
		t.Fatal("recent-only policy unexpectedly saw the historical fault")
	}

	// The patch landed in the earliest segment — exactly the high-leverage
	// window the initialization-first policy exists for. It inspects only
	// segment 0 and still catches the fault.
	out, err = a.SpotCheck(src, audit.InitializationPlus{})
	if err != nil {
		t.Fatal(err)
	}
	if !out.FaultFound {
		t.Fatal("initialization-first policy missed the early-segment fault")
	}
	if out.SegmentsChecked != 1 {
		t.Fatalf("initialization-first inspected %d segments, want 1", out.SegmentsChecked)
	}
}

func TestSpotPolicyPickBounds(t *testing.T) {
	if got := (audit.RecentFirst{K: 10}).Pick(3); len(got) != 3 {
		t.Fatalf("RecentFirst overran: %v", got)
	}
	if got := (audit.InitializationPlus{}).Pick(0); got != nil {
		t.Fatalf("InitializationPlus on empty: %v", got)
	}
	picks := (audit.RandomSample{Fraction256: 128, Seed: 5}).Pick(100)
	if len(picks) < 20 || len(picks) > 80 {
		t.Fatalf("50%% sample picked %d of 100", len(picks))
	}
	again := (audit.RandomSample{Fraction256: 128, Seed: 5}).Pick(100)
	if len(picks) != len(again) {
		t.Fatal("random sample not deterministic")
	}
}

func TestSpotCheckMemoizesMaterialization(t *testing.T) {
	s, err := dbapp.NewScenario(dbapp.ScenarioConfig{
		Mode: avmm.ModeAVMMNoSig, Seed: 13, SnapshotEveryNs: 4_000_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(24_000_000_000)
	src := sourceFor(t, s)
	// Count the O(state) folds behind the memo: repeated passes over the
	// same source — the serial-then-parallel sweep of the audit benchmark —
	// must materialize each starting snapshot exactly once.
	calls := make(map[int]int)
	inner := src.Materialize
	src.Materialize = func(k int) (*snapshot.Restored, error) {
		calls[k]++
		return inner(k)
	}
	a := s.Auditor()
	all := audit.RecentFirst{K: 1 << 30}
	for pass := 0; pass < 3; pass++ {
		out, err := a.SpotCheckParallel(src, all, 1)
		if err != nil {
			t.Fatal(err)
		}
		if out.FaultFound {
			t.Fatalf("honest machine failed spot check: %v", out.FirstFault)
		}
	}
	if len(calls) == 0 {
		t.Fatal("no materializations at all; the spot check inspected nothing")
	}
	for k, n := range calls {
		if n != 1 {
			t.Fatalf("snapshot %d materialized %d times, want 1 (memo miss)", k, n)
		}
	}
}
