package audit_test

import (
	"testing"

	"repro/internal/audit"
	"repro/internal/avmm"
	"repro/internal/logcomp"
	"repro/internal/netsim"
	"repro/internal/sig"
	"repro/internal/snapshot"
	"repro/internal/tevlog"
	"repro/internal/vm"
)

// Self-modifying-code equivalence scenario: a guest that stores into the
// very code page it is executing from, flipping one instruction's immediate
// every loop iteration so its control flow — and therefore the recorded
// nondeterministic-input sequence — depends on code bytes written at run
// time. The interpreter's predecode cache must invalidate on those stores
// on both sides of the protocol: a recorder running stale code would log
// the unpatched behavior (caught here by the clock-read count), and a
// replica running stale code diverges from the honest log at the first
// event landmark (caught by the audits below, which must all pass and
// agree).

const selfModIters = 6000

// selfModImage assembles the guest. Per iteration: one clock read, then —
// if the patch site's immediate is nonzero — a second clock read; then the
// iteration counter's low bit is stored into the patch site's immediate
// word, so iterations alternate between the one-read and two-read paths
// forever after the first patch.
func selfModImage() *vm.Image {
	const loop = vm.CodeBase + 2*vm.InstrSize            // instruction 2
	patchImm := uint32(vm.CodeBase + 3*vm.InstrSize + 4) // imm word of instruction 3
	const skip = vm.CodeBase + 6*vm.InstrSize            // instruction 6
	prog := []vm.Instr{
		{Op: vm.OpMovi, Ra: 1, Imm: 0},            // 0: counter = 0
		{Op: vm.OpMovi, Ra: 7, Imm: 1},            // 1: mask
		{Op: vm.OpIn, Ra: 2, Imm: vm.PortClockLo}, // 2: loop: clock read (nondet)
		{Op: vm.OpMovi, Ra: 3, Imm: 0},            // 3: PATCH SITE: r3 = imm
		{Op: vm.OpJz, Ra: 3, Imm: skip},           // 4: skip the extra read when imm == 0
		{Op: vm.OpIn, Ra: 4, Imm: vm.PortClockLo}, // 5: extra clock read (nondet)
		{Op: vm.OpAddi, Ra: 1, Rb: 1, Imm: 1},     // 6: skip: counter++
		{Op: vm.OpAnd, Ra: 6, Rb: 1, Rc: 7},       // 7: r6 = counter & 1
		{Op: vm.OpMovi, Ra: 5, Imm: patchImm},     // 8
		{Op: vm.OpStore, Ra: 5, Rb: 6},            // 9: patch own code page
		{Op: vm.OpMovi, Ra: 8, Imm: selfModIters}, // 10
		{Op: vm.OpLtu, Ra: 9, Rb: 1, Rc: 8},       // 11
		{Op: vm.OpJnz, Ra: 9, Imm: loop},          // 12
		{Op: vm.OpHlt},                            // 13
	}
	var code []byte
	for _, ins := range prog {
		code = ins.Encode(code)
	}
	return &vm.Image{Name: "selfmod", Code: code, Entry: vm.CodeBase, MemSize: 64 * 1024}
}

func TestAuditEquivalenceSelfModifyingCode(t *testing.T) {
	img := selfModImage()
	net := netsim.New(netsim.Config{BaseLatencyNs: 100_000, Seed: 3})
	keys := sig.NewKeyStore()
	w := avmm.NewWorld(net, keys)
	mon, err := avmm.NewMonitor(avmm.Config{
		Node: "selfmod", Index: 0, Mode: avmm.ModeAVMMNoSig,
		Signer: sig.NullSigner{Node: "selfmod"}, Keys: keys,
		Image: img, Net: net, RNGSeed: 5,
		SnapshotEveryNs: 80_000_000, // several epochs over the run
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Add(mon); err != nil {
		t.Fatal(err)
	}
	if !w.RunUntil(w.AllHalted, 600_000_000_000) {
		t.Fatal("self-modifying guest did not halt")
	}
	if mon.Machine.FaultInfo != nil {
		t.Fatalf("guest faulted: %v", mon.Machine.FaultInfo)
	}

	// The alternation proof: iterations entered with a nonzero patched
	// immediate (every second one, starting with iteration 1) perform a
	// second clock read. A recorder running stale predecoded code would
	// never take that path and log selfModIters reads only.
	wantReads := uint64(selfModIters + selfModIters/2)
	if got := mon.Devs.ClockReads(); got != wantReads {
		t.Fatalf("guest performed %d clock reads, want %d; the patched code paths did not execute", got, wantReads)
	}
	if mon.Snaps.Count() < 3 {
		t.Fatalf("only %d snapshots; the log will not exercise epoch partitioning", mon.Snaps.Count())
	}

	head, err := mon.Log.LastAuthenticator()
	if err != nil {
		t.Fatal(err)
	}
	auths := []tevlog.Authenticator{head}
	a := &audit.Auditor{
		Keys: keys, RefImage: img, RNGSeed: 5,
		TamperEvident: true, VerifySignatures: false,
	}
	entries := mon.Log.Entries()
	materialize := func(snapIdx uint32) (*snapshot.Restored, error) {
		return mon.Snaps.Materialize(int(snapIdx))
	}

	serial := a.AuditFull("selfmod", 0, entries, auths)
	if !serial.Passed {
		t.Fatalf("serial audit of honest self-modifying guest failed: %v", serial.Fault)
	}
	if serial.Replay.SnapshotsVerified == 0 {
		t.Fatal("serial audit verified no snapshots")
	}
	for _, workers := range []int{1, 2, 8} {
		par := a.AuditFullParallel("selfmod", 0, entries, auths, audit.ParallelOptions{EngineOptions: audit.EngineOptions{
			Workers: workers, Materialize: materialize,
		}})
		compareVerdicts(t, "selfmod parallel", serial, par)

		stream, sstats := a.AuditStream("selfmod", 0, logcomp.CompressEntries(entries), auths, audit.StreamOptions{EngineOptions: audit.EngineOptions{
			Workers: workers, Materialize: materialize,
		}})
		compareVerdicts(t, "selfmod stream", serial, stream)
		if sstats.PeakResidentEntries > sstats.Window {
			t.Errorf("stream audit held %d entries, window %d", sstats.PeakResidentEntries, sstats.Window)
		}
	}

	// The predecode ablation must reach the same verdict: the sprint path's
	// cache invalidation and the Step path's fetch-time decode are two
	// implementations of one machine.
	abl := &audit.Auditor{
		Keys: keys, RefImage: img, RNGSeed: 5,
		TamperEvident: true, VerifySignatures: false, DisablePredecode: true,
	}
	noPre := abl.AuditFull("selfmod", 0, entries, auths)
	compareVerdicts(t, "selfmod nopredecode", serial, noPre)
	noPreStream, _ := abl.AuditStream("selfmod", 0, logcomp.CompressEntries(entries), auths, audit.StreamOptions{EngineOptions: audit.EngineOptions{
		Workers: 2, Materialize: materialize,
	}})
	compareVerdicts(t, "selfmod nopredecode stream", serial, noPreStream)

	// And the fusion ablation: self-modifying stores are exactly the case
	// where a fused span (pair or quad) must bail out mid-dispatch and
	// re-decode, so the fusion-off sprint has to reach the same verdict.
	fusAbl := &audit.Auditor{
		Keys: keys, RefImage: img, RNGSeed: 5,
		TamperEvident: true, VerifySignatures: false, DisableFusion: true,
	}
	noFus := fusAbl.AuditFull("selfmod", 0, entries, auths)
	compareVerdicts(t, "selfmod nofusion", serial, noFus)
	noFusStream, _ := fusAbl.AuditStream("selfmod", 0, logcomp.CompressEntries(entries), auths, audit.StreamOptions{EngineOptions: audit.EngineOptions{
		Workers: 2, Materialize: materialize,
	}})
	compareVerdicts(t, "selfmod nofusion stream", serial, noFusStream)
}
