package audit

import (
	"sync"
	"sync/atomic"

	"repro/internal/sig"
	"repro/internal/snapshot"
	"repro/internal/tevlog"
)

// This file implements the epoch-parallel audit engine. A tamper-evident
// log is naturally partitioned by its snapshot entries (§4.4): each
// snapshot commits a state root, so the segment between two snapshots is
// independently verifiable — replay it from the earlier snapshot's state
// and check the later root (§3.5 uses exactly this structure for spot
// checking). A full audit is therefore a fan-out: verify the chain and
// syntax once, then replay every inter-snapshot epoch concurrently.
//
// Soundness matches the serial audit's: epoch i starts from a state the
// engine verifies against the root committed at snapshot i (so the machine
// cannot hand the auditor a state it never committed to), and epoch i's
// replay re-derives the root committed at snapshot i+1. If every epoch
// passes, the serial replay would have passed; if the machine's execution
// diverged anywhere, the earliest affected epoch faults, and the engine
// reports that epoch's fault — the same check, entry, and landmark the
// serial replay reports.

// ParallelOptions configures the epoch-parallel full audit. All knobs live
// in the embedded EngineOptions (Workers and Materialize are the ones this
// engine reads).
type ParallelOptions struct {
	EngineOptions
}

// epochResult carries one epoch's outcome back to the merge step.
type epochResult struct {
	stats ReplayStats
	fault *FaultReport
	// end is the verified end-of-epoch state, captured only when a remote
	// worker asked for it (runEpochJobEx) to seed its connection cache.
	end *snapshot.Restored
}

// auditParallel checks an entire execution from boot like auditSerial —
// log verification, syntactic check, semantic replay — but partitions the
// replay at snapshot boundaries and runs the epochs concurrently on a
// bounded worker pool. The merged Result carries the serial audit's
// verdict: the same pass/fail, and on failure the fault of the earliest
// faulting epoch (identical check and entry seq to the serial replay's).
// Replay stats are the deterministic sum over the epochs the serial audit
// would have executed. It backs Audit's EngineParallel and the deprecated
// AuditFullParallel.
func (a *Auditor) auditParallel(node sig.NodeID, nodeIdx uint32, entries []tevlog.Entry, auths []tevlog.Authenticator, opts ParallelOptions) *Result {
	a = a.withEngineOptions(opts.EngineOptions)
	res := &Result{Node: node}

	if a.TamperEvident {
		if err := tevlog.VerifySegment(tevlog.Hash{}, entries, auths, a.Keys); err != nil {
			res.Fault = &FaultReport{Node: node, Check: CheckLog, Detail: err.Error()}
			return res
		}
	}

	stats, fr := SyntacticCheck(node, entries, SyntacticOptions{
		NodeIdx: nodeIdx, Keys: a.Keys,
		VerifySignatures: a.TamperEvident && a.VerifySignatures,
		StrictAcks:       a.StrictAcks,
	})
	res.Syntactic = stats
	if fr != nil {
		res.Fault = fr
		return res
	}

	replay, fault := a.SemanticCheckParallel(node, entries, opts)
	res.Replay = replay
	if fault != nil {
		res.Fault = fault
		return res
	}
	res.Passed = true
	return res
}

// SemanticCheckParallel runs only the semantic (replay) stage of a full
// audit on the epoch-parallel engine, returning the merged replay stats
// and the earliest fault (nil if the execution replays cleanly). It is the
// stage AuditFullParallel runs after log verification and the syntactic
// check; experiments time it directly against the serial replay.
func (a *Auditor) SemanticCheckParallel(node sig.NodeID, entries []tevlog.Entry, opts ParallelOptions) (ReplayStats, *FaultReport) {
	jobs := a.partition(entries, opts)
	be := &PoolBackend{Workers: opts.Workers, Materialize: opts.Materialize}
	stats, fault, _, err := a.runJobs(node, jobs, be, distConfig{materialize: opts.Materialize})
	if err != nil {
		// The in-process pool never reports transport failures; this guards
		// a future backend misrouted through the parallel entry point.
		return stats, &FaultReport{Node: node, Check: CheckSemantic, Detail: err.Error()}
	}
	return stats, fault
}

// partition slices the log into epoch jobs at snapshot entries. It returns
// a single boot epoch (the serial layout) when the log has no snapshots,
// the snapshot scan fails (replay will fault on the malformed entry), or no
// Materialize source is available.
func (a *Auditor) partition(entries []tevlog.Entry, opts ParallelOptions) []*EpochJob {
	whole := []*EpochJob{{Boot: true, Entries: entries}}
	if opts.Materialize == nil || len(entries) == 0 {
		return whole
	}
	points, err := FindSnapshots(entries)
	if err != nil || len(points) == 0 {
		return whole
	}
	jobs := make([]*EpochJob, 0, len(points)+1)
	jobs = append(jobs, &EpochJob{Boot: true, Entries: entries[:points[0].EntryIndex+1], Cost: points[0].ICount})
	for i := 1; i < len(points); i++ {
		jobs = append(jobs, &EpochJob{
			StartSnap: points[i-1].SnapIdx,
			StartRoot: points[i-1].Root,
			StartSeq:  points[i-1].Seq,
			Entries:   entries[points[i-1].EntryIndex+1 : points[i].EntryIndex+1],
			Cost:      points[i].ICount - points[i-1].ICount,
		})
	}
	last := points[len(points)-1]
	if tail := entries[last.EntryIndex+1:]; len(tail) > 0 {
		// No snapshot closes the tail, so its landmark span is unknown;
		// estimate from the log's instructions-per-entry rate so far.
		cost := last.ICount / uint64(last.EntryIndex+1) * uint64(len(tail))
		jobs = append(jobs, &EpochJob{
			StartSnap: last.SnapIdx, StartRoot: last.Root, StartSeq: last.Seq,
			Entries: tail, Cost: cost,
		})
	}
	for i, j := range jobs {
		j.Index = i
	}
	return jobs
}

// replayFull is the shared serial semantic check: one replay of the whole
// log from the reference image, i.e. a single boot epoch.
func (a *Auditor) replayFull(res *Result, node sig.NodeID, entries []tevlog.Entry) *Result {
	r := runEpochJob(a.session(node), &EpochJob{Boot: true, Entries: entries}, nil)
	res.Replay = r.stats
	if r.fault != nil {
		res.Fault = r.fault
		return res
	}
	res.Passed = true
	return res
}

func addStats(dst *ReplayStats, s ReplayStats) {
	dst.Instructions += s.Instructions
	dst.EntriesConsumed += s.EntriesConsumed
	dst.SendsMatched += s.SendsMatched
	dst.NondetsConsumed += s.NondetsConsumed
	dst.EventsInjected += s.EventsInjected
	dst.SnapshotsVerified += s.SnapshotsVerified
}

// runPool runs jobs 0..n-1 on up to workers goroutines, handing out
// indices in order. A job returning true requests a cutoff at its index:
// jobs with higher indices not yet started are skipped (their work cannot
// affect the merged verdict), while every job below the final cutoff is
// guaranteed to have run to completion. Returns the lowest cutoff index,
// or n if no job requested one.
func runPool(n, workers int, fn func(i int) bool) int {
	var cutoff atomic.Int64
	cutoff.Store(int64(n))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(n) {
					return
				}
				if i > cutoff.Load() {
					continue
				}
				if fn(int(i)) {
					for {
						cur := cutoff.Load()
						if i >= cur || cutoff.CompareAndSwap(cur, i) {
							break
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	return int(cutoff.Load())
}
