package audit_test

import (
	"strings"
	"testing"

	"repro/internal/audit"
	"repro/internal/avmm"
	"repro/internal/dbapp"
	"repro/internal/vm"
)

// corruptServerMidRun runs the minisql workload, and between two snapshots
// patches one instruction of the running server in memory — the in-memory
// modification a mid-game cheat install (or a buffer-overflow intrusion)
// performs. Returns the scenario and the snapshot points bracketing the
// patch.
func corruptServerMidRun(t *testing.T) (*dbapp.Scenario, []audit.SnapshotPoint) {
	t.Helper()
	s, err := dbapp.NewScenario(dbapp.ScenarioConfig{
		Mode: avmm.ModeAVMMNoSig, Seed: 31, SnapshotEveryNs: 5_000_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(7_500_000_000) // past snapshot 1, before snapshot 2

	// Find the MOVI loading the reply tag 'R' in the server's code and flip
	// it to 'X': every subsequent reply differs from what the reference
	// image would send.
	img, err := dbapp.BuildServer()
	if err != nil {
		t.Fatal(err)
	}
	patched := false
	for off := 0; off+vm.InstrSize <= len(img.Code); off += vm.InstrSize {
		ins := vm.Decode(img.Code[off:])
		if ins.Op == vm.OpMovi && ins.Imm == 'R' {
			addr := uint32(vm.CodeBase + off + 4) // low immediate byte
			if err := s.Server.Machine.WriteBytes(addr, []byte{'X'}); err != nil {
				t.Fatal(err)
			}
			patched = true
			break
		}
	}
	if !patched {
		t.Fatal("could not locate the reply-tag instruction to patch")
	}
	s.Run(20_000_000_000) // through snapshots 2 and 3

	entries := s.Server.Log.All()
	points, err := audit.FindSnapshots(entries)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) < 3 {
		t.Fatalf("need 3 snapshots, have %d", len(points))
	}
	return s, points
}

func TestPartialEvidenceReproducesFault(t *testing.T) {
	s, points := corruptServerMidRun(t)
	entries := s.Server.Log.All()
	auths, err := s.ServerAuths()
	if err != nil {
		t.Fatal(err)
	}
	a := s.Auditor()

	// The chunk containing the patch diverges from the honestly-committed
	// pre-patch snapshot: the patch landed at 7.5 virtual seconds, between
	// snapshot 0 (5 s) and snapshot 1 (10 s).
	start, end := points[0], points[1]
	restored, err := s.Server.Snaps.Materialize(int(start.SnapIdx))
	if err != nil {
		t.Fatal(err)
	}
	chunk := entries[start.EntryIndex+1 : end.EntryIndex+1]
	res := a.AuditChunk(audit.ChunkRequest{
		Node: "db-server", NodeIdx: 0,
		Start: restored, StartRoot: start.Root, PrevHash: start.EntryHash,
		Entries: chunk, Auths: auths,
	})
	if res.Passed {
		t.Fatal("in-memory code patch not detected by chunk audit")
	}
	if res.Fault.Check != audit.CheckSemantic && res.Fault.Check != audit.CheckSnapshot {
		t.Fatalf("unexpected fault class: %v", res.Fault.Check)
	}

	// Build full chunk evidence, then minimize it to the accessed pages.
	full := &audit.Evidence{
		Accused: "db-server", AccusedIdx: 0, Reason: res.Fault.Detail,
		Entries: chunk, Auths: auths,
		Start: restored, StartRoot: start.Root, PrevHash: start.EntryHash,
		RNGSeed: 31 + 500,
	}
	min, err := a.MinimizeEvidence(full)
	if err != nil {
		t.Fatal(err)
	}
	if min.Partial == nil || min.Start != nil {
		t.Fatal("minimized evidence still carries the full snapshot")
	}
	provided := len(min.Partial.Pages)
	total := len(restored.Mem) / vm.PageSize
	if provided >= total {
		t.Fatalf("minimization kept all %d pages", total)
	}
	t.Logf("minimized evidence: %d of %d pages, %d bytes vs %d bytes full state",
		provided, total, min.Partial.Bytes(), len(restored.Mem)+len(restored.Machine)+len(restored.Device))

	// A third party verifies the minimized bundle with its own auditor.
	verdict, err := audit.VerifyEvidence(min, audit.VerifierConfig{
		Keys: s.Keys, RefImage: nil, TamperEvident: true, VerifySignatures: false,
	})
	if err != nil {
		t.Fatalf("third party rejected minimized evidence: %v", err)
	}
	if verdict.Passed {
		t.Fatal("minimized evidence did not demonstrate the fault")
	}
}

func TestPartialEvidenceTamperingDetected(t *testing.T) {
	s, points := corruptServerMidRun(t)
	entries := s.Server.Log.All()
	auths, err := s.ServerAuths()
	if err != nil {
		t.Fatal(err)
	}
	a := s.Auditor()
	start, end := points[0], points[1]
	restored, err := s.Server.Snaps.Materialize(int(start.SnapIdx))
	if err != nil {
		t.Fatal(err)
	}
	chunk := entries[start.EntryIndex+1 : end.EntryIndex+1]
	full := &audit.Evidence{
		Accused: "db-server", AccusedIdx: 0,
		Entries: chunk, Auths: auths,
		Start: restored, StartRoot: start.Root, PrevHash: start.EntryHash,
		RNGSeed: 31 + 500,
	}
	min, err := a.MinimizeEvidence(full)
	if err != nil {
		t.Fatal(err)
	}

	// Tampering with a provided page breaks its inclusion proof.
	var anyPage int
	for p := range min.Partial.Pages {
		anyPage = p
		break
	}
	min.Partial.Pages[anyPage][7] ^= 1
	if _, err := audit.VerifyEvidence(min, audit.VerifierConfig{
		Keys: s.Keys, TamperEvident: true,
	}); err == nil || !strings.Contains(err.Error(), "authenticate") {
		t.Fatalf("tampered page accepted: %v", err)
	}
	min.Partial.Pages[anyPage][7] ^= 1

	// Omitting a page the replay needs makes the bundle inconclusive — a
	// malicious auditor cannot frame an honest machine by starving the
	// replica of state.
	delete(min.Partial.Pages, anyPage)
	delete(min.Partial.Proofs, anyPage)
	if _, err := audit.VerifyEvidence(min, audit.VerifierConfig{
		Keys: s.Keys, TamperEvident: true,
	}); err == nil || !strings.Contains(err.Error(), "inconclusive") {
		t.Fatalf("starved bundle not rejected as inconclusive: %v", err)
	}
}

func TestPartialAuditOfHonestChunkPasses(t *testing.T) {
	// Partial states also serve honest spot checks: download only the pages
	// the replay touches (§4.4), at a fraction of the full-state transfer.
	s, err := dbapp.NewScenario(dbapp.ScenarioConfig{
		Mode: avmm.ModeAVMMNoSig, Seed: 8, SnapshotEveryNs: 5_000_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(20_000_000_000)
	entries := s.Server.Log.All()
	points, err := audit.FindSnapshots(entries)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) < 3 {
		t.Fatal("need 3 snapshots")
	}
	auths, err := s.ServerAuths()
	if err != nil {
		t.Fatal(err)
	}
	a := s.Auditor()
	start, end := points[1], points[2]
	restored, err := s.Server.Snaps.Materialize(int(start.SnapIdx))
	if err != nil {
		t.Fatal(err)
	}
	chunk := entries[start.EntryIndex+1 : end.EntryIndex+1]
	ev := &audit.Evidence{
		Accused: "db-server", AccusedIdx: 0, Entries: chunk, Auths: auths,
		Start: restored, StartRoot: start.Root, PrevHash: start.EntryHash,
		RNGSeed: 8 + 500,
	}
	min, err := a.MinimizeEvidence(ev)
	if err != nil {
		t.Fatal(err)
	}
	res, err := audit.VerifyEvidence(min, audit.VerifierConfig{
		Keys: s.Keys, TamperEvident: true,
	})
	if err == nil {
		t.Fatal("honest chunk verified as evidence of fault")
	}
	if res == nil || !res.Passed {
		t.Fatalf("partial replay of honest chunk did not pass: %v", res)
	}
	if min.Partial.Bytes() >= len(restored.Mem) {
		t.Fatalf("partial transfer (%d bytes) not below full state (%d bytes)",
			min.Partial.Bytes(), len(restored.Mem))
	}
}
