// Package audit implements the auditing side of the AVM design (paper
// §4.5): verifying a machine's tamper-evident log against collected
// authenticators, checking it syntactically (formats, signatures,
// acknowledgments, message/input cross-references), and checking it
// semantically by deterministically replaying the reference image and
// comparing every output and snapshot against the log. Any discrepancy
// yields a fault report and a transferable evidence bundle that a third
// party can verify without trusting the auditor or the auditee.
package audit

import (
	"fmt"

	"repro/internal/sig"
	"repro/internal/vm"
)

// Check names the audit phase that produced a fault.
type Check string

// Audit phases.
const (
	// CheckLog is the hash-chain/authenticator verification of §4.3.
	CheckLog Check = "log"
	// CheckSyntactic is the well-formedness check of §4.5.
	CheckSyntactic Check = "syntactic"
	// CheckSemantic is the deterministic-replay check of §4.5.
	CheckSemantic Check = "semantic"
	// CheckSnapshot is the snapshot-root verification of §4.5.
	CheckSnapshot Check = "snapshot"
)

// FaultReport describes a detected fault, pinpointing the log entry and
// execution landmark at which the audited execution diverged from the
// reference machine.
type FaultReport struct {
	Node     sig.NodeID
	Check    Check
	Detail   string
	EntrySeq uint64      // log entry at or near the divergence (0 if n/a)
	Landmark vm.Landmark // replay position at divergence
}

// Error lets a FaultReport travel as an error.
func (f *FaultReport) Error() string {
	return fmt.Sprintf("audit: fault on %s (%s check): %s [entry %d, %v]",
		f.Node, f.Check, f.Detail, f.EntrySeq, f.Landmark)
}

// SyntacticStats summarizes the syntactic pass.
type SyntacticStats struct {
	Entries      int
	Sends        int
	Recvs        int
	Acks         int
	Nondets      int
	Events       int
	Snapshots    int
	UnackedSends int
	// InFlightRecvs counts messages received but still in the monitor's
	// injection pipeline when the segment ended.
	InFlightRecvs int
	SigsVerified  int
}

// ReplayStats summarizes the semantic (replay) pass.
type ReplayStats struct {
	Instructions      uint64
	EntriesConsumed   int
	SendsMatched      int
	NondetsConsumed   int
	EventsInjected    int
	SnapshotsVerified int
}

// Result is the outcome of an audit.
type Result struct {
	Node      sig.NodeID
	Passed    bool
	Fault     *FaultReport
	Syntactic SyntacticStats
	Replay    ReplayStats
}

// String renders a one-line verdict.
func (r *Result) String() string {
	if r.Passed {
		return fmt.Sprintf("audit of %s: PASSED (%d entries, %d instructions replayed, %d sends matched)",
			r.Node, r.Syntactic.Entries, r.Replay.Instructions, r.Replay.SendsMatched)
	}
	return fmt.Sprintf("audit of %s: FAULT — %s", r.Node, r.Fault.Detail)
}
