package audit

import (
	"bytes"

	"repro/internal/sig"
	"repro/internal/tevlog"
	"repro/internal/wire"
)

// SyntacticOptions configures the syntactic check.
type SyntacticOptions struct {
	// NodeIdx is the audited machine's network index (needed to reconstruct
	// senders' SEND contents for signature verification).
	NodeIdx uint32
	// Keys verifies peers' signatures embedded in RECV and ACK entries.
	Keys *sig.KeyStore
	// VerifySignatures enables cryptographic checks (off for the
	// avmm-nosig configuration).
	VerifySignatures bool
	// StrictAcks faults any SEND without a matching ACK. Only meaningful
	// for quiesced logs (offline audits after all traffic drained);
	// otherwise in-flight tail messages would false-positive.
	StrictAcks bool
}

// pendingFault is a deferred fault candidate: an entry referenced a
// sequence number beyond everything seen so far, which is a fault only if
// the segment turns out to reach that far (the batch pass decides with
// len(entries) in hand; a streaming pass must wait for Finish). The stats
// snapshot freezes what the batch pass would have returned had it stopped
// here.
type pendingFault struct {
	seq    uint64 // faulting entry's sequence number
	refSeq uint64 // referenced sequence number; materializes if inside the segment
	detail string
	stats  SyntacticStats
}

// SyntacticChecker is the streaming form of SyntacticCheck: it consumes a
// log segment one entry at a time and reports the same verdict — fault,
// stats, and entry — as the batch pass, which wraps it. Payload bytes — the
// bulk of a log's weight — are dropped as soon as their injection is
// cross-checked, so they track the monitor's in-flight injection pipeline
// rather than the log length. A few words of bookkeeping per SEND (ack
// matching) and per injected RECV (double-injection detection) do persist
// for the whole segment, exactly as in the batch pass.
type SyntacticChecker struct {
	node sig.NodeID
	opts SyntacticOptions

	stats    SyntacticStats
	count    int
	started  bool
	firstSeq uint64

	// recvIndex records every RECV entry's position; recvPayload holds its
	// parsed content only until the matching injection event consumes it.
	recvIndex   map[uint64]int
	recvPayload map[uint64]*wire.RecvContent
	injected    map[uint64]bool
	sendAcked   map[uint64]bool
	sendSeqs    []uint64

	lastEventICount uint64
	lastInjectIndex int

	fault   *FaultReport
	pending []pendingFault
}

// NewSyntacticChecker starts a streaming syntactic pass over node's log.
func NewSyntacticChecker(node sig.NodeID, opts SyntacticOptions) *SyntacticChecker {
	return &SyntacticChecker{
		node: node, opts: opts,
		recvIndex:       make(map[uint64]int),
		recvPayload:     make(map[uint64]*wire.RecvContent),
		injected:        make(map[uint64]bool),
		sendAcked:       make(map[uint64]bool),
		lastInjectIndex: -1,
	}
}

// fail records the first immediate fault; subsequent entries only count
// toward the segment length (the batch pass would never have seen them).
func (c *SyntacticChecker) fail(seq uint64, detail string) {
	c.fault = &FaultReport{Node: c.node, Check: CheckSyntactic, Detail: detail, EntrySeq: seq}
}

// deferRef records a forward-reference fault candidate for Finish.
func (c *SyntacticChecker) deferRef(seq, refSeq uint64, detail string) {
	c.pending = append(c.pending, pendingFault{
		seq: seq, refSeq: refSeq, detail: detail, stats: c.stats,
	})
}

// seen reports whether sequence number s falls inside the segment prefix
// processed so far (the batch pass's inSegment bound, evaluated over i+1
// entries). Like the batch pass it assumes the consecutive numbering the
// chain verifier enforces.
func (c *SyntacticChecker) seen(s uint64, i int) bool {
	return s >= c.firstSeq && s < c.firstSeq+uint64(i+1)
}

// Add consumes the next entry of the segment.
func (c *SyntacticChecker) Add(e *tevlog.Entry) {
	i := c.count
	c.count++
	if !c.started {
		c.started = true
		c.firstSeq = e.Seq
	}
	if c.fault != nil {
		return
	}
	switch e.Type {
	case tevlog.TypeSend:
		sc, err := wire.ParseSend(e.Content)
		if err != nil {
			c.fail(e.Seq, "malformed SEND entry: "+err.Error())
			return
		}
		if sc.MsgID != e.Seq {
			c.fail(e.Seq, "SEND message id does not match entry sequence number")
			return
		}
		c.stats.Sends++
		c.sendSeqs = append(c.sendSeqs, e.Seq)
		c.sendAcked[e.Seq] = false
	case tevlog.TypeRecv:
		rc, err := wire.ParseRecv(e.Content)
		if err != nil {
			c.fail(e.Seq, "malformed RECV entry: "+err.Error())
			return
		}
		c.stats.Recvs++
		c.recvPayload[e.Seq] = rc
		c.recvIndex[e.Seq] = i
		if c.opts.VerifySignatures {
			// Recompute the sender's chain hash for SEND(m) and verify
			// the sender's authenticator signature over it, proving the
			// message is genuine (§4.3: forged incoming messages are
			// detectable because senders sign their messages).
			sendContent := (&wire.SendContent{
				MsgID: rc.MsgID, Dest: c.opts.NodeIdx, Payload: rc.Payload,
			}).Marshal()
			h := tevlog.ChainHash(rc.SenderPrev, rc.SenderSeq, tevlog.TypeSend,
				tevlog.HashContent(sendContent))
			a := tevlog.Authenticator{
				Node: sig.NodeID(rc.SrcNode), Seq: rc.SenderSeq, Hash: h, Sig: rc.SenderSig,
			}
			if !a.Verify(c.opts.Keys) {
				c.fail(e.Seq, "RECV entry carries an invalid sender signature (forged message?)")
				return
			}
			c.stats.SigsVerified++
		}
	case tevlog.TypeAck:
		ac, err := wire.ParseAck(e.Content)
		if err != nil {
			c.fail(e.Seq, "malformed ACK entry: "+err.Error())
			return
		}
		c.stats.Acks++
		if ac.MsgID >= c.firstSeq {
			if _, ok := c.sendAcked[ac.MsgID]; ok {
				c.sendAcked[ac.MsgID] = true
			} else if c.seen(ac.MsgID, i) {
				c.fail(e.Seq, "ACK references a non-SEND entry")
				return
			} else {
				c.deferRef(e.Seq, ac.MsgID, "ACK references a non-SEND entry")
			}
		}
		if c.opts.VerifySignatures {
			a := tevlog.Authenticator{
				Node: sig.NodeID(ac.PeerNode), Seq: ac.PeerSeq, Hash: ac.PeerHash, Sig: ac.PeerSig,
			}
			if !a.Verify(c.opts.Keys) {
				c.fail(e.Seq, "ACK entry carries an invalid peer signature")
				return
			}
			c.stats.SigsVerified++
		}
	case tevlog.TypeNondet:
		if _, err := wire.ParseNondet(e.Content); err != nil {
			c.fail(e.Seq, "malformed NONDET entry: "+err.Error())
			return
		}
		c.stats.Nondets++
	case tevlog.TypeIRQ, tevlog.TypeSnapshot:
		ev, err := wire.ParseEvent(e.Content)
		if err != nil {
			c.fail(e.Seq, "malformed event entry: "+err.Error())
			return
		}
		if ev.Landmark.ICount < c.lastEventICount {
			c.fail(e.Seq, "event landmarks are not monotonic")
			return
		}
		c.lastEventICount = ev.Landmark.ICount
		if e.Type == tevlog.TypeSnapshot {
			c.stats.Snapshots++
		} else {
			c.stats.Events++
		}
		if ev.Kind == wire.EventInjectPacket {
			c.lastInjectIndex = i
			if ev.RecvSeq >= c.firstSeq {
				// Checked before the recvIndex lookup: injection prunes the
				// index, so a re-injection must still resolve to "twice".
				if c.injected[ev.RecvSeq] {
					c.fail(e.Seq, "message injected into the AVM twice")
					return
				}
				if _, ok := c.recvIndex[ev.RecvSeq]; ok {
					rc := c.recvPayload[ev.RecvSeq]
					if !bytes.Equal(rc.Payload, ev.Payload) || rc.SrcIdx != ev.SrcIdx {
						c.fail(e.Seq, "injected payload differs from the received message (altered in the monitor?)")
						return
					}
					c.injected[ev.RecvSeq] = true
					// The payload and position are no longer needed: only
					// uninjected RECVs matter to Finish, and the injected
					// set alone guards against double injection.
					delete(c.recvPayload, ev.RecvSeq)
					delete(c.recvIndex, ev.RecvSeq)
				} else if c.seen(ev.RecvSeq, i) {
					c.fail(e.Seq, "packet injection references a non-RECV entry (forged injection?)")
					return
				} else {
					c.deferRef(e.Seq, ev.RecvSeq, "packet injection references a non-RECV entry (forged injection?)")
				}
			}
		}
	case tevlog.TypeAnnotation:
		// Free-form; ignored.
	default:
		c.fail(e.Seq, "unknown entry type")
	}
}

// Finish completes the pass and returns the verdict the batch pass would
// have produced over the same entries.
func (c *SyntacticChecker) Finish() (SyntacticStats, *FaultReport) {
	// A deferred forward reference materializes if the segment reached the
	// referenced sequence number. Candidates precede any immediate fault in
	// entry order (Add stops recording once a fault is set), so the first
	// materialized candidate is the verdict the batch pass reports.
	for _, p := range c.pending {
		if p.refSeq < c.firstSeq+uint64(c.count) {
			stats := p.stats
			stats.Entries = c.count
			return stats, &FaultReport{Node: c.node, Check: CheckSyntactic, Detail: p.detail, EntrySeq: p.seq}
		}
	}
	c.stats.Entries = c.count
	if c.fault != nil {
		return c.stats, c.fault
	}
	// Every received message must have entered the AVM (§4.4: dropping a
	// message between receipt and injection is a fault). Messages still in
	// the daemon's injection pipeline at the end of the segment are
	// tolerated: a RECV may be uninjected only if NO later injection exists
	// — injecting a later message while dropping an earlier one is a fault.
	for seq := range c.recvIndex {
		if !c.injected[seq] {
			if c.recvIndex[seq] < c.lastInjectIndex {
				return c.stats, &FaultReport{
					Node: c.node, Check: CheckSyntactic, EntrySeq: seq,
					Detail: "received message was never injected into the AVM (dropped in the monitor?)",
				}
			}
			c.stats.InFlightRecvs++
		}
	}
	for _, seq := range c.sendSeqs {
		if !c.sendAcked[seq] {
			c.stats.UnackedSends++
		}
	}
	if c.opts.StrictAcks && c.stats.UnackedSends > 0 {
		return c.stats, &FaultReport{
			Node: c.node, Check: CheckSyntactic, EntrySeq: 0,
			Detail: "sent messages were never acknowledged",
		}
	}
	return c.stats, nil
}

// SyntacticCheck performs the §4.5 well-formedness pass over a log segment:
// every entry parses, signatures in messages and acknowledgments verify,
// each message was acknowledged, and the message stream is consistent with
// the injection stream entering the AVM (the §4.4 cross-reference that
// catches packets dropped or altered between receipt and injection). It is
// a thin wrapper over SyntacticChecker, which performs the same pass one
// entry at a time.
func SyntacticCheck(node sig.NodeID, entries []tevlog.Entry, opts SyntacticOptions) (SyntacticStats, *FaultReport) {
	c := NewSyntacticChecker(node, opts)
	for i := range entries {
		c.Add(&entries[i])
	}
	return c.Finish()
}
