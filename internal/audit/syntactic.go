package audit

import (
	"bytes"

	"repro/internal/sig"
	"repro/internal/tevlog"
	"repro/internal/wire"
)

// SyntacticOptions configures the syntactic check.
type SyntacticOptions struct {
	// NodeIdx is the audited machine's network index (needed to reconstruct
	// senders' SEND contents for signature verification).
	NodeIdx uint32
	// Keys verifies peers' signatures embedded in RECV and ACK entries.
	Keys *sig.KeyStore
	// VerifySignatures enables cryptographic checks (off for the
	// avmm-nosig configuration).
	VerifySignatures bool
	// StrictAcks faults any SEND without a matching ACK. Only meaningful
	// for quiesced logs (offline audits after all traffic drained);
	// otherwise in-flight tail messages would false-positive.
	StrictAcks bool
}

// SyntacticCheck performs the §4.5 well-formedness pass over a log segment:
// every entry parses, signatures in messages and acknowledgments verify,
// each message was acknowledged, and the message stream is consistent with
// the injection stream entering the AVM (the §4.4 cross-reference that
// catches packets dropped or altered between receipt and injection).
func SyntacticCheck(node sig.NodeID, entries []tevlog.Entry, opts SyntacticOptions) (SyntacticStats, *FaultReport) {
	var stats SyntacticStats
	stats.Entries = len(entries)
	fault := func(seq uint64, detail string) (SyntacticStats, *FaultReport) {
		return stats, &FaultReport{Node: node, Check: CheckSyntactic, Detail: detail, EntrySeq: seq}
	}

	firstSeq := uint64(0)
	if len(entries) > 0 {
		firstSeq = entries[0].Seq
	}
	inSegment := func(seq uint64) bool { return seq >= firstSeq && seq < firstSeq+uint64(len(entries)) }

	recvs := make(map[uint64]*wire.RecvContent) // entry seq → content
	recvIndex := make(map[uint64]int)           // RECV entry seq → position
	injected := make(map[uint64]bool)           // RECV entry seq → injected
	sendAcked := make(map[uint64]bool)          // SEND entry seq → acked
	var sendSeqs []uint64
	lastEventICount := uint64(0)
	lastInjectIndex := -1

	for i := range entries {
		e := &entries[i]
		switch e.Type {
		case tevlog.TypeSend:
			sc, err := wire.ParseSend(e.Content)
			if err != nil {
				return fault(e.Seq, "malformed SEND entry: "+err.Error())
			}
			if sc.MsgID != e.Seq {
				return fault(e.Seq, "SEND message id does not match entry sequence number")
			}
			stats.Sends++
			sendSeqs = append(sendSeqs, e.Seq)
			sendAcked[e.Seq] = false
		case tevlog.TypeRecv:
			rc, err := wire.ParseRecv(e.Content)
			if err != nil {
				return fault(e.Seq, "malformed RECV entry: "+err.Error())
			}
			stats.Recvs++
			recvs[e.Seq] = rc
			recvIndex[e.Seq] = i
			if opts.VerifySignatures {
				// Recompute the sender's chain hash for SEND(m) and verify
				// the sender's authenticator signature over it, proving the
				// message is genuine (§4.3: forged incoming messages are
				// detectable because senders sign their messages).
				sendContent := (&wire.SendContent{
					MsgID: rc.MsgID, Dest: opts.NodeIdx, Payload: rc.Payload,
				}).Marshal()
				h := tevlog.ChainHash(rc.SenderPrev, rc.SenderSeq, tevlog.TypeSend,
					tevlog.HashContent(sendContent))
				a := tevlog.Authenticator{
					Node: sig.NodeID(rc.SrcNode), Seq: rc.SenderSeq, Hash: h, Sig: rc.SenderSig,
				}
				if !a.Verify(opts.Keys) {
					return fault(e.Seq, "RECV entry carries an invalid sender signature (forged message?)")
				}
				stats.SigsVerified++
			}
		case tevlog.TypeAck:
			ac, err := wire.ParseAck(e.Content)
			if err != nil {
				return fault(e.Seq, "malformed ACK entry: "+err.Error())
			}
			stats.Acks++
			if inSegment(ac.MsgID) {
				if _, ok := sendAcked[ac.MsgID]; !ok {
					return fault(e.Seq, "ACK references a non-SEND entry")
				}
				sendAcked[ac.MsgID] = true
			}
			if opts.VerifySignatures {
				a := tevlog.Authenticator{
					Node: sig.NodeID(ac.PeerNode), Seq: ac.PeerSeq, Hash: ac.PeerHash, Sig: ac.PeerSig,
				}
				if !a.Verify(opts.Keys) {
					return fault(e.Seq, "ACK entry carries an invalid peer signature")
				}
				stats.SigsVerified++
			}
		case tevlog.TypeNondet:
			if _, err := wire.ParseNondet(e.Content); err != nil {
				return fault(e.Seq, "malformed NONDET entry: "+err.Error())
			}
			stats.Nondets++
		case tevlog.TypeIRQ, tevlog.TypeSnapshot:
			ev, err := wire.ParseEvent(e.Content)
			if err != nil {
				return fault(e.Seq, "malformed event entry: "+err.Error())
			}
			if ev.Landmark.ICount < lastEventICount {
				return fault(e.Seq, "event landmarks are not monotonic")
			}
			lastEventICount = ev.Landmark.ICount
			if e.Type == tevlog.TypeSnapshot {
				stats.Snapshots++
			} else {
				stats.Events++
			}
			if ev.Kind == wire.EventInjectPacket {
				lastInjectIndex = i
				if inSegment(ev.RecvSeq) {
					rc := recvs[ev.RecvSeq]
					if rc == nil {
						return fault(e.Seq, "packet injection references a non-RECV entry (forged injection?)")
					}
					if injected[ev.RecvSeq] {
						return fault(e.Seq, "message injected into the AVM twice")
					}
					if !bytes.Equal(rc.Payload, ev.Payload) || rc.SrcIdx != ev.SrcIdx {
						return fault(e.Seq, "injected payload differs from the received message (altered in the monitor?)")
					}
					injected[ev.RecvSeq] = true
				}
			}
		case tevlog.TypeAnnotation:
			// Free-form; ignored.
		default:
			return fault(e.Seq, "unknown entry type")
		}
	}

	// Every received message must have entered the AVM (§4.4: dropping a
	// message between receipt and injection is a fault). Messages still in
	// the daemon's injection pipeline at the end of the segment are
	// tolerated: a RECV may be uninjected only if NO later injection exists
	// — injecting a later message while dropping an earlier one is a fault.
	for seq := range recvs {
		if !injected[seq] {
			if recvIndex[seq] < lastInjectIndex {
				return fault(seq, "received message was never injected into the AVM (dropped in the monitor?)")
			}
			stats.InFlightRecvs++
		}
	}
	for _, seq := range sendSeqs {
		if !sendAcked[seq] {
			stats.UnackedSends++
		}
	}
	if opts.StrictAcks && stats.UnackedSends > 0 {
		return fault(0, "sent messages were never acknowledged")
	}
	return stats, nil
}
