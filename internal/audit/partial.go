package audit

import (
	"fmt"

	"repro/internal/snapshot"
	"repro/internal/tevlog"
)

// This file implements partial-state auditing (§4.4) and evidence
// minimization (§7.3): instead of shipping a full snapshot with an evidence
// bundle, the auditor replays the segment once with page-access tracking,
// keeps only the pages the replay actually touched, and attaches Merkle
// inclusion proofs for each. A third party can reproduce the fault from
// just those pages — and learns nothing about the rest of the machine's
// state.

// EnableAccessTracking makes the replica record which memory pages the
// replay touches.
func (r *Replay) EnableAccessTracking() { r.mach.TrackAccess(true) }

// AccessedPages returns the pages the replay has touched so far.
func (r *Replay) AccessedPages() []int { return r.mach.AccessedPages() }

// MinimizeEvidence converts chunk evidence carrying a full starting
// snapshot into evidence carrying only the pages needed to reproduce the
// verdict, each authenticated by an inclusion proof against the committed
// snapshot root.
func (a *Auditor) MinimizeEvidence(ev *Evidence) (*Evidence, error) {
	if ev.Start == nil {
		return nil, fmt.Errorf("audit: evidence has no starting snapshot to minimize")
	}
	rp, err := NewReplayFromSnapshot(ev.Accused, ev.Start, ev.RNGSeed)
	if err != nil {
		return nil, err
	}
	rp.EnableAccessTracking()
	rp.Feed(ev.Entries)
	rp.Close()
	rp.Run()
	partial, err := snapshot.PartialFromRestored(ev.Start, rp.AccessedPages())
	if err != nil {
		return nil, err
	}
	min := *ev
	min.Start = nil
	min.Partial = partial
	return &min, nil
}

// auditPartialChunk is the verification path for minimized evidence: check
// the partial state against the committed root, verify the log segment,
// replay from the provided pages with access tracking, and — critically —
// reject the bundle as inconclusive if the replay ever touched a page the
// evidence does not include. Without that check, a malicious auditor could
// frame an honest machine by omitting pages so that the replica reads
// zeroes and diverges.
func (a *Auditor) auditPartialChunk(ev *Evidence) (*Result, error) {
	res := &Result{Node: ev.Accused}
	if err := ev.Partial.Verify(ev.StartRoot); err != nil {
		return nil, fmt.Errorf("audit: partial state does not authenticate: %w", err)
	}
	if a.TamperEvident {
		if err := tevlog.VerifySegment(ev.PrevHash, ev.Entries, ev.Auths, a.Keys); err != nil {
			res.Fault = &FaultReport{Node: ev.Accused, Check: CheckLog, Detail: err.Error()}
			return res, nil
		}
	}
	stats, fr := SyntacticCheck(ev.Accused, ev.Entries, SyntacticOptions{
		NodeIdx: ev.AccusedIdx, Keys: a.Keys,
		VerifySignatures: a.TamperEvident && a.VerifySignatures,
	})
	res.Syntactic = stats
	if fr != nil {
		res.Fault = fr
		return res, nil
	}
	rp, err := NewReplayFromSnapshot(ev.Accused, ev.Partial.Materialize(), ev.RNGSeed)
	if err != nil {
		return nil, err
	}
	rp.EnableAccessTracking()
	rp.Feed(ev.Entries)
	rp.Close()
	rp.Run()
	res.Replay = rp.Stats
	// The conclusiveness check must come before the verdict.
	for _, p := range rp.AccessedPages() {
		if _, ok := ev.Partial.Pages[p]; !ok {
			return nil, fmt.Errorf("audit: replay touched page %d, which the evidence omits; bundle is inconclusive", p)
		}
	}
	if f := rp.Fault(); f != nil {
		res.Fault = f
		return res, nil
	}
	res.Passed = true
	return res, nil
}
