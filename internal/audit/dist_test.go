package audit_test

import (
	"errors"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/audit"
	"repro/internal/avmm"
	"repro/internal/game"
	"repro/internal/netsim"
	"repro/internal/sig"
	"repro/internal/snapshot"
)

// Equivalence harness for the distributed audit fan-out: whatever the
// serial auditor concludes, every EpochBackend — in-process pool, lossy
// simulated network, real TCP workers — must conclude, byte for byte,
// including when workers crash mid-epoch, straggle, lie, or the transport
// drops and reorders frames.

// sharedFleet lazily starts three in-process TCP replay workers shared by
// every test in the package (each audit opens its own connections/session,
// so sharing listeners loses nothing).
var fleetOnce sync.Once
var fleetAddrs []string

func sharedFleet(t *testing.T) []string {
	t.Helper()
	fleetOnce.Do(func() {
		for i := 0; i < 3; i++ {
			l, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatalf("fleet listener: %v", err)
			}
			go audit.ServeEpochWorker(l)
			fleetAddrs = append(fleetAddrs, l.Addr().String())
		}
	})
	return fleetAddrs
}

// lossyNet builds a deterministic simulated network with enough loss and
// jitter to force retransmits and out-of-order verdicts.
func lossyNet(seed uint64) *netsim.Network {
	return netsim.New(netsim.Config{
		BaseLatencyNs: 96_000,
		JitterNs:      2_000_000, // enough to reorder verdicts across epochs
		LossRate:      6000,      // ~9% of frames dropped, deterministically
		Seed:          seed,
	})
}

// distBothWays runs the three epoch backends over node's log and fails the
// test on any divergence from the serial verdict.
func distBothWays(t *testing.T, s *game.Scenario, node string, label string, serial *audit.Result) {
	t.Helper()

	pool, dstats, err := s.AuditNodeDist(sig.NodeID(node), audit.DistOptions{})
	if err != nil {
		t.Fatalf("%s: pool dist audit: %v", label, err)
	}
	compareVerdicts(t, label+": dist pool", serial, pool)
	if dstats.Epochs == 0 {
		t.Errorf("%s: pool dist audit reports zero epochs", label)
	}

	tcp, dstats, err := s.AuditNodeDist(sig.NodeID(node), audit.DistOptions{
		Backend: &audit.TCPBackend{Addrs: sharedFleet(t), JobTimeout: 30 * time.Second},
		EngineOptions: audit.EngineOptions{
			SpotRecheckFraction: 0.3,
			SpotRecheckSeed:     0xC0FFEE,
		},
	})
	if err != nil {
		t.Fatalf("%s: tcp dist audit: %v", label, err)
	}
	compareVerdicts(t, label+": dist tcp", serial, tcp)
	if dstats.SpotMismatches != 0 {
		t.Errorf("%s: honest TCP workers produced %d spot mismatches", label, dstats.SpotMismatches)
	}
	if dstats.Dispatched > 0 && dstats.WireBytes == 0 {
		t.Errorf("%s: tcp dist audit shipped no bytes for %d dispatched epochs", label, dstats.Dispatched)
	}

	sim, _, err := s.AuditNodeDist(sig.NodeID(node), audit.DistOptions{
		Backend: &audit.NetsimBackend{Net: lossyNet(77), Workers: 3, MaxAttempts: 10},
	})
	if err != nil {
		t.Fatalf("%s: netsim dist audit: %v", label, err)
	}
	compareVerdicts(t, label+": dist netsim", serial, sim)
}

// TestDistWorkerCrashRetry: one of three workers crashes mid-epoch — it
// completes the session handshake, reads a job, and dies without
// answering. The coordinator must re-dispatch the orphaned epoch to a
// surviving worker and deliver a merged verdict identical to the serial
// engine's, for a clean log and for a cheater.
func TestDistWorkerCrashRetry(t *testing.T) {
	crashAddr := startCrashingWorker(t)
	for _, tc := range []struct {
		name  string
		cheat string
	}{{"clean", ""}, {"cheater", "aimbot"}} {
		t.Run(tc.name, func(t *testing.T) {
			s := distScenario(t, tc.cheat)
			serial, err := s.AuditNode("player1")
			if err != nil {
				t.Fatal(err)
			}
			addrs := append([]string{crashAddr}, sharedFleet(t)...)
			res, dstats, err := s.AuditNodeDist("player1", audit.DistOptions{
				Backend: &audit.TCPBackend{Addrs: addrs, JobTimeout: 30 * time.Second, MaxAttempts: 25},
			})
			if err != nil {
				t.Fatalf("dist audit with crashing worker: %v", err)
			}
			compareVerdicts(t, "crash-retry "+tc.name, serial, res)
			// On a clean run every crashed epoch must be re-dispatched and
			// replayed elsewhere. On a faulting run an epoch orphaned by the
			// crash may land above the earliest-fault cutoff and be dropped
			// instead — re-dispatch is only guaranteed for epochs the
			// verdict needs, which the verdict comparison above pins.
			if tc.cheat == "" && dstats.Redispatches == 0 {
				t.Errorf("crashing worker caused no re-dispatches (stats %+v)", dstats)
			}
		})
	}
}

// TestDistNetsimPartitionHeals: a partition cuts one simulated worker off
// at the start of the run and heals mid-way. Jobs routed to the
// partitioned worker must be re-dispatched on virtual-time timeouts, and
// the merged verdict must be unchanged.
func TestDistNetsimPartitionHeals(t *testing.T) {
	s := distScenario(t, "aimbot")
	serial, err := s.AuditNode("player1")
	if err != nil {
		t.Fatal(err)
	}
	n := netsim.New(netsim.Config{BaseLatencyNs: 96_000, Seed: 11})
	const healAt = 40_000_000 // 40ms of virtual time
	n.Filter = func(f netsim.Frame) bool {
		if n.Now() >= healAt {
			return true
		}
		return f.From != 1 && f.To != 1 // worker 1 unreachable until heal
	}
	res, dstats, err := s.AuditNodeDist("player1", audit.DistOptions{
		Backend: &audit.NetsimBackend{Net: n, Workers: 3, TimeoutNs: 10_000_000, MaxAttempts: 10},
	})
	if err != nil {
		t.Fatalf("dist audit across healing partition: %v", err)
	}
	compareVerdicts(t, "partition-heal", serial, res)
	if dstats.Redispatches == 0 {
		t.Errorf("partition caused no re-dispatches (stats %+v)", dstats)
	}
	if n.NodeStats(0).FramesLost == 0 {
		t.Error("filter dropped no coordinator frames; partition never engaged")
	}
}

// lyingBackend wraps an honest backend and corrupts every verdict passing
// through: faults are suppressed and passing stats are inflated — the
// strongest lie a worker can tell without controlling the transport.
type lyingBackend struct {
	inner audit.EpochBackend
}

func (b *lyingBackend) Remote() bool { return b.inner.Remote() }

func (b *lyingBackend) Run(sess audit.Session, jobs []*audit.EpochJob, skip func(int) bool, emit func(audit.EpochVerdict)) error {
	return b.inner.Run(sess, jobs, skip, func(v audit.EpochVerdict) {
		v.Fault = nil
		v.Stats.Instructions += 1000
		emit(v)
	})
}

// TestDistLyingWorkerCaught: with full spot re-replay, a backend that lies
// about every verdict cannot steer the audit — the coordinator's own
// replays win, the result is byte-identical to the serial engine, and the
// mismatches are counted.
func TestDistLyingWorkerCaught(t *testing.T) {
	s := distScenario(t, "aimbot")
	serial, err := s.AuditNode("player1")
	if err != nil {
		t.Fatal(err)
	}
	if serial.Passed {
		t.Fatal("aimbot match unexpectedly passed the serial audit")
	}
	// A loss-free link keeps every epoch's verdict deliverable, so spot
	// fraction 1 must recheck every dispatched epoch.
	reliable := netsim.New(netsim.Config{BaseLatencyNs: 96_000, Seed: 5})
	res, dstats, err := s.AuditNodeDist("player1", audit.DistOptions{
		Backend:       &lyingBackend{inner: &audit.NetsimBackend{Net: reliable, Workers: 2, MaxAttempts: 10}},
		EngineOptions: audit.EngineOptions{SpotRecheckFraction: 1},
	})
	if err != nil {
		t.Fatalf("dist audit with lying backend: %v", err)
	}
	compareVerdicts(t, "lying-worker", serial, res)
	if dstats.SpotMismatches == 0 {
		t.Error("lying backend produced no spot mismatches")
	}
	if dstats.SpotRechecked != dstats.Dispatched {
		t.Errorf("spot fraction 1 rechecked %d of %d dispatched epochs",
			dstats.SpotRechecked, dstats.Dispatched)
	}
}

// TestDistTransportFailure: a backend whose workers are unreachable must
// produce an audit *error* (the exit-2 path), never a verdict.
func TestDistTransportFailure(t *testing.T) {
	s := distScenario(t, "")
	// A listener that is closed immediately: connections are refused.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := l.Addr().String()
	l.Close()
	res, _, err := s.AuditNodeDist("player1", audit.DistOptions{
		Backend: &audit.TCPBackend{Addrs: []string{dead}, DialTimeout: 500 * time.Millisecond},
	})
	if err == nil {
		t.Fatalf("dist audit over dead workers returned a verdict: %+v", res)
	}
	if res != nil {
		t.Errorf("transport failure must not carry a Result, got %+v", res)
	}
}

// TestDistStatsAccounting sanity-checks the coordinator's bookkeeping on a
// clean multi-epoch TCP run.
func TestDistStatsAccounting(t *testing.T) {
	s := distScenario(t, "")
	serial, err := s.AuditNode("player1")
	if err != nil {
		t.Fatal(err)
	}
	res, dstats, err := s.AuditNodeDist("player1", audit.DistOptions{
		Backend: &audit.TCPBackend{Addrs: sharedFleet(t), JobTimeout: 30 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	compareVerdicts(t, "stats-accounting", serial, res)
	if dstats.Epochs < 2 {
		t.Fatalf("scenario produced %d epochs; snapshots were not exploited", dstats.Epochs)
	}
	if dstats.Dispatched != dstats.Epochs {
		t.Errorf("dispatched %d of %d epochs on a clean run", dstats.Dispatched, dstats.Epochs)
	}
	if dstats.CoordinatorFaults != 0 {
		t.Errorf("clean run reported %d coordinator faults", dstats.CoordinatorFaults)
	}
}

// distScenario records a short two-player match with periodic snapshots,
// optionally with player1 running a catalog cheat.
func distScenario(t *testing.T, cheat string) *game.Scenario {
	t.Helper()
	cfg := game.ScenarioConfig{
		Players: 2, Mode: avmm.ModeAVMMRSA, Cost: avmm.DefaultCostModel(),
		Seed: 4242, SnapshotEveryNs: 1_500_000_000, FakeSignatures: true,
	}
	if cheat != "" {
		c, err := game.CatalogByName(cheat)
		if err != nil {
			t.Fatal(err)
		}
		cfg.CheatPlayer = 1
		cfg.Cheat = c
	}
	s, err := game.NewScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Run(6_000_000_000)
	return s
}

// startCrashingWorker starts a TCP worker that completes the protocol
// handshake, reads one job frame, and drops the connection without
// replying — a worker crashing mid-epoch. It does the same on every
// connection, so retries against it keep failing.
func startCrashingWorker(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				// Handshake: accept the session (frame format: 4-byte BE
				// length, kind byte, body).
				if _, err := readTestFrame(conn); err != nil {
					return
				}
				writeTestFrame(conn, 2, nil) // DistFrameSessionOK
				// Read one job, then crash.
				_, _ = readTestFrame(conn)
			}()
		}
	}()
	return l.Addr().String()
}

// readTestFrame / writeTestFrame speak the coordinator↔worker framing for
// test doubles (saboteur workers) without exporting the real helpers.
func readTestFrame(conn net.Conn) ([]byte, error) {
	hdr := make([]byte, 4)
	if _, err := io.ReadFull(conn, hdr); err != nil {
		return nil, err
	}
	n := uint32(hdr[0])<<24 | uint32(hdr[1])<<16 | uint32(hdr[2])<<8 | uint32(hdr[3])
	if n == 0 || n > 1<<30 {
		return nil, errors.New("bad frame length")
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(conn, body); err != nil {
		return nil, err
	}
	return body, nil
}

func writeTestFrame(conn net.Conn, kind byte, body []byte) {
	n := uint32(1 + len(body))
	hdr := []byte{byte(n >> 24), byte(n >> 16), byte(n >> 8), byte(n), kind}
	conn.Write(hdr)
	conn.Write(body)
}

// TestDistNoMaterializer: without a snapshot source the distributed audit
// degenerates to a single boot epoch shipped to one worker — and still
// matches the serial verdict.
func TestDistNoMaterializer(t *testing.T) {
	s := distScenario(t, "")
	target, auths, a, err := s.AuditInputs("player2")
	if err != nil {
		t.Fatal(err)
	}
	serial := a.AuditFull("player2", uint32(target.Index()), target.Log.Entries(), auths)
	res, dstats, err := a.AuditFullDist("player2", uint32(target.Index()), target.Log.Entries(), auths,
		audit.DistOptions{Backend: &audit.TCPBackend{Addrs: sharedFleet(t), JobTimeout: 30 * time.Second}})
	if err != nil {
		t.Fatal(err)
	}
	compareVerdicts(t, "no-materializer dist", serial, res)
	if dstats.Epochs != 1 {
		t.Errorf("epochs = %d, want 1 without a materializer", dstats.Epochs)
	}
}

// TestDistCoordinatorVerifiesRoots: corrupt the coordinator's snapshot
// source for one epoch. The coordinator must fault that epoch before
// dispatch — the job never reaches a worker — with the same CheckSnapshot
// fault the in-process engine reports.
func TestDistCoordinatorVerifiesRoots(t *testing.T) {
	s := distScenario(t, "")
	target, auths, a, err := s.AuditInputs("player1")
	if err != nil {
		t.Fatal(err)
	}
	corrupt := func(snapIdx uint32) (*snapshot.Restored, error) {
		r, err := target.Snaps.Materialize(int(snapIdx))
		if err != nil {
			return nil, err
		}
		if snapIdx == 1 {
			r.Mem = append([]byte(nil), r.Mem...)
			r.Mem[42] ^= 0xFF // no longer matches the committed root
		}
		return r, nil
	}
	serial := a.AuditFullParallel("player1", uint32(target.Index()), target.Log.Entries(), auths,
		audit.ParallelOptions{EngineOptions: audit.EngineOptions{Workers: 4, Materialize: corrupt}})
	if serial.Passed || serial.Fault.Check != audit.CheckSnapshot {
		t.Fatalf("parallel engine fault = %+v, want snapshot check", serial.Fault)
	}
	res, dstats, err := a.AuditFullDist("player1", uint32(target.Index()), target.Log.Entries(), auths,
		audit.DistOptions{
			Backend:       &audit.TCPBackend{Addrs: sharedFleet(t), JobTimeout: 30 * time.Second},
			EngineOptions: audit.EngineOptions{Materialize: corrupt},
		})
	if err != nil {
		t.Fatal(err)
	}
	compareVerdicts(t, "coordinator-root-check", serial, res)
	if dstats.CoordinatorFaults == 0 {
		t.Error("corrupted start state was not caught before dispatch")
	}
	if !strings.Contains(res.Fault.Detail, "does not match committed root") {
		t.Errorf("fault is not a root mismatch: %s", res.Fault.Detail)
	}
}
