package audit_test

import (
	"strings"
	"testing"

	"repro/internal/audit"
	"repro/internal/avmm"
	"repro/internal/game"
	"repro/internal/logcomp"
	"repro/internal/snapshot"
	"repro/internal/tevlog"
)

// streamScenario records a short clean match with periodic snapshots.
func streamScenario(t *testing.T) *game.Scenario {
	t.Helper()
	s, err := game.NewScenario(game.ScenarioConfig{
		Players: 2, Mode: avmm.ModeAVMMRSA, Cost: avmm.DefaultCostModel(),
		Seed: 99, SnapshotEveryNs: 1_500_000_000, FakeSignatures: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(6_000_000_000)
	return s
}

// TestAuditStreamBoundedWindow: with a window far smaller than the log, the
// streaming audit still passes with the serial verdict, partitions into
// multiple epochs, and never holds more decoded entries than the window.
func TestAuditStreamBoundedWindow(t *testing.T) {
	s := streamScenario(t)
	serial, err := s.AuditNode("player1")
	if err != nil {
		t.Fatal(err)
	}
	if !serial.Passed {
		t.Fatalf("serial audit failed: %v", serial.Fault)
	}
	target := s.Player(1)
	if target.Log.Len() < 500 {
		t.Fatalf("log too short (%d entries) to exercise the window", target.Log.Len())
	}
	const window = 64
	res, stream, err := s.AuditNodeStream("player1", 4, window)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Passed {
		t.Fatalf("stream audit failed: %v", res.Fault)
	}
	if res.Replay != serial.Replay || res.Syntactic != serial.Syntactic {
		t.Errorf("stream stats diverge: replay %+v vs %+v, syntactic %+v vs %+v",
			res.Replay, serial.Replay, res.Syntactic, serial.Syntactic)
	}
	if stream.Entries != target.Log.Len() {
		t.Errorf("stream decoded %d entries, log has %d", stream.Entries, target.Log.Len())
	}
	if stream.Epochs < 2 {
		t.Errorf("stream used %d epochs; snapshots were not exploited", stream.Epochs)
	}
	if stream.PeakResidentEntries > window {
		t.Errorf("peak resident entries %d exceeds window %d (log %d entries)",
			stream.PeakResidentEntries, window, target.Log.Len())
	}
}

// TestAuditStreamNoMaterializer: without a snapshot source the stream
// replays a single boot epoch (decode ∥ chain-verify ∥ replay) and still
// matches the serial verdict — the avm-audit CLI mode.
func TestAuditStreamNoMaterializer(t *testing.T) {
	s := streamScenario(t)
	serial, err := s.AuditNode("player2")
	if err != nil {
		t.Fatal(err)
	}
	target, auths, a, err := s.AuditInputs("player2")
	if err != nil {
		t.Fatal(err)
	}
	compressed := logcomp.CompressEntries(target.Log.Entries())
	res, stream := a.AuditStream("player2", uint32(target.Index()), compressed, auths,
		audit.StreamOptions{EngineOptions: audit.EngineOptions{Workers: 2, Window: 128}})
	compareVerdicts(t, "no-materializer stream", serial, res)
	if stream.Epochs != 1 {
		t.Errorf("epochs = %d, want 1 without a materializer", stream.Epochs)
	}
	if stream.PeakResidentEntries > 128 {
		t.Errorf("peak resident entries %d exceeds window 128", stream.PeakResidentEntries)
	}
}

// TestAuditStreamCorruptedEntry: flip one byte of a mid-log entry, then
// recompress. The materializing auditor (decompress → rechain → AuditFull)
// and the streaming auditor must report the same tampering evidence — same
// check, same entry, same detail.
func TestAuditStreamCorruptedEntry(t *testing.T) {
	s := streamScenario(t)
	target, auths, a, err := s.AuditInputs("player1")
	if err != nil {
		t.Fatal(err)
	}
	entries := target.Log.All()
	mid := len(entries) / 2
	entries[mid].Content = append([]byte(nil), entries[mid].Content...)
	entries[mid].Content[0] ^= 0x40
	compressed := logcomp.CompressEntries(entries)

	// Materializing pipeline, as cmd/avm-audit runs it.
	decoded, err := logcomp.DecompressEntries(compressed)
	if err != nil {
		t.Fatal(err)
	}
	if err := tevlog.Rechain(tevlog.Hash{}, decoded); err != nil {
		t.Fatal(err)
	}
	mat := a.AuditFull("player1", uint32(target.Index()), decoded, auths)
	if mat.Passed {
		t.Fatal("materializing audit passed on a tampered log")
	}
	if mat.Fault.Check != audit.CheckLog {
		t.Fatalf("materializing fault check = %s, want log", mat.Fault.Check)
	}

	res, _ := a.AuditStream("player1", uint32(target.Index()), compressed, auths, audit.StreamOptions{EngineOptions: audit.EngineOptions{
		Workers: 4, Window: 256,
		Materialize: func(snapIdx uint32) (*snapshot.Restored, error) { return target.Snaps.Materialize(int(snapIdx)) },
	}})
	if res.Passed {
		t.Fatal("streaming audit passed on a tampered log")
	}
	if res.Fault.Check != mat.Fault.Check || res.Fault.EntrySeq != mat.Fault.EntrySeq ||
		res.Fault.Detail != mat.Fault.Detail {
		t.Errorf("tampering evidence diverges:\nstream: (%s, seq %d) %s\nbatch:  (%s, seq %d) %s",
			res.Fault.Check, res.Fault.EntrySeq, res.Fault.Detail,
			mat.Fault.Check, mat.Fault.EntrySeq, mat.Fault.Detail)
	}
}

// TestAuditStreamCorruptedContainer: a container truncated mid-column is
// reported as a log-check fault carrying the decoder's error, at any
// truncation severity.
func TestAuditStreamCorruptedContainer(t *testing.T) {
	s := streamScenario(t)
	target, auths, a, err := s.AuditInputs("player1")
	if err != nil {
		t.Fatal(err)
	}
	compressed := logcomp.CompressEntries(target.Log.Entries())
	for _, cut := range []int{len(compressed) / 3, len(compressed) - 1} {
		res, _ := a.AuditStream("player1", uint32(target.Index()), compressed[:cut], auths,
			audit.StreamOptions{EngineOptions: audit.EngineOptions{Workers: 2, Window: 128}})
		if res.Passed {
			t.Fatalf("cut %d: truncated container passed", cut)
		}
		if res.Fault.Check != audit.CheckLog || !strings.Contains(res.Fault.Detail, "decoding log container") {
			t.Errorf("cut %d: fault = (%s) %s; want decode failure", cut, res.Fault.Check, res.Fault.Detail)
		}
	}
}

// TestAuditStreamEmptyLog mirrors AuditFull on an empty segment: a
// tamper-evident audit faults on the empty chain.
func TestAuditStreamEmptyLog(t *testing.T) {
	s := streamScenario(t)
	_, auths, a, err := s.AuditInputs("player1")
	if err != nil {
		t.Fatal(err)
	}
	serial := a.AuditFull("player1", 1, nil, auths)
	res, _ := a.AuditStream("player1", 1, logcomp.CompressEntries(nil), auths,
		audit.StreamOptions{EngineOptions: audit.EngineOptions{Workers: 2}})
	if res.Passed != serial.Passed {
		t.Fatalf("empty log: stream passed=%v, serial passed=%v", res.Passed, serial.Passed)
	}
	if serial.Fault != nil && (res.Fault == nil || res.Fault.Check != serial.Fault.Check ||
		res.Fault.Detail != serial.Fault.Detail) {
		t.Errorf("empty log: stream fault %v, serial fault %v", res.Fault, serial.Fault)
	}
}

// TestAuditStreamDetectsCheatWithTinyWindow: end-to-end completeness under
// memory pressure — a real cheat from the Table 1 catalog is detected by
// the streaming auditor with a 32-entry window, with the serial verdict.
func TestAuditStreamDetectsCheatWithTinyWindow(t *testing.T) {
	cheat, err := game.CatalogByName("aimbot")
	if err != nil {
		t.Fatal(err)
	}
	s, err := game.NewScenario(game.ScenarioConfig{
		Players: 2, Mode: avmm.ModeAVMMRSA, Cost: avmm.DefaultCostModel(),
		Seed: 2024, CheatPlayer: 1, Cheat: cheat,
		SnapshotEveryNs: 2_000_000_000, FakeSignatures: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(6_000_000_000)
	serial, err := s.AuditNode("player1")
	if err != nil {
		t.Fatal(err)
	}
	res, stream, err := s.AuditNodeStream("player1", 4, 32)
	if err != nil {
		t.Fatal(err)
	}
	compareVerdicts(t, "tiny-window cheat", serial, res)
	if stream.PeakResidentEntries > 32 {
		t.Errorf("peak resident entries %d exceeds window 32", stream.PeakResidentEntries)
	}
}
