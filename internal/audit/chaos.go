package audit

import (
	"fmt"
	"net"
	"time"
)

// This file is the deterministic chaos-injection harness: a ChaosPlan is a
// seeded fault schedule an EpochWorker consults before serving each
// connection, frame and job, covering the adversarial surface the
// coordinator must survive — workers that crash mid-epoch, hang forever,
// run 10x slow, lie about verdicts, flap their connections, or sit behind
// a partition until it heals. Decisions are pure functions of (seed,
// arrival ordinal), so a plan is reproducible for a fixed dispatch order
// and never needs wall-clock randomness. The equivalence suite runs the
// full cheat catalog through a chaotic fleet and asserts the audit verdict
// is byte-identical to the serial engine's under every plan — faults in
// the fleet must never surface as faults in the machine being audited.

// ChaosAction is the fate a chaos plan assigns one job.
type ChaosAction int

// Per-job chaos actions.
const (
	// ChaosNone replays the job honestly.
	ChaosNone ChaosAction = iota
	// ChaosCrash closes the connection instead of replying — a worker
	// process dying mid-epoch.
	ChaosCrash
	// ChaosHang accepts the job and never replies, keeping the connection
	// open — the failure mode timeouts and hedging exist for, invisible to
	// crash detection.
	ChaosHang
	// ChaosSlow replays honestly but 10x slower (the replay's own wall time
	// again ×9, capped) — the straggler that hedging races.
	ChaosSlow
	// ChaosLie replays and then corrupts the verdict — the Byzantine worker
	// spot rechecks exist for.
	ChaosLie
)

// ChaosPlan is a seeded, deterministic fault schedule for one worker. The
// zero value is an honest worker; rates are per-job probabilities decided
// by a hash of (Seed, job ordinal), evaluated in the order crash, hang,
// slow, lie.
type ChaosPlan struct {
	// Name labels the plan in test output and logs.
	Name string
	// Seed drives every per-ordinal decision.
	Seed uint64
	// CrashRate, HangRate, SlowRate and LieRate are per-job fault
	// probabilities; their sum should stay below 1.
	CrashRate float64
	HangRate  float64
	SlowRate  float64
	LieRate   float64
	// SlowCapDelay bounds the extra delay a ChaosSlow job sleeps. <= 0
	// selects 2s.
	SlowCapDelay time.Duration
	// FlapEveryFrames drops the connection after every Nth frame read — a
	// link that works, then doesn't, then does. 0 disables.
	FlapEveryFrames int
	// RefuseFirstConns rejects the first N connection attempts outright — a
	// partition that heals once the coordinator has knocked N times.
	RefuseFirstConns int
}

// admitConn reports whether connection attempt connSeq (1-based) gets
// through the partition.
func (p *ChaosPlan) admitConn(connSeq int) bool {
	return connSeq > p.RefuseFirstConns
}

// admitFrame reports whether the connection survives past frame frameSeq
// (1-based); false flaps the link.
func (p *ChaosPlan) admitFrame(frameSeq int) bool {
	return p.FlapEveryFrames <= 0 || frameSeq%p.FlapEveryFrames != 0
}

// jobAction decides the fate of the worker's jobSeq-th job.
func (p *ChaosPlan) jobAction(jobSeq int64) ChaosAction {
	if p.CrashRate+p.HangRate+p.SlowRate+p.LieRate <= 0 {
		return ChaosNone
	}
	frac := float64(splitmix64(p.Seed^uint64(jobSeq)*0x9E3779B97F4A7C15)>>11) / float64(1<<53)
	switch {
	case frac < p.CrashRate:
		return ChaosCrash
	case frac < p.CrashRate+p.HangRate:
		return ChaosHang
	case frac < p.CrashRate+p.HangRate+p.SlowRate:
		return ChaosSlow
	case frac < p.CrashRate+p.HangRate+p.SlowRate+p.LieRate:
		return ChaosLie
	}
	return ChaosNone
}

// slowCap resolves the ChaosSlow delay bound.
func (p *ChaosPlan) slowCap() time.Duration {
	if p.SlowCapDelay > 0 {
		return p.SlowCapDelay
	}
	return 2 * time.Second
}

// corrupt is the lying worker's verdict: suppress any fault and inflate
// the stats — the most dangerous lie, because it turns a caught cheater
// into a clean machine unless the coordinator spot-rechecks.
func (p *ChaosPlan) corrupt(r epochResult) epochResult {
	out := epochResult{stats: r.stats}
	out.stats.Instructions += 1_000_003
	return out
}

// ChaosPlans returns the canonical six-fault plan set the equivalence
// suite runs the cheat catalog under. Each plan perturbs a different
// recovery path; seeds differ so schedules do not correlate across plans.
func ChaosPlans() []*ChaosPlan {
	return []*ChaosPlan{
		{Name: "crash-at-epoch", Seed: 0xC0FFEE01, CrashRate: 0.35},
		{Name: "hang-forever", Seed: 0xC0FFEE02, HangRate: 0.30},
		{Name: "slow-10x", Seed: 0xC0FFEE03, SlowRate: 0.45, SlowCapDelay: 250 * time.Millisecond},
		{Name: "lying-verdict", Seed: 0xC0FFEE04, LieRate: 0.40},
		{Name: "connection-flap", Seed: 0xC0FFEE05, FlapEveryFrames: 7},
		{Name: "partition-heal", Seed: 0xC0FFEE06, RefuseFirstConns: 2},
	}
}

// ChaosFleet is a set of in-process loopback replay workers, each running
// its own fault plan (nil = honest). Tests point a Coordinator or a
// TCPBackend at Addrs.
type ChaosFleet struct {
	Addrs     []string
	workers   []*EpochWorker
	listeners []net.Listener
}

// StartChaosFleet starts one worker per plan on a loopback listener.
func StartChaosFleet(plans []*ChaosPlan) (*ChaosFleet, error) {
	f := &ChaosFleet{}
	for i, plan := range plans {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("audit: chaos fleet worker %d: %w", i, err)
		}
		w := &EpochWorker{Chaos: plan}
		go func() { _ = w.Serve(l) }()
		f.Addrs = append(f.Addrs, l.Addr().String())
		f.workers = append(f.workers, w)
		f.listeners = append(f.listeners, l)
	}
	return f, nil
}

// Close tears the fleet down: listeners close, live connections are cut,
// hung executors unblock.
func (f *ChaosFleet) Close() {
	for _, l := range f.listeners {
		l.Close()
	}
	for _, w := range f.workers {
		w.Drain(10 * time.Millisecond)
	}
}
