package audit

import (
	"fmt"
	"io"
	"net"
	"time"

	"repro/internal/wire"
)

// This file is the deterministic chaos-injection harness: a ChaosPlan is a
// seeded fault schedule an EpochWorker consults before serving each
// connection, frame and job, covering the adversarial surface the
// coordinator must survive — workers that crash mid-epoch, hang forever,
// run 10x slow, lie about verdicts, flap their connections, or sit behind
// a partition until it heals. Decisions are pure functions of (seed,
// arrival ordinal), so a plan is reproducible for a fixed dispatch order
// and never needs wall-clock randomness. The equivalence suite runs the
// full cheat catalog through a chaotic fleet and asserts the audit verdict
// is byte-identical to the serial engine's under every plan — faults in
// the fleet must never surface as faults in the machine being audited.

// ChaosAction is the fate a chaos plan assigns one job.
type ChaosAction int

// Per-job chaos actions.
const (
	// ChaosNone replays the job honestly.
	ChaosNone ChaosAction = iota
	// ChaosCrash closes the connection instead of replying — a worker
	// process dying mid-epoch.
	ChaosCrash
	// ChaosHang accepts the job and never replies, keeping the connection
	// open — the failure mode timeouts and hedging exist for, invisible to
	// crash detection.
	ChaosHang
	// ChaosSlow replays honestly but 10x slower (the replay's own wall time
	// again ×9, capped) — the straggler that hedging races.
	ChaosSlow
	// ChaosLie replays and then corrupts the verdict — the Byzantine worker
	// spot rechecks exist for.
	ChaosLie
)

// ChaosPlan is a seeded, deterministic fault schedule for one worker. The
// zero value is an honest worker; rates are per-job probabilities decided
// by a hash of (Seed, job ordinal), evaluated in the order crash, hang,
// slow, lie.
type ChaosPlan struct {
	// Name labels the plan in test output and logs.
	Name string
	// Seed drives every per-ordinal decision.
	Seed uint64
	// CrashRate, HangRate, SlowRate and LieRate are per-job fault
	// probabilities; their sum should stay below 1.
	CrashRate float64
	HangRate  float64
	SlowRate  float64
	LieRate   float64
	// SlowCapDelay bounds the extra delay a ChaosSlow job sleeps. <= 0
	// selects 2s.
	SlowCapDelay time.Duration
	// FlapEveryFrames drops the connection after every Nth frame read — a
	// link that works, then doesn't, then does. 0 disables.
	FlapEveryFrames int
	// RefuseFirstConns rejects the first N connection attempts outright — a
	// partition that heals once the coordinator has knocked N times.
	RefuseFirstConns int
	// CoordCrashEpochs asks the harness to kill the *coordinator* once N
	// epoch verdicts are durable in its journal, then restart it over the
	// same journal. Workers under such a plan stay honest: the fault being
	// injected is the coordinator's own death, and the journal replay is
	// what's under test. Interpreted by the test harness, not by
	// EpochWorker. 0 disables.
	CoordCrashEpochs int
}

// admitConn reports whether connection attempt connSeq (1-based) gets
// through the partition.
func (p *ChaosPlan) admitConn(connSeq int) bool {
	return connSeq > p.RefuseFirstConns
}

// admitFrame reports whether the connection survives past frame frameSeq
// (1-based); false flaps the link.
func (p *ChaosPlan) admitFrame(frameSeq int) bool {
	return p.FlapEveryFrames <= 0 || frameSeq%p.FlapEveryFrames != 0
}

// jobAction decides the fate of the worker's jobSeq-th job.
func (p *ChaosPlan) jobAction(jobSeq int64) ChaosAction {
	if p.CrashRate+p.HangRate+p.SlowRate+p.LieRate <= 0 {
		return ChaosNone
	}
	frac := float64(splitmix64(p.Seed^uint64(jobSeq)*0x9E3779B97F4A7C15)>>11) / float64(1<<53)
	switch {
	case frac < p.CrashRate:
		return ChaosCrash
	case frac < p.CrashRate+p.HangRate:
		return ChaosHang
	case frac < p.CrashRate+p.HangRate+p.SlowRate:
		return ChaosSlow
	case frac < p.CrashRate+p.HangRate+p.SlowRate+p.LieRate:
		return ChaosLie
	}
	return ChaosNone
}

// slowCap resolves the ChaosSlow delay bound.
func (p *ChaosPlan) slowCap() time.Duration {
	if p.SlowCapDelay > 0 {
		return p.SlowCapDelay
	}
	return 2 * time.Second
}

// corrupt is the lying worker's verdict: suppress any fault and inflate
// the stats — the most dangerous lie, because it turns a caught cheater
// into a clean machine unless the coordinator spot-rechecks.
func (p *ChaosPlan) corrupt(r epochResult) epochResult {
	out := epochResult{stats: r.stats}
	out.stats.Instructions += 1_000_003
	return out
}

// ChaosPlans returns the canonical six-fault plan set the equivalence
// suite runs the cheat catalog under. Each plan perturbs a different
// recovery path; seeds differ so schedules do not correlate across plans.
func ChaosPlans() []*ChaosPlan {
	return []*ChaosPlan{
		{Name: "crash-at-epoch", Seed: 0xC0FFEE01, CrashRate: 0.35},
		{Name: "hang-forever", Seed: 0xC0FFEE02, HangRate: 0.30},
		{Name: "slow-10x", Seed: 0xC0FFEE03, SlowRate: 0.45, SlowCapDelay: 250 * time.Millisecond},
		{Name: "lying-verdict", Seed: 0xC0FFEE04, LieRate: 0.40},
		{Name: "connection-flap", Seed: 0xC0FFEE05, FlapEveryFrames: 7},
		{Name: "partition-heal", Seed: 0xC0FFEE06, RefuseFirstConns: 2},
	}
}

// CoordinatorKillPlans returns the coordinator-crash plan set: honest
// fleets whose harness SIGKILLs (in-process: Kill()s) the coordinator
// after N durable verdicts and restarts it over the same journal. The
// resume suite asserts the stitched-together audit is byte-identical to
// an uninterrupted one, durable epochs are never re-dispatched, and
// redispatch of in-flight epochs stays bounded.
func CoordinatorKillPlans() []*ChaosPlan {
	return []*ChaosPlan{
		{Name: "coord-kill-first-verdict", Seed: 0xDEAD0001, CoordCrashEpochs: 1},
		{Name: "coord-kill-mid-run", Seed: 0xDEAD0002, CoordCrashEpochs: 2},
	}
}

// ChaosFleet is a set of in-process loopback replay workers, each running
// its own fault plan (nil = honest). Tests point a Coordinator or a
// TCPBackend at Addrs.
type ChaosFleet struct {
	Addrs     []string
	workers   []*EpochWorker
	listeners []net.Listener
}

// StartChaosFleet starts one worker per plan on a loopback listener.
func StartChaosFleet(plans []*ChaosPlan) (*ChaosFleet, error) {
	f := &ChaosFleet{}
	for i, plan := range plans {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("audit: chaos fleet worker %d: %w", i, err)
		}
		w := &EpochWorker{Chaos: plan}
		go func() { _ = w.Serve(l) }()
		f.Addrs = append(f.Addrs, l.Addr().String())
		f.workers = append(f.workers, w)
		f.listeners = append(f.listeners, l)
	}
	return f, nil
}

// JobsServed sums the jobs the fleet's workers have accepted (including
// ones chaos then crashed or hung). The coordinator-kill suite uses the
// delta across a crash/restart to bound redispatch: epochs with durable
// verdicts must not be served again.
func (f *ChaosFleet) JobsServed() int64 {
	var n int64
	for _, w := range f.workers {
		n += w.jobSeq.Load()
	}
	return n
}

// Close tears the fleet down: listeners close, live connections are cut,
// hung executors unblock.
func (f *ChaosFleet) Close() {
	for _, l := range f.listeners {
		l.Close()
	}
	for _, w := range f.workers {
		w.Drain(10 * time.Millisecond)
	}
}

// StartVerdictFilterProxy fronts a worker with a TCP proxy that drops
// every verdict frame the keep filter rejects and forwards everything
// else untouched — chaos injection at the wire, not the worker. Its
// canonical use is stranding a run deterministically: keep every verdict
// except epoch index 0's (which precedes any possible fault, so every
// run needs it) and the run can never finish, however fast the replay,
// while later epochs' verdicts flow — the setup for killing a
// coordinator that provably has unfinished journaled work. Returns the
// proxy's listener (close it to stop serving) and dial address.
func StartVerdictFilterProxy(workerAddr string, keep func(*wire.AuditVerdict) bool) (net.Listener, string, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, "", err
	}
	go func() {
		for {
			up, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				defer up.Close()
				down, err := net.Dial("tcp", workerAddr)
				if err != nil {
					return
				}
				defer down.Close()
				// Coordinator→worker: verbatim; ends (closing down, which
				// unblocks the filtering direction) when the dialer hangs up.
				go func() {
					_, _ = io.Copy(down, up)
					down.Close()
				}()
				for {
					kind, body, err := readDistFrame(down)
					if err != nil {
						return
					}
					if kind == wire.DistFrameMuxVerdict {
						if _, rest, err := wire.SplitMuxID(body); err == nil {
							if v, err := wire.ParseAuditVerdict(rest); err == nil && !keep(v) {
								continue
							}
						}
					}
					if err := writeDistFrame(up, kind, body); err != nil {
						return
					}
				}
			}()
		}
	}()
	return l, l.Addr().String(), nil
}
