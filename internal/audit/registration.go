package audit

import (
	"fmt"
	"io"
	"net"
	"time"

	"repro/internal/wire"
)

// This file is worker-initiated registration: the self-assembly path for
// autoscaled fleets. The coordinator listens (ServeRegistrations /
// `avm-audit -coordinate -register-listen`), workers dial in
// (RegisterWorker / `avm-audit -serve -register`) with a Hello announcing
// their job-listener address, and an accepted Hello feeds the existing
// AddWorker path — so a registered worker is driven by exactly the same
// dial/redial/heartbeat machinery as a push-configured one, and
// AddWorker's no-op-on-duplicate is the dedupe that turns a re-registering
// worker into a reattach to its old coordWorker state. The registration
// connection itself carries no further traffic: it is held open as a
// liveness signal, and the worker redials with capped backoff when it
// drops (a coordinator crash or restart), which is what reassembles the
// fleet around a journal-resumed coordinator without an operator in the
// loop.

// regHandshakeTimeout bounds each side of the Hello/Welcome exchange.
const regHandshakeTimeout = 5 * time.Second

// ServeRegistrations accepts worker self-registrations on l until the
// listener closes or the coordinator shuts down (which also closes l).
// Run it on its own goroutine, one per listener.
func (c *Coordinator) ServeRegistrations(l net.Listener) error {
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-c.closedCh:
			l.Close()
		case <-done:
		}
	}()
	for {
		conn, err := l.Accept()
		if err != nil {
			if c.isClosed() {
				return nil
			}
			return err
		}
		go c.handleRegistration(conn)
	}
}

// handleRegistration runs one registration connection: Hello in, Welcome
// out, AddWorker on accept, then hold the connection open until the worker
// or the coordinator goes away.
func (c *Coordinator) handleRegistration(conn net.Conn) {
	defer conn.Close()
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-c.closedCh:
			conn.Close()
		case <-done:
		}
	}()

	conn.SetReadDeadline(time.Now().Add(regHandshakeTimeout))
	kind, body, err := readDistFrame(conn)
	if err != nil || kind != wire.DistFrameHello {
		c.reg.Counter("registrations_rejected").Inc()
		return
	}
	hello, err := wire.ParseRegistrationHello(body)
	if err != nil {
		c.reg.Counter("registrations_rejected").Inc()
		return
	}

	welcome := wire.RegistrationWelcome{Version: wire.RegistrationVersion}
	addr, aerr := registrationAddr(conn, hello.Addr)
	switch {
	case hello.Version != wire.RegistrationVersion:
		welcome.Reason = fmt.Sprintf("registration version %d not supported (coordinator speaks %d)",
			hello.Version, wire.RegistrationVersion)
	case aerr != nil:
		welcome.Reason = aerr.Error()
	case c.isClosed():
		welcome.Reason = "coordinator is closed"
	default:
		welcome.Accepted = true
	}

	conn.SetWriteDeadline(time.Now().Add(regHandshakeTimeout))
	if werr := writeDistFrame(conn, wire.DistFrameWelcome, welcome.Marshal()); werr != nil {
		c.reg.Counter("registrations_rejected").Inc()
		return
	}
	if !welcome.Accepted {
		c.reg.Counter("registrations_rejected").Inc()
		return
	}
	c.reg.Counter("registrations_accepted").Inc()
	// AddWorker dedupes on address, so a worker re-registering after a
	// dropped registration connection reattaches instead of duplicating.
	c.AddWorker(addr)

	// Hold the connection open, discarding anything the worker sends: its
	// death tells the worker to re-register (coordinator restart), and the
	// worker's death simply ends this goroutine — the fleet entry stays,
	// driven by the coordWorker redial loop like any other dead worker.
	conn.SetReadDeadline(time.Time{})
	_, _ = io.Copy(io.Discard, conn)
}

// registrationAddr resolves the job address a Hello announces against the
// connection it arrived on: an empty or unspecified host is replaced by
// the connection's remote host (the worker may not know which of its
// addresses the coordinator can route to).
func registrationAddr(conn net.Conn, announced string) (string, error) {
	host, port, err := net.SplitHostPort(announced)
	if err != nil {
		return "", fmt.Errorf("audit: registration address %q: %w", announced, err)
	}
	if port == "" || port == "0" {
		return "", fmt.Errorf("audit: registration address %q has no concrete port", announced)
	}
	if ip := net.ParseIP(host); host == "" || (ip != nil && ip.IsUnspecified()) {
		remoteHost, _, rerr := net.SplitHostPort(conn.RemoteAddr().String())
		if rerr != nil {
			return "", fmt.Errorf("audit: resolving registration host: %w", rerr)
		}
		host = remoteHost
	}
	return net.JoinHostPort(host, port), nil
}

// RegisterWorker announces a worker's job listener to a coordinator's
// registration address and keeps the registration alive: whenever the
// registration connection drops (a coordinator crash or restart), it
// redials with capped exponential backoff and re-registers, until stop
// closes. Run it alongside EpochWorker.Serve; advertise is the address the
// worker's job listener serves on (an unspecified host is resolved by the
// coordinator). onState, when non-nil, observes each registration outcome
// (for banners and tests).
func RegisterWorker(coordAddr, advertise string, stop <-chan struct{}, onState func(accepted bool, reason string)) {
	const (
		baseBackoff = 100 * time.Millisecond
		maxBackoff  = 5 * time.Second
	)
	delay := baseBackoff
	for {
		select {
		case <-stop:
			return
		default:
		}
		if registerOnce(coordAddr, advertise, stop, onState) {
			// We were registered and held the connection for a while;
			// whatever dropped it, start knocking gently again.
			delay = baseBackoff
		}
		select {
		case <-stop:
			return
		case <-time.After(delay):
		}
		delay *= 2
		if delay > maxBackoff {
			delay = maxBackoff
		}
	}
}

// registerOnce performs one Hello/Welcome exchange and, on acceptance,
// blocks holding the registration connection until it drops or stop
// closes. Returns whether the registration was accepted.
func registerOnce(coordAddr, advertise string, stop <-chan struct{}, onState func(bool, string)) bool {
	conn, err := net.DialTimeout("tcp", coordAddr, regHandshakeTimeout)
	if err != nil {
		return false
	}
	defer conn.Close()
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-stop:
			conn.Close()
		case <-done:
		}
	}()

	hello := wire.RegistrationHello{
		Version: wire.RegistrationVersion, Addr: advertise, Capabilities: wire.CapDeltaJobs,
	}
	conn.SetWriteDeadline(time.Now().Add(regHandshakeTimeout))
	if err := writeDistFrame(conn, wire.DistFrameHello, hello.Marshal()); err != nil {
		return false
	}
	conn.SetReadDeadline(time.Now().Add(regHandshakeTimeout))
	kind, body, err := readDistFrame(conn)
	if err != nil || kind != wire.DistFrameWelcome {
		return false
	}
	welcome, err := wire.ParseRegistrationWelcome(body)
	if err != nil {
		return false
	}
	if onState != nil {
		onState(welcome.Accepted, welcome.Reason)
	}
	if !welcome.Accepted {
		return false
	}
	// Registered. Hold the connection: a read error means the coordinator
	// went away and we should announce ourselves to its successor.
	conn.SetReadDeadline(time.Time{})
	_, _ = io.Copy(io.Discard, conn)
	return true
}
