package audit_test

import (
	"strings"
	"testing"

	"repro/internal/audit"
	"repro/internal/avmm"
	"repro/internal/lang"
	"repro/internal/netsim"
	"repro/internal/sig"
	"repro/internal/tevlog"
	"repro/internal/vm"
)

const portConsts = `
	const NET_RX_STATUS = 0x20;
	const NET_RX_LEN = 0x21;
	const NET_RX_FROM = 0x22;
	const NET_RX_BYTE = 0x23;
	const NET_RX_DONE = 0x24;
	const NET_TX_BYTE = 0x28;
	const NET_TX_COMMIT = 0x29;
	const CLOCK_LO = 0x01;
	const DEBUG = 0x60;
`

// echoSrc is a five-message echo server.
const echoSrc = portConsts + `
	interrupt(1) func on_net() { }
	func main() {
		sti();
		var echoed = 0;
		while (echoed < 5) {
			while (in(NET_RX_STATUS) == 0) { wfi(); }
			var n = in(NET_RX_LEN);
			var from = in(NET_RX_FROM);
			var i = 0;
			while (i < n) {
				out(NET_TX_BYTE, in(NET_RX_BYTE));
				i = i + 1;
			}
			out(NET_RX_DONE, 0);
			out(NET_TX_COMMIT, from);
			echoed = echoed + 1;
		}
		halt();
	}
`

// cheatEchoSrc is the same server but it corrupts the second byte of every
// echo — a behavioural modification of the image, like an installed cheat.
const cheatEchoSrc = portConsts + `
	interrupt(1) func on_net() { }
	func main() {
		sti();
		var echoed = 0;
		while (echoed < 5) {
			while (in(NET_RX_STATUS) == 0) { wfi(); }
			var n = in(NET_RX_LEN);
			var from = in(NET_RX_FROM);
			var i = 0;
			while (i < n) {
				var b = in(NET_RX_BYTE);
				if (i == 1) { b = b + 1; }
				out(NET_TX_BYTE, b);
				i = i + 1;
			}
			out(NET_RX_DONE, 0);
			out(NET_TX_COMMIT, from);
			echoed = echoed + 1;
		}
		halt();
	}
`

// clientSrc sends five two-byte messages to node 1 and waits for each echo,
// reading the clock once per round so the log carries nondet entries.
const clientSrc = portConsts + `
	var acked = 0;
	interrupt(1) func on_net() { }
	func main() {
		sti();
		var sent = 0;
		while (sent < 5) {
			out(DEBUG, in(CLOCK_LO));
			out(NET_TX_BYTE, 0x50);
			out(NET_TX_BYTE, sent);
			out(NET_TX_COMMIT, 1);
			while (in(NET_RX_STATUS) == 0) { wfi(); }
			var n = in(NET_RX_LEN);
			var i = 0;
			while (i < n) { out(DEBUG, in(NET_RX_BYTE)); i = i + 1; }
			out(NET_RX_DONE, 0);
			acked = acked + 1;
			sent = sent + 1;
		}
		halt();
	}
`

func compile(t *testing.T, name, src string) *vm.Image {
	t.Helper()
	img, err := lang.Compile(name, src, lang.Options{MemSize: 64 * 1024})
	if err != nil {
		t.Fatalf("compiling %s: %v", name, err)
	}
	return img
}

// buildEchoWorld wires a two-node world: node 0 runs the client, node 1
// runs serverImg. Both record in the given mode.
func buildEchoWorld(t *testing.T, mode avmm.Mode, serverImg *vm.Image) (*avmm.World, *avmm.Monitor, *avmm.Monitor) {
	t.Helper()
	clientImg := compile(t, "client", clientSrc)
	net := netsim.New(netsim.Config{BaseLatencyNs: 100_000, Seed: 7})
	keys := sig.NewKeyStore()
	w := avmm.NewWorld(net, keys)

	mkSigner := func(id sig.NodeID) sig.Signer {
		if mode.Signs() {
			return sig.MustGenerateRSA(id, sig.DefaultKeyBits, "e2e")
		}
		return sig.NullSigner{Node: id}
	}
	alice, err := avmm.NewMonitor(avmm.Config{
		Node: "alice", Index: 0, Mode: mode, Signer: mkSigner("alice"),
		Keys: keys, Image: clientImg, Net: net, RNGSeed: 11,
	})
	if err != nil {
		t.Fatalf("alice monitor: %v", err)
	}
	bob, err := avmm.NewMonitor(avmm.Config{
		Node: "bob", Index: 1, Mode: mode, Signer: mkSigner("bob"),
		Keys: keys, Image: serverImg, Net: net, RNGSeed: 12,
	})
	if err != nil {
		t.Fatalf("bob monitor: %v", err)
	}
	if err := w.Add(alice); err != nil {
		t.Fatal(err)
	}
	if err := w.Add(bob); err != nil {
		t.Fatal(err)
	}
	return w, alice, bob
}

// auditOf runs a full audit of mon using auths collected by its peer plus
// the machine's own head authenticator.
func auditOf(t *testing.T, a *audit.Auditor, mon, peer *avmm.Monitor) *audit.Result {
	t.Helper()
	auths := peer.AuthenticatorsFor(mon.Node())
	head, err := mon.Log.LastAuthenticator()
	if err != nil {
		t.Fatalf("head authenticator: %v", err)
	}
	auths = append(auths, head)
	return a.AuditFull(mon.Node(), uint32(mon.Index()), mon.Log.All(), auths)
}

func TestHonestExecutionPassesAudit(t *testing.T) {
	for _, mode := range []avmm.Mode{avmm.ModeAVMMNoSig, avmm.ModeAVMMRSA} {
		t.Run(mode.String(), func(t *testing.T) {
			serverImg := compile(t, "echo", echoSrc)
			w, alice, bob := buildEchoWorld(t, mode, serverImg)
			if !w.RunUntil(w.AllHalted, 60_000_000_000) {
				t.Fatalf("world did not quiesce: alice halted=%v bob halted=%v",
					alice.Machine.Halted, bob.Machine.Halted)
			}
			if alice.Machine.FaultInfo != nil || bob.Machine.FaultInfo != nil {
				t.Fatalf("guest fault: alice=%v bob=%v", alice.Machine.FaultInfo, bob.Machine.FaultInfo)
			}

			a := &audit.Auditor{
				Keys: w.Keys, RefImage: serverImg, RNGSeed: 12,
				TamperEvident: true, VerifySignatures: mode.Signs(),
			}
			res := auditOf(t, a, bob, alice)
			if !res.Passed {
				t.Fatalf("audit of honest bob failed: %v", res.Fault)
			}
			if res.Replay.SendsMatched != 5 {
				t.Errorf("replay matched %d sends, want 5", res.Replay.SendsMatched)
			}

			clientImg := compile(t, "client", clientSrc)
			a2 := &audit.Auditor{
				Keys: w.Keys, RefImage: clientImg, RNGSeed: 11,
				TamperEvident: true, VerifySignatures: mode.Signs(),
			}
			res2 := auditOf(t, a2, alice, bob)
			if !res2.Passed {
				t.Fatalf("audit of honest alice failed: %v", res2.Fault)
			}
		})
	}
}

func TestCheaterIsDetectedAndEvidenceVerifies(t *testing.T) {
	refImg := compile(t, "echo", echoSrc)
	cheatImg := compile(t, "echo-cheat", cheatEchoSrc)
	w, alice, bob := buildEchoWorld(t, avmm.ModeAVMMRSA, cheatImg)
	if !w.RunUntil(w.AllHalted, 60_000_000_000) {
		t.Fatal("world did not quiesce")
	}

	// Alice audits bob against the REFERENCE image; bob ran the cheat.
	a := &audit.Auditor{
		Keys: w.Keys, RefImage: refImg, RNGSeed: 12,
		TamperEvident: true, VerifySignatures: true,
	}
	res := auditOf(t, a, bob, alice)
	if res.Passed {
		t.Fatal("audit of cheating bob passed; want divergence")
	}
	if res.Fault.Check != audit.CheckSemantic {
		t.Errorf("fault check = %v, want semantic divergence", res.Fault.Check)
	}

	// Alice bundles evidence; Charlie (a third party with his own reference
	// image and keys) verifies it independently.
	head, err := bob.Log.LastAuthenticator()
	if err != nil {
		t.Fatal(err)
	}
	ev := &audit.Evidence{
		Accused: "bob", AccusedIdx: 1, Reason: res.Fault.Detail,
		Entries: bob.Log.All(),
		Auths:   append(alice.AuthenticatorsFor("bob"), head),
		RNGSeed: 12,
	}
	verdict, err := audit.VerifyEvidence(ev, audit.VerifierConfig{
		Keys: w.Keys, RefImage: refImg, TamperEvident: true, VerifySignatures: true,
	})
	if err != nil {
		t.Fatalf("third party rejected valid evidence: %v", err)
	}
	if verdict.Passed {
		t.Fatal("third party found no fault in valid evidence")
	}

	// The same bundle against the CHEAT image as reference must NOT
	// demonstrate a fault (accuracy: bob really ran that image).
	if _, err := audit.VerifyEvidence(ev, audit.VerifierConfig{
		Keys: w.Keys, RefImage: cheatImg, TamperEvident: true, VerifySignatures: true,
	}); err == nil {
		t.Fatal("evidence verified against the very image bob ran; accuracy violated")
	}
}

func TestLogTamperingIsDetected(t *testing.T) {
	serverImg := compile(t, "echo", echoSrc)
	w, alice, bob := buildEchoWorld(t, avmm.ModeAVMMRSA, serverImg)
	if !w.RunUntil(w.AllHalted, 60_000_000_000) {
		t.Fatal("world did not quiesce")
	}
	a := &audit.Auditor{
		Keys: w.Keys, RefImage: serverImg, RNGSeed: 12,
		TamperEvident: true, VerifySignatures: true,
	}

	head, err := bob.Log.LastAuthenticator()
	if err != nil {
		t.Fatal(err)
	}
	auths := append(alice.AuthenticatorsFor("bob"), head)

	mutations := map[string]func([]tevlog.Entry) []tevlog.Entry{
		"modify entry": func(es []tevlog.Entry) []tevlog.Entry {
			i := len(es) / 2
			es[i].Content = append([]byte(nil), es[i].Content...)
			es[i].Content[len(es[i].Content)-1] ^= 1
			return es
		},
		"drop entry": func(es []tevlog.Entry) []tevlog.Entry {
			out := append([]tevlog.Entry(nil), es[:10]...)
			return append(out, es[11:]...)
		},
		"reorder entries": func(es []tevlog.Entry) []tevlog.Entry {
			es[5], es[6] = es[6], es[5]
			return es
		},
		"truncate log": func(es []tevlog.Entry) []tevlog.Entry {
			return es[:len(es)/2]
		},
	}
	for name, mutate := range mutations {
		t.Run(name, func(t *testing.T) {
			entries := mutate(bob.Log.All())
			res := a.AuditFull("bob", 1, entries, auths)
			if res.Passed {
				t.Fatalf("audit passed on log with mutation %q", name)
			}
			if res.Fault.Check != audit.CheckLog {
				t.Errorf("fault check = %v, want log verification failure", res.Fault.Check)
			}
		})
	}
}

func TestForkedLogIsDetected(t *testing.T) {
	signer := sig.MustGenerateRSA("mallory", sig.DefaultKeyBits, "fork")
	log1 := tevlog.New(signer)
	log2 := tevlog.New(signer)
	log1.Append(tevlog.TypeAnnotation, []byte("shared prefix"))
	log2.Append(tevlog.TypeAnnotation, []byte("shared prefix"))
	log1.Append(tevlog.TypeSend, []byte("to alice"))
	log2.Append(tevlog.TypeSend, []byte("to charlie"))
	a1, err := log1.LastAuthenticator()
	if err != nil {
		t.Fatal(err)
	}
	a2, err := log2.LastAuthenticator()
	if err != nil {
		t.Fatal(err)
	}
	if err := tevlog.CheckFork(a1, a2); err == nil {
		t.Fatal("conflicting authenticators not flagged as fork")
	}
}

func TestAuditRejectsWrongSeed(t *testing.T) {
	// An auditor using the wrong reference configuration must not pass an
	// honest machine off as faulty silently — it reports a divergence,
	// demonstrating why assumption 4 (known reference) matters. The RNG
	// seed only matters if the guest reads the RNG; the client reads the
	// clock, whose values come from the log, so a wrong seed is actually
	// harmless there. This test documents that property instead: replay is
	// insensitive to host-side seeds for clock-only guests.
	serverImg := compile(t, "echo", echoSrc)
	w, alice, bob := buildEchoWorld(t, avmm.ModeAVMMRSA, serverImg)
	if !w.RunUntil(w.AllHalted, 60_000_000_000) {
		t.Fatal("world did not quiesce")
	}
	_ = alice
	a := &audit.Auditor{
		Keys: w.Keys, RefImage: serverImg, RNGSeed: 99, // wrong seed
		TamperEvident: true, VerifySignatures: true,
	}
	res := auditOf(t, a, bob, alice)
	if !res.Passed {
		if !strings.Contains(res.Fault.Detail, "root") {
			t.Fatalf("unexpected fault kind with wrong seed: %v", res.Fault)
		}
	}
}
