package audit_test

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/archive"
	"repro/internal/audit"
	"repro/internal/avmm"
	"repro/internal/game"
	"repro/internal/sig"
	"repro/internal/snapshot"
)

// Equivalence harness for the archive-backed audit paths: whatever the
// in-memory serial auditor concludes, auditing the same recording through
// a disk archive — serial over ReadLog, streaming over an EntrySource,
// distributed over archive-materialized states — must conclude
// byte-identically. A corrupted archive must surface as a fault, never as
// a different verdict.

// writeNodeArchive archives node's recording into a fresh directory and
// reopens it cold, so every subsequent read comes off disk through the
// manifest the reopen replayed.
func writeNodeArchive(t *testing.T, s *game.Scenario, node string) (string, *archive.Archive) {
	t.Helper()
	target, _, _, err := s.AuditInputs(sig.NodeID(node))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	arc, err := archive.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	var sf *snapshot.StoreFile
	if target.Snaps != nil && target.Snaps.Count() > 0 {
		f := target.Snaps.File()
		sf = &f
	}
	if err := arc.WriteRecording(node, target.Log.All(), sf); err != nil {
		t.Fatal(err)
	}
	if err := arc.Close(); err != nil {
		t.Fatal(err)
	}
	arc2, err := archive.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { arc2.Close() })
	return dir, arc2
}

// archiveClosures builds the Materialize/DeltaSource engine options over
// the archive's increment source, as cmd/avm-audit wires them.
func archiveClosures(t *testing.T, arc *archive.Archive, node string) (func(uint32) (*snapshot.Restored, error), func(uint32) (*snapshot.Delta, error)) {
	t.Helper()
	n, err := arc.Snapshots(node)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		return nil, nil
	}
	src, err := arc.IncrementSource(node)
	if err != nil {
		t.Fatal(err)
	}
	materialize := func(snapIdx uint32) (*snapshot.Restored, error) {
		return snapshot.MaterializeFrom(src, int(snapIdx))
	}
	deltaSrc := func(k uint32) (*snapshot.Delta, error) {
		return snapshot.DeltaFrom(src, int(k))
	}
	return materialize, deltaSrc
}

// auditViaArchive audits node through the archive on the serial, stream
// and dist engines and fails the test on any divergence from serial.
func auditViaArchive(t *testing.T, s *game.Scenario, node, label string, serial *audit.Result) {
	t.Helper()
	_, arc := writeNodeArchive(t, s, node)
	target, auths, a, err := s.AuditInputs(sig.NodeID(node))
	if err != nil {
		t.Fatal(err)
	}
	nodeIdx := uint32(target.Index())
	materialize, deltaSrc := archiveClosures(t, arc, node)

	entries, err := arc.ReadLog(node)
	if err != nil {
		t.Fatalf("%s: ReadLog: %v", label, err)
	}
	res, _, err := a.Audit(audit.AuditRequest{
		Node: sig.NodeID(node), NodeIdx: nodeIdx,
		Engine: audit.EngineSerial, Entries: entries, Auths: auths,
	})
	if err != nil {
		t.Fatalf("%s: archive serial: %v", label, err)
	}
	compareVerdicts(t, label+": archive serial", serial, res)

	src, err := arc.EntrySource(node)
	if err != nil {
		t.Fatal(err)
	}
	res, _, err = a.Audit(audit.AuditRequest{
		Node: sig.NodeID(node), NodeIdx: nodeIdx,
		Engine: audit.EngineStream, Source: src, Auths: auths,
		Options: audit.EngineOptions{Workers: 2, Materialize: materialize},
	})
	if err != nil {
		t.Fatalf("%s: archive stream: %v", label, err)
	}
	compareVerdicts(t, label+": archive stream", serial, res)

	res, _, err = a.Audit(audit.AuditRequest{
		Node: sig.NodeID(node), NodeIdx: nodeIdx,
		Engine: audit.EngineDist, Entries: entries, Auths: auths,
		Options: audit.EngineOptions{Workers: 2, Materialize: materialize, DeltaSource: deltaSrc},
	})
	if err != nil {
		t.Fatalf("%s: archive dist: %v", label, err)
	}
	compareVerdicts(t, label+": archive dist", serial, res)
}

func TestArchiveAuditEquivalenceClean(t *testing.T) {
	s, err := game.NewScenario(game.ScenarioConfig{
		Players: 2, Mode: avmm.ModeAVMMRSA, Cost: avmm.DefaultCostModel(),
		Seed: 7, SnapshotEveryNs: eqSnapNs, FakeSignatures: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(2 * eqMatchNs)
	for _, node := range []string{"player1", "player2"} {
		serial, err := s.AuditNode(sig.NodeID(node))
		if err != nil {
			t.Fatal(err)
		}
		if !serial.Passed {
			t.Fatalf("clean run: serial audit of %s failed: %v", node, serial.Fault)
		}
		auditViaArchive(t, s, node, "clean/"+node, serial)
	}
}

func TestArchiveAuditEquivalenceCheats(t *testing.T) {
	if testing.Short() {
		t.Skip("26 matches; skipped in -short")
	}
	for _, cheat := range game.Catalog() {
		cheat := cheat
		t.Run(cheat.Name, func(t *testing.T) {
			s, err := game.NewScenario(game.ScenarioConfig{
				Players: 2, Mode: avmm.ModeAVMMRSA, Cost: avmm.DefaultCostModel(),
				Seed: 2024, CheatPlayer: 1, Cheat: cheat,
				SnapshotEveryNs: eqMatchNs / 3, FakeSignatures: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			s.Run(eqMatchNs)
			serial, err := s.AuditNode("player1")
			if err != nil {
				t.Fatal(err)
			}
			auditViaArchive(t, s, "player1", "cheater/"+cheat.Name, serial)
			honest, err := s.AuditNode("player2")
			if err != nil {
				t.Fatal(err)
			}
			if !honest.Passed {
				t.Errorf("honest player failed audit during %q match: %v", cheat.Name, honest.Fault)
			}
			auditViaArchive(t, s, "player2", "honest/"+cheat.Name, honest)
		})
	}
}

// TestArchiveCorruptionSurfacesAsFault: flipping archived bytes must
// surface as the tampered-input fault class — CheckLog for an entry
// segment, CheckSnapshot for a snapshot increment — never as a pass or a
// silent divergence.
func TestArchiveCorruptionSurfacesAsFault(t *testing.T) {
	s, err := game.NewScenario(game.ScenarioConfig{
		Players: 2, Mode: avmm.ModeAVMMRSA, Cost: avmm.DefaultCostModel(),
		Seed: 7, SnapshotEveryNs: eqSnapNs, FakeSignatures: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(2 * eqMatchNs)
	node := "player1"
	dir, arc := writeNodeArchive(t, s, node)
	arc.Close()
	target, auths, a, err := s.AuditInputs(sig.NodeID(node))
	if err != nil {
		t.Fatal(err)
	}
	nodeIdx := uint32(target.Index())

	tile := filepath.Join(dir, node+archive.TileSuffix)
	raw, err := os.ReadFile(tile)
	if err != nil {
		t.Fatal(err)
	}

	// Snapshot increments precede epoch segments in the tile: byte 0 sits
	// inside snapshot 0. Materialization must fail, and a stream audit
	// forced through it must report a snapshot fault.
	corrupt := append([]byte(nil), raw...)
	corrupt[0] ^= 0xFF
	if err := os.WriteFile(tile, corrupt, 0o644); err != nil {
		t.Fatal(err)
	}
	arc2, err := archive.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	materialize, _ := archiveClosures(t, arc2, node)
	if _, err := materialize(0); err == nil {
		t.Fatal("materializing over a corrupt increment succeeded")
	}
	src, err := arc2.EntrySource(node)
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := a.Audit(audit.AuditRequest{
		Node: sig.NodeID(node), NodeIdx: nodeIdx,
		Engine: audit.EngineStream, Source: src, Auths: auths,
		Options: audit.EngineOptions{Workers: 2, Materialize: materialize},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Passed {
		t.Fatal("audit over a corrupt snapshot increment passed")
	}
	if res.Fault.Check != audit.CheckSnapshot {
		t.Fatalf("fault check = %v, want %v (detail: %s)", res.Fault.Check, audit.CheckSnapshot, res.Fault.Detail)
	}
	arc2.Close()

	// The last tile byte sits inside the final epoch's entry segment: the
	// stream source errors there and the verdict is a log fault.
	corrupt = append([]byte(nil), raw...)
	corrupt[len(corrupt)-1] ^= 0xFF
	if err := os.WriteFile(tile, corrupt, 0o644); err != nil {
		t.Fatal(err)
	}
	arc3, err := archive.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer arc3.Close()
	if _, err := arc3.ReadLog(node); err == nil {
		t.Fatal("ReadLog over a corrupt epoch segment succeeded")
	}
	materialize, _ = archiveClosures(t, arc3, node)
	src, err = arc3.EntrySource(node)
	if err != nil {
		t.Fatal(err)
	}
	res, _, err = a.Audit(audit.AuditRequest{
		Node: sig.NodeID(node), NodeIdx: nodeIdx,
		Engine: audit.EngineStream, Source: src, Auths: auths,
		Options: audit.EngineOptions{Workers: 2, Materialize: materialize},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Passed {
		t.Fatal("audit over a corrupt entry segment passed")
	}
	if res.Fault.Check != audit.CheckLog {
		t.Fatalf("fault check = %v, want %v (detail: %s)", res.Fault.Check, audit.CheckLog, res.Fault.Detail)
	}
}

// TestArchiveSpotCheckSource: the disk-backed SegmentSource must agree
// with the in-memory MonitorSource on segment geometry and outcomes, and
// must refuse to serve chunks from a corrupted window.
func TestArchiveSpotCheckSource(t *testing.T) {
	s, err := game.NewScenario(game.ScenarioConfig{
		Players: 2, Mode: avmm.ModeAVMMRSA, Cost: avmm.DefaultCostModel(),
		Seed: 7, SnapshotEveryNs: eqSnapNs, FakeSignatures: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(2 * eqMatchNs)
	node := "player1"
	target, auths, a, err := s.AuditInputs(sig.NodeID(node))
	if err != nil {
		t.Fatal(err)
	}
	dir, arc := writeNodeArchive(t, s, node)

	mem := &audit.MonitorSource{
		Node: sig.NodeID(node), NodeIdx: uint32(target.Index()),
		Entries: target.Log.All(), Auths: auths,
		Materialize: func(k int) (*snapshot.Restored, error) { return target.Snaps.Materialize(k) },
	}
	disk := &audit.ArchiveSource{
		Arc: arc, Node: sig.NodeID(node), NodeIdx: uint32(target.Index()), Auths: auths,
	}
	memPts, err := mem.Segments()
	if err != nil {
		t.Fatal(err)
	}
	diskPts, err := disk.Segments()
	if err != nil {
		t.Fatal(err)
	}
	if len(memPts) != len(diskPts) {
		t.Fatalf("segment points: disk %d, memory %d", len(diskPts), len(memPts))
	}
	for i := range memPts {
		if memPts[i] != diskPts[i] {
			t.Fatalf("segment point %d: disk %+v, memory %+v", i, diskPts[i], memPts[i])
		}
	}
	policy := audit.RecentFirst{K: 1 << 30}
	want, err := a.SpotCheckParallel(mem, policy, 2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := a.SpotCheckParallel(disk, policy, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got.SegmentsTotal != want.SegmentsTotal || got.SegmentsChecked != want.SegmentsChecked || got.FaultFound != want.FaultFound {
		t.Fatalf("spot check outcome: disk %+v, memory %+v", got, want)
	}
	if got.SegmentsChecked == 0 {
		t.Fatal("no segments spot-checked; the recording has no snapshots")
	}

	// Corrupt epoch 1 — the segment chunk 0 reads — so a spot check over
	// it must error out, not audit garbage. Epoch segments end the tile:
	// epoch 1 starts at fileSize - sum(bytes of epochs 1..n-1).
	nEpochs, err := arc.Epochs(node)
	if err != nil {
		t.Fatal(err)
	}
	var fromEnd int64
	for k := 1; k < nEpochs; k++ {
		info, err := arc.EpochInfo(node, k)
		if err != nil {
			t.Fatal(err)
		}
		fromEnd += info.Bytes
	}
	arc.Close()
	tile := filepath.Join(dir, node+archive.TileSuffix)
	raw, err := os.ReadFile(tile)
	if err != nil {
		t.Fatal(err)
	}
	raw[int64(len(raw))-fromEnd] ^= 0xFF
	if err := os.WriteFile(tile, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	arcC, err := archive.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer arcC.Close()
	diskC := &audit.ArchiveSource{
		Arc: arcC, Node: sig.NodeID(node), NodeIdx: uint32(target.Index()), Auths: auths,
	}
	if _, err := a.SpotCheckParallel(diskC, policy, 2); err == nil {
		t.Fatal("spot check over a corrupt archive succeeded")
	}
}
