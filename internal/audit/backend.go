package audit

import (
	"fmt"
	"runtime"

	"repro/internal/sig"
	"repro/internal/snapshot"
	"repro/internal/tevlog"
	"repro/internal/vm"
	"repro/internal/wire"
)

// This file is the router/backend split of the epoch replay engine. The
// partitioning rule (slice the log at snapshot entries), the earliest-fault
// cutoff and the deterministic merge live in the router; *where* an epoch
// replays is an EpochBackend: the in-process worker pool (PoolBackend), a
// simulated lossy network (NetsimBackend), or real TCP workers
// (TCPBackend). Every backend produces verdicts byte-identical to a serial
// replay of the same epochs, so the audit's conclusion never depends on
// where the replay ran.

// EpochJob is one self-contained epoch replay job: the slice of the log
// between two snapshot entries, plus the authenticated identity of its
// starting state. Remote backends ship jobs whole; the in-process pool
// leaves Start nil and materializes on the worker goroutine.
type EpochJob struct {
	Index int
	// Boot marks the first epoch, replayed from the reference image.
	Boot bool
	// StartSnap/StartRoot/StartSeq identify and authenticate the starting
	// state of a non-boot epoch, exactly as in the epoch-parallel engine.
	StartSnap uint32
	StartRoot [32]byte
	StartSeq  uint64
	// Start is the materialized starting state. Nil jobs are materialized
	// by the worker from its local snapshot source; wire-shipped jobs carry
	// the state (the coordinator verifies it against StartRoot before
	// dispatch, the worker re-verifies while seeding its live tree).
	Start *snapshot.Restored
	// Entries is the epoch's entry run. Epochs that end at a snapshot
	// include that snapshot entry, so the boundary root is verified by the
	// epoch that derives it.
	Entries []tevlog.Entry
	// Cost estimates the epoch's replay effort in instructions, derived
	// from the landmark instruction counts consecutive snapshots commit.
	// Remote backends weight their chain-affinity block splits by it so one
	// hot epoch does not serialize a fleet; 0 means unknown (weighted
	// splits fall back to equal epoch counts).
	Cost uint64
}

// Session is the per-audit reference configuration an epoch replay needs:
// who is being audited, the trusted reference image, and the reference
// device-RNG seed. It is everything a replay worker holds — no keys, no
// recording, no guest sources.
type Session struct {
	Node             sig.NodeID
	RefImage         *vm.Image
	RNGSeed          uint64
	DisablePredecode bool
	DisableFusion    bool
}

// session assembles the auditor's replay session for a node.
func (a *Auditor) session(node sig.NodeID) Session {
	return Session{Node: node, RefImage: a.RefImage, RNGSeed: a.RNGSeed,
		DisablePredecode: a.DisablePredecode, DisableFusion: a.DisableFusion}
}

// EpochVerdict is one epoch's outcome as reported by a backend.
type EpochVerdict struct {
	Index int
	Stats ReplayStats
	Fault *FaultReport
	// Err is a transport/backend failure: the epoch could not be replayed
	// anywhere (distinct from an audit fault, which is a verdict). The
	// router fails the audit when an errored epoch is needed for the merge.
	Err error
	// Worker names the backend worker that produced the verdict
	// (diagnostics; "" for the in-process pool).
	Worker string
	// Attempts counts dispatch attempts for this epoch, 1 for a first-try
	// success. Retries and straggler re-dispatches raise it.
	Attempts int
	// WireBytes counts job+verdict payload bytes shipped for this epoch
	// across all attempts (0 for the in-process pool).
	WireBytes int
	// WireBytesFull and WireBytesDelta split the job-frame bytes by
	// encoding (full-state vs delta-shipped); verdict bytes count toward
	// WireBytes only.
	WireBytesFull  int
	WireBytesDelta int
	// DeltaShipped counts delta-encoded dispatches of this epoch;
	// DeltaFallbacks counts full-state re-ships after the worker reported
	// a missing base state.
	DeltaShipped   int
	DeltaFallbacks int
}

// EpochBackend executes epoch replay jobs on behalf of the router.
type EpochBackend interface {
	// Remote reports whether jobs must carry materialized start states
	// (wire-shipped backends). The router materializes and root-verifies
	// starts before dispatch for remote backends; for local backends it
	// hands out lazy jobs the pool materializes itself.
	Remote() bool
	// Run replays the jobs, calling emit exactly once per job that is not
	// skipped (possibly from multiple goroutines). skip(i) reports that
	// epoch i can no longer affect the merged verdict (the earliest-fault
	// cutoff); backends should consult it before dispatching a job and may
	// drop jobs for which it returns true. Run returns only catastrophic
	// failures (every worker unreachable); per-epoch failures travel as
	// EpochVerdict.Err.
	Run(sess Session, jobs []*EpochJob, skip func(int) bool, emit func(EpochVerdict)) error
}

// runEpochJob replays one epoch. Boot jobs replay from the session's
// reference image; other jobs replay from their materialized start state —
// taken from the job, or from the materialize source when the job travels
// lazily — which is verified against the committed root before the first
// instruction executes (the state is untrusted, §4.5). The verification
// tree becomes the replay's live tree, so snapshot entries inside the
// epoch verify incrementally.
func runEpochJob(sess Session, job *EpochJob, materialize func(snapIdx uint32) (*snapshot.Restored, error)) epochResult {
	return runEpochJobEx(sess, job, materialize, false)
}

// runEpochJobEx is runEpochJob with optional end-state capture: remote
// workers ask for the verified end-of-epoch state (a memory copy per
// epoch) to seed their connection cache; in-process engines, which never
// ship state, do not.
func runEpochJobEx(sess Session, job *EpochJob, materialize func(snapIdx uint32) (*snapshot.Restored, error), captureEnd bool) epochResult {
	var rp *Replay
	var err error
	if job.Boot {
		rp, err = NewReplayFromImage(sess.Node, sess.RefImage, sess.RNGSeed)
		if err != nil {
			return epochResult{fault: &FaultReport{Node: sess.Node, Check: CheckSemantic, Detail: err.Error()}}
		}
	} else {
		restored := job.Start
		if restored == nil {
			if materialize == nil {
				return epochResult{fault: &FaultReport{
					Node: sess.Node, Check: CheckSnapshot, EntrySeq: job.StartSeq,
					Detail: fmt.Sprintf("materializing snapshot %d: no snapshot source", job.StartSnap),
				}}
			}
			var merr error
			restored, merr = materialize(job.StartSnap)
			if merr != nil {
				return epochResult{fault: &FaultReport{
					Node: sess.Node, Check: CheckSnapshot, EntrySeq: job.StartSeq,
					Detail: fmt.Sprintf("materializing snapshot %d: %v", job.StartSnap, merr),
				}}
			}
		}
		lh := &snapshot.LiveStateHasher{}
		if verr := lh.SeedVerify(restored, job.StartRoot); verr != nil {
			return epochResult{fault: &FaultReport{
				Node: sess.Node, Check: CheckSnapshot, EntrySeq: job.StartSeq, Detail: verr.Error(),
			}}
		}
		rp, err = NewReplayFromSnapshot(sess.Node, restored, sess.RNGSeed)
		if err != nil {
			return epochResult{fault: &FaultReport{Node: sess.Node, Check: CheckSemantic, Detail: err.Error()}}
		}
		rp.AdoptStateHasher(lh)
	}
	rp.Machine().DisablePredecode = sess.DisablePredecode
	rp.Machine().DisableFusion = sess.DisableFusion
	rp.Feed(job.Entries)
	rp.Close()
	rp.Run()
	res := epochResult{stats: rp.Stats, fault: rp.Fault()}
	if captureEnd {
		res.end = rp.EndState()
	}
	return res
}

// PoolBackend replays epochs on a bounded in-process goroutine pool — the
// engine AuditFullParallel has always used, behind the backend seam.
type PoolBackend struct {
	// Workers bounds concurrent epochs. <= 0 selects runtime.NumCPU().
	Workers int
	// Materialize supplies starting states for lazy (Start == nil) jobs.
	Materialize func(snapIdx uint32) (*snapshot.Restored, error)
}

// Remote implements EpochBackend: pool jobs stay in-process and lazy.
func (b *PoolBackend) Remote() bool { return false }

// Run implements EpochBackend with the runPool index hand-out: indices are
// dispatched in order, skipped jobs are dropped, and every job below the
// final cutoff is guaranteed a verdict.
func (b *PoolBackend) Run(sess Session, jobs []*EpochJob, skip func(int) bool, emit func(EpochVerdict)) error {
	workers := b.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	runPool(len(jobs), workers, func(i int) bool {
		r := runEpochJob(sess, jobs[i], b.Materialize)
		emit(EpochVerdict{Index: i, Stats: r.stats, Fault: r.fault, Attempts: 1})
		return r.fault != nil
	})
	return nil
}

// --- wire conversions shared by the remote backends ---

// jobToWire converts an epoch job to its wire form. Remote jobs must carry
// a materialized start state (or be boot jobs).
func jobToWire(job *EpochJob) *wire.AuditJob {
	w := &wire.AuditJob{
		Index: uint64(job.Index), Boot: job.Boot,
		StartSnap: job.StartSnap, StartSeq: job.StartSeq, StartRoot: job.StartRoot,
		Entries: job.Entries,
	}
	if job.Start != nil {
		w.Mem = job.Start.Mem
		w.Machine = job.Start.Machine
		w.Device = job.Start.Device
		w.AuthDevice = job.Start.AuthDevice
	}
	return w
}

// jobFromWire reassembles a worker-side epoch job.
func jobFromWire(w *wire.AuditJob) *EpochJob {
	job := &EpochJob{
		Index: int(w.Index), Boot: w.Boot,
		StartSnap: w.StartSnap, StartSeq: w.StartSeq, StartRoot: w.StartRoot,
		Entries: w.Entries,
	}
	if !w.Boot {
		job.Start = &snapshot.Restored{
			Index: int(w.StartSnap), Mem: w.Mem, Machine: w.Machine,
			Device: w.Device, AuthDevice: w.AuthDevice, Root: w.StartRoot,
		}
	}
	return job
}

// sessionToWire converts a replay session to its wire form.
func sessionToWire(sess Session) *wire.AuditSession {
	return wire.SessionFromImage(string(sess.Node), sess.RefImage, sess.RNGSeed, sess.DisablePredecode, sess.DisableFusion)
}

// sessionFromWire reassembles a worker-side session.
func sessionFromWire(w *wire.AuditSession) (Session, error) {
	img, err := w.Image()
	if err != nil {
		return Session{}, err
	}
	return Session{Node: sig.NodeID(w.Node), RefImage: img, RNGSeed: w.RNGSeed,
		DisablePredecode: w.DisablePredecode, DisableFusion: w.DisableFusion}, nil
}

// verdictToWire converts an epoch outcome to its wire form.
func verdictToWire(index int, r epochResult) *wire.AuditVerdict {
	v := &wire.AuditVerdict{
		Index:             uint64(index),
		Instructions:      r.stats.Instructions,
		EntriesConsumed:   uint64(r.stats.EntriesConsumed),
		SendsMatched:      uint64(r.stats.SendsMatched),
		NondetsConsumed:   uint64(r.stats.NondetsConsumed),
		EventsInjected:    uint64(r.stats.EventsInjected),
		SnapshotsVerified: uint64(r.stats.SnapshotsVerified),
	}
	if r.fault != nil {
		v.HasFault = true
		v.FaultNode = string(r.fault.Node)
		v.FaultCheck = string(r.fault.Check)
		v.FaultDetail = r.fault.Detail
		v.FaultEntrySeq = r.fault.EntrySeq
		v.FaultLandmark = r.fault.Landmark
	}
	return v
}

// verdictFromWire reassembles an epoch outcome from its wire form.
func verdictFromWire(v *wire.AuditVerdict) epochResult {
	r := epochResult{stats: ReplayStats{
		Instructions:      v.Instructions,
		EntriesConsumed:   int(v.EntriesConsumed),
		SendsMatched:      int(v.SendsMatched),
		NondetsConsumed:   int(v.NondetsConsumed),
		EventsInjected:    int(v.EventsInjected),
		SnapshotsVerified: int(v.SnapshotsVerified),
	}}
	if v.HasFault {
		r.fault = &FaultReport{
			Node: sig.NodeID(v.FaultNode), Check: Check(v.FaultCheck),
			Detail: v.FaultDetail, EntrySeq: v.FaultEntrySeq, Landmark: v.FaultLandmark,
		}
	}
	return r
}
