package audit

import (
	"bytes"
	"fmt"

	"repro/internal/vm"
)

// This file implements §7.5's observation: faults are defined as deviations
// from the reference image, so a bug exercised identically by the recorded
// machine and the replica — say a buffer overflow that installs code — is
// NOT a fault and passes the audit. But deterministic replay is a perfect
// host for expensive runtime analysis that would be too slow in production:
// the auditor can watch the replayed execution with any instrumentation it
// likes. CodeModificationReport is one such analysis, the one the paper
// highlights: detecting unauthorized software modification (writes into the
// code region) during an otherwise clean audit.

// CodeModification describes a detected write into the image's code region.
type CodeModification struct {
	// Page is the memory page written.
	Page int
	// Changed reports whether the page's code bytes now differ from the
	// reference image (false means the write restored identical bytes —
	// still suspicious, still reported).
	Changed bool
	// FirstDiff is the first differing address, when Changed.
	FirstDiff uint32
}

// String renders the modification for fault details and logs.
func (c CodeModification) String() string {
	if c.Changed {
		return fmt.Sprintf("code page %d modified (first difference at 0x%x)", c.Page, c.FirstDiff)
	}
	return fmt.Sprintf("code page %d written (contents restored)", c.Page)
}

// AnalyzeCodeModification inspects a completed replay for writes into the
// reference image's code region. It relies on the replica's dirty-page
// tracking, which the image loader clears at boot, so every flagged page
// was written by the replayed execution itself. Pair it with a passing
// audit: a clean audit plus a non-empty report means the reference image
// allows self-modification — the §4.8 limitation made visible.
func AnalyzeCodeModification(rp *Replay, img *vm.Image) []CodeModification {
	m := rp.Machine()
	codeStart := int(vm.CodeBase)
	text := img.TextSize
	if text == 0 || text > len(img.Code) {
		text = len(img.Code)
	}
	codeEnd := codeStart + text
	var out []CodeModification
	for _, p := range m.DirtyPages() {
		pageStart := p * vm.PageSize
		pageEnd := pageStart + vm.PageSize
		if pageEnd <= codeStart || pageStart >= codeEnd {
			continue
		}
		// Overlap with the code region: compare against the image bytes.
		lo := pageStart
		if lo < codeStart {
			lo = codeStart
		}
		hi := pageEnd
		if hi > codeEnd {
			hi = codeEnd
		}
		mod := CodeModification{Page: p}
		imgSlice := img.Code[lo-codeStart : hi-codeStart]
		memSlice := m.Mem[lo:hi]
		if !bytes.Equal(imgSlice, memSlice) {
			mod.Changed = true
			for i := range imgSlice {
				if imgSlice[i] != memSlice[i] {
					mod.FirstDiff = uint32(lo + i)
					break
				}
			}
		}
		out = append(out, mod)
	}
	return out
}
