package audit

import (
	"errors"
	"fmt"

	"repro/internal/netsim"
	"repro/internal/snapshot"
	"repro/internal/wire"
)

// NetsimBackend replays epochs over the simulated network substrate: the
// coordinator is netsim node 0, workers are nodes 1..Workers, and every
// job and verdict rides a netsim frame through the link's configured
// latency, jitter, loss and partition filter. The simulated workers decode
// the same wire frames a TCP worker decodes and replay in-process, so the
// backend exercises the full codec path plus the coordinator's retry and
// re-dispatch machinery under deterministic packet loss, reordering (via
// jitter) and healable partitions (via netsim.Network.Filter) — scenarios
// a loopback TCP test cannot produce on demand.
//
// The run is single-threaded virtual time: verdicts are deterministic for
// a given netsim seed, loss rate and filter, which is what lets tests
// assert byte-identical audit results under adversarial links.
type NetsimBackend struct {
	// Net is the simulated network. The backend owns its Deliver callback
	// for the duration of Run and advances its virtual clock.
	Net *netsim.Network
	// Workers is the number of simulated worker nodes (netsim nodes
	// 1..Workers; the coordinator is node 0). <= 0 selects 3.
	Workers int
	// TimeoutNs is the virtual-time deadline after which a dispatched
	// epoch with no verdict is retransmitted (to the next worker in the
	// rotation). <= 0 selects 10ms of virtual time.
	TimeoutNs uint64
	// ServiceNs is the simulated per-epoch worker service time. <= 0
	// selects 1ms of virtual time.
	ServiceNs uint64
	// MaxAttempts bounds dispatch attempts per epoch. <= 0 selects
	// Workers+2.
	MaxAttempts int

	// deltaSrc, when set (via the dist router's deltaCapable seam), ships
	// jobs as proof-carrying delta chains per simulated worker. Frames then
	// carry a one-byte kind prefix to discriminate job encodings and
	// need-state replies.
	deltaSrc func(k uint32) (*snapshot.Delta, error)
}

// Remote implements EpochBackend: jobs ship whole and round-trip the wire
// codec.
func (b *NetsimBackend) Remote() bool { return true }

// withDelta implements deltaCapable.
func (b *NetsimBackend) withDelta(src func(k uint32) (*snapshot.Delta, error)) EpochBackend {
	nb := *b
	nb.deltaSrc = src
	return &nb
}

// Run implements EpochBackend on the virtual-time loop.
func (b *NetsimBackend) Run(sess Session, jobs []*EpochJob, skip func(int) bool, emit func(EpochVerdict)) error {
	workers := b.Workers
	if workers <= 0 {
		workers = 3
	}
	timeout := b.TimeoutNs
	if timeout == 0 {
		timeout = 10_000_000
	}
	service := b.ServiceNs
	if service == 0 {
		service = 1_000_000
	}
	maxAttempts := b.MaxAttempts
	if maxAttempts <= 0 {
		maxAttempts = workers + 2
	}

	// Simulated workers decode the session exactly as a TCP worker would,
	// so the image and configuration round-trip the codec once per run.
	workerSess, err := sessionFromWire(mustReparseSession(sessionToWire(sess)))
	if err != nil {
		return fmt.Errorf("audit: netsim session round-trip: %w", err)
	}

	type flight struct {
		deadline   uint64
		attempts   int
		sentTo     int
		bytes      int
		fullBytes  int
		deltaBytes int
		deltaSent  int
		deltaFalls int
	}
	pos := make(map[int]int, len(jobs)) // epoch index → position
	for p, j := range jobs {
		pos[j.Index] = p
	}
	state := make([]flight, len(jobs))
	settled := make([]bool, len(jobs))
	remaining := len(jobs)

	// With a delta source, each simulated worker gets a dispatcher-side
	// tracker and a worker-side state cache, mirroring one TCP connection
	// per worker.
	delta := b.deltaSrc != nil
	trackers := make([]*deltaTracker, workers+1)
	caches := make([]*stateCache, workers+1)
	for i := 1; i <= workers; i++ {
		trackers[i] = &deltaTracker{src: b.deltaSrc}
		caches[i] = newStateCache()
	}

	net := b.Net
	prevDeliver, prevFilter := net.Deliver, net.Filter
	defer func() { net.Deliver, net.Filter = prevDeliver, prevFilter }()
	// Keep any caller-installed filter (partitions) active during the run.
	net.Filter = prevFilter

	// shipFullTo sends position p's full-state frame to worker w, advancing
	// w's tracker. With delta enabled the frame carries a kind prefix.
	shipFullTo := func(p, w int) {
		payload := jobToWire(jobs[p]).Marshal()
		if delta {
			payload = append([]byte{byte(wire.DistFrameJob)}, payload...)
			trackers[w].noteFull(jobs[p])
		}
		state[p].fullBytes += len(payload)
		state[p].bytes += len(payload)
		state[p].deadline = net.Now() + timeout
		net.Send(net.Now(), 0, w, payload, len(payload)+wire.TCPIPOverhead)
	}

	var runErr error
	net.Deliver = func(f netsim.Frame) {
		if f.To == 0 {
			// Verdict (or need-state) arriving at the coordinator.
			data := f.Data
			if delta {
				if len(data) == 0 {
					runErr = errors.New("audit: netsim empty coordinator frame")
					return
				}
				kind := wire.DistFrameKind(data[0])
				data = data[1:]
				if kind == wire.DistFrameNeedState {
					// The worker evicted the delta base: invalidate its
					// tracker and re-ship the full state to the same worker.
					idx, perr := wire.ParseNeedState(data)
					if perr != nil {
						runErr = fmt.Errorf("audit: netsim need-state decode: %w", perr)
						return
					}
					p, ok := pos[int(idx)]
					if !ok || settled[p] {
						return
					}
					trackers[f.From].invalidate()
					state[p].deltaFalls++
					shipFullTo(p, f.From)
					return
				}
			}
			v, perr := wire.ParseAuditVerdict(data)
			if perr != nil {
				runErr = fmt.Errorf("audit: netsim verdict decode: %w", perr)
				return
			}
			p, ok := pos[int(v.Index)]
			if !ok || settled[p] {
				return // duplicate from a retransmit; first verdict won
			}
			settled[p] = true
			remaining--
			r := verdictFromWire(v)
			emit(EpochVerdict{
				Index: int(v.Index), Stats: r.stats, Fault: r.fault,
				Worker:   fmt.Sprintf("sim-worker-%d", f.From),
				Attempts: state[p].attempts, WireBytes: state[p].bytes + len(f.Data),
				WireBytesFull: state[p].fullBytes, WireBytesDelta: state[p].deltaBytes,
				DeltaShipped: state[p].deltaSent, DeltaFallbacks: state[p].deltaFalls,
			})
			return
		}
		// Job arriving at a simulated worker: decode, replay, reply after
		// the service time. Replays are idempotent, so a retransmitted job
		// just produces a duplicate verdict the coordinator drops.
		data := f.Data
		kind := wire.DistFrameJob
		if delta {
			if len(data) == 0 {
				runErr = errors.New("audit: netsim empty worker frame")
				return
			}
			kind = wire.DistFrameKind(data[0])
			data = data[1:]
		}
		var job *EpochJob
		switch kind {
		case wire.DistFrameJob:
			j, perr := wire.ParseAuditJob(data)
			if perr != nil {
				runErr = fmt.Errorf("audit: netsim job decode: %w", perr)
				return
			}
			job = jobFromWire(j)
			if delta {
				caches[f.To].put(job.Start)
			}
		case wire.DistFrameDeltaJob:
			dj, perr := wire.ParseAuditDeltaJob(data)
			if perr != nil {
				runErr = fmt.Errorf("audit: netsim delta job decode: %w", perr)
				return
			}
			resolved, fault, rerr := resolveDeltaJob(workerSess, dj, caches[f.To])
			if errors.Is(rerr, errNeedState) {
				reply := append([]byte{byte(wire.DistFrameNeedState)}, wire.MarshalNeedState(dj.Index)...)
				net.Send(net.Now()+service, f.To, 0, reply, len(reply)+wire.TCPIPOverhead)
				return
			}
			if fault != nil {
				reply := append([]byte{byte(wire.DistFrameVerdict)},
					verdictToWire(int(dj.Index), epochResult{fault: fault}).Marshal()...)
				net.Send(net.Now()+service, f.To, 0, reply, len(reply)+wire.TCPIPOverhead)
				return
			}
			job = resolved
		default:
			runErr = fmt.Errorf("audit: netsim worker got frame kind %d", kind)
			return
		}
		r := runEpochJob(workerSess, job, nil)
		reply := verdictToWire(job.Index, r).Marshal()
		if delta {
			reply = append([]byte{byte(wire.DistFrameVerdict)}, reply...)
		}
		net.Send(net.Now()+service, f.To, 0, reply, len(reply)+wire.TCPIPOverhead)
	}

	send := func(p int) {
		job := jobs[p]
		state[p].attempts++
		state[p].sentTo = 1 + (job.Index+state[p].attempts-1)%workers
		if delta {
			if df, derr := trackers[state[p].sentTo].deltaFrame(job); derr == nil {
				payload := append([]byte{byte(wire.DistFrameDeltaJob)}, df...)
				state[p].deltaBytes += len(payload)
				state[p].deltaSent++
				state[p].bytes += len(payload)
				state[p].deadline = net.Now() + timeout
				net.Send(net.Now(), 0, state[p].sentTo, payload, len(payload)+wire.TCPIPOverhead)
				return
			}
		}
		shipFullTo(p, state[p].sentTo)
	}

	// Initial dispatch in epoch order, then advance virtual time until
	// every epoch settles, retransmitting on deadline expiry.
	for p := range jobs {
		if skip(jobs[p].Index) {
			settled[p] = true
			remaining--
			continue
		}
		send(p)
	}
	for remaining > 0 && runErr == nil {
		next := uint64(1<<63 - 1)
		if at, ok := net.NextDelivery(); ok {
			next = at
		}
		for p := range jobs {
			if !settled[p] && state[p].deadline < next {
				next = state[p].deadline
			}
		}
		if next == uint64(1<<63-1) {
			return fmt.Errorf("audit: netsim backend stalled with %d epochs unresolved", remaining)
		}
		net.AdvanceTo(next)
		for p := range jobs {
			if settled[p] || net.Now() < state[p].deadline {
				continue
			}
			if skip(jobs[p].Index) {
				settled[p] = true
				remaining--
				continue
			}
			if state[p].attempts >= maxAttempts {
				settled[p] = true
				remaining--
				emit(EpochVerdict{Index: jobs[p].Index, Attempts: state[p].attempts,
					WireBytes: state[p].bytes, Worker: "(exhausted)",
					Err: fmt.Errorf("audit: epoch %d lost on the simulated network after %d attempts: %w",
						jobs[p].Index, state[p].attempts, ErrRetriesExhausted)})
				continue
			}
			send(p)
		}
	}
	return runErr
}

// mustReparseSession round-trips a session through its wire encoding; the
// encoding is total, so a parse failure is a codec bug worth surfacing at
// the call site.
func mustReparseSession(s *wire.AuditSession) *wire.AuditSession {
	out, err := wire.ParseAuditSession(s.Marshal())
	if err != nil {
		panic(fmt.Sprintf("audit: session codec round-trip failed: %v", err))
	}
	return out
}
