package audit

import (
	"fmt"

	"repro/internal/netsim"
	"repro/internal/wire"
)

// NetsimBackend replays epochs over the simulated network substrate: the
// coordinator is netsim node 0, workers are nodes 1..Workers, and every
// job and verdict rides a netsim frame through the link's configured
// latency, jitter, loss and partition filter. The simulated workers decode
// the same wire frames a TCP worker decodes and replay in-process, so the
// backend exercises the full codec path plus the coordinator's retry and
// re-dispatch machinery under deterministic packet loss, reordering (via
// jitter) and healable partitions (via netsim.Network.Filter) — scenarios
// a loopback TCP test cannot produce on demand.
//
// The run is single-threaded virtual time: verdicts are deterministic for
// a given netsim seed, loss rate and filter, which is what lets tests
// assert byte-identical audit results under adversarial links.
type NetsimBackend struct {
	// Net is the simulated network. The backend owns its Deliver callback
	// for the duration of Run and advances its virtual clock.
	Net *netsim.Network
	// Workers is the number of simulated worker nodes (netsim nodes
	// 1..Workers; the coordinator is node 0). <= 0 selects 3.
	Workers int
	// TimeoutNs is the virtual-time deadline after which a dispatched
	// epoch with no verdict is retransmitted (to the next worker in the
	// rotation). <= 0 selects 10ms of virtual time.
	TimeoutNs uint64
	// ServiceNs is the simulated per-epoch worker service time. <= 0
	// selects 1ms of virtual time.
	ServiceNs uint64
	// MaxAttempts bounds dispatch attempts per epoch. <= 0 selects
	// Workers+2.
	MaxAttempts int
}

// Remote implements EpochBackend: jobs ship whole and round-trip the wire
// codec.
func (b *NetsimBackend) Remote() bool { return true }

// Run implements EpochBackend on the virtual-time loop.
func (b *NetsimBackend) Run(sess Session, jobs []*EpochJob, skip func(int) bool, emit func(EpochVerdict)) error {
	workers := b.Workers
	if workers <= 0 {
		workers = 3
	}
	timeout := b.TimeoutNs
	if timeout == 0 {
		timeout = 10_000_000
	}
	service := b.ServiceNs
	if service == 0 {
		service = 1_000_000
	}
	maxAttempts := b.MaxAttempts
	if maxAttempts <= 0 {
		maxAttempts = workers + 2
	}

	// Simulated workers decode the session exactly as a TCP worker would,
	// so the image and configuration round-trip the codec once per run.
	workerSess, err := sessionFromWire(mustReparseSession(sessionToWire(sess)))
	if err != nil {
		return fmt.Errorf("audit: netsim session round-trip: %w", err)
	}

	type flight struct {
		deadline uint64
		attempts int
		sentTo   int
		bytes    int
	}
	pos := make(map[int]int, len(jobs)) // epoch index → position
	for p, j := range jobs {
		pos[j.Index] = p
	}
	state := make([]flight, len(jobs))
	settled := make([]bool, len(jobs))
	remaining := len(jobs)

	net := b.Net
	prevDeliver, prevFilter := net.Deliver, net.Filter
	defer func() { net.Deliver, net.Filter = prevDeliver, prevFilter }()
	// Keep any caller-installed filter (partitions) active during the run.
	net.Filter = prevFilter

	var runErr error
	net.Deliver = func(f netsim.Frame) {
		if f.To == 0 {
			// Verdict arriving at the coordinator.
			v, perr := wire.ParseAuditVerdict(f.Data)
			if perr != nil {
				runErr = fmt.Errorf("audit: netsim verdict decode: %w", perr)
				return
			}
			p, ok := pos[int(v.Index)]
			if !ok || settled[p] {
				return // duplicate from a retransmit; first verdict won
			}
			settled[p] = true
			remaining--
			r := verdictFromWire(v)
			emit(EpochVerdict{
				Index: int(v.Index), Stats: r.stats, Fault: r.fault,
				Worker:   fmt.Sprintf("sim-worker-%d", f.From),
				Attempts: state[p].attempts, WireBytes: state[p].bytes + len(f.Data),
			})
			return
		}
		// Job arriving at a simulated worker: decode, replay, reply after
		// the service time. Replays are idempotent, so a retransmitted job
		// just produces a duplicate verdict the coordinator drops.
		j, perr := wire.ParseAuditJob(f.Data)
		if perr != nil {
			runErr = fmt.Errorf("audit: netsim job decode: %w", perr)
			return
		}
		r := runEpochJob(workerSess, jobFromWire(j), nil)
		reply := verdictToWire(int(j.Index), r).Marshal()
		net.Send(net.Now()+service, f.To, 0, reply, len(reply)+wire.TCPIPOverhead)
	}

	send := func(p int) {
		job := jobs[p]
		state[p].attempts++
		state[p].sentTo = 1 + (job.Index+state[p].attempts-1)%workers
		payload := jobToWire(job).Marshal()
		state[p].bytes += len(payload)
		state[p].deadline = net.Now() + timeout
		net.Send(net.Now(), 0, state[p].sentTo, payload, len(payload)+wire.TCPIPOverhead)
	}

	// Initial dispatch in epoch order, then advance virtual time until
	// every epoch settles, retransmitting on deadline expiry.
	for p := range jobs {
		if skip(jobs[p].Index) {
			settled[p] = true
			remaining--
			continue
		}
		send(p)
	}
	for remaining > 0 && runErr == nil {
		next := uint64(1<<63 - 1)
		if at, ok := net.NextDelivery(); ok {
			next = at
		}
		for p := range jobs {
			if !settled[p] && state[p].deadline < next {
				next = state[p].deadline
			}
		}
		if next == uint64(1<<63-1) {
			return fmt.Errorf("audit: netsim backend stalled with %d epochs unresolved", remaining)
		}
		net.AdvanceTo(next)
		for p := range jobs {
			if settled[p] || net.Now() < state[p].deadline {
				continue
			}
			if skip(jobs[p].Index) {
				settled[p] = true
				remaining--
				continue
			}
			if state[p].attempts >= maxAttempts {
				settled[p] = true
				remaining--
				emit(EpochVerdict{Index: jobs[p].Index, Attempts: state[p].attempts,
					WireBytes: state[p].bytes, Worker: "(exhausted)",
					Err: fmt.Errorf("audit: epoch %d lost on the simulated network after %d attempts: %w",
						jobs[p].Index, state[p].attempts, ErrRetriesExhausted)})
				continue
			}
			send(p)
		}
	}
	return runErr
}

// mustReparseSession round-trips a session through its wire encoding; the
// encoding is total, so a parse failure is a codec bug worth surfacing at
// the call site.
func mustReparseSession(s *wire.AuditSession) *wire.AuditSession {
	out, err := wire.ParseAuditSession(s.Marshal())
	if err != nil {
		panic(fmt.Sprintf("audit: session codec round-trip failed: %v", err))
	}
	return out
}
