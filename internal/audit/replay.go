package audit

import (
	"bytes"
	"fmt"

	"repro/internal/sig"
	"repro/internal/snapshot"
	"repro/internal/tevlog"
	"repro/internal/vm"
	"repro/internal/wire"
)

// Replay is the semantic checker: it drives a reference machine through the
// recorded log, feeding logged nondeterministic inputs back, re-injecting
// asynchronous events at their exact landmarks, and comparing every output
// and snapshot root against the log. It supports incremental feeding, which
// is what online auditing (§6.11) uses.
type Replay struct {
	node sig.NodeID
	mach *vm.Machine
	devs *vm.DeviceSet

	entries []tevlog.Entry
	pos     int
	// dropped counts consumed entries compacted away by Feed, so Consumed
	// stays cumulative while the resident slice holds only the unconsumed
	// suffix (what bounds auditor memory during streaming audits).
	dropped int

	// outQueue buffers outputs the replica produced that have not yet been
	// matched against SEND entries. Matching happens at safe points (never
	// mid-instruction), which lets an online audit pause at log exhaustion
	// and resume cleanly when more entries arrive.
	outQueue []pendingOut
	// paused is set when the replay ran out of fed entries mid-execution;
	// Feed clears it.
	paused bool
	// complete is set by Close: the fed log is the whole segment, so once
	// it is consumed the replica may run its tail past the final entry.
	// While unset (incremental feeding), Run never executes past the last
	// fed entry — it must not, or it could overshoot the landmark of an
	// async event that has not been fed yet.
	complete bool
	// syncTail records whether the most recently consumed replayable entry
	// was synchronous (NONDET/SEND), i.e. the replica was mid-execution at
	// consumption. Only then does a complete log run a tail; after an async
	// entry the replica rests exactly at the landmark, which keeps epoch
	// slices ending at snapshots from coasting into the next epoch's
	// instructions.
	syncTail bool

	fault *FaultReport
	done  bool

	// Stats accumulates replay effort.
	Stats ReplayStats

	// live is the incremental state tree behind snapshot-root verification:
	// seeded once from the replica's starting state, then folded forward by
	// only the pages dirtied between snapshot entries (§4.4's
	// O(dirty · log n) commitment, applied by the auditor). The epoch
	// engines seed it while verifying the materialized starting snapshot
	// (AdoptStateHasher); otherwise it is seeded lazily at the first
	// snapshot entry, which for a boot replay costs exactly the full rehash
	// the first verification always paid.
	live *snapshot.LiveStateHasher
	// verifyFloor is the dirty-generation floor of the live tree: pages the
	// replica wrote after it must be folded before the next root compare.
	verifyFloor uint64

	// endSnap/endRoot/endSeq record the most recent snapshot entry whose
	// root verified against the replica; EndState uses them to materialize
	// the epoch's verified end state for a remote worker's connection cache.
	endSnap      uint32
	endRoot      [32]byte
	endSeq       uint64
	endRootValid bool

	// MaxInstructions bounds replay effort past the last consumed entry; a
	// divergent execution that never consumes the next logged entry is
	// reported as a fault instead of spinning forever.
	MaxInstructions uint64

	// boundPos/bound cache the next async event's position and landmark.
	boundPos int
	bound    uint64
}

// NewReplayFromImage starts a replay of a full execution from boot.
func NewReplayFromImage(node sig.NodeID, img *vm.Image, rngSeed uint64) (*Replay, error) {
	r := &Replay{node: node}
	r.devs = vm.NewDeviceSet(rngSeed)
	m, err := img.Boot(r.devs)
	if err != nil {
		return nil, fmt.Errorf("audit: booting reference image: %w", err)
	}
	r.attach(m)
	return r, nil
}

// NewReplayFromSnapshot starts a replay from a verified snapshot state.
func NewReplayFromSnapshot(node sig.NodeID, restored *snapshot.Restored, rngSeed uint64) (*Replay, error) {
	r := &Replay{node: node}
	r.devs = vm.NewDeviceSet(rngSeed)
	if err := r.devs.RestoreSnapshot(restored.Device); err != nil {
		return nil, fmt.Errorf("audit: restoring device state: %w", err)
	}
	m := vm.NewMachine(len(restored.Mem), nil)
	if err := m.WriteBytes(0, restored.Mem); err != nil {
		return nil, fmt.Errorf("audit: restoring memory: %w", err)
	}
	if err := m.RestoreRegisters(restored.Machine); err != nil {
		return nil, fmt.Errorf("audit: restoring registers: %w", err)
	}
	r.attach(m)
	return r, nil
}

func (r *Replay) attach(m *vm.Machine) {
	r.mach = m
	m.Bus = r
	r.devs.SendFunc = r.onGuestSend
	r.MaxInstructions = 1 << 62 // refined by Feed
	r.boundPos = -1
}

type pendingOut struct {
	dest    uint32
	payload []byte
}

// AdoptStateHasher hands the replay a live state hasher already seeded from
// the replica's starting state — the epoch engines seed one while verifying
// the materialized snapshot against the committed root, so the replay's
// first in-log snapshot entry folds dirty pages instead of rehashing the
// whole state. Must be called before the first Run, while the replica's
// memory still equals the seeded state.
func (r *Replay) AdoptStateHasher(lh *snapshot.LiveStateHasher) {
	r.live = lh
	r.verifyFloor = r.mach.DirtyEpoch()
}

// stateRoot returns the replica's current authenticated state digest,
// maintained incrementally: the live tree is seeded on first use (covering
// the whole state) and thereafter folds only the pages written since the
// previous snapshot entry. The digest is bit-identical to a full
// snapshot.RootOfState over the same state.
func (r *Replay) stateRoot() ([32]byte, error) {
	m := r.mach
	regs := m.CaptureStateRegisters()
	dev := r.devs.AuthSnapshot()
	if r.live == nil || !r.live.Seeded() {
		if r.live == nil {
			r.live = &snapshot.LiveStateHasher{}
		}
		root := r.live.Seed(m.Mem, regs, dev)
		r.verifyFloor = m.DirtyEpoch()
		return root, nil
	}
	dirty := m.DirtyPagesSince(r.verifyFloor)
	root, err := r.live.Fold(m.Mem, dirty, regs, dev)
	if err != nil {
		return [32]byte{}, err
	}
	r.verifyFloor = m.DirtyEpoch()
	return root, nil
}

// EndState materializes the replica's state at the epoch's terminal
// snapshot entry: memory, registers and device state exactly as verified
// against the committed root. It returns nil unless the replay finished
// fault-free and its final entry was a snapshot whose root verified — the
// shape of every interior epoch job, whose slices end at the snapshot
// committing their end state. Remote workers cache it so the next
// contiguous epoch job on the connection needs no shipped state at all.
func (r *Replay) EndState() *snapshot.Restored {
	if !r.endRootValid || r.fault != nil || len(r.entries) == 0 {
		return nil
	}
	if last := &r.entries[len(r.entries)-1]; last.Type != tevlog.TypeSnapshot || last.Seq != r.endSeq {
		return nil
	}
	return &snapshot.Restored{
		Index:      int(r.endSnap),
		Mem:        append([]byte(nil), r.mach.Mem...),
		Machine:    r.mach.CaptureStateRegisters(),
		Device:     r.devs.Snapshot(),
		AuthDevice: r.devs.AuthSnapshot(),
		Root:       r.endRoot,
	}
}

// Feed appends log entries to be replayed and refreshes the instruction
// budget. It resumes a replay paused at log exhaustion. Entries already
// consumed are compacted away, so a replay fed incrementally (online or
// streaming audits) holds only the unconsumed suffix of the log.
func (r *Replay) Feed(entries []tevlog.Entry) {
	if r.pos > 0 {
		n := copy(r.entries, r.entries[r.pos:])
		r.entries = r.entries[:n]
		r.dropped += r.pos
		r.pos = 0
	}
	r.entries = append(r.entries, entries...)
	r.done = false
	r.boundPos = -1
	if r.paused {
		r.paused = false
		if r.fault == nil {
			// The pause halted the machine mid-instruction; clearing the
			// flag re-executes that instruction, now with entries to serve.
			r.mach.Halted = false
		}
	}
	// Budget: the last async landmark plus a generous margin for trailing
	// synchronous activity.
	var maxLm uint64
	for i := range r.entries {
		e := &r.entries[i]
		if e.Type == tevlog.TypeIRQ || e.Type == tevlog.TypeSnapshot {
			if ev, err := wire.ParseEvent(e.Content); err == nil && ev.Landmark.ICount > maxLm {
				maxLm = ev.Landmark.ICount
			}
		}
	}
	budget := maxLm + 50_000_000
	if budget > r.MaxInstructions || r.MaxInstructions == 1<<62 {
		r.MaxInstructions = budget
	}
}

// Close marks the fed log as complete: no further Feed will follow. The
// next Run may then let the replica run past the final entry to its natural
// stopping point (halt, idle, the next input request, or the instruction
// budget) — a deterministic position, unlike the legacy behavior of
// coasting to the end of whatever execution chunk was in flight. Budget
// exhaustion, which pauses while the feed is incomplete (more entries can
// only raise the budget), becomes a final verdict; Close resumes a replay
// paused that way.
func (r *Replay) Close() {
	r.complete = true
	if r.paused {
		r.paused = false
		if r.fault == nil {
			r.mach.Halted = false
		}
	}
}

// Fault returns the divergence report, if any.
func (r *Replay) Fault() *FaultReport { return r.fault }

// Done reports whether every fed entry has been consumed without fault.
func (r *Replay) Done() bool { return r.done && r.fault == nil }

// Consumed returns the number of log entries consumed so far (including
// skipped protocol entries and entries compacted away by Feed).
func (r *Replay) Consumed() int { return r.dropped + r.pos }

// Pending returns the number of fed entries not yet consumed.
func (r *Replay) Pending() int { return len(r.entries) - r.pos }

// Machine exposes the replica for final-state inspection by tests.
func (r *Replay) Machine() *vm.Machine { return r.mach }

// Devices exposes the replica's devices for inspection by tests.
func (r *Replay) Devices() *vm.DeviceSet { return r.devs }

func (r *Replay) diverge(check Check, seq uint64, format string, args ...interface{}) {
	if r.fault != nil {
		return
	}
	r.fault = &FaultReport{
		Node: r.node, Check: check, Detail: fmt.Sprintf(format, args...),
		EntrySeq: seq, Landmark: r.mach.Landmark(),
	}
	r.mach.Halted = true // stop the replica; it is discarded after the audit
}

// nextReplayable returns the next entry relevant to execution, skipping
// protocol-stream entries (RECV/ACK/annotations are checked syntactically,
// not replayed — their payloads re-enter execution via injection events).
func (r *Replay) nextReplayable() *tevlog.Entry {
	for r.pos < len(r.entries) {
		e := &r.entries[r.pos]
		switch e.Type {
		case tevlog.TypeRecv, tevlog.TypeAck, tevlog.TypeAnnotation:
			r.pos++
			r.Stats.EntriesConsumed++
			continue
		}
		return e
	}
	return nil
}

func (r *Replay) consume() {
	r.pos++
	r.Stats.EntriesConsumed++
}

// pause stops the machine because the fed log is exhausted mid-execution.
// The in-flight instruction is NOT retired (Step aborts before advancing
// PC), so clearing Halted in Feed re-executes it cleanly.
func (r *Replay) pause() {
	r.paused = true
	r.mach.Halted = true
}

// drainOutputs matches queued replica outputs against SEND entries at the
// cursor. It returns false if replay cannot proceed (divergence, or paused
// awaiting more entries).
func (r *Replay) drainOutputs() bool {
	for len(r.outQueue) > 0 {
		e := r.nextReplayable()
		if e == nil {
			return false // starving for the SEND entry; caller decides pause/end
		}
		if e.Type != tevlog.TypeSend {
			r.diverge(CheckSemantic, e.Seq,
				"execution produced an output but log has %v entry", e.Type)
			return false
		}
		sc, err := wire.ParseSend(e.Content)
		if err != nil {
			r.diverge(CheckSyntactic, e.Seq, "unparseable SEND entry: %v", err)
			return false
		}
		out := r.outQueue[0]
		if sc.Dest != out.dest || !bytes.Equal(sc.Payload, out.payload) {
			r.diverge(CheckSemantic, e.Seq,
				"output mismatch: execution sent %d bytes to %d, log has %d bytes to %d",
				len(out.payload), out.dest, len(sc.Payload), sc.Dest)
			return false
		}
		r.outQueue = r.outQueue[1:]
		r.consume()
		r.syncTail = true
		r.Stats.SendsMatched++
	}
	return true
}

// In implements vm.IOBus for the replica: clock reads come from the log
// (they are the recorded synchronous nondeterministic inputs); everything
// else is deterministic device state. A clock read with no matching NONDET
// entry — or any mismatch in order — is a divergence: "if it requests the
// synchronous inputs in a different order, replay terminates and reports a
// fault" (§4.5).
func (r *Replay) In(m *vm.Machine, port uint32) uint32 {
	if port != vm.PortClockLo && port != vm.PortClockHi {
		return r.devs.In(m, port)
	}
	if !r.drainOutputs() {
		if r.fault == nil {
			r.pause()
		}
		return 0
	}
	e := r.nextReplayable()
	if e == nil {
		// The log segment ended mid-execution; pause at the boundary.
		r.pause()
		return 0
	}
	if e.Type != tevlog.TypeNondet {
		r.diverge(CheckSemantic, e.Seq,
			"execution read nondeterministic port 0x%x but log has %v entry", port, e.Type)
		return 0
	}
	nd, err := wire.ParseNondet(e.Content)
	if err != nil {
		r.diverge(CheckSyntactic, e.Seq, "unparseable NONDET entry: %v", err)
		return 0
	}
	if nd.Port != port {
		r.diverge(CheckSemantic, e.Seq,
			"execution read port 0x%x but log recorded a read of port 0x%x", port, nd.Port)
		return 0
	}
	r.consume()
	r.syncTail = true
	r.Stats.NondetsConsumed++
	// Skip protocol entries at the cursor now (the Run loop would skip them
	// anyway), then stop the replica at this exact instruction if the fed
	// log is exhausted. Running further would be execution past the last
	// entry, whose extent depends on chunk alignment — and under incremental
	// feeding it could sail past the landmark of an async event that has not
	// been fed yet. Stopping at the consumption point makes the replay's
	// position and stats a pure function of the log, independent of how it
	// was fed.
	if r.nextReplayable() == nil {
		m.StopReq = true
	}
	return uint32(nd.Value)
}

// Out implements vm.IOBus.
func (r *Replay) Out(m *vm.Machine, port uint32, val uint32) {
	r.devs.Out(m, port, val)
}

// onGuestSend queues each output of the replica for matching against the
// log's SEND entries — "checking the outputs against the outputs in L_ij"
// (§4.5). Matching is deferred to safe points so an instruction is never
// interrupted with device state half-updated; the stop request makes the
// producing instruction itself the safe point, so outputs are matched at a
// deterministic position regardless of chunk alignment or feed granularity.
func (r *Replay) onGuestSend(dest uint32, payload []byte) {
	r.outQueue = append(r.outQueue, pendingOut{dest: dest, payload: payload})
	r.mach.StopReq = true
}

// perform applies an asynchronous event at its landmark.
func (r *Replay) perform(ev *wire.EventContent, seq uint64) {
	switch ev.Kind {
	case wire.EventIRQ:
		r.mach.RaiseIRQ(int(ev.IRQ))
		r.Stats.EventsInjected++
	case wire.EventInjectPacket:
		r.devs.PushPacket(vm.Packet{From: ev.SrcIdx, Data: ev.Payload})
		r.mach.RaiseIRQ(vm.IRQNet)
		r.Stats.EventsInjected++
	case wire.EventInjectInput:
		r.devs.PushInput(ev.Input)
		r.mach.RaiseIRQ(vm.IRQInput)
		r.Stats.EventsInjected++
	case wire.EventSnapshot:
		got, err := r.stateRoot()
		if err != nil {
			r.diverge(CheckSemantic, seq, "folding dirty pages into live state tree: %v", err)
			return
		}
		if got != ev.Root {
			r.diverge(CheckSnapshot, seq,
				"replayed state root %x does not match committed snapshot root %x",
				got[:8], ev.Root[:8])
			return
		}
		r.Stats.SnapshotsVerified++
		r.endSnap, r.endRoot, r.endSeq, r.endRootValid = ev.SnapIdx, got, seq, true
	default:
		r.diverge(CheckSyntactic, seq, "unknown event kind %d", ev.Kind)
	}
}

func isAsync(t tevlog.EntryType) bool {
	return t == tevlog.TypeIRQ || t == tevlog.TypeSnapshot
}

// nextAsyncBound returns the landmark instruction count of the next
// asynchronous event at or after the cursor, caching the scan.
func (r *Replay) nextAsyncBound() (uint64, bool) {
	if r.boundPos >= r.pos && r.boundPos <= len(r.entries) {
		if r.boundPos == len(r.entries) {
			return 0, false
		}
		return r.bound, true
	}
	for i := r.pos; i < len(r.entries); i++ {
		if !isAsync(r.entries[i].Type) {
			continue
		}
		ev, err := wire.ParseEvent(r.entries[i].Content)
		if err != nil {
			// Malformed event: no usable bound; Run will fault on it when
			// the cursor reaches it.
			r.boundPos = i
			r.bound = 0
			return 0, false
		}
		r.boundPos = i
		r.bound = ev.Landmark.ICount
		return r.bound, true
	}
	r.boundPos = len(r.entries)
	return 0, false
}

// Run replays until all fed entries are consumed, a fault is found, or the
// instruction budget is exhausted. It may be called repeatedly after Feed
// (online auditing).
func (r *Replay) Run() {
	m := r.mach
	for r.fault == nil && !r.paused {
		if !r.drainOutputs() {
			if r.fault == nil {
				// Outputs await SEND entries that have not been fed yet
				// (online audit) or fall beyond the audited segment
				// (offline): stop at the boundary without a verdict on
				// them.
				r.paused = true
			}
			return
		}
		e := r.nextReplayable()
		if e == nil {
			if r.complete && r.syncTail {
				r.runTail()
			}
			r.done = true
			return
		}
		if isAsync(e.Type) {
			ev, err := wire.ParseEvent(e.Content)
			if err != nil {
				r.diverge(CheckSyntactic, e.Seq, "unparseable event entry: %v", err)
				return
			}
			lm := ev.Landmark
			switch {
			case lm.ICount < m.ICount:
				r.diverge(CheckSemantic, e.Seq,
					"execution passed event landmark (%v) without it firing; now at icount=%d",
					lm, m.ICount)
				return
			case lm.ICount == m.ICount:
				if m.Branches != lm.Branches || m.PC != lm.PC {
					r.diverge(CheckSemantic, e.Seq,
						"landmark mismatch at icount=%d: log has branches=%d pc=0x%x, replica has branches=%d pc=0x%x",
						lm.ICount, lm.Branches, lm.PC, m.Branches, m.PC)
					return
				}
				// Note: no explicit wake. RaiseIRQ inside perform clears
				// Waiting for exactly the events that woke the machine
				// during recording; snapshots leave a waiting machine
				// waiting, and the Waiting flag is part of the
				// authenticated state.
				r.perform(ev, e.Seq)
				if r.fault == nil {
					r.consume()
					r.syncTail = false
				}
				continue
			default: // landmark ahead: run toward it
				if m.Halted {
					r.diverge(CheckSemantic, e.Seq, "log continues past machine halt")
					return
				}
				if m.Waiting {
					r.diverge(CheckSemantic, e.Seq,
						"event landmark icount=%d unreachable: machine idle at icount=%d", lm.ICount, m.ICount)
					return
				}
				r.runTo(lm.ICount)
				continue
			}
		}
		// Next entry is NONDET or SEND: the machine itself must produce it.
		if m.Halted {
			r.diverge(CheckSemantic, e.Seq, "log continues past machine halt")
			return
		}
		if m.Waiting {
			r.diverge(CheckSemantic, e.Seq,
				"log expects %v activity but machine is idle at icount=%d", e.Type, m.ICount)
			return
		}
		if r.Stats.Instructions >= r.MaxInstructions {
			if !r.complete {
				// The budget so far reflects only the fed prefix of the
				// log; entries still to come can only raise it. Pause and
				// let Feed (or Close) resolve — faulting here would make
				// the verdict depend on feeding granularity.
				r.paused = true
				return
			}
			r.diverge(CheckSemantic, e.Seq,
				"instruction budget exhausted (%d) without reproducing log entry", r.MaxInstructions)
			return
		}
		// Sprint the gap: run in one stretch to the next async landmark (or
		// the remaining instruction budget, whichever is nearer), so the
		// interpreter stays on its predecoded fast path instead of paying
		// per-chunk turnarounds. RunUntil lands exactly on the bound, so a
		// single sprint cannot sail past an event that must fire mid-gap;
		// the synchronous entries inside the gap self-pace, because the bus
		// handler stops the machine at the instruction that consumes the
		// last fed entry.
		bound := m.ICount + (r.MaxInstructions - r.Stats.Instructions)
		if b, ok := r.nextAsyncBound(); ok && b > m.ICount && b < bound {
			bound = b
		}
		before := m.ICount
		m.RunUntil(bound)
		r.Stats.Instructions += m.ICount - before
		if m.ICount == before && !m.Halted && !m.Waiting {
			// No progress and not idle: faulted replica.
			if m.FaultInfo != nil {
				r.diverge(CheckSemantic, e.Seq, "replica faulted: %v", m.FaultInfo)
			} else {
				r.diverge(CheckSemantic, e.Seq, "replica made no progress")
			}
			return
		}
	}
}

// runTail lets the replica of a complete, fully consumed log coast past
// the final entry to its natural stopping point: a halt, an idle wait, the
// next input request (which pauses at log exhaustion), or the instruction
// budget. The stopping point is a deterministic function of the log and
// image, so final state and stats do not depend on feeding granularity.
func (r *Replay) runTail() {
	m := r.mach
	for r.fault == nil && !m.Halted && !m.Waiting && !r.paused {
		if r.Stats.Instructions >= r.MaxInstructions {
			return
		}
		before := m.ICount
		m.RunUntil(m.ICount + (r.MaxInstructions - r.Stats.Instructions))
		r.Stats.Instructions += m.ICount - before
		if m.ICount == before {
			return
		}
	}
}

// runTo advances the replica to exactly the target instruction count,
// accounting instructions and honoring the budget.
func (r *Replay) runTo(target uint64) {
	m := r.mach
	for r.fault == nil && m.ICount < target && !m.Halted && !m.Waiting {
		if r.Stats.Instructions >= r.MaxInstructions {
			if !r.complete {
				r.paused = true // as in Run: an incomplete feed cannot render a budget verdict
				return
			}
			r.diverge(CheckSemantic, 0,
				"instruction budget exhausted (%d) before reaching landmark icount=%d", r.MaxInstructions, target)
			return
		}
		// Sprint straight to the landmark, budget permitting; RunUntil stops
		// on the exact instruction count, so no careful tail is needed to
		// avoid overshooting the event's recorded position.
		bound := m.ICount + (r.MaxInstructions - r.Stats.Instructions)
		if target < bound {
			bound = target
		}
		before := m.ICount
		m.RunUntil(bound)
		r.Stats.Instructions += m.ICount - before
		if m.ICount == before {
			return
		}
	}
}
