package audit

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sig"
	"repro/internal/snapshot"
	"repro/internal/tevlog"
)

// This file is the distributed audit coordinator: AuditFullDist runs the
// full audit pipeline with the semantic (replay) stage fanned out over an
// EpochBackend — the in-process pool, simulated network workers, or real
// TCP workers. Chain verification and the syntactic check stay on the
// coordinator (they are cheap, sequential passes); only epoch replay, the
// dominant cost, is shipped.
//
// Trust model: workers are UNTRUSTED. The coordinator (a) materializes
// every epoch's starting state from its own snapshot source and verifies
// it against the root the audited log committed — a worker never chooses
// what state an epoch replays from; (b) re-replays a configurable fraction
// of epochs locally and compares verdicts, so a worker that lies about an
// outcome is caught with probability ≥ the spot fraction per lie; and
// (c) merges verdicts under the same earliest-fault cutoff as the
// in-process engine, so the conclusion is byte-identical to AuditFull
// whenever workers are honest — and equal to the coordinator's own replay
// of every spot-rechecked epoch regardless.

// DistOptions configures the distributed full audit. The shared knobs
// (Workers, Materialize, SpotRecheck*, DeltaJobs, DeltaSource) live in the
// embedded EngineOptions; Backend selects where epochs replay.
type DistOptions struct {
	EngineOptions
	// Backend executes epoch jobs. Nil selects the in-process pool.
	Backend EpochBackend
}

// DistStats reports how a distributed audit ran.
type DistStats struct {
	// Epochs is the number of replay epochs the log was partitioned into.
	Epochs int
	// Dispatched counts epochs handed to the backend (epochs whose start
	// state already failed coordinator-side verification never ship).
	Dispatched int
	// CoordinatorFaults counts epochs that faulted on the coordinator
	// before dispatch (materialization or start-root verification).
	CoordinatorFaults int
	// Redispatches counts dispatch attempts beyond each epoch's first —
	// crash retries and straggler re-dispatches.
	Redispatches int
	// SpotRechecked counts epochs the coordinator re-replayed locally.
	SpotRechecked int
	// SpotMismatches counts rechecked epochs whose worker verdict diverged
	// from the coordinator's own replay — lying (or broken) workers. The
	// coordinator's verdict wins.
	SpotMismatches int
	// RetriesExhausted counts epochs that burned through their dispatch
	// retry budget (ErrRetriesExhausted). Nonzero with a clean verdict
	// means the exhausted epochs were past the earliest-fault cutoff.
	RetriesExhausted int
	// WireBytes is the total job+verdict payload shipped (0 for the pool).
	WireBytes int
	// WireBytesFull and WireBytesDelta split the shipped job payload by
	// encoding: full-state AuditJob frames vs delta-shipped AuditDeltaJob
	// frames. Verdict bytes count toward WireBytes only.
	WireBytesFull  int
	WireBytesDelta int
	// DeltaJobsShipped counts jobs that went out delta-encoded;
	// DeltaFallbacks counts full-state re-ships after a worker reported a
	// missing base state (cache eviction, reconnect).
	DeltaJobsShipped int
	DeltaFallbacks   int
	// PrepWallNs is coordinator time spent materializing and root-verifying
	// start states before dispatch (remote backends only).
	PrepWallNs int64
	// MergeWallNs is coordinator time spent folding verdicts into the final
	// result after the backend finished.
	MergeWallNs int64
}

// auditDist checks an entire execution from boot like auditSerial — log
// verification, syntactic check, semantic replay — with the replay stage
// distributed over opts.Backend. The Result is byte-identical to the
// serial engine's. A non-nil error means the audit could not be completed
// (transport failure on an epoch the verdict needs) — distinct from a
// fault, which is a completed audit's conclusion about the machine. It
// backs Audit's EngineDist and the deprecated AuditFullDist.
func (a *Auditor) auditDist(node sig.NodeID, nodeIdx uint32, entries []tevlog.Entry, auths []tevlog.Authenticator, opts DistOptions) (*Result, DistStats, error) {
	a = a.withEngineOptions(opts.EngineOptions)
	res := &Result{Node: node}

	if a.TamperEvident {
		if err := tevlog.VerifySegment(tevlog.Hash{}, entries, auths, a.Keys); err != nil {
			res.Fault = &FaultReport{Node: node, Check: CheckLog, Detail: err.Error()}
			return res, DistStats{}, nil
		}
	}

	stats, fr := SyntacticCheck(node, entries, SyntacticOptions{
		NodeIdx: nodeIdx, Keys: a.Keys,
		VerifySignatures: a.TamperEvident && a.VerifySignatures,
		StrictAcks:       a.StrictAcks,
	})
	res.Syntactic = stats
	if fr != nil {
		res.Fault = fr
		return res, DistStats{}, nil
	}

	be := opts.Backend
	if be == nil {
		be = &PoolBackend{Workers: opts.Workers, Materialize: opts.Materialize}
	}
	jobs := a.partition(entries, ParallelOptions{EngineOptions: EngineOptions{Materialize: opts.Materialize}})
	replay, fault, dstats, err := a.runJobs(node, jobs, be, distConfig{
		materialize:  opts.Materialize,
		prepWorkers:  opts.Workers,
		spotFraction: opts.SpotRecheckFraction,
		spotSeed:     opts.SpotRecheckSeed,
		deltaJobs:    opts.DeltaJobs,
		deltaSource:  opts.DeltaSource,
	})
	if err != nil {
		return nil, dstats, err
	}
	res.Replay = replay
	if fault != nil {
		res.Fault = fault
		return res, dstats, nil
	}
	res.Passed = true
	return res, dstats, nil
}

// distConfig is the router's internal knob set.
type distConfig struct {
	materialize  func(snapIdx uint32) (*snapshot.Restored, error)
	prepWorkers  int
	spotFraction float64
	spotSeed     uint64
	deltaJobs    bool
	deltaSource  func(k uint32) (*snapshot.Delta, error)
}

// deltaCapable is the seam through which the router hands a delta source
// to backends that can ship delta-encoded jobs. withDelta returns a
// backend value carrying the source; backends without the seam (the
// in-process pool, which never ships state) ignore DeltaJobs.
type deltaCapable interface {
	withDelta(src func(k uint32) (*snapshot.Delta, error)) EpochBackend
}

// splitmix64 is the deterministic spot-selection hash.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// spotSelected reports whether epoch i is re-replayed locally.
func (c *distConfig) spotSelected(i int) bool {
	if c.spotFraction <= 0 {
		return false
	}
	if c.spotFraction >= 1 {
		return true
	}
	return float64(splitmix64(c.spotSeed^uint64(i))>>11)/float64(1<<53) < c.spotFraction
}

// prepareStart materializes and root-verifies a non-boot job's starting
// state on the coordinator, setting job.Start. A failure is the epoch's
// verdict — byte-identical to the fault the in-process engine reports —
// and the job never ships.
func prepareStart(node sig.NodeID, job *EpochJob, materialize func(snapIdx uint32) (*snapshot.Restored, error)) *FaultReport {
	if materialize == nil {
		return &FaultReport{
			Node: node, Check: CheckSnapshot, EntrySeq: job.StartSeq,
			Detail: fmt.Sprintf("materializing snapshot %d: no snapshot source", job.StartSnap),
		}
	}
	restored, merr := materialize(job.StartSnap)
	if merr != nil {
		return &FaultReport{
			Node: node, Check: CheckSnapshot, EntrySeq: job.StartSeq,
			Detail: fmt.Sprintf("materializing snapshot %d: %v", job.StartSnap, merr),
		}
	}
	lh := &snapshot.LiveStateHasher{}
	if verr := lh.SeedVerify(restored, job.StartRoot); verr != nil {
		return &FaultReport{
			Node: node, Check: CheckSnapshot, EntrySeq: job.StartSeq, Detail: verr.Error(),
		}
	}
	job.Start = restored
	return nil
}

// sameEpochResult reports whether a worker verdict matches the
// coordinator's own replay of the same epoch.
func sameEpochResult(local epochResult, v EpochVerdict) bool {
	if local.stats != v.Stats {
		return false
	}
	if (local.fault == nil) != (v.Fault == nil) {
		return false
	}
	if local.fault == nil {
		return true
	}
	return *local.fault == *v.Fault
}

// runJobs dispatches epoch jobs to a backend and merges verdicts under the
// earliest-fault cutoff — the deterministic heart of every audit engine.
// The merged (stats, fault) pair is identical to a serial replay of the
// same epochs whenever verdicts are honest; spot-rechecked epochs are
// guaranteed it regardless.
func (a *Auditor) runJobs(node sig.NodeID, jobs []*EpochJob, be EpochBackend, cfg distConfig) (ReplayStats, *FaultReport, DistStats, error) {
	sess := a.session(node)
	dstats := DistStats{Epochs: len(jobs)}

	if cfg.deltaJobs && cfg.deltaSource != nil {
		if dc, ok := be.(deltaCapable); ok {
			be = dc.withDelta(cfg.deltaSource)
		}
	}

	var mu sync.Mutex
	results := make(map[int]epochResult, len(jobs))
	errs := make(map[int]error)
	var cutoff atomic.Int64
	cutoff.Store(int64(1) << 62)

	lower := func(i int) {
		for {
			cur := cutoff.Load()
			if int64(i) >= cur || cutoff.CompareAndSwap(cur, int64(i)) {
				break
			}
		}
	}
	record := func(i int, r epochResult) {
		mu.Lock()
		_, dup := results[i]
		if !dup {
			results[i] = r
			delete(errs, i)
		}
		mu.Unlock()
		if !dup && r.fault != nil {
			lower(i)
		}
	}

	// Remote backends get self-contained jobs: materialize and root-verify
	// every start on the coordinator, concurrently. Failures are verdicts.
	dispatch := jobs
	if be.Remote() {
		prepStart := time.Now()
		prepWorkers := cfg.prepWorkers
		if prepWorkers <= 0 {
			prepWorkers = runtime.NumCPU()
		}
		faults := make([]*FaultReport, len(jobs))
		runPool(len(jobs), prepWorkers, func(i int) bool {
			if !jobs[i].Boot {
				faults[i] = prepareStart(node, jobs[i], cfg.materialize)
			}
			return false
		})
		dispatch = dispatch[:0:0]
		for i, job := range jobs {
			if faults[i] != nil {
				dstats.CoordinatorFaults++
				record(i, epochResult{fault: faults[i]})
				continue
			}
			dispatch = append(dispatch, job)
		}
		dstats.PrepWallNs = time.Since(prepStart).Nanoseconds()
	}
	dstats.Dispatched = len(dispatch)

	jobByIndex := make(map[int]*EpochJob, len(jobs))
	for _, j := range jobs {
		jobByIndex[j.Index] = j
	}
	skip := func(i int) bool { return int64(i) > cutoff.Load() }
	emit := func(v EpochVerdict) {
		mu.Lock()
		dstats.WireBytes += v.WireBytes
		dstats.WireBytesFull += v.WireBytesFull
		dstats.WireBytesDelta += v.WireBytesDelta
		dstats.DeltaJobsShipped += v.DeltaShipped
		dstats.DeltaFallbacks += v.DeltaFallbacks
		if v.Attempts > 1 {
			dstats.Redispatches += v.Attempts - 1
		}
		mu.Unlock()
		if v.Err != nil {
			mu.Lock()
			if errors.Is(v.Err, ErrRetriesExhausted) {
				dstats.RetriesExhausted++
			}
			if _, done := results[v.Index]; !done {
				errs[v.Index] = v.Err
			}
			mu.Unlock()
			return
		}
		if cfg.spotSelected(v.Index) {
			// Re-replay locally before trusting the worker: the local
			// verdict is authoritative, so a lie can never steer the cutoff
			// or the merged result for a rechecked epoch.
			local := runEpochJob(sess, jobByIndex[v.Index], cfg.materialize)
			mu.Lock()
			dstats.SpotRechecked++
			mu.Unlock()
			if !sameEpochResult(local, v) {
				mu.Lock()
				dstats.SpotMismatches++
				mu.Unlock()
			}
			record(v.Index, local)
			return
		}
		record(v.Index, epochResult{stats: v.Stats, fault: v.Fault})
	}

	// A backend Run error is not immediately fatal: transport failures that
	// only touched epochs past the earliest-fault cutoff cannot change the
	// verdict, so the error is held until the merge below decides whether a
	// needed epoch actually went missing.
	var backendErr error
	if len(dispatch) > 0 {
		if err := be.Run(sess, dispatch, skip, emit); err != nil {
			backendErr = fmt.Errorf("audit: epoch backend: %w", err)
		}
	}

	mergeStart := time.Now()

	// The verdict needs every epoch up to the earliest fault (or all of
	// them on a pass). A transport-failed epoch inside that range means the
	// audit is incomplete — an error, never a silent verdict.
	needed := len(jobs) - 1
	if c := int(cutoff.Load()); c < len(jobs) {
		needed = c
	}
	var missing []int
	for i := 0; i <= needed; i++ {
		if _, ok := results[i]; !ok {
			missing = append(missing, i)
		}
	}
	if len(missing) > 0 {
		sort.Ints(missing)
		first := missing[0]
		dstats.MergeWallNs = time.Since(mergeStart).Nanoseconds()
		if err := errs[first]; err != nil {
			return ReplayStats{}, nil, dstats, fmt.Errorf("audit: epoch %d undecided after transport failure: %w", first, err)
		}
		if backendErr != nil {
			return ReplayStats{}, nil, dstats, backendErr
		}
		return ReplayStats{}, nil, dstats, fmt.Errorf("audit: backend returned no verdict for epoch %d", first)
	}

	var merged ReplayStats
	var fault *FaultReport
	if c := int(cutoff.Load()); c < len(jobs) {
		// Earliest faulting epoch: epochs below it all ran and passed, so
		// this is the fault the serial replay reports. Its stats sum covers
		// exactly the work the serial replay performed before stopping.
		for i := 0; i <= c; i++ {
			addStats(&merged, results[i].stats)
		}
		fault = results[c].fault
	} else {
		for i := 0; i < len(jobs); i++ {
			addStats(&merged, results[i].stats)
		}
	}
	dstats.MergeWallNs = time.Since(mergeStart).Nanoseconds()
	return merged, fault, dstats, nil
}
