package audit

// Delta-shipped job dispatch, shared by the remote backends. After the
// first full-state job on a connection, the dispatcher tracks which
// snapshot's state the worker holds and ships subsequent jobs as chains of
// proof-carrying snapshot deltas (wire.AuditDeltaJob); the worker folds
// the chain onto its cached, previously-verified state, checks every step
// against the committed roots, and replays as if the full state had
// arrived. A worker that no longer holds the base answers NeedState and
// the dispatcher falls back to the full-state frame. A doctored chain —
// a lying coordinator — fails fold verification on the worker before any
// replay work is spent and surfaces as the same snapshot-check fault a
// corrupt full state would.

import (
	"errors"
	"fmt"

	"repro/internal/snapshot"
	"repro/internal/tevlog"
	"repro/internal/wire"
)

// maxDeltaChain bounds the steps a single delta job may carry; a longer
// gap ships as a full state instead (the chain would approach full-state
// size anyway, and a lost worker should not trigger unbounded rebuilds).
const maxDeltaChain = 64

// stateCacheSize bounds the verified start states a worker retains per
// connection for delta-job reconstruction.
const stateCacheSize = 8

// errDeltaIneligible reports a job the dispatcher cannot delta-encode
// against the tracked base; the caller ships the full frame.
var errDeltaIneligible = errors.New("audit: job not delta-eligible")

// deltaTracker is the dispatcher's per-connection record of the snapshot
// state the worker is known to hold (the start state of the last job
// shipped on the connection).
type deltaTracker struct {
	src      func(k uint32) (*snapshot.Delta, error)
	haveBase bool
	baseSnap uint32
	baseRoot [32]byte
}

// deltaFrame returns the delta-encoded frame body for job, chaining from
// the tracked base, or errDeltaIneligible / a source error when the job
// must ship full. On success the tracked base advances to the job's start
// snapshot. The caller is responsible for calling noteFull when it ships a
// full-state frame instead.
func (t *deltaTracker) deltaFrame(job *EpochJob) ([]byte, error) {
	if t == nil || t.src == nil || job.Boot {
		return nil, errDeltaIneligible
	}
	if !t.haveBase || job.StartSnap < t.baseSnap || job.StartSnap-t.baseSnap > maxDeltaChain {
		return nil, errDeltaIneligible
	}
	wj := &wire.AuditDeltaJob{
		Index: uint64(job.Index), StartSnap: job.StartSnap, StartSeq: job.StartSeq,
		StartRoot: job.StartRoot, BaseSnap: t.baseSnap, BaseRoot: t.baseRoot,
		Entries: job.Entries,
	}
	for k := t.baseSnap + 1; k <= job.StartSnap; k++ {
		d, err := t.src(k)
		if err != nil {
			return nil, fmt.Errorf("audit: delta source for snapshot %d: %w", k, err)
		}
		wj.Steps = append(wj.Steps, wire.DeltaStepFromDelta(d))
	}
	t.baseSnap = job.StartSnap
	t.baseRoot = job.StartRoot
	return wj.Marshal(), nil
}

// noteFull records that a full-state frame for job shipped on the
// connection: its start state becomes the new base (boot jobs leave the
// worker with no reusable state and reset nothing).
func (t *deltaTracker) noteFull(job *EpochJob) {
	if t == nil || job.Boot {
		return
	}
	t.haveBase = true
	t.baseSnap = job.StartSnap
	t.baseRoot = job.StartRoot
}

// epochEnd extracts the terminal snapshot boundary of an epoch job: the
// snapshot index and committed root of the job's final entry. Epoch slices
// end at the snapshot entry committing their end state; jobs that do not
// (the tail past the last snapshot) report ok false.
func epochEnd(job *EpochJob) (snap uint32, root [32]byte, ok bool) {
	if job == nil || len(job.Entries) == 0 {
		return 0, root, false
	}
	e := &job.Entries[len(job.Entries)-1]
	if e.Type != tevlog.TypeSnapshot {
		return 0, root, false
	}
	ev, err := wire.ParseEvent(e.Content)
	if err != nil {
		return 0, root, false
	}
	return ev.SnapIdx, ev.Root, true
}

// noteEnd advances the tracked base past a fault-free verdict: the worker
// replayed the epoch through its terminal snapshot entry and cached the
// verified end state (runJobMaybeChaotic), so the next contiguous job on
// this connection ships as an empty delta chain — no state bytes at all.
// The base only moves forward; a late verdict for an earlier epoch cannot
// drag it back.
func (t *deltaTracker) noteEnd(job *EpochJob) {
	if t == nil || t.src == nil {
		return
	}
	snap, root, ok := epochEnd(job)
	if !ok || (t.haveBase && snap < t.baseSnap) {
		return
	}
	t.haveBase, t.baseSnap, t.baseRoot = true, snap, root
}

// invalidate forgets the tracked base — after a NeedState, a reconnect, or
// anything else that breaks the dispatcher's model of the worker's cache.
func (t *deltaTracker) invalidate() {
	if t != nil {
		t.haveBase = false
	}
}

// stateCache is a worker's small LRU of start states keyed by their
// committed root. States enter after their job's start verification seeded
// them; lookups refresh recency. It is confined to one connection-serving
// goroutine, so no locking.
type stateCache struct {
	order [][32]byte
	m     map[[32]byte]*snapshot.Restored
}

func newStateCache() *stateCache {
	return &stateCache{m: make(map[[32]byte]*snapshot.Restored, stateCacheSize)}
}

func (c *stateCache) touch(root [32]byte) {
	for i, r := range c.order {
		if r == root {
			copy(c.order[i:], c.order[i+1:])
			c.order[len(c.order)-1] = root
			return
		}
	}
	c.order = append(c.order, root)
}

func (c *stateCache) get(root [32]byte) (*snapshot.Restored, bool) {
	s, ok := c.m[root]
	if ok {
		c.touch(root)
	}
	return s, ok
}

func (c *stateCache) put(s *snapshot.Restored) {
	if s == nil {
		return
	}
	if _, ok := c.m[s.Root]; !ok && len(c.order) >= stateCacheSize {
		oldest := c.order[0]
		c.order = c.order[1:]
		delete(c.m, oldest)
	}
	c.m[s.Root] = s
	c.touch(s.Root)
}

// resolveDeltaJob reconstructs a delta job's start state from the
// connection's cache: fold every step with proof verification, check the
// final root against the job's committed start root, and cache the result
// for future chains. A missing base returns errNeedState (the worker asks
// for a full re-ship); a chain that fails verification returns the
// snapshot-check fault the verdict carries — the lying coordinator is
// caught here, before replay.
var errNeedState = errors.New("audit: delta base state not cached")

func resolveDeltaJob(sess Session, wj *wire.AuditDeltaJob, cache *stateCache) (*EpochJob, *FaultReport, error) {
	cur, ok := cache.get(wj.BaseRoot)
	if !ok {
		return nil, nil, errNeedState
	}
	for i := range wj.Steps {
		d, err := wj.Steps[i].Delta()
		if err == nil {
			cur, err = snapshot.ApplyDelta(cur, d)
		}
		if err != nil {
			return nil, &FaultReport{
				Node: sess.Node, Check: CheckSnapshot, EntrySeq: wj.StartSeq,
				Detail: fmt.Sprintf("delta step %d/%d: %v", i+1, len(wj.Steps), err),
			}, nil
		}
		cache.put(cur)
	}
	if cur.Root != wj.StartRoot {
		return nil, &FaultReport{
			Node: sess.Node, Check: CheckSnapshot, EntrySeq: wj.StartSeq,
			Detail: fmt.Sprintf("delta chain ends at root %x, log committed %x", cur.Root[:8], wj.StartRoot[:8]),
		}, nil
	}
	return &EpochJob{
		Index: int(wj.Index), StartSnap: wj.StartSnap, StartSeq: wj.StartSeq,
		StartRoot: wj.StartRoot, Start: cur, Entries: wj.Entries,
	}, nil, nil
}
