package audit

import (
	"repro/internal/sig"
	"repro/internal/snapshot"
	"repro/internal/tevlog"
	"repro/internal/vm"
	"repro/internal/wire"
)

// Auditor checks machines against a reference image, per §4.5: verify the
// log against authenticators, syntactically check it, then replay it. An
// auditor needs the reference image (§4.1 assumption 4), the public keys of
// the machine and its correspondents, and the reference configuration (RNG
// seed) — nothing else, and in particular no trust in the audited machine
// or its monitor (§3.4).
type Auditor struct {
	// Keys holds the public keys of the audited machine and of every user
	// who communicated with it.
	Keys *sig.KeyStore
	// RefImage is the trusted reference copy of the VM image.
	RefImage *vm.Image
	// RNGSeed is the reference device-RNG seed the machine was expected to
	// boot with.
	RNGSeed uint64
	// TamperEvident selects whether the log is expected to carry the
	// commitment protocol (authenticators, acks).
	TamperEvident bool
	// VerifySignatures enables cryptographic verification (off for
	// avmm-nosig).
	VerifySignatures bool
	// StrictAcks faults unacknowledged sends (quiesced offline audits only).
	StrictAcks bool
	// DisablePredecode forces every replica this auditor boots onto the
	// careful Step path instead of the predecoded sprint loop. Verdicts are
	// identical either way; the audit benchmark flips it to measure the
	// predecode ablation.
	DisablePredecode bool
	// DisableFusion keeps the predecoded sprint loop but skips the
	// superinstruction fusion pass, so every cached instruction retires with
	// its own dispatch. Verdicts are identical either way; the audit
	// benchmark flips it to measure the fusion ablation.
	DisableFusion bool
}

// auditSerial checks an entire execution from boot: log verification
// against authenticators, syntactic check, and full replay from the
// reference image. It backs Audit's EngineSerial and the deprecated
// AuditFull.
func (a *Auditor) auditSerial(node sig.NodeID, nodeIdx uint32, entries []tevlog.Entry, auths []tevlog.Authenticator) *Result {
	res := &Result{Node: node}

	if a.TamperEvident {
		if err := tevlog.VerifySegment(tevlog.Hash{}, entries, auths, a.Keys); err != nil {
			res.Fault = &FaultReport{Node: node, Check: CheckLog, Detail: err.Error()}
			return res
		}
	}

	stats, fr := SyntacticCheck(node, entries, SyntacticOptions{
		NodeIdx: nodeIdx, Keys: a.Keys,
		VerifySignatures: a.TamperEvident && a.VerifySignatures,
		StrictAcks:       a.StrictAcks,
	})
	res.Syntactic = stats
	if fr != nil {
		res.Fault = fr
		return res
	}

	return a.replayFull(res, node, entries)
}

// ChunkRequest describes a spot-check of k consecutive segments starting at
// a snapshot (§3.5, §6.12).
type ChunkRequest struct {
	Node    sig.NodeID
	NodeIdx uint32
	// Start is the downloaded machine state at the chunk's first snapshot.
	Start *snapshot.Restored
	// StartRoot is the root committed in the log for that snapshot; the
	// auditor extracts it from the snapshot entry.
	StartRoot [32]byte
	// PrevHash is the chain hash of the snapshot entry itself, so the
	// segment after it can be verified.
	PrevHash tevlog.Hash
	// Entries is the log segment immediately following the snapshot entry,
	// through the end of the chunk.
	Entries []tevlog.Entry
	// Auths are authenticators covering the segment.
	Auths []tevlog.Authenticator
}

// auditChunk spot-checks one chunk: authenticate the snapshot, verify the
// segment's hash chain, syntactic pass, and replay starting from the
// snapshot. Snapshot entries inside the chunk verify intermediate and final
// state roots, so an incorrect state transition anywhere in the chunk is
// detected. It backs Audit's EngineChunk and the deprecated AuditChunk.
func (a *Auditor) auditChunk(req ChunkRequest) *Result {
	res := &Result{Node: req.Node}
	// Authenticate the snapshot; the verification tree is kept live so
	// snapshot entries inside the chunk verify incrementally.
	lh := &snapshot.LiveStateHasher{}
	if err := lh.SeedVerify(req.Start, req.StartRoot); err != nil {
		res.Fault = &FaultReport{Node: req.Node, Check: CheckSnapshot, Detail: err.Error()}
		return res
	}
	if a.TamperEvident {
		if err := tevlog.VerifySegment(req.PrevHash, req.Entries, req.Auths, a.Keys); err != nil {
			res.Fault = &FaultReport{Node: req.Node, Check: CheckLog, Detail: err.Error()}
			return res
		}
	}
	stats, fr := SyntacticCheck(req.Node, req.Entries, SyntacticOptions{
		NodeIdx: req.NodeIdx, Keys: a.Keys,
		VerifySignatures: a.TamperEvident && a.VerifySignatures,
	})
	res.Syntactic = stats
	if fr != nil {
		res.Fault = fr
		return res
	}
	rp, err := NewReplayFromSnapshot(req.Node, req.Start, a.RNGSeed)
	if err != nil {
		res.Fault = &FaultReport{Node: req.Node, Check: CheckSemantic, Detail: err.Error()}
		return res
	}
	rp.AdoptStateHasher(lh)
	rp.Machine().DisablePredecode = a.DisablePredecode
	rp.Machine().DisableFusion = a.DisableFusion
	rp.Feed(req.Entries)
	rp.Close()
	rp.Run()
	res.Replay = rp.Stats
	if f := rp.Fault(); f != nil {
		res.Fault = f
		return res
	}
	res.Passed = true
	return res
}

// SnapshotPoints scans a log for snapshot entries, returning for each its
// position, committed root, and entry hash (the PrevHash for the segment
// that follows). Used to slice logs into spot-checkable segments.
type SnapshotPoint struct {
	EntryIndex int // index into the entries slice
	Seq        uint64
	SnapIdx    uint32
	Root       [32]byte
	EntryHash  tevlog.Hash
	// ICount is the landmark instruction count committed with the snapshot
	// — the replay effort from boot to this point. Consecutive differences
	// size epoch jobs for cost-weighted dispatch.
	ICount uint64
}

// FindSnapshots locates all snapshot entries in a segment. The entries must
// carry valid chain hashes (e.g. obtained from the machine and re-chained).
func FindSnapshots(entries []tevlog.Entry) ([]SnapshotPoint, error) {
	var out []SnapshotPoint
	for i := range entries {
		e := &entries[i]
		if e.Type != tevlog.TypeSnapshot {
			continue
		}
		ev, err := wire.ParseEvent(e.Content)
		if err != nil {
			return nil, err
		}
		out = append(out, SnapshotPoint{
			EntryIndex: i, Seq: e.Seq, SnapIdx: ev.SnapIdx, Root: ev.Root, EntryHash: e.Hash,
			ICount: ev.Landmark.ICount,
		})
	}
	return out, nil
}

// OnlineAudit incrementally audits a machine while it executes (§6.11): the
// auditor periodically pulls newly appended log entries and extends the
// replay. Lag is the distance between recording and replay, in entries.
type OnlineAudit struct {
	rp    *Replay
	node  sig.NodeID
	fedTo uint64 // highest log seq fed so far
}

// NewOnlineAudit starts an online audit from boot.
func NewOnlineAudit(node sig.NodeID, img *vm.Image, rngSeed uint64) (*OnlineAudit, error) {
	rp, err := NewReplayFromImage(node, img, rngSeed)
	if err != nil {
		return nil, err
	}
	return &OnlineAudit{rp: rp, node: node}, nil
}

// FedTo returns the highest log sequence number fed so far.
func (o *OnlineAudit) FedTo() uint64 { return o.fedTo }

// Feed appends fresh entries (with seq > FedTo) and advances the replay.
func (o *OnlineAudit) Feed(entries []tevlog.Entry) {
	if len(entries) == 0 {
		return
	}
	o.fedTo = entries[len(entries)-1].Seq
	o.rp.Feed(entries)
	o.rp.Run()
}

// Fault returns the divergence found so far, if any.
func (o *OnlineAudit) Fault() *FaultReport { return o.rp.Fault() }

// Stats returns replay effort so far.
func (o *OnlineAudit) Stats() ReplayStats { return o.rp.Stats }

// LagEntries returns how many fed entries remain unconsumed.
func (o *OnlineAudit) LagEntries() int { return o.rp.Pending() }
