package snapshot

import (
	"testing"

	"repro/internal/vm"
)

func newTestMachine(t *testing.T) *vm.Machine {
	t.Helper()
	return vm.NewMachine(8*vm.PageSize, nil)
}

func TestFirstSnapshotIsFull(t *testing.T) {
	m := newTestMachine(t)
	st := NewStore(len(m.Mem))
	s, err := st.Take(m, []byte("dev"), []byte("authdev"))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.MemPages) != m.NumPages() {
		t.Fatalf("first snapshot captured %d pages, want %d", len(s.MemPages), m.NumPages())
	}
	if s.Index != 0 {
		t.Fatalf("index = %d", s.Index)
	}
}

func TestIncrementalCapturesOnlyDirty(t *testing.T) {
	m := newTestMachine(t)
	st := NewStore(len(m.Mem))
	if _, err := st.Take(m, nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := m.Store32(3*vm.PageSize+8, 0xAA); err != nil {
		t.Fatal(err)
	}
	s, err := st.Take(m, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.MemPages) != 1 {
		t.Fatalf("second snapshot captured %d pages, want 1", len(s.MemPages))
	}
	if _, ok := s.MemPages[3]; !ok {
		t.Fatal("dirty page 3 not captured")
	}
	if s.IncrementBytes >= st.memSizeForTest() {
		t.Fatal("increment not smaller than a full dump")
	}
}

// memSizeForTest exposes the store's memory size for assertions.
func (st *Store) memSizeForTest() int { return st.memSize }

func TestMaterializeFoldsIncrements(t *testing.T) {
	m := newTestMachine(t)
	st := NewStore(len(m.Mem))
	if err := m.Store32(0, 111); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Take(m, []byte("d0"), []byte("a0")); err != nil {
		t.Fatal(err)
	}
	if err := m.Store32(2*vm.PageSize, 222); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Take(m, []byte("d1"), []byte("a1")); err != nil {
		t.Fatal(err)
	}
	if err := m.Store32(0, 333); err != nil { // overwrite page 0
		t.Fatal(err)
	}
	if _, err := st.Take(m, []byte("d2"), []byte("a2")); err != nil {
		t.Fatal(err)
	}

	r1, err := st.Materialize(1)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := vm.NewMachine(len(r1.Mem), nil), false; got != nil && false {
		_ = got
	}
	if v := le32(r1.Mem, 0); v != 111 {
		t.Fatalf("snapshot 1 word0 = %d, want 111", v)
	}
	if v := le32(r1.Mem, 2*vm.PageSize); v != 222 {
		t.Fatalf("snapshot 1 page2 = %d, want 222", v)
	}
	r2, err := st.Materialize(2)
	if err != nil {
		t.Fatal(err)
	}
	if v := le32(r2.Mem, 0); v != 333 {
		t.Fatalf("snapshot 2 word0 = %d, want 333", v)
	}
	if string(r1.Device) != "d1" || string(r2.Device) != "d2" {
		t.Fatal("device blobs not per-snapshot")
	}
}

func le32(b []byte, off int) uint32 {
	return uint32(b[off]) | uint32(b[off+1])<<8 | uint32(b[off+2])<<16 | uint32(b[off+3])<<24
}

func TestVerifyRestored(t *testing.T) {
	m := newTestMachine(t)
	st := NewStore(len(m.Mem))
	if err := m.Store32(100, 0xBEEF); err != nil {
		t.Fatal(err)
	}
	s, err := st.Take(m, []byte("dev"), []byte("authdev"))
	if err != nil {
		t.Fatal(err)
	}
	r, err := st.Materialize(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyRestored(r, s.Root); err != nil {
		t.Fatalf("genuine snapshot rejected: %v", err)
	}
	r.Mem[100] ^= 1
	if VerifyRestored(r, s.Root) == nil {
		t.Fatal("tampered memory accepted")
	}
	r.Mem[100] ^= 1
	r.AuthDevice = []byte("tampered")
	if VerifyRestored(r, s.Root) == nil {
		t.Fatal("tampered device state accepted")
	}
	r.AuthDevice = []byte("authdev")
	r.Machine = append([]byte(nil), r.Machine...)
	if len(r.Machine) > 0 {
		r.Machine[0] ^= 1
		if VerifyRestored(r, s.Root) == nil {
			t.Fatal("tampered registers accepted")
		}
	}
}

func TestRootMatchesRootOfState(t *testing.T) {
	m := newTestMachine(t)
	st := NewStore(len(m.Mem))
	if err := m.Store32(4096, 42); err != nil {
		t.Fatal(err)
	}
	s, err := st.Take(m, []byte("d"), []byte("a"))
	if err != nil {
		t.Fatal(err)
	}
	if got := RootOfState(m.Mem, m.CaptureStateRegisters(), []byte("a")); got != s.Root {
		t.Fatal("RootOfState disagrees with Store.Take")
	}
}

func TestRootChainsAcrossIncrements(t *testing.T) {
	// The root after an incremental snapshot must equal the root of the
	// fully materialized state — the property the auditor depends on.
	m := newTestMachine(t)
	st := NewStore(len(m.Mem))
	for i := 0; i < 5; i++ {
		if err := m.Store32(uint32(i)*vm.PageSize, uint32(i+1)*1000); err != nil {
			t.Fatal(err)
		}
		s, err := st.Take(m, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		r, err := st.Materialize(i)
		if err != nil {
			t.Fatal(err)
		}
		if err := VerifyRestored(r, s.Root); err != nil {
			t.Fatalf("increment %d: %v", i, err)
		}
	}
}

// TestRootOfStateHashesPartialTailPage: a memory image that is not a whole
// number of pages must have its tail hashed, not silently truncated
// (regression: pages := len(mem) / PageSize dropped the remainder).
func TestRootOfStateHashesPartialTailPage(t *testing.T) {
	mem := make([]byte, vm.PageSize+100)
	base := RootOfState(mem, nil, nil)
	mem[vm.PageSize+50] = 0xAB // flip a byte in the partial tail
	if RootOfState(mem, nil, nil) == base {
		t.Fatal("tail-page byte flip did not change the state root")
	}
	// The tail must be distinguished from its absence entirely.
	if RootOfState(mem[:vm.PageSize], nil, nil) == RootOfState(mem[:vm.PageSize+1], nil, nil) {
		t.Fatal("one-byte tail hashed identically to no tail")
	}
}

// TestLiveStateHasherMatchesFullRehash: seeding a live tree and folding
// dirty pages must land on exactly the digest a from-scratch rehash of the
// final state computes — the equivalence incremental replay verification
// rests on.
func TestLiveStateHasherMatchesFullRehash(t *testing.T) {
	mem := make([]byte, 8*vm.PageSize+123) // partial tail page too
	for i := range mem {
		mem[i] = byte(i * 7)
	}
	var lh LiveStateHasher
	if lh.Seeded() {
		t.Fatal("unseeded hasher claims seeded")
	}
	got := lh.Seed(mem, []byte("regs"), []byte("dev"))
	if want := RootOfState(mem, []byte("regs"), []byte("dev")); got != want {
		t.Fatal("seed digest disagrees with full rehash")
	}
	// Dirty a few pages, including the partial tail, and fold.
	mem[0] ^= 1
	mem[3*vm.PageSize+9]++
	mem[8*vm.PageSize+2] ^= 0x80
	got, err := lh.Fold(mem, []int{0, 3, 8}, []byte("regs2"), []byte("dev"))
	if err != nil {
		t.Fatal(err)
	}
	if want := RootOfState(mem, []byte("regs2"), []byte("dev")); got != want {
		t.Fatal("folded digest disagrees with full rehash")
	}
	// An unseeded fold — or one over a different-sized image — reseeds.
	var fresh LiveStateHasher
	got, err = fresh.Fold(mem, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if want := RootOfState(mem, nil, nil); got != want {
		t.Fatal("unseeded fold did not fall back to a full seed")
	}
	grown := append(mem, make([]byte, vm.PageSize)...)
	got, err = lh.Fold(grown, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if want := RootOfState(grown, nil, nil); got != want {
		t.Fatal("resized fold did not fall back to a full seed")
	}
	// Out-of-range dirty index fails the fold rather than corrupting state.
	if _, err := lh.Fold(grown, []int{10}, nil, nil); err == nil {
		t.Fatal("out-of-range dirty page accepted")
	}
}

// TestMaterializeSkipsStalePages: newest-first materialization must take
// each page from its most recent capture, never an older one.
func TestMaterializeSkipsStalePages(t *testing.T) {
	m := newTestMachine(t)
	st := NewStore(len(m.Mem))
	if err := m.Store32(2*vm.PageSize, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Take(m, nil, nil); err != nil {
		t.Fatal(err)
	}
	for i := 2; i <= 4; i++ {
		if err := m.Store32(2*vm.PageSize, uint32(i)); err != nil {
			t.Fatal(err)
		}
		if _, err := st.Take(m, nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	for k := 0; k < st.Count(); k++ {
		r, err := st.Materialize(k)
		if err != nil {
			t.Fatal(err)
		}
		if v := le32(r.Mem, 2*vm.PageSize); v != uint32(k+1) {
			t.Fatalf("snapshot %d materialized page value %d, want %d", k, v, k+1)
		}
		s, err := st.Snapshot(k)
		if err != nil {
			t.Fatal(err)
		}
		if err := VerifyRestored(r, s.Root); err != nil {
			t.Fatalf("snapshot %d: %v", k, err)
		}
	}
}

func TestBounds(t *testing.T) {
	st := NewStore(4 * vm.PageSize)
	if _, err := st.Materialize(0); err == nil {
		t.Fatal("materialize on empty store")
	}
	if _, err := st.Snapshot(0); err == nil {
		t.Fatal("snapshot 0 on empty store")
	}
	if _, err := st.TransferBytes(2); err == nil {
		t.Fatal("transfer bytes out of range")
	}
	m := vm.NewMachine(8*vm.PageSize, nil) // mismatched size
	if _, err := st.Take(m, nil, nil); err == nil {
		t.Fatal("mismatched machine accepted")
	}
}

func TestTransferBytes(t *testing.T) {
	m := newTestMachine(t)
	st := NewStore(len(m.Mem))
	if _, err := st.Take(m, []byte("0123456789"), []byte("a")); err != nil {
		t.Fatal(err)
	}
	b, err := st.TransferBytes(0)
	if err != nil {
		t.Fatal(err)
	}
	if b < len(m.Mem) {
		t.Fatalf("transfer bytes %d below memory size %d", b, len(m.Mem))
	}
}
