// Package snapshot implements the AVMM's periodic state snapshots (§4.4):
// incremental dirty-page captures of machine memory plus the machine
// register file and device state, authenticated by a hash tree whose root
// is recorded in the tamper-evident log. Snapshots enable spot checking and
// incremental audits (§3.5, §6.12): an auditor can replay any log segment
// that begins and ends at a snapshot.
package snapshot

import (
	"crypto/sha256"
	"fmt"

	"repro/internal/merkle"
	"repro/internal/vm"
)

// Snapshot is one incremental capture. MemPages holds only the pages
// dirtied since the previous snapshot (all pages for the first), which is
// what makes frequent snapshots affordable (§4.4 cites Remus-style
// incremental snapshots).
type Snapshot struct {
	// Index is the snapshot's position in the machine's snapshot sequence,
	// starting at 0.
	Index int
	// Landmark is the execution point at which the snapshot was taken.
	Landmark vm.Landmark
	// Root is the authenticated digest recorded in the log: a hash over the
	// memory tree root and the machine/device state.
	Root [32]byte
	// MemRoot is the Merkle root over memory pages.
	MemRoot merkle.Hash
	// MemPages maps page index to page contents for dirtied pages.
	MemPages map[int][]byte
	// Machine is the serialized register file (vm.State.MarshalRegisters).
	Machine []byte
	// Device is the full serialized device state, including the virtual
	// disk, sufficient to resume execution.
	Device []byte
	// AuthDevice is the canonical (replay-deterministic) device state the
	// root is computed over; host-timing fields are excluded.
	AuthDevice []byte
	// IncrementBytes is the serialized size of this incremental snapshot,
	// the quantity §6.12 reports per snapshot.
	IncrementBytes int
	// ICount is the machine's retired-instruction count at capture time;
	// consecutive snapshots' differences give the per-epoch instruction
	// cost the job scheduler prices epochs with.
	ICount uint64
	// Proof is the fold proof for this increment, captured from the hash
	// tree as it stood at the previous snapshot: the dirty leaves' old
	// hashes plus the sibling path material that connects the previous
	// MemRoot to this snapshot's MemRoot. A zero Proof (Leaves == 0) means
	// the snapshot predates proof capture; Delta rebuilds it on demand.
	Proof merkle.BatchProof
}

// Restored is a materialized full state at some snapshot.
type Restored struct {
	Index      int
	Mem        []byte
	Machine    []byte
	Device     []byte
	AuthDevice []byte
	Root       [32]byte
}

// Store accumulates a machine's snapshot sequence and can materialize the
// full state at any index.
type Store struct {
	pageCount int
	memSize   int
	tree      *merkle.Tree
	snaps     []*Snapshot
}

// NewStore returns a store for machines with the given memory size.
func NewStore(memSize int) *Store {
	pages := (memSize + vm.PageSize - 1) / vm.PageSize
	return &Store{pageCount: pages, memSize: pages * vm.PageSize, tree: merkle.New(pages)}
}

// Count returns the number of snapshots taken.
func (st *Store) Count() int { return len(st.snaps) }

// StoreFile is the persisted form of a snapshot store — what avm-run gob-
// encodes into a recording's <node>.snaps and avm-audit decodes to
// materialize epoch starting states. Defining it here (not in each CLI)
// keeps the writers' and readers' formats from drifting.
type StoreFile struct {
	MemSize int
	Snaps   []*Snapshot
}

// File returns the store's persistable form. The slice and its snapshots
// are shared, not copied; callers must not mutate them.
func (st *Store) File() StoreFile {
	return StoreFile{MemSize: st.memSize, Snaps: st.snaps}
}

// Restore rebuilds a store around a persisted snapshot sequence, for
// audit-side materialization: Materialize, Snapshot, Count and
// TransferBytes work as on the original store. The internal hash tree is
// not reconstructed, so Take must not be called on a restored store —
// auditors only read.
func (f StoreFile) Restore() *Store {
	st := NewStore(f.MemSize)
	st.snaps = f.Snaps
	return st
}

// Snapshot returns snapshot k.
func (st *Store) Snapshot(k int) (*Snapshot, error) {
	if k < 0 || k >= len(st.snaps) {
		return nil, fmt.Errorf("snapshot: index %d out of range [0,%d)", k, len(st.snaps))
	}
	return st.snaps[k], nil
}

// Take captures an incremental snapshot of m (and the opaque serialized
// device state: devBlob for restore, authDevBlob for the authenticated
// root) and clears the machine's dirty tracking. The first snapshot
// captures all pages.
func (st *Store) Take(m *vm.Machine, devBlob, authDevBlob []byte) (*Snapshot, error) {
	if m.NumPages() != st.pageCount {
		return nil, fmt.Errorf("snapshot: machine has %d pages, store sized for %d", m.NumPages(), st.pageCount)
	}
	var pages []int
	if len(st.snaps) == 0 {
		pages = make([]int, st.pageCount)
		for i := range pages {
			pages[i] = i
		}
	} else {
		pages = m.DirtyPages()
	}
	s := &Snapshot{
		Index:      len(st.snaps),
		Landmark:   m.Landmark(),
		MemPages:   make(map[int][]byte, len(pages)),
		Machine:    m.CaptureStateRegisters(),
		Device:     append([]byte(nil), devBlob...),
		AuthDevice: append([]byte(nil), authDevBlob...),
		ICount:     m.ICount,
	}
	if len(st.snaps) == 0 {
		// Full capture: every page is dirty, so bulk-hash the leaves
		// concurrently instead of paying an O(log n) path per page.
		for _, p := range pages {
			s.MemPages[p] = append([]byte(nil), m.Page(p)...)
		}
		st.tree.Fill(func(p int) []byte { return s.MemPages[p] }, 0)
	} else {
		for _, p := range pages {
			s.MemPages[p] = append([]byte(nil), m.Page(p)...)
		}
		// Capture the fold proof against the tree as it still stands at the
		// previous snapshot — the proof's old leaf hashes and siblings must
		// predate the batch update they prove.
		proof, err := st.tree.ProveBatch(pages)
		if err != nil {
			return nil, err
		}
		s.Proof = proof
		// Batch path: rehash the dirty leaves, then fold the union of their
		// root paths once — shared interior nodes are not rehashed per page.
		if err := st.tree.UpdateBatch(pages, func(p int) []byte { return s.MemPages[p] }, 0); err != nil {
			return nil, err
		}
	}
	s.MemRoot = st.tree.Root()
	s.Root = CombineRoot(s.MemRoot, s.Machine, s.AuthDevice)
	s.IncrementBytes = len(s.Machine) + len(s.Device) + len(pages)*(vm.PageSize+4)
	st.snaps = append(st.snaps, s)
	m.ClearDirty()
	return s, nil
}

// CombineRoot folds the memory tree root and the machine/device blobs into
// the single digest recorded in the log.
func CombineRoot(memRoot merkle.Hash, machineBlob, devBlob []byte) [32]byte {
	h := sha256.New()
	h.Write(memRoot[:])
	meta := sha256.New()
	meta.Write(machineBlob)
	meta.Write(devBlob)
	h.Write(meta.Sum(nil))
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// IncrementSource supplies snapshot increments for audit-side
// materialization. *Store implements it over its in-memory sequence; the
// disk archive implements it over verified snapshot segments, which is
// how every engine's Materialize closure can fold states straight from an
// archive. Implementations may read from disk and must return an error —
// never a corrupted increment — when the underlying bytes fail
// verification.
type IncrementSource interface {
	// MemSize is the guest memory size in bytes the folds rebuild into.
	MemSize() int
	// Count is the number of increments available.
	Count() int
	// Increment returns increment k (0 <= k < Count).
	Increment(k int) (*Snapshot, error)
}

// MemSize implements IncrementSource.
func (st *Store) MemSize() int { return st.memSize }

// Increment implements IncrementSource; it is Snapshot by another name.
func (st *Store) Increment(k int) (*Snapshot, error) { return st.Snapshot(k) }

// MaterializeFrom reconstructs the complete state at snapshot k from any
// increment source. Increments are folded newest-first, each page taken
// from the most recent capture that holds it, and the walk stops as soon
// as every page is resolved — so materializing late snapshots (which
// parallel audits do once per epoch) costs the distinct pages, not the
// sum of all increment sizes.
func MaterializeFrom(src IncrementSource, k int) (*Restored, error) {
	if k < 0 || k >= src.Count() {
		return nil, fmt.Errorf("snapshot: index %d out of range [0,%d)", k, src.Count())
	}
	memSize := src.MemSize()
	pageCount := memSize / vm.PageSize
	mem := make([]byte, memSize)
	written := make([]bool, pageCount)
	remaining := pageCount
	var s *Snapshot
	for i := k; i >= 0 && (remaining > 0 || s == nil); i-- {
		inc, err := src.Increment(i)
		if err != nil {
			return nil, err
		}
		if s == nil {
			s = inc
		}
		for p, page := range inc.MemPages {
			if p < 0 || p >= pageCount || written[p] {
				continue
			}
			copy(mem[p*vm.PageSize:], page)
			written[p] = true
			remaining--
		}
	}
	return &Restored{
		Index: k, Mem: mem,
		Machine:    append([]byte(nil), s.Machine...),
		Device:     append([]byte(nil), s.Device...),
		AuthDevice: append([]byte(nil), s.AuthDevice...),
		Root:       s.Root,
	}, nil
}

// Materialize reconstructs the complete state at snapshot k — the
// newest-first early-exit fold of MaterializeFrom over this store.
func (st *Store) Materialize(k int) (*Restored, error) {
	return MaterializeFrom(st, k)
}

// TransferBytes returns the number of bytes an auditor must download to
// obtain the full state at snapshot k (a materialized memory image plus
// machine and device state — the analogue of the paper's full memory dump
// plus disk snapshot, §6.12).
func (st *Store) TransferBytes(k int) (int, error) {
	if k < 0 || k >= len(st.snaps) {
		return 0, fmt.Errorf("snapshot: index %d out of range [0,%d)", k, len(st.snaps))
	}
	s := st.snaps[k]
	return st.memSize + len(s.Machine) + len(s.Device), nil
}

// VerifyRestored recomputes the root of a downloaded state and compares it
// with the root the log committed to (§4.5, "Verifying the snapshot").
// Callers that go on to replay from the state should use
// LiveStateHasher.SeedVerify instead, which leaves the verification tree
// primed for incremental folding.
func VerifyRestored(r *Restored, wantRoot [32]byte) error {
	got := RootOfState(r.Mem, r.Machine, r.AuthDevice)
	return checkRoot(got, wantRoot)
}

func checkRoot(got, want [32]byte) error {
	if got != want {
		return fmt.Errorf("snapshot: state root %x does not match committed root %x", got[:8], want[:8])
	}
	return nil
}

// statePages returns the leaf count for a memory image: whole pages,
// rounding up so a non-page-aligned tail is hashed rather than silently
// truncated.
func statePages(memLen int) int {
	return (memLen + vm.PageSize - 1) / vm.PageSize
}

// statePage returns page p of mem, clamped at a partial tail; nil beyond
// the image (padding leaves).
func statePage(mem []byte, p int) []byte {
	lo := p * vm.PageSize
	if lo >= len(mem) {
		return nil
	}
	hi := lo + vm.PageSize
	if hi > len(mem) {
		hi = len(mem)
	}
	return mem[lo:hi]
}

// StateHasher computes authenticated state digests, reusing one hash tree
// across calls so repeated full-state verifications do not rebuild (or
// reallocate) the tree each time. Page hashing — a pure fan-out over
// 4 KiB pages — runs on up to Workers goroutines. A StateHasher is not
// safe for concurrent use; concurrent verifiers each hold their own.
type StateHasher struct {
	// Workers bounds the page-hashing fan-out; <= 0 selects
	// merkle.DefaultWorkers().
	Workers int
	tree    merkle.Tree
}

// RootOfState computes the authenticated digest of a full state.
func (sh *StateHasher) RootOfState(mem []byte, machineBlob, devBlob []byte) [32]byte {
	sh.tree.SeedFrom(statePages(len(mem)), func(p int) []byte { return statePage(mem, p) }, sh.Workers)
	return CombineRoot(sh.tree.Root(), machineBlob, devBlob)
}

// RootOfState computes the authenticated digest of a full state, hashing
// pages concurrently. Callers that verify many snapshots should hold a
// StateHasher instead to reuse the tree.
func RootOfState(mem []byte, machineBlob, devBlob []byte) [32]byte {
	var sh StateHasher
	return sh.RootOfState(mem, machineBlob, devBlob)
}

// LiveStateHasher maintains a persistent hash tree over a machine state so
// a replay can verify successive snapshot roots incrementally: seed the
// tree once from a full state, then fold only the pages dirtied since the
// previous verification. Each fold costs O(dirty · log n) instead of the
// O(state) a full rehash pays — §4.4's incremental-commitment argument,
// applied on the auditor side. Not safe for concurrent use; parallel audit
// epochs each hold their own.
type LiveStateHasher struct {
	// Workers bounds the page-hashing fan-out of Seed (and of large Folds);
	// <= 0 selects merkle.DefaultWorkers().
	Workers int
	tree    merkle.Tree
	memLen  int
	seeded  bool
}

// Seeded reports whether the live tree has been initialized.
func (lh *LiveStateHasher) Seeded() bool { return lh.seeded }

// MemRoot returns the live tree's current memory root. Only valid after a
// Seed; delta-job workers use it to anchor a fold-proof chain at a state
// they verified themselves.
func (lh *LiveStateHasher) MemRoot() merkle.Hash { return lh.tree.Root() }

// Seed (re)initializes the live tree from a full memory image with one
// parallel fill and returns the authenticated digest of the state.
func (lh *LiveStateHasher) Seed(mem []byte, machineBlob, devBlob []byte) [32]byte {
	lh.tree.SeedFrom(statePages(len(mem)), func(p int) []byte { return statePage(mem, p) }, lh.Workers)
	lh.memLen = len(mem)
	lh.seeded = true
	return CombineRoot(lh.tree.Root(), machineBlob, devBlob)
}

// SeedVerify seeds the live tree from a restored state and checks the
// resulting digest against the root the log committed to — VerifyRestored,
// but leaving the hasher primed so the replay that starts from the state
// can fold dirty pages instead of rehashing everything at each snapshot
// entry.
func (lh *LiveStateHasher) SeedVerify(r *Restored, wantRoot [32]byte) error {
	return checkRoot(lh.Seed(r.Mem, r.Machine, r.AuthDevice), wantRoot)
}

// Fold rehashes only the given dirty pages of mem and returns the new
// authenticated digest. An unseeded hasher — or one seeded over a
// different-sized image — falls back to a full Seed.
func (lh *LiveStateHasher) Fold(mem []byte, dirty []int, machineBlob, devBlob []byte) ([32]byte, error) {
	if !lh.seeded || lh.memLen != len(mem) {
		return lh.Seed(mem, machineBlob, devBlob), nil
	}
	if err := lh.tree.UpdateBatch(dirty, func(p int) []byte { return statePage(mem, p) }, lh.Workers); err != nil {
		return [32]byte{}, err
	}
	return CombineRoot(lh.tree.Root(), machineBlob, devBlob), nil
}
