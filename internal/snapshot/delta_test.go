package snapshot

import (
	"bytes"
	"encoding/gob"
	"testing"

	"repro/internal/vm"
)

// takeSequence records n+1 snapshots of a machine that dirties a few pages
// between captures, returning the store.
func takeSequence(t *testing.T, n int) (*Store, *vm.Machine) {
	t.Helper()
	m := newTestMachine(t)
	st := NewStore(len(m.Mem))
	if _, err := st.Take(m, []byte("dev0"), []byte("auth0")); err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= n; k++ {
		for _, p := range []int{k % 8, (3 * k) % 8} {
			if err := m.Store32(uint32(p*vm.PageSize+4*k), uint32(0x1000*k+p)); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := st.Take(m, []byte{byte('d'), byte(k)}, []byte{byte('a'), byte(k)}); err != nil {
			t.Fatal(err)
		}
	}
	return st, m
}

func TestDeltaApplyMatchesMaterialize(t *testing.T) {
	st, _ := takeSequence(t, 4)
	base, err := st.Materialize(0)
	if err != nil {
		t.Fatal(err)
	}
	cur := base
	for k := 1; k < st.Count(); k++ {
		d, err := st.Delta(k)
		if err != nil {
			t.Fatal(err)
		}
		next, err := ApplyDelta(cur, d)
		if err != nil {
			t.Fatalf("ApplyDelta(%d): %v", k, err)
		}
		want, err := st.Materialize(k)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(next.Mem, want.Mem) {
			t.Fatalf("delta %d: memory differs from materialized", k)
		}
		if next.Root != want.Root {
			t.Fatalf("delta %d: root differs", k)
		}
		if err := VerifyRestored(next, want.Root); err != nil {
			t.Fatalf("delta %d: restored state fails verification: %v", k, err)
		}
		// Base must be untouched: re-verify it against its own root.
		if err := VerifyRestored(cur, cur.Root); err != nil {
			t.Fatalf("delta %d mutated its base: %v", k, err)
		}
		cur = next
	}
}

func TestDeltaDetectsTampering(t *testing.T) {
	st, _ := takeSequence(t, 2)
	base, err := st.Materialize(0)
	if err != nil {
		t.Fatal(err)
	}
	fresh := func() *Delta {
		d, err := st.Delta(1)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	if _, err := ApplyDelta(base, fresh()); err != nil {
		t.Fatalf("untampered delta rejected: %v", err)
	}

	d := fresh()
	d.Pages[0].Data = append([]byte(nil), d.Pages[0].Data...)
	d.Pages[0].Data[7] ^= 1
	if _, err := ApplyDelta(base, d); err == nil {
		t.Fatal("tampered page data accepted")
	}

	d = fresh()
	d.Machine = append([]byte(nil), d.Machine...)
	d.Machine[0] ^= 1
	if _, err := ApplyDelta(base, d); err == nil {
		t.Fatal("tampered machine blob accepted")
	}

	d = fresh()
	d.FromMemRoot[0] ^= 1
	if _, err := ApplyDelta(base, d); err == nil {
		t.Fatal("tampered previous mem root accepted")
	}

	d = fresh()
	d.ToRoot[0] ^= 1
	if _, err := ApplyDelta(base, d); err == nil {
		t.Fatal("tampered next root accepted")
	}

	// Wrong base snapshot index.
	d = fresh()
	wrong := *base
	wrong.Index = 1
	if _, err := ApplyDelta(&wrong, d); err == nil {
		t.Fatal("mismatched base index accepted")
	}
}

func TestDeltaOnRestoredStoreRebuildsProof(t *testing.T) {
	st, _ := takeSequence(t, 3)
	// Round-trip the persisted form with proofs stripped, simulating a
	// recording that predates proof capture.
	var buf bytes.Buffer
	file := st.File()
	for _, s := range file.Snaps {
		s.Proof.Leaves = 0
		s.Proof.Indices = nil
		s.Proof.Old = nil
		s.Proof.Siblings = nil
	}
	if err := gob.NewEncoder(&buf).Encode(file); err != nil {
		t.Fatal(err)
	}
	var decoded StoreFile
	if err := gob.NewDecoder(&buf).Decode(&decoded); err != nil {
		t.Fatal(err)
	}
	restored := decoded.Restore()
	base, err := restored.Materialize(1)
	if err != nil {
		t.Fatal(err)
	}
	d, err := restored.Delta(2)
	if err != nil {
		t.Fatal(err)
	}
	next, err := ApplyDelta(base, d)
	if err != nil {
		t.Fatalf("rebuilt-proof delta rejected: %v", err)
	}
	want, err := restored.Materialize(2)
	if err != nil {
		t.Fatal(err)
	}
	if next.Root != want.Root || !bytes.Equal(next.Mem, want.Mem) {
		t.Fatal("rebuilt-proof delta does not reproduce materialized state")
	}
}

func TestCostModel(t *testing.T) {
	st, _ := takeSequence(t, 2)
	c0, err := st.Cost(0)
	if err != nil {
		t.Fatal(err)
	}
	if c0.DirtyBytes != st.memSizeForTest() {
		t.Fatalf("boot cost dirty bytes = %d, want full state %d", c0.DirtyBytes, st.memSizeForTest())
	}
	if c0.Instructions != 0 {
		t.Fatalf("boot cost instructions = %d, want 0", c0.Instructions)
	}
	c1, err := st.Cost(1)
	if err != nil {
		t.Fatal(err)
	}
	if c1.DirtyBytes <= 0 || c1.DirtyBytes >= c0.DirtyBytes {
		t.Fatalf("epoch cost dirty bytes = %d, want within (0,%d)", c1.DirtyBytes, c0.DirtyBytes)
	}
	d, err := st.Delta(1)
	if err != nil {
		t.Fatal(err)
	}
	if d.Cost != c1 {
		t.Fatalf("delta cost %+v != store cost %+v", d.Cost, c1)
	}
	if d.DeltaBytes() >= st.memSizeForTest() {
		t.Fatalf("delta bytes %d not smaller than full state %d", d.DeltaBytes(), st.memSizeForTest())
	}
}
