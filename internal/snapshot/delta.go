// Proof-carrying snapshot deltas: the dirty-page increment between two
// consecutive snapshots, packaged with the Merkle fold proof that connects
// the previous memory root to the next one. A party holding the verified
// state at snapshot k-1 — or no state at all — can check the transition
// k-1 → k in O(dirty · log n) without trusting whoever shipped the delta,
// which is what lets dispatched epoch jobs carry increments instead of
// full materialized states.
package snapshot

import (
	"fmt"
	"sort"

	"repro/internal/merkle"
	"repro/internal/vm"
)

// DeltaPage is one dirtied page in a delta, in ascending index order.
type DeltaPage struct {
	Index int
	Data  []byte
}

// Cost is the per-epoch cost model the scheduler sizes and prices jobs
// with: how many guest instructions the epoch replays and how many dirty
// bytes its delta ships.
type Cost struct {
	// Instructions retired between the two snapshots (0 when the recording
	// predates ICount capture).
	Instructions uint64
	// DirtyBytes is the payload size of the dirty-page increment.
	DirtyBytes int
}

// Delta is the proof-carrying transition from snapshot FromIndex to
// FromIndex+1: the dirty-page increment, the fold proof over it, the
// machine/device blobs of the destination snapshot, and both committed
// roots.
type Delta struct {
	// FromIndex is the base snapshot; the delta advances it to FromIndex+1.
	FromIndex int
	// FromRoot/ToRoot are the combined (log-committed) roots of the two
	// snapshots; FromMemRoot/ToMemRoot the memory tree roots the fold proof
	// connects.
	FromRoot    [32]byte
	ToRoot      [32]byte
	FromMemRoot merkle.Hash
	ToMemRoot   merkle.Hash
	// Pages is the dirty increment, sorted by page index and parallel to
	// Proof.Indices.
	Pages []DeltaPage
	// Proof folds Pages' old hashes to FromMemRoot and their new contents
	// to ToMemRoot.
	Proof merkle.BatchProof
	// Machine, Device and AuthDevice are the destination snapshot's blobs.
	Machine    []byte
	Device     []byte
	AuthDevice []byte
	// Cost prices the epoch that ends at the destination snapshot.
	Cost Cost
}

// DeltaBytes is the shipped payload size of the delta: pages, blobs, roots
// and proof material. It is what the dispatch stats report as delta job
// bytes.
func (d *Delta) DeltaBytes() int {
	n := len(d.Machine) + len(d.Device) + len(d.AuthDevice) + 4*32
	for _, p := range d.Pages {
		n += 4 + len(p.Data)
	}
	n += len(d.Proof.Old)*merkle.HashSize + len(d.Proof.Siblings)*merkle.HashSize + len(d.Proof.Indices)*4
	return n
}

// Delta returns the proof-carrying transition from snapshot k-1 to
// snapshot k (k >= 1) — DeltaFrom over this store.
func (st *Store) Delta(k int) (*Delta, error) {
	return DeltaFrom(st, k)
}

// DeltaFrom builds the proof-carrying transition from snapshot k-1 to
// snapshot k (k >= 1) out of any increment source — the archive-backed
// delta path behind delta-shipped dispatch. Snapshots recorded before
// proof capture rebuild the proof by materializing the base state —
// O(state) once, instead of the O(dirty · log n) the captured path pays.
func DeltaFrom(src IncrementSource, k int) (*Delta, error) {
	if k < 1 || k >= src.Count() {
		return nil, fmt.Errorf("snapshot: delta index %d out of range [1,%d)", k, src.Count())
	}
	from, err := src.Increment(k - 1)
	if err != nil {
		return nil, err
	}
	to, err := src.Increment(k)
	if err != nil {
		return nil, err
	}
	d := &Delta{
		FromIndex:   k - 1,
		FromRoot:    from.Root,
		ToRoot:      to.Root,
		FromMemRoot: from.MemRoot,
		ToMemRoot:   to.MemRoot,
		Machine:     to.Machine,
		Device:      to.Device,
		AuthDevice:  to.AuthDevice,
	}
	indices := make([]int, 0, len(to.MemPages))
	for p := range to.MemPages {
		indices = append(indices, p)
	}
	sort.Ints(indices)
	d.Pages = make([]DeltaPage, len(indices))
	for i, p := range indices {
		d.Pages[i] = DeltaPage{Index: p, Data: to.MemPages[p]}
		d.Cost.DirtyBytes += len(to.MemPages[p])
	}
	if to.ICount >= from.ICount {
		d.Cost.Instructions = to.ICount - from.ICount
	}
	if to.Proof.Leaves != 0 {
		d.Proof = to.Proof
	} else {
		// Legacy snapshot without a captured proof: rebuild the base tree
		// and extract the proof from it.
		base, err := MaterializeFrom(src, k-1)
		if err != nil {
			return nil, err
		}
		pageCount := src.MemSize() / vm.PageSize
		tree := merkle.Seeded(pageCount, func(p int) []byte { return statePage(base.Mem, p) }, 0)
		proof, err := tree.ProveBatch(indices)
		if err != nil {
			return nil, err
		}
		d.Proof = proof
	}
	return d, nil
}

// Cost returns the per-epoch cost model for the epoch that ends at
// snapshot k: instructions retired since snapshot k-1 (the epoch's replay
// work) and the dirty bytes its delta ships. k == 0 prices the boot
// capture (all pages, no instructions attributable to an epoch).
func (st *Store) Cost(k int) (Cost, error) {
	if k < 0 || k >= len(st.snaps) {
		return Cost{}, fmt.Errorf("snapshot: index %d out of range [0,%d)", k, len(st.snaps))
	}
	var c Cost
	for _, page := range st.snaps[k].MemPages {
		c.DirtyBytes += len(page)
	}
	if k > 0 && st.snaps[k].ICount >= st.snaps[k-1].ICount {
		c.Instructions = st.snaps[k].ICount - st.snaps[k-1].ICount
	}
	return c, nil
}

// VerifyDelta checks a delta against a trusted base: that the delta's
// claimed previous memory root is the one the base state commits to, and
// that the fold proof connects it — through exactly the shipped pages — to
// the claimed next roots. base is the verified state at d.FromIndex; its
// Root must have been checked against the log before trusting this call.
// Nothing is mutated. A tampered page, proof, or root fails here, before
// any replay work is spent.
func VerifyDelta(base *Restored, d *Delta) error {
	if base.Index != d.FromIndex {
		return fmt.Errorf("snapshot: delta applies to snapshot %d, base is %d", d.FromIndex, base.Index)
	}
	// Bind the claimed memory root to the base's combined root: the base's
	// machine/device blobs are part of the trusted state, so a fabricated
	// FromMemRoot cannot reproduce base.Root.
	if got := CombineRoot(d.FromMemRoot, base.Machine, base.AuthDevice); got != base.Root {
		return fmt.Errorf("snapshot: delta previous root %x does not match base state root %x", got[:8], base.Root[:8])
	}
	newData := make([][]byte, len(d.Pages))
	pageCount := statePages(len(base.Mem))
	for i, p := range d.Pages {
		if p.Index < 0 || p.Index >= pageCount {
			return fmt.Errorf("snapshot: delta page %d out of range [0,%d)", p.Index, pageCount)
		}
		if len(p.Data) > vm.PageSize {
			return fmt.Errorf("snapshot: delta page %d is %d bytes, page size is %d", p.Index, len(p.Data), vm.PageSize)
		}
		newData[i] = p.Data
	}
	if err := merkle.FoldVerify(d.FromMemRoot, d.ToMemRoot, d.Proof, newData); err != nil {
		return fmt.Errorf("snapshot: delta fold proof for snapshot %d: %w", d.FromIndex+1, err)
	}
	if got := CombineRoot(d.ToMemRoot, d.Machine, d.AuthDevice); got != d.ToRoot {
		return fmt.Errorf("snapshot: delta next root %x does not match combined root %x", d.ToRoot[:8], got[:8])
	}
	return nil
}

// ApplyDelta verifies d against base and returns the materialized state at
// snapshot d.FromIndex+1. base is not mutated — a worker's state cache
// keeps it for later jobs. The returned state's Root equals d.ToRoot,
// which the caller must still compare against the log-committed root for
// the epoch it starts.
func ApplyDelta(base *Restored, d *Delta) (*Restored, error) {
	if err := VerifyDelta(base, d); err != nil {
		return nil, err
	}
	mem := append([]byte(nil), base.Mem...)
	for _, p := range d.Pages {
		copy(mem[p.Index*vm.PageSize:], p.Data)
	}
	return &Restored{
		Index:      d.FromIndex + 1,
		Mem:        mem,
		Machine:    append([]byte(nil), d.Machine...),
		Device:     append([]byte(nil), d.Device...),
		AuthDevice: append([]byte(nil), d.AuthDevice...),
		Root:       d.ToRoot,
	}, nil
}
