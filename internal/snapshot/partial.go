package snapshot

import (
	"fmt"
	"sort"

	"repro/internal/merkle"
	"repro/internal/vm"
)

// PartialState is a subset of a snapshot: only selected memory pages, each
// with a Merkle inclusion proof against the snapshot's committed memory
// root. It implements two ideas from the paper:
//
//   - §4.4: an auditor can "incrementally request the parts of the state
//     that are accessed during replay" instead of a full snapshot, and
//     authenticate them with the hash tree;
//   - §7.3: when handing evidence to a third party, the auditor "can use
//     the hash tree to remove any part of the snapshot that is not
//     necessary to replay the relevant segment", limiting how much of the
//     machine's state the evidence discloses.
type PartialState struct {
	// Index is the snapshot index this partial state was cut from.
	Index int
	// Root is the combined authenticated digest committed in the log.
	Root [32]byte
	// MemRoot is the Merkle root over memory pages.
	MemRoot merkle.Hash
	// Machine and AuthDevice are the (small) non-memory state blobs; Device
	// is the full device blob needed to resume execution.
	Machine    []byte
	Device     []byte
	AuthDevice []byte
	// MemSize is the machine memory size the pages belong to.
	MemSize int
	// Pages maps page index to contents; Proofs carries one inclusion proof
	// per page.
	Pages  map[int][]byte
	Proofs map[int]merkle.Proof
}

// PartialFromRestored cuts the given pages (plus proofs) out of a full
// restored state.
func PartialFromRestored(r *Restored, pages []int) (*PartialState, error) {
	nPages := len(r.Mem) / vm.PageSize
	tree := merkle.New(nPages)
	for p := 0; p < nPages; p++ {
		if err := tree.Update(p, r.Mem[p*vm.PageSize:(p+1)*vm.PageSize]); err != nil {
			return nil, err
		}
	}
	ps := &PartialState{
		Index: r.Index, Root: r.Root, MemRoot: tree.Root(),
		Machine:    append([]byte(nil), r.Machine...),
		Device:     append([]byte(nil), r.Device...),
		AuthDevice: append([]byte(nil), r.AuthDevice...),
		MemSize:    len(r.Mem),
		Pages:      make(map[int][]byte, len(pages)),
		Proofs:     make(map[int]merkle.Proof, len(pages)),
	}
	for _, p := range pages {
		if p < 0 || p >= nPages {
			return nil, fmt.Errorf("snapshot: page %d out of range [0,%d)", p, nPages)
		}
		if _, dup := ps.Pages[p]; dup {
			continue
		}
		ps.Pages[p] = append([]byte(nil), r.Mem[p*vm.PageSize:(p+1)*vm.PageSize]...)
		proof, err := tree.Prove(p)
		if err != nil {
			return nil, err
		}
		ps.Proofs[p] = proof
	}
	return ps, nil
}

// Verify checks the partial state against the committed root: the combined
// root must reproduce from (MemRoot, Machine, AuthDevice), and every page
// must prove inclusion under MemRoot. A verifier that accepts Verify knows
// each provided page is exactly what the machine committed to — without
// seeing any other page.
func (ps *PartialState) Verify(wantRoot [32]byte) error {
	if ps.Root != wantRoot {
		return fmt.Errorf("snapshot: partial state root %x does not match committed root %x",
			ps.Root[:8], wantRoot[:8])
	}
	if got := CombineRoot(ps.MemRoot, ps.Machine, ps.AuthDevice); got != wantRoot {
		return fmt.Errorf("snapshot: memory root and state blobs do not combine to the committed root")
	}
	for p, page := range ps.Pages {
		proof, ok := ps.Proofs[p]
		if !ok {
			return fmt.Errorf("snapshot: page %d has no inclusion proof", p)
		}
		if proof.Index != p {
			return fmt.Errorf("snapshot: page %d carries a proof for page %d", p, proof.Index)
		}
		if err := merkle.VerifyProof(ps.MemRoot, proof, page); err != nil {
			return fmt.Errorf("snapshot: page %d: %w", p, err)
		}
	}
	return nil
}

// Materialize builds a memory image with the provided pages in place and
// zeroes elsewhere, for feeding a replay. Callers must confirm (via access
// tracking) that the replay never touched a missing page before drawing
// conclusions.
func (ps *PartialState) Materialize() *Restored {
	mem := make([]byte, ps.MemSize)
	for p, page := range ps.Pages {
		copy(mem[p*vm.PageSize:], page)
	}
	return &Restored{
		Index: ps.Index, Mem: mem,
		Machine:    append([]byte(nil), ps.Machine...),
		Device:     append([]byte(nil), ps.Device...),
		AuthDevice: append([]byte(nil), ps.AuthDevice...),
		Root:       ps.Root,
	}
}

// PageIndices returns the provided pages in ascending order.
func (ps *PartialState) PageIndices() []int {
	out := make([]int, 0, len(ps.Pages))
	for p := range ps.Pages {
		out = append(out, p)
	}
	sort.Ints(out)
	return out
}

// Bytes returns the transfer size of the partial state: pages, proofs and
// state blobs — the quantity that shrinks when evidence is minimized.
func (ps *PartialState) Bytes() int {
	n := len(ps.Machine) + len(ps.Device) + len(ps.AuthDevice) + len(ps.Root) + len(ps.MemRoot)
	for _, page := range ps.Pages {
		n += len(page) + 4
	}
	for _, proof := range ps.Proofs {
		n += len(proof.Siblings)*merkle.HashSize + 8
	}
	return n
}
