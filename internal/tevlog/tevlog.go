// Package tevlog implements the tamper-evident log at the heart of the AVMM
// (paper §4.3). The log is a hash chain: each entry e_i = (s_i, t_i, c_i,
// h_i) carries a monotonically increasing sequence number, a type, content,
// and a hash h_i = H(h_{i-1} || s_i || t_i || H(c_i)) linking it to every
// previous entry. Authenticators — signed (s_i, h_i) pairs — commit a
// machine to its log: once issued, the machine cannot forge, omit, modify
// or reorder entries, or fork its log, without the chain failing to match.
//
// The technique is adapted from PeerReview (Haeberlen et al., SOSP 2007),
// extended to also carry the VMM's execution trace (nondeterministic inputs
// and interrupt landmarks) alongside message exchanges.
package tevlog

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/sig"
)

// EntryType tags a log entry. Message entries (Send/Recv/Ack) and execution
// entries (Nondet/IRQ/Snapshot) form the two parallel streams §4.4
// describes; the auditor cross-references them.
type EntryType uint8

// Log entry types.
const (
	// TypeSend records an outgoing network message.
	TypeSend EntryType = 1 + iota
	// TypeRecv records an incoming network message, together with the
	// sender's signature so it can be verified during an audit.
	TypeRecv
	// TypeAck records an acknowledgment received for a sent message.
	TypeAck
	// TypeNondet records a synchronous nondeterministic input, e.g. the
	// value returned by a clock read. The timing of synchronous inputs need
	// not be recorded because the guest re-requests them during replay.
	TypeNondet
	// TypeIRQ records an asynchronous event (a hardware interrupt) together
	// with the precise execution landmark at which it was delivered, so it
	// can be re-injected at the exact same point during replay. These play
	// the role of the paper's TimeTracker entries.
	TypeIRQ
	// TypeSnapshot records the top-level hash of a state snapshot.
	TypeSnapshot
	// TypeAnnotation records non-semantic metadata (epoch markers, etc.).
	// Annotations are hashed like any other entry but ignored by replay.
	TypeAnnotation
)

// String returns the conventional name of the entry type.
func (t EntryType) String() string {
	switch t {
	case TypeSend:
		return "SEND"
	case TypeRecv:
		return "RECV"
	case TypeAck:
		return "ACK"
	case TypeNondet:
		return "NONDET"
	case TypeIRQ:
		return "IRQ"
	case TypeSnapshot:
		return "SNAPSHOT"
	case TypeAnnotation:
		return "ANNOTATION"
	default:
		return fmt.Sprintf("EntryType(%d)", uint8(t))
	}
}

// HashSize is the size of chain hashes.
const HashSize = sha256.Size

// Hash is a chain or content hash.
type Hash [HashSize]byte

// HashContent returns H(c), the content digest folded into the chain.
func HashContent(c []byte) Hash { return sha256.Sum256(c) }

// ChainHash computes h_i = H(h_{i-1} || s_i || t_i || H(c_i)).
func ChainHash(prev Hash, seq uint64, typ EntryType, contentHash Hash) Hash {
	var buf [HashSize + 8 + 1 + HashSize]byte
	copy(buf[:HashSize], prev[:])
	binary.BigEndian.PutUint64(buf[HashSize:], seq)
	buf[HashSize+8] = byte(typ)
	copy(buf[HashSize+9:], contentHash[:])
	return sha256.Sum256(buf[:])
}

// Entry is one element e_i of the log.
type Entry struct {
	Seq     uint64
	Type    EntryType
	Content []byte
	Hash    Hash // h_i, the chain hash including this entry
}

// WireSize returns the serialized size of the entry in bytes. Chain hashes
// are recomputable and therefore not stored, but each entry pays a small
// framing overhead; this is what log-growth measurements count.
func (e *Entry) WireSize() int { return 8 + 1 + 4 + len(e.Content) }

// Marshal appends the serialized entry to dst and returns the result.
func (e *Entry) Marshal(dst []byte) []byte {
	var hdr [13]byte
	binary.BigEndian.PutUint64(hdr[0:], e.Seq)
	hdr[8] = byte(e.Type)
	binary.BigEndian.PutUint32(hdr[9:], uint32(len(e.Content)))
	dst = append(dst, hdr[:]...)
	return append(dst, e.Content...)
}

// UnmarshalEntry decodes one entry from b, returning it and the remaining
// bytes. The chain hash is left zero; callers recompute it via Rechain.
func UnmarshalEntry(b []byte) (Entry, []byte, error) {
	if len(b) < 13 {
		return Entry{}, nil, errors.New("tevlog: truncated entry header")
	}
	e := Entry{
		Seq:  binary.BigEndian.Uint64(b[0:]),
		Type: EntryType(b[8]),
	}
	n := binary.BigEndian.Uint32(b[9:])
	b = b[13:]
	if uint32(len(b)) < n {
		return Entry{}, nil, fmt.Errorf("tevlog: truncated entry content: want %d bytes, have %d", n, len(b))
	}
	e.Content = append([]byte(nil), b[:n]...)
	return e, b[n:], nil
}

// Authenticator is a_i = (node, s_i, h_i, σ(s_i || h_i)): a signed
// commitment to the log prefix ending at entry s_i. Attached to every
// outgoing message, collected by recipients, and checked during audits.
type Authenticator struct {
	Node sig.NodeID
	Seq  uint64
	Hash Hash
	Sig  []byte
}

// authBody returns the byte string an authenticator signature covers.
func authBody(seq uint64, h Hash) []byte {
	var buf [8 + HashSize]byte
	binary.BigEndian.PutUint64(buf[:8], seq)
	copy(buf[8:], h[:])
	return buf[:]
}

// Verify checks the authenticator's signature against the key store.
func (a Authenticator) Verify(ks *sig.KeyStore) bool {
	return ks.Verify(a.Node, authBody(a.Seq, a.Hash), a.Sig)
}

// WireSize returns the transmitted size of the authenticator in bytes.
func (a Authenticator) WireSize() int {
	return len(a.Node) + 8 + HashSize + len(a.Sig)
}

// ErrForkDetected reports two valid authenticators from the same node with
// the same sequence number but different hashes — proof that the node
// forked its log.
var ErrForkDetected = errors.New("tevlog: fork detected: conflicting authenticators for same sequence number")

// CheckFork examines two authenticators from the same node. If they commit
// to different hashes for the same sequence number, the pair is evidence of
// a forked log and ErrForkDetected is returned.
func CheckFork(a, b Authenticator) error {
	if a.Node == b.Node && a.Seq == b.Seq && a.Hash != b.Hash {
		return ErrForkDetected
	}
	return nil
}

// chainer streams the two hashes of one chain link — H(c_i) and
// h_i = H(h_{i-1} || s_i || t_i || H(c_i)) — through a single reusable
// SHA-256 state, producing bytes identical to HashContent+ChainHash while
// avoiding the intermediate buffer assembly and per-entry digest
// allocations on the append and rechain hot paths.
type chainer struct {
	h   hash.Hash
	sum Hash // scratch for the content digest
}

func (c *chainer) init() {
	if c.h == nil {
		c.h = sha256.New()
	}
}

// link writes h_i into *out given the previous chain hash and the entry
// fields.
func (c *chainer) link(prev Hash, seq uint64, typ EntryType, content []byte, out *Hash) {
	c.init()
	c.h.Reset()
	c.h.Write(content)
	c.h.Sum(c.sum[:0])
	var hdr [9]byte
	binary.BigEndian.PutUint64(hdr[0:8], seq)
	hdr[8] = byte(typ)
	c.h.Reset()
	c.h.Write(prev[:])
	c.h.Write(hdr[:])
	c.h.Write(c.sum[:])
	c.h.Sum(out[:0])
}

// Log is the append-only tamper-evident log a machine maintains.
type Log struct {
	node    sig.NodeID
	signer  sig.Signer
	entries []Entry
	// baseSeq is the sequence number of entries[0]; a log always starts at 1.
	wireBytes int
	// ch is the reusable hash state for the append hot path.
	ch chainer
}

// New returns an empty log for node, signing authenticators with signer.
func New(signer sig.Signer) *Log {
	return &Log{node: signer.ID(), signer: signer}
}

// Node returns the machine the log belongs to.
func (l *Log) Node() sig.NodeID { return l.node }

// Len returns the number of entries.
func (l *Log) Len() int { return len(l.entries) }

// WireBytes returns the total serialized size of the log so far. This is
// the quantity Figures 3 and 4 measure.
func (l *Log) WireBytes() int { return l.wireBytes }

// LastHash returns the chain hash of the most recent entry, or the zero
// hash for an empty log (h_0 := 0, §4.3).
func (l *Log) LastHash() Hash {
	if len(l.entries) == 0 {
		return Hash{}
	}
	return l.entries[len(l.entries)-1].Hash
}

// NextSeq returns the sequence number the next appended entry will get.
func (l *Log) NextSeq() uint64 { return uint64(len(l.entries)) + 1 }

// Append adds an entry of the given type and returns it. Sequence numbers
// start at 1 and increase by one per entry.
func (l *Log) Append(typ EntryType, content []byte) Entry {
	e := Entry{
		Seq:     uint64(len(l.entries)) + 1,
		Type:    typ,
		Content: content,
	}
	l.ch.link(l.LastHash(), e.Seq, e.Type, content, &e.Hash)
	l.entries = append(l.entries, e)
	l.wireBytes += e.WireSize()
	return e
}

// Entry returns the entry with sequence number seq.
func (l *Log) Entry(seq uint64) (Entry, error) {
	if seq < 1 || seq > uint64(len(l.entries)) {
		return Entry{}, fmt.Errorf("tevlog: sequence number %d out of range [1,%d]", seq, len(l.entries))
	}
	return l.entries[seq-1], nil
}

// Authenticator produces the signed commitment a_i for entry seq.
func (l *Log) Authenticator(seq uint64) (Authenticator, error) {
	e, err := l.Entry(seq)
	if err != nil {
		return Authenticator{}, err
	}
	return Authenticator{
		Node: l.node,
		Seq:  e.Seq,
		Hash: e.Hash,
		Sig:  l.signer.Sign(authBody(e.Seq, e.Hash)),
	}, nil
}

// LastAuthenticator signs the current head of the log.
func (l *Log) LastAuthenticator() (Authenticator, error) {
	if len(l.entries) == 0 {
		return Authenticator{}, errors.New("tevlog: empty log has no authenticator")
	}
	return l.Authenticator(uint64(len(l.entries)))
}

// Segment returns entries with sequence numbers in [lo, hi], inclusive —
// the L_ij an auditor downloads (§4.5).
func (l *Log) Segment(lo, hi uint64) ([]Entry, error) {
	if lo < 1 || hi > uint64(len(l.entries)) || lo > hi {
		return nil, fmt.Errorf("tevlog: segment [%d,%d] out of range [1,%d]", lo, hi, len(l.entries))
	}
	out := make([]Entry, hi-lo+1)
	copy(out, l.entries[lo-1:hi])
	return out, nil
}

// All returns a copy of the whole log.
func (l *Log) All() []Entry {
	out := make([]Entry, len(l.entries))
	copy(out, l.entries)
	return out
}

// Entries returns the log's entries without copying. The returned slice is
// a read-only view for internal callers (auditors, experiments): entries
// and their hashes must not be modified, and the view must not be appended
// to. The full slice expression pins capacity so later Appends to the log
// cannot alias into it.
func (l *Log) Entries() []Entry {
	return l.entries[:len(l.entries):len(l.entries)]
}

// SegmentView is Segment without the defensive copy, for read-only
// internal callers (e.g. online auditors polling the log). The same
// read-only contract as Entries applies.
func (l *Log) SegmentView(lo, hi uint64) ([]Entry, error) {
	if lo < 1 || hi > uint64(len(l.entries)) || lo > hi {
		return nil, fmt.Errorf("tevlog: segment [%d,%d] out of range [1,%d]", lo, hi, len(l.entries))
	}
	return l.entries[lo-1 : hi : hi], nil
}

// Tampering errors returned by segment verification.
var (
	// ErrChainBroken reports a segment whose recomputed hash chain does not
	// match its stored hashes (an entry was modified, inserted or removed).
	ErrChainBroken = errors.New("tevlog: hash chain broken")
	// ErrAuthenticatorMismatch reports a segment inconsistent with a
	// previously issued authenticator.
	ErrAuthenticatorMismatch = errors.New("tevlog: segment does not match issued authenticator")
	// ErrBadSignature reports an authenticator whose signature is invalid.
	ErrBadSignature = errors.New("tevlog: authenticator signature invalid")
)

// Rechain recomputes the chain hashes of a segment given the hash of the
// entry immediately preceding it (the zero hash if the segment starts at
// sequence number 1). It returns ErrChainBroken if sequence numbers are not
// consecutive. The input slice is modified in place.
func Rechain(prev Hash, entries []Entry) error {
	var c chainer
	for i := range entries {
		if i > 0 && entries[i].Seq != entries[i-1].Seq+1 {
			return fmt.Errorf("%w: non-consecutive sequence numbers %d, %d",
				ErrChainBroken, entries[i-1].Seq, entries[i].Seq)
		}
		c.link(prev, entries[i].Seq, entries[i].Type, entries[i].Content, &entries[i].Hash)
		prev = entries[i].Hash
	}
	return nil
}

// ChainVerifier is the streaming form of VerifySegment: it consumes a
// segment one entry at a time, maintaining the running chain hash, and
// checks the recomputed chain against the collected authenticators when the
// segment ends. It never owns the entry slice, so a multi-hour log verifies
// in memory proportional to the authenticator set, not the log.
//
// Error semantics are identical to VerifySegment's: chain breaks surface
// immediately from Add (the first break in entry order, exactly the error a
// batch pass reports), while authenticator checks — which depend on the
// segment's final sequence number — are deferred to Finish and evaluated in
// the order the authenticators were supplied, preserving the batch
// verifier's error precedence (a chain break anywhere outranks a bad
// signature anywhere).
type ChainVerifier struct {
	ks    *sig.KeyStore
	auths []Authenticator
	// bySeq indexes auths by sequence number so each entry touches only its
	// own authenticators.
	bySeq map[uint64][]int
	// authHash records the recomputed chain hash at each authenticator's
	// sequence number, filled as the stream passes it.
	authHash []Hash
	c        chainer
	prev     Hash
	started  bool
	lo, last uint64
	err      error
}

// NewChainVerifier starts verifying a segment whose predecessor has chain
// hash prev (the zero hash for a log audited from boot). Signatures are
// checked against ks.
func NewChainVerifier(prev Hash, auths []Authenticator, ks *sig.KeyStore) *ChainVerifier {
	v := &ChainVerifier{
		ks:       ks,
		auths:    auths,
		bySeq:    make(map[uint64][]int),
		authHash: make([]Hash, len(auths)),
		prev:     prev,
	}
	for i := range auths {
		v.bySeq[auths[i].Seq] = append(v.bySeq[auths[i].Seq], i)
	}
	return v
}

// Add folds the next entry into the chain. It returns ErrChainBroken (with
// detail) as soon as sequence numbers stop being consecutive; the error is
// sticky. The entry is not modified; use Last for its recomputed hash.
func (v *ChainVerifier) Add(e *Entry) error {
	if v.err != nil {
		return v.err
	}
	if v.started && e.Seq != v.last+1 {
		v.err = fmt.Errorf("%w: non-consecutive sequence numbers %d, %d",
			ErrChainBroken, v.last, e.Seq)
		return v.err
	}
	if !v.started {
		v.started = true
		v.lo = e.Seq
	}
	v.c.link(v.prev, e.Seq, e.Type, e.Content, &v.prev)
	v.last = e.Seq
	for _, i := range v.bySeq[e.Seq] {
		v.authHash[i] = v.prev
	}
	return nil
}

// Last returns the chain hash of the most recently added entry (what
// Rechain would have stored in it).
func (v *ChainVerifier) Last() Hash { return v.prev }

// Finish completes verification: every authenticator inside the segment
// must carry a valid signature and match the recomputed chain, and at least
// one must cover the final entry — otherwise the tail of the segment is
// uncommitted and truncating it would go unnoticed. Signatures are checked
// concurrently when several authenticators fall inside the segment.
func (v *ChainVerifier) Finish() error {
	if v.err != nil {
		return v.err
	}
	if !v.started {
		return errors.New("tevlog: empty segment")
	}
	lo, hi := v.lo, v.last
	inRange := func(a *Authenticator) bool { return a.Seq >= lo && a.Seq <= hi }
	sigOK := verifyAuthsParallel(v.auths, inRange, v.ks)
	covered := false
	for i := range v.auths {
		a := &v.auths[i]
		if !inRange(a) {
			continue
		}
		if !sigOK[i] {
			return ErrBadSignature
		}
		if got := v.authHash[i]; got != a.Hash {
			return fmt.Errorf("%w: entry %d has chain hash %x, authenticator commits to %x",
				ErrAuthenticatorMismatch, a.Seq, got[:8], a.Hash[:8])
		}
		if a.Seq == hi {
			covered = true
		}
	}
	if !covered {
		return fmt.Errorf("%w: no authenticator covers segment end %d", ErrAuthenticatorMismatch, hi)
	}
	return nil
}

// VerifySegment checks a downloaded segment against a set of authenticators
// previously collected from the machine (§4.3: "she verifies that the hash
// chain is intact"). prev is the chain hash immediately before the segment.
// Every authenticator whose sequence number falls inside the segment must
// match the recomputed chain; at least one must cover the segment's last
// entry, otherwise the tail of the segment is uncommitted and skipping it
// would go unnoticed. Signatures are checked against ks, concurrently when
// several authenticators fall inside the segment; the segment itself is
// never modified. It is a thin wrapper over ChainVerifier, which performs
// the same checks one entry at a time.
func VerifySegment(prev Hash, entries []Entry, auths []Authenticator, ks *sig.KeyStore) error {
	v := NewChainVerifier(prev, auths, ks)
	for i := range entries {
		if err := v.Add(&entries[i]); err != nil {
			return err
		}
	}
	return v.Finish()
}

// verifyAuthsParallel checks the signatures of every selected authenticator
// on a bounded worker pool and reports per-index validity. The outcome is
// position-indexed, so callers scanning the results in order observe the
// exact error precedence of a serial pass regardless of scheduling.
func verifyAuthsParallel(auths []Authenticator, selected func(*Authenticator) bool, ks *sig.KeyStore) []bool {
	ok := make([]bool, len(auths))
	n := 0
	for i := range auths {
		if selected(&auths[i]) {
			n++
		}
	}
	// Capped like merkle.DefaultWorkers so segment verifications nested
	// inside an already-parallel audit don't oversubscribe the scheduler.
	workers := runtime.GOMAXPROCS(0)
	if workers > 8 {
		workers = 8
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := range auths {
			if selected(&auths[i]) {
				ok[i] = auths[i].Verify(ks)
			}
		}
		return ok
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(auths) {
					return
				}
				if selected(&auths[i]) {
					ok[i] = auths[i].Verify(ks)
				}
			}
		}()
	}
	wg.Wait()
	return ok
}

// MarshalSegment serializes a segment for transfer or storage.
func MarshalSegment(entries []Entry) []byte {
	size := 0
	for i := range entries {
		size += entries[i].WireSize()
	}
	out := make([]byte, 0, size)
	for i := range entries {
		out = entries[i].Marshal(out)
	}
	return out
}

// UnmarshalSegment decodes a serialized segment. Chain hashes are not
// restored; use Rechain.
func UnmarshalSegment(b []byte) ([]Entry, error) {
	var out []Entry
	for len(b) > 0 {
		e, rest, err := UnmarshalEntry(b)
		if err != nil {
			return nil, err
		}
		out = append(out, e)
		b = rest
	}
	return out, nil
}
