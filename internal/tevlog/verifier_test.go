package tevlog

import (
	"errors"
	"testing"
	"testing/quick"
)

// TestChainVerifierMatchesRechain: Last after each Add equals the hash
// Rechain stores for that entry.
func TestChainVerifierMatchesRechain(t *testing.T) {
	s := testSigner(t, "a")
	l := buildLog(s, 25)
	entries := l.All()
	rechained := make([]Entry, len(entries))
	copy(rechained, entries)
	if err := Rechain(Hash{}, rechained); err != nil {
		t.Fatal(err)
	}
	v := NewChainVerifier(Hash{}, nil, testKeys(s))
	for i := range entries {
		if err := v.Add(&entries[i]); err != nil {
			t.Fatalf("entry %d: %v", i, err)
		}
		if v.Last() != rechained[i].Hash {
			t.Fatalf("entry %d: streaming hash differs from Rechain", i)
		}
	}
}

// TestChainVerifierEquivalence: for honest and arbitrarily mutated
// segments, the streaming verifier returns the same verdict — down to the
// error string — as the batch VerifySegment (which wraps it, but this
// drives the two call patterns independently).
func TestChainVerifierEquivalence(t *testing.T) {
	s := testSigner(t, "a")
	ks := testKeys(s)
	l := buildLog(s, 30)
	head, err := l.LastAuthenticator()
	if err != nil {
		t.Fatal(err)
	}
	mid, err := l.Authenticator(17)
	if err != nil {
		t.Fatal(err)
	}
	auths := []Authenticator{mid, head}

	f := func(posRaw uint16, mutation uint8, flip uint8) bool {
		seg := l.All()
		pos := int(posRaw) % (len(seg) - 1)
		switch mutation % 5 {
		case 0: // honest
		case 1: // flip a content byte
			seg[pos].Content = append([]byte(nil), seg[pos].Content...)
			seg[pos].Content[0] ^= flip | 1
		case 2: // drop an entry
			seg = append(seg[:pos:pos], seg[pos+1:]...)
		case 3: // swap neighbours
			seg[pos], seg[pos+1] = seg[pos+1], seg[pos]
		case 4: // truncate
			seg = seg[:pos+1]
		}
		batchErr := VerifySegment(Hash{}, seg, auths, ks)

		v := NewChainVerifier(Hash{}, auths, ks)
		var streamErr error
		for i := range seg {
			if streamErr = v.Add(&seg[i]); streamErr != nil {
				break
			}
		}
		if streamErr == nil {
			streamErr = v.Finish()
		}
		if (batchErr == nil) != (streamErr == nil) {
			return false
		}
		if batchErr != nil && batchErr.Error() != streamErr.Error() {
			t.Logf("batch: %v\nstream: %v", batchErr, streamErr)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestChainVerifierEmptySegment(t *testing.T) {
	s := testSigner(t, "a")
	v := NewChainVerifier(Hash{}, nil, testKeys(s))
	if err := v.Finish(); err == nil {
		t.Fatal("empty segment accepted")
	}
}

func TestChainVerifierStickyError(t *testing.T) {
	s := testSigner(t, "a")
	l := buildLog(s, 5)
	entries := l.All()
	v := NewChainVerifier(Hash{}, nil, testKeys(s))
	if err := v.Add(&entries[0]); err != nil {
		t.Fatal(err)
	}
	if err := v.Add(&entries[3]); !errors.Is(err, ErrChainBroken) {
		t.Fatalf("gap accepted: %v", err)
	}
	if err := v.Add(&entries[1]); !errors.Is(err, ErrChainBroken) {
		t.Fatalf("error not sticky: %v", err)
	}
	if err := v.Finish(); !errors.Is(err, ErrChainBroken) {
		t.Fatalf("Finish lost the chain error: %v", err)
	}
}
