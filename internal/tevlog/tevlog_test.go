package tevlog

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/sig"
)

func testSigner(t *testing.T, id string) sig.Signer {
	t.Helper()
	return sig.MustGenerateRSA(sig.NodeID(id), sig.DefaultKeyBits, "tevlog-test")
}

func testKeys(signers ...sig.Signer) *sig.KeyStore {
	ks := sig.NewKeyStore()
	for _, s := range signers {
		ks.Add(s.Public())
	}
	return ks
}

func buildLog(signer sig.Signer, n int) *Log {
	l := New(signer)
	for i := 0; i < n; i++ {
		typ := TypeNondet
		if i%3 == 0 {
			typ = TypeSend
		}
		l.Append(typ, []byte{byte(i), byte(i >> 8), byte(i * 7)})
	}
	return l
}

func TestAppendAssignsConsecutiveSeqs(t *testing.T) {
	l := buildLog(testSigner(t, "a"), 10)
	for i, e := range l.All() {
		if e.Seq != uint64(i+1) {
			t.Fatalf("entry %d has seq %d", i, e.Seq)
		}
	}
	if l.NextSeq() != 11 {
		t.Fatalf("NextSeq = %d", l.NextSeq())
	}
}

func TestChainHashesLink(t *testing.T) {
	l := buildLog(testSigner(t, "a"), 5)
	entries := l.All()
	prev := Hash{}
	for _, e := range entries {
		want := ChainHash(prev, e.Seq, e.Type, HashContent(e.Content))
		if e.Hash != want {
			t.Fatalf("entry %d hash mismatch", e.Seq)
		}
		prev = e.Hash
	}
}

func TestVerifySegmentHonest(t *testing.T) {
	s := testSigner(t, "a")
	ks := testKeys(s)
	l := buildLog(s, 20)
	head, err := l.LastAuthenticator()
	if err != nil {
		t.Fatal(err)
	}
	mid, err := l.Authenticator(10)
	if err != nil {
		t.Fatal(err)
	}
	seg, err := l.Segment(1, 20)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifySegment(Hash{}, seg, []Authenticator{mid, head}, ks); err != nil {
		t.Fatalf("honest segment rejected: %v", err)
	}
	// A sub-segment ending at the mid authenticator also verifies, given
	// the correct prev hash.
	e5, err := l.Entry(5)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := l.Segment(6, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifySegment(e5.Hash, sub, []Authenticator{mid}, ks); err != nil {
		t.Fatalf("honest sub-segment rejected: %v", err)
	}
}

func TestVerifySegmentRejectsUncoveredTail(t *testing.T) {
	s := testSigner(t, "a")
	ks := testKeys(s)
	l := buildLog(s, 20)
	mid, err := l.Authenticator(10)
	if err != nil {
		t.Fatal(err)
	}
	seg, err := l.Segment(1, 20)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifySegment(Hash{}, seg, []Authenticator{mid}, ks); err == nil {
		t.Fatal("segment with uncommitted tail accepted")
	}
}

// TestPropertyAnyMutationBreaksVerification is the core tamper-evidence
// property: modify, truncate from the middle, reorder or drop any entry and
// verification against a head authenticator must fail.
func TestPropertyAnyMutationBreaksVerification(t *testing.T) {
	s := testSigner(t, "a")
	ks := testKeys(s)
	l := buildLog(s, 30)
	head, err := l.LastAuthenticator()
	if err != nil {
		t.Fatal(err)
	}
	f := func(posRaw uint16, mutation uint8, flip uint8) bool {
		seg := l.All()
		pos := int(posRaw) % (len(seg) - 1)
		switch mutation % 4 {
		case 0: // flip a content byte
			seg[pos].Content = append([]byte(nil), seg[pos].Content...)
			seg[pos].Content[0] ^= flip | 1
		case 1: // drop an entry
			seg = append(seg[:pos], seg[pos+1:]...)
		case 2: // swap neighbours
			seg[pos], seg[pos+1] = seg[pos+1], seg[pos]
		case 3: // change a type
			if seg[pos].Type == TypeSend {
				seg[pos].Type = TypeNondet
			} else {
				seg[pos].Type = TypeSend
			}
		}
		return VerifySegment(Hash{}, seg, []Authenticator{head}, ks) != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAuthenticatorSignature(t *testing.T) {
	s := testSigner(t, "a")
	other := testSigner(t, "b")
	ks := testKeys(s, other)
	l := buildLog(s, 3)
	a, err := l.LastAuthenticator()
	if err != nil {
		t.Fatal(err)
	}
	if !a.Verify(ks) {
		t.Fatal("genuine authenticator rejected")
	}
	forged := a
	forged.Seq++
	if forged.Verify(ks) {
		t.Fatal("forged seq accepted")
	}
	wrongNode := a
	wrongNode.Node = "b"
	if wrongNode.Verify(ks) {
		t.Fatal("authenticator attributed to wrong node accepted")
	}
	unknown := a
	unknown.Node = "nobody"
	if unknown.Verify(ks) {
		t.Fatal("authenticator from unknown principal accepted")
	}
}

func TestCheckFork(t *testing.T) {
	s := testSigner(t, "a")
	l1 := New(s)
	l2 := New(s)
	l1.Append(TypeSend, []byte("x"))
	l2.Append(TypeSend, []byte("y"))
	a1, err := l1.LastAuthenticator()
	if err != nil {
		t.Fatal(err)
	}
	a2, err := l2.LastAuthenticator()
	if err != nil {
		t.Fatal(err)
	}
	if CheckFork(a1, a2) == nil {
		t.Fatal("fork not detected")
	}
	if CheckFork(a1, a1) != nil {
		t.Fatal("identical authenticators flagged as fork")
	}
	b := testSigner(t, "b")
	lb := New(b)
	lb.Append(TypeSend, []byte("z"))
	ab, err := lb.LastAuthenticator()
	if err != nil {
		t.Fatal(err)
	}
	if CheckFork(a1, ab) != nil {
		t.Fatal("different nodes flagged as fork")
	}
}

func TestMarshalSegmentRoundTrip(t *testing.T) {
	l := buildLog(testSigner(t, "a"), 15)
	entries := l.All()
	raw := MarshalSegment(entries)
	back, err := UnmarshalSegment(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(entries) {
		t.Fatalf("got %d entries, want %d", len(back), len(entries))
	}
	if err := Rechain(Hash{}, back); err != nil {
		t.Fatal(err)
	}
	for i := range entries {
		if back[i].Seq != entries[i].Seq || back[i].Type != entries[i].Type ||
			!bytes.Equal(back[i].Content, entries[i].Content) || back[i].Hash != entries[i].Hash {
			t.Fatalf("entry %d differs after round trip", i)
		}
	}
}

func TestUnmarshalTruncated(t *testing.T) {
	l := buildLog(testSigner(t, "a"), 3)
	raw := MarshalSegment(l.All())
	for _, cut := range []int{1, 5, 14, len(raw) - 1} {
		if _, err := UnmarshalSegment(raw[:cut]); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestRechainRejectsGaps(t *testing.T) {
	l := buildLog(testSigner(t, "a"), 10)
	seg := l.All()
	seg = append(seg[:4], seg[5:]...) // gap in sequence numbers
	if err := Rechain(Hash{}, seg); err == nil {
		t.Fatal("gap in sequence numbers accepted")
	}
}

func TestSegmentBounds(t *testing.T) {
	l := buildLog(testSigner(t, "a"), 5)
	for _, bad := range [][2]uint64{{0, 3}, {1, 6}, {4, 2}} {
		if _, err := l.Segment(bad[0], bad[1]); err == nil {
			t.Errorf("segment [%d,%d] accepted", bad[0], bad[1])
		}
	}
	if _, err := l.Entry(0); err == nil {
		t.Error("entry 0 accepted")
	}
	if _, err := l.Entry(6); err == nil {
		t.Error("entry 6 accepted")
	}
}

func TestEmptyLog(t *testing.T) {
	l := New(testSigner(t, "a"))
	if _, err := l.LastAuthenticator(); err == nil {
		t.Fatal("authenticator on empty log accepted")
	}
	if l.LastHash() != (Hash{}) {
		t.Fatal("empty log hash not zero")
	}
	if err := VerifySegment(Hash{}, nil, nil, testKeys()); err == nil {
		t.Fatal("empty segment verified")
	}
}

func TestWireSizeMatchesMarshal(t *testing.T) {
	l := buildLog(testSigner(t, "a"), 8)
	total := 0
	for _, e := range l.All() {
		e := e
		total += e.WireSize()
		if got := len(e.Marshal(nil)); got != e.WireSize() {
			t.Fatalf("WireSize %d != marshaled %d", e.WireSize(), got)
		}
	}
	if total != l.WireBytes() {
		t.Fatalf("WireBytes %d != sum %d", l.WireBytes(), total)
	}
}

func TestEntryTypeStrings(t *testing.T) {
	for typ, want := range map[EntryType]string{
		TypeSend: "SEND", TypeRecv: "RECV", TypeAck: "ACK",
		TypeNondet: "NONDET", TypeIRQ: "IRQ", TypeSnapshot: "SNAPSHOT",
		TypeAnnotation: "ANNOTATION",
	} {
		if typ.String() != want {
			t.Errorf("%d.String() = %q, want %q", typ, typ.String(), want)
		}
	}
}
