// Package metrics provides the small statistical and formatting helpers the
// experiment harness uses: percentiles, rates, and aligned table rendering
// in the style of the paper's figures.
package metrics

import (
	"fmt"
	"sort"
	"strings"
)

// Percentile returns the p-th percentile (0-100) of samples using
// nearest-rank on a sorted copy.
func Percentile(samples []float64, p float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := int(p/100*float64(len(s))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(s) {
		rank = len(s) - 1
	}
	return s[rank]
}

// Median returns the 50th percentile.
func Median(samples []float64) float64 { return Percentile(samples, 50) }

// Mean returns the arithmetic mean.
func Mean(samples []float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	var sum float64
	for _, v := range samples {
		sum += v
	}
	return sum / float64(len(samples))
}

// MBPerMinute converts (bytes, duration ns) to MB/minute.
func MBPerMinute(bytes int, durationNs uint64) float64 {
	if durationNs == 0 {
		return 0
	}
	return float64(bytes) / 1e6 * 60e9 / float64(durationNs)
}

// Kbps converts (bytes, duration ns) to kilobits per second.
func Kbps(bytes int, durationNs uint64) float64 {
	if durationNs == 0 {
		return 0
	}
	return float64(bytes) * 8 / 1e3 * 1e9 / float64(durationNs)
}

// Table renders rows with aligned columns; the first row is the header.
type Table struct {
	Title string
	rows  [][]string
}

// NewTable creates a table with the given header.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, rows: [][]string{header}}
}

// Row appends a row; cells are formatted with %v.
func (t *Table) Row(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, 0)
	for _, row := range t.rows {
		for i, cell := range row {
			if i >= len(widths) {
				widths = append(widths, 0)
			}
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	for r, row := range t.rows {
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
		if r == 0 {
			for i, w := range widths {
				if i > 0 {
					b.WriteString("  ")
				}
				b.WriteString(strings.Repeat("-", w))
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}
