package metrics

// Lightweight operational counters for long-running services (the audit
// coordinator's queue depth, worker liveness, retry/hedge counters). Unlike
// the statistical helpers in this package, these are written on hot paths
// by many goroutines, so they are plain atomics with no labels and no
// export machinery — a Snapshot is a map a caller can print, assert on in
// tests, or fold into a benchmark row.

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can move both ways (queue depth, live workers).
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Registry is a named collection of counters and gauges. The zero value is
// ready to use; lookups allocate on first reference.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
}

// Counter returns (allocating if needed) the named counter.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.counters == nil {
		r.counters = make(map[string]*Counter)
	}
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (allocating if needed) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.gauges == nil {
		r.gauges = make(map[string]*Gauge)
	}
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Value returns the named metric's current value without allocating it:
// 0 for a metric nothing has touched yet. Status lines and tests read
// sparse metric sets (journal counters on a run that never journaled,
// registration counters on a push-configured fleet) and should not
// populate the registry as a side effect of looking.
func (r *Registry) Value(name string) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c := r.counters[name]; c != nil {
		return c.Value()
	}
	if g := r.gauges[name]; g != nil {
		return g.Value()
	}
	return 0
}

// Snapshot returns every metric's current value by name.
func (r *Registry) Snapshot() map[string]int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.counters)+len(r.gauges))
	for name, c := range r.counters {
		out[name] = c.Value()
	}
	for name, g := range r.gauges {
		out[name] = g.Value()
	}
	return out
}

// String renders the snapshot in name order, for logs and status lines.
func (r *Registry) String() string {
	snap := r.Snapshot()
	names := make([]string, 0, len(snap))
	for name := range snap {
		names = append(names, name)
	}
	sort.Strings(names)
	parts := make([]string, 0, len(names))
	for _, name := range names {
		parts = append(parts, fmt.Sprintf("%s=%d", name, snap[name]))
	}
	return strings.Join(parts, " ")
}
