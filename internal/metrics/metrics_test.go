package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestPercentile(t *testing.T) {
	samples := []float64{5, 1, 4, 2, 3}
	if Median(samples) != 3 {
		t.Fatalf("median = %v", Median(samples))
	}
	if Percentile(samples, 0) != 1 || Percentile(samples, 100) != 5 {
		t.Fatal("extremes wrong")
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty should be 0")
	}
	// Input must not be reordered.
	if samples[0] != 5 {
		t.Fatal("input mutated")
	}
}

func TestMean(t *testing.T) {
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("mean wrong")
	}
	if Mean(nil) != 0 {
		t.Fatal("empty mean")
	}
}

func TestRates(t *testing.T) {
	// 60 MB over one minute = 60 MB/min.
	if got := MBPerMinute(60_000_000, 60_000_000_000); got != 60 {
		t.Fatalf("MBPerMinute = %v", got)
	}
	// 1000 bytes over 1 second = 8 kbps.
	if got := Kbps(1000, 1_000_000_000); got != 8 {
		t.Fatalf("Kbps = %v", got)
	}
	if MBPerMinute(1, 0) != 0 || Kbps(1, 0) != 0 {
		t.Fatal("zero duration should be 0")
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("demo", "name", "value")
	tab.Row("alpha", 1)
	tab.Row("b", 12.345)
	out := tab.String()
	if !strings.Contains(out, "== demo ==") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "12.35") {
		t.Fatalf("missing cells:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, rule, two rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	// Columns align: every data line at least as wide as the header.
	if len(lines[3]) < len("name") {
		t.Fatal("row narrower than header")
	}
}

func TestRegistry(t *testing.T) {
	var r Registry
	r.Counter("retries").Add(3)
	r.Counter("retries").Inc()
	r.Gauge("queue_depth").Set(7)
	r.Gauge("queue_depth").Add(-2)
	snap := r.Snapshot()
	if snap["retries"] != 4 {
		t.Fatalf("retries = %d, want 4", snap["retries"])
	}
	if snap["queue_depth"] != 5 {
		t.Fatalf("queue_depth = %d, want 5", snap["queue_depth"])
	}
	if got := r.String(); got != "queue_depth=5 retries=4" {
		t.Fatalf("String() = %q", got)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	var r Registry
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("hits").Inc()
				r.Gauge("depth").Add(1)
				r.Gauge("depth").Add(-1)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("hits").Value(); got != 8000 {
		t.Fatalf("hits = %d, want 8000", got)
	}
	if got := r.Gauge("depth").Value(); got != 0 {
		t.Fatalf("depth = %d, want 0", got)
	}
}
