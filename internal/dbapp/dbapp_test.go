package dbapp

import (
	"testing"

	"repro/internal/audit"
	"repro/internal/avmm"
	"repro/internal/tevlog"
	"repro/internal/wire"
)

func TestWorkloadRunsAndAuditsClean(t *testing.T) {
	s, err := NewScenario(ScenarioConfig{Mode: avmm.ModeAVMMNoSig, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(20_000_000_000) // 20 virtual seconds
	if s.Server.Machine.FaultInfo != nil {
		t.Fatalf("server faulted: %v", s.Server.Machine.FaultInfo)
	}
	if s.Client.Machine.FaultInfo != nil {
		t.Fatalf("client faulted: %v", s.Client.Machine.FaultInfo)
	}
	// Traffic must have flowed both ways.
	if s.Net.NodeStats(1).FramesSent == 0 || s.Net.NodeStats(0).FramesSent == 0 {
		t.Fatal("no database traffic")
	}
	auths, err := s.ServerAuths()
	if err != nil {
		t.Fatal(err)
	}
	res := s.Auditor().AuditFull("db-server", 0, s.Server.Log.All(), auths)
	if !res.Passed {
		t.Fatalf("honest db server failed audit: %v", res.Fault)
	}
	if res.Replay.SendsMatched == 0 {
		t.Error("replay matched no server responses")
	}
}

func TestSpotCheckChunks(t *testing.T) {
	s, err := NewScenario(ScenarioConfig{
		Mode: avmm.ModeAVMMNoSig, Seed: 9, SnapshotEveryNs: 5_000_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(30_000_000_000) // 30 virtual seconds → ~6 snapshots
	if s.Server.Snaps.Count() < 4 {
		t.Fatalf("only %d snapshots; want at least 4", s.Server.Snaps.Count())
	}
	entries := s.Server.Log.All()
	points, err := audit.FindSnapshots(entries)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != s.Server.Snaps.Count() {
		t.Fatalf("found %d snapshot entries, store has %d", len(points), s.Server.Snaps.Count())
	}
	auths, err := s.ServerAuths()
	if err != nil {
		t.Fatal(err)
	}
	a := s.Auditor()

	// Audit the 1-chunk starting at each interior snapshot.
	for i := 1; i+1 < len(points); i++ {
		start := points[i]
		end := points[i+1]
		restored, err := s.Server.Snaps.Materialize(int(start.SnapIdx))
		if err != nil {
			t.Fatal(err)
		}
		chunk := entries[start.EntryIndex+1 : end.EntryIndex+1]
		res := a.AuditChunk(audit.ChunkRequest{
			Node: "db-server", NodeIdx: 0,
			Start: restored, StartRoot: start.Root, PrevHash: start.EntryHash,
			Entries: chunk, Auths: auths,
		})
		if !res.Passed {
			t.Fatalf("chunk %d failed: %v", i, res.Fault)
		}
		if res.Replay.SnapshotsVerified == 0 {
			t.Errorf("chunk %d verified no intermediate snapshots", i)
		}
	}
}

func TestSpotCheckCatchesTamperedState(t *testing.T) {
	s, err := NewScenario(ScenarioConfig{
		Mode: avmm.ModeAVMMNoSig, Seed: 9, SnapshotEveryNs: 5_000_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(20_000_000_000)
	entries := s.Server.Log.All()
	points, err := audit.FindSnapshots(entries)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) < 3 {
		t.Fatalf("need 3 snapshots, have %d", len(points))
	}
	auths, err := s.ServerAuths()
	if err != nil {
		t.Fatal(err)
	}
	start := points[1]
	end := points[2]
	restored, err := s.Server.Snaps.Materialize(int(start.SnapIdx))
	if err != nil {
		t.Fatal(err)
	}
	// The machine hands the auditor a snapshot with one flipped byte (e.g.
	// a doctored row). Verification against the committed root must fail.
	restored.Mem[40960] ^= 0xFF
	res := s.Auditor().AuditChunk(audit.ChunkRequest{
		Node: "db-server", NodeIdx: 0,
		Start: restored, StartRoot: start.Root, PrevHash: start.EntryHash,
		Entries: entries[start.EntryIndex+1 : end.EntryIndex+1], Auths: auths,
	})
	if res.Passed {
		t.Fatal("tampered snapshot passed spot check")
	}
	if res.Fault.Check != audit.CheckSnapshot {
		t.Errorf("fault check = %v, want snapshot", res.Fault.Check)
	}
}

func TestSnapshotEntriesCarryIncreasingLandmarks(t *testing.T) {
	s, err := NewScenario(ScenarioConfig{
		Mode: avmm.ModeAVMMNoSig, Seed: 2, SnapshotEveryNs: 3_000_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(15_000_000_000)
	var last uint64
	for _, e := range s.Server.Log.All() {
		if e.Type != tevlog.TypeSnapshot {
			continue
		}
		ev, err := wire.ParseEvent(e.Content)
		if err != nil {
			t.Fatal(err)
		}
		if ev.Landmark.ICount < last {
			t.Fatal("snapshot landmarks not monotonic")
		}
		last = ev.Landmark.ICount
	}
	if last == 0 {
		t.Fatal("no snapshot entries found")
	}
}
