// Package dbapp implements "minisql", the client/server database workload
// of the paper's spot-checking experiment (§6.12): a table server in one
// AVM and a benchmark client in another, run for a long period with
// periodic snapshots so that an auditor can check arbitrary k-chunks of the
// log. It stands in for MySQL 5.0.51 + sql-bench.
package dbapp

import (
	"fmt"

	"repro/internal/audit"
	"repro/internal/avmm"
	"repro/internal/lang"
	"repro/internal/netsim"
	"repro/internal/sig"
	"repro/internal/tevlog"
	"repro/internal/vm"
)

// langCompile compiles a guest with the database-sized memory image.
func langCompile(name, src string) (*vm.Image, error) {
	return lang.Compile(name, src, lang.Options{MemSize: 256 * 1024})
}

const ports = `
const CLOCK_LO = 0x01;
const RNG = 0x03;
const NET_RX_STATUS = 0x20;
const NET_RX_LEN = 0x21;
const NET_RX_FROM = 0x22;
const NET_RX_BYTE = 0x23;
const NET_RX_DONE = 0x24;
const NET_TX_BYTE = 0x28;
const NET_TX_COMMIT = 0x29;
const TIMER_PERIOD = 0x40;
const DEBUG = 0x60;
`

// serverSource is the minisql server: an open-addressing hash table of
// (key, value) rows, with insert/select/update/delete operations over the
// network. Row storage dirties memory pages progressively, which is what
// gives the incremental snapshots of §6.12 their varying sizes.
const serverSource = ports + `
const SLOTS = 4096;
const SERVER = 0;

var keys[4096];
var vals[4096];
var used[4096];
var rows = 0;
var ops = 0;

interrupt(1) func on_net() { }

func slot_for(k) {
	var h = (k * 2654435761) % SLOTS;
	var probes = 0;
	while (probes < SLOTS) {
		if (used[h] == 0) { return h; }
		if (used[h] == 1 && keys[h] == k) { return h; }
		h = (h + 1) % SLOTS;
		probes = probes + 1;
	}
	return SLOTS;
}

func reply(to, status, val) {
	out(NET_TX_BYTE, 'R');
	out(NET_TX_BYTE, status);
	out(NET_TX_BYTE, val & 0xFF);
	out(NET_TX_BYTE, (val >> 8) & 0xFF);
	out(NET_TX_BYTE, (val >> 16) & 0xFF);
	out(NET_TX_BYTE, (val >> 24) & 0xFF);
	out(NET_TX_COMMIT, to);
}

func handle() {
	var n = in(NET_RX_LEN);
	var from = in(NET_RX_FROM);
	var op = in(NET_RX_BYTE);
	var k = in(NET_RX_BYTE) + (in(NET_RX_BYTE) << 8);
	var v = in(NET_RX_BYTE) + (in(NET_RX_BYTE) << 8) + (in(NET_RX_BYTE) << 16) + (in(NET_RX_BYTE) << 24);
	out(NET_RX_DONE, 0);
	ops = ops + 1;
	var s = slot_for(k);
	if (s == SLOTS) { reply(from, 2, 0); return; }
	if (op == 'I') {
		if (used[s] == 0) { rows = rows + 1; }
		used[s] = 1;
		keys[s] = k;
		vals[s] = v;
		reply(from, 0, rows);
	}
	if (op == 'Q') {
		if (used[s] == 1) { reply(from, 0, vals[s]); }
		else { reply(from, 1, 0); }
	}
	if (op == 'U') {
		if (used[s] == 1) { vals[s] = vals[s] + v; reply(from, 0, vals[s]); }
		else { reply(from, 1, 0); }
	}
	if (op == 'D') {
		if (used[s] == 1) { used[s] = 2; rows = rows - 1; reply(from, 0, 0); }
		else { reply(from, 1, 0); }
	}
}

func main() {
	sti();
	while (1) {
		while (in(NET_RX_STATUS) > 0) { handle(); }
		wfi();
	}
}
`

// clientSource is the sql-bench-style driver: batches of mixed operations
// on a seeded key distribution, paced by the timer.
const clientSource = ports + `
const SERVER = 0;
const OPS_PER_TICK = 4;
const KEYRANGE = 3000;

var sent = 0;
var replies = 0;
var okc = 0;
var tick = 0;
var last_tick = 0;

interrupt(0) func on_tick() { tick = tick + 1; }
interrupt(1) func on_net() { }

func send_op(op, k, v) {
	out(NET_TX_BYTE, op);
	out(NET_TX_BYTE, k & 0xFF);
	out(NET_TX_BYTE, (k >> 8) & 0xFF);
	out(NET_TX_BYTE, v & 0xFF);
	out(NET_TX_BYTE, (v >> 8) & 0xFF);
	out(NET_TX_BYTE, (v >> 16) & 0xFF);
	out(NET_TX_BYTE, (v >> 24) & 0xFF);
	out(NET_TX_COMMIT, SERVER);
	sent = sent + 1;
}

func drain() {
	while (in(NET_RX_STATUS) > 0) {
		var n = in(NET_RX_LEN);
		var t = in(NET_RX_BYTE);
		var status = in(NET_RX_BYTE);
		out(NET_RX_DONE, 0);
		replies = replies + 1;
		if (status == 0) { okc = okc + 1; }
	}
}

func do_batch() {
	var i = 0;
	while (i < OPS_PER_TICK) {
		var r = in(RNG);
		var k = r % KEYRANGE;
		var kind = (r >> 16) % 10;
		if (kind < 5) { send_op('I', k, r & 0xFFFF); }
		else {
			if (kind < 7) { send_op('Q', k, 0); }
			else {
				if (kind < 9) { send_op('U', k, 1); }
				else { send_op('D', k, 0); }
			}
		}
		i = i + 1;
	}
}

func main() {
	out(TIMER_PERIOD, 20000);
	sti();
	while (1) {
		drain();
		if (tick != last_tick) { last_tick = tick; do_batch(); }
		wfi();
	}
}
`

// ScenarioConfig sets up the minisql workload.
type ScenarioConfig struct {
	Mode            avmm.Mode
	Cost            avmm.CostModel
	Seed            uint64
	SnapshotEveryNs uint64
	KeySeed         string
	// FakeSignatures substitutes RSA-sized keyed digests for real RSA (see
	// game.ScenarioConfig).
	FakeSignatures bool
}

// Scenario is a running minisql deployment: server at node 0, client at
// node 1.
type Scenario struct {
	Cfg    ScenarioConfig
	Net    *netsim.Network
	World  *avmm.World
	Server *avmm.Monitor
	Client *avmm.Monitor
	Keys   *sig.KeyStore
	imgs   map[sig.NodeID]*vm.Image
}

// NewScenario compiles the guests and boots the two machines.
func NewScenario(cfg ScenarioConfig) (*Scenario, error) {
	if cfg.KeySeed == "" {
		cfg.KeySeed = "minisql"
	}
	serverImg, err := BuildServer()
	if err != nil {
		return nil, err
	}
	clientImg, err := BuildClient()
	if err != nil {
		return nil, err
	}
	s := &Scenario{
		Cfg:  cfg,
		Net:  netsim.New(netsim.Config{BaseLatencyNs: 96_000, Seed: cfg.Seed + 1}),
		Keys: sig.NewKeyStore(),
		imgs: map[sig.NodeID]*vm.Image{"db-server": serverImg, "db-client": clientImg},
	}
	s.World = avmm.NewWorld(s.Net, s.Keys)
	signer := func(id sig.NodeID) sig.Signer {
		if cfg.Mode.Signs() {
			if cfg.FakeSignatures {
				return sig.SizedSigner{Node: id, Size: sig.PaperSigBytes}
			}
			return sig.MustGenerateRSA(id, sig.DefaultKeyBits, cfg.KeySeed)
		}
		return sig.NullSigner{Node: id}
	}
	s.Server, err = avmm.NewMonitor(avmm.Config{
		Node: "db-server", Index: 0, Mode: cfg.Mode, Cost: cfg.Cost,
		Signer: signer("db-server"), Keys: s.Keys, Image: serverImg, Net: s.Net,
		RNGSeed: cfg.Seed + 500, SnapshotEveryNs: cfg.SnapshotEveryNs,
	})
	if err != nil {
		return nil, err
	}
	s.Client, err = avmm.NewMonitor(avmm.Config{
		Node: "db-client", Index: 1, Mode: cfg.Mode, Cost: cfg.Cost,
		Signer: signer("db-client"), Keys: s.Keys, Image: clientImg, Net: s.Net,
		RNGSeed: cfg.Seed + 501,
	})
	if err != nil {
		return nil, err
	}
	if err := s.World.Add(s.Server); err != nil {
		return nil, err
	}
	if err := s.World.Add(s.Client); err != nil {
		return nil, err
	}
	return s, nil
}

// BuildServer compiles the minisql server image.
func BuildServer() (*vm.Image, error) {
	img, err := langCompile("minisql-server", serverSource)
	if err != nil {
		return nil, fmt.Errorf("dbapp: %w", err)
	}
	return img, nil
}

// BuildClient compiles the bench client image.
func BuildClient() (*vm.Image, error) {
	img, err := langCompile("minisql-client", clientSource)
	if err != nil {
		return nil, fmt.Errorf("dbapp: %w", err)
	}
	return img, nil
}

// Run advances the deployment to the given virtual time.
func (s *Scenario) Run(untilNs uint64) { s.World.Run(untilNs) }

// ServerAuths collects the authenticators the client holds for the server,
// the server's snapshot commitments, and its head commitment.
func (s *Scenario) ServerAuths() ([]tevlog.Authenticator, error) {
	auths := s.Client.AuthenticatorsFor("db-server")
	auths = append(auths, s.Server.SnapshotAuths()...)
	if s.Server.Log.Len() > 0 {
		head, err := s.Server.Log.LastAuthenticator()
		if err != nil {
			return nil, err
		}
		auths = append(auths, head)
	}
	return auths, nil
}

// Auditor returns an auditor configured for the server.
func (s *Scenario) Auditor() *audit.Auditor {
	img, err := BuildServer()
	if err != nil {
		panic(err) // the server image compiled once already; cannot fail
	}
	return &audit.Auditor{
		Keys: s.Keys, RefImage: img, RNGSeed: s.Cfg.Seed + 500,
		TamperEvident: s.Cfg.Mode.TamperEvident(), VerifySignatures: s.Cfg.Mode.Signs(),
	}
}
