package avmm

import (
	"fmt"
	"sort"

	"repro/internal/netsim"
	"repro/internal/sig"
	"repro/internal/snapshot"
	"repro/internal/tevlog"
	"repro/internal/vm"
	"repro/internal/wire"
)

// EntryClass buckets log entries for the composition analysis of Fig. 4.
type EntryClass int

// Log entry classes.
const (
	// ClassTimeTracker: clock reads and interrupt landmarks — the replay
	// timing information that dominates the log (~59% in the paper).
	ClassTimeTracker EntryClass = iota
	// ClassMAC: network packet payloads as seen by the virtual NIC (~14%).
	ClassMAC
	// ClassOther: everything else replay needs (input events, snapshots).
	ClassOther
	// ClassTamper: entries that exist only for tamper evidence (SEND, RECV,
	// ACK records with signatures) — the delta between the AVMM log and an
	// equivalent VMware log (Fig. 3).
	ClassTamper
	numClasses
)

var classNames = [...]string{"TimeTracker", "MAC", "Other", "TamperEvident"}

// String returns the class name used in Fig. 4.
func (c EntryClass) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return "unknown"
}

// Config assembles a monitor.
type Config struct {
	// Node is the machine's principal identity.
	Node sig.NodeID
	// Index is the machine's network address.
	Index int
	// Mode selects the evaluation configuration.
	Mode Mode
	// Cost is the virtual-time cost model; zero value disables charging.
	Cost CostModel
	// Signer signs authenticators and acknowledgments.
	Signer sig.Signer
	// Keys verifies peers' signatures.
	Keys *sig.KeyStore
	// Image is the guest to boot.
	Image *vm.Image
	// Net is the network to attach to.
	Net *netsim.Network
	// RNGSeed seeds the guest-visible RNG device. It is part of the
	// reference configuration an auditor must know.
	RNGSeed uint64
	// NsPerInstr overrides the machine's virtual CPU speed (0 = default).
	NsPerInstr uint64
	// SnapshotEveryNs takes periodic snapshots when > 0.
	SnapshotEveryNs uint64
	// SnapshotMaxDirtyBytes, when > 0 (and SnapshotEveryNs > 0), takes a
	// snapshot early once the guest has dirtied at least this many bytes of
	// memory since the last one. A write-heavy phase then snapshots more
	// often, bounding the size of any one snapshot's dirty-page increment —
	// and with it the delta-shipped audit job built from it — by
	// construction.
	SnapshotMaxDirtyBytes uint64
	// SnapshotMaxInstr, when > 0 (and SnapshotEveryNs > 0), takes a
	// snapshot early once the guest has retired at least this many
	// instructions since the last one, bounding the replay work of any one
	// audit epoch.
	SnapshotMaxInstr uint64
	// ClockDelayOpt enables the §6.5 consecutive-clock-read delay
	// optimization.
	ClockDelayOpt bool
	// RetransmitNs is the ack timeout before retransmission (default 250ms).
	RetransmitNs uint64
	// SlowdownPerInstrNs artificially slows the guest (the §6.11 trick that
	// lets online auditors keep up).
	SlowdownPerInstrNs uint64
}

type pendingMsg struct {
	msgID      uint64
	dest       int
	frameBytes []byte
	wireBytes  int
	lastSentNs uint64
	attempts   int
}

// Monitor is the accountable virtual machine monitor for one machine.
type Monitor struct {
	cfg     Config
	Machine *vm.Machine
	Devs    *vm.DeviceSet
	Log     *tevlog.Log
	Snaps   *snapshot.Store

	outbox    map[uint64]*pendingMsg
	seenAcks  map[string][]byte // node/msgID → marshaled ack frame, for duplicate data frames
	recvSeen  map[string]bool   // node/msgID → already received
	PeerAuths map[sig.NodeID][]tevlog.Authenticator
	snapAuths []tevlog.Authenticator

	classBytes        [numClasses]int
	lastClockNs       uint64
	clockStreak       int
	lastSnapshotNs    uint64
	lastSnapshotInstr uint64
	perInstrNs        uint64

	// pendingInj holds packets whose daemon-side processing delay has not
	// yet elapsed; they are injected into the AVM when it does.
	pendingInj []delayedInjection

	// suspended marks peers this node refuses traffic with until they
	// answer an outstanding challenge (§4.6); unresponsive is a test hook
	// modelling a machine that will not answer.
	suspended    map[int]bool
	unresponsive bool

	// Counters for the evaluation.
	Retransmits   int
	BadFrames     int
	DroppedFrames int
	// AdaptiveSnapshots counts snapshots triggered by the dirty-volume or
	// instruction-budget thresholds rather than the periodic cadence.
	AdaptiveSnapshots int
	// GuestOverheadNs is monitor work on the guest's execution path
	// (interposition, recording): it slows the AVM.
	GuestOverheadNs uint64
	// DaemonBusyNs is work done by the logging daemon on its own
	// hyperthread (§6.1: hashing, signing, verification, pipes): it does
	// not slow the AVM, but it delays packets and occupies HT0 (Fig. 6).
	DaemonBusyNs uint64
}

type delayedInjection struct {
	dueNs   uint64
	srcIdx  uint32
	payload []byte
	recvSeq uint64
}

// NewMonitor boots the image under the configured mode.
func NewMonitor(cfg Config) (*Monitor, error) {
	if cfg.Image == nil {
		return nil, fmt.Errorf("avmm: config for %q has no image", cfg.Node)
	}
	if cfg.RetransmitNs == 0 {
		cfg.RetransmitNs = 250_000_000
	}
	mon := &Monitor{
		cfg:       cfg,
		outbox:    make(map[uint64]*pendingMsg),
		seenAcks:  make(map[string][]byte),
		recvSeen:  make(map[string]bool),
		PeerAuths: make(map[sig.NodeID][]tevlog.Authenticator),
	}
	mon.Devs = vm.NewDeviceSet(cfg.RNGSeed)
	m, err := cfg.Image.Boot(mon.Devs)
	if err != nil {
		return nil, fmt.Errorf("avmm: booting %q: %w", cfg.Node, err)
	}
	mon.Machine = m
	if cfg.NsPerInstr != 0 {
		m.NsPerInstr = cfg.NsPerInstr
	}
	if cfg.Mode.Virtualized() {
		m.Bus = mon // interpose on the device bus
	}
	mon.Devs.SendFunc = mon.guestSend
	if cfg.Signer == nil {
		mon.cfg.Signer = sig.NullSigner{Node: cfg.Node}
	}
	mon.Log = tevlog.New(mon.cfg.Signer)
	mon.Snaps = snapshot.NewStore(len(m.Mem))
	mon.perInstrNs = 0
	if cfg.Mode.Virtualized() {
		mon.perInstrNs += cfg.Cost.VirtPerInstrNs
	}
	if cfg.Mode.Records() {
		mon.perInstrNs += cfg.Cost.RecordPerInstrNs
	}
	mon.perInstrNs += cfg.SlowdownPerInstrNs
	return mon, nil
}

// Node returns the monitor's principal.
func (mon *Monitor) Node() sig.NodeID { return mon.cfg.Node }

// Index returns the monitor's network address.
func (mon *Monitor) Index() int { return mon.cfg.Index }

// Mode returns the evaluation configuration.
func (mon *Monitor) Mode() Mode { return mon.cfg.Mode }

// ClassBytes returns the logged bytes in the given class.
func (mon *Monitor) ClassBytes(c EntryClass) int { return mon.classBytes[c] }

// TotalLogBytes returns the AVMM log size.
func (mon *Monitor) TotalLogBytes() int { return mon.Log.WireBytes() }

// VMwareEquivalentBytes returns the size of an equivalent plain replay log:
// everything except the tamper-evidence entries (Fig. 3's second curve).
func (mon *Monitor) VMwareEquivalentBytes() int {
	return mon.classBytes[ClassTimeTracker] + mon.classBytes[ClassMAC] + mon.classBytes[ClassOther]
}

// charge adds guest-path monitor overhead to the machine's virtual clock.
func (mon *Monitor) charge(ns uint64) {
	if ns == 0 {
		return
	}
	mon.Machine.ChargeNs(ns)
	mon.GuestOverheadNs += ns
}

// daemonCharge accounts work performed on the logging daemon's hyperthread;
// the guest keeps running (§6.1).
func (mon *Monitor) daemonCharge(ns uint64) { mon.DaemonBusyNs += ns }

// append logs an entry, attributes its bytes to a class, and accounts chain
// hashing on the daemon when the log is tamper-evident.
func (mon *Monitor) append(typ tevlog.EntryType, content []byte, class EntryClass) tevlog.Entry {
	e := mon.Log.Append(typ, content)
	mon.classBytes[class] += e.WireSize()
	if mon.cfg.Mode.TamperEvident() {
		mon.daemonCharge(uint64(e.WireSize()) * mon.cfg.Cost.HashPerByteNs)
	}
	return e
}

// --- device bus interposition ---

// In implements vm.IOBus: forward to the devices, logging nondeterministic
// values. With packet and input arrivals logged as injection events, the
// only synchronous nondeterministic inputs left are clock reads — the
// TimeTracker-dominant pattern of §6.4.
func (mon *Monitor) In(m *vm.Machine, port uint32) uint32 {
	if port == vm.PortClockLo && mon.cfg.ClockDelayOpt {
		mon.applyClockDelay(m)
	}
	v := mon.Devs.In(m, port)
	if mon.cfg.Mode.Records() && (port == vm.PortClockLo || port == vm.PortClockHi) {
		content := (&wire.NondetContent{Port: port, Value: uint64(v)}).Marshal()
		mon.append(tevlog.TypeNondet, content, ClassTimeTracker)
		mon.charge(mon.cfg.Cost.NondetLogNs)
	}
	return v
}

// Out implements vm.IOBus.
func (mon *Monitor) Out(m *vm.Machine, port uint32, val uint32) {
	mon.Devs.Out(m, port, val)
}

// applyClockDelay implements the §6.5 optimization: the n-th consecutive
// clock read within a small window of the previous one is delayed by
// 2^(n-2) × baseWait, capped at 5 ms, throttling busy-wait loops that would
// otherwise flood the log with TimeTracker entries. The paper uses a 5 µs
// window and 50 µs base delay on real hardware; both scale with the virtual
// CPU's instruction time here so that "consecutive" means the same thing —
// a handful of loop iterations — at any simulated clock rate.
func (mon *Monitor) applyClockDelay(m *vm.Machine) {
	window := 30 * m.NsPerInstr
	if window < 5_000 {
		window = 5_000
	}
	baseWait := 2 * window
	// Cap the delay at 1 ms rather than the paper's 5 ms: our virtual
	// frame budgets are a few ms, and a 5 ms sleep at the end of a busy-
	// wait would overshoot the frame deadline and cost more fps than the
	// paper observed (≈3%%).
	const maxWait = 1_000_000
	now := m.VTimeNs()
	if now-mon.lastClockNs <= window {
		mon.clockStreak++
		if mon.clockStreak >= 2 {
			shift := mon.clockStreak - 2
			if shift > 10 {
				shift = 10
			}
			d := baseWait << uint(shift)
			if d > maxWait {
				d = maxWait
			}
			m.ChargeNs(d) // the guest waits; this is not monitor overhead
		}
	} else {
		mon.clockStreak = 1
	}
	mon.lastClockNs = m.VTimeNs()
}

// raiseIRQ asserts an interrupt line, logging the raise landmark when
// recording. Interrupt *delivery* is a deterministic function of the raise
// point, the pending mask and the guest's interrupt flag, so recording the
// raise is sufficient for exact replay — the same role the paper's
// instruction-pointer/branch-counter landmarks play for asynchronous
// events (§4.4).
func (mon *Monitor) raiseIRQ(irq int) {
	if mon.cfg.Mode.Records() {
		content := (&wire.EventContent{
			Kind: wire.EventIRQ, Landmark: mon.Machine.Landmark(), IRQ: uint32(irq),
		}).Marshal()
		mon.append(tevlog.TypeIRQ, content, ClassTimeTracker)
		mon.charge(mon.cfg.Cost.EventLogNs)
	}
	mon.Machine.RaiseIRQ(irq)
}

// tickTimer fires the periodic timer when its virtual deadline passes.
func (mon *Monitor) tickTimer() {
	d := mon.Devs
	if d.TimerPeriodUs == 0 {
		return
	}
	if mon.Machine.VTimeNs() >= d.NextTimerNs {
		d.NextTimerNs += uint64(d.TimerPeriodUs) * 1000
		mon.raiseIRQ(vm.IRQTimer)
	}
}

// --- sending ---

// guestSend handles a NET_TX_COMMIT from the guest.
func (mon *Monitor) guestSend(dest uint32, payload []byte) {
	mode := mon.cfg.Mode
	if mode.Virtualized() {
		mon.charge(mon.cfg.Cost.VMMPacketNs)
	}
	switch {
	case !mode.Records():
		// Bare hardware / plain virtualization: raw UDP-style datagram.
		mon.cfg.Net.Send(mon.Machine.VTimeNs(), mon.cfg.Index, int(dest),
			payload, len(payload)+wire.UDPIPOverhead)
	case !mode.TamperEvident():
		// Recording only: log the outgoing packet (MAC-layer entry), then
		// send it raw.
		content := (&wire.SendContent{MsgID: mon.Log.NextSeq(), Dest: dest, Payload: payload}).Marshal()
		mon.append(tevlog.TypeSend, content, ClassMAC)
		mon.charge(mon.cfg.Cost.EventLogNs)
		mon.cfg.Net.Send(mon.Machine.VTimeNs(), mon.cfg.Index, int(dest),
			payload, len(payload)+wire.UDPIPOverhead)
	default:
		mon.sendAccountable(dest, payload)
	}
}

// sendAccountable logs SEND(m), attaches an authenticator, and transmits
// the signed frame, retaining it for retransmission until acknowledged
// (§4.3).
func (mon *Monitor) sendAccountable(dest uint32, payload []byte) {
	prev := mon.Log.LastHash()
	content := (&wire.SendContent{MsgID: mon.Log.NextSeq(), Dest: dest, Payload: payload}).Marshal()
	e := mon.append(tevlog.TypeSend, content, ClassTamper)
	auth, err := mon.Log.Authenticator(e.Seq)
	if err != nil {
		panic(fmt.Sprintf("avmm: authenticator for fresh entry: %v", err)) // cannot happen
	}
	// Signing and the pipe to the daemon happen off the guest's core; they
	// delay the packet, not the AVM.
	procNs := mon.cfg.Cost.DaemonNs
	if mon.cfg.Mode.Signs() {
		procNs += mon.cfg.Cost.SignNs
	}
	mon.daemonCharge(procNs)

	f := &wire.Frame{
		Kind: wire.FrameData, FromNode: string(mon.cfg.Node), MsgID: e.Seq,
		Payload: payload, AuthSeq: auth.Seq, AuthHash: auth.Hash,
		PrevHash: prev, AuthSig: auth.Sig,
	}
	raw := f.Marshal()
	wireBytes := len(raw) + wire.TCPIPOverhead
	sentAt := mon.Machine.VTimeNs() + procNs
	mon.outbox[e.Seq] = &pendingMsg{
		msgID: e.Seq, dest: int(dest), frameBytes: raw,
		wireBytes: wireBytes, lastSentNs: sentAt, attempts: 1,
	}
	if mon.suspended[int(dest)] {
		// Held in the outbox; the retransmission path delivers it once the
		// peer answers its challenge.
		return
	}
	mon.cfg.Net.Send(sentAt, mon.cfg.Index, int(dest), raw, wireBytes)
}

// --- receiving ---

// HandleIncoming processes a frame from the network. The world invokes it
// between execution slices, so injections land at clean instruction
// boundaries.
func (mon *Monitor) HandleIncoming(f netsim.Frame) {
	mode := mon.cfg.Mode
	if mode.Virtualized() {
		mon.charge(mon.cfg.Cost.VMMPacketNs)
	}
	switch {
	case !mode.Records():
		mon.Devs.PushPacket(vm.Packet{From: uint32(f.From), Data: f.Data})
		mon.Machine.RaiseIRQ(vm.IRQNet)
	case !mode.TamperEvident():
		content := (&wire.RecvContent{SrcIdx: uint32(f.From), Payload: f.Data}).Marshal()
		mon.append(tevlog.TypeRecv, content, ClassMAC)
		mon.injectPacket(uint32(f.From), f.Data, mon.Log.NextSeq()-1)
	default:
		mon.handleAccountable(f)
	}
}

func (mon *Monitor) handleAccountable(nf netsim.Frame) {
	f, err := wire.ParseFrame(nf.Data)
	if err != nil {
		mon.BadFrames++
		return
	}
	switch f.Kind {
	case wire.FrameChallenge:
		mon.handleChallenge(nf.From, f)
		return
	case wire.FrameChallengeResp:
		mon.handleChallengeResp(nf.From, f)
		return
	}
	if mon.suspended[nf.From] {
		// The peer has an unanswered challenge outstanding; no traffic
		// until it responds (§4.6).
		mon.DroppedFrames++
		return
	}
	switch f.Kind {
	case wire.FrameData:
		mon.handleData(nf, f)
	case wire.FrameAck:
		mon.handleAck(f)
	default:
		mon.BadFrames++
	}
}

func (mon *Monitor) handleData(nf netsim.Frame, f *wire.Frame) {
	// Verify that the sender's authenticator really commits to SEND(m):
	// recompute h_i = H(h_{i-1} || s_i || SEND || H(m)) (§4.3) and check
	// the signature.
	sendContent := (&wire.SendContent{MsgID: f.MsgID, Dest: uint32(mon.cfg.Index), Payload: f.Payload}).Marshal()
	expect := tevlog.ChainHash(f.PrevHash, f.AuthSeq, tevlog.TypeSend, tevlog.HashContent(sendContent))
	if expect != f.AuthHash {
		mon.BadFrames++
		return
	}
	auth := f.Authenticator()
	procNs := mon.cfg.Cost.DaemonNs
	if mon.cfg.Mode.Signs() {
		procNs += mon.cfg.Cost.VerifyNs
		if !auth.Verify(mon.cfg.Keys) {
			mon.BadFrames++
			return
		}
	}
	mon.daemonCharge(procNs)
	key := f.FromNode + "/" + fmt.Sprint(f.MsgID)
	if mon.recvSeen[key] {
		// Duplicate (our ack was lost): resend the saved ack, do not re-log.
		if ackRaw := mon.seenAcks[key]; ackRaw != nil {
			mon.cfg.Net.Send(mon.Machine.VTimeNs(), mon.cfg.Index, nf.From,
				ackRaw, len(ackRaw)+wire.TCPIPOverhead)
		}
		return
	}
	mon.recvSeen[key] = true
	mon.PeerAuths[sig.NodeID(f.FromNode)] = append(mon.PeerAuths[sig.NodeID(f.FromNode)], auth)

	prev := mon.Log.LastHash()
	recvContent := (&wire.RecvContent{
		MsgID: f.MsgID, SrcNode: f.FromNode, SrcIdx: uint32(nf.From),
		Payload: f.Payload, SenderSeq: f.AuthSeq, SenderPrev: f.PrevHash,
		SenderSig: f.AuthSig,
	}).Marshal()
	e := mon.append(tevlog.TypeRecv, recvContent, ClassTamper)

	// Acknowledge: our authenticator for the RECV entry proves we logged it.
	ackAuth, err := mon.Log.Authenticator(e.Seq)
	if err != nil {
		panic(fmt.Sprintf("avmm: authenticator for fresh entry: %v", err)) // cannot happen
	}
	ackSignNs := uint64(0)
	if mon.cfg.Mode.Signs() {
		ackSignNs = mon.cfg.Cost.SignNs
	}
	mon.daemonCharge(ackSignNs)
	ack := &wire.Frame{
		Kind: wire.FrameAck, FromNode: string(mon.cfg.Node), MsgID: f.MsgID,
		AuthSeq: ackAuth.Seq, AuthHash: ackAuth.Hash, PrevHash: prev, AuthSig: ackAuth.Sig,
	}
	ackRaw := ack.Marshal()
	mon.seenAcks[key] = ackRaw
	now := mon.cfg.Net.Now()
	mon.cfg.Net.Send(now+procNs+ackSignNs, mon.cfg.Index, nf.From,
		ackRaw, len(ackRaw)+wire.TCPIPOverhead)

	// Finally, inject the payload into the AVM once the daemon-side
	// processing delay has elapsed, cross-referenced to the RECV entry so
	// dropping or altering it between receipt and injection is detectable
	// (§4.4).
	mon.pendingInj = append(mon.pendingInj, delayedInjection{
		dueNs: now + procNs, srcIdx: uint32(nf.From), payload: f.Payload, recvSeq: e.Seq,
	})
}

// injectPacket records the injection landmark and places the payload in the
// NIC queue.
func (mon *Monitor) injectPacket(srcIdx uint32, payload []byte, recvSeq uint64) {
	content := (&wire.EventContent{
		Kind: wire.EventInjectPacket, Landmark: mon.Machine.Landmark(),
		RecvSeq: recvSeq, SrcIdx: srcIdx, Payload: payload,
	}).Marshal()
	mon.append(tevlog.TypeIRQ, content, ClassMAC)
	mon.charge(mon.cfg.Cost.EventLogNs)
	mon.Devs.PushPacket(vm.Packet{From: srcIdx, Data: payload})
	mon.Machine.RaiseIRQ(vm.IRQNet)
}

func (mon *Monitor) handleAck(f *wire.Frame) {
	p := mon.outbox[f.MsgID]
	if p == nil {
		return // duplicate or stale ack
	}
	if mon.cfg.Mode.Signs() {
		mon.daemonCharge(mon.cfg.Cost.VerifyNs)
		if !f.Authenticator().Verify(mon.cfg.Keys) {
			mon.BadFrames++
			return
		}
	}
	delete(mon.outbox, f.MsgID)
	mon.PeerAuths[sig.NodeID(f.FromNode)] = append(mon.PeerAuths[sig.NodeID(f.FromNode)], f.Authenticator())
	content := (&wire.AckContent{
		MsgID: f.MsgID, PeerNode: f.FromNode, PeerSeq: f.AuthSeq,
		PeerHash: f.AuthHash, PeerSig: f.AuthSig,
	}).Marshal()
	mon.append(tevlog.TypeAck, content, ClassTamper)
}

// InjectInput queues a local input event (keyboard/mouse word) for the
// guest, logging it with a landmark. Input drivers (bots, §6.2) call this.
func (mon *Monitor) InjectInput(event uint32) {
	if mon.cfg.Mode.Records() {
		content := (&wire.EventContent{
			Kind: wire.EventInjectInput, Landmark: mon.Machine.Landmark(), Input: event,
		}).Marshal()
		mon.append(tevlog.TypeIRQ, content, ClassOther)
		mon.charge(mon.cfg.Cost.EventLogNs)
	}
	mon.Devs.PushInput(event)
	mon.Machine.RaiseIRQ(vm.IRQInput)
}

// --- execution ---

// RunSlice advances the machine until its virtual clock reaches endNs (or
// it halts). Monitor overhead is charged against the same clock, so an
// overloaded machine retires fewer instructions per slice — overhead
// manifests exactly as reduced guest throughput.
//
// Between device interactions the guest executes on the interpreter's
// predecoded sprint loop (vm.Machine.RunUntil); the 64-instruction stride
// is kept as the accounting cadence because charging recording overhead
// and checking the timer deadline at that granularity is part of the
// recorded timing model — landmarks, clock reads and timer IRQs all
// depend on it, so coarsening the stride would change every recorded log.
func (mon *Monitor) RunSlice(endNs uint64) {
	const chunk = 64
	m := mon.Machine
	for !m.Halted && m.VTimeNs() < endNs {
		if m.Waiting {
			// Idle: jump the clock forward to the next relevant event.
			target := endNs
			if mon.Devs.TimerPeriodUs != 0 && mon.Devs.NextTimerNs < target {
				target = mon.Devs.NextTimerNs
			}
			if now := m.VTimeNs(); target > now {
				m.ChargeNs(target - now)
			}
			mon.tickTimer()
			if m.Waiting {
				return // nothing woke it before the slice ended
			}
			continue
		}
		ran := m.RunUntil(m.ICount + chunk)
		if ran > 0 && mon.perInstrNs > 0 {
			mon.charge(ran * mon.perInstrNs)
		}
		mon.tickTimer()
		if ran == 0 && !m.Waiting {
			return // halted or faulted without retiring instructions
		}
	}
}

// Tick performs housekeeping between slices: due injections,
// retransmissions and periodic snapshots.
func (mon *Monitor) Tick(nowNs uint64) {
	for len(mon.pendingInj) > 0 && mon.pendingInj[0].dueNs <= nowNs {
		inj := mon.pendingInj[0]
		mon.pendingInj = mon.pendingInj[1:]
		mon.injectPacket(inj.srcIdx, inj.payload, inj.recvSeq)
	}
	if len(mon.outbox) > 0 {
		ids := make([]uint64, 0, len(mon.outbox))
		for id := range mon.outbox {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			p := mon.outbox[id]
			if mon.suspended[p.dest] {
				continue
			}
			// lastSentNs may lie in the near future (guest send time plus
			// daemon processing); only retransmit once the timeout has
			// actually elapsed.
			if nowNs >= p.lastSentNs && nowNs-p.lastSentNs >= mon.cfg.RetransmitNs {
				p.lastSentNs = nowNs
				p.attempts++
				mon.Retransmits++
				mon.cfg.Net.Send(nowNs, mon.cfg.Index, p.dest, p.frameBytes, p.wireBytes)
			}
		}
	}
	if mon.cfg.SnapshotEveryNs > 0 && mon.cfg.Mode.Records() {
		switch {
		case mon.Machine.VTimeNs()-mon.lastSnapshotNs >= mon.cfg.SnapshotEveryNs:
			mon.TakeSnapshot()
		case mon.cfg.SnapshotMaxDirtyBytes > 0 &&
			uint64(len(mon.Machine.DirtyPages()))*vm.PageSize >= mon.cfg.SnapshotMaxDirtyBytes:
			mon.AdaptiveSnapshots++
			mon.TakeSnapshot()
		case mon.cfg.SnapshotMaxInstr > 0 &&
			mon.Machine.ICount-mon.lastSnapshotInstr >= mon.cfg.SnapshotMaxInstr:
			mon.AdaptiveSnapshots++
			mon.TakeSnapshot()
		}
	}
}

// TakeSnapshot captures an incremental snapshot and commits its root to the
// log (§4.4).
func (mon *Monitor) TakeSnapshot() (*snapshot.Snapshot, error) {
	s, err := mon.Snaps.Take(mon.Machine, mon.Devs.Snapshot(), mon.Devs.AuthSnapshot())
	if err != nil {
		return nil, fmt.Errorf("avmm: snapshot on %q: %w", mon.cfg.Node, err)
	}
	content := (&wire.EventContent{
		Kind: wire.EventSnapshot, Landmark: s.Landmark,
		SnapIdx: uint32(s.Index), Root: s.Root,
	}).Marshal()
	e := mon.append(tevlog.TypeSnapshot, content, ClassOther)
	// Sign an authenticator for the snapshot entry itself, so auditors can
	// spot-check chunks that end at a snapshot without depending on a peer
	// authenticator landing on exactly that entry (§4.5: the auditor
	// challenges M to produce the segment connecting two authenticators).
	auth, err := mon.Log.Authenticator(e.Seq)
	if err != nil {
		return nil, fmt.Errorf("avmm: snapshot authenticator: %w", err)
	}
	if mon.cfg.Mode.Signs() {
		mon.daemonCharge(mon.cfg.Cost.SignNs)
	}
	mon.snapAuths = append(mon.snapAuths, auth)
	mon.charge(mon.cfg.Cost.SnapshotBaseNs + uint64(len(s.MemPages))*mon.cfg.Cost.SnapshotPerPageNs)
	mon.lastSnapshotNs = mon.Machine.VTimeNs()
	mon.lastSnapshotInstr = mon.Machine.ICount
	return s, nil
}

// SnapshotAuths returns the machine's self-signed authenticators for its
// snapshot entries, in snapshot order.
func (mon *Monitor) SnapshotAuths() []tevlog.Authenticator {
	out := make([]tevlog.Authenticator, len(mon.snapAuths))
	copy(out, mon.snapAuths)
	return out
}

// AuthenticatorsFor returns the authenticators this monitor has collected
// from node, for forwarding to auditors in multi-party scenarios (§4.6).
func (mon *Monitor) AuthenticatorsFor(node sig.NodeID) []tevlog.Authenticator {
	out := make([]tevlog.Authenticator, len(mon.PeerAuths[node]))
	copy(out, mon.PeerAuths[node])
	return out
}
