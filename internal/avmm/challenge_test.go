package avmm

import (
	"testing"

	"repro/internal/netsim"
	"repro/internal/wire"
)

func TestChallengeResponsiveMachineIsUnsuspended(t *testing.T) {
	w, a, b := buildPair(t, ModeAVMMRSA, 3, netsim.Config{BaseLatencyNs: 10_000})
	w.Run(200_000_000)
	if b.Log.Len() == 0 {
		t.Fatal("no traffic before challenge")
	}
	// Alice suspects bob (index 1) of ignoring her audit request.
	if err := w.BroadcastChallenge(1, "produce log segment [1,10]"); err != nil {
		t.Fatal(err)
	}
	if !a.Suspended(1) {
		t.Fatal("challenger did not suspend the accused")
	}
	// Bob is honest: his monitor answers, the suspension lifts.
	w.Run(w.Now() + 500_000_000)
	if a.Suspended(1) {
		t.Fatal("suspension not lifted after a valid response")
	}
	if w.SuspendedCount(1) != 0 {
		t.Fatal("some node still suspends the responsive machine")
	}
}

func TestChallengeUnresponsiveMachineStaysSuspended(t *testing.T) {
	w, a, b := buildPair(t, ModeAVMMRSA, 50, netsim.Config{BaseLatencyNs: 10_000})
	w.Run(300_000_000)
	b.SetUnresponsive(true)
	if err := w.BroadcastChallenge(1, "produce log segment"); err != nil {
		t.Fatal(err)
	}
	sentBefore := w.Net.NodeStats(0).FramesSent
	w.Run(w.Now() + 2_000_000_000)
	if !a.Suspended(1) {
		t.Fatal("unresponsive machine was unsuspended")
	}
	// Traffic to the accused stops (only held in the outbox): nothing but
	// the challenge itself should have left node 0.
	sent := w.Net.NodeStats(0).FramesSent - sentBefore
	if sent > 2 {
		t.Fatalf("%d frames sent to a suspended peer", sent)
	}
	// Once bob relents, a fresh challenge round resumes the world.
	b.SetUnresponsive(false)
	if err := w.BroadcastChallenge(1, "retry"); err != nil {
		t.Fatal(err)
	}
	w.Run(w.Now() + 2_000_000_000)
	if a.Suspended(1) {
		t.Fatal("suspension not lifted after the machine relented")
	}
	// Held outbox messages flow again via retransmission.
	w.RunUntil(func() bool { return len(a.outbox) == 0 }, w.Now()+30_000_000_000)
	if len(a.outbox) != 0 {
		t.Fatal("held messages never delivered after unsuspension")
	}
}

func TestChallengeResponseSignatureChecked(t *testing.T) {
	w, a, _ := buildPair(t, ModeAVMMRSA, 3, netsim.Config{BaseLatencyNs: 10_000})
	w.Run(200_000_000)
	if err := w.BroadcastChallenge(1, "x"); err != nil {
		t.Fatal(err)
	}
	// Forge a response from an unknown principal: must NOT lift suspension.
	a.handleChallengeResp(1, forgedResp())
	if !a.Suspended(1) {
		t.Fatal("forged challenge response lifted the suspension")
	}
}

func TestSelfChallengeIgnored(t *testing.T) {
	w, a, _ := buildPair(t, ModeAVMMRSA, 1, netsim.Config{BaseLatencyNs: 10_000})
	_ = w
	a.Challenge(0, "self")
	if a.Suspended(0) {
		t.Fatal("node suspended itself")
	}
}

// forgedResp builds a challenge response with a bogus signature.
func forgedResp() *wire.Frame {
	return &wire.Frame{
		Kind: wire.FrameChallengeResp, FromNode: "mallory",
		AuthSeq: 3, AuthSig: []byte("garbage"),
	}
}
