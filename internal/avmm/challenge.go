package avmm

import (
	"fmt"

	"repro/internal/wire"
)

// This file implements the multi-party liveness protocol of §4.6: with more
// than two parties, network problems (or a selectively-silent machine)
// could make a node appear unresponsive to some nodes and alive to others.
// Bob could exploit this to avoid answering Alice's request for an
// incriminating log segment while continuing to play with Charlie. The
// defense: Alice broadcasts a challenge; every node suspends communication
// with the accused machine until it answers; a correct machine answers
// immediately (its freshest authenticator, committing to its entire log)
// and the response lifts the suspension.

// Suspended reports whether this monitor currently refuses to exchange
// traffic with the given node index.
func (mon *Monitor) Suspended(idx int) bool { return mon.suspended[idx] }

// Unresponsive (test hook) makes the monitor ignore challenges, modelling a
// machine that refuses to answer for its log.
func (mon *Monitor) SetUnresponsive(v bool) { mon.unresponsive = v }

// Challenge suspends communication with the accused node and transmits the
// challenge to it. Typically invoked on every monitor in the system by the
// auditor (World.BroadcastChallenge).
func (mon *Monitor) Challenge(accusedIdx int, reason string) {
	if accusedIdx == mon.cfg.Index {
		return
	}
	if mon.suspended == nil {
		mon.suspended = make(map[int]bool)
	}
	mon.suspended[accusedIdx] = true
	f := &wire.Frame{
		Kind: wire.FrameChallenge, FromNode: string(mon.cfg.Node),
		Payload: []byte(reason),
	}
	raw := f.Marshal()
	mon.cfg.Net.Send(mon.cfg.Net.Now(), mon.cfg.Index, accusedIdx, raw, len(raw)+wire.TCPIPOverhead)
}

// handleChallenge answers with the machine's freshest authenticator — the
// commitment that proves liveness and pins the log the challenger may then
// demand (§4.5: an authenticator proves entries up to its sequence number
// exist).
func (mon *Monitor) handleChallenge(fromIdx int, f *wire.Frame) {
	if mon.unresponsive {
		mon.DroppedFrames++
		return
	}
	resp := &wire.Frame{
		Kind: wire.FrameChallengeResp, FromNode: string(mon.cfg.Node),
		Payload: f.Payload,
	}
	if mon.Log.Len() > 0 {
		head, err := mon.Log.LastAuthenticator()
		if err == nil {
			resp.AuthSeq = head.Seq
			resp.AuthHash = head.Hash
			resp.AuthSig = head.Sig
			if mon.cfg.Mode.Signs() {
				mon.daemonCharge(mon.cfg.Cost.SignNs)
			}
		}
	}
	raw := resp.Marshal()
	mon.cfg.Net.Send(mon.cfg.Net.Now(), mon.cfg.Index, fromIdx, raw, len(raw)+wire.TCPIPOverhead)
}

// handleChallengeResp lifts the suspension if the response carries a valid
// commitment.
func (mon *Monitor) handleChallengeResp(fromIdx int, f *wire.Frame) {
	if !mon.suspended[fromIdx] {
		return
	}
	if mon.cfg.Mode.Signs() {
		mon.daemonCharge(mon.cfg.Cost.VerifyNs)
		if f.AuthSeq > 0 && !f.Authenticator().Verify(mon.cfg.Keys) {
			mon.BadFrames++
			return
		}
	}
	delete(mon.suspended, fromIdx)
}

// BroadcastChallenge makes every monitor challenge the accused node — the
// system-wide reaction to an unanswered audit request. It returns an error
// for an unknown index.
func (w *World) BroadcastChallenge(accusedIdx int, reason string) error {
	if accusedIdx < 0 || accusedIdx >= len(w.Monitors) {
		return fmt.Errorf("avmm: no node with index %d", accusedIdx)
	}
	for _, mon := range w.Monitors {
		mon.Challenge(accusedIdx, reason)
	}
	return nil
}

// SuspendedCount returns how many monitors currently refuse to talk to the
// given node.
func (w *World) SuspendedCount(accusedIdx int) int {
	n := 0
	for _, mon := range w.Monitors {
		if mon.Suspended(accusedIdx) {
			n++
		}
	}
	return n
}
