// Package avmm implements the accountable virtual machine monitor (paper
// §4): it runs a guest image in the deterministic VM, maintains a
// tamper-evident log of messages and nondeterministic events, attaches
// authenticators to outgoing messages, acknowledges incoming ones, takes
// periodic authenticated snapshots, and exposes everything an auditor needs
// to replay and check the execution.
package avmm

import (
	"crypto/sha256"
	"time"

	"repro/internal/sig"
)

// Mode selects one of the five evaluation configurations of §6.2. Each mode
// adds one layer of machinery (and cost) on top of the previous.
type Mode int

// The five configurations.
const (
	// ModeBareHW runs the guest with direct device access: no monitor
	// interposition, no recording. The baseline.
	ModeBareHW Mode = iota
	// ModeVMwareNoRec adds the virtualization layer without recording.
	ModeVMwareNoRec
	// ModeVMwareRec adds deterministic-replay recording (a plain log).
	ModeVMwareRec
	// ModeAVMMNoSig adds the tamper-evident log, message protocol and
	// acknowledgments, but with null signatures.
	ModeAVMMNoSig
	// ModeAVMMRSA is the full system with RSA-768 signatures.
	ModeAVMMRSA
)

var modeNames = [...]string{"bare-hw", "vmware-norec", "vmware-rec", "avmm-nosig", "avmm-rsa768"}

// String returns the configuration name used in the paper's figures.
func (m Mode) String() string {
	if int(m) < len(modeNames) {
		return modeNames[m]
	}
	return "unknown-mode"
}

// Virtualized reports whether the monitor interposes on the device bus.
func (m Mode) Virtualized() bool { return m >= ModeVMwareNoRec }

// Records reports whether nondeterministic events are logged for replay.
func (m Mode) Records() bool { return m >= ModeVMwareRec }

// TamperEvident reports whether the hash-chain commitment protocol
// (authenticators, acknowledgments) is active.
func (m Mode) TamperEvident() bool { return m >= ModeAVMMNoSig }

// Signs reports whether real signatures are used.
func (m Mode) Signs() bool { return m == ModeAVMMRSA }

// CostModel charges the monitor's own work against the machine's virtual
// clock, which is how overhead manifests as reduced frame rate, higher
// latency, and CPU utilization in the experiments. All values are virtual
// nanoseconds. Absolute numbers are calibrated (see Calibrate) from the
// real measured cost of this implementation's hashing and signing, scaled
// to the paper's testbed; the *relative* shape of the results comes from
// real event counts in the recorded workload.
type CostModel struct {
	// VirtPerInstrNs is the virtualization tax per retired instruction.
	VirtPerInstrNs uint64
	// RecordPerInstrNs is the recording (deterministic replay) tax per
	// retired instruction; the paper attributes the largest share of
	// overhead to it (§6.10).
	RecordPerInstrNs uint64
	// NondetLogNs is charged per logged synchronous nondeterministic input.
	NondetLogNs uint64
	// EventLogNs is charged per logged asynchronous event (IRQ, injection).
	EventLogNs uint64
	// HashPerByteNs is charged per byte hashed into the tamper-evident
	// chain.
	HashPerByteNs uint64
	// SignNs / VerifyNs are charged per signature generated / checked.
	SignNs, VerifyNs uint64
	// VMMPacketNs is the virtualized packet path cost (copy through the
	// VMM) charged per packet sent or received whenever the monitor
	// interposes — the step from 192 µs to 525 µs RTT in Fig. 5.
	VMMPacketNs uint64
	// DaemonNs models the kernel-pipe round trip to the logging daemon on
	// each message send or receive (the jump from ~621 µs to ~2 ms RTT in
	// Fig. 5).
	DaemonNs uint64
	// SnapshotBaseNs and SnapshotPerPageNs are charged when a snapshot is
	// taken (§6.12 reports ~5 s per snapshot on the prototype).
	SnapshotBaseNs, SnapshotPerPageNs uint64
}

// DefaultCostModel returns constants calibrated so that the five
// configurations land in the paper's reported ranges on the fragfest
// workload (158 fps bare, −13% under the full AVMM; RTTs of Fig. 5).
func DefaultCostModel() CostModel {
	return CostModel{
		VirtPerInstrNs:    40,      // bare 158 fps → vmware ~155 fps
		RecordPerInstrNs:  260,     // the −11% recording cost at 2 µs/instr guests
		NondetLogNs:       2_000,   // per TimeTracker-class entry
		EventLogNs:        4_000,   // per IRQ/injection entry
		HashPerByteNs:     10,      // chain hashing
		SignNs:            640_000, // RSA-768 sign, paper-scale (~5 ms RTT / 4 sigs minus verify)
		VerifyNs:          28_000,  // RSA-768 verify
		VMMPacketNs:       80_000,  // virtualized packet path, per direction
		DaemonNs:          450_000, // logging daemon pipe round trip (per packet direction)
		SnapshotBaseNs:    120_000_000,
		SnapshotPerPageNs: 40_000,
	}
}

// Calibrate measures the real wall-clock cost of this implementation's
// signing, verification and hashing, and returns a model using those
// measurements (1 wall ns = 1 virtual ns). It grounds the cost model in the
// actual code instead of paper-scale constants; experiments can run either
// way and report which they used.
func Calibrate(signer sig.Signer) CostModel {
	cm := DefaultCostModel()
	msg := make([]byte, 64)
	// Warm up, then take the median of a few runs.
	med := func(f func()) uint64 {
		const runs = 5
		samples := make([]time.Duration, 0, runs)
		f()
		for i := 0; i < runs; i++ {
			start := time.Now()
			f()
			samples = append(samples, time.Since(start))
		}
		// Insertion sort; runs is tiny.
		for i := 1; i < len(samples); i++ {
			for j := i; j > 0 && samples[j] < samples[j-1]; j-- {
				samples[j], samples[j-1] = samples[j-1], samples[j]
			}
		}
		return uint64(samples[runs/2].Nanoseconds())
	}
	var lastSig []byte
	cm.SignNs = med(func() { lastSig = signer.Sign(msg) })
	verifier := signer.Public()
	cm.VerifyNs = med(func() { verifier.Verify(msg, lastSig) })
	block := make([]byte, 4096)
	perBlock := med(func() { sha256.Sum256(block) })
	cm.HashPerByteNs = perBlock/4096 + 1
	if cm.SignNs == 0 {
		cm.SignNs = 1 // null signer: keep nonzero ordering
	}
	return cm
}
