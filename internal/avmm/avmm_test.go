package avmm

import (
	"testing"

	"repro/internal/lang"
	"repro/internal/netsim"
	"repro/internal/sig"
	"repro/internal/tevlog"
	"repro/internal/vm"
	"repro/internal/wire"
)

func TestModeProperties(t *testing.T) {
	cases := []struct {
		mode                         Mode
		virt, records, tamper, signs bool
		name                         string
	}{
		{ModeBareHW, false, false, false, false, "bare-hw"},
		{ModeVMwareNoRec, true, false, false, false, "vmware-norec"},
		{ModeVMwareRec, true, true, false, false, "vmware-rec"},
		{ModeAVMMNoSig, true, true, true, false, "avmm-nosig"},
		{ModeAVMMRSA, true, true, true, true, "avmm-rsa768"},
	}
	for _, c := range cases {
		if c.mode.Virtualized() != c.virt || c.mode.Records() != c.records ||
			c.mode.TamperEvident() != c.tamper || c.mode.Signs() != c.signs {
			t.Errorf("%v capability flags wrong", c.mode)
		}
		if c.mode.String() != c.name {
			t.Errorf("%v name = %q, want %q", c.mode, c.mode.String(), c.name)
		}
	}
}

// pingPongImages builds a sender that transmits n messages (reading the
// clock before each) and a sink that counts them.
func pingPongImages(t *testing.T, n int) (*vm.Image, *vm.Image) {
	t.Helper()
	sender, err := lang.Compile("sender", `
		const CLOCK_LO = 0x01;
		const NET_RX_STATUS = 0x20;
		const NET_RX_LEN = 0x21;
		const NET_RX_DONE = 0x24;
		const NET_TX_BYTE = 0x28;
		const NET_TX_COMMIT = 0x29;
		interrupt(1) func on_net() { }
		func main() {
			sti();
			var i = 0;
			while (i < `+itoa(n)+`) {
				out(0x60, in(CLOCK_LO));
				out(NET_TX_BYTE, i);
				out(NET_TX_COMMIT, 1);
				while (in(NET_RX_STATUS) == 0) { wfi(); }
				var x = in(NET_RX_LEN);
				out(NET_RX_DONE, 0);
				i = i + 1;
			}
			halt();
		}
	`, lang.Options{MemSize: 64 * 1024})
	if err != nil {
		t.Fatal(err)
	}
	sink, err := lang.Compile("sink", `
		const NET_RX_STATUS = 0x20;
		const NET_RX_LEN = 0x21;
		const NET_RX_FROM = 0x22;
		const NET_RX_DONE = 0x24;
		const NET_TX_BYTE = 0x28;
		const NET_TX_COMMIT = 0x29;
		interrupt(1) func on_net() { }
		func main() {
			sti();
			while (1) {
				while (in(NET_RX_STATUS) == 0) { wfi(); }
				var x = in(NET_RX_LEN);
				var from = in(NET_RX_FROM);
				out(NET_RX_DONE, 0);
				out(NET_TX_BYTE, 1);
				out(NET_TX_COMMIT, from);
			}
		}
	`, lang.Options{MemSize: 64 * 1024})
	if err != nil {
		t.Fatal(err)
	}
	return sender, sink
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

// buildPair wires a sender and sink world in the given mode.
func buildPair(t *testing.T, mode Mode, msgs int, netCfg netsim.Config) (*World, *Monitor, *Monitor) {
	t.Helper()
	senderImg, sinkImg := pingPongImages(t, msgs)
	net := netsim.New(netCfg)
	keys := sig.NewKeyStore()
	w := NewWorld(net, keys)
	mk := func(id sig.NodeID, idx int, img *vm.Image) *Monitor {
		var signer sig.Signer = sig.NullSigner{Node: id}
		if mode.Signs() {
			signer = sig.SizedSigner{Node: id, Size: 96}
		}
		mon, err := NewMonitor(Config{
			Node: id, Index: idx, Mode: mode, Cost: DefaultCostModel(),
			Signer: signer, Keys: keys, Image: img, Net: net, RNGSeed: 4,
			RetransmitNs: 50_000_000,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Add(mon); err != nil {
			t.Fatal(err)
		}
		return mon
	}
	a := mk("a", 0, senderImg)
	b := mk("b", 1, sinkImg)
	return w, a, b
}

func TestBareModeDoesNotLog(t *testing.T) {
	w, a, b := buildPair(t, ModeBareHW, 3, netsim.Config{BaseLatencyNs: 10_000})
	w.RunUntil(func() bool { return a.Machine.Halted }, 10_000_000_000)
	if !a.Machine.Halted {
		t.Fatal("sender did not finish")
	}
	if a.Log.Len() != 0 || b.Log.Len() != 0 {
		t.Fatalf("bare mode logged entries: %d, %d", a.Log.Len(), b.Log.Len())
	}
	if a.GuestOverheadNs != 0 || a.DaemonBusyNs != 0 {
		t.Fatal("bare mode charged overhead")
	}
}

func TestRecordingModeLogsWithoutTamperEvidence(t *testing.T) {
	w, a, _ := buildPair(t, ModeVMwareRec, 3, netsim.Config{BaseLatencyNs: 10_000})
	w.RunUntil(func() bool { return a.Machine.Halted }, 10_000_000_000)
	if a.Log.Len() == 0 {
		t.Fatal("recording mode logged nothing")
	}
	if a.ClassBytes(ClassTamper) != 0 {
		t.Fatal("vmware-rec produced tamper-evidence entries")
	}
	if a.ClassBytes(ClassTimeTracker) == 0 {
		t.Fatal("no TimeTracker entries for clock reads")
	}
	if a.TotalLogBytes() != a.VMwareEquivalentBytes() {
		t.Fatal("VMware-equivalent bytes should equal total in non-TE mode")
	}
}

func TestTamperEvidentProtocolAcksAndAuths(t *testing.T) {
	w, a, b := buildPair(t, ModeAVMMRSA, 5, netsim.Config{BaseLatencyNs: 10_000})
	w.RunUntil(func() bool { return a.Machine.Halted }, 20_000_000_000)
	if !a.Machine.Halted {
		t.Fatal("sender did not finish")
	}
	// Both sides collected each other's authenticators.
	if len(a.AuthenticatorsFor("b")) == 0 || len(b.AuthenticatorsFor("a")) == 0 {
		t.Fatal("no authenticators exchanged")
	}
	// Every data message acked: outboxes drain.
	w.Run(w.Now() + 2_000_000_000)
	if len(a.outbox) != 0 || len(b.outbox) != 0 {
		t.Fatalf("outboxes not drained: %d, %d", len(a.outbox), len(b.outbox))
	}
	if a.ClassBytes(ClassTamper) == 0 {
		t.Fatal("no tamper-evidence bytes in TE mode")
	}
	if a.TotalLogBytes() <= a.VMwareEquivalentBytes() {
		t.Fatal("AVMM log should exceed the VMware-equivalent log")
	}
}

func TestRetransmissionRecoversFromLoss(t *testing.T) {
	// 25% loss: the protocol must still deliver everything via
	// retransmission (assumption 1 of §4.1).
	w, a, b := buildPair(t, ModeAVMMNoSig, 5, netsim.Config{
		BaseLatencyNs: 10_000, LossRate: 0x4000, Seed: 11,
	})
	ok := w.RunUntil(func() bool { return a.Machine.Halted }, 120_000_000_000)
	if !ok {
		t.Fatalf("sender never finished despite retransmissions (retransmits=%d, badframes=%d)",
			a.Retransmits, a.BadFrames)
	}
	if a.Retransmits+b.Retransmits == 0 {
		t.Fatal("no retransmissions under 25% loss; loss not exercised")
	}
	// Duplicate data frames must not produce duplicate RECV entries: every
	// RECV in b's log has a distinct message id.
	seen := map[uint64]bool{}
	for _, e := range b.Log.All() {
		if e.Type != tevlog.TypeRecv {
			continue
		}
		rc, err := wire.ParseRecv(e.Content)
		if err != nil {
			t.Fatal(err)
		}
		if seen[rc.MsgID] {
			t.Fatalf("duplicate RECV for message %d", rc.MsgID)
		}
		seen[rc.MsgID] = true
	}
	if len(seen) != 5 {
		t.Fatalf("sink received %d distinct messages, want 5", len(seen))
	}
}

func TestSnapshotAuthsSigned(t *testing.T) {
	senderImg, sinkImg := pingPongImages(t, 3)
	_ = sinkImg
	net := netsim.New(netsim.Config{BaseLatencyNs: 10_000})
	keys := sig.NewKeyStore()
	w := NewWorld(net, keys)
	mon, err := NewMonitor(Config{
		Node: "a", Index: 0, Mode: ModeAVMMRSA, Cost: DefaultCostModel(),
		Signer: sig.SizedSigner{Node: "a", Size: 96}, Keys: keys,
		Image: senderImg, Net: net, SnapshotEveryNs: 100_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Add(mon); err != nil {
		t.Fatal(err)
	}
	w.Run(1_000_000_000)
	auths := mon.SnapshotAuths()
	if len(auths) == 0 {
		t.Fatal("no snapshot authenticators")
	}
	if len(auths) != mon.Snaps.Count() {
		t.Fatalf("%d auths for %d snapshots", len(auths), mon.Snaps.Count())
	}
	for _, a := range auths {
		if !a.Verify(keys) {
			t.Fatal("snapshot authenticator does not verify")
		}
	}
}

func TestClockDelayOptThrottlesBusyWait(t *testing.T) {
	busy, err := lang.Compile("busy", `
		const CLOCK_LO = 0x01;
		func main() {
			var t0 = in(CLOCK_LO);
			while (in(CLOCK_LO) - t0 < 50000) { }
			halt();
		}
	`, lang.Options{MemSize: 64 * 1024})
	if err != nil {
		t.Fatal(err)
	}
	run := func(opt bool) uint64 {
		net := netsim.New(netsim.Config{})
		w := NewWorld(net, sig.NewKeyStore())
		mon, err := NewMonitor(Config{
			Node: "a", Index: 0, Mode: ModeAVMMNoSig, Cost: DefaultCostModel(),
			Keys: sig.NewKeyStore(), Image: busy, Net: net, ClockDelayOpt: opt,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Add(mon); err != nil {
			t.Fatal(err)
		}
		w.RunUntil(func() bool { return mon.Machine.Halted }, 10_000_000_000)
		if !mon.Machine.Halted {
			t.Fatal("busy loop did not finish")
		}
		return mon.Devs.ClockReads()
	}
	plain := run(false)
	opt := run(true)
	if opt*2 > plain {
		t.Fatalf("optimization left %d reads vs %d; want at least 2x reduction", opt, plain)
	}
}

func TestWorldRejectsOutOfOrderIndices(t *testing.T) {
	img, _ := pingPongImages(t, 1)
	net := netsim.New(netsim.Config{})
	w := NewWorld(net, sig.NewKeyStore())
	mon, err := NewMonitor(Config{
		Node: "a", Index: 5, Mode: ModeBareHW, Keys: sig.NewKeyStore(),
		Image: img, Net: net,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Add(mon); err == nil {
		t.Fatal("index 5 accepted as first monitor")
	}
}

func TestMonitorRequiresImage(t *testing.T) {
	if _, err := NewMonitor(Config{Node: "a"}); err == nil {
		t.Fatal("monitor without image accepted")
	}
}

func TestCostModelCalibrate(t *testing.T) {
	cm := Calibrate(sig.SizedSigner{Node: "x", Size: 96})
	if cm.SignNs == 0 || cm.VerifyNs == 0 || cm.HashPerByteNs == 0 {
		t.Fatalf("calibration produced zeros: %+v", cm)
	}
	rsa := Calibrate(sig.MustGenerateRSA("y", sig.DefaultKeyBits, "cal"))
	if rsa.SignNs < cm.SignNs {
		t.Fatal("real RSA signing measured faster than a hash; implausible")
	}
}

func TestGuestAndDaemonChargesSeparate(t *testing.T) {
	w, a, _ := buildPair(t, ModeAVMMRSA, 3, netsim.Config{BaseLatencyNs: 10_000})
	w.RunUntil(func() bool { return a.Machine.Halted }, 20_000_000_000)
	if a.GuestOverheadNs == 0 {
		t.Fatal("no guest-path overhead recorded")
	}
	if a.DaemonBusyNs == 0 {
		t.Fatal("no daemon work recorded")
	}
	// Daemon work must NOT appear in the machine's clock beyond guest
	// charges: virtual time = instructions + guest charges (+ idle).
	minVTime := a.Machine.ICount*a.Machine.NsPerInstr + a.GuestOverheadNs
	if a.Machine.VTimeNs() < minVTime {
		t.Fatal("machine clock below instruction+guest-charge floor")
	}
}
