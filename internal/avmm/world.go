package avmm

import (
	"fmt"

	"repro/internal/netsim"
	"repro/internal/sig"
)

// Driver feeds external stimuli (bot keystrokes, benchmark commands) into
// monitors as the world advances. Drivers are the source of local inputs
// that §4.8 notes cannot be verified during an audit — they are recorded,
// and replay reproduces whatever was recorded.
type Driver interface {
	// Tick is called once per scheduling slice with the world time.
	Tick(w *World, nowNs uint64)
}

// DriverFunc adapts a function to the Driver interface.
type DriverFunc func(w *World, nowNs uint64)

// Tick implements Driver.
func (f DriverFunc) Tick(w *World, nowNs uint64) { f(w, nowNs) }

// World co-schedules a set of monitored machines and the network in
// deterministic virtual-time slices, standing in for the paper's testbed of
// physical machines on a switch.
type World struct {
	Net      *netsim.Network
	Keys     *sig.KeyStore
	Monitors []*Monitor
	Drivers  []Driver
	// SliceNs is the co-scheduling quantum (default 1 ms).
	SliceNs uint64
	nowNs   uint64
}

// NewWorld creates a world over the given network.
func NewWorld(net *netsim.Network, keys *sig.KeyStore) *World {
	w := &World{Net: net, Keys: keys, SliceNs: 1_000_000}
	net.Deliver = w.route
	return w
}

// Now returns the world's virtual time.
func (w *World) Now() uint64 { return w.nowNs }

// Add registers a monitor; its Index must equal its position.
func (w *World) Add(mon *Monitor) error {
	if mon.Index() != len(w.Monitors) {
		return fmt.Errorf("avmm: monitor %q has index %d, expected %d", mon.Node(), mon.Index(), len(w.Monitors))
	}
	w.Monitors = append(w.Monitors, mon)
	if v := mon.cfg.Signer.Public(); w.Keys != nil {
		w.Keys.Add(v)
	}
	return nil
}

// Monitor returns the monitor at the given network index.
func (w *World) Monitor(i int) *Monitor { return w.Monitors[i] }

func (w *World) route(f netsim.Frame) {
	if f.To < 0 || f.To >= len(w.Monitors) {
		return // destination unknown: dropped on the floor like a bad MAC
	}
	w.Monitors[f.To].HandleIncoming(f)
}

// Run advances the world until virtual time untilNs, scheduling every
// machine, delivering frames, and running housekeeping each slice.
func (w *World) Run(untilNs uint64) {
	for w.nowNs < untilNs {
		end := w.nowNs + w.SliceNs
		if end > untilNs {
			end = untilNs
		}
		for _, d := range w.Drivers {
			d.Tick(w, w.nowNs)
		}
		for _, mon := range w.Monitors {
			mon.RunSlice(end)
		}
		w.Net.AdvanceTo(end)
		for _, mon := range w.Monitors {
			mon.Tick(end)
		}
		w.nowNs = end
	}
}

// RunUntil advances slice by slice until cond returns true or the deadline
// passes; it reports whether cond was met.
func (w *World) RunUntil(cond func() bool, deadlineNs uint64) bool {
	for w.nowNs < deadlineNs {
		if cond() {
			return true
		}
		w.Run(w.nowNs + w.SliceNs)
	}
	return cond()
}

// AllHalted reports whether every machine has halted.
func (w *World) AllHalted() bool {
	for _, mon := range w.Monitors {
		if !mon.Machine.Halted {
			return false
		}
	}
	return true
}
